"""The lean kernel's determinism contract, end to end.

The ``__slots__`` event types, lazy callback lists and the inlined
run loop are pure mechanics: the ``(time, priority, seq)`` fire order
must be exactly what the straightforward kernel produced.  These
tests pin that contract from three angles — the raw fire order, the
public ``step()`` loop against the inlined ``run()`` loop, and the
full chaos/serving stacks replayed seed-for-seed on top.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ncsw import FaultPlan
from repro.serve import PoissonWorkload
from repro.sim import Environment, Resource, Store


def _pipeline_trace(n_items: int = 60, n_workers: int = 3,
                    use_step: bool = False) -> list:
    """The perf harness's producer/consumer shape, with a fire trace."""
    env = Environment()
    store = Store(env, capacity=8)
    done = Store(env)
    cpu = Resource(env, capacity=2)
    trace: list = []

    def producer():
        for i in range(n_items):
            yield store.put(i)
            yield env.timeout(0.001)
            trace.append(("put", round(env.now, 9), i))

    def worker(wid):
        while True:
            item = yield store.get()
            with cpu.request() as req:
                yield req
                yield env.timeout(0.01)
            trace.append(("done", round(env.now, 9), wid, item))
            yield done.put(item)

    def drain():
        for _ in range(n_items):
            yield done.get()

    env.process(producer())
    for wid in range(n_workers):
        env.process(worker(wid))
    stop = env.process(drain())
    if use_step:
        while not stop.processed:
            env.step()
    else:
        env.run(until=stop)
    trace.append(("seq", env._seq))
    return trace


def test_pipeline_replay_is_identical():
    assert _pipeline_trace() == _pipeline_trace()


def test_step_loop_equals_inlined_run_loop():
    """``run()`` inlines ``step()``; both must fire the same order."""
    assert _pipeline_trace(use_step=True) == _pipeline_trace(
        use_step=False)


@given(st.lists(st.tuples(st.floats(0.001, 1.0), st.integers(1, 4)),
                min_size=1, max_size=6),
       st.integers(1, 3))
@settings(max_examples=25, deadline=None)
def test_property_contended_store_determinism(producers, capacity):
    """Contended put/get through the Store fast paths is replayable."""

    def run():
        env = Environment()
        store = Store(env, capacity=capacity)
        order: list = []

        def feed(idx, period, count):
            for i in range(count):
                yield env.timeout(period)
                yield store.put((idx, i))

        def eat(total):
            for _ in range(total):
                item = yield store.get()
                order.append((round(env.now, 9), item))

        total = sum(count for _, count in producers)
        for idx, (period, count) in enumerate(producers):
            env.process(feed(idx, period, count))
        env.run(until=env.process(eat(total)))
        return order, env._seq

    assert run() == run()


def _chaos_fingerprint(res) -> tuple:
    return (tuple((r.index, r.device, r.t_submit, r.t_complete)
                  for r in res.records),
            tuple((f.kind, f.device, f.at) for f in res.failures),
            res.reassigned, res.abandoned)


def test_chaos_same_seed_replays_byte_identical(chaos_run):
    """The full fault-tolerant stack on the lean kernel replays a
    seeded schedule record-for-record (the PR-4 kernel rewrite must
    not perturb a single timestamp)."""
    base = chaos_run(images=40, devices=4)
    wall = max(r.t_complete for r in base.records)
    t0 = min(r.t_submit for r in base.records)
    plan = FaultPlan.seeded(11, num_devices=4, horizon=wall, start=t0,
                            n_faults=1)
    a = chaos_run(plan, call_timeout=0.05)
    b = chaos_run(plan, call_timeout=0.05)
    assert _chaos_fingerprint(a) == _chaos_fingerprint(b)


def test_serving_same_seed_replays_byte_identical(serve_run):
    """Open-loop serving (admission, batching, routing) replays too."""

    def fingerprint(res):
        return tuple((r.request_id, r.status, r.arrival_time,
                      r.completed_at, r.backend)
                     for r in res.requests)

    a = serve_run(requests=30, workload=PoissonWorkload(200.0, seed=5))
    b = serve_run(requests=30, workload=PoissonWorkload(200.0, seed=5))
    assert fingerprint(a) == fingerprint(b)
