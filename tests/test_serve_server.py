"""End-to-end serving tests: InferenceServer over simulated sticks.

Everything here runs against the compiled googlenet-micro graph
(session fixture), so a full open-loop run costs milliseconds.  The
acceptance properties pinned down: deterministic seeded reports,
airtight terminal accounting under every admission policy, batch-1
latency parity with the batch framework's single-input path, load
scaling with stick count, and graceful degradation when sticks die
mid-run.
"""

import pytest

from repro.errors import FrameworkError
from repro.ncsw import IntelVPU, NCSw, SyntheticSource
from repro.ncsw.faults import FaultPlan
from repro.serve import (
    BLOCK,
    LEAST_OUTSTANDING,
    REJECT_NEWEST,
    SHED_OLDEST,
    InferenceServer,
    PoissonWorkload,
    find_max_rate,
    render_slo_report,
)


def _assert_accounted(result):
    assert (result.completed + result.shed + result.rejected
            + result.timed_out + result.abandoned) == result.offered


# -- validation -------------------------------------------------------------

def test_server_validation(chaos_graph):
    with pytest.raises(FrameworkError):
        InferenceServer(admission="fifo")
    with pytest.raises(FrameworkError):
        InferenceServer(slo_seconds=0.0)
    with pytest.raises(FrameworkError):
        InferenceServer(warmup=-1)
    server = InferenceServer()
    with pytest.raises(FrameworkError):
        server.run(PoissonWorkload(10.0), 4)  # no targets
    server.add_target("vpu", IntelVPU(graph=chaos_graph,
                                      num_devices=1,
                                      functional=False))
    with pytest.raises(FrameworkError):
        server.add_target("vpu", IntelVPU(graph=chaos_graph,
                                          num_devices=1,
                                          functional=False))


# -- determinism ------------------------------------------------------------

def test_seeded_run_is_byte_identical(serve_run):
    reports = []
    for _ in range(2):
        result = serve_run(requests=60, devices=2, rate=400.0,
                           seed=42, slo_seconds=0.050)
        reports.append(render_slo_report(result, workload="poisson"))
    assert reports[0] == reports[1]


def test_different_seeds_change_the_run(serve_run):
    a = serve_run(requests=60, devices=2, rate=400.0, seed=0)
    b = serve_run(requests=60, devices=2, rate=400.0, seed=1)
    assert a.wall_seconds != b.wall_seconds


# -- the happy path ---------------------------------------------------------

def test_underloaded_run_completes_everything(serve_run):
    # Two sticks sustain ~1000 req/s on the micro graph; offer 100.
    result = serve_run(requests=80, devices=2, rate=100.0,
                       slo_seconds=0.050)
    _assert_accounted(result)
    assert result.completed == result.offered == 80
    assert result.slo_met
    assert result.loss_rate == 0.0
    assert result.prepare_seconds > 0  # stick boot precedes serving
    assert result.goodput == pytest.approx(result.throughput)


def test_batch_one_latency_matches_single_input_path(chaos_graph):
    """Serving adds bookkeeping, not simulated time: an idle server
    with batch size 1 must service a request in exactly the batch
    framework's single-input inference latency."""
    fw = NCSw()
    fw.add_source("synth", SyntheticSource(4))
    fw.add_target("vpu", IntelVPU(graph=chaos_graph, num_devices=1,
                                  functional=False))
    run = fw.run("synth", "vpu", batch_size=1)
    framework_latency = run.records[0].latency

    server = InferenceServer(max_batch_size=1, queue_depth=None,
                             slo_seconds=None)
    server.add_target("vpu", IntelVPU(graph=chaos_graph,
                                      num_devices=1,
                                      functional=False))
    # 4 req/s against a ~2 ms service time: the server is idle at
    # every arrival, so no queueing or batching delay pollutes it.
    result = server.run(PoissonWorkload(4.0, seed=0), 8)
    assert result.completed == 8
    for req in result.completed_requests():
        assert req.service_seconds == pytest.approx(
            framework_latency, rel=1e-9)


# -- overload and admission policies ----------------------------------------

@pytest.mark.parametrize("policy", [REJECT_NEWEST, SHED_OLDEST])
def test_overload_drops_under_lossy_policies(serve_run, policy):
    # ~4x capacity of one stick: the bounded queue must turn work
    # away, and every request still resolves exactly once.
    result = serve_run(requests=300, devices=1, rate=2000.0,
                       queue_depth=4, admission=policy,
                       slo_seconds=0.050)
    _assert_accounted(result)
    dropped = result.shed if policy == SHED_OLDEST else result.rejected
    assert dropped > 0
    assert result.completed > 0
    assert not result.slo_met
    assert result.loss_rate > 0.3


def test_overload_block_policy_completes_all_with_high_latency(
        serve_run):
    result = serve_run(requests=300, devices=1, rate=2000.0,
                       queue_depth=4, admission=BLOCK,
                       slo_seconds=0.050)
    _assert_accounted(result)
    assert result.completed == 300  # backpressure loses nothing
    assert result.shed == result.rejected == 0
    assert not result.slo_met  # ...but latency pays for it
    assert result.p99 > 0.050


def test_deadlines_expire_in_a_backlogged_queue(serve_run):
    result = serve_run(requests=200, devices=1, rate=2000.0,
                       queue_depth=64, deadline_seconds=0.020,
                       slo_seconds=0.050)
    _assert_accounted(result)
    assert result.timed_out > 0
    assert result.completed > 0


def test_warmup_trims_latency_statistics(serve_run):
    full = serve_run(requests=100, devices=2, rate=300.0, seed=9)
    trimmed = serve_run(requests=100, devices=2, rate=300.0, seed=9,
                        warmup=20)
    assert trimmed.warmup == 20
    assert len(trimmed.e2e_latencies()) == len(full.e2e_latencies()) - 20


# -- multi-backend routing --------------------------------------------------

def test_least_outstanding_spreads_across_backends(chaos_graph,
                                                   serve_run):
    result = serve_run(
        requests=200, devices=1, rate=1500.0,
        policy=LEAST_OUTSTANDING, queue_depth=None,
        extra_targets={"vpu-b": IntelVPU(graph=chaos_graph,
                                         num_devices=1,
                                         functional=False)})
    _assert_accounted(result)
    assert result.completed == 200
    counts = result.per_backend_counts()
    assert set(counts) == {"vpu", "vpu-b"}
    # Load-aware routing keeps both backends meaningfully busy.
    assert min(counts.values()) > 40


# -- fault tolerance --------------------------------------------------------

def test_stick_death_degrades_but_accounts_everything(serve_run):
    # Healthy baseline to locate the serving window on the sim clock.
    base = serve_run(requests=200, devices=2, rate=800.0,
                     slo_seconds=0.050)
    assert not base.degraded
    kill_at = base.prepare_seconds + 0.3 * base.wall_seconds

    result = serve_run(requests=200, devices=2, rate=800.0,
                       slo_seconds=0.050,
                       fault_plan=FaultPlan.kill(0, kill_at),
                       call_timeout=0.05)
    _assert_accounted(result)
    assert result.degraded
    assert result.failures and result.failures[0].device == "ncs0"
    assert result.completed > 0
    # One stick down halves capacity: the run takes longer.
    assert result.wall_seconds > base.wall_seconds


def test_all_sticks_dead_abandons_the_tail(serve_run):
    from repro.ncsw.faults import DeviceFault

    base = serve_run(requests=120, devices=2, rate=800.0)
    kill_at = base.prepare_seconds + 0.3 * base.wall_seconds
    plan = FaultPlan([DeviceFault(device_index=0, at=kill_at),
                      DeviceFault(device_index=1, at=kill_at + 1e-4)])

    result = serve_run(requests=120, devices=2, rate=800.0,
                       fault_plan=plan, call_timeout=0.05,
                       queue_depth=None)
    _assert_accounted(result)
    assert result.degraded
    assert result.abandoned > 0
    assert result.completed > 0  # work done before the deaths


# -- load sweep -------------------------------------------------------------

def test_sweep_max_rate_grows_with_stick_count(serve_run):
    def sweep(devices):
        def run_at(rate):
            return serve_run(requests=100, devices=devices,
                             rate=rate, slo_seconds=0.050)

        return find_max_rate(run_at, slo_seconds=0.050, hi=1200.0,
                             steps=5, label=f"vpu{devices}")

    one = sweep(1)
    four = sweep(4)
    assert one.max_rate > 100.0
    # Near-linear scaling, with loose bands for queueing noise.
    assert four.max_rate > 2.5 * one.max_rate
