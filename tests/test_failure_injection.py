"""Failure-injection tests: flaky USB links, retries, device reset."""

import pytest

from repro.errors import NCAPIError, USBError
from repro.ncs import NCAPI, USBTopology
from repro.ncs.usb import USB_MAX_ATTEMPTS, USB_RETRY_BACKOFF_S
from repro.nn import get_model
from repro.nn.weights import initialize_network
from repro.sim import Environment
from repro.vpu import compile_graph


@pytest.fixture(scope="module")
def micro_graph():
    net = get_model("googlenet-micro")
    initialize_network(net)
    return compile_graph(net)


def _topo_with_error(env, error_rate):
    topo = USBTopology(env)
    topo.attach_device("ncs0")
    link = topo.links[topo.path("ncs0")[0]]
    link.error_rate = error_rate
    return topo, link


def test_error_rate_validation():
    from repro.ncs.usb import USBLink
    with pytest.raises(USBError):
        USBLink("bad", error_rate=1.0)
    with pytest.raises(USBError):
        USBLink("bad", error_rate=-0.1)


def test_clean_link_never_fails():
    env = Environment()
    topo, link = _topo_with_error(env, 0.0)
    for _ in range(20):
        env.run(until=topo.transfer("ncs0", 1000))
    assert link.errors_injected == 0


def test_flaky_link_retries_transparently():
    env = Environment()
    topo, link = _topo_with_error(env, 0.3)
    durations = []
    for _ in range(40):
        t0 = env.now
        env.run(until=topo.transfer("ncs0", 1000))
        durations.append(env.now - t0)
    # Failures happened and were retried (some transfers took the
    # backoff penalty), but every transfer completed.
    assert link.errors_injected > 0
    assert max(durations) >= USB_RETRY_BACKOFF_S
    assert min(durations) < USB_RETRY_BACKOFF_S


def test_dead_link_gives_up_after_max_attempts():
    env = Environment()
    topo, link = _topo_with_error(env, 0.999999)
    with pytest.raises(USBError, match="failed after"):
        env.run(until=topo.transfer("ncs0", 1000))
    assert link.errors_injected >= USB_MAX_ATTEMPTS


def test_inference_survives_flaky_link(micro_graph):
    """End to end: a 20%-lossy link slows the run but loses nothing."""
    env = Environment()
    topo, link = _topo_with_error(env, 0.2)
    api = NCAPI(env, topo, functional=False)

    def scenario():
        dev = yield api.open_device(0)
        graph = yield dev.allocate_compiled(micro_graph)
        for _ in range(10):
            yield graph.load_tensor(None)
            yield graph.get_result()
        return graph

    graph = env.run(until=env.process(scenario()))
    assert len(graph.time_taken()) == 10
    assert link.errors_injected > 0


def test_device_reset_cycle(micro_graph):
    env = Environment()
    topo = USBTopology(env)
    topo.attach_device("ncs0")
    api = NCAPI(env, topo, functional=False)
    device = api.devices[0]

    def scenario():
        dev = yield api.open_device(0)
        graph = yield dev.allocate_compiled(micro_graph)
        yield graph.load_tensor(None)
        yield graph.get_result()
        # Reset: graph gone, device re-booted.
        yield device.reset()
        assert device.booted
        assert device.graph is None
        # A fresh allocation works after reset.
        graph2 = yield dev.allocate_compiled(micro_graph)
        yield graph2.load_tensor(None)
        result, _ = yield graph2.get_result()
        return result

    result = env.run(until=env.process(scenario()))
    assert result is not None


def test_reset_drops_inflight_work(micro_graph):
    env = Environment()
    topo = USBTopology(env)
    topo.attach_device("ncs0")
    api = NCAPI(env, topo, functional=False)
    device = api.devices[0]

    def scenario():
        dev = yield api.open_device(0)
        graph = yield dev.allocate_compiled(micro_graph)
        # Queue work but reset before collecting.
        yield graph.load_tensor(None)
        yield graph.load_tensor(None)
        yield device.reset()
        # The old graph handle is stale after reset.
        graph.load_tensor(None)
        yield env.timeout(0)

    with pytest.raises(NCAPIError):
        env.run(until=env.process(scenario()))


def test_reset_releases_ddr(micro_graph):
    env = Environment()
    topo = USBTopology(env)
    topo.attach_device("ncs0")
    api = NCAPI(env, topo, functional=False)
    device = api.devices[0]

    def scenario():
        dev = yield api.open_device(0)
        free_before = device.chip.ddr.free
        yield dev.allocate_compiled(micro_graph)
        assert device.chip.ddr.free < free_before
        yield device.reset()
        return free_before, device.chip.ddr.free

    before, after = env.run(until=env.process(scenario()))
    assert after == before
