"""Failure-injection tests: flaky USB links, retries, device reset,
and the device-level fault hooks behind the chaos harness (hangs,
thermal shutdown, transient busy)."""

import pytest

from repro.errors import (DeviceTimeout, NCAPIError, ThermalShutdown,
                          USBError)
from repro.ncs import NCAPI, USBTopology
from repro.ncs.thermal import ThermalConfig, ThermalModel
from repro.ncs.usb import USB_MAX_ATTEMPTS, USB_RETRY_BACKOFF_S
from repro.ncsw.scheduler import MultiVPUScheduler
from repro.ncsw.sources import WorkItem
from repro.nn import get_model
from repro.nn.weights import initialize_network
from repro.sim import Environment
from repro.vpu import compile_graph


@pytest.fixture(scope="module")
def micro_graph():
    net = get_model("googlenet-micro")
    initialize_network(net)
    return compile_graph(net)


def _topo_with_error(env, error_rate):
    topo = USBTopology(env)
    topo.attach_device("ncs0")
    link = topo.links[topo.path("ncs0")[0]]
    link.error_rate = error_rate
    return topo, link


def test_error_rate_validation():
    from repro.ncs.usb import USBLink
    with pytest.raises(USBError):
        USBLink("bad", error_rate=1.0)
    with pytest.raises(USBError):
        USBLink("bad", error_rate=-0.1)


def test_clean_link_never_fails():
    env = Environment()
    topo, link = _topo_with_error(env, 0.0)
    for _ in range(20):
        env.run(until=topo.transfer("ncs0", 1000))
    assert link.errors_injected == 0


def test_flaky_link_retries_transparently():
    env = Environment()
    topo, link = _topo_with_error(env, 0.3)
    durations = []
    for _ in range(40):
        t0 = env.now
        env.run(until=topo.transfer("ncs0", 1000))
        durations.append(env.now - t0)
    # Failures happened and were retried (some transfers took the
    # backoff penalty), but every transfer completed.
    assert link.errors_injected > 0
    assert max(durations) >= USB_RETRY_BACKOFF_S
    assert min(durations) < USB_RETRY_BACKOFF_S


def test_dead_link_gives_up_after_max_attempts():
    env = Environment()
    topo, link = _topo_with_error(env, 0.999999)
    with pytest.raises(USBError, match="failed after"):
        env.run(until=topo.transfer("ncs0", 1000))
    assert link.errors_injected >= USB_MAX_ATTEMPTS


def test_inference_survives_flaky_link(micro_graph):
    """End to end: a 20%-lossy link slows the run but loses nothing."""
    env = Environment()
    topo, link = _topo_with_error(env, 0.2)
    api = NCAPI(env, topo, functional=False)

    def scenario():
        dev = yield api.open_device(0)
        graph = yield dev.allocate_compiled(micro_graph)
        for _ in range(10):
            yield graph.load_tensor(None)
            yield graph.get_result()
        return graph

    graph = env.run(until=env.process(scenario()))
    assert len(graph.time_taken()) == 10
    assert link.errors_injected > 0


def test_device_reset_cycle(micro_graph):
    env = Environment()
    topo = USBTopology(env)
    topo.attach_device("ncs0")
    api = NCAPI(env, topo, functional=False)
    device = api.devices[0]

    def scenario():
        dev = yield api.open_device(0)
        graph = yield dev.allocate_compiled(micro_graph)
        yield graph.load_tensor(None)
        yield graph.get_result()
        # Reset: graph gone, device re-booted.
        yield device.reset()
        assert device.booted
        assert device.graph is None
        # A fresh allocation works after reset.
        graph2 = yield dev.allocate_compiled(micro_graph)
        yield graph2.load_tensor(None)
        result, _ = yield graph2.get_result()
        return result

    result = env.run(until=env.process(scenario()))
    assert result is not None


def test_reset_drops_inflight_work(micro_graph):
    env = Environment()
    topo = USBTopology(env)
    topo.attach_device("ncs0")
    api = NCAPI(env, topo, functional=False)
    device = api.devices[0]

    def scenario():
        dev = yield api.open_device(0)
        graph = yield dev.allocate_compiled(micro_graph)
        # Queue work but reset before collecting.
        yield graph.load_tensor(None)
        yield graph.load_tensor(None)
        yield device.reset()
        # The old graph handle is stale after reset.
        graph.load_tensor(None)
        yield env.timeout(0)

    with pytest.raises(NCAPIError):
        env.run(until=env.process(scenario()))


def test_reset_releases_ddr(micro_graph):
    env = Environment()
    topo = USBTopology(env)
    topo.attach_device("ncs0")
    api = NCAPI(env, topo, functional=False)
    device = api.devices[0]

    def scenario():
        dev = yield api.open_device(0)
        free_before = device.chip.ddr.free
        yield dev.allocate_compiled(micro_graph)
        assert device.chip.ddr.free < free_before
        yield device.reset()
        return free_before, device.chip.ddr.free

    before, after = env.run(until=env.process(scenario()))
    assert after == before


# -- device fault hooks (hang / thermal / busy) ------------------------

def _single_stick(env, micro_graph):
    """One open stick with an allocated graph, returned to a scenario."""
    topo = USBTopology(env)
    topo.attach_device("ncs0")
    api = NCAPI(env, topo, functional=False)
    return api


def test_hang_timeout_fires(micro_graph):
    """A hung firmware never answers; only the per-call deadline can
    detect it — and it raises DeviceTimeout, not a silent stall."""
    env = Environment()
    api = _single_stick(env, micro_graph)
    device = api.devices[0]

    def scenario():
        dev = yield api.open_device(0)
        graph = yield dev.allocate_compiled(micro_graph)
        device.enable_fault_hooks()
        yield graph.load_tensor(None)
        device.inject_hang()
        t0 = env.now
        with pytest.raises(DeviceTimeout):
            yield graph.get_result(timeout=0.01)
        return env.now - t0

    waited = env.run(until=env.process(scenario()))
    assert waited == pytest.approx(0.01)


def test_injected_thermal_runaway_marks_dead(micro_graph):
    """Thermal shutdown kills the stick instead of looping: further
    calls fail fast with ThermalShutdown."""
    env = Environment()
    api = _single_stick(env, micro_graph)
    device = api.devices[0]

    def scenario():
        dev = yield api.open_device(0)
        graph = yield dev.allocate_compiled(micro_graph)
        device.enable_fault_hooks()
        yield graph.load_tensor(None)
        yield graph.get_result()
        device.inject_thermal_runaway()
        assert device.dead
        assert device.failure_kind == "thermal"
        with pytest.raises(ThermalShutdown):
            yield graph.load_tensor(None)
        yield env.timeout(0)

    env.run(until=env.process(scenario()))
    assert device.thermal is not None and device.thermal.shut_down


def test_organic_thermal_shutdown(micro_graph):
    """A pathological thermal config cooks the stick mid-run; the
    firmware dies through mark_dead instead of hanging the loop."""
    env = Environment()
    api = _single_stick(env, micro_graph)
    device = api.devices[0]
    # Steady state at 2.5 W is 75 C; with a 200 ms time constant and a
    # 40 C cut-off the stick shuts down after a handful of inferences.
    device.thermal = ThermalModel(ThermalConfig(
        throttle_temp_c=35.0, recover_temp_c=30.0,
        shutdown_temp_c=40.0, time_constant_s=0.2))

    def scenario():
        dev = yield api.open_device(0)
        graph = yield dev.allocate_compiled(micro_graph)
        device.enable_fault_hooks()
        done = 0
        with pytest.raises(ThermalShutdown):
            for _ in range(100):
                yield graph.load_tensor(None)
                yield graph.get_result()
                done += 1
        return done

    done = env.run(until=env.process(scenario()))
    assert device.dead and device.failure_kind == "thermal"
    assert 0 < done < 100


def test_busy_is_retried_with_backoff(micro_graph):
    """A short busy window is absorbed by the scheduler's bounded
    retry/backoff loop: all work completes, no failure recorded."""
    env = Environment()
    api = _single_stick(env, micro_graph)
    device = api.devices[0]

    def scenario():
        dev = yield api.open_device(0)
        graph = yield dev.allocate_compiled(micro_graph)
        # Busy for 2 ms; the retry budget (1+2+3 ms of backoff)
        # outlasts it.
        device.inject_busy(0.002)
        sched = MultiVPUScheduler(env, [graph], fault_tolerant=True)
        yield sched.run([WorkItem(i, i, None, None) for i in range(4)])
        return sched

    sched = env.run(until=env.process(scenario()))
    assert len(sched.records) == 4
    assert device.busy_rejections > 0
    assert not sched.failures
    assert not sched.abandoned


def test_busy_gives_up_after_max_retries(micro_graph):
    """A busy window longer than the whole retry budget is treated as
    a device failure: bounded give-up, work abandoned, not an
    infinite retry loop."""
    env = Environment()
    api = _single_stick(env, micro_graph)
    device = api.devices[0]

    def scenario():
        dev = yield api.open_device(0)
        graph = yield dev.allocate_compiled(micro_graph)
        device.inject_busy(10.0)
        sched = MultiVPUScheduler(env, [graph], fault_tolerant=True)
        yield sched.run([WorkItem(i, i, None, None) for i in range(4)])
        return sched

    sched = env.run(until=env.process(scenario()))
    assert len(sched.records) == 0
    assert len(sched.abandoned) == 4
    assert sched.failures and sched.failures[0].kind == "busy"
    # Initial attempt + max_retries further tries, all rejected.
    assert device.busy_rejections == 1 + sched.max_retries
