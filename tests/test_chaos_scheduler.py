"""Property-based chaos tests for the fault-tolerant scheduler.

Every test drives the full NCSw stack (framework -> IntelVPU ->
MultiVPUScheduler -> NCS device model) with a seeded
:class:`~repro.ncsw.faults.FaultPlan` and checks the failover
invariants: no work silently lost, no duplicates, deterministic
replay, and an untouched default path.
"""

import pytest

from repro.data import (ILSVRCValidation, ImageSynthesizer,
                        Preprocessor, SynsetVocabulary)
from repro.errors import FrameworkError
from repro.ncsw import (DeviceFault, FaultPlan, ImageFolder, IntelVPU,
                        NCSw)
from repro.ncsw.faults import BUSY, DEATH, HANG, THERMAL
from repro.nn import get_model
from repro.nn.weights import WeightStore
from repro.vpu import compile_graph

#: A call deadline several healthy micro inferences (~2.7 ms) long:
#: generous enough never to fire on a live stick, short enough to
#: detect a hang quickly.
TIMEOUT = 0.05


def _fingerprint(run):
    """Everything observable about a run, including failure events."""
    return (run.wall_seconds, run.batch_size,
            tuple((r.index, r.device, r.t_submit, r.t_complete)
                  for r in run.records),
            tuple((f.device, f.worker, f.time, f.kind, f.requeued)
                  for f in run.failures),
            run.reassigned, run.abandoned)


@pytest.fixture(scope="module")
def window(chaos_graph):
    """(first-submit time, wall seconds) of a healthy 4-stick run."""
    from repro.ncsw import NCSw, SyntheticSource

    fw = NCSw()
    fw.add_source("synth", SyntheticSource(40))
    fw.add_target("vpu", IntelVPU(graph=chaos_graph, num_devices=4,
                                  functional=False))
    run = fw.run("synth", "vpu", batch_size=40)
    return min(r.t_submit for r in run.records), run.wall_seconds


# -- plan construction -------------------------------------------------

def test_fault_plan_validation():
    with pytest.raises(FrameworkError):
        DeviceFault(device_index=0, at=1.0, kind="meltdown")
    with pytest.raises(FrameworkError):
        DeviceFault(device_index=-1, at=1.0)
    with pytest.raises(FrameworkError):
        DeviceFault(device_index=0, at=-1.0)
    with pytest.raises(FrameworkError):
        FaultPlan.seeded(0, num_devices=4, horizon=1.0, n_faults=5)
    with pytest.raises(FrameworkError):
        FaultPlan.seeded(0, num_devices=4, horizon=0.0)


def test_seeded_plan_is_deterministic():
    kinds = (DEATH, HANG, THERMAL, BUSY)
    a = FaultPlan.seeded(42, num_devices=8, horizon=1.0, n_faults=3,
                         kinds=kinds)
    b = FaultPlan.seeded(42, num_devices=8, horizon=1.0, n_faults=3,
                         kinds=kinds)
    assert a.faults == b.faults
    c = FaultPlan.seeded(43, num_devices=8, horizon=1.0, n_faults=3,
                         kinds=kinds)
    assert a.faults != c.faults


def test_arm_rejects_out_of_range_device(chaos_run):
    plan = FaultPlan.kill(7, at=1.0)  # only 4 devices below
    with pytest.raises(FrameworkError):
        chaos_run(plan, devices=4)


# -- failover properties ----------------------------------------------

def test_any_single_death_completes_all_work(chaos_run, window):
    """Property: any single-device death, at any seeded time and of
    any kind, still yields a completed run with every non-abandoned
    image classified exactly once."""
    t0, wall = window
    for seed in range(6):
        plan = FaultPlan.seeded(seed, num_devices=4, horizon=wall,
                                start=t0,
                                kinds=(DEATH, HANG, THERMAL),
                                n_faults=1)
        res = chaos_run(plan, call_timeout=TIMEOUT)
        assert res.images == 40 - res.abandoned, f"seed {seed}"
        indexes = [r.index for r in res.records]
        assert len(indexes) == len(set(indexes)), (
            f"seed {seed}: duplicate classifications")
        if plan.injected:
            assert res.degraded, f"seed {seed}"
            assert len(res.failures) >= 1


def test_same_seed_is_byte_identical(chaos_run, window):
    """Determinism: replaying a fault seed reproduces the identical
    RunResult, failure-event timestamps included."""
    t0, wall = window
    runs = [chaos_run(FaultPlan.seeded(3, num_devices=4, horizon=wall,
                                       start=t0, n_faults=1),
                      call_timeout=TIMEOUT)
            for _ in range(2)]
    assert _fingerprint(runs[0]) == _fingerprint(runs[1])
    assert runs[0].failures, "the seeded fault never fired"


def test_dynamic_mode_survives_death(chaos_run, window):
    t0, wall = window
    plan = FaultPlan.kill(2, at=t0 + 0.5 * wall)
    res = chaos_run(plan, call_timeout=TIMEOUT, dynamic=True)
    assert res.images == 40 - res.abandoned
    assert res.failures and res.failures[0].kind == "death"
    assert "vpu2" not in {r.device
                          for r in res.records
                          if r.t_complete > t0 + 0.5 * wall + TIMEOUT}


def test_serial_mode_survives_death(chaos_run, window):
    t0, wall = window
    res = chaos_run(FaultPlan.kill(1, at=t0 + 0.5 * wall),
                    call_timeout=TIMEOUT, overlap=False)
    assert res.images == 40 - res.abandoned
    assert res.degraded


def test_all_devices_dead_abandons_remainder(chaos_run, window):
    """Killing every stick mid-run must terminate (no deadlock) with
    the unfinished work abandoned, not lost."""
    t0, wall = window
    kill = t0 + 0.5 * wall
    plan = FaultPlan([DeviceFault(i, at=kill) for i in range(4)])
    res = chaos_run(plan, call_timeout=TIMEOUT)
    assert res.abandoned > 0
    assert res.images == 40 - res.abandoned
    assert len(res.dead_devices()) == 4


def test_fault_machinery_off_is_byte_identical(chaos_run):
    """The headline guarantee: with no faults scheduled, the default
    path, an armed-but-empty plan and bare fault tolerance all produce
    byte-identical results."""
    plain = chaos_run(None)
    armed = chaos_run(None, fault_tolerant=True)
    empty = chaos_run(FaultPlan())
    assert _fingerprint(plain) == _fingerprint(armed)
    assert _fingerprint(plain) == _fingerprint(empty)
    assert not plain.degraded


def test_eight_sticks_kill_one_sustains_most_throughput(chaos_run):
    """Kill 1 of 8 sticks at t=50%: the run completes and the
    survivors sustain roughly 7/8 of baseline throughput."""
    base = chaos_run(None, images=160, devices=8)
    t0 = min(r.t_submit for r in base.records)
    kill = t0 + 0.5 * base.wall_seconds
    res = chaos_run(FaultPlan.kill(5, at=kill), images=160, devices=8,
                    call_timeout=TIMEOUT)
    assert res.abandoned == 0
    assert res.images == 160
    after = [r for r in res.records if r.t_complete > kill]
    assert after
    post = len(after) / (max(r.t_complete for r in after) - kill)
    # 7/8 = 87.5% in steady state; the rescue round's tail costs a few
    # points, so gate at 70% while also requiring it stayed below the
    # healthy rate (a dead stick cannot speed the rig up).
    assert post >= 0.70 * base.throughput()
    assert post <= 1.01 * base.throughput()


# -- functional correctness under failure ------------------------------

@pytest.fixture(scope="module")
def functional_setup():
    """Pretrained micro network + dataset for real classifications."""
    net = get_model("googlenet-micro")
    synth = ImageSynthesizer(num_classes=10, size=32, noise_sigma=0,
                             jitter_shift=0)
    pp = Preprocessor(input_size=32)
    WeightStore(seed=0, logit_scale=8.0).pretrain(
        net, lambda c: pp(synth.template(c)), num_classes=10)
    vocab = SynsetVocabulary(num_classes=10)
    ds = ILSVRCValidation(vocab, synth.with_noise(25.0), num_images=24,
                          subset_size=12)
    return ds, pp, compile_graph(net)


def test_failover_does_not_change_classifications(functional_setup):
    """Images that complete in a degraded run are classified exactly
    as in the healthy run — failover moves work, never corrupts it."""
    ds, pp, graph = functional_setup

    def run(plan=None, timeout=None):
        fw = NCSw()
        fw.add_source("val", ImageFolder(ds, 0, pp))
        fw.add_target("vpu", IntelVPU(graph=graph, num_devices=3,
                                      functional=True,
                                      fault_plan=plan,
                                      call_timeout=timeout))
        return fw.run("val", "vpu", batch_size=24)

    base = run()
    offered = base.images  # subset 0 = half the 24-image validation set
    t0 = min(r.t_submit for r in base.records)
    kill = t0 + 0.5 * base.wall_seconds
    res = run(FaultPlan.kill(1, at=kill), timeout=TIMEOUT)
    assert res.degraded
    assert res.images == offered - res.abandoned
    healthy = {r.index: r for r in base.records}
    for r in res.records:
        b = healthy[r.index]
        assert (r.predicted, r.confidence, r.topk) == (
            b.predicted, b.confidence, b.topk), f"image {r.index}"


# -- grouped runs -------------------------------------------------------

def test_run_group_heterogeneous_fault_plans(chaos_graph):
    """Satellite: per-target fault plans in a group.  The healthy
    group's result is unchanged, byte for byte, by the other group's
    failure."""
    from repro.ncsw import SyntheticSource

    def group(faulty_plan):
        fw = NCSw()
        fw.add_source("synth", SyntheticSource(32))
        fw.add_target("vpu-a", IntelVPU(graph=chaos_graph,
                                        num_devices=2,
                                        functional=False))
        fw.add_target("vpu-b", IntelVPU(
            graph=chaos_graph, num_devices=2, functional=False,
            fault_plan=faulty_plan,
            call_timeout=TIMEOUT if faulty_plan else None))
        return fw.run_group("synth", ["vpu-a", "vpu-b"],
                            batch_size=16)

    healthy = group(None)
    b = healthy["vpu-b"]
    t0 = min(r.t_submit for r in b.records)
    kill = t0 + 0.5 * b.wall_seconds
    mixed = group(FaultPlan.kill(0, at=kill))
    # The faulted group degrades but finishes its split.
    assert mixed["vpu-b"].degraded
    assert mixed["vpu-b"].images == 16 - mixed["vpu-b"].abandoned
    # The healthy group never notices.
    assert _fingerprint(mixed["vpu-a"]) == _fingerprint(
        healthy["vpu-a"])
    assert not mixed["vpu-a"].degraded
