"""Tests for the pipelined two-tier serving target."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.weights import initialize_network
from repro.nn.zoo import get_model
from repro.ncsw.sources import WorkItem
from repro.obs import ObsSession
from repro.serve import InferenceServer, PoissonWorkload
from repro.serve.report import render_slo_report
from repro.sim.core import Environment
from repro.split import SplitPlanner, SplitTarget, build_split_target
from repro.vpu.compiler.compile import compile_graph


@pytest.fixture(scope="module")
def micro():
    net = get_model("googlenet-micro")
    initialize_network(net, seed=0)
    return net


@pytest.fixture(scope="module")
def micro_graph(micro):
    return compile_graph(micro)


def _items(n, net=None, seed=3):
    tensors = [None] * n
    if net is not None:
        rng = np.random.default_rng(seed)
        s = net.input_shape
        tensors = list(rng.standard_normal(
            (n, s.c, s.h, s.w)).astype(np.float32))
    return [WorkItem(index=i, image_id=i, label=None,
                     tensor=tensors[i]) for i in range(n)]


def _run_batch(target, items):
    env = Environment()
    out = {}

    def scenario():
        yield target.prepare(env)
        out["t0"] = env.now
        out["records"] = yield target.process_batch(items)
        out["t1"] = env.now

    env.process(scenario())
    env.run()
    return out


# -- pipelining -------------------------------------------------------------

def test_makespan_is_latency_plus_bottleneck_steps(micro, micro_graph):
    """Deterministic tandem pipeline with unit-capacity stages:
    N requests finish in latency + (N-1) * bottleneck, not N * latency
    — the front half of request k+1 overlaps the back half of k."""
    target = build_split_target(micro, graph=micro_graph,
                                front="vpu", back="cpu",
                                num_sticks=1, functional=False)
    plan = target.plan
    n = 6
    out = _run_batch(target, _items(n))
    makespan = out["t1"] - out["t0"]
    expected = (plan.latency_seconds
                + (n - 1) * plan.bottleneck_seconds)
    assert makespan == pytest.approx(expected, rel=1e-9)
    assert makespan < n * plan.latency_seconds


def test_more_sticks_shorten_the_front_stage(micro, micro_graph):
    n = 8
    makespans = {}
    for sticks in (1, 4):
        target = build_split_target(micro, graph=micro_graph,
                                    front="vpu", back="cpu",
                                    num_sticks=sticks,
                                    functional=False)
        out = _run_batch(target, _items(n))
        makespans[sticks] = out["t1"] - out["t0"]
    assert makespans[4] < makespans[1]


def test_records_carry_per_item_completion_times(micro, micro_graph):
    target = build_split_target(micro, graph=micro_graph,
                                functional=False)
    out = _run_batch(target, _items(5))
    records = out["records"]
    assert len(records) == 5
    assert [r.index for r in records] == list(range(5))
    completions = [r.t_complete for r in records]
    # Unit-capacity FIFO stages: items complete in order, spaced by
    # the bottleneck stage, never all at the batch end.
    assert completions == sorted(completions)
    assert len(set(completions)) == 5
    for r in records:
        assert r.device == target.name
        assert r.t_submit == out["t0"]


# -- functional correctness -------------------------------------------------

@pytest.mark.parametrize("front,back", [("vpu", "cpu"), ("cpu", "vpu")],
                         ids=["vpu-front", "vpu-back"])
def test_predictions_match_monolithic_equivalent_policy(
        micro, micro_graph, front, back):
    """The target's records must reproduce the monolithic forward
    under its advertised equivalent policy, bit for bit."""
    target = build_split_target(micro, graph=micro_graph, front=front,
                                back=back, num_sticks=1,
                                functional=True)
    items = _items(4, net=micro)
    out = _run_batch(target, items)
    x = np.stack([i.tensor for i in items])
    probs = micro.forward(x, target.equivalent_policy).reshape(4, -1)
    for pos, record in enumerate(out["records"]):
        assert record.predicted == int(probs[pos].argmax())
        assert record.confidence == float(probs[pos].max())


def test_process_batch_requires_prepare(micro, micro_graph):
    planner = SplitPlanner(micro, graph=micro_graph)
    target = SplitTarget(micro, planner.best(), functional=False)
    from repro.errors import FrameworkError
    with pytest.raises(FrameworkError):
        target.process_batch(_items(1))


# -- serving integration ----------------------------------------------------

def _serve(micro, micro_graph, obs=None):
    server = InferenceServer(slo_seconds=60.0, obs=obs)
    server.add_target("vpu2+cpu", build_split_target(
        micro, graph=micro_graph, front="vpu", back="cpu",
        num_sticks=2, functional=False))
    return server.run(PoissonWorkload(rate=200.0, seed=11), 50)


def test_serves_through_the_inference_server(micro, micro_graph):
    result = _serve(micro, micro_graph)
    assert result.offered == 50
    assert result.completed == 50


def test_report_is_byte_identical_with_obs_on(micro, micro_graph):
    """The zero-cost observability contract extends to split targets:
    instrumentation must not move the simulated clock."""
    off = render_slo_report(_serve(micro, micro_graph))
    on = render_slo_report(_serve(micro, micro_graph,
                                  obs=ObsSession()))
    assert on == off


def test_obs_emits_split_spans_and_hops(micro, micro_graph):
    obs = ObsSession()
    _serve(micro, micro_graph, obs=obs)
    tracks = {s.track for s in obs.tracer.spans}
    assert any(t.endswith("/front") for t in tracks)
    assert any(t.endswith("/back") for t in tracks)
    stages = {h.stage for t in obs.reqtrace.traces() for h in t.hops}
    assert {"split_front_done", "split_xfer_done",
            "device_done"} <= stages
