"""Split execution is bit-identical to the monolithic forward.

The load-bearing property of ``repro.split``: for ANY monolithic
precision policy P and ANY valid cut, running the front half under P
(capturing the cut blob) and feeding the capture to the back half
under ``half_policies(P)[1]`` reproduces ``network.forward(x, P)``
bit for bit — including cuts that separate a convolution from its
fused in-place ReLU.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.zoo import get_model
from repro.nn.weights import initialize_network
from repro.numerics.quant import Precision, PrecisionPolicy
from repro.split import enumerate_cuts, half_policies, split_network


@pytest.fixture(scope="module")
def micro():
    net = get_model("googlenet-micro")
    initialize_network(net, seed=0)
    return net


@pytest.fixture(scope="module")
def batch(micro):
    rng = np.random.default_rng(42)
    s = micro.input_shape
    return rng.standard_normal((2, s.c, s.h, s.w)).astype(np.float32)


def _split_forward(net, cut, x, policy):
    front, back = split_network(net, cut)
    front_policy, back_policy = half_policies(policy)
    _, captured = front.forward_with_blobs(
        x, front_policy, capture=(cut.blob,))
    return back.forward(captured[cut.blob], back_policy)


@pytest.mark.parametrize("policy", [
    PrecisionPolicy.fp32(),
    PrecisionPolicy.fp16(),
], ids=["fp32", "fp16"])
def test_every_cut_matches_monolithic(micro, batch, policy):
    expected = micro.forward(batch, policy)
    cuts = enumerate_cuts(micro)
    assert len(cuts) >= 10
    for cut in cuts:
        got = _split_forward(micro, cut, batch, policy)
        assert np.array_equal(got, expected), f"cut {cut} diverged"


def test_fused_relu_boundary_cuts_exist_and_match(micro, batch):
    """Cuts that separate a Conv from its in-place ReLU stay exact.

    The monolithic plan fuses the pair into one step; the split plan
    cannot (they live in different halves).  Fusion is value-exact,
    so the results must still agree bit-for-bit.
    """
    cuts = enumerate_cuts(micro)
    boundary = [c for c in cuts
                if c.back_names[0].startswith("relu_")
                and c.front_names[-1] == c.back_names[0][5:]]
    assert boundary, "no conv|relu boundary cut found"
    for policy in (PrecisionPolicy.fp16(), PrecisionPolicy.fp32()):
        expected = micro.forward(batch, policy)
        for cut in boundary:
            got = _split_forward(micro, cut, batch, policy)
            assert np.array_equal(got, expected)


@settings(max_examples=20, deadline=None)
@given(data=st.data())
def test_split_matches_monolithic_property(data):
    """Random cut x random layer-filter policy -> bit identity.

    Covers the hard case: policies whose ``layer_filter`` straddles
    the cut, where the back half must NOT re-quantise the cut blob
    (its producer may be outside the filter).
    """
    net = _property_net()
    x = _property_batch(net)
    cuts = enumerate_cuts(net)
    cut = data.draw(st.sampled_from(cuts), label="cut")
    names = [l.name for l in net.layers]
    subset = data.draw(
        st.sets(st.sampled_from(names), min_size=1), label="filter")
    quantize_input = data.draw(
        st.sampled_from([None, True, False]), label="quantize_input")
    policy = PrecisionPolicy(
        Precision.FP16, True, True,
        layer_filter=frozenset(subset),
        quantize_input=quantize_input)

    expected = net.forward(x, policy)
    got = _split_forward(net, cut, x, policy)
    assert np.array_equal(got, expected)


# Module-level cache so hypothesis examples share one initialised
# network and input batch (function-scoped fixtures are off-limits
# inside @given).
_CACHE: dict = {}


def _property_net():
    if "net" not in _CACHE:
        net = get_model("googlenet-micro")
        initialize_network(net, seed=0)
        _CACHE["net"] = net
    return _CACHE["net"]


def _property_batch(net):
    if "x" not in _CACHE:
        rng = np.random.default_rng(7)
        s = net.input_shape
        _CACHE["x"] = rng.standard_normal(
            (1, s.c, s.h, s.w)).astype(np.float32)
    return _CACHE["x"]


def test_half_policies_disable_back_input_quantisation():
    front, back = half_policies(PrecisionPolicy.fp16())
    assert front.quantize_input_blob
    assert not back.quantize_input_blob
    assert back.quantize_activations  # layers still round
