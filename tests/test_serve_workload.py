"""Tests for the open-loop workload generators (repro.serve.workload)."""

import numpy as np
import pytest

from repro.errors import FrameworkError
from repro.serve import (
    BurstyWorkload,
    DiurnalWorkload,
    PoissonWorkload,
    Request,
    TraceWorkload,
)

ALL_SEEDED = [
    PoissonWorkload(50.0, seed=7),
    BurstyWorkload(10.0, 200.0, seed=7),
    DiurnalWorkload(80.0, period_s=5.0, seed=7),
]


# -- determinism contract ---------------------------------------------------

@pytest.mark.parametrize("workload", ALL_SEEDED,
                         ids=lambda w: w.name)
def test_same_seed_reproduces_arrivals_exactly(workload):
    a = workload.arrival_times(200)
    b = type(workload)(**{
        "poisson": dict(rate=50.0, seed=7),
        "bursty": dict(base_rate=10.0, burst_rate=200.0, seed=7),
        "diurnal": dict(peak_rate=80.0, period_s=5.0, seed=7),
    }[workload.name]).arrival_times(200)
    assert a == b  # byte-identical, not approx


@pytest.mark.parametrize("workload", ALL_SEEDED,
                         ids=lambda w: w.name)
def test_arrivals_positive_and_nondecreasing(workload):
    times = workload.arrival_times(300)
    assert len(times) == 300
    assert all(t > 0 for t in times)
    assert all(b >= a for a, b in zip(times, times[1:]))


def test_different_seeds_differ():
    a = PoissonWorkload(50.0, seed=0).arrival_times(50)
    b = PoissonWorkload(50.0, seed=1).arrival_times(50)
    assert a != b


def test_poisson_mean_rate_roughly_right():
    times = PoissonWorkload(100.0, seed=3).arrival_times(2000)
    assert 2000 / times[-1] == pytest.approx(100.0, rel=0.1)


def test_poisson_validation():
    with pytest.raises(FrameworkError):
        PoissonWorkload(0.0)
    with pytest.raises(FrameworkError):
        PoissonWorkload(-5.0)


# -- bursty (MMPP-2) --------------------------------------------------------

def test_bursty_validation():
    with pytest.raises(FrameworkError):
        BurstyWorkload(0.0, 10.0)
    with pytest.raises(FrameworkError):
        BurstyWorkload(10.0, 10.0)  # burst must exceed base
    with pytest.raises(FrameworkError):
        BurstyWorkload(10.0, 100.0, mean_quiet_s=0.0)


def test_bursty_mean_rate_is_dwell_weighted():
    wl = BurstyWorkload(10.0, 100.0, mean_quiet_s=2.0,
                        mean_burst_s=0.5)
    assert wl.mean_rate == pytest.approx(
        (10.0 * 2.0 + 100.0 * 0.5) / 2.5)


def test_bursty_has_burstier_gaps_than_poisson():
    # Squared coefficient of variation of inter-arrival gaps: 1 for
    # Poisson, substantially above 1 for an MMPP with a hot state.
    bursty = BurstyWorkload(5.0, 500.0, mean_quiet_s=1.0,
                            mean_burst_s=0.2, seed=11)
    gaps = np.diff(bursty.arrival_times(2000))
    cv2 = np.var(gaps) / np.mean(gaps) ** 2
    assert cv2 > 2.0


# -- diurnal ----------------------------------------------------------------

def test_diurnal_rate_profile():
    wl = DiurnalWorkload(100.0, period_s=10.0, floor_frac=0.1)
    assert wl.rate_at(0.0) == pytest.approx(10.0)      # trough
    assert wl.rate_at(5.0) == pytest.approx(100.0)     # mid-period peak
    assert wl.rate_at(10.0) == pytest.approx(10.0)     # next trough
    with pytest.raises(FrameworkError):
        DiurnalWorkload(100.0, floor_frac=0.0)
    with pytest.raises(FrameworkError):
        DiurnalWorkload(100.0, period_s=-1.0)


def test_diurnal_arrivals_track_the_ramp():
    wl = DiurnalWorkload(200.0, period_s=10.0, floor_frac=0.05,
                         seed=5)
    times = [t for t in wl.arrival_times(2000) if t < 10.0]
    trough = sum(1 for t in times if t < 2.0 or t > 8.0)
    peak = sum(1 for t in times if 3.0 < t < 7.0)
    assert peak > 3 * trough


def test_diurnal_phase_is_the_shared_day_model():
    # diurnal_phase(t) is the single source of truth for "where in
    # the day are we": the arrival generator thins against it and the
    # predictive autoscaler provisions from it.  Pin its shape so the
    # two can never drift apart.
    wl = DiurnalWorkload(100.0, period_s=10.0, floor_frac=0.1)
    assert wl.diurnal_phase(0.0) == pytest.approx(0.1)    # trough
    assert wl.diurnal_phase(5.0) == pytest.approx(1.0)    # peak
    assert wl.diurnal_phase(2.5) == pytest.approx(0.55)   # mid-ramp
    # Periodic: the modelled day repeats exactly.
    for t in (0.3, 2.5, 7.9):
        assert wl.diurnal_phase(t + 10.0) == \
            pytest.approx(wl.diurnal_phase(t))
    # Bounded within [floor_frac, 1] everywhere.
    phases = [wl.diurnal_phase(t / 10) for t in range(200)]
    assert min(phases) >= 0.1 and max(phases) <= 1.0
    # rate_at is exactly peak * phase — same floats, not approx.
    for t in (0.0, 1.7, 5.0, 8.25):
        assert wl.rate_at(t) == 100.0 * wl.diurnal_phase(t)


def test_diurnal_arrivals_pinned():
    # Regression pin: refactoring rate_at() onto diurnal_phase() must
    # not move a single arrival — the thinning loop still divides by
    # peak_rate, so these exact floats are the determinism contract.
    wl = DiurnalWorkload(100.0, period_s=10.0, floor_frac=0.1, seed=3)
    assert wl.arrival_times(5) == [
        0.5872664704763035, 0.6285456419484563, 0.6503575071430396,
        0.6600187289391491, 0.7475024826867502]


# -- trace replay -----------------------------------------------------------

def test_trace_validation():
    with pytest.raises(FrameworkError):
        TraceWorkload([])
    with pytest.raises(FrameworkError):
        TraceWorkload([0.1, -0.2])
    with pytest.raises(FrameworkError):
        TraceWorkload([0.3, 0.1])  # decreasing


def test_trace_replay_and_exhaustion():
    wl = TraceWorkload([0.0, 0.5, 1.0])
    assert wl.arrival_times(2) == [0.0, 0.5]
    with pytest.raises(FrameworkError):
        wl.arrival_times(4)
    assert "3 arrivals" in wl.describe()


def test_trace_from_file(tmp_path):
    path = tmp_path / "trace.txt"
    path.write_text("# recorded arrivals\n0.1\n\n0.25\n0.9\n")
    wl = TraceWorkload.from_file(path)
    assert wl.arrival_times(3) == [0.1, 0.25, 0.9]
    empty = tmp_path / "empty.txt"
    empty.write_text("# nothing\n")
    with pytest.raises(FrameworkError):
        TraceWorkload.from_file(empty)


# -- request materialisation ------------------------------------------------

def test_requests_carry_deadlines_and_payloads():
    wl = TraceWorkload([0.0, 1.0])
    payloads = [np.zeros(3, dtype=np.float32),
                np.ones(3, dtype=np.float32)]
    reqs = wl.requests(2, deadline_s=0.5, payloads=payloads)
    assert [r.request_id for r in reqs] == [0, 1]
    assert reqs[0].deadline_at == pytest.approx(0.5)
    assert reqs[1].deadline_at == pytest.approx(1.5)
    np.testing.assert_array_equal(reqs[1].tensor, payloads[1])
    no_deadline = wl.requests(2)
    assert all(r.deadline_at is None for r in no_deadline)


def test_requests_validation():
    wl = TraceWorkload([0.0, 1.0])
    with pytest.raises(FrameworkError):
        wl.requests(0)
    with pytest.raises(FrameworkError):
        wl.requests(1, deadline_s=0.0)
    with pytest.raises(FrameworkError):
        wl.requests(2, payloads=[None])  # payload source too short


def test_request_stage_properties():
    req = Request(request_id=0, arrival_time=1.0)
    assert req.queue_wait is None
    assert req.batch_wait is None
    assert req.service_seconds is None
    assert req.e2e_latency is None
    req.admitted_at = 1.0
    req.dequeued_at = 1.2
    req.dispatched_at = 1.3
    req.completed_at = 1.8
    assert req.queue_wait == pytest.approx(0.2)
    assert req.batch_wait == pytest.approx(0.1)
    assert req.service_seconds == pytest.approx(0.5)
    assert req.e2e_latency == pytest.approx(0.8)


def test_describe_lines():
    assert "poisson" in PoissonWorkload(5.0).describe()
    assert "seed" in PoissonWorkload(5.0, seed=3).describe()
    assert "bursty" in BurstyWorkload(1.0, 10.0).describe()
    assert "diurnal" in DiurnalWorkload(5.0).describe()
