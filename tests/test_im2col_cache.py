"""Index/scratch caching in the im2col path must never change values.

The gather indices depend only on the geometry key, so a cached hit
must produce byte-identical patches to a cold build — in every dtype
the lowering supports.  The same holds for col2im (which shares the
flat index cache) and for conv2d_gemm's accumulation dtype handling:
the output dtype always follows the input, never a silently promoted
float64 from the bias.
"""

import numpy as np
import pytest

from repro.tensors import col2im, im2col
from repro.tensors.im2col import (
    clear_patch_caches,
    conv2d_gemm,
    patch_cache_info,
)


def _input(dtype, seed=0, shape=(2, 3, 9, 9)):
    rng = np.random.RandomState(seed)
    return rng.randn(*shape).astype(dtype)


@pytest.mark.parametrize("dtype", [np.float32, np.float16])
@pytest.mark.parametrize("kernel,stride,pad", [(3, 1, 1), (5, 2, 2),
                                               (1, 1, 0)])
def test_im2col_cached_equals_cold(dtype, kernel, stride, pad):
    x = _input(dtype)
    clear_patch_caches()
    cold = im2col(x, kernel, stride, pad)
    assert patch_cache_info()["index_entries"] == 1
    warm = im2col(x, kernel, stride, pad)
    assert warm.dtype == cold.dtype == np.dtype(dtype)
    assert cold.tobytes() == warm.tobytes()


@pytest.mark.parametrize("dtype", [np.float32, np.float16])
def test_col2im_cached_equals_cold(dtype):
    x = _input(dtype)
    cols = im2col(x, 3, 1, 1)
    clear_patch_caches()
    cold = col2im(cols, x.shape, 3, 1, 1)
    warm = col2im(cols, x.shape, 3, 1, 1)
    assert warm.dtype == cold.dtype == np.dtype(dtype)
    assert cold.tobytes() == warm.tobytes()


def test_scratch_buffer_reuse_does_not_leak_between_inputs():
    # The padded scratch buffer is reused across calls; a second call
    # with different data must not see remnants of the first.
    a = _input(np.float32, seed=1)
    b = _input(np.float32, seed=2)
    clear_patch_caches()
    cols_a1 = im2col(a, 3, 1, 1)
    im2col(b, 3, 1, 1)  # overwrites the scratch interior
    cols_a2 = im2col(a, 3, 1, 1)
    assert cols_a1.tobytes() == cols_a2.tobytes()


def test_index_cache_is_bounded():
    import importlib

    # The package re-exports the im2col *function* over the submodule
    # attribute, so fetch the module itself for its cache constants.
    mod = importlib.import_module("repro.tensors.im2col")

    clear_patch_caches()
    x = _input(np.float32, shape=(1, 1, 20, 20))
    for k in (1, 2, 3):
        for s in (1, 2):
            for p in range(k):  # pad must stay below the kernel
                im2col(x, k, s, p)
    info = patch_cache_info()
    assert 0 < info["index_entries"] <= mod._INDEX_CACHE_SIZE
    assert 0 <= info["scratch_entries"] <= mod._SCRATCH_CACHE_SIZE


@pytest.mark.parametrize("dtype", [np.float32, np.float16])
def test_conv2d_gemm_output_dtype_follows_input(dtype):
    x = _input(dtype, shape=(2, 3, 8, 8))
    rng = np.random.RandomState(3)
    w = rng.randn(4, 3, 3, 3).astype(dtype)
    # A float64 bias must not leak float64 into the activations.
    bias = rng.randn(4).astype(np.float64)
    out = conv2d_gemm(x, w, bias, stride=1, pad=1)
    assert out.dtype == np.dtype(dtype)


def test_conv2d_gemm_float16_matches_float32_reference():
    x32 = _input(np.float32, shape=(1, 2, 6, 6))
    rng = np.random.RandomState(4)
    w32 = rng.randn(3, 2, 3, 3).astype(np.float32)
    b32 = rng.randn(3).astype(np.float32)
    ref = conv2d_gemm(x32, w32, b32, stride=1, pad=1)
    out16 = conv2d_gemm(x32.astype(np.float16), w32.astype(np.float16),
                        b32.astype(np.float16), stride=1, pad=1)
    assert out16.dtype == np.float16
    # Half precision carries ~3 decimal digits; the values must agree
    # to fp16 resolution, proving the lowering itself is unchanged.
    np.testing.assert_allclose(out16.astype(np.float32), ref,
                               rtol=5e-3, atol=5e-3)
