"""The reproduction audit: every quantitative claim in the paper."""

import pytest

from repro.harness.claims import (
    CLAIMS,
    FUNCTIONAL_CLAIMS,
    render_audit,
    verify_claims,
    verify_functional_claims,
)


@pytest.fixture(scope="module")
def timing_audit():
    return verify_claims(images=64)


def test_every_timing_claim_passes(timing_audit):
    failures = [r for r in timing_audit if not r.passed]
    assert not failures, render_audit(failures)


def test_audit_covers_all_registered_claims(timing_audit):
    assert len(timing_audit) == len(CLAIMS)
    assert len({r.claim.claim_id for r in timing_audit}) == len(CLAIMS)


def test_anchored_claims_are_tight(timing_audit):
    """Calibration anchors must deviate by well under a percent."""
    anchored = {"cpu-single-latency", "gpu-single-latency",
                "vpu-single-latency"}
    for r in timing_audit:
        if r.claim.claim_id in anchored:
            assert r.deviation < 0.01, r.claim.claim_id


def test_claims_carry_quotes():
    for claim in CLAIMS + FUNCTIONAL_CLAIMS:
        assert claim.quote
        assert claim.section.startswith(("§", "abstract"))


def test_functional_claims_pass():
    results = verify_functional_claims(scale="smoke")
    failures = [r for r in results if not r.passed]
    assert not failures, render_audit(failures)
    assert len(results) == len(FUNCTIONAL_CLAIMS)


def test_render_audit(timing_audit):
    text = render_audit(timing_audit)
    assert "claims verified" in text
    assert f"{len(CLAIMS)}/{len(CLAIMS)}" in text
