"""Tests for Caffe-style 10-crop oversampling."""

import numpy as np
import pytest

from repro.data import ImageSynthesizer, Preprocessor
from repro.data.augment import oversampled_predict, ten_crop
from repro.errors import DatasetError
from repro.nn import get_model
from repro.nn.weights import WeightStore


def test_ten_crop_shapes():
    img = np.arange(10 * 12 * 3, dtype=np.uint8).reshape(10, 12, 3)
    crops = ten_crop(img, 8)
    assert crops.shape == (10, 8, 8, 3)


def test_ten_crop_positions():
    img = np.zeros((10, 10, 3), dtype=np.uint8)
    img[0, 0] = 1      # top-left corner marker
    img[9, 9] = 2      # bottom-right corner marker
    crops = ten_crop(img, 4)
    assert crops[0, 0, 0, 0] == 1          # top-left crop holds marker
    assert crops[3, 3, 3, 0] == 2          # bottom-right crop ditto
    assert np.all(crops[4] == 0)           # centre crop sees neither


def test_ten_crop_mirrors():
    rng = np.random.default_rng(0)
    img = rng.integers(0, 256, size=(8, 8, 3)).astype(np.uint8)
    crops = ten_crop(img, 6)
    for i in range(5):
        np.testing.assert_array_equal(crops[i + 5],
                                      crops[i][:, ::-1])


def test_ten_crop_validation():
    with pytest.raises(DatasetError):
        ten_crop(np.zeros((8, 8), dtype=np.uint8), 4)
    with pytest.raises(DatasetError):
        ten_crop(np.zeros((8, 8, 3), dtype=np.uint8), 10)


def test_oversampled_predict_mechanics_and_documented_limitation():
    """Oversampling runs end to end; on the synthetic substrate it
    *degrades* accuracy (crops are off-distribution for the whole-
    image-calibrated prototype classifier — see the module docstring
    and EXPERIMENTS.md), which this test pins down as the expected
    behaviour rather than letting it drift silently."""
    net = get_model("googlenet-micro")
    synth = ImageSynthesizer(num_classes=10, size=48, noise_sigma=0,
                             jitter_shift=0)
    pp = Preprocessor(input_size=32)
    WeightStore(seed=0).pretrain(
        net, lambda c: pp(synth.template(c)), num_classes=10)

    noisy = synth.with_noise(30.0)
    rng = np.random.default_rng(1)
    labels = rng.integers(0, 10, size=32)
    single_hits = over_hits = 0
    for i, c in enumerate(labels):
        img = noisy.sample(int(c), 9000 + i)
        pred, _ = net.predict(pp(img)[None])
        single_hits += int(pred[0] == c)
        label, conf = oversampled_predict(net, pp, img)
        over_hits += int(label == c)
        assert 0 < conf <= 1
        assert 0 <= label < 10
    # Single-crop (the calibrated protocol) clearly beats crops on
    # this substrate — the documented substitution caveat.
    assert single_hits > over_hits


def test_oversampled_predict_needs_headroom():
    net = get_model("googlenet-micro")
    pp = Preprocessor(input_size=32)
    with pytest.raises(DatasetError):
        oversampled_predict(
            net, pp, np.zeros((32, 32, 3), dtype=np.uint8))
