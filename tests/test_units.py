"""Tests for unit helpers."""

import pytest

from repro import units


def test_frequency_constants():
    assert units.MHZ == 1e6
    assert 600 * units.MHZ == 6e8


def test_size_constants():
    assert units.MiB == 1024 ** 2
    assert 2 * units.MiB == 2097152
    assert units.MB == 1e6


def test_cycles_to_seconds():
    # 600 cycles at 600 MHz = 1 microsecond
    assert units.cycles_to_seconds(600, 600 * units.MHZ) == pytest.approx(
        1e-6)


def test_seconds_to_cycles_roundtrip():
    f = 600 * units.MHZ
    assert units.seconds_to_cycles(
        units.cycles_to_seconds(12345, f), f) == pytest.approx(12345)


def test_cycles_invalid_frequency():
    with pytest.raises(ValueError):
        units.cycles_to_seconds(1, 0)
    with pytest.raises(ValueError):
        units.seconds_to_cycles(1, -5)


def test_transfer_time_bandwidth_only():
    # 400 MB/s moving 4 MB -> 10 ms
    t = units.transfer_time(4 * units.MB, 400 * units.MB)
    assert t == pytest.approx(0.01)


def test_transfer_time_with_latency():
    t = units.transfer_time(0, 1 * units.GB, latency_s=1e-4)
    assert t == pytest.approx(1e-4)


def test_transfer_time_validation():
    with pytest.raises(ValueError):
        units.transfer_time(1, 0)
    with pytest.raises(ValueError):
        units.transfer_time(-1, 1)


def test_ms_conversions():
    assert units.seconds_to_ms(0.0227) == pytest.approx(22.7)
    assert units.ms_to_seconds(100.7) == pytest.approx(0.1007)


def test_fmt_bytes():
    assert units.fmt_bytes(512) == "512 B"
    assert units.fmt_bytes(2 * units.MiB) == "2.0 MiB"
    assert units.fmt_bytes(4 * units.GiB) == "4.0 GiB"


def test_fmt_time():
    assert units.fmt_time(0) == "0 s"
    assert units.fmt_time(1.5) == "1.500 s"
    assert "ms" in units.fmt_time(0.0129)
    assert "us" in units.fmt_time(3e-5)
    assert "ns" in units.fmt_time(5e-8)


def test_fmt_rate():
    assert units.fmt_rate(772, 10) == "77.2 img/s"
    assert units.fmt_rate(1, 0) == "inf img/s"
