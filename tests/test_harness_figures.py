"""Integration tests: the figure drivers reproduce the paper's shapes.

Timing figures run at paper-scale geometry (fast — non-functional);
precision figures run at the smoke scale to keep the suite quick.
Tolerances check *shape*: orderings, ratios, crossovers.
"""

import numpy as np
import pytest

from repro.errors import ReproError
from repro.harness import (
    SCALES,
    bar_chart,
    fig6a_throughput_per_subset,
    fig6b_normalized_scaling,
    fig7a_top1_error,
    fig7b_confidence_difference,
    fig8a_throughput_per_watt,
    fig8b_projected_throughput,
    get_context,
    headline_table,
    line_chart,
    render_comparison,
    render_figure_table,
)

TIMING_IMAGES = 64  # enough for steady state; keeps the suite fast


# --- experiment context ------------------------------------------------------

def test_scales_registered():
    assert {"paper", "default", "smoke"} <= set(SCALES)
    assert SCALES["paper"].images_per_subset == 10_000
    assert SCALES["paper"].model == "googlenet"


def test_get_context_unknown_scale():
    with pytest.raises(ReproError):
        get_context("galactic")


def test_smoke_context_build_and_cache():
    ctx = get_context("smoke")
    assert ctx.network is get_context("smoke").network  # cached
    assert ctx.calibration.noise_sigma > 0
    assert ctx.dataset.num_subsets == 5
    assert ctx.graph.precision.value == "fp16"


# --- fig6a ---------------------------------------------------------------------

@pytest.fixture(scope="module")
def fig6a():
    return fig6a_throughput_per_subset(images_per_subset=TIMING_IMAGES)


def test_fig6a_reproduces_paper_throughputs(fig6a):
    cpu = np.mean(fig6a.by_label("cpu").y)
    gpu = np.mean(fig6a.by_label("gpu").y)
    vpu = np.mean(fig6a.by_label("vpu").y)
    # Shape: VPU ~ GPU > CPU, with the paper's ~40% CPU gap.
    assert cpu == pytest.approx(44.0, rel=0.06)
    assert gpu == pytest.approx(74.2, rel=0.06)
    assert vpu == pytest.approx(77.2, rel=0.06)
    assert vpu > gpu > cpu


def test_fig6a_has_five_subsets(fig6a):
    for s in fig6a.series:
        assert len(s.x) == 5
        assert s.x[0] == "Set-1"


# --- fig6b -----------------------------------------------------------------------

@pytest.fixture(scope="module")
def fig6b():
    return fig6b_normalized_scaling(images=TIMING_IMAGES)


def test_fig6b_vpu_near_ideal_scaling(fig6b):
    vpu = fig6b.by_label("vpu").y
    assert vpu[0] == pytest.approx(1.0)
    assert vpu[1] == pytest.approx(2.0, rel=0.1)
    assert vpu[3] == pytest.approx(7.8, rel=0.1)  # close to 8x
    assert vpu[3] < 8.0  # but with the paper's small penalty


def test_fig6b_cpu_barely_scales(fig6b):
    cpu = fig6b.by_label("cpu").y
    assert cpu[3] == pytest.approx(1.15, abs=0.05)  # 14.7% gain


def test_fig6b_gpu_moderate_scaling(fig6b):
    gpu = fig6b.by_label("gpu").y
    assert gpu[3] == pytest.approx(1.9, abs=0.1)  # 92.5% gain


def test_fig6b_ordering_at_batch8(fig6b):
    at8 = {s.label: s.y[3] for s in fig6b.series}
    assert at8["vpu"] > at8["gpu"] > at8["cpu"]


# --- fig8a ------------------------------------------------------------------------

@pytest.fixture(scope="module")
def fig8a():
    return fig8a_throughput_per_watt(images=TIMING_IMAGES)


def test_fig8a_vpu_over_3x_better(fig8a):
    cpu = fig8a.by_label("cpu").y
    gpu = fig8a.by_label("gpu").y
    vpu = fig8a.by_label("vpu").y
    # Paper: over 3x higher throughput/W at every batch size.
    for b in range(4):
        assert vpu[b] > 3 * max(cpu[b], gpu[b])


def test_fig8a_paper_anchors(fig8a):
    assert fig8a.by_label("vpu").y[0] == pytest.approx(3.97, rel=0.05)
    assert fig8a.by_label("cpu").y[3] == pytest.approx(0.55, rel=0.05)
    assert fig8a.by_label("gpu").y[3] == pytest.approx(0.93, rel=0.05)


def test_fig8a_vpu_ratio_flat_with_devices(fig8a):
    vpu = fig8a.by_label("vpu").y
    # Adding sticks barely changes img/W (small transfer penalty only).
    assert min(vpu) > 0.95 * max(vpu)


# --- fig8b --------------------------------------------------------------------------

@pytest.fixture(scope="module")
def fig8b():
    return fig8b_projected_throughput(images=TIMING_IMAGES)


def test_fig8b_projection_and_plateaus(fig8b):
    cpu = fig8b.by_label("cpu").y
    gpu = fig8b.by_label("gpu").y
    vpu = fig8b.by_label("vpu").y
    assert cpu[-1] == pytest.approx(44.5, rel=0.05)
    assert gpu[-1] == pytest.approx(79.9, rel=0.05)
    assert vpu[-1] == pytest.approx(153.0, rel=0.05)
    # Crossover shape: VPU behind both at batch 1-4, ahead at 8+.
    assert vpu[0] < cpu[0] and vpu[0] < gpu[0]
    assert vpu[3] > gpu[3] > cpu[3]
    # Projected factors over CPU/GPU (paper: 3.4x and 1.9x).
    assert vpu[-1] / cpu[-1] == pytest.approx(3.4, abs=0.2)
    assert vpu[-1] / gpu[-1] == pytest.approx(1.9, abs=0.15)


# --- fig7a / fig7b (functional, smoke scale) -------------------------------------------

@pytest.fixture(scope="module")
def fig7a():
    return fig7a_top1_error(scale="smoke")


def test_fig7a_errors_near_target(fig7a):
    cpu = np.array(fig7a.by_label("cpu_fp32").y)
    vpu = np.array(fig7a.by_label("vpu_fp16").y)
    # Calibrated to ~32%; smoke scale tolerates wide sampling noise.
    assert 0.1 < cpu.mean() < 0.55
    assert 0.1 < vpu.mean() < 0.55


def test_fig7a_fp16_delta_negligible(fig7a):
    cpu = np.array(fig7a.by_label("cpu_fp32").y)
    vpu = np.array(fig7a.by_label("vpu_fp16").y)
    # Paper: 0.09 percentage points; allow a few points at smoke scale.
    assert abs(cpu.mean() - vpu.mean()) < 0.05


def test_fig7a_gpu_equivalent_to_cpu(fig7a):
    cpu = np.array(fig7a.by_label("cpu_fp32").y)
    gpu = np.array(fig7a.by_label("gpu_fp32").y)
    np.testing.assert_array_equal(cpu, gpu)  # same FP32 path


def test_fig7b_confidence_diff_small_but_nonzero():
    fig7b = fig7b_confidence_difference(scale="smoke", num_subsets=2)
    diffs = np.array(fig7b.series[0].y)
    assert np.all(diffs > 0)
    assert np.all(diffs < 0.05)  # paper: 0.44%


# --- headline table ----------------------------------------------------------------------

def test_headline_table_timing_rows():
    rows = headline_table(images=TIMING_IMAGES, error_scale=None)
    by = {name: (paper, measured) for name, paper, measured in rows}
    paper, measured = by["vpu_single_ms"]
    assert measured == pytest.approx(100.7, rel=0.03)
    paper, measured = by["cpu_vs_vpu_slowdown_pct"]
    assert measured == pytest.approx(40.7, abs=3.0)
    paper, measured = by["vpu_single_vs_cpu_factor"]
    assert measured == pytest.approx(4.0, abs=0.4)
    paper, measured = by["tdp_reduction_sticks"]
    assert measured == pytest.approx(4.0)


# --- renderers -----------------------------------------------------------------------------

def test_render_figure_table(fig6b):
    out = render_figure_table(fig6b)
    assert "fig6b" in out
    assert "cpu" in out and "vpu" in out
    assert "paper reference" in out


def test_render_comparison():
    out = render_comparison([("metric_a", 2.0, 2.1)])
    assert "metric_a" in out and "1.050" in out


def test_bar_chart_renders(fig6a):
    out = bar_chart(fig6a)
    assert "fig6a" in out
    assert "|" in out and "#" in out


def test_line_chart_renders(fig8b):
    out = line_chart(fig8b)
    assert "fig8b" in out
    assert "=cpu" in out and "=vpu" in out
