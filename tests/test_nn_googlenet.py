"""Tests for the GoogLeNet builder, weights, and model zoo."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.nn import (
    GoogLeNetConfig,
    Network,
    build_googlenet,
    get_model,
    initialize_network,
    list_models,
)
from repro.nn.googlenet import INCEPTION_TABLE, feature_blob_name
from repro.nn.weights import WeightStore
from repro.nn.zoo import model_entry


def test_inception_table_matches_szegedy():
    # Output channels of each module must match the published table.
    expected_out = {"3a": 256, "3b": 480, "4a": 512, "4b": 512,
                    "4c": 512, "4d": 528, "4e": 832, "5a": 832,
                    "5b": 1024}
    for tag, (c1, _, c3, _, c5, cp) in INCEPTION_TABLE.items():
        assert c1 + c3 + c5 + cp == expected_out[tag]


def test_paper_scale_shapes():
    net = build_googlenet()  # 224px, width 1.0
    shapes = net.infer_shapes()
    assert shapes["conv1/7x7_s2"].as_tuple() == (1, 64, 112, 112)
    assert shapes["pool2/3x3_s2"].as_tuple() == (1, 192, 28, 28)
    assert shapes["inception_3a/output"].as_tuple() == (1, 256, 28, 28)
    assert shapes["inception_4a/output"].as_tuple() == (1, 512, 14, 14)
    assert shapes["inception_5b/output"].as_tuple() == (1, 1024, 7, 7)
    assert shapes["pool5/drop_in"].as_tuple() == (1, 1024, 1, 1)
    assert shapes["prob"].as_tuple() == (1, 1000, 1, 1)


def test_paper_scale_param_count():
    # BVLC GoogLeNet has ~7.0M parameters (6.99M); deploy net w/o aux.
    net = build_googlenet()
    params = sum(l.param_count() for l in net.layers)
    assert 6.5e6 < params < 7.5e6


def test_paper_scale_macs():
    # ~1.5 GMAC per 224x224 image (Szegedy et al. report ~1.5B).
    macs = build_googlenet().total_macs(batch=1)
    assert 1.2e9 < macs < 2.0e9


def test_layer_count_matches_deploy_prototxt():
    # BVLC deploy: 57 convs+9 concats+13 pools+2 LRN+57 relus... we
    # assert the structural counts per type.
    net = build_googlenet()
    by_type = {}
    for l in net.layers:
        by_type[l.type_name()] = by_type.get(l.type_name(), 0) + 1
    assert by_type["Convolution"] == 57  # 3 stem + 9 modules * 6
    assert by_type["Concat"] == 9
    assert by_type["LRN"] == 2
    assert by_type["Pooling"] == 14  # pool1,2,3,4 + 9 module pools + avg
    assert by_type["InnerProduct"] == 1
    assert by_type["Softmax"] == 1
    assert by_type["Dropout"] == 1


def test_width_scaling_reduces_params():
    full = build_googlenet(GoogLeNetConfig(input_size=64))
    quarter = build_googlenet(GoogLeNetConfig(input_size=64, width=0.25))
    p_full = sum(l.param_count() for l in full.layers)
    p_quarter = sum(l.param_count() for l in quarter.layers)
    assert p_quarter < p_full / 8  # params scale ~quadratically in width


def test_mini_variant_runs_forward():
    net = get_model("googlenet-micro")
    initialize_network(net, seed=0)
    x = np.random.default_rng(0).normal(
        size=(2, 3, 32, 32)).astype(np.float32) * 0.1
    out = net.forward(x)
    assert out.shape == (2, 10, 1, 1)
    np.testing.assert_allclose(out.sum(axis=1), 1.0, rtol=1e-4)


def test_config_validation():
    with pytest.raises(GraphError):
        GoogLeNetConfig(num_classes=1)
    with pytest.raises(GraphError):
        GoogLeNetConfig(input_size=16)
    with pytest.raises(GraphError):
        GoogLeNetConfig(width=0)
    with pytest.raises(GraphError):
        GoogLeNetConfig(width=1.5)


def test_include_lrn_false_drops_lrn():
    net = build_googlenet(GoogLeNetConfig(input_size=64,
                                          include_lrn=False))
    assert all(l.type_name() != "LRN" for l in net.layers)
    net.validate()


def test_initialize_network_deterministic():
    a = get_model("googlenet-micro")
    b = get_model("googlenet-micro")
    initialize_network(a, seed=7)
    initialize_network(b, seed=7)
    for la, lb in zip(a.layers, b.layers):
        for role in la.params:
            np.testing.assert_array_equal(la.params[role],
                                          lb.params[role])


def test_initialize_network_seed_changes_weights():
    a = get_model("googlenet-micro")
    b = get_model("googlenet-micro")
    initialize_network(a, seed=1)
    initialize_network(b, seed=2)
    wa = a.layer("conv1/7x7_s2").params["weight"]
    wb = b.layer("conv1/7x7_s2").params["weight"]
    assert not np.array_equal(wa, wb)


def test_activations_stay_in_fp16_range():
    # He-init keeps every blob well inside binary16's dynamic range.
    net = get_model("googlenet-micro")
    initialize_network(net, seed=0)
    x = np.random.default_rng(1).uniform(
        -1, 1, size=(1, 3, 32, 32)).astype(np.float32)
    blob_names = [l.tops[0] for l in net.layers]
    _, captured = net.forward_with_blobs(x, capture=blob_names)
    for name, blob in captured.items():
        assert np.all(np.abs(blob) < 65504), f"{name} overflows fp16"
        assert np.all(np.isfinite(blob)), f"{name} not finite"


def test_weightstore_pretrain_classifier_is_prototype_based():
    net = get_model("googlenet-micro")
    rng = np.random.default_rng(3)
    templates = rng.uniform(-1, 1, size=(10, 3, 32, 32)).astype(
        np.float32)
    store = WeightStore(seed=0, logit_scale=8.0)
    store.pretrain(net, lambda c: templates[c], num_classes=10)
    # Noise-free templates must classify to their own class with high
    # confidence (this is the construction's defining property).
    labels, confs = net.predict(templates)
    assert np.array_equal(labels, np.arange(10))
    assert confs.mean() > 0.5


def test_weightstore_deterministic():
    def build():
        net = get_model("googlenet-micro")
        rng = np.random.default_rng(4)
        t = rng.uniform(-1, 1, size=(10, 3, 32, 32)).astype(np.float32)
        WeightStore(seed=5).pretrain(net, lambda c: t[c], num_classes=10)
        return net.layer("loss3/classifier").params["weight"]

    np.testing.assert_array_equal(build(), build())


def test_zoo_listing_and_lookup():
    assert "googlenet" in list_models()
    assert "googlenet-mini" in list_models()
    entry = model_entry("googlenet-mini")
    assert entry.config.width == 0.25
    with pytest.raises(GraphError):
        model_entry("resnet")


def test_feature_blob_exists_in_topology():
    net = get_model("googlenet-micro")
    shapes = net.infer_shapes()
    assert feature_blob_name() in shapes
