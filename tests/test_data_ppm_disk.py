"""Tests for PPM I/O, dataset export, and the disk-backed source."""

import numpy as np
import pytest

from repro.data import ILSVRCValidation, ImageSynthesizer, Preprocessor
from repro.data import SynsetVocabulary
from repro.data.ppm import read_ppm, write_ppm
from repro.errors import DatasetError, FrameworkError
from repro.ncsw import DiskImageFolder, ImageFolder


def _dataset(num_images=20, subset_size=10, classes=5, size=24):
    vocab = SynsetVocabulary(num_classes=classes)
    synth = ImageSynthesizer(num_classes=classes, size=size,
                             noise_sigma=15)
    return ILSVRCValidation(vocab, synth, num_images=num_images,
                            subset_size=subset_size)


# --- PPM codec ---------------------------------------------------------------

def test_ppm_roundtrip(tmp_path):
    rng = np.random.default_rng(0)
    img = rng.integers(0, 256, size=(13, 17, 3)).astype(np.uint8)
    path = tmp_path / "x.ppm"
    write_ppm(path, img)
    back = read_ppm(path)
    np.testing.assert_array_equal(back, img)
    assert back.dtype == np.uint8


def test_ppm_header_format(tmp_path):
    img = np.zeros((2, 3, 3), dtype=np.uint8)
    path = tmp_path / "h.ppm"
    write_ppm(path, img)
    data = path.read_bytes()
    assert data.startswith(b"P6\n3 2\n255\n")
    assert len(data) == len(b"P6\n3 2\n255\n") + 2 * 3 * 3


def test_ppm_reads_comments(tmp_path):
    path = tmp_path / "c.ppm"
    pixels = bytes(range(12))
    path.write_bytes(b"P6\n# a comment\n2 2\n255\n" + pixels)
    img = read_ppm(path)
    assert img.shape == (2, 2, 3)
    assert img[0, 0, 0] == 0 and img[1, 1, 2] == 11


def test_ppm_write_validation(tmp_path):
    with pytest.raises(DatasetError):
        write_ppm(tmp_path / "a.ppm", np.zeros((4, 4), dtype=np.uint8))
    with pytest.raises(DatasetError):
        write_ppm(tmp_path / "b.ppm",
                  np.zeros((4, 4, 3), dtype=np.float32))


def test_ppm_read_validation(tmp_path):
    bad = tmp_path / "bad.ppm"
    bad.write_bytes(b"P5\n1 1\n255\n\x00")
    with pytest.raises(DatasetError, match="not a P6"):
        read_ppm(bad)
    trunc = tmp_path / "t.ppm"
    trunc.write_bytes(b"P6\n4 4\n255\n\x00\x00")
    with pytest.raises(DatasetError, match="truncated"):
        read_ppm(trunc)
    deep = tmp_path / "d.ppm"
    deep.write_bytes(b"P6\n1 1\n65535\n" + b"\x00" * 6)
    with pytest.raises(DatasetError, match="8-bit"):
        read_ppm(deep)
    garbled = tmp_path / "g.ppm"
    garbled.write_bytes(b"P6\nxx yy\n255\n")
    with pytest.raises(DatasetError, match="malformed"):
        read_ppm(garbled)


# --- export + disk source ------------------------------------------------------

def test_export_writes_files_and_truth(tmp_path):
    ds = _dataset()
    n = ds.export_to_dir(tmp_path / "val", subset=0)
    assert n == 10
    files = sorted((tmp_path / "val").glob("*.ppm"))
    assert len(files) == 10
    assert files[0].name == "ILSVRC2012_val_00000001.ppm"
    truth = (tmp_path / "val" / "val_ground_truth.txt").read_text()
    assert len(truth.splitlines()) == 10


def test_export_limit(tmp_path):
    ds = _dataset()
    assert ds.export_to_dir(tmp_path / "v", subset=1, limit=3) == 3


def test_exported_pixels_match_generator(tmp_path):
    ds = _dataset()
    ds.export_to_dir(tmp_path / "val", subset=0, limit=2)
    img = read_ppm(tmp_path / "val" / "ILSVRC2012_val_00000001.ppm")
    np.testing.assert_array_equal(img, ds.pixels(1))


def test_disk_source_equivalent_to_lazy_source(tmp_path):
    """The on-disk pipeline produces identical tensors and labels."""
    ds = _dataset()
    ds.export_to_dir(tmp_path / "val", subset=0)
    pp = Preprocessor(input_size=24)
    lazy = list(ImageFolder(ds, 0, pp))
    disk = list(DiskImageFolder(tmp_path / "val", pp))
    assert len(disk) == len(lazy)
    for a, b in zip(disk, lazy):
        assert a.image_id == b.image_id
        assert a.label == b.label
        np.testing.assert_array_equal(a.tensor, b.tensor)


def test_disk_source_limit_and_validation(tmp_path):
    ds = _dataset()
    ds.export_to_dir(tmp_path / "val", subset=0)
    pp = Preprocessor(input_size=24)
    assert len(DiskImageFolder(tmp_path / "val", pp, limit=4)) == 4
    with pytest.raises(FrameworkError):
        DiskImageFolder(tmp_path / "val", pp, limit=0)
    with pytest.raises(FrameworkError):
        DiskImageFolder(tmp_path / "nothere", pp)


def test_disk_source_runs_through_framework(tmp_path):
    from repro.ncsw import IntelCPU, NCSw
    from repro.nn import build_googlenet, GoogLeNetConfig
    from repro.nn.weights import initialize_network

    ds = _dataset(size=32)
    ds.export_to_dir(tmp_path / "val", subset=0, limit=6)
    net = build_googlenet(GoogLeNetConfig(num_classes=5, input_size=32,
                                          width=0.125))
    initialize_network(net)
    fw = NCSw()
    fw.add_source("disk", DiskImageFolder(tmp_path / "val",
                                          Preprocessor(input_size=32)))
    fw.add_target("cpu", IntelCPU(net))
    run = fw.run("disk", "cpu", batch_size=3)
    assert run.images == 6
    assert 0.0 <= run.top1_error() <= 1.0
