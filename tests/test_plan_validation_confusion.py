"""Tests for memory-plan validation and the confusion matrix."""

import numpy as np
import pytest

from repro.errors import CompileError, FrameworkError
from repro.ncsw.results import InferenceRecord, RunResult
from repro.nn import build_googlenet, get_model
from repro.nn.weights import initialize_network
from repro.vpu import compile_graph
from repro.vpu.compiler import validate_plan


# --- plan validation -----------------------------------------------------------

@pytest.mark.parametrize("model", ["googlenet-micro", "googlenet-mini",
                                   "alexnet-mini"])
def test_zoo_models_have_feasible_plans(model):
    net = get_model(model)
    initialize_network(net)
    v = validate_plan(compile_graph(net))
    assert v.layers_checked > 10
    assert 0 < v.peak_cmx_fraction <= 0.76  # inside the data budget


def test_paper_scale_plans_feasible():
    for builder in (build_googlenet,
                    lambda: get_model("alexnet")):
        net = builder()
        v = validate_plan(compile_graph(net))
        assert v.peak_cmx_bytes <= v.cmx_capacity
        assert v.ddr_weight_bytes > 1e6


def test_validation_walks_every_layer():
    net = get_model("googlenet-micro")
    initialize_network(net)
    g = compile_graph(net)
    v = validate_plan(g)
    assert v.layers_checked == len(g.layers)


def test_validation_catches_impossible_budget():
    """A graph compiled against a fantasy CMX larger than the real
    chip produces plans the real allocator rejects."""
    net = build_googlenet()
    # Pretend CMX were 16 MiB: big layers plan as CMX-resident.
    g = compile_graph(net, cmx_bytes=16 * 1024 * 1024)
    with pytest.raises(CompileError):
        validate_plan(g)


# --- confusion matrix ---------------------------------------------------------------

def _rec(label, predicted, idx=0):
    return InferenceRecord(index=idx, image_id=idx + 1, label=label,
                           predicted=predicted, confidence=0.5,
                           device="d", t_submit=0, t_complete=1)


def test_confusion_matrix_counts():
    rr = RunResult(source="s", target="t", batch_size=1)
    rr.records = [_rec(0, 0, 0), _rec(0, 1, 1), _rec(1, 1, 2),
                  _rec(1, 1, 3), _rec(None, None, 4)]
    m = rr.confusion_matrix(2)
    np.testing.assert_array_equal(m, [[1, 1], [0, 2]])
    # Diagonal sum equals top-1 hits.
    scored = [r for r in rr.records if r.correct is not None]
    hits = sum(1 for r in scored if r.correct)
    assert m.trace() == hits


def test_confusion_matrix_validation():
    rr = RunResult(source="s", target="t", batch_size=1)
    rr.records = [_rec(5, 0)]
    with pytest.raises(FrameworkError):
        rr.confusion_matrix(2)
    with pytest.raises(FrameworkError):
        rr.confusion_matrix(0)


def test_confusion_matrix_end_to_end():
    from repro.data import ILSVRCValidation, ImageSynthesizer, \
        Preprocessor, SynsetVocabulary
    from repro.ncsw import ImageFolder, IntelCPU, NCSw
    from repro.nn.weights import WeightStore

    net = get_model("googlenet-micro")
    synth = ImageSynthesizer(num_classes=10, size=32, noise_sigma=25,
                             jitter_shift=0)
    pp = Preprocessor(input_size=32)
    WeightStore(seed=0).pretrain(
        net, lambda c: pp(synth.template(c)), num_classes=10)
    ds = ILSVRCValidation(SynsetVocabulary(num_classes=10), synth,
                          num_images=30, subset_size=30)
    fw = NCSw()
    fw.add_source("v", ImageFolder(ds, 0, pp))
    fw.add_target("cpu", IntelCPU(net))
    run = fw.run("v", "cpu", batch_size=8)
    m = run.confusion_matrix(10)
    assert m.sum() == 30
    # Accuracy from the matrix equals 1 - top1_error.
    assert m.trace() / m.sum() == pytest.approx(1 - run.top1_error())
