"""Tests for the VLIW packet-packing model."""

import pytest

from repro.errors import SimulationError
from repro.vpu.timing import _CONV_EFFICIENCY
from repro.vpu.vliw import (
    FU,
    Op,
    conv_inner_loop,
    derived_conv_efficiency,
    loop_cycles,
    pack,
    packet_count,
    vau_occupancy,
)


def test_empty_stream():
    assert pack([]) == []
    assert packet_count([]) == 0
    assert vau_occupancy([]) == 0.0


def test_distinct_fus_share_a_packet():
    ops = [Op(FU.VAU), Op(FU.LSU0), Op(FU.LSU1), Op(FU.IAU)]
    packets = pack(ops)
    assert len(packets) == 1
    assert len(packets[0]) == 4


def test_repeated_fu_splits_packets():
    ops = [Op(FU.VAU), Op(FU.VAU), Op(FU.VAU)]
    assert packet_count(ops) == 3


def test_greedy_in_order():
    # VAU, LSU0, VAU -> [VAU+LSU0], [VAU]
    ops = [Op(FU.VAU), Op(FU.LSU0), Op(FU.VAU)]
    packets = pack(ops)
    assert len(packets) == 2
    assert [op.fu for op in packets[0]] == [FU.VAU, FU.LSU0]


def test_pack_rejects_non_ops():
    with pytest.raises(SimulationError):
        pack(["vau"])  # type: ignore[list-item]


def test_loop_cycles_adds_branch():
    body = [Op(FU.VAU), Op(FU.LSU0)]
    # Branch packs into the single packet -> still 1 cycle per iter.
    assert loop_cycles(body, iterations=10) == 10
    # Explicit branch is not duplicated.
    body_b = body + [Op(FU.BRU)]
    assert loop_cycles(body_b, iterations=10) == 10


def test_loop_cycles_setup_and_validation():
    assert loop_cycles([Op(FU.VAU)], 5, setup_cycles=7) == 12
    with pytest.raises(SimulationError):
        loop_cycles([Op(FU.VAU)], -1)


def test_conv_inner_loop_structure():
    ops = conv_inner_loop(3)
    vau_ops = [o for o in ops if o.fu is FU.VAU]
    loads = [o for o in ops if o.fu in (FU.LSU0, FU.LSU1)
             and o.name.startswith("load")]
    assert len(vau_ops) == 9
    assert len(loads) == 9
    with pytest.raises(SimulationError):
        conv_inner_loop(0)


def test_vau_occupancy_bounds():
    for k in (1, 3, 5, 7):
        occ = derived_conv_efficiency(k)
        assert 0.0 < occ <= 1.0


def test_larger_kernels_amortise_better():
    # More taps per output vector -> the fixed epilogue (store,
    # shuffle, address) amortises -> higher VAU occupancy.
    effs = [derived_conv_efficiency(k) for k in (1, 3, 5, 7)]
    assert all(a <= b for a, b in zip(effs, effs[1:]))


def test_structural_ceiling_dominates_empirical_table():
    """The timing table's empirical efficiencies must sit below the
    packed-loop structural ceiling (they add memory-system derating)
    but within a plausible factor of it."""
    for k, table_eff in _CONV_EFFICIENCY.items():
        ceiling = derived_conv_efficiency(k)
        assert table_eff <= ceiling + 1e-9, (
            f"k={k}: table {table_eff} exceeds structural ceiling "
            f"{ceiling}")
        assert table_eff >= 0.3 * ceiling
