"""End-to-end replication campaign: cross-artefact consistency.

Runs the complete figure set (timing at reduced image count, precision
at smoke scale) and asserts the *relationships between artefacts* that
must hold if the reproduction is internally consistent — the checks a
referee would do across the paper's figures.
"""

import numpy as np
import pytest

from repro.harness import (
    fig6a_throughput_per_subset,
    fig6b_normalized_scaling,
    fig8a_throughput_per_watt,
    fig8b_projected_throughput,
    headline_table,
)

IMAGES = 48


@pytest.fixture(scope="module")
def campaign():
    return {
        "fig6a": fig6a_throughput_per_subset(images_per_subset=IMAGES),
        "fig6b": fig6b_normalized_scaling(images=IMAGES),
        "fig8a": fig8a_throughput_per_watt(images=IMAGES),
        "fig8b": fig8b_projected_throughput(images=IMAGES),
        "headline": headline_table(images=IMAGES, error_scale=None),
    }


def test_fig6a_consistent_with_fig8b_at_batch8(campaign):
    """Fig. 6a's batch-8 bars are Fig. 8b's batch-8 points."""
    for label in ("cpu", "gpu", "vpu"):
        bar = np.mean(campaign["fig6a"].by_label(label).y)
        point = campaign["fig8b"].by_label(label).y[3]  # batch 8
        assert bar == pytest.approx(point, rel=0.02)


def test_fig8a_equals_fig8b_divided_by_tdp(campaign):
    """Fig. 8a is exactly Fig. 8b's throughput over the TDP table."""
    from repro.power import DEFAULT_TDP
    for label, watts_fn in (
            ("cpu", lambda b: DEFAULT_TDP.watts("cpu")),
            ("gpu", lambda b: DEFAULT_TDP.watts("gpu")),
            ("vpu", lambda b: DEFAULT_TDP.watts("ncs", b))):
        for i, b in enumerate((1, 2, 4, 8)):
            thr = campaign["fig8b"].by_label(label).y[i]
            ipw = campaign["fig8a"].by_label(label).y[i]
            assert ipw == pytest.approx(thr / watts_fn(b), rel=0.02)


def test_fig6b_normalization_consistent_with_fig8b(campaign):
    """Fig. 6b's normalised curves re-derive from Fig. 8b's absolute
    throughputs (per-image time ratios)."""
    for label in ("cpu", "gpu", "vpu"):
        absolute = campaign["fig8b"].by_label(label).y[:4]
        normalised = campaign["fig6b"].by_label(label).y
        rederived = tuple(t / absolute[0] for t in absolute)
        np.testing.assert_allclose(normalised, rederived, rtol=0.02)


def test_headline_consistent_with_figures(campaign):
    by = {name: measured for name, _, measured in campaign["headline"]}
    vpu8 = np.mean(campaign["fig6a"].by_label("vpu").y)
    assert by["vpu_batch8_img_s"] == pytest.approx(vpu8, rel=0.02)
    # Single-stick latency from the headline matches fig8b's batch-1
    # VPU point inverted.
    vpu1_thr = campaign["fig8b"].by_label("vpu").y[0]
    assert by["vpu_single_ms"] == pytest.approx(1000 / vpu1_thr,
                                                rel=0.02)


def test_all_paper_orderings_hold(campaign):
    """Every qualitative claim of the evaluation, in one place."""
    fig6a = campaign["fig6a"]
    cpu = np.mean(fig6a.by_label("cpu").y)
    gpu = np.mean(fig6a.by_label("gpu").y)
    vpu = np.mean(fig6a.by_label("vpu").y)
    assert vpu > gpu > cpu                       # Fig. 6a ordering
    fig6b = campaign["fig6b"]
    assert fig6b.by_label("vpu").y[-1] > 7       # near-ideal scaling
    assert fig6b.by_label("cpu").y[-1] < 1.3     # CPU barely moves
    fig8a = campaign["fig8a"]
    assert min(fig8a.by_label("vpu").y) > 3 * max(
        max(fig8a.by_label("cpu").y), max(fig8a.by_label("gpu").y))
    fig8b = campaign["fig8b"]
    assert fig8b.by_label("vpu").y[-1] > fig8b.by_label("gpu").y[-1] \
        > fig8b.by_label("cpu").y[-1]            # projected ordering
