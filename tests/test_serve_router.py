"""Tests for multi-backend routing and failure re-routing."""

import pytest

from repro.errors import FrameworkError
from repro.ncsw.targets import TargetDevice
from repro.serve import (
    ABANDONED,
    COMPLETED,
    LATENCY_EWMA,
    LEAST_OUTSTANDING,
    ROUND_ROBIN,
    Backend,
    Request,
    Router,
)
from repro.sim import Environment


class StubTarget(TargetDevice):
    """Configurable stub: fixed latency, optional partial service."""

    name = "stub"

    def __init__(self, env, service_s=0.01, serve_first=None,
                 alive=True):
        self._env = env
        self.service_s = service_s
        #: When set, only the first N items of each batch get records
        #: (the rest come back missing, as after a stick death).
        self.serve_first = serve_first
        self._alive = alive
        self.batches = []

    def prepare(self, env):
        self._env = env
        return env.timeout(0.0)

    @property
    def alive(self):
        return self._alive

    def kill(self):
        self._alive = False

    def process_batch(self, items):
        def proc():
            yield self._env.timeout(self.service_s)
            self.batches.append([i.index for i in items])
            keep = (items if self.serve_first is None
                    else items[:self.serve_first])
            return [type("Rec", (), {"index": i.index})()
                    for i in keep]

        return self._env.process(proc())


def _request(i):
    return Request(request_id=i, arrival_time=0.0)


def _rig(env, num_backends=3, policy=ROUND_ROBIN, max_redirects=1,
         **stub_kwargs):
    completed, abandoned = [], []
    backends = [Backend(env, f"b{i}", StubTarget(env, **stub_kwargs))
                for i in range(num_backends)]
    router = Router(env, backends, policy=policy,
                    max_redirects=max_redirects,
                    on_complete=completed.extend,
                    on_abandon=abandoned.append)
    router.start()
    return router, backends, completed, abandoned


def test_router_validation():
    env = Environment()
    with pytest.raises(FrameworkError):
        Router(env, [])
    backend = Backend(env, "b", StubTarget(env))
    with pytest.raises(FrameworkError):
        Router(env, [backend], policy="fastest")
    with pytest.raises(FrameworkError):
        Router(env, [backend], max_redirects=-1)
    with pytest.raises(FrameworkError):
        Router(env, [backend], ewma_alpha=0.0)
    with pytest.raises(FrameworkError):
        Backend(env, "b", StubTarget(env), max_pending_batches=0)


def test_round_robin_cycles_and_skips_dead():
    env = Environment()
    router, backends, _, _ = _rig(env, num_backends=3)
    picked = [router.next_backend().name for _ in range(4)]
    assert picked == ["b0", "b1", "b2", "b0"]
    backends[1].target.kill()
    picked = [router.next_backend().name for _ in range(4)]
    assert picked == ["b2", "b0", "b2", "b0"]


def test_peek_does_not_advance_the_rotation():
    env = Environment()
    router, _, _, _ = _rig(env, num_backends=2)
    assert router.peek_next().name == "b0"
    assert router.peek_next().name == "b0"
    assert router.next_backend().name == "b0"
    assert router.peek_next().name == "b1"


def test_least_outstanding_picks_the_emptiest():
    env = Environment()
    router, backends, _, _ = _rig(env, policy=LEAST_OUTSTANDING)
    backends[0].outstanding = 5
    backends[1].outstanding = 2
    backends[2].outstanding = 7
    assert router.next_backend().name == "b1"
    backends[1].outstanding = 9
    assert router.next_backend().name == "b0"


def test_latency_ewma_probes_unsampled_then_tracks_fastest():
    env = Environment()
    router, backends, _, _ = _rig(env, policy=LATENCY_EWMA)
    backends[0].ewma_latency = 0.050
    # b1 and b2 are unsampled: they get probed first, in order.
    assert router.next_backend().name == "b1"
    backends[1].ewma_latency = 0.020
    assert router.next_backend().name == "b2"
    backends[2].ewma_latency = 0.080
    assert router.next_backend().name == "b1"  # lowest EWMA


def test_dispatch_serves_and_updates_ewma():
    env = Environment()
    router, backends, completed, _ = _rig(env, num_backends=1,
                                          service_s=0.02)
    reqs = [_request(i) for i in range(2)]

    def scenario():
        yield router.dispatch(reqs)
        yield env.timeout(1.0)
        router.close()

    env.run(until=env.process(scenario()))
    assert [r.status for r in reqs] == [COMPLETED, COMPLETED]
    assert all(r.backend == "b0" for r in reqs)
    assert len(completed) == 2
    assert backends[0].served == 2
    assert backends[0].outstanding == 0
    # EWMA seeded with per-request time: 0.02 s / 2 requests.
    assert backends[0].ewma_latency == pytest.approx(0.01)


def test_dispatch_with_no_live_backend_abandons():
    env = Environment()
    router, backends, _, abandoned = _rig(env, num_backends=1)
    backends[0].target.kill()
    reqs = [_request(0), _request(1)]

    def scenario():
        yield router.dispatch(reqs)

    env.run(until=env.process(scenario()))
    assert router.abandoned_count == 2
    assert all(r.status == ABANDONED for r in reqs)
    assert [r.request_id for r in abandoned] == [0, 1]


def test_unserved_requests_reroute_to_survivor():
    env = Environment()
    completed, abandoned = [], []
    # b0 loses the tail of every batch (stick died mid-batch); b1 is
    # healthy and picks up the strays.
    broken = Backend(env, "b0", StubTarget(env, serve_first=1))
    healthy = Backend(env, "b1", StubTarget(env))
    router = Router(env, [broken, healthy], max_redirects=1,
                    on_complete=completed.extend,
                    on_abandon=abandoned.append)
    router.start()
    reqs = [_request(i) for i in range(3)]

    def scenario():
        yield router.dispatch(reqs)  # round-robin: lands on b0
        yield env.timeout(1.0)
        router.close()

    env.run(until=env.process(scenario()))
    assert [r.status for r in reqs] == [COMPLETED] * 3
    # The two strays crossed to b1 with one redirect each.
    assert reqs[0].redirects == 0 and reqs[0].backend == "b0"
    assert all(r.redirects == 1 and r.backend == "b1"
               for r in reqs[1:])
    assert not abandoned


def test_redirect_budget_exhaustion_abandons():
    env = Environment()
    abandoned = []
    # Every backend drops the whole batch; one redirect allowed.
    backends = [Backend(env, f"b{i}", StubTarget(env, serve_first=0))
                for i in range(2)]
    router = Router(env, backends, max_redirects=1,
                    on_abandon=abandoned.append)
    router.start()
    req = _request(0)

    def scenario():
        yield router.dispatch([req])
        yield env.timeout(1.0)
        router.close()

    env.run(until=env.process(scenario()))
    assert req.status == ABANDONED
    assert req.redirects == 1  # tried once, redirected once, gave up
    assert router.abandoned_count == 1
    assert [r.request_id for r in abandoned] == [0]


def test_backend_preferred_batch_size_comes_from_target():
    env = Environment()
    backend = Backend(env, "b", StubTarget(env))
    assert backend.preferred_batch_size == 8  # TargetDevice default


def test_partial_batch_ewma_averages_over_served_requests():
    """A backend that loses most of a batch must not report an
    optimistically low per-request latency (regression: the batch
    wall time was divided by the full batch size, so a degrading
    backend looked *faster* to latency-ewma routing)."""
    env = Environment()
    router, backends, completed, _ = _rig(env, num_backends=1,
                                          max_redirects=0,
                                          service_s=0.02,
                                          serve_first=1)
    reqs = [_request(i) for i in range(4)]

    def scenario():
        yield router.dispatch(reqs)
        yield env.timeout(1.0)
        router.close()

    env.run(until=env.process(scenario()))
    # One of four requests came back: 0.02 s of wall bought exactly
    # one completion, so the per-request estimate is 0.02, not 0.005.
    assert len(completed) == 1
    assert backends[0].ewma_latency == pytest.approx(0.02)


def test_halt_zeroes_outstanding_and_gauge():
    """Halting a backend mid-batch (host death) must zero both the
    outstanding counter and its gauge (regression: the Interrupt
    path returned without either, leaving a permanently non-zero
    gauge in timelines and the queue-depth-slope alert)."""
    from repro.obs import ObsSession

    env = ObsSession().attach(Environment())
    router, backends, _, _ = _rig(env, num_backends=1,
                                  service_s=0.05)
    reqs = [_request(i) for i in range(3)]

    def scenario():
        yield router.dispatch(reqs)
        yield env.timeout(0.01)  # batch is mid-service
        backends[0].halt()
        yield env.timeout(0.2)

    env.run(until=env.process(scenario()))
    assert backends[0].outstanding == 0
    gauge = env.obs.metrics.gauge("serve.outstanding.b0")
    assert gauge.last == 0.0
