"""Tests for the NCS device model and the NCAPI."""

import numpy as np
import pytest

from repro.errors import (
    DeviceClosed,
    DeviceNotFound,
    InvalidGraphFile,
    NCAPIError,
)
from repro.nn import get_model
from repro.nn.weights import initialize_network
from repro.numerics import PrecisionPolicy
from repro.sim import Environment
from repro.ncs import NCAPI, USBTopology, paper_testbed_topology
from repro.vpu import compile_graph


@pytest.fixture(scope="module")
def micro_graph():
    net = get_model("googlenet-micro")
    initialize_network(net)
    return compile_graph(net)


def _make_api(env, n=1, functional=True):
    topo = paper_testbed_topology(env, num_devices=n)
    return NCAPI(env, topo, functional=functional)


def test_device_names(micro_graph):
    env = Environment()
    api = _make_api(env, n=3)
    assert api.device_names() == ["ncs0", "ncs1", "ncs2"]


def test_open_device_boots(micro_graph):
    env = Environment()
    api = _make_api(env)
    handle = env.run(until=api.open_device(0))
    assert handle.device_id == "ncs0"
    # Firmware transfer + RTOS bring-up dominates open time.
    assert env.now > 0.4


def test_open_bad_index():
    env = Environment()
    api = _make_api(env)
    with pytest.raises(DeviceNotFound):
        api.open_device(5)


def test_allocate_graph_from_blob(micro_graph):
    env = Environment()
    api = _make_api(env)

    def scenario():
        dev = yield api.open_device(0)
        graph = yield dev.allocate_graph(micro_graph.to_bytes())
        return graph

    graph = env.run(until=env.process(scenario()))
    assert graph.name == micro_graph.name


def test_allocate_graph_rejects_garbage():
    env = Environment()
    api = _make_api(env)

    def scenario():
        dev = yield api.open_device(0)
        dev.allocate_graph(b"garbage")
        yield env.timeout(0)

    with pytest.raises(InvalidGraphFile):
        env.run(until=env.process(scenario()))


def test_load_tensor_then_get_result_functional(micro_graph):
    env = Environment()
    api = _make_api(env, functional=True)
    rng = np.random.default_rng(0)
    x = rng.normal(size=(3, 32, 32)).astype(np.float32) * 0.1

    def scenario():
        dev = yield api.open_device(0)
        graph = yield dev.allocate_compiled(micro_graph)
        yield graph.load_tensor(x, user="tag1")
        result, user = yield graph.get_result()
        return result, user

    result, user = env.run(until=env.process(scenario()))
    assert user == "tag1"
    assert result.dtype == np.float16
    # Device-side FP16 execution matches the reference FP16 path.
    expected = micro_graph.network.forward(
        x[None], PrecisionPolicy.fp16())[0]
    np.testing.assert_allclose(result.astype(np.float32), expected,
                               atol=1e-3)


def test_non_functional_returns_zeros(micro_graph):
    env = Environment()
    api = _make_api(env, functional=False)

    def scenario():
        dev = yield api.open_device(0)
        graph = yield dev.allocate_compiled(micro_graph)
        yield graph.load_tensor(None)
        result, _ = yield graph.get_result()
        return result

    result = env.run(until=env.process(scenario()))
    assert float(np.abs(result).sum()) == 0.0


def test_load_tensor_is_nonblocking_overlap(micro_graph):
    """load_tensor returns at transfer end, well before inference ends
    — the decoupling the paper's Listing 1 exploits."""
    env = Environment()
    api = _make_api(env, functional=False)
    marks = {}

    def scenario():
        dev = yield api.open_device(0)
        graph = yield dev.allocate_compiled(micro_graph)
        t0 = env.now
        yield graph.load_tensor(None)
        marks["load_done"] = env.now - t0
        yield graph.get_result()
        marks["result_done"] = env.now - t0

    env.run(until=env.process(scenario()))
    # Transfer of a 32x32x3 fp16 tensor is ~{0.15ms latency + 15us}.
    assert marks["load_done"] < 1e-3
    # Result needs the full on-chip inference.
    assert marks["result_done"] >= micro_graph.inference_seconds


def test_result_order_is_fifo(micro_graph):
    env = Environment()
    api = _make_api(env, functional=False)
    users = []

    def scenario():
        dev = yield api.open_device(0)
        graph = yield dev.allocate_compiled(micro_graph)
        yield graph.load_tensor(None, user="first")
        yield graph.load_tensor(None, user="second")
        _, u1 = yield graph.get_result()
        _, u2 = yield graph.get_result()
        users.extend([u1, u2])

    env.run(until=env.process(scenario()))
    assert users == ["first", "second"]


def test_tensor_shape_validated(micro_graph):
    env = Environment()
    api = _make_api(env)

    def scenario():
        dev = yield api.open_device(0)
        graph = yield dev.allocate_compiled(micro_graph)
        yield graph.load_tensor(np.zeros((3, 64, 64), dtype=np.float32))

    with pytest.raises(NCAPIError, match="does not match"):
        env.run(until=env.process(scenario()))


def test_double_allocate_rejected(micro_graph):
    env = Environment()
    api = _make_api(env)

    def scenario():
        dev = yield api.open_device(0)
        yield dev.allocate_compiled(micro_graph)
        yield dev.allocate_compiled(micro_graph)

    with pytest.raises(NCAPIError):
        env.run(until=env.process(scenario()))


def test_deallocate_then_use_fails(micro_graph):
    env = Environment()
    api = _make_api(env)

    def scenario():
        dev = yield api.open_device(0)
        graph = yield dev.allocate_compiled(micro_graph)
        graph.deallocate()
        graph.load_tensor(None)
        yield env.timeout(0)

    with pytest.raises(NCAPIError):
        env.run(until=env.process(scenario()))


def test_closed_device_rejects_operations(micro_graph):
    env = Environment()
    api = _make_api(env)

    def scenario():
        dev = yield api.open_device(0)
        graph = yield dev.allocate_compiled(micro_graph)
        dev.close()
        graph.load_tensor(None)
        yield env.timeout(0)

    with pytest.raises(DeviceClosed):
        env.run(until=env.process(scenario()))


def test_inference_times_recorded(micro_graph):
    env = Environment()
    api = _make_api(env, functional=False)

    def scenario():
        dev = yield api.open_device(0)
        graph = yield dev.allocate_compiled(micro_graph)
        for _ in range(3):
            yield graph.load_tensor(None)
            yield graph.get_result()
        return graph

    graph = env.run(until=env.process(scenario()))
    times = graph.time_taken()
    assert len(times) == 3
    for t in times:
        assert t == pytest.approx(micro_graph.inference_seconds)


def test_unattached_device_rejected(micro_graph):
    env = Environment()
    topo = USBTopology(env)
    from repro.ncs.device import NCSDevice
    with pytest.raises(NCAPIError):
        NCSDevice(env, "ghost", topo)


def test_layer_times_exposed(micro_graph):
    env = Environment()
    api = _make_api(env, functional=False)

    def scenario():
        dev = yield api.open_device(0)
        graph = yield dev.allocate_compiled(micro_graph)
        assert graph.layer_times() == {}  # nothing run yet
        yield graph.load_tensor(None)
        yield graph.get_result()
        return graph.layer_times()

    per_layer = env.run(until=env.process(scenario()))
    assert len(per_layer) == len(micro_graph.layers)
    assert sum(per_layer.values()) == pytest.approx(
        micro_graph.inference_seconds)
