"""Tests for the split-inference partitioner (cuts, costs, plans)."""

import pytest

from repro.nn.zoo import get_model


# -- precision-aware cost table (satellite bugfix) --------------------------

def test_layer_costs_param_bytes_agree_with_total_param_bytes():
    """``layer_costs`` must honour the precision it is asked for
    (regression: ``LayerCost.param_bytes`` was always built at the
    4-byte default, disagreeing with ``total_param_bytes(2)`` and
    double-counting FP16-tier bytes in the partitioner)."""
    net = get_model("googlenet-micro")
    fp16 = net.layer_costs(bytes_per_element=2)
    assert (sum(c.param_bytes for c in fp16)
            == net.total_param_bytes(bytes_per_element=2))
    fp32 = net.layer_costs()
    assert (sum(c.param_bytes for c in fp32)
            == net.total_param_bytes(bytes_per_element=4))
    # FP16 params are exactly half the FP32 footprint.
    assert (2 * sum(c.param_bytes for c in fp16)
            == sum(c.param_bytes for c in fp32))


def test_layer_costs_activation_bytes_follow_precision():
    net = get_model("googlenet-micro")
    fp16 = net.layer_costs(bytes_per_element=2)
    fp32 = net.layer_costs(bytes_per_element=4)
    assert (2 * sum(c.activation_bytes for c in fp16)
            == sum(c.activation_bytes for c in fp32))
    # MACs are precision-independent.
    assert ([c.macs for c in fp16] == [c.macs for c in fp32])


# -- cut enumeration --------------------------------------------------------

import numpy as np

from repro.baselines.calibration import REFERENCE_GOOGLENET_MACS, mac_scale
from repro.errors import GraphError, SimulationError
from repro.nn.weights import initialize_network
from repro.split import (
    SplitPlanner,
    dominating_plans,
    enumerate_cuts,
    pareto_indices,
    single_device_points,
    split_network,
    usb_seconds,
)
from repro.vpu.compiler.compile import compile_graph


@pytest.fixture(scope="module")
def micro():
    return get_model("googlenet-micro")


@pytest.fixture(scope="module")
def micro_graph(micro):
    return compile_graph(micro)


def test_cuts_partition_layers_in_order(micro):
    names = [l.name for l in micro.layers]
    cuts = enumerate_cuts(micro)
    assert cuts, "googlenet-micro must have valid cuts"
    for cut in cuts:
        assert list(cut.front_names) + list(cut.back_names) == names
        assert cut.front_names[-1] == names[cut.index]
    # Strictly increasing cut indices (layer order).
    indices = [c.index for c in cuts]
    assert indices == sorted(set(indices))


def test_inception_interiors_are_not_cuttable(micro):
    """Multi-branch frontiers (inside an inception module) never show
    up as cuts — more than one blob would have to cross the wire."""
    for cut in enumerate_cuts(micro):
        if "inception" in cut.blob:
            assert cut.blob.endswith("/output"), cut.blob


def test_cut_blob_is_produced_by_front_and_read_by_back(micro):
    for cut in enumerate_cuts(micro):
        front, back = split_network(micro, cut)
        assert cut.blob in {t for l in front.layers for t in l.tops}
        assert back.input_blob == cut.blob
        # Both halves have consistent shapes end to end.
        front.validate()
        back.validate()


def test_split_network_rejects_mismatched_cut(micro):
    cuts = enumerate_cuts(micro)
    bogus = cuts[0].__class__(
        index=cuts[1].index, blob=cuts[0].blob,
        front_names=cuts[0].front_names, back_names=cuts[0].back_names)
    with pytest.raises(GraphError):
        split_network(micro, bogus)


# -- cost model -------------------------------------------------------------

def test_mac_scale_reference_is_unity():
    assert mac_scale(REFERENCE_GOOGLENET_MACS) == 1.0
    assert mac_scale(REFERENCE_GOOGLENET_MACS // 2) == pytest.approx(0.5)
    with pytest.raises(SimulationError):
        mac_scale(-1)


def test_usb_seconds_has_latency_floor():
    assert usb_seconds(0) == pytest.approx(150e-6)
    assert usb_seconds(4 << 20) > usb_seconds(1 << 20)


def test_planner_requires_exactly_one_vpu_side(micro, micro_graph):
    with pytest.raises(SimulationError):
        SplitPlanner(micro, graph=micro_graph, front="cpu", back="gpu")
    with pytest.raises(SimulationError):
        SplitPlanner(micro, graph=micro_graph, front="vpu", back="vpu")
    with pytest.raises(SimulationError):
        SplitPlanner(micro, graph=micro_graph, front="vpu",
                     back="cpu", num_sticks=9)


def test_plan_invariants(micro, micro_graph):
    planner = SplitPlanner(micro, graph=micro_graph, front="vpu",
                           back="cpu", num_sticks=4)
    for plan in planner.sweep():
        assert plan.latency_seconds == pytest.approx(
            plan.front_seconds + plan.link_seconds
            + plan.back_seconds)
        assert plan.throughput == pytest.approx(
            1.0 / plan.bottleneck_seconds)
        assert plan.front_parallelism == 4
        assert plan.back_parallelism == 1
        assert plan.total_watts == pytest.approx(4 * 2.5 + 80.0)
        assert plan.cut_bytes > 0
        assert plan.name == "vpu4+cpu"


def test_vpu_back_orientation(micro, micro_graph):
    planner = SplitPlanner(micro, graph=micro_graph, front="gpu",
                           back="vpu", num_sticks=2)
    plans = planner.sweep()
    assert plans
    for plan in plans:
        assert plan.front_device == "gpu"
        assert plan.back_parallelism == 2
        assert plan.name == "gpu+vpu2"
        # The VPU side carries the output USB transfer.
        assert plan.back_seconds >= usb_seconds(0)


def test_sweep_is_deterministic(micro, micro_graph):
    planner = SplitPlanner(micro, graph=micro_graph)
    assert planner.sweep() == planner.sweep()
    assert (SplitPlanner(micro, graph=micro_graph).sweep()
            == planner.sweep())


def test_best_objectives(micro, micro_graph):
    planner = SplitPlanner(micro, graph=micro_graph)
    plans = planner.sweep()
    best_lat = planner.best("latency")
    assert best_lat.latency_seconds == min(
        p.latency_seconds for p in plans)
    best_tput = planner.best("throughput")
    assert best_tput.throughput == max(p.throughput for p in plans)
    best_eff = planner.best("energy")
    assert best_eff.images_per_watt == max(
        p.images_per_watt for p in plans)
    with pytest.raises(SimulationError):
        planner.best("nonsense")


def test_pareto_contains_every_objective_winner(micro, micro_graph):
    planner = SplitPlanner(micro, graph=micro_graph)
    plans = planner.sweep()
    frontier = pareto_indices(plans)
    assert frontier
    # The optimal value of every objective is achieved on the
    # frontier (the winner itself may lose a tie-break to an equal
    # plan with a better second metric, but the value survives).
    assert min(plans[i].latency_seconds for i in frontier) == min(
        p.latency_seconds for p in plans)
    assert max(plans[i].throughput for i in frontier) == max(
        p.throughput for p in plans)
    assert max(plans[i].images_per_watt for i in frontier) == max(
        p.images_per_watt for p in plans)


def test_best_cut_dominates_worst_single_device(micro, micro_graph):
    """The acceptance claim: at least one VPU+CPU cut strictly beats
    the worst single-device placement on latency at matched
    throughput."""
    planner = SplitPlanner(micro, graph=micro_graph, front="vpu",
                           back="cpu", num_sticks=1)
    plans = planner.sweep()
    singles = single_device_points(micro, micro_graph, num_sticks=1)
    worst, winners = dominating_plans(plans, singles)
    assert worst is not None
    assert winners, "no cut dominates the worst single device"
    for plan in winners:
        assert plan.latency_seconds < worst.latency_seconds
        assert plan.throughput >= worst.throughput
