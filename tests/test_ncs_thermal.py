"""Tests for the NCS thermal model and its device integration."""

import pytest

from repro.errors import SimulationError
from repro.ncs import NCAPI, USBTopology
from repro.ncs.thermal import ThermalConfig, ThermalModel
from repro.nn import get_model
from repro.nn.weights import initialize_network
from repro.sim import Environment
from repro.vpu import compile_graph


@pytest.fixture(scope="module")
def micro_graph():
    net = get_model("googlenet-micro")
    initialize_network(net)
    return compile_graph(net)


# --- model physics -----------------------------------------------------------

def test_config_validation():
    with pytest.raises(SimulationError):
        ThermalConfig(resistance_c_per_w=0)
    with pytest.raises(SimulationError):
        ThermalConfig(throttle_scale=0)
    with pytest.raises(SimulationError):
        ThermalConfig(throttle_temp_c=60, recover_temp_c=65)


def test_starts_at_ambient():
    m = ThermalModel()
    assert m.temperature_c == 25.0
    assert not m.throttled
    assert m.frequency_scale() == 1.0


def test_heats_toward_steady_state():
    m = ThermalModel()
    # 2.5 W at 20 C/W -> steady state 75 C.
    assert m.steady_state_c(2.5) == 75.0
    m.update(600.0, 2.5)  # ten time constants
    assert m.temperature_c == pytest.approx(75.0, abs=0.1)


def test_exponential_approach():
    m = ThermalModel()
    m.update(60.0, 2.5)  # one time constant
    # T = 75 + (25 - 75) e^-1 = 75 - 50/e ~ 56.6
    assert m.temperature_c == pytest.approx(56.6, abs=0.2)


def test_cools_when_idle():
    m = ThermalModel()
    m.update(600.0, 2.5)
    hot = m.temperature_c
    m.update(1200.0, 0.0)
    assert m.temperature_c < hot
    assert m.temperature_c == pytest.approx(25.0, abs=0.2)


def test_throttle_hysteresis():
    m = ThermalModel()
    m.update(600.0, 2.5)  # 75 C > 70 C threshold
    assert m.throttled
    assert m.frequency_scale() == pytest.approx(0.6)
    assert m.throttle_events == 1
    # Cool a little, but stay above the 62 C recovery point.
    m.update(612.0, 0.0)
    if m.temperature_c > 62.0:
        assert m.throttled  # hysteresis holds
    # Cool fully: recovers.
    m.update(1800.0, 0.0)
    assert not m.throttled
    assert m.frequency_scale() == 1.0


def test_update_validation():
    m = ThermalModel()
    m.update(10.0, 1.0)
    with pytest.raises(SimulationError):
        m.update(5.0, 1.0)  # time reversal
    with pytest.raises(SimulationError):
        m.update(20.0, -1.0)


# --- device integration -----------------------------------------------------------

def _run_inferences(n, thermal, micro_graph):
    env = Environment()
    topo = USBTopology(env)
    topo.attach_device("ncs0")
    api = NCAPI(env, topo, functional=False)
    device = api.devices[0]
    device.thermal = thermal

    def scenario():
        dev = yield api.open_device(0)
        h = yield dev.allocate_compiled(micro_graph)
        for _ in range(n):
            yield h.load_tensor(None)
            yield h.get_result()
        return h.time_taken()

    times = env.run(until=env.process(scenario()))
    return times


def test_cool_device_unthrottled(micro_graph):
    thermal = ThermalModel()
    times = _run_inferences(5, thermal, micro_graph)
    # Five micro inferences (~15 ms) cannot heat the stick.
    assert not thermal.throttled
    assert max(times) == pytest.approx(min(times), rel=1e-6)


def test_sustained_load_throttles(micro_graph):
    # An aggressive thermal config (tiny tau) throttles within a few
    # inferences and visibly stretches the later ones.
    cfg = ThermalConfig(time_constant_s=0.005, throttle_temp_c=60,
                        recover_temp_c=50, throttle_scale=0.5)
    thermal = ThermalModel(cfg)
    times = _run_inferences(12, thermal, micro_graph)
    assert thermal.throttled or thermal.throttle_events > 0
    # Throttled inferences take ~2x the cold ones.
    assert max(times) > 1.5 * min(times)


def test_no_thermal_model_by_default(micro_graph):
    env = Environment()
    topo = USBTopology(env)
    topo.attach_device("ncs0")
    api = NCAPI(env, topo, functional=False)
    assert api.devices[0].thermal is None
