"""Workflow compiler tests: spec validation and DAG construction.

The compiler's promise is that anything it returns is executable:
one entry, acyclic, reachable, type-compatible edges, legal
out-degrees and airtight fan-out/join pairing.  Every rejection path
is pinned here with the step graph that triggers it, plus the
deterministic ``describe()`` contract the CLI prints.
"""

import pytest

from repro.errors import FlowError
from repro.flow import (
    ANY,
    BranchStep,
    FanOutStep,
    InferStep,
    JoinStep,
    TransformStep,
    WorkflowSpec,
    compile_workflow,
)
from repro.ncsw import IntelCPU
from repro.nn import get_model


def _cpu_targets():
    network = get_model("alexnet-mini")
    return lambda: {"cpu": IntelCPU(network, functional=False)}


def _infer(name, **kwargs):
    return InferStep(name, targets=_cpu_targets(), **kwargs)


def _passthrough(name, **kwargs):
    return TransformStep(name, fn=lambda data, rng: data, **kwargs)


# -- step validation --------------------------------------------------------

def test_step_rejects_bad_names():
    for bad in ("", "two words", "a+b", None):
        with pytest.raises(FlowError):
            _passthrough(bad)


def test_infer_step_requires_target_factory():
    with pytest.raises(FlowError):
        InferStep("model", targets=None)


def test_branch_requires_route():
    with pytest.raises(FlowError):
        BranchStep("gate", route=None)


def test_join_requires_reduce():
    with pytest.raises(FlowError):
        JoinStep("merge", reduce=None)


def test_fan_out_modes():
    assert FanOutStep("crop", fn=lambda item, rng: []).mode == "expand"
    assert FanOutStep("replicate").mode == "broadcast"


# -- spec validation --------------------------------------------------------

def test_spec_rejects_duplicate_steps():
    spec = WorkflowSpec("wf").add(_passthrough("a"))
    with pytest.raises(FlowError):
        spec.add(_passthrough("a"))


def test_spec_rejects_unknown_edge_endpoints():
    spec = WorkflowSpec("wf").add(_passthrough("a"))
    with pytest.raises(FlowError):
        spec.connect("a", "ghost")


def test_spec_rejects_duplicate_and_self_edges():
    spec = WorkflowSpec("wf").add(_passthrough("a"), _passthrough("b"))
    spec.connect("a", "b")
    with pytest.raises(FlowError):
        spec.connect("a", "b")
    with pytest.raises(FlowError):
        spec.connect("a", "a")


def test_empty_workflow_rejected():
    with pytest.raises(FlowError):
        compile_workflow(WorkflowSpec("empty"))


# -- graph-shape validation -------------------------------------------------

def test_two_entries_rejected():
    spec = WorkflowSpec("wf").add(_passthrough("a"), _passthrough("b"))
    with pytest.raises(FlowError, match="exactly one entry"):
        compile_workflow(spec)


def test_cycle_rejected_and_names_members():
    spec = WorkflowSpec("wf").add(
        _passthrough("a"), _passthrough("b"), _passthrough("c"))
    spec.connect("a", "b").connect("b", "c").connect("c", "b")
    with pytest.raises(FlowError, match="cycle"):
        compile_workflow(spec)


def test_type_incompatible_edge_rejected():
    spec = WorkflowSpec("wf").add(
        _passthrough("a", produces="boxes"),
        _passthrough("b", consumes=("labels",)))
    spec.connect("a", "b")
    with pytest.raises(FlowError, match="type-incompatible"):
        compile_workflow(spec)


def test_any_type_satisfies_everything():
    spec = WorkflowSpec("wf").add(
        _passthrough("a", produces=ANY),
        _passthrough("b", consumes=("labels",)))
    spec.connect("a", "b")
    assert compile_workflow(spec).order == ("a", "b")


def test_linear_chain_out_degree_enforced():
    spec = WorkflowSpec("wf").add(
        _passthrough("a"), _passthrough("b"), _passthrough("c"))
    spec.connect("a", "b").connect("a", "c")
    with pytest.raises(FlowError, match="at most one successor"):
        compile_workflow(spec)


def test_branch_needs_two_successors():
    spec = WorkflowSpec("wf").add(
        BranchStep("gate", route=lambda data: "only"),
        _passthrough("only"))
    spec.connect("gate", "only")
    with pytest.raises(FlowError, match=">= 2"):
        compile_workflow(spec)


def test_expand_fan_out_needs_exactly_one_successor():
    spec = WorkflowSpec("wf").add(
        _passthrough("src"),
        FanOutStep("crop", fn=lambda item, rng: []),
        _passthrough("a"), _passthrough("b"),
        JoinStep("merge", reduce=lambda datas: datas))
    spec.connect("src", "crop").connect("crop", "a")
    spec.connect("crop", "b").connect("a", "merge")
    spec.connect("b", "merge")
    with pytest.raises(FlowError, match="exactly one successor"):
        compile_workflow(spec)


# -- fan-out / join pairing -------------------------------------------------

def _fan_spec():
    spec = WorkflowSpec("wf").add(
        _passthrough("src"),
        FanOutStep("crop", fn=lambda item, rng: []),
        _passthrough("work"),
        JoinStep("merge", reduce=lambda datas: datas))
    spec.connect("src", "crop").connect("crop", "work")
    spec.connect("work", "merge")
    return spec


def test_fan_out_pairs_with_its_join():
    wf = compile_workflow(_fan_spec())
    assert wf.join_of == {"crop": "merge"}


def test_fan_out_without_join_rejected():
    spec = WorkflowSpec("wf").add(
        _passthrough("src"),
        FanOutStep("crop", fn=lambda item, rng: []),
        _passthrough("work"))
    spec.connect("src", "crop").connect("crop", "work")
    with pytest.raises(FlowError, match="without a\n?.*join"):
        compile_workflow(spec)


def test_nested_fan_out_rejected():
    spec = WorkflowSpec("wf").add(
        _passthrough("src"),
        FanOutStep("outer", fn=lambda item, rng: []),
        FanOutStep("inner", fn=lambda item, rng: []),
        _passthrough("work"),
        JoinStep("merge", reduce=lambda datas: datas))
    spec.connect("src", "outer").connect("outer", "inner")
    spec.connect("inner", "work").connect("work", "merge")
    with pytest.raises(FlowError, match="nested"):
        compile_workflow(spec)


def test_unclaimed_join_rejected():
    spec = WorkflowSpec("wf").add(
        _passthrough("src"),
        JoinStep("merge", reduce=lambda datas: datas))
    spec.connect("src", "merge")
    with pytest.raises(FlowError, match="not the barrier"):
        compile_workflow(spec)


def test_join_cannot_be_the_entry():
    spec = WorkflowSpec("wf").add(
        JoinStep("merge", reduce=lambda datas: datas))
    with pytest.raises(FlowError, match="cannot be a"):
        compile_workflow(spec)


# -- groups and describe ----------------------------------------------------

def test_groups_are_longest_path_levels():
    spec = WorkflowSpec("wf").add(
        FanOutStep("replicate"),
        _passthrough("left", consumes=(ANY,)),
        _passthrough("right", consumes=(ANY,)),
        JoinStep("merge", reduce=lambda datas: datas))
    spec.connect("replicate", "left").connect("replicate", "right")
    spec.connect("left", "merge").connect("right", "merge")
    wf = compile_workflow(spec)
    assert wf.groups == (("replicate",), ("left", "right"), ("merge",))
    assert wf.entry == "replicate"
    assert wf.sinks == ("merge",)


def test_compilation_is_deterministic():
    a = compile_workflow(_fan_spec()).describe()
    b = compile_workflow(_fan_spec()).describe()
    assert a == b
    assert "fan-out region: crop .. merge" in a


def test_describe_marks_direct_barrier_edges():
    spec = WorkflowSpec("wf").add(
        _passthrough("src"),
        FanOutStep("crop", fn=lambda item, rng: []),
        JoinStep("merge", reduce=lambda datas: datas))
    spec.connect("src", "crop").connect("crop", "merge")
    assert "(barrier)" in compile_workflow(spec).describe()


def test_infer_steps_in_topological_order():
    spec = WorkflowSpec("wf").add(
        _infer("first"), _passthrough("mid"), _infer("second"))
    spec.connect("first", "mid").connect("mid", "second")
    wf = compile_workflow(spec)
    assert [s.name for s in wf.infer_steps()] == ["first", "second"]
