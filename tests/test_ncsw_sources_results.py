"""Tests for NCSw sources and result aggregation."""

import numpy as np
import pytest

from repro.data import ILSVRCValidation, ImageSynthesizer, Preprocessor
from repro.data import SynsetVocabulary
from repro.errors import FrameworkError
from repro.ncsw import ImageFolder, MPIStream, SyntheticSource
from repro.ncsw.results import InferenceRecord, RunResult


def _dataset():
    vocab = SynsetVocabulary(num_classes=10)
    synth = ImageSynthesizer(num_classes=10, size=32, noise_sigma=20)
    return ILSVRCValidation(vocab, synth, num_images=50, subset_size=10)


# --- sources -----------------------------------------------------------------

def test_image_folder_yields_preprocessed_items():
    ds = _dataset()
    src = ImageFolder(ds, subset=0, preprocessor=Preprocessor(32))
    items = list(src)
    assert len(items) == len(src) == 10
    first = items[0]
    assert first.image_id == 1
    assert first.tensor.shape == (3, 32, 32)
    assert first.tensor.dtype == np.float32
    assert first.label == ds.record(1).label


def test_image_folder_limit():
    ds = _dataset()
    src = ImageFolder(ds, subset=1, preprocessor=Preprocessor(32),
                      limit=3)
    items = list(src)
    assert len(items) == 3
    assert items[0].image_id == 11  # subset 1 starts at id 11
    with pytest.raises(FrameworkError):
        ImageFolder(ds, subset=0, preprocessor=Preprocessor(32), limit=0)


def test_image_folder_reiterable_and_tracks_decode():
    ds = _dataset()
    src = ImageFolder(ds, subset=0, preprocessor=Preprocessor(32),
                      limit=4)
    a = [i.image_id for i in src]
    b = [i.image_id for i in src]
    assert a == b
    assert src.decoder.stats.images == 8  # two passes of 4


def test_synthetic_source():
    src = SyntheticSource(5)
    items = list(src)
    assert len(items) == 5
    assert all(i.tensor is None and i.label is None for i in items)
    with pytest.raises(FrameworkError):
        SyntheticSource(0)


def test_mpi_stream_roundtrip():
    stream = MPIStream(source_rank=0)
    x = np.ones((3, 8, 8), dtype=np.float32)
    stream.send(x, label=3, tag="frame0")
    stream.send(x * 2, label=5)
    stream.close()
    items = list(stream)
    assert len(items) == len(stream) == 2
    assert items[0].label == 3
    assert items[1].label == 5
    np.testing.assert_array_equal(items[1].tensor, x * 2)


def test_mpi_stream_requires_close():
    stream = MPIStream()
    stream.send(None)
    with pytest.raises(FrameworkError):
        list(stream)
    stream.close()
    with pytest.raises(FrameworkError):
        stream.send(None)  # closed stream rejects sends


def test_mpi_stream_reiterable():
    stream = MPIStream()
    stream.send(None, label=1)
    stream.close()
    assert [i.label for i in stream] == [1]
    assert [i.label for i in stream] == [1]


# --- results --------------------------------------------------------------------

def _record(idx, label, predicted, conf=0.9, device="d", t0=0.0, t1=0.1):
    return InferenceRecord(index=idx, image_id=idx + 1, label=label,
                           predicted=predicted, confidence=conf,
                           device=device, t_submit=t0, t_complete=t1)


def test_record_latency_and_correct():
    r = _record(0, 3, 3, t0=1.0, t1=1.5)
    assert r.latency == pytest.approx(0.5)
    assert r.correct is True
    assert _record(0, 3, 4).correct is False
    assert _record(0, None, 4).correct is None


def test_run_result_throughput():
    rr = RunResult(source="s", target="t", batch_size=8)
    rr.records = [_record(i, 0, 0) for i in range(10)]
    rr.wall_seconds = 2.0
    assert rr.images == 10
    assert rr.throughput() == pytest.approx(5.0)
    assert rr.seconds_per_image() == pytest.approx(0.2)


def test_run_result_top1_error():
    rr = RunResult(source="s", target="t", batch_size=1)
    rr.records = [_record(0, 1, 1), _record(1, 1, 2), _record(2, 0, 0),
                  _record(3, 2, 1)]
    assert rr.top1_error() == pytest.approx(0.5)


def test_run_result_no_labels_raises():
    rr = RunResult(source="s", target="t", batch_size=1)
    rr.records = [_record(0, None, None, conf=None)]
    rr.wall_seconds = 1.0
    with pytest.raises(FrameworkError):
        rr.top1_error()


def test_run_result_confidences_only_correct():
    rr = RunResult(source="s", target="t", batch_size=1)
    rr.records = [_record(0, 1, 1, conf=0.8), _record(1, 1, 2, conf=0.7)]
    np.testing.assert_allclose(rr.confidences(), [0.8])


def test_run_result_per_device_counts():
    rr = RunResult(source="s", target="t", batch_size=4)
    rr.records = [_record(i, 0, 0, device=f"vpu{i % 2}")
                  for i in range(6)]
    assert rr.per_device_counts() == {"vpu0": 3, "vpu1": 3}


def test_run_result_summary_renders():
    rr = RunResult(source="s", target="t", batch_size=2)
    rr.records = [_record(0, 1, 1)]
    rr.wall_seconds = 0.5
    s = rr.summary()
    assert "s->t" in s and "img/s" in s and "top-1" in s


def test_run_result_empty_guards():
    rr = RunResult(source="s", target="t", batch_size=1)
    with pytest.raises(FrameworkError):
        rr.throughput()
    with pytest.raises(FrameworkError):
        rr.seconds_per_image()


def test_synthetic_source_payload_hook():
    def payload(rng, index):
        return rng.normal(size=4).astype(np.float32) + index

    src = SyntheticSource(3, payload=payload, seed=7)
    items = list(src)
    assert all(i.tensor is not None and i.tensor.shape == (4,)
               for i in items)
    # Different items draw different tensors.
    assert not np.array_equal(items[0].tensor, items[1].tensor)


def test_synthetic_source_payload_determinism_contract():
    def payload(rng, index):
        return rng.normal(size=8).astype(np.float32)

    src = SyntheticSource(5, payload=payload, seed=3)
    full = [i.tensor for i in src]
    # Re-iteration reproduces every tensor byte for byte...
    again = [i.tensor for i in src]
    for a, b in zip(full, again):
        np.testing.assert_array_equal(a, b)
    # ...and item i's tensor does not depend on earlier draws: an
    # early-stopped pass still sees the same data.
    partial = []
    for item in src:
        partial.append(item.tensor)
        if item.index == 2:
            break
    np.testing.assert_array_equal(partial[2], full[2])
    # A different seed redraws everything.
    other = [i.tensor for i in SyntheticSource(5, payload=payload,
                                               seed=4)]
    assert not np.array_equal(other[0], full[0])
