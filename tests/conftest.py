"""Shared fixtures: the deterministic chaos-test harness.

``chaos_graph`` compiles the micro network once per session;
``chaos_run`` is a factory that wires one fault-injected multi-VPU
run through the NCSw framework.  Both are deterministic: the same
:class:`~repro.ncsw.faults.FaultPlan` (or seed) always reproduces the
same run, byte for byte.
"""

import pytest

from repro.nn import get_model
from repro.nn.weights import initialize_network
from repro.vpu import compile_graph


@pytest.fixture(scope="session")
def chaos_graph():
    """Compiled googlenet-micro shared by every chaos test."""
    net = get_model("googlenet-micro")
    initialize_network(net)
    return compile_graph(net)


@pytest.fixture
def chaos_run(chaos_graph):
    """Factory for one (optionally fault-injected) multi-VPU run.

    Returns a callable: ``chaos_run(plan, images=40, devices=4, ...)``
    -> :class:`~repro.ncsw.results.RunResult`.  Timing-only (non-
    functional) sticks keep each run to a few milliseconds of
    simulated time.
    """
    from repro.ncsw import IntelVPU, NCSw, SyntheticSource

    def _run(plan=None, *, images=40, devices=4, batch=None,
             call_timeout=None, dynamic=False, overlap=True,
             fault_tolerant=False, obs=None):
        fw = NCSw(obs=obs)
        fw.add_source("synth", SyntheticSource(images))
        fw.add_target("vpu", IntelVPU(
            graph=chaos_graph, num_devices=devices, functional=False,
            overlap=overlap, dynamic=dynamic, fault_plan=plan,
            call_timeout=call_timeout, fault_tolerant=fault_tolerant))
        return fw.run("synth", "vpu",
                      batch_size=batch if batch else images)

    return _run


@pytest.fixture
def serve_run(chaos_graph):
    """Factory for one open-loop serving run over micro-graph sticks.

    ``serve_run(rate=..., requests=..., devices=..., **server_kwargs)``
    -> :class:`~repro.serve.slo.ServeResult`.  Pass ``workload=`` to
    override the default seeded Poisson process, or ``fault_plan=`` /
    ``call_timeout=`` to arm chaos against the sticks.
    """
    from repro.ncsw import IntelVPU
    from repro.serve import InferenceServer, PoissonWorkload

    def _run(*, requests=40, devices=2, rate=100.0, seed=0,
             workload=None, fault_plan=None, call_timeout=None,
             extra_targets=None, **server_kwargs):
        server = InferenceServer(**server_kwargs)
        server.add_target("vpu", IntelVPU(
            graph=chaos_graph, num_devices=devices, functional=False,
            fault_plan=fault_plan, call_timeout=call_timeout))
        for name, target in (extra_targets or {}).items():
            server.add_target(name, target)
        wl = workload or PoissonWorkload(rate, seed=seed)
        return server.run(wl, requests)

    return _run
