"""Unit tests for the DES kernel core (events, processes, clock)."""

import pytest

from repro.errors import DeadlockError, SimulationError
from repro.sim import Environment, Interrupt


def test_clock_starts_at_zero():
    env = Environment()
    assert env.now == 0.0


def test_clock_custom_initial_time():
    env = Environment(initial_time=5.0)
    assert env.now == 5.0


def test_timeout_advances_clock():
    env = Environment()

    def proc():
        yield env.timeout(3.5)

    env.process(proc())
    env.run()
    assert env.now == 3.5


def test_timeout_negative_delay_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        env.timeout(-1)


def test_timeout_carries_value():
    env = Environment()
    seen = []

    def proc():
        value = yield env.timeout(1, value="hello")
        seen.append(value)

    env.process(proc())
    env.run()
    assert seen == ["hello"]


def test_sequential_timeouts_accumulate():
    env = Environment()
    marks = []

    def proc():
        yield env.timeout(1)
        marks.append(env.now)
        yield env.timeout(2)
        marks.append(env.now)

    env.process(proc())
    env.run()
    assert marks == [1, 3]


def test_process_return_value_via_run():
    env = Environment()

    def proc():
        yield env.timeout(1)
        return 42

    p = env.process(proc())
    assert env.run(until=p) == 42


def test_run_until_time_stops_early():
    env = Environment()
    marks = []

    def proc():
        for _ in range(10):
            yield env.timeout(1)
            marks.append(env.now)

    env.process(proc())
    env.run(until=4.5)
    assert env.now == 4.5
    assert marks == [1, 2, 3, 4]


def test_run_until_past_raises():
    env = Environment()

    def proc():
        yield env.timeout(10)

    env.process(proc())
    env.run()
    with pytest.raises(ValueError):
        env.run(until=5)


def test_same_time_events_fifo_order():
    env = Environment()
    order = []

    def proc(name):
        yield env.timeout(1)
        order.append(name)

    env.process(proc("a"))
    env.process(proc("b"))
    env.process(proc("c"))
    env.run()
    assert order == ["a", "b", "c"]


def test_determinism_two_runs_identical():
    def build():
        env = Environment()
        trace = []

        def worker(name, period):
            while env.now < 10:
                yield env.timeout(period)
                trace.append((env.now, name))

        env.process(worker("x", 1.5))
        env.process(worker("y", 2.0))
        env.run(until=10)
        return trace

    assert build() == build()


def test_process_waits_on_process():
    env = Environment()
    log = []

    def child():
        yield env.timeout(2)
        log.append("child")
        return "done"

    def parent():
        result = yield env.process(child())
        log.append(f"parent:{result}")

    env.process(parent())
    env.run()
    assert log == ["child", "parent:done"]


def test_event_manual_succeed():
    env = Environment()
    ev = env.event()
    got = []

    def waiter():
        got.append((yield ev))

    def firer():
        yield env.timeout(1)
        ev.succeed(99)

    env.process(waiter())
    env.process(firer())
    env.run()
    assert got == [99]


def test_event_double_trigger_rejected():
    env = Environment()
    ev = env.event()
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)


def test_event_fail_propagates_into_process():
    env = Environment()
    caught = []

    def waiter(ev):
        try:
            yield ev
        except RuntimeError as exc:
            caught.append(str(exc))

    ev = env.event()
    env.process(waiter(ev))

    def firer():
        yield env.timeout(1)
        ev.fail(RuntimeError("boom"))

    env.process(firer())
    env.run()
    assert caught == ["boom"]


def test_unhandled_process_exception_surfaces_in_run():
    env = Environment()

    def bad():
        yield env.timeout(1)
        raise ValueError("oops")

    env.process(bad())
    with pytest.raises(ValueError, match="oops"):
        env.run()


def test_yield_non_event_raises():
    env = Environment()

    def bad():
        yield 123

    env.process(bad())
    with pytest.raises(SimulationError, match="non-event"):
        env.run()


def test_all_of_waits_for_every_event():
    env = Environment()
    done_at = []

    def proc():
        t1 = env.timeout(1, value="a")
        t2 = env.timeout(5, value="b")
        result = yield env.all_of([t1, t2])
        done_at.append(env.now)
        assert set(result.values()) == {"a", "b"}

    env.process(proc())
    env.run()
    assert done_at == [5]


def test_any_of_fires_on_first():
    env = Environment()
    done_at = []

    def proc():
        t1 = env.timeout(1, value="fast")
        t2 = env.timeout(5, value="slow")
        result = yield env.any_of([t1, t2])
        done_at.append(env.now)
        assert "fast" in result.values()

    env.process(proc())
    env.run()
    assert done_at == [1]


def test_and_operator():
    env = Environment()
    done_at = []

    def proc():
        yield env.timeout(2) & env.timeout(3)
        done_at.append(env.now)

    env.process(proc())
    env.run()
    assert done_at == [3]


def test_or_operator():
    env = Environment()
    done_at = []

    def proc():
        yield env.timeout(2) | env.timeout(3)
        done_at.append(env.now)

    env.process(proc())
    env.run()
    assert done_at == [2]


def test_interrupt_raises_in_target():
    env = Environment()
    log = []

    def sleeper():
        try:
            yield env.timeout(100)
            log.append("slept")
        except Interrupt as i:
            log.append((env.now, f"interrupted:{i.cause}"))

    def interrupter(target):
        yield env.timeout(1)
        target.interrupt("wakeup")

    target = env.process(sleeper())
    env.process(interrupter(target))
    env.run()
    # Interrupted at t=1, never resumed by the stale timeout.
    assert log == [(1, "interrupted:wakeup")]


def test_interrupt_dead_process_rejected():
    env = Environment()

    def quick():
        yield env.timeout(1)

    p = env.process(quick())
    env.run()
    with pytest.raises(SimulationError):
        p.interrupt()


def test_step_on_empty_queue_raises_deadlock():
    env = Environment()
    with pytest.raises(DeadlockError):
        env.step()


def test_run_until_event_never_fires_deadlocks():
    env = Environment()
    ev = env.event()

    def proc():
        yield env.timeout(1)

    env.process(proc())
    with pytest.raises(DeadlockError):
        env.run(until=ev)


def test_peek_reports_next_event_time():
    env = Environment()
    env.timeout(7)
    assert env.peek() == 7
    env2 = Environment()
    assert env2.peek() == float("inf")


def test_is_alive_lifecycle():
    env = Environment()

    def proc():
        yield env.timeout(5)

    p = env.process(proc())
    assert p.is_alive
    env.run()
    assert not p.is_alive


def test_nested_process_exception_propagates_to_parent():
    env = Environment()
    caught = []

    def child():
        yield env.timeout(1)
        raise KeyError("inner")

    def parent():
        try:
            yield env.process(child())
        except KeyError:
            caught.append("got it")

    env.process(parent())
    env.run()
    assert caught == ["got it"]
