"""Tests for the assembled Myriad 2 chip model."""

import pytest

from repro.errors import AllocationError, SimulationError
from repro.nn import get_model
from repro.nn.weights import initialize_network
from repro.sim import Environment, TraceRecorder
from repro.vpu import Myriad2, Myriad2Config, compile_graph


@pytest.fixture(scope="module")
def micro_graph():
    net = get_model("googlenet-micro")
    initialize_network(net)
    return compile_graph(net)


def test_config_validation():
    with pytest.raises(SimulationError):
        Myriad2Config(num_shaves=0)
    with pytest.raises(SimulationError):
        Myriad2Config(num_shaves=13)


def test_chip_construction_defaults():
    env = Environment()
    chip = Myriad2(env)
    assert len(chip.shaves) == 12
    assert chip.cmx.capacity == 2 * 1024 ** 2
    assert chip.islands.count == 20
    assert chip.islands.is_on("risc0")  # runtime scheduler island


def test_inference_advances_clock_by_estimate(micro_graph):
    env = Environment()
    chip = Myriad2(env)
    chip.allocate_graph(micro_graph)
    done = env.run(until=chip.run_inference(micro_graph))
    assert env.now == pytest.approx(micro_graph.inference_seconds)
    assert chip.inferences_completed == 1
    # Per-layer times returned like NCAPI TIME_TAKEN.
    assert isinstance(done, dict)
    assert len(done) == len(micro_graph.layers)
    assert sum(done.values()) == pytest.approx(env.now)


def test_inferences_serialise_on_shave_array(micro_graph):
    env = Environment()
    chip = Myriad2(env)
    chip.allocate_graph(micro_graph)

    def both():
        a = chip.run_inference(micro_graph)
        b = chip.run_inference(micro_graph)
        yield a & b

    env.run(until=env.process(both()))
    assert env.now == pytest.approx(2 * micro_graph.inference_seconds)


def test_graph_allocation_reserves_ddr(micro_graph):
    env = Environment()
    chip = Myriad2(env)
    before = chip.ddr.free
    handle = chip.allocate_graph(micro_graph)
    assert chip.ddr.free < before
    chip.deallocate_graph(handle)
    assert chip.ddr.free == before
    with pytest.raises(AllocationError):
        chip.deallocate_graph(handle)


def test_graph_shave_mismatch_rejected(micro_graph):
    env = Environment()
    chip = Myriad2(env, Myriad2Config(num_shaves=4))
    # micro_graph was compiled for 12 SHAVEs.
    with pytest.raises(AllocationError):
        chip.allocate_graph(micro_graph)


def test_shave_utilization_recorded(micro_graph):
    env = Environment()
    chip = Myriad2(env)
    chip.allocate_graph(micro_graph)
    env.run(until=chip.run_inference(micro_graph))
    utils = chip.shave_utilization()
    assert len(utils) == 12
    assert utils[0] > 0  # shave0 participates in every layer


def test_power_islands_gate_around_inference(micro_graph):
    env = Environment()
    chip = Myriad2(env)
    chip.allocate_graph(micro_graph)
    env.run(until=chip.run_inference(micro_graph))
    # After the run, SHAVEs are gated again.
    assert not chip.islands.is_on("shave0")
    # Energy was consumed during the inference window.
    assert chip.islands.energy_joules() > 0


def test_energy_scales_with_inference_count(micro_graph):
    def run(n):
        env = Environment()
        chip = Myriad2(env)
        chip.allocate_graph(micro_graph)

        def proc():
            for _ in range(n):
                yield chip.run_inference(micro_graph)

        env.run(until=env.process(proc()))
        return chip.islands.energy_joules()

    assert run(4) == pytest.approx(4 * run(1), rel=0.05)


def test_trace_events_emitted(micro_graph):
    env = Environment()
    trace = TraceRecorder(env)
    chip = Myriad2(env, trace=trace)
    chip.allocate_graph(micro_graph)
    env.run(until=chip.run_inference(micro_graph))
    assert len(trace.by_action("allocate_graph")) == 1
    assert len(trace.by_action("inference_done")) == 1


def test_ddr_traffic_accounted_for_spilled_layers(micro_graph):
    env = Environment()
    chip = Myriad2(env)
    chip.allocate_graph(micro_graph)
    env.run(until=chip.run_inference(micro_graph))
    spilled = [l for l in micro_graph.layers if not l.tile_plan.fits_cmx]
    if spilled:
        assert chip.dma.bytes_moved > 0
    else:
        assert chip.dma.bytes_moved == 0
