"""Unit tests for DES resources: Resource, PriorityResource, Store."""

import pytest

from repro.sim import Environment, PriorityResource, Resource, Store


def test_resource_capacity_validation():
    env = Environment()
    with pytest.raises(ValueError):
        Resource(env, capacity=0)


def test_resource_grants_up_to_capacity():
    env = Environment()
    res = Resource(env, capacity=2)
    grants = []

    def user(name):
        with res.request() as req:
            yield req
            grants.append((env.now, name))
            yield env.timeout(10)

    env.process(user("a"))
    env.process(user("b"))
    env.process(user("c"))
    env.run(until=5)
    assert [g[1] for g in grants] == ["a", "b"]
    env.run()
    assert [g[1] for g in grants] == ["a", "b", "c"]
    assert grants[2][0] == 10


def test_resource_fifo_order():
    env = Environment()
    res = Resource(env, capacity=1)
    order = []

    def user(name, arrive):
        yield env.timeout(arrive)
        with res.request() as req:
            yield req
            order.append(name)
            yield env.timeout(1)

    for i, name in enumerate("abcd"):
        env.process(user(name, i * 0.1))
    env.run()
    assert order == list("abcd")


def test_resource_release_is_idempotent():
    env = Environment()
    res = Resource(env, capacity=1)

    def user():
        req = res.request()
        yield req
        res.release(req)
        res.release(req)  # double release must not free someone else's slot

    env.process(user())
    env.run()
    assert res.count == 0


def test_resource_cancel_queued_request():
    env = Environment()
    res = Resource(env, capacity=1)
    held = res.request()  # immediately granted
    assert held.triggered
    queued = res.request()
    assert not queued.triggered
    res.release(queued)  # cancel before grant
    res.release(held)
    assert res.count == 0
    assert not queued.triggered


def test_resource_count_property():
    env = Environment()
    res = Resource(env, capacity=3)
    reqs = [res.request() for _ in range(3)]
    assert res.count == 3
    res.release(reqs[0])
    assert res.count == 2


def test_priority_resource_serves_lowest_priority_first():
    env = Environment()
    res = PriorityResource(env, capacity=1)
    order = []

    def holder():
        with res.request() as req:
            yield req
            yield env.timeout(5)

    def user(name, priority):
        yield env.timeout(1)
        with res.request(priority=priority) as req:
            yield req
            order.append(name)

    env.process(holder())
    env.process(user("low", 10))
    env.process(user("high", 0))
    env.process(user("mid", 5))
    env.run()
    assert order == ["high", "mid", "low"]


def test_priority_resource_fifo_within_priority():
    env = Environment()
    res = PriorityResource(env, capacity=1)
    order = []

    def holder():
        with res.request() as req:
            yield req
            yield env.timeout(5)

    def user(name):
        yield env.timeout(1)
        with res.request(priority=1) as req:
            yield req
            order.append(name)

    env.process(holder())
    for name in "xyz":
        env.process(user(name))
    env.run()
    assert order == list("xyz")


def test_store_put_get_fifo():
    env = Environment()
    store = Store(env)
    got = []

    def producer():
        for i in range(3):
            yield store.put(i)
            yield env.timeout(1)

    def consumer():
        for _ in range(3):
            item = yield store.get()
            got.append(item)

    env.process(producer())
    env.process(consumer())
    env.run()
    assert got == [0, 1, 2]


def test_store_get_blocks_until_item():
    env = Environment()
    store = Store(env)
    got_at = []

    def consumer():
        yield store.get()
        got_at.append(env.now)

    def producer():
        yield env.timeout(4)
        yield store.put("x")

    env.process(consumer())
    env.process(producer())
    env.run()
    assert got_at == [4]


def test_store_capacity_blocks_put():
    env = Environment()
    store = Store(env, capacity=1)
    put_done = []

    def producer():
        yield store.put("a")
        put_done.append(env.now)
        yield store.put("b")
        put_done.append(env.now)

    def consumer():
        yield env.timeout(5)
        yield store.get()

    env.process(producer())
    env.process(consumer())
    env.run()
    assert put_done == [0, 5]


def test_store_filtered_get():
    env = Environment()
    store = Store(env)
    got = []

    def producer():
        for tag in ("red", "blue", "red"):
            yield store.put(tag)

    def consumer():
        item = yield store.get(filter=lambda x: x == "blue")
        got.append(item)

    env.process(producer())
    env.process(consumer())
    env.run()
    assert got == ["blue"]
    assert store.items == ["red", "red"]


def test_store_filtered_get_waits_for_match():
    env = Environment()
    store = Store(env)
    got_at = []

    def consumer():
        yield store.get(filter=lambda x: x == 42)
        got_at.append(env.now)

    def producer():
        yield store.put(1)
        yield env.timeout(3)
        yield store.put(42)

    env.process(consumer())
    env.process(producer())
    env.run()
    assert got_at == [3]


def test_store_len_tracks_items():
    env = Environment()
    store = Store(env)

    def proc():
        yield store.put("a")
        yield store.put("b")

    env.process(proc())
    env.run()
    assert len(store) == 2


def test_store_invalid_capacity():
    env = Environment()
    with pytest.raises(ValueError):
        Store(env, capacity=0)


def test_store_multiple_consumers_each_get_one():
    env = Environment()
    store = Store(env)
    got = []

    def consumer(name):
        item = yield store.get()
        got.append((name, item))

    env.process(consumer("c1"))
    env.process(consumer("c2"))

    def producer():
        yield store.put("i1")
        yield store.put("i2")

    env.process(producer())
    env.run()
    assert sorted(got) == [("c1", "i1"), ("c2", "i2")]
