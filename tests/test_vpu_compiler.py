"""Tests for the graph compiler: tiling, scheduling, timing, graph files."""

import numpy as np
import pytest

from repro.errors import CompileError, InvalidGraphFile
from repro.nn import Convolution, Network, ReLU, Softmax, get_model
from repro.nn import build_googlenet
from repro.nn.weights import initialize_network
from repro.tensors import BlobShape
from repro.vpu import CompiledGraph, compile_graph
from repro.vpu.compiler import assign_shaves, per_layer_report, plan_tiling
from repro.vpu.compiler.tiling import working_set_bytes
from repro.vpu.timing import (
    DISPATCH_SECONDS,
    estimate_layer_cycles,
    layer_efficiency,
)


def _small_net():
    net = Network("small", "data", BlobShape(1, 3, 16, 16))
    net.add(Convolution("conv", "data", "conv", num_output=8,
                        kernel_size=3, in_channels=3, pad=1))
    net.add(ReLU("relu", "conv", "conv"))
    net.add(Softmax("prob", "conv", "prob"))
    initialize_network(net)
    return net


# --- tiling ----------------------------------------------------------------

def test_small_layer_fits_cmx():
    net = _small_net()
    conv = net.layer("conv")
    plan = plan_tiling(conv, [BlobShape(1, 3, 16, 16)])
    assert plan.fits_cmx
    assert plan.num_tiles == 1
    assert plan.ddr_traffic_bytes == 0


def test_large_layer_spills_to_ddr():
    conv = Convolution("big", "a", "b", num_output=64, kernel_size=3,
                       in_channels=64, pad=1)
    shape = BlobShape(1, 64, 128, 128)  # ~2 MB in + 2 MB out at fp16
    plan = plan_tiling(conv, [shape])
    assert not plan.fits_cmx
    assert plan.num_tiles > 1
    assert plan.ddr_traffic_bytes == plan.working_set_bytes


def test_working_set_accounts_weights():
    conv = Convolution("c", "a", "b", num_output=4, kernel_size=3,
                       in_channels=2, pad=1)
    shape = BlobShape(1, 2, 8, 8)
    ws = working_set_bytes(conv, [shape], bytes_per_element=2)
    out = conv.output_shapes([shape])[0]
    expected = (shape.count + out.count) * 2 + conv.param_count() * 2
    assert ws == expected


def test_huge_weights_tile_by_weight_bands():
    from repro.nn import InnerProduct
    fc = InnerProduct("fc", "a", "b", num_output=4096, num_input=4096)
    shape = BlobShape(1, 4096, 1, 1)
    plan = plan_tiling(fc, [shape])  # 32 MB of fp16 weights >> 2 MB CMX
    assert not plan.fits_cmx
    assert plan.num_tiles > 10


# --- scheduling -----------------------------------------------------------------

def test_assign_shaves_row_split():
    conv = Convolution("c", "a", "b", num_output=4, kernel_size=3,
                       in_channels=2, pad=1)
    a = assign_shaves(conv, [BlobShape(1, 2, 24, 24)], num_shaves=12)
    assert a.shaves_used == 12
    assert a.parallel_units == 24
    assert a.imbalance == 1.0  # 24 rows / 12 shaves = exact


def test_assign_shaves_fewer_rows_than_shaves():
    conv = Convolution("c", "a", "b", num_output=4, kernel_size=3,
                       in_channels=2, pad=1)
    a = assign_shaves(conv, [BlobShape(1, 2, 7, 7)], num_shaves=12)
    assert a.shaves_used == 7


def test_assign_shaves_imbalance():
    conv = Convolution("c", "a", "b", num_output=4, kernel_size=3,
                       in_channels=2, pad=1)
    a = assign_shaves(conv, [BlobShape(1, 2, 13, 13)], num_shaves=12)
    # 13 rows on 12 shaves: critical path 2 rows vs 13/12 ideal.
    assert a.imbalance == pytest.approx(2 * 12 / 13)


def test_assign_shaves_validation():
    conv = Convolution("c", "a", "b", num_output=4, kernel_size=3,
                       in_channels=2, pad=1)
    with pytest.raises(CompileError):
        assign_shaves(conv, [BlobShape(1, 2, 8, 8)], num_shaves=0)


# --- timing ------------------------------------------------------------------------

def test_layer_efficiency_by_kernel():
    c1 = Convolution("c1", "a", "b", num_output=1, kernel_size=1,
                     in_channels=1)
    c3 = Convolution("c3", "a", "b", num_output=1, kernel_size=3,
                     in_channels=1)
    assert layer_efficiency(c1) < layer_efficiency(c3)


def test_estimate_cycles_scale_with_shaves():
    conv = Convolution("c", "a", "b", num_output=32, kernel_size=3,
                       in_channels=32, pad=1)
    shape = BlobShape(1, 32, 48, 48)
    t1 = estimate_layer_cycles(conv, [shape], shaves=1, freq_hz=600e6)
    t12 = estimate_layer_cycles(conv, [shape], shaves=12, freq_hz=600e6)
    ratio = t1.compute_cycles / t12.compute_cycles
    assert 10 < ratio <= 13  # near-linear strong scaling


def test_estimate_cycles_dispatch_constant():
    conv = Convolution("c", "a", "b", num_output=8, kernel_size=3,
                       in_channels=8, pad=1)
    t = estimate_layer_cycles(conv, [BlobShape(1, 8, 16, 16)],
                              shaves=12, freq_hz=600e6)
    assert t.dispatch_cycles == int(DISPATCH_SECONDS * 600e6)


def test_estimate_cycles_ddr_streaming_memory_bound():
    conv = Convolution("c", "a", "b", num_output=64, kernel_size=1,
                       in_channels=64)
    shape = BlobShape(1, 64, 128, 128)
    cmx_t = estimate_layer_cycles(conv, [shape], shaves=12,
                                  freq_hz=600e6, ddr_streamed=False)
    ddr_t = estimate_layer_cycles(conv, [shape], shaves=12,
                                  freq_hz=600e6, ddr_streamed=True)
    assert ddr_t.memory_cycles > 0
    assert cmx_t.memory_cycles == 0
    assert ddr_t.total_cycles >= cmx_t.total_cycles


# --- compile_graph --------------------------------------------------------------------

def test_compile_graph_structure():
    net = _small_net()
    g = compile_graph(net)
    assert g.precision.value == "fp16"
    # conv + softmax; the in-place ReLU fuses into the conv.
    assert len(g.layers) == 2
    assert g.layers[0].fused == "relu"
    assert len(compile_graph(net, fuse_relu=False).layers) == 3
    assert g.input_shape.as_tuple() == (1, 3, 16, 16)
    assert g.output_shape.as_tuple() == (1, 8, 16, 16)
    assert g.total_cycles > 0
    assert g.inference_seconds > 0


def test_compile_graph_input_bytes_fp16():
    net = _small_net()
    g = compile_graph(net)
    assert g.input_tensor_bytes == 3 * 16 * 16 * 2


def test_compile_empty_network_rejected():
    net = Network("empty", "data", BlobShape(1, 1, 8, 8))
    with pytest.raises(CompileError):
        compile_graph(net)


def test_compile_invalid_shaves():
    with pytest.raises(CompileError):
        compile_graph(_small_net(), num_shaves=0)


@pytest.fixture(scope="module")
def paper_net():
    """Paper-scale GoogLeNet (zero weights; compile only needs shapes)."""
    return build_googlenet()


def test_compile_shave_scaling_monotone(paper_net):
    times = [compile_graph(paper_net, num_shaves=s).inference_seconds
             for s in (1, 2, 4, 8, 12)]
    assert all(a > b for a, b in zip(times, times[1:]))
    # Strong scaling 1 -> 12 SHAVEs achieves most of the ideal 12x.
    assert times[0] / times[-1] > 6


def test_micro_scale_is_dispatch_dominated():
    """At 32px geometry, per-layer dispatch dominates and SHAVE
    scaling saturates — the flip side of the paper-scale result."""
    net = get_model("googlenet-micro")
    initialize_network(net)
    t1 = compile_graph(net, num_shaves=1).inference_seconds
    t12 = compile_graph(net, num_shaves=12).inference_seconds
    assert t1 / t12 < 2  # nowhere near linear


def test_paper_scale_anchor(paper_net):
    """The calibration anchor: paper-scale GoogLeNet ~99.5 ms on-chip.

    (Plus ~1.2 ms of USB transfer this makes the paper's 100.7 ms
    single-stick latency.)
    """
    g = compile_graph(paper_net)
    assert g.inference_seconds * 1000 == pytest.approx(99.5, abs=2.0)


def test_graph_file_roundtrip():
    net = _small_net()
    g = compile_graph(net)
    blob = g.to_bytes()
    assert blob.startswith(b"MVNCG002")
    g2 = CompiledGraph.from_bytes(blob)
    assert g2.name == g.name
    assert g2.total_cycles == g.total_cycles
    assert len(g2.layers) == len(g.layers)
    # The functional network survives serialisation.
    x = np.random.default_rng(0).normal(size=(1, 3, 16, 16)).astype(
        np.float32)
    np.testing.assert_array_equal(g.network.forward(x),
                                  g2.network.forward(x))


def test_graph_file_rejects_garbage():
    with pytest.raises(InvalidGraphFile):
        CompiledGraph.from_bytes(b"NOTAGRAPH")
    with pytest.raises(InvalidGraphFile):
        CompiledGraph.from_bytes(b"MVNCG002" + b"corrupt")
    with pytest.raises(InvalidGraphFile):
        CompiledGraph.from_bytes("not-bytes")  # type: ignore[arg-type]


def test_per_layer_report_renders():
    net = get_model("googlenet-micro")
    initialize_network(net)
    g = compile_graph(net)
    report = per_layer_report(g, top=5)
    assert "TOTAL" in report
    assert "Convolution" in report
    # top=5 -> 5 rows + header(2) + footer(2)
    assert len(report.splitlines()) == 9
