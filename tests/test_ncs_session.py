"""Tests for the synchronous session facade."""

import numpy as np
import pytest

from repro.errors import NCAPIError
from repro.ncs import SyncSession, USBTopology
from repro.nn import get_model
from repro.nn.weights import initialize_network
from repro.numerics import PrecisionPolicy
from repro.sim import Environment
from repro.vpu import compile_graph


@pytest.fixture(scope="module")
def micro_graph():
    net = get_model("googlenet-micro")
    initialize_network(net)
    return compile_graph(net)


def test_open_allocate_infer(micro_graph):
    sess = SyncSession(num_devices=1, functional=True)
    dev = sess.open_device(0)
    assert sess.now > 0.4  # firmware boot happened
    graph = sess.allocate(dev, micro_graph)
    x = np.random.default_rng(0).normal(
        size=(3, 32, 32)).astype(np.float32) * 0.1
    result, user = sess.infer(graph, x, user="tag")
    assert user == "tag"
    expected = micro_graph.network.forward(
        x[None], PrecisionPolicy.fp16())[0]
    np.testing.assert_allclose(result.astype(np.float32), expected,
                               atol=1e-3)


def test_allocate_from_blob(micro_graph):
    sess = SyncSession(num_devices=1, functional=False)
    dev = sess.open_device(0)
    graph = sess.allocate(dev, micro_graph.to_bytes())
    assert graph.name == micro_graph.name


def test_clock_advances_per_inference(micro_graph):
    sess = SyncSession(num_devices=1, functional=False)
    dev = sess.open_device(0)
    graph = sess.allocate(dev, micro_graph)
    t0 = sess.now
    sess.infer(graph, None)
    assert sess.now - t0 >= micro_graph.inference_seconds


def test_infer_batch_pipelines(micro_graph):
    sess = SyncSession(num_devices=1, functional=False)
    dev = sess.open_device(0)
    graph = sess.allocate(dev, micro_graph)
    t0 = sess.now
    results = sess.infer_batch(graph, [None] * 6)
    assert len(results) == 6
    elapsed = sess.now - t0
    # Pipelined: the 6 inferences cost ~6 inference times (transfers
    # hidden), not 6 x (transfer + inference) serialised.
    assert elapsed < 6 * micro_graph.inference_seconds * 1.15
    with pytest.raises(NCAPIError):
        sess.infer_batch(graph, [])


def test_custom_topology_must_share_env(micro_graph):
    other_env = Environment()
    topo = USBTopology(other_env)
    topo.attach_device("ncs0")
    with pytest.raises(NCAPIError, match="share the session's env"):
        SyncSession(topology=topo)


def test_custom_topology_happy_path(micro_graph):
    env = Environment()
    topo = USBTopology(env)
    topo.attach_device("ncs0")
    sess = SyncSession(topology=topo, env=env, functional=False)
    dev = sess.open_device(0)
    graph = sess.allocate(dev, micro_graph)
    result, _ = sess.infer(graph, None)
    assert result is not None
