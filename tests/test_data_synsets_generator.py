"""Tests for synset vocabulary and image synthesis."""

import numpy as np
import pytest

from repro.data import ImageSynthesizer, SynsetVocabulary
from repro.errors import DatasetError


# --- synsets ---------------------------------------------------------------

def test_vocabulary_size_and_indexing():
    v = SynsetVocabulary(num_classes=100)
    assert len(v) == 100
    assert v[0].index == 0
    assert v[99].index == 99
    with pytest.raises(DatasetError):
        v[100]
    with pytest.raises(DatasetError):
        v[-1]


def test_vocabulary_wnids_unique_and_formatted():
    v = SynsetVocabulary(num_classes=1000)
    wnids = [s.wnid for s in v]
    assert len(set(wnids)) == 1000
    for w in wnids:
        assert w.startswith("n") and len(w) == 9 and w[1:].isdigit()


def test_vocabulary_lemmas_unique():
    v = SynsetVocabulary(num_classes=1000)
    lemmas = [s.name for s in v]
    assert len(set(lemmas)) == 1000


def test_vocabulary_by_wnid():
    v = SynsetVocabulary(num_classes=10)
    s = v[3]
    assert v.by_wnid(s.wnid) is s
    with pytest.raises(DatasetError):
        v.by_wnid("n99999999")


def test_vocabulary_deterministic():
    a = SynsetVocabulary(num_classes=50)
    b = SynsetVocabulary(num_classes=50)
    assert [s.wnid for s in a] == [s.wnid for s in b]
    assert [s.name for s in a] == [s.name for s in b]


def test_vocabulary_validation():
    with pytest.raises(DatasetError):
        SynsetVocabulary(num_classes=0)


# --- generator -----------------------------------------------------------------

def test_template_shape_dtype_range():
    synth = ImageSynthesizer(num_classes=10, size=64)
    t = synth.template(3)
    assert t.shape == (64, 64, 3)
    assert t.dtype == np.uint8


def test_templates_differ_between_classes():
    synth = ImageSynthesizer(num_classes=10, size=32)
    a, b = synth.template(0), synth.template(1)
    assert not np.array_equal(a, b)
    # And substantially so — mean abs difference above noise floor.
    assert np.mean(np.abs(a.astype(int) - b.astype(int))) > 10


def test_template_deterministic_and_cached():
    s1 = ImageSynthesizer(num_classes=5, size=32)
    s2 = ImageSynthesizer(num_classes=5, size=32)
    np.testing.assert_array_equal(s1.template(2), s2.template(2))
    assert s1.template(2) is s1.template(2)  # cache hit


def test_sample_deterministic():
    synth = ImageSynthesizer(num_classes=5, size=32, noise_sigma=30)
    a = synth.sample(1, image_id=42)
    b = synth.sample(1, image_id=42)
    np.testing.assert_array_equal(a, b)


def test_samples_differ_by_image_id():
    synth = ImageSynthesizer(num_classes=5, size=32, noise_sigma=30)
    assert not np.array_equal(synth.sample(1, 1), synth.sample(1, 2))


def test_sample_zero_noise_stays_near_template():
    synth = ImageSynthesizer(num_classes=5, size=32, noise_sigma=0)
    t = synth.template(0).astype(float)
    s = synth.sample(0, 7).astype(float)
    # Only jitter (shift/brightness) remains; correlation stays high.
    corr = np.corrcoef(t.ravel(), s.ravel())[0, 1]
    assert corr > 0.5


def test_noise_scales_sample_distance():
    low = ImageSynthesizer(num_classes=5, size=32, noise_sigma=5)
    high = low.with_noise(80)
    t = low.template(0).astype(float)
    d_low = np.abs(low.sample(0, 3).astype(float) - t).mean()
    d_high = np.abs(high.sample(0, 3).astype(float) - t).mean()
    assert d_high > d_low


def test_with_noise_shares_template_cache():
    base = ImageSynthesizer(num_classes=5, size=32)
    base.template(0)
    clone = base.with_noise(99)
    assert clone._template_cache is base._template_cache
    np.testing.assert_array_equal(clone.template(0), base.template(0))


def test_generator_validation():
    with pytest.raises(DatasetError):
        ImageSynthesizer(num_classes=0, size=32)
    with pytest.raises(DatasetError):
        ImageSynthesizer(num_classes=5, size=4)
    with pytest.raises(DatasetError):
        ImageSynthesizer(num_classes=5, size=32, noise_sigma=-1)
    synth = ImageSynthesizer(num_classes=5, size=32)
    with pytest.raises(DatasetError):
        synth.template(5)
