"""Tests for the experiment CLI."""

import pytest

from repro.harness.cli import build_parser, main


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in ("fig6a", "fig7b", "headline", "report", "profile"):
        assert name in out


def test_parser_rejects_unknown():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["figZZ"])


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_fig6b_command_renders(capsys):
    assert main(["fig6b", "--images", "32"]) == 0
    out = capsys.readouterr().out
    assert "fig6b" in out
    assert "paper reference" in out
    assert "=vpu" in out  # line chart legend


def test_fig6a_command_renders_bars(capsys):
    assert main(["fig6a", "--images", "32"]) == 0
    out = capsys.readouterr().out
    assert "Set-1" in out
    assert "#" in out  # bar chart marks


def test_headline_without_error_rows(capsys):
    assert main(["headline", "--images", "32", "--scale", "none"]) == 0
    out = capsys.readouterr().out
    assert "vpu_single_ms" in out
    assert "cpu_top1_error" not in out


def test_fig7b_smoke_scale(capsys):
    assert main(["fig7b", "--scale", "smoke"]) == 0
    out = capsys.readouterr().out
    assert "fig7b" in out


def test_profile_command(capsys):
    assert main(["profile", "--model", "googlenet-micro",
                 "--top", "5"]) == 0
    out = capsys.readouterr().out
    assert "TOTAL" in out
    assert "Convolution" in out


def test_profile_shave_option(capsys):
    assert main(["profile", "--model", "googlenet-micro",
                 "--shaves", "4", "--top", "3"]) == 0
    out = capsys.readouterr().out
    assert "TOTAL" in out


def test_json_dir_option(tmp_path, capsys):
    assert main(["fig6b", "--images", "16",
                 "--json-dir", str(tmp_path)]) == 0
    assert (tmp_path / "fig6b.json").exists()
    from repro.harness.export import load_figure_json
    fig = load_figure_json(tmp_path / "fig6b.json")
    assert fig.figure_id == "fig6b"


def test_report_markdown_option(tmp_path, capsys):
    md_path = tmp_path / "report.md"
    assert main(["report", "--images", "16", "--scale", "none",
                 "--markdown", str(md_path)]) == 0
    text = md_path.read_text()
    assert text.startswith("# Reproduction report")
    assert "## fig6a" in text and "## fig8b" in text
    assert "| metric | paper | measured | ratio |" in text


def test_trace_option_writes_chrome_trace(tmp_path, capsys):
    import json

    trace = tmp_path / "fig6b.trace.json"
    assert main(["fig6b", "--images", "16",
                 "--trace", str(trace)]) == 0
    out = capsys.readouterr().out
    assert "utilisation report" in out
    assert "wrote trace" in out and "perfetto" in out
    doc = json.loads(trace.read_text())
    events = doc["traceEvents"]
    tracks = {e["args"]["name"] for e in events
              if e.get("ph") == "M" and e["name"] == "thread_name"}
    assert any(t.startswith("ncs") for t in tracks)
    assert "inference" in {e["name"] for e in events
                           if e.get("ph") == "X"}


def test_profile_run_command(capsys):
    assert main(["profile-run", "--target", "vpu2", "--images", "16",
                 "--batch", "4"]) == 0
    out = capsys.readouterr().out
    assert "img/s" in out
    assert "utilisation report" in out
    assert "ncs0" in out and "ncs1" in out


def test_profile_run_trace_file(tmp_path, capsys):
    import json

    trace = tmp_path / "run.json"
    assert main(["profile-run", "--target", "cpu", "--images", "8",
                 "--batch", "4", "--trace", str(trace)]) == 0
    assert json.loads(trace.read_text())["traceEvents"]


def test_audit_command(capsys):
    assert main(["audit", "--images", "48", "--scale", "smoke"]) == 0
    out = capsys.readouterr().out
    assert "claims verified" in out
    assert "vpu-single-latency" in out
    assert " NO" not in out


def test_list_mentions_serve_commands(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "serve-run" in out and "serve-sweep" in out


def test_serve_run_command_renders_report(capsys):
    assert main(["serve-run", "--backends", "vpu4", "--requests", "24",
                 "--rate", "20", "--seed", "3"]) == 0
    out = capsys.readouterr().out
    assert "serve report" in out
    assert "workload       : poisson @ 20 req/s (seed 3)" in out
    assert "completed      : 24 (100.0%)" in out
    assert "SLO p99 <=" in out
    assert "goodput" in out


def test_serve_run_is_deterministic(capsys):
    args = ["serve-run", "--backends", "vpu2", "--requests", "16",
            "--rate", "10", "--seed", "5"]
    assert main(args) == 0
    first = capsys.readouterr().out
    assert main(args) == 0
    assert capsys.readouterr().out == first


def test_serve_run_bursty_workload(capsys):
    assert main(["serve-run", "--backends", "vpu4", "--requests", "24",
                 "--workload", "bursty", "--rate", "8"]) == 0
    out = capsys.readouterr().out
    assert "bursty" in out


def test_serve_run_kill_stick_degrades(capsys):
    assert main(["serve-run", "--backends", "vpu2", "--requests", "40",
                 "--rate", "15", "--kill-stick", "0",
                 "--kill-at", "0.3"]) == 0
    out = capsys.readouterr().out
    assert "baseline:" in out
    assert "chaos: kill stick 0" in out
    assert "device failures: ncs0" in out


def test_serve_run_validation(capsys):
    assert main(["serve-run", "--backends", "tpu9"]) == 2
    assert "unknown token" in capsys.readouterr().out
    assert main(["serve-run", "--kill-stick", "0",
                 "--kill-at", "1.5"]) == 2
    assert main(["serve-run", "--workload", "replay"]) == 2


def test_serve_run_replay_trace(tmp_path, capsys):
    trace = tmp_path / "arrivals.txt"
    trace.write_text("".join(f"{0.2 * i:.3f}\n" for i in range(12)))
    assert main(["serve-run", "--backends", "vpu2",
                 "--workload", "replay", "--replay", str(trace),
                 "--requests", "12"]) == 0
    out = capsys.readouterr().out
    assert "trace replay (12 arrivals)" in out


def test_serve_sweep_scales_with_sticks(capsys):
    assert main(["serve-sweep", "--configs", "vpu1,vpu2",
                 "--steps", "2", "--requests", "24"]) == 0
    out = capsys.readouterr().out
    assert "load sweep" in out
    assert "vpu1" in out and "vpu2" in out
    assert "1.00x" in out


def test_list_mentions_cluster_commands(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "cluster-run" in out and "cluster-sweep" in out


def test_cluster_run_command_renders_report(capsys):
    args = ["cluster-run", "--hosts", "2", "--requests", "24",
            "--rate", "40", "--slo", "5000", "--seed", "2"]
    assert main(args) == 0
    out = capsys.readouterr().out
    assert "cluster serve report" in out
    assert "hosts           : 2 (2 live at end)" in out
    assert "poisson @ 40 req/s (seed 2)" in out
    assert "offered         : 24" in out
    # Byte-identical on a re-run: the determinism contract.
    assert main(args) == 0
    assert capsys.readouterr().out == out


def test_cluster_run_kill_host_resurvives(capsys):
    assert main(["cluster-run", "--hosts", "2", "--requests", "40",
                 "--rate", "400", "--slo", "20000",
                 "--kill-host", "0", "--kill-at", "0.5"]) == 0
    out = capsys.readouterr().out
    assert "baseline:" in out
    assert "chaos: kill host 0" in out
    assert "died @" in out and "survived" in out
    assert "completed       : 40" in out  # nothing lost


def test_cluster_run_validation(capsys):
    assert main(["cluster-run", "--host-backends", "tpu9"]) == 2
    assert "unknown token" in capsys.readouterr().out
    assert main(["cluster-run", "--hosts", "2",
                 "--kill-host", "5"]) == 2
    assert main(["cluster-run", "--kill-host", "0",
                 "--kill-at", "1.5"]) == 2
    assert main(["cluster-run", "--hosts", "0"]) == 2


def test_cluster_sweep_smoke(capsys):
    assert main(["cluster-sweep", "--smoke", "--hosts", "1,2",
                 "--requests", "24", "--steps", "1"]) == 0
    out = capsys.readouterr().out
    assert "load sweep" in out
    assert "hosts=1" in out and "hosts=2" in out


def test_list_mentions_autoscale_commands(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "autoscale-run" in out and "autoscale-sweep" in out


def test_autoscale_run_smoke_is_deterministic(capsys):
    args = ["autoscale-run", "--smoke"]
    assert main(args) == 0
    out = capsys.readouterr().out
    assert "policy: reactive" in out
    assert "scale timeline" in out
    assert "host-seconds" in out
    assert "abandoned       : 0 (0 at the frontend)" in out
    # Byte-identical on a re-run: the determinism contract.
    assert main(args) == 0
    assert capsys.readouterr().out == out


def test_autoscale_run_predictive_smoke(capsys):
    assert main(["autoscale-run", "--smoke",
                 "--policy", "predictive"]) == 0
    out = capsys.readouterr().out
    assert "policy: predictive" in out
    assert "scale timeline" in out


def test_autoscale_sweep_smoke_renders_frontier(capsys):
    assert main(["autoscale-sweep", "--smoke"]) == 0
    out = capsys.readouterr().out
    assert "cost vs SLO frontier" in out
    assert "fixed-1" in out
    assert "reactive" in out and "predictive" in out
    assert "closed-loop capacity" in out


def test_list_mentions_workflow_commands(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "workflow-run" in out and "workflow-sweep" in out


def test_workflow_run_smoke_is_deterministic(capsys):
    args = ["workflow-run", "--smoke"]
    assert main(args) == 0
    out = capsys.readouterr().out
    assert "workflow cascade-micro" in out
    assert "fan-out region: crop .. aggregate" in out
    assert "== workflow report: cascade-micro ==" in out
    assert "spawned" in out and "abandoned" in out
    # Byte-identical on a re-run: the determinism contract.
    assert main(args) == 0
    assert capsys.readouterr().out == out


def test_workflow_run_escalate_smoke(capsys):
    assert main(["workflow-run", "--workflow", "escalate",
                 "--smoke"]) == 0
    out = capsys.readouterr().out
    assert "classify-fp16" in out and "classify-fp32" in out
    assert "gate [branch]" in out


def test_workflow_run_trace_appends_only(tmp_path, capsys):
    # Observability must not change the report: the obs run's output
    # starts with the obs-off run's bytes, then appends obs extras.
    args = ["workflow-run", "--smoke", "--workflow", "ensemble"]
    assert main(args) == 0
    plain = capsys.readouterr().out
    trace = tmp_path / "wf.json"
    assert main(args + ["--trace", str(trace)]) == 0
    traced = capsys.readouterr().out
    assert traced.startswith(plain.rstrip("\n"))
    assert "utilisation" in traced or "util" in traced
    assert trace.exists()


def test_workflow_sweep_smoke_renders_table(capsys):
    assert main(["workflow-sweep", "--smoke"]) == 0
    out = capsys.readouterr().out
    assert "cascade vs monolithic" in out
    assert "monolithic" in out
    assert "worst-case workflow loss" in out


def test_workflow_run_rejects_bad_scale(capsys):
    with pytest.raises(SystemExit):
        build_parser().parse_args(["workflow-run", "--scale", "huge"])
