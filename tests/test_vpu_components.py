"""Unit tests for VPU component models: clock, CMX, DDR, DMA, SHAVE,
SIPP, power islands."""

import pytest

from repro.errors import AllocationError, PowerError, SimulationError
from repro.sim import Environment
from repro.units import GHZ, KiB, MHZ
from repro.vpu import (
    CMXMemory,
    Clock,
    DDRChannel,
    DMAEngine,
    PowerIslands,
    ShaveConfig,
    ShaveProcessor,
    SIPPPipeline,
)
from repro.vpu.cmx import CMX_TOTAL_BYTES
from repro.vpu.shave import KernelWorkload
from repro.vpu.sipp import SIPP_FILTERS


# --- clock ------------------------------------------------------------------

def test_clock_roundtrip():
    c = Clock(600 * MHZ)
    assert c.to_seconds(600e6) == pytest.approx(1.0)
    assert c.to_cycles(0.5) == pytest.approx(300e6)
    assert c.period == pytest.approx(1 / 600e6)


def test_clock_validation():
    with pytest.raises(ValueError):
        Clock(0)


# --- CMX ---------------------------------------------------------------------

def test_cmx_geometry():
    cmx = CMXMemory()
    assert cmx.num_slices == 16
    assert cmx.capacity == 2 * 1024 * KiB  # 2 MiB
    assert cmx.capacity == CMX_TOTAL_BYTES
    assert cmx.free == cmx.capacity


def test_cmx_alloc_single_slice():
    cmx = CMXMemory()
    blocks = cmx.alloc(1000, tag="weights")
    assert len(blocks) == 1
    assert cmx.used == 1000
    assert cmx.slice_used(0) == 1000
    cmx.free_blocks(blocks)
    assert cmx.used == 0


def test_cmx_alloc_spans_slices():
    cmx = CMXMemory(slices=4, slice_bytes=1000)
    blocks = cmx.alloc(2500)
    assert len(blocks) == 3
    assert cmx.used == 2500
    assert [b.slice_index for b in blocks] == [0, 1, 2]


def test_cmx_prefer_slice():
    cmx = CMXMemory(slices=4, slice_bytes=1000)
    blocks = cmx.alloc(500, prefer_slice=2)
    assert blocks[0].slice_index == 2


def test_cmx_exhaustion_is_atomic():
    cmx = CMXMemory(slices=2, slice_bytes=1000)
    cmx.alloc(1500)
    with pytest.raises(AllocationError):
        cmx.alloc(1000)
    assert cmx.used == 1500  # failed alloc left no partial blocks


def test_cmx_double_free_detected():
    cmx = CMXMemory()
    blocks = cmx.alloc(100)
    cmx.free_blocks(blocks)
    with pytest.raises(AllocationError):
        cmx.free_blocks(blocks)


def test_cmx_reset():
    cmx = CMXMemory()
    cmx.alloc(5000)
    cmx.reset()
    assert cmx.used == 0


def test_cmx_validation():
    with pytest.raises(AllocationError):
        CMXMemory(slices=0)
    cmx = CMXMemory()
    with pytest.raises(AllocationError):
        cmx.alloc(0)
    with pytest.raises(AllocationError):
        cmx.alloc(100, prefer_slice=99)


def test_cmx_transfer_seconds():
    cmx = CMXMemory()
    assert cmx.transfer_seconds(70e9) == pytest.approx(1.0)
    with pytest.raises(AllocationError):
        cmx.transfer_seconds(-1)


# --- DDR -------------------------------------------------------------------------

def test_ddr_capacity_4gb():
    ddr = DDRChannel()
    assert ddr.capacity == 4 * 1024 ** 3


def test_ddr_alloc_release():
    ddr = DDRChannel(capacity=1000)
    h = ddr.alloc(600)
    assert ddr.free == 400
    with pytest.raises(AllocationError):
        ddr.alloc(500)
    ddr.release(h)
    assert ddr.free == 1000
    with pytest.raises(AllocationError):
        ddr.release(1)


def test_ddr_transfer_accounting():
    ddr = DDRChannel()
    t = ddr.read_seconds(4e9)
    assert t == pytest.approx(1.0 + ddr.latency)
    assert ddr.bytes_read == 4e9
    ddr.write_seconds(1000)
    assert ddr.bytes_written == 1000


# --- DMA -----------------------------------------------------------------------------

def test_dma_static_cost():
    dma = DMAEngine(DDRChannel())
    # 4 GB/s DDR bound dominates the 10 GB/s DMA peak.
    t = dma.transfer_seconds(4e9)
    assert t == pytest.approx(1.0 + dma.setup_s + dma.ddr.latency)


def test_dma_requires_bind_for_des():
    dma = DMAEngine(DDRChannel())
    with pytest.raises(AllocationError):
        dma.transfer(100)


def test_dma_channels_limit_concurrency():
    env = Environment()
    ddr = DDRChannel()
    dma = DMAEngine(ddr, channels=1)
    dma.bind(env)
    done = []

    def proc():
        a = dma.transfer(4_000_000)  # ~1 ms each
        b = dma.transfer(4_000_000)
        yield a & b
        done.append(env.now)

    env.process(proc())
    env.run()
    # Single channel: the two 1 ms transfers serialise (~2 ms).
    assert done[0] == pytest.approx(2e-3, rel=0.1)
    assert dma.transfers == 2
    assert dma.bytes_moved == 8_000_000


def test_dma_parallel_channels():
    env = Environment()
    dma = DMAEngine(DDRChannel(), channels=2)
    dma.bind(env)
    done = []

    def proc():
        yield dma.transfer(4_000_000) & dma.transfer(4_000_000)
        done.append(env.now)

    env.process(proc())
    env.run()
    assert done[0] == pytest.approx(1e-3, rel=0.1)


# --- SHAVE ------------------------------------------------------------------------------

def test_shave_peak_mac_rates():
    cfg = ShaveConfig()
    assert cfg.macs_per_cycle(fp16=True) == 8
    assert cfg.macs_per_cycle(fp16=False) == 4


def test_shave_kernel_cycles_compute_bound():
    s = ShaveProcessor(0)
    work = KernelWorkload(macs=8000, load_bytes=0, store_bytes=0,
                          setup_cycles=0)
    # 8000 MACs / 8 lanes = 1000 cycles at full efficiency.
    assert s.kernel_cycles(work) == 1000
    assert s.kernel_cycles(work, efficiency=0.5) == 2000


def test_shave_kernel_cycles_memory_bound():
    s = ShaveProcessor(0)
    # 16 bytes/cycle LSU; 32000 bytes -> 2000 cycles > tiny compute.
    work = KernelWorkload(macs=80, load_bytes=16000, store_bytes=16000,
                          setup_cycles=0)
    assert s.kernel_cycles(work) == 2000


def test_shave_vliw_overlap_takes_max():
    s = ShaveProcessor(0)
    work = KernelWorkload(macs=8000, load_bytes=8000, store_bytes=8000,
                          setup_cycles=100)
    # compute = 1000, memory = 1000 -> max 1000 + setup 100.
    assert s.kernel_cycles(work) == 1100


def test_shave_fp32_halves_throughput():
    s = ShaveProcessor(0)
    work = KernelWorkload(macs=8000, setup_cycles=0)
    assert s.kernel_cycles(work, fp16=False) == 2000


def test_shave_efficiency_validation():
    s = ShaveProcessor(0)
    work = KernelWorkload(macs=10)
    with pytest.raises(SimulationError):
        s.kernel_cycles(work, efficiency=0)
    with pytest.raises(SimulationError):
        s.kernel_cycles(work, efficiency=1.5)


def test_shave_utilization_accounting():
    s = ShaveProcessor(0)
    s.record_execution(500)
    s.record_execution(300)
    assert s.busy_cycles == 800
    assert s.kernels_run == 2
    assert s.utilization(1600) == pytest.approx(0.5)
    assert s.utilization(0) == 0.0


def test_workload_validation():
    with pytest.raises(SimulationError):
        KernelWorkload(macs=-1)


# --- SIPP ---------------------------------------------------------------------------------

def test_sipp_filter_inventory():
    # The kernels the paper names in §II-A must be present.
    for name in ("tone_map", "harris", "hog_edge", "luma_denoise",
                 "chroma_denoise"):
        assert name in SIPP_FILTERS
    assert SIPP_FILTERS["harris"].stencil == 5


def test_sipp_one_pixel_per_cycle():
    sipp = SIPPPipeline(freq_hz=600 * MHZ)
    # tone_map: 1 px/cycle -> 600e6 px in 1 s (+ setup).
    t = sipp.filter_seconds("tone_map", 600_000, 1000)
    assert t == pytest.approx(1.0, rel=0.01)


def test_sipp_unknown_filter():
    sipp = SIPPPipeline(freq_hz=1 * GHZ)
    with pytest.raises(SimulationError):
        sipp.filter_seconds("nope", 10, 10)


def test_sipp_serialises_same_filter():
    env = Environment()
    sipp = SIPPPipeline(freq_hz=600 * MHZ)
    sipp.bind(env)
    done = []

    def proc():
        a = sipp.run_filter("harris", 6000, 1000)  # 0.02 s each
        b = sipp.run_filter("harris", 6000, 1000)
        yield a & b
        done.append(env.now)

    env.process(proc())
    env.run()
    single = sipp.filter_seconds("harris", 6000, 1000)
    assert done[0] == pytest.approx(2 * single, rel=0.01)
    assert sipp.invocations["harris"] == 2


def test_sipp_distinct_filters_run_concurrently():
    env = Environment()
    sipp = SIPPPipeline(freq_hz=600 * MHZ)
    sipp.bind(env)
    done = []

    def proc():
        a = sipp.run_filter("harris", 6000, 1000)
        b = sipp.run_filter("tone_map", 6000, 1000)
        yield a & b
        done.append(env.now)

    env.process(proc())
    env.run()
    slowest = sipp.filter_seconds("harris", 6000, 1000)
    assert done[0] == pytest.approx(slowest, rel=0.01)


def test_sipp_requires_bind():
    sipp = SIPPPipeline(freq_hz=1 * GHZ)
    with pytest.raises(SimulationError):
        sipp.run_filter("harris", 10, 10)


# --- power islands ------------------------------------------------------------------------

def test_islands_count_is_twenty():
    env = Environment()
    p = PowerIslands(env)
    assert p.count == 20


def test_islands_peak_near_chip_tdp():
    env = Environment()
    p = PowerIslands(env)
    assert 0.85 <= p.peak_power() <= 0.95  # ~0.9 W Myriad 2 TDP


def test_island_gating():
    env = Environment()
    p = PowerIslands(env)
    base = p.current_power()
    p.power_on("shave0")
    assert p.current_power() > base
    p.power_off("shave0")
    assert p.current_power() == pytest.approx(base)


def test_always_on_cannot_gate():
    env = Environment()
    p = PowerIslands(env)
    with pytest.raises(PowerError):
        p.power_off("always_on")


def test_unknown_island():
    env = Environment()
    p = PowerIslands(env)
    with pytest.raises(PowerError):
        p.power_on("gpu")


def test_energy_integration():
    env = Environment()
    p = PowerIslands(env)

    def proc():
        p.power_on_all()
        yield env.timeout(10)
        p.power_off_all()
        yield env.timeout(10)

    env.process(proc())
    env.run()
    energy = p.energy_joules()
    # 10 s at ~0.9 W plus 10 s mostly gated.
    assert 9.0 < energy < 11.0


def test_power_on_all_off_all():
    env = Environment()
    p = PowerIslands(env)
    p.power_on_all()
    assert p.current_power() == pytest.approx(p.peak_power())
    p.power_off_all()
    assert p.is_on("always_on")
    assert not p.is_on("shave5")
