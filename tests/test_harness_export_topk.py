"""Tests for JSON result export and top-k error metrics."""

import numpy as np
import pytest

from repro.errors import FrameworkError, ReproError
from repro.harness.export import (
    comparison_to_dict,
    figure_from_dict,
    figure_to_dict,
    load_figure_json,
    save_figure_json,
)
from repro.harness.figures import FigureResult, Series
from repro.ncsw.results import InferenceRecord, RunResult


def _figure():
    result = FigureResult(
        figure_id="figX", title="t", xlabel="x", ylabel="y",
        paper_reference={"cpu": 44.0, "curve": (1.0, 2.0)},
        notes="n", scale="default")
    result.series.append(Series("a", ("s1", "s2"), (1.5, 2.5),
                                yerr=(0.1, 0.2)))
    result.series.append(Series("b", ("s1", "s2"), (3.0, 4.0)))
    return result


# --- export ---------------------------------------------------------------

def test_figure_dict_roundtrip():
    fig = _figure()
    data = figure_to_dict(fig)
    rebuilt = figure_from_dict(data)
    assert rebuilt.figure_id == fig.figure_id
    assert rebuilt.paper_reference == fig.paper_reference
    assert rebuilt.by_label("a").y == fig.by_label("a").y
    assert rebuilt.by_label("a").yerr == fig.by_label("a").yerr
    assert rebuilt.by_label("b").yerr is None


def test_figure_json_file_roundtrip(tmp_path):
    fig = _figure()
    path = tmp_path / "figX.json"
    save_figure_json(fig, path)
    rebuilt = load_figure_json(path)
    assert rebuilt.title == fig.title
    assert rebuilt.series[1].y == (3.0, 4.0)


def test_load_corrupt_json(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text("{not json")
    with pytest.raises(ReproError, match="corrupt"):
        load_figure_json(path)


def test_malformed_dict_rejected():
    with pytest.raises(ReproError, match="missing"):
        figure_from_dict({"figure_id": "x"})


def test_comparison_to_dict():
    rows = comparison_to_dict([("m", 2.0, 2.2)])
    assert rows[0]["metric"] == "m"
    assert rows[0]["ratio"] == pytest.approx(1.1)


def test_exported_real_figure_is_json_safe(tmp_path):
    from repro.harness import fig6b_normalized_scaling
    fig = fig6b_normalized_scaling(images=32)
    save_figure_json(fig, tmp_path / "fig6b.json")
    rebuilt = load_figure_json(tmp_path / "fig6b.json")
    np.testing.assert_allclose(rebuilt.by_label("vpu").y,
                               fig.by_label("vpu").y)


# --- top-k ---------------------------------------------------------------------

def _rec(label, topk, idx=0):
    return InferenceRecord(
        index=idx, image_id=idx + 1, label=label,
        predicted=topk[0] if topk else None,
        confidence=0.5, device="d", t_submit=0, t_complete=1,
        topk=tuple(topk) if topk else None)


def test_correct_topk():
    r = _rec(3, [1, 2, 3, 4, 5])
    assert r.correct is False       # top-1 misses
    assert r.correct_topk(5) is True
    assert r.correct_topk(2) is False
    assert _rec(None, [1]).correct_topk() is None
    assert _rec(3, None).correct_topk() is None


def test_run_result_topk_error():
    rr = RunResult(source="s", target="t", batch_size=1)
    rr.records = [
        _rec(0, [0, 1, 2, 3, 4], 0),   # top-1 hit
        _rec(4, [0, 1, 2, 3, 4], 1),   # top-5 hit only
        _rec(9, [0, 1, 2, 3, 4], 2),   # miss entirely
    ]
    assert rr.top1_error() == pytest.approx(2 / 3)
    assert rr.topk_error(5) == pytest.approx(1 / 3)
    assert rr.topk_error(1) == pytest.approx(2 / 3)


def test_topk_error_requires_topk_records():
    rr = RunResult(source="s", target="t", batch_size=1)
    rr.records = [_rec(1, None)]
    with pytest.raises(FrameworkError):
        rr.topk_error()


def test_topk_populated_end_to_end():
    """Both scheduler and host-target paths record top-5 sets."""
    from repro.data import ImageSynthesizer, Preprocessor
    from repro.ncsw import ImageFolder, IntelCPU, IntelVPU, NCSw
    from repro.data import ILSVRCValidation, SynsetVocabulary
    from repro.nn import get_model
    from repro.nn.weights import WeightStore
    from repro.vpu import compile_graph

    net = get_model("googlenet-micro")
    synth = ImageSynthesizer(num_classes=10, size=32, noise_sigma=20,
                             jitter_shift=0)
    pp = Preprocessor(input_size=32)
    WeightStore(seed=0).pretrain(
        net, lambda c: pp(synth.template(c)), num_classes=10)
    vocab = SynsetVocabulary(num_classes=10)
    ds = ILSVRCValidation(vocab, synth, num_images=8, subset_size=8)

    fw = NCSw()
    fw.add_source("v", ImageFolder(ds, 0, pp))
    fw.add_target("cpu", IntelCPU(net))
    fw.add_target("vpu", IntelVPU(graph=compile_graph(net),
                                  num_devices=2))
    for target in ("cpu", "vpu"):
        run = fw.run("v", target, batch_size=4)
        assert all(r.topk is not None and len(r.topk) == 5
                   for r in run.records)
        # top-5 error never exceeds top-1 error.
        assert run.topk_error(5) <= run.top1_error()
