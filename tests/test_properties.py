"""Property-based tests (hypothesis) on core invariants.

Each property targets a load-bearing invariant of a substrate the
whole stack sits on: kernel determinism, resource-capacity safety,
FIFO ordering, allocator accounting, scheduler balance, geometry
monotonicity and latency-model consistency.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import BatchLatencyModel
from repro.errors import AllocationError
from repro.sim import Environment, Resource, Store
from repro.tensors import conv_output_hw, pool_output_hw
from repro.vpu import CMXMemory


# --- DES determinism ----------------------------------------------------------

@given(st.lists(st.tuples(st.floats(0.01, 5.0), st.integers(1, 5)),
                min_size=1, max_size=8))
@settings(max_examples=50, deadline=None)
def test_property_sim_determinism(workers):
    """Identical process graphs produce identical traces, always."""

    def run():
        env = Environment()
        trace = []

        def worker(idx, period, count):
            for i in range(count):
                yield env.timeout(period)
                trace.append((round(env.now, 9), idx, i))

        for idx, (period, count) in enumerate(workers):
            env.process(worker(idx, period, count))
        env.run()
        return trace, env.now

    assert run() == run()


@given(st.lists(st.floats(0.01, 10.0), min_size=1, max_size=10))
@settings(max_examples=50, deadline=None)
def test_property_clock_ends_at_max_timeout(delays):
    env = Environment()
    for d in delays:
        env.timeout(d)
    env.run()
    assert env.now == pytest.approx(max(delays))


# --- resource safety --------------------------------------------------------------

@given(st.integers(1, 4), st.integers(1, 20),
       st.floats(0.01, 1.0))
@settings(max_examples=40, deadline=None)
def test_property_resource_capacity_never_exceeded(capacity, users,
                                                   hold):
    env = Environment()
    res = Resource(env, capacity=capacity)
    max_seen = [0]

    def user():
        with res.request() as req:
            yield req
            max_seen[0] = max(max_seen[0], res.count)
            yield env.timeout(hold)

    for _ in range(users):
        env.process(user())
    env.run()
    assert max_seen[0] <= capacity
    assert res.count == 0  # everything released


@given(st.lists(st.integers(0, 100), min_size=1, max_size=30))
@settings(max_examples=50, deadline=None)
def test_property_store_preserves_fifo(items):
    env = Environment()
    store = Store(env)
    received = []

    def producer():
        for item in items:
            yield store.put(item)

    def consumer():
        for _ in items:
            value = yield store.get()
            received.append(value)

    env.process(producer())
    env.process(consumer())
    env.run()
    assert received == items


# --- CMX allocator ---------------------------------------------------------------------

@given(st.lists(st.integers(1, 60_000), min_size=1, max_size=30))
@settings(max_examples=50, deadline=None)
def test_property_cmx_accounting_is_exact(sizes):
    cmx = CMXMemory()
    live = []
    total = 0
    for size in sizes:
        if size > cmx.free:
            with pytest.raises(AllocationError):
                cmx.alloc(size)
            if live:
                blocks, n = live.pop(0)
                cmx.free_blocks(blocks)
                total -= n
            continue
        blocks = cmx.alloc(size)
        live.append((blocks, size))
        total += size
        assert cmx.used == total
        assert sum(b.nbytes for b in blocks) == size
    for blocks, n in live:
        cmx.free_blocks(blocks)
        total -= n
        assert cmx.used == total
    assert cmx.used == 0


@given(st.integers(1, 16), st.integers(100, 2000))
@settings(max_examples=50, deadline=None)
def test_property_cmx_blocks_never_span_capacity(slices, slice_bytes):
    cmx = CMXMemory(slices=slices, slice_bytes=slice_bytes)
    blocks = cmx.alloc(cmx.capacity)  # exactly full
    assert cmx.free == 0
    for b in blocks:
        assert b.nbytes <= slice_bytes
    with pytest.raises(AllocationError):
        cmx.alloc(1)


# --- round-robin balance --------------------------------------------------------------------

@given(st.integers(1, 64), st.integers(1, 8))
@settings(max_examples=60, deadline=None)
def test_property_round_robin_balance(items, devices):
    """Static round-robin never skews by more than one item."""
    counts = [0] * devices
    for i in range(items):
        counts[i % devices] += 1
    assert max(counts) - min(counts) <= 1
    assert sum(counts) == items


# --- geometry monotonicity --------------------------------------------------------------------

@given(st.integers(3, 64), st.integers(1, 5), st.integers(1, 3),
       st.integers(0, 2))
@settings(max_examples=100, deadline=None)
def test_property_pool_ceil_geq_conv_floor(size, kernel, stride, pad):
    if pad >= kernel or size + 2 * pad < kernel:
        return
    ch, cw = conv_output_hw(size, size, kernel, stride, pad)
    ph, pw = pool_output_hw(size, size, kernel, stride, pad)
    assert ph >= ch and pw >= cw
    assert ph - ch <= 1  # ceil exceeds floor by at most one


@given(st.integers(8, 64), st.integers(1, 5), st.integers(1, 3))
@settings(max_examples=100, deadline=None)
def test_property_conv_output_monotone_in_input(size, kernel, stride):
    if size + 1 < kernel:
        return
    h1, _ = conv_output_hw(size, size, kernel, stride, 0)
    h2, _ = conv_output_hw(size + stride, size + stride, kernel,
                           stride, 0)
    assert h2 == h1 + 1  # one more stride step fits exactly


# --- latency model ------------------------------------------------------------------------------

@given(st.floats(1e-3, 1.0), st.floats(0.0, 1.0))
@settings(max_examples=100, deadline=None)
def test_property_latency_anchors_roundtrip(t1, frac):
    t8 = t1 * (0.2 + 0.8 * frac)  # t8 in [0.2*t1, t1]
    model = BatchLatencyModel.from_anchors(t1, t8)
    assert model.per_image_seconds(1) == pytest.approx(t1, rel=1e-9)
    assert model.per_image_seconds(8) == pytest.approx(t8, rel=1e-9)
    # Monotone non-increasing per-image latency.
    times = [model.per_image_seconds(b) for b in (1, 2, 4, 8, 16, 32)]
    assert all(a >= b - 1e-12 for a, b in zip(times, times[1:]))


@given(st.integers(1, 64))
@settings(max_examples=50, deadline=None)
def test_property_batch_seconds_consistent(batch):
    from repro.baselines import CPU_LATENCY
    per = CPU_LATENCY.per_image_seconds(batch)
    total = CPU_LATENCY.batch_seconds(batch)
    assert total == pytest.approx(per * batch)
    assert CPU_LATENCY.throughput(batch) == pytest.approx(1.0 / per)


# --- FP16 GEMM error bound ----------------------------------------------------------------------

@given(st.integers(2, 24), st.integers(123, 200))
@settings(max_examples=30, deadline=None)
def test_property_fp16_gemm_error_bounded(n, seed):
    from repro.mdk import gemm
    from repro.numerics import PrecisionPolicy
    rng = np.random.default_rng(seed)
    a = rng.uniform(-1, 1, size=(n, n)).astype(np.float32)
    b = rng.uniform(-1, 1, size=(n, n)).astype(np.float32)
    exact = gemm(a, b, PrecisionPolicy.fp32())
    approx = gemm(a, b, PrecisionPolicy.fp16())
    # Inputs rounded to fp16 (rel err <= 2^-11 each) and output rounded
    # once; with FP32 accumulation the absolute error is bounded by
    # ~3 * 2^-11 * n * max|a||b| — use a loose structural bound.
    bound = 3 * 2 ** -11 * n + 2 ** -10
    assert np.max(np.abs(approx - exact)) <= bound
