"""Smoke tests: every example script runs to completion.

Examples are the first thing a new user touches; this module keeps
them from rotting.  Each runs in a subprocess exactly as a user would
invoke it (the FP16 study at smoke scale to keep the suite fast).
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

CASES = [
    ("quickstart.py", {}, "per-layer timing"),
    ("multi_vpu_throughput.py", {}, "Fig. 6b"),
    ("power_projection.py", {}, "island-model average chip power"),
    ("mpi_stream_pipeline.py", {}, "round-robin balance"),
    ("mdk_gemm.py", {}, "Gflops/W"),
    ("edge_streaming.py", {}, "queue-depth trade-off"),
    ("fp16_error_study.py", {"REPRO_SCALE": "smoke"},
     "Rounding drill-down"),
]


@pytest.mark.parametrize("script,env_extra,marker",
                         CASES, ids=[c[0] for c in CASES])
def test_example_runs(script, env_extra, marker):
    env = dict(os.environ, **env_extra)
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True, text=True, timeout=300, env=env)
    assert proc.returncode == 0, (
        f"{script} failed:\n{proc.stderr[-2000:]}")
    assert marker in proc.stdout, (
        f"{script}: expected {marker!r} in output")


def test_examples_directory_is_complete():
    scripts = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    assert scripts == {c[0] for c in CASES}, (
        "examples changed — update the smoke-test inventory and "
        "examples/README.md")
