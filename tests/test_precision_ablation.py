"""Tests for filtered precision policies and the prefix-drift curve."""

import numpy as np
import pytest

from repro.errors import ReproError
from repro.harness.precision_ablation import (
    prefix_drift_curve,
    render_drift_curve,
)
from repro.nn import get_model
from repro.nn.weights import initialize_network
from repro.numerics import PrecisionPolicy


@pytest.fixture(scope="module")
def micro_net():
    net = get_model("googlenet-micro")
    initialize_network(net)
    return net


def test_policy_filter_semantics():
    full = PrecisionPolicy.fp16()
    assert full.applies_to("anything")
    partial = PrecisionPolicy.fp16_only({"conv1"})
    assert partial.applies_to("conv1")
    assert not partial.applies_to("conv2")
    assert partial.precision.value == "fp16"


def test_empty_filter_equals_fp32(micro_net):
    x = np.random.default_rng(0).normal(
        size=(2, 3, 32, 32)).astype(np.float32) * 0.1
    ref = micro_net.forward(x, PrecisionPolicy.fp32())
    none_quantized = micro_net.forward(
        x, PrecisionPolicy.fp16_only(frozenset()))
    np.testing.assert_array_equal(ref, none_quantized)


def test_full_filter_equals_plain_fp16_except_input(micro_net):
    """Selecting every layer matches full FP16 up to the host-side
    input conversion (which filtered policies skip)."""
    x = np.random.default_rng(1).normal(
        size=(1, 3, 32, 32)).astype(np.float32) * 0.1
    all_names = frozenset(l.name for l in micro_net.layers)
    filtered = micro_net.forward(
        x, PrecisionPolicy.fp16_only(all_names))
    full = micro_net.forward(x, PrecisionPolicy.fp16())
    np.testing.assert_allclose(filtered, full, atol=2e-3)


def test_partial_drift_between_extremes(micro_net):
    x = np.random.default_rng(2).normal(
        size=(4, 3, 32, 32)).astype(np.float32) * 0.1
    names = [l.name for l in micro_net.layers]
    ref = micro_net.forward(x, PrecisionPolicy.fp32())

    def drift(policy):
        return float(np.mean(np.abs(
            micro_net.forward(x, policy) - ref)))

    half = drift(PrecisionPolicy.fp16_only(
        frozenset(names[:len(names) // 2])))
    full = drift(PrecisionPolicy.fp16_only(frozenset(names)))
    assert 0 < half
    assert half <= full * 1.5  # partial quantisation doesn't blow up


def test_prefix_curve_monotone_trend():
    points = prefix_drift_curve(scale="smoke", num_images=24)
    assert points[0].mean_conf_drift == 0.0  # 0% prefix == FP32
    assert points[0].layers_quantized == 0
    assert points[-1].fraction == 1.0
    # Drift grows with prefix length (allow small non-monotonic
    # wobble from rounding interactions).
    assert points[-1].mean_conf_drift > points[1].mean_conf_drift / 2
    assert points[-1].mean_conf_drift > 0
    # Full-network drift stays in the Fig. 7b ballpark.
    assert points[-1].mean_conf_drift < 0.05
    # Few if any top-1 flips (the paper's negligible-impact result).
    assert points[-1].top1_flips <= 24 * 0.15


def test_prefix_curve_validation():
    with pytest.raises(ReproError):
        prefix_drift_curve(fractions=(0.0, 2.0))


def test_render_drift_curve():
    points = prefix_drift_curve(scale="smoke", num_images=8,
                                fractions=(0.0, 1.0))
    text = render_drift_curve(points)
    assert "prefix" in text and "conf drift" in text
    assert len(text.splitlines()) == 4
