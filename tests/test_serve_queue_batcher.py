"""Tests for the admission queue and the dynamic batcher.

These drive the serving building blocks directly on a bare
:class:`~repro.sim.core.Environment` with a stub target, so each case
pins one mechanism: admission policy, deadline enforcement, window
formation, dispatch backpressure.
"""

import pytest

from repro.errors import FrameworkError
from repro.ncsw.targets import TargetDevice
from repro.serve import (
    BLOCK,
    COMPLETED,
    REJECT_NEWEST,
    REJECTED,
    SHED,
    SHED_OLDEST,
    TIMED_OUT,
    AdmissionQueue,
    Backend,
    DynamicBatcher,
    Request,
    Router,
)
from repro.sim import Environment


class StubTarget(TargetDevice):
    """Fixed-latency target that records every batch it serves."""

    name = "stub"

    def __init__(self, service_s=0.01, preferred=4, env=None):
        self.service_s = service_s
        self.preferred = preferred
        self.batches = []
        self._env = env

    def prepare(self, env):
        self._env = env
        return env.timeout(0.0)

    @property
    def preferred_batch_size(self):
        return self.preferred

    def process_batch(self, items):
        def proc():
            yield self._env.timeout(self.service_s)
            self.batches.append([i.index for i in items])
            return [type("Rec", (), {"index": i.index})()
                    for i in items]

        return self._env.process(proc())


def _request(i, t=0.0, deadline=None):
    return Request(request_id=i, arrival_time=t, deadline_at=deadline)


# -- admission queue --------------------------------------------------------

def test_queue_validation():
    env = Environment()
    with pytest.raises(FrameworkError):
        AdmissionQueue(env, depth=0)
    with pytest.raises(FrameworkError):
        AdmissionQueue(env, policy="drop-everything")


def test_reject_newest_turns_away_at_the_door():
    env = Environment()
    dropped = []
    q = AdmissionQueue(env, depth=2, policy=REJECT_NEWEST,
                       on_drop=dropped.append)

    def scenario():
        yield env.timeout(0)
        assert q.offer(_request(0)) is not None
        assert q.offer(_request(1)) is not None
        assert q.full
        late = _request(2)
        assert q.offer(late) is None
        assert late.status == REJECTED
        assert late.admitted_at is None  # never consumed queue time

    env.run(until=env.process(scenario()))
    assert q.rejected_count == 1
    assert q.shed_count == 0
    assert [r.request_id for r in dropped] == [2]
    assert len(q) == 2


def test_shed_oldest_evicts_head_for_newcomer():
    env = Environment()
    dropped = []
    q = AdmissionQueue(env, depth=2, policy=SHED_OLDEST,
                       on_drop=dropped.append)

    def scenario():
        yield env.timeout(0)
        first = _request(0)
        q.offer(first)
        q.offer(_request(1))
        newcomer = _request(2)
        assert q.offer(newcomer) is not None
        assert first.status == SHED
        assert newcomer.admitted_at == env.now
        # Queue now holds 1 and 2, in order.
        a = yield q.get()
        b = yield q.get()
        assert [a.request_id, b.request_id] == [1, 2]

    env.run(until=env.process(scenario()))
    assert q.shed_count == 1
    assert [r.request_id for r in dropped] == [0]


def test_block_policy_backpressures_the_put():
    env = Environment()
    q = AdmissionQueue(env, depth=1, policy=BLOCK)
    blocked = _request(1)

    def producer():
        yield env.timeout(0)
        q.offer(_request(0))
        put = q.offer(blocked)  # queue full: put pends
        assert not put.triggered
        assert blocked.admitted_at is None
        yield put
        # Admission stamped when the put finally landed, not at offer.
        assert blocked.admitted_at == pytest.approx(0.5)

    def consumer():
        yield env.timeout(0.5)
        req = yield q.get()
        assert req.request_id == 0

    env.process(producer())
    env.process(consumer())
    env.run()


def test_unbounded_queue_never_fires_policy():
    env = Environment()
    q = AdmissionQueue(env, depth=None, policy=REJECT_NEWEST)

    def scenario():
        yield env.timeout(0)
        for i in range(100):
            assert q.offer(_request(i)) is not None
        assert not q.full

    env.run(until=env.process(scenario()))
    assert q.rejected_count == 0
    assert len(q) == 100


def test_close_appends_poison_pill_after_work():
    env = Environment()
    q = AdmissionQueue(env)

    def scenario():
        yield env.timeout(0)
        q.offer(_request(0))
        q.close()
        assert len(q) == 1  # pill is not a queued request
        first = yield q.get()
        pill = yield q.get()
        assert first.request_id == 0
        assert pill is None

    env.run(until=env.process(scenario()))


# -- dynamic batcher --------------------------------------------------------

def _serving_rig(env, *, depth=None, policy=REJECT_NEWEST,
                 max_batch=None, max_wait=0.002, service_s=0.01,
                 preferred=4):
    """queue + single-stub-backend router + batcher, already started."""
    completed = []
    target = StubTarget(service_s=service_s, preferred=preferred,
                        env=env)
    queue = AdmissionQueue(env, depth=depth, policy=policy)
    backend = Backend(env, "stub", target)
    router = Router(env, [backend],
                    on_complete=completed.extend)
    batcher = DynamicBatcher(env, queue, router,
                             max_batch_size=max_batch,
                             max_wait_s=max_wait)
    router.start()
    batcher.run()
    return queue, router, batcher, target, completed


def test_batcher_validation():
    env = Environment()
    queue = AdmissionQueue(env)
    router = Router(env, [Backend(env, "s", StubTarget(env=env))])
    with pytest.raises(FrameworkError):
        DynamicBatcher(env, queue, router, max_batch_size=0)
    with pytest.raises(FrameworkError):
        DynamicBatcher(env, queue, router, max_wait_s=-1.0)


def test_idle_request_dispatches_alone_after_window():
    env = Environment()
    queue, router, batcher, target, completed = _serving_rig(
        env, max_wait=0.005)

    def scenario():
        yield env.timeout(0)
        queue.offer(_request(0))
        yield env.timeout(0.1)
        queue.close()

    env.run(until=env.process(scenario()))
    assert target.batches == [[0]]
    assert len(completed) == 1
    assert completed[0].status == COMPLETED
    # Dispatch waited out the window measured from the first request.
    assert completed[0].dispatched_at == pytest.approx(0.005)


def test_backlog_fills_batches_to_the_backend_hint():
    env = Environment()
    queue, router, batcher, target, completed = _serving_rig(
        env, preferred=4)

    def scenario():
        yield env.timeout(0)
        for i in range(8):
            queue.offer(_request(i))
        yield env.timeout(1.0)
        queue.close()

    env.run(until=env.process(scenario()))
    assert target.batches == [[0, 1, 2, 3], [4, 5, 6, 7]]
    assert all(r.batch_size == 4 for r in completed)
    assert batcher.batches_formed == 2


def test_explicit_max_batch_overrides_backend_hint():
    env = Environment()
    queue, router, batcher, target, completed = _serving_rig(
        env, max_batch=2, preferred=4)

    def scenario():
        yield env.timeout(0)
        for i in range(4):
            queue.offer(_request(i))
        yield env.timeout(1.0)
        queue.close()

    env.run(until=env.process(scenario()))
    assert target.batches == [[0, 1], [2, 3]]


def test_expired_deadline_resolves_timed_out_at_dequeue():
    env = Environment()
    timed_out = []
    target = StubTarget(env=env)
    queue = AdmissionQueue(env)
    router = Router(env, [Backend(env, "stub", target)])
    batcher = DynamicBatcher(env, queue, router,
                             on_timeout=timed_out.append)
    router.start()

    def scenario():
        yield env.timeout(0)
        # Already expired at dequeue time: the batcher starts late.
        queue.offer(_request(0, deadline=0.01))
        queue.offer(_request(1, deadline=10.0))
        yield env.timeout(0.05)
        batcher.run()
        yield env.timeout(0.5)
        queue.close()

    env.run(until=env.process(scenario()))
    assert batcher.timed_out_count == 1
    assert [r.request_id for r in timed_out] == [0]
    assert timed_out[0].status == TIMED_OUT
    # The live request still went through, never sharing a batch slot
    # with the expired one.
    assert target.batches == [[1]]


def test_dispatch_backpressure_keeps_backlog_in_admission_queue():
    # A slow backend with one dispatch slot: the batcher stalls on
    # dispatch, so overload accumulates where the policy can see it.
    env = Environment()
    queue, router, batcher, target, completed = _serving_rig(
        env, depth=2, policy=REJECT_NEWEST, service_s=1.0,
        preferred=1)

    def scenario():
        for i in range(8):
            queue.offer(_request(i, t=env.now))
            yield env.timeout(0.01)
        yield env.timeout(10.0)
        queue.close()

    env.run(until=env.process(scenario()))
    # One executing + one in the dispatch slot + one in the batcher's
    # hand + two queued; the rest turned away by the admission policy
    # rather than hidden in an unbounded buffer.
    assert queue.rejected_count == 3
    assert len(completed) == 5


def test_pill_inside_window_flushes_partial_batch():
    env = Environment()
    queue, router, batcher, target, completed = _serving_rig(
        env, preferred=8, max_wait=10.0)

    def scenario():
        yield env.timeout(0)
        queue.offer(_request(0))
        queue.offer(_request(1))
        queue.close()  # pill lands inside the open window
        yield env.timeout(1.0)

    env.run(until=env.process(scenario()))
    assert target.batches == [[0, 1]]
    assert len(completed) == 2
