"""Tests for grouped convolutions and the AlexNet topology."""

import numpy as np
import pytest

from repro.errors import GraphError, ShapeError
from repro.nn import AlexNetConfig, Convolution, build_alexnet, get_model
from repro.nn.alexnet import alexnet_feature_blob
from repro.nn.weights import WeightStore, initialize_network
from repro.nn.zoo import model_entry
from repro.tensors import BlobShape
from repro.tensors.im2col import conv2d_gemm


# --- grouped convolution -----------------------------------------------------

def test_group_validation():
    with pytest.raises(ShapeError):
        Convolution("c", "a", "b", num_output=4, kernel_size=3,
                    in_channels=6, group=4)  # 4 does not divide 6
    with pytest.raises(ShapeError):
        Convolution("c", "a", "b", num_output=5, kernel_size=3,
                    in_channels=4, group=2)  # 2 does not divide 5
    with pytest.raises(ValueError):
        Convolution("c", "a", "b", num_output=4, kernel_size=3,
                    in_channels=4, group=0)


def test_group_weight_shape():
    conv = Convolution("c", "a", "b", num_output=8, kernel_size=3,
                       in_channels=4, group=2)
    assert conv.params["weight"].shape == (8, 2, 3, 3)


def test_grouped_forward_matches_manual_split():
    rng = np.random.default_rng(0)
    conv = Convolution("c", "a", "b", num_output=4, kernel_size=3,
                       in_channels=4, pad=1, group=2)
    w = rng.normal(size=(4, 2, 3, 3)).astype(np.float32)
    b = rng.normal(size=4).astype(np.float32)
    conv.set_params(weight=w, bias=b)
    x = rng.normal(size=(2, 4, 6, 6)).astype(np.float32)
    out = conv.forward([x])[0]
    # Manual: group 0 = channels 0-1 -> outputs 0-1, group 1 likewise.
    g0 = conv2d_gemm(x[:, :2], w[:2], b[:2], 1, 1)
    g1 = conv2d_gemm(x[:, 2:], w[2:], b[2:], 1, 1)
    np.testing.assert_allclose(out, np.concatenate([g0, g1], axis=1),
                               rtol=1e-5)


def test_grouped_macs_halved():
    dense = Convolution("d", "a", "b", num_output=4, kernel_size=3,
                        in_channels=4, pad=1)
    grouped = Convolution("g", "a", "b", num_output=4, kernel_size=3,
                          in_channels=4, pad=1, group=2)
    shape = BlobShape(1, 4, 8, 8)
    assert grouped.macs([shape]) == dense.macs([shape]) // 2


def test_channel_mismatch_caught_in_shapes():
    conv = Convolution("c", "a", "b", num_output=4, kernel_size=3,
                       in_channels=4, pad=1)
    with pytest.raises(ShapeError):
        conv.output_shapes([BlobShape(1, 3, 8, 8)])


# --- AlexNet topology --------------------------------------------------------------

def test_alexnet_matches_published_structure():
    net = get_model("alexnet")
    shapes = net.infer_shapes()
    assert shapes["conv1"].as_tuple() == (1, 96, 55, 55)
    assert shapes["pool1"].as_tuple() == (1, 96, 27, 27)
    assert shapes["conv2"].as_tuple() == (1, 256, 27, 27)
    assert shapes["pool2"].as_tuple() == (1, 256, 13, 13)
    assert shapes["conv5"].as_tuple() == (1, 256, 13, 13)
    assert shapes["pool5"].as_tuple() == (1, 256, 6, 6)
    assert shapes["fc6"].as_tuple() == (1, 4096, 1, 1)
    assert shapes["prob"].as_tuple() == (1, 1000, 1, 1)


def test_alexnet_param_and_mac_counts():
    net = get_model("alexnet")
    params = sum(l.param_count() for l in net.layers)
    assert params == pytest.approx(61e6, rel=0.01)   # 60.97M
    assert net.total_macs(1) == pytest.approx(720e6, rel=0.05)


def test_alexnet_grouped_layers():
    net = get_model("alexnet")
    assert net.layer("conv2").group == 2
    assert net.layer("conv4").group == 2
    assert net.layer("conv5").group == 2
    assert net.layer("conv1").group == 1


def test_alexnet_config_validation():
    with pytest.raises(GraphError):
        AlexNetConfig(input_size=32)
    with pytest.raises(GraphError):
        AlexNetConfig(num_classes=1)
    with pytest.raises(GraphError):
        AlexNetConfig(width=0)


def test_alexnet_width_keeps_group_divisibility():
    cfg = AlexNetConfig(num_classes=10, input_size=95, width=0.3)
    net = build_alexnet(cfg)
    assert net.layer("conv2").num_output % 2 == 0
    net.validate()


def test_alexnet_mini_forward():
    net = get_model("alexnet-mini")
    initialize_network(net)
    x = np.random.default_rng(0).normal(
        size=(2, 3, 79, 79)).astype(np.float32) * 0.1
    out = net.forward(x)
    assert out.shape == (2, 50, 1, 1)
    np.testing.assert_allclose(out.sum(axis=1), 1.0, rtol=1e-4)


def test_alexnet_pretrain_classifies_templates():
    from repro.data import ImageSynthesizer, Preprocessor
    entry = model_entry("alexnet-mini")
    net = entry.build()
    synth = ImageSynthesizer(num_classes=50, size=96, noise_sigma=0)
    pp = Preprocessor(input_size=79)
    WeightStore(seed=0).pretrain(
        net, lambda c: pp(synth.template(c)), num_classes=50,
        classifier_layer=entry.classifier_layer,
        feature_blob=entry.feature_blob)
    x = np.stack([pp(synth.template(c)) for c in range(50)])
    labels, confs = net.predict(x)
    assert np.array_equal(labels, np.arange(50))


def test_alexnet_compiles_for_vpu():
    """AlexNet's fc6 stresses the weight-streaming tiling path."""
    from repro.vpu import compile_graph
    net = get_model("alexnet")
    g = compile_graph(net)
    fc6 = next(l for l in g.layers if l.name == "fc6")
    assert not fc6.tile_plan.fits_cmx   # 37M fp16 params >> 2 MB CMX
    assert fc6.tile_plan.num_tiles > 10
    # AlexNet is lighter than GoogLeNet in MACs but heavier in DDR
    # traffic; single-stick latency lands in the tens of ms.
    assert 0.02 < g.inference_seconds < 0.12


def test_alexnet_feature_blob_name():
    assert alexnet_feature_blob() == "fc7"
    net = get_model("alexnet-mini")
    assert "fc7" in net.infer_shapes()
