"""Unit tests for the wall-clock perf harness and its CI gate.

Everything here is logic-only — no timing assertions, so the suite
stays robust on loaded CI machines.  The wall-clock speedup floors
live in ``benchmarks/test_bench_perf.py``, outside the tier-1 run.
"""

import json

import pytest

from repro.harness import perf
from repro.harness.perf import BenchSample


def _sample(name, value, metric="u/s"):
    return BenchSample(name=name, metric=metric, value=value,
                       wall_seconds=1.0, repeats=1)


def _doc(values, calibration=1000.0, mode="smoke"):
    return {
        "schema": perf.BENCH_SCHEMA,
        "calibration_ops_per_sec": calibration,
        "modes": {mode: {name: {"name": name, "metric": "u/s",
                                "value": v, "wall_seconds": 1.0,
                                "repeats": 1, "detail": {}}
                         for name, v in values.items()}},
    }


def test_run_suite_rejects_unknown_mode():
    with pytest.raises(ValueError, match="unknown perf mode"):
        perf.run_suite("huge")


def test_bench_sim_sample_shape():
    sample = perf.bench_sim(n_items=100, repeats=1)
    assert sample.name == "sim_events_per_sec"
    assert sample.value > 0
    assert sample.wall_seconds > 0
    assert sample.detail["items"] == 100


def test_calibrate_host_positive():
    assert perf.calibrate_host(ops=50_000) > 0


def test_write_and_load_roundtrip(tmp_path):
    samples = {"w": _sample("w", 123.0)}
    path = perf.write_bench(tmp_path / "b.json", {"smoke": samples})
    doc = perf.load_bench(path)
    assert doc["schema"] == perf.BENCH_SCHEMA
    assert doc["modes"]["smoke"]["w"]["value"] == 123.0
    assert doc["calibration_ops_per_sec"] > 0


def test_write_bench_embeds_baseline_and_speedups(tmp_path):
    baseline = _doc({"w": 100.0}, mode="full")
    path = perf.write_bench(
        tmp_path / "b.json",
        {"full": {"w": _sample("w", 250.0)}}, baseline=baseline)
    doc = json.loads(path.read_text())
    assert doc["speedup_vs_baseline"]["w"] == pytest.approx(2.5)
    assert doc["baseline"]["modes"]["full"]["w"]["value"] == 100.0


def test_load_bench_rejects_wrong_schema(tmp_path):
    p = tmp_path / "bad.json"
    p.write_text(json.dumps({"schema": 999, "modes": {}}))
    with pytest.raises(ValueError, match="unsupported BENCH schema"):
        perf.load_bench(p)


def test_check_regression_passes_within_tolerance(monkeypatch):
    committed = _doc({"w": 100.0}, calibration=1000.0)
    monkeypatch.setattr(perf, "calibrate_host", lambda: 1000.0)
    current = {"w": _sample("w", 90.0)}
    assert perf.check_regression(current, committed,
                                 tolerance=0.25) == []


def test_check_regression_fails_beyond_tolerance(monkeypatch):
    committed = _doc({"w": 100.0}, calibration=1000.0)
    monkeypatch.setattr(perf, "calibrate_host", lambda: 1000.0)
    current = {"w": _sample("w", 50.0)}
    failures = perf.check_regression(current, committed,
                                     tolerance=0.25)
    assert len(failures) == 1 and "w:" in failures[0]


def test_check_regression_rescales_for_machine_speed(monkeypatch):
    # Committed on a machine 2x faster: half the committed rate is
    # exactly on par here, so it must pass even at zero tolerance.
    committed = _doc({"w": 100.0}, calibration=2000.0)
    monkeypatch.setattr(perf, "calibrate_host", lambda: 1000.0)
    current = {"w": _sample("w", 50.0)}
    assert perf.check_regression(current, committed,
                                 tolerance=0.0) == []


def test_check_regression_flags_missing_workload(monkeypatch):
    committed = _doc({"w": 100.0, "v": 10.0}, calibration=1000.0)
    monkeypatch.setattr(perf, "calibrate_host", lambda: 1000.0)
    failures = perf.check_regression({"w": _sample("w", 100.0)},
                                     committed)
    assert any("missing" in f for f in failures)


def test_check_regression_validates_inputs():
    committed = _doc({"w": 100.0})
    with pytest.raises(ValueError, match="tolerance"):
        perf.check_regression({}, committed, tolerance=1.5)
    with pytest.raises(ValueError, match="no 'full' mode"):
        perf.check_regression({}, committed, mode="full")


def test_render_perf_table_lists_workloads_and_speedup():
    samples = {"w": _sample("w", 42.0)}
    text = perf.render_perf_table(
        samples, {"smoke": {"w": {"value": 21.0}}}, mode="smoke")
    assert "w" in text and "42.0" in text and "2.00x" in text


def test_committed_bench_file_is_current():
    """The committed BENCH_PR9.json must parse, carry both modes and
    record this PR's claim: the event wheel beats the heap by >=1.3x
    on the matched serve-shaped workload, and the fluid day exists."""
    from pathlib import Path

    path = Path(__file__).resolve().parents[1] / perf.BENCH_FILENAME
    doc = perf.load_bench(path)
    assert set(doc["modes"]) == {"full", "smoke"}
    for mode in ("full", "smoke"):
        wheel = doc["modes"][mode]["sim_wheel_events_per_sec"]
        assert wheel["detail"]["scheduler"] == "wheel"
        assert wheel["detail"]["speedup_vs_heap"] >= 1.3
        fluid = doc["modes"][mode]["fluid_day_s"]
        assert fluid["value"] > 0
        assert fluid["detail"]["day_wall_s"] > 0


def test_bench_sim_wheel_sample_shape():
    sample = perf.bench_sim_wheel(sessions=200, cycles=1, repeats=1)
    assert sample.name == "sim_wheel_events_per_sec"
    assert sample.value > 0
    assert sample.detail["scheduler"] == "wheel"
    assert sample.detail["heap_events_per_sec"] > 0
    assert sample.detail["speedup_vs_heap"] > 0


def test_bench_fluid_sample_shape():
    sample = perf.bench_fluid(requests=20_000, repeats=1)
    assert sample.name == "fluid_day_s"
    assert sample.metric == "day/s"
    assert sample.value > 0
    assert sample.detail["day_wall_s"] > 0
    assert sample.detail["requests"] == 20_000


def test_cli_perf_run_parses():
    from repro.harness.cli import build_parser

    args = build_parser().parse_args(
        ["perf-run", "--smoke", "--check", "BENCH_PR9.json",
         "--tolerance", "0.3"])
    assert args.command == "perf-run"
    assert args.smoke and args.tolerance == 0.3
    assert args.check == "BENCH_PR9.json"
