"""Tests for the compiler's conv+ReLU fusion pass."""

import numpy as np
import pytest

from repro.nn import Convolution, Network, ReLU, Softmax, build_googlenet
from repro.nn.weights import initialize_network
from repro.tensors import BlobShape
from repro.vpu import compile_graph
from repro.vpu.compiler.compile import _fusable_relu_names


@pytest.fixture(scope="module")
def paper_net():
    return build_googlenet()


def test_googlenet_fuses_all_57_relus(paper_net):
    fusable = _fusable_relu_names(paper_net)
    # Every conv in the deploy topology has an in-place ReLU.
    assert len(fusable) == 57
    g = compile_graph(paper_net, fuse_relu=True)
    assert len(g.layers) == 142 - 57
    assert sum(1 for l in g.layers if l.fused) == 57


def test_fusion_reduces_inference_time(paper_net):
    fused = compile_graph(paper_net, fuse_relu=True)
    unfused = compile_graph(paper_net, fuse_relu=False)
    assert fused.inference_seconds < unfused.inference_seconds
    # Each fused ReLU saves at least its dispatch slot.
    saved = unfused.inference_seconds - fused.inference_seconds
    assert saved > 57 * 18e-6 * 0.9


def test_fused_schedule_names_absorbed_relu(paper_net):
    g = compile_graph(paper_net, fuse_relu=True)
    conv1 = next(l for l in g.layers if l.name == "conv1/7x7_s2")
    assert conv1.fused == "relu_conv1/7x7_s2"


def test_leaky_relu_not_fused():
    net = Network("n", "data", BlobShape(1, 2, 8, 8))
    net.add(Convolution("conv", "data", "conv", num_output=2,
                        kernel_size=3, in_channels=2, pad=1))
    net.add(ReLU("lrelu", "conv", "conv", negative_slope=0.1))
    initialize_network(net)
    assert _fusable_relu_names(net) == {}
    g = compile_graph(net)
    assert len(g.layers) == 2


def test_non_inplace_relu_not_fused():
    net = Network("n", "data", BlobShape(1, 2, 8, 8))
    net.add(Convolution("conv", "data", "conv", num_output=2,
                        kernel_size=3, in_channels=2, pad=1))
    net.add(ReLU("relu", "conv", "relu_out"))  # separate top blob
    initialize_network(net)
    assert _fusable_relu_names(net) == {}


def test_relu_after_non_conv_not_fused():
    net = Network("n", "data", BlobShape(1, 2, 8, 8))
    net.add(Softmax("sm", "data", "sm"))
    net.add(ReLU("relu", "sm", "sm"))
    assert _fusable_relu_names(net) == {}


def test_fusion_preserves_functional_output():
    """Fusion is a scheduling decision only; the functional path is
    untouched, so device results are identical either way."""
    from repro.ncs import NCAPI, USBTopology
    from repro.sim import Environment
    from repro.nn import get_model

    net = get_model("googlenet-micro")
    initialize_network(net)
    x = np.random.default_rng(0).normal(
        size=(3, 32, 32)).astype(np.float32) * 0.1

    def run(fuse):
        env = Environment()
        topo = USBTopology(env)
        topo.attach_device("ncs0")
        api = NCAPI(env, topo, functional=True)
        graph = compile_graph(net, fuse_relu=fuse)

        def scenario():
            dev = yield api.open_device(0)
            h = yield dev.allocate_compiled(graph)
            yield h.load_tensor(x)
            result, _ = yield h.get_result()
            return result

        return env.run(until=env.process(scenario()))

    np.testing.assert_array_equal(run(True), run(False))
