"""Tests for the testbed-noise (jitter) model and batch compilation."""

import numpy as np
import pytest

from repro.errors import CompileError, SimulationError
from repro.harness import fig6a_throughput_per_subset
from repro.ncsw import IntelVPU, NCSw, SyntheticSource
from repro.nn import get_model
from repro.nn.weights import initialize_network
from repro.baselines import CPUDevice
from repro.sim import Environment
from repro.vpu import compile_graph


@pytest.fixture(scope="module")
def micro_net():
    net = get_model("googlenet-micro")
    initialize_network(net)
    return net


# --- jitter ---------------------------------------------------------------

def test_jitter_validation(micro_net):
    env = Environment()
    with pytest.raises(SimulationError):
        CPUDevice(env, micro_net, jitter=0.6)
    with pytest.raises(SimulationError):
        CPUDevice(env, micro_net, jitter=-0.1)


def test_zero_jitter_is_deterministic(micro_net):
    def run():
        env = Environment()
        dev = CPUDevice(env, micro_net, functional=False)
        env.run(until=dev.run_batch(None, batch=4))
        return env.now

    assert run() == run()


def test_jitter_spreads_batch_times(micro_net):
    env = Environment()
    dev = CPUDevice(env, micro_net, functional=False, jitter=0.05)
    times = []

    def proc():
        for _ in range(20):
            t0 = env.now
            yield dev.run_batch(None, batch=4)
            times.append(env.now - t0)

    env.run(until=env.process(proc()))
    assert np.std(times) > 0
    # Mean stays near the deterministic value.
    base = dev.batch_seconds(4)
    assert np.mean(times) == pytest.approx(base, rel=0.1)


def test_vpu_jitter_spreads_inference_times(micro_net):
    graph = compile_graph(micro_net)
    fw = NCSw()
    fw.add_source("s", SyntheticSource(24))
    fw.add_target("vpu", IntelVPU(graph=graph, num_devices=2,
                                  functional=False, jitter=0.05))
    run = fw.run("s", "vpu", batch_size=2)
    stats = run.latency_stats()
    assert stats.std > 0
    # Submit-to-complete latency includes FIFO queueing behind the
    # double-buffered previous item, so it sits between 1x and ~2.5x
    # the raw inference time.
    assert (graph.inference_seconds * 0.9 < stats.mean
            < graph.inference_seconds * 2.5)


def test_fig6a_with_jitter_has_error_bars():
    result = fig6a_throughput_per_subset(images_per_subset=24,
                                         jitter=0.03)
    vpu = result.by_label("vpu")
    assert any(e > 0 for e in vpu.yerr)
    # Mean throughput stays near the paper's number.
    assert np.mean(vpu.y) == pytest.approx(77.2, rel=0.1)
    assert "jitter" in result.notes


def test_fig6a_default_stays_deterministic():
    a = fig6a_throughput_per_subset(images_per_subset=16)
    b = fig6a_throughput_per_subset(images_per_subset=16)
    assert a.by_label("vpu").y == b.by_label("vpu").y


# --- batch compilation ---------------------------------------------------------

def test_batch_compile_shapes(micro_net):
    g = compile_graph(micro_net, batch=4)
    assert g.input_shape.n == 4
    assert g.output_shape.n == 4
    assert g.input_tensor_bytes == 4 * 3 * 32 * 32 * 2


def test_batch_compile_validation(micro_net):
    with pytest.raises(CompileError):
        compile_graph(micro_net, batch=0)


def test_batch_compile_sublinear_total_time():
    """A batch-8 graph takes less than 8x the batch-1 graph (dispatch
    amortisation + better SHAVE utilisation) but more than 4x (the
    compute genuinely scales) — the §III trade-off."""
    from repro.nn import build_googlenet
    net = build_googlenet()
    t1 = compile_graph(net, batch=1).inference_seconds
    t8 = compile_graph(net, batch=8).inference_seconds
    assert 4 * t1 < t8 < 8 * t1


def test_batch_graph_runs_on_device(micro_net):
    from repro.ncs import NCAPI, USBTopology
    graph = compile_graph(micro_net, batch=2)
    env = Environment()
    topo = USBTopology(env)
    topo.attach_device("ncs0")
    api = NCAPI(env, topo, functional=True)
    x = np.random.default_rng(0).normal(
        size=(2, 3, 32, 32)).astype(np.float32) * 0.1

    def scenario():
        dev = yield api.open_device(0)
        h = yield dev.allocate_compiled(graph)
        yield h.load_tensor(x)
        result, _ = yield h.get_result()
        return result

    result = env.run(until=env.process(scenario()))
    # Device returns the first sample's output plane (batch semantics
    # on-stick return one result tensor per load).
    assert result.shape == (10, 1, 1)
