"""Tests for the MDK analogue: kernels, LAMA GEMM, OpenCL queue."""

import numpy as np
import pytest

from repro.errors import CompileError, SimulationError
from repro.mdk import (
    Buffer,
    CommandQueue,
    ComputeKernel,
    Context,
    KernelLauncher,
    gemm,
    gemm_gflops_per_watt,
    plan_gemm,
    simulate_gemm,
)
from repro.numerics import PrecisionPolicy
from repro.sim import Environment
from repro.vpu import Myriad2
from repro.vpu.shave import KernelWorkload


def _kernel(name="k", macs=8000, items=12, eff=1.0):
    return ComputeKernel(
        name=name,
        per_item=KernelWorkload(macs=macs, setup_cycles=0),
        work_items=items,
        efficiency=eff,
    )


# --- kernels -----------------------------------------------------------------

def test_kernel_validation():
    with pytest.raises(SimulationError):
        _kernel(items=0)
    with pytest.raises(SimulationError):
        _kernel(eff=0)


def test_kernel_total_macs():
    assert _kernel(macs=100, items=7).total_macs() == 700


def test_launcher_runs_and_profiles():
    env = Environment()
    chip = Myriad2(env)
    launcher = KernelLauncher(chip)
    seconds = env.run(until=launcher.launch(_kernel()))
    assert seconds > 0
    assert env.now == pytest.approx(seconds)
    prof = launcher.profiles["k"]
    assert prof.launches == 1
    assert prof.total_macs == 8000 * 12
    assert prof.gflops() > 0
    assert prof.shaves_used == [12]


def test_launcher_shave_scaling():
    def run(shaves):
        env = Environment()
        chip = Myriad2(env)
        launcher = KernelLauncher(chip)
        return env.run(until=launcher.launch(
            _kernel(macs=80000, items=48), shaves=shaves))

    t1, t12 = run(1), run(12)
    assert t1 / t12 == pytest.approx(12, rel=0.05)


def test_launcher_invalid_shaves():
    env = Environment()
    launcher = KernelLauncher(Myriad2(env))
    with pytest.raises(SimulationError):
        launcher.launch(_kernel(), shaves=0)
    with pytest.raises(SimulationError):
        launcher.launch(_kernel(), shaves=13)


def test_launcher_gates_islands():
    env = Environment()
    chip = Myriad2(env)
    launcher = KernelLauncher(chip)
    env.run(until=launcher.launch(_kernel()))
    assert not chip.islands.is_on("shave0")
    assert chip.islands.energy_joules() > 0


# --- LAMA GEMM -------------------------------------------------------------------

def test_plan_gemm_tile_fits_slice():
    plan = plan_gemm(1024, 1024, 1024)
    # 3 fp16 tiles must fit half a 128 KiB slice.
    assert plan.tile_bytes <= 64 * 1024
    assert plan.tile >= 8
    assert plan.macs == 1024 ** 3
    assert plan.flops == 2 * 1024 ** 3


def test_plan_gemm_small_matrices_clamp_tile():
    plan = plan_gemm(16, 16, 16)
    assert plan.tile <= 16
    assert plan.tiles_m == plan.tiles_n == plan.tiles_k == 1


def test_plan_gemm_validation():
    with pytest.raises(CompileError):
        plan_gemm(0, 4, 4)
    with pytest.raises(CompileError):
        plan_gemm(4, 4, 4, shaves=0)


def test_plan_ddr_traffic_grows_with_size():
    small = plan_gemm(256, 256, 256)
    large = plan_gemm(1024, 1024, 1024)
    assert large.ddr_traffic_bytes > small.ddr_traffic_bytes


def test_functional_gemm_fp32_exact():
    rng = np.random.default_rng(0)
    a = rng.normal(size=(16, 8)).astype(np.float32)
    b = rng.normal(size=(8, 12)).astype(np.float32)
    out = gemm(a, b, PrecisionPolicy.fp32())
    np.testing.assert_allclose(out, a @ b, rtol=1e-6)


def test_functional_gemm_fp16_rounds():
    rng = np.random.default_rng(1)
    a = rng.normal(size=(8, 8)).astype(np.float32)
    b = rng.normal(size=(8, 8)).astype(np.float32)
    out16 = gemm(a, b, PrecisionPolicy.fp16())
    exact = a @ b
    assert not np.array_equal(out16, exact)
    np.testing.assert_allclose(out16, exact, atol=0.05)


def test_functional_gemm_shape_check():
    with pytest.raises(CompileError):
        gemm(np.zeros((4, 3)), np.zeros((4, 3)))


def test_simulate_gemm_timing_reasonable():
    env = Environment()
    chip = Myriad2(env)
    plan = plan_gemm(512, 512, 512)
    seconds = env.run(until=simulate_gemm(chip, plan))
    gflops, gflops_w = gemm_gflops_per_watt(plan, seconds, watts=0.9)
    # FP16 peak is 12 shaves * 8 MACs * 2 flops * 600 MHz = 115 Gflops;
    # a tuned tiled kernel lands well below peak but within 2x.
    assert 30 < gflops < 115
    assert gflops_w > 30  # versus ~2 Gflops/W for the 80 W Xeon


def test_gflops_per_watt_validation():
    plan = plan_gemm(64, 64, 64)
    with pytest.raises(CompileError):
        gemm_gflops_per_watt(plan, 0, 1)
    with pytest.raises(CompileError):
        gemm_gflops_per_watt(plan, 1, 0)


# --- OpenCL-style queue --------------------------------------------------------------

def test_context_buffer_lifecycle():
    env = Environment()
    ctx = Context(env)
    free0 = ctx.chip.ddr.free
    buf = ctx.alloc_buffer(1000)
    assert ctx.chip.ddr.free == free0 - 1000
    buf.release()
    buf.release()  # idempotent
    assert ctx.chip.ddr.free == free0
    with pytest.raises(SimulationError):
        Buffer(ctx, 0)


def test_queue_in_order_execution():
    env = Environment()
    ctx = Context(env)
    q = CommandQueue(ctx)
    k1 = _kernel("k1", macs=80000, items=12)
    k2 = _kernel("k2", macs=80000, items=12)
    e1 = q.enqueue_kernel(k1)
    q.enqueue_kernel(k2)
    env.run(until=q.finish())
    t_total = env.now
    # Serialised: total ~= 2x one kernel.
    env2 = Environment()
    ctx2 = Context(env2)
    q2 = CommandQueue(ctx2)
    env2.run(until=q2.enqueue_kernel(_kernel("k", macs=80000, items=12)))
    assert t_total == pytest.approx(2 * env2.now, rel=0.05)
    assert e1.processed
    assert q.enqueued == 2


def test_queue_transfers_and_bounds():
    env = Environment()
    ctx = Context(env)
    q = CommandQueue(ctx)
    buf = ctx.alloc_buffer(4_000_000)
    q.enqueue_write(buf)
    q.enqueue_read(buf, nbytes=1_000_000)
    env.run(until=q.finish())
    assert env.now > 0
    assert ctx.chip.dma.bytes_moved == 5_000_000
    with pytest.raises(SimulationError):
        q.enqueue_write(buf, nbytes=5_000_000)
    with pytest.raises(SimulationError):
        q.enqueue_read(buf, nbytes=5_000_000)


def test_queue_finish_on_empty_queue():
    env = Environment()
    q = CommandQueue(Context(env))
    env.run(until=q.finish())
    assert env.now == 0.0


def test_context_release_all():
    env = Environment()
    ctx = Context(env)
    free0 = ctx.chip.ddr.free
    ctx.alloc_buffer(100)
    ctx.alloc_buffer(200)
    ctx.release_all()
    assert ctx.chip.ddr.free == free0
