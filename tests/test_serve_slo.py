"""Tests for ServeResult accounting, the SLO report, and the sweep."""

import pytest

from repro.errors import FrameworkError
from repro.serve import (
    COMPLETED,
    REJECTED,
    Request,
    ServeResult,
    find_max_rate,
    render_slo_report,
    render_sweep_table,
)
from repro.serve.sweep import SweepResult


def _completed_request(i, latency, arrival=0.0):
    req = Request(request_id=i, arrival_time=arrival)
    req.admitted_at = arrival
    req.dequeued_at = arrival + 0.1 * latency
    req.dispatched_at = arrival + 0.2 * latency
    req.completed_at = arrival + latency
    req.status = COMPLETED
    req.backend = "vpu"
    req.batch_size = 1
    return req


def _result(latencies, *, slo=None, wall=1.0, warmup=0, **losses):
    from repro.serve import ABANDONED, SHED, TIMED_OUT

    reqs = [_completed_request(i, lat)
            for i, lat in enumerate(latencies)]
    drops = {"shed": 0, "rejected": 0, "timed_out": 0,
             "abandoned": 0}
    drops.update(losses)
    status_of = {"shed": SHED, "rejected": REJECTED,
                 "timed_out": TIMED_OUT, "abandoned": ABANDONED}
    for field, count in drops.items():
        for _ in range(count):
            dropped = Request(request_id=len(reqs),
                              arrival_time=0.0)
            dropped.status = status_of[field]
            reqs.append(dropped)
    return ServeResult(
        offered=len(reqs),
        completed=len(latencies), wall_seconds=wall,
        slo_seconds=slo, requests=reqs, warmup=warmup, **drops)


# -- constructor invariants -------------------------------------------------

def test_accounting_invariant_is_enforced():
    with pytest.raises(FrameworkError):
        ServeResult(offered=10, completed=5, shed=1, rejected=0,
                    timed_out=0, abandoned=0, wall_seconds=1.0)


def test_status_tally_cross_check():
    # A request claiming REJECTED while the tally says completed-only.
    req = _completed_request(0, 0.1)
    req.status = REJECTED
    with pytest.raises(FrameworkError):
        ServeResult(offered=1, completed=1, shed=0, rejected=0,
                    timed_out=0, abandoned=0, wall_seconds=1.0,
                    requests=[req])


def test_negative_warmup_rejected():
    with pytest.raises(FrameworkError):
        ServeResult(offered=0, completed=0, shed=0, rejected=0,
                    timed_out=0, abandoned=0, wall_seconds=1.0,
                    warmup=-1)


# -- percentiles and rates --------------------------------------------------

def test_percentiles_and_mean():
    r = _result([0.010 * (i + 1) for i in range(100)])
    assert r.p50 == pytest.approx(0.505, rel=0.01)
    assert r.p99 >= r.p95 >= r.p50
    assert r.mean_latency == pytest.approx(0.505)


def test_empty_percentiles_raise_value_error():
    r = _result([], rejected=3)
    with pytest.raises(ValueError):
        r.latency_percentile(99)
    with pytest.raises(ValueError):
        _ = r.mean_latency
    assert "no completed requests" in r.summary()


def test_warmup_excludes_cold_start_from_stats():
    # Two cold 1 s outliers, then forty 10 ms steady-state requests.
    r = _result([1.0, 1.0] + [0.010] * 40, warmup=2)
    assert r.p99 == pytest.approx(0.010)
    assert len(r.e2e_latencies()) == 40
    full = _result([1.0, 1.0] + [0.010] * 40)
    assert full.p99 > 0.5


def test_warmup_trims_attainment_and_goodput_like_percentiles():
    # Regression: slo_attainment and goodput used to recount every
    # completed request while the percentiles trimmed warmup, so a
    # cold-start outlier dragged attainment below 1.0 even when the
    # reported p99 sat inside the SLO.  All three must judge the same
    # steady-state view.
    r = _result([1.0, 1.0] + [0.010] * 40, slo=0.050, wall=2.0,
                warmup=2)
    assert r.p99 <= 0.050
    assert r.slo_attainment == pytest.approx(1.0)
    assert r.goodput == pytest.approx(40 / 2.0)
    # Without warmup the outliers count everywhere, consistently.
    full = _result([1.0, 1.0] + [0.010] * 40, slo=0.050, wall=2.0)
    assert full.slo_attainment == pytest.approx(40 / 42)
    assert full.goodput == pytest.approx(40 / 2.0)


def test_stage_latencies_and_validation():
    r = _result([0.1, 0.2])
    assert len(r.stage_latencies("queue_wait")) == 2
    assert len(r.stage_latencies("batch_wait")) == 2
    assert len(r.stage_latencies("service")) == 2
    with pytest.raises(FrameworkError):
        r.stage_latencies("transmogrify")


def test_throughput_goodput_and_slo():
    # 8 fast + 2 slow vs a 50 ms SLO over 2 s of wall time.
    r = _result([0.010] * 8 + [0.100] * 2, slo=0.050, wall=2.0)
    assert r.throughput == pytest.approx(5.0)
    assert r.slo_attainment == pytest.approx(0.8)
    assert r.goodput == pytest.approx(4.0)
    assert r.loss_rate == 0.0
    assert not r.slo_met  # p99 rides the 100 ms stragglers


def test_slo_met_requires_no_loss():
    fast_but_lossy = _result([0.010] * 9, slo=0.050, rejected=1)
    assert fast_but_lossy.p99 < 0.050
    assert not fast_but_lossy.slo_met
    clean = _result([0.010] * 9, slo=0.050)
    assert clean.slo_met
    no_slo = _result([0.010])
    with pytest.raises(FrameworkError):
        _ = no_slo.slo_met


def test_degraded_and_loss_rate():
    r = _result([0.01] * 3, abandoned=1)
    assert r.degraded
    assert r.loss_rate == pytest.approx(0.25)
    assert not _result([0.01]).degraded


def test_summary_lines():
    r = _result([0.010] * 10, slo=0.050, shed=2, timed_out=1)
    s = r.summary()
    assert "10/13 requests" in s
    assert "2 shed" in s and "1 timed out" in s
    # Losses alone break sustainability, even with fast latencies.
    assert "p99" in s and "MISSED" in s
    assert "met" in _result([0.010] * 5, slo=0.050).summary()


def test_per_backend_counts():
    reqs = [_completed_request(i, 0.01) for i in range(4)]
    reqs[3].backend = "cpu"
    r = ServeResult(offered=4, completed=4, shed=0, rejected=0,
                    timed_out=0, abandoned=0, wall_seconds=1.0,
                    requests=reqs)
    assert r.per_backend_counts() == {"vpu": 3, "cpu": 1}


# -- report rendering -------------------------------------------------------

def test_slo_report_renders_all_sections():
    r = _result([0.010] * 20, slo=0.050, rejected=2, wall=0.5,
                warmup=0)
    text = render_slo_report(r, workload="poisson @ 40 req/s")
    assert "workload       : poisson @ 40 req/s" in text
    assert "offered        : 22 requests" in text
    assert "rejected       : 2" in text
    assert "queue wait" in text and "service" in text
    assert "SLO p99 <= 50 ms : MET" in text
    assert "goodput" in text
    assert "vpu" in text  # per-backend table


def test_slo_report_is_deterministic():
    r = _result([0.012, 0.034, 0.026], slo=0.050)
    assert render_slo_report(r) == render_slo_report(r)


def test_slo_report_with_nothing_completed():
    r = _result([], slo=0.050, rejected=5)
    text = render_slo_report(r)
    assert "UNDEFINED" in text


# -- load sweep -------------------------------------------------------------

def _fake_service(capacity):
    """run_at stub: sustainable strictly below *capacity* req/s."""

    def run_at(rate):
        ok = rate <= capacity
        return _result([0.010] * 10 if ok else [0.900] * 10,
                       slo=0.050)

    return run_at


def test_find_max_rate_bisection_converges():
    sweep = find_max_rate(_fake_service(100.0), slo_seconds=0.050,
                          hi=400.0, steps=12, label="vpu1")
    assert sweep.max_rate == pytest.approx(100.0, rel=0.01)
    assert any(p.sustainable for p in sweep.points)
    assert any(not p.sustainable for p in sweep.points)
    assert "vpu1" in sweep.summary()


def test_find_max_rate_doubles_out_of_a_low_bracket():
    # hi underestimates capacity: the bracket doubles outward first.
    sweep = find_max_rate(_fake_service(300.0), slo_seconds=0.050,
                          hi=100.0, steps=10)
    assert sweep.max_rate == pytest.approx(300.0, rel=0.02)


def test_find_max_rate_validation():
    with pytest.raises(FrameworkError):
        find_max_rate(_fake_service(1.0), slo_seconds=0.0, hi=10.0)
    with pytest.raises(FrameworkError):
        find_max_rate(_fake_service(1.0), slo_seconds=0.1, hi=0.0)
    with pytest.raises(FrameworkError):
        find_max_rate(_fake_service(1.0), slo_seconds=0.1, hi=10.0,
                      steps=0)


def test_find_max_rate_unsustainable_everywhere_reports_zero():
    # Regression: with lo > 0 and every probe unsustainable, the
    # sweep used to report the never-probed lo as the sustainable
    # floor.  Now it demonstrates lo with a probe — and when even lo
    # fails, the honest answer is 0.
    sweep = find_max_rate(_fake_service(10.0), slo_seconds=0.050,
                          hi=1000.0, lo=50.0, steps=4)
    assert sweep.max_rate == 0.0
    assert any(p.rate == pytest.approx(50.0) for p in sweep.points)
    assert all(not p.sustainable for p in sweep.points)


def test_find_max_rate_probes_an_untouched_lo():
    # lo is sustainable but the bisection never lands on it: the
    # result must come from a demonstrated probe, not a bracket edge.
    sweep = find_max_rate(_fake_service(60.0), slo_seconds=0.050,
                          hi=1000.0, lo=50.0, steps=1)
    assert sweep.max_rate == pytest.approx(50.0)
    assert any(p.rate == pytest.approx(50.0) and p.sustainable
               for p in sweep.points)


def test_render_sweep_table_rejects_mixed_slos():
    # Regression: the table header states one SLO but each row used
    # to be judged against its own; mixed inputs now fail loudly.
    results = [
        SweepResult(label="a", max_rate=10.0, slo_seconds=0.05,
                    points=[]),
        SweepResult(label="b", max_rate=20.0, slo_seconds=0.10,
                    points=[]),
    ]
    with pytest.raises(FrameworkError):
        render_sweep_table(results)


def test_render_sweep_table_scaling_column():
    results = [
        SweepResult(label="vpu1", max_rate=100.0, slo_seconds=0.05,
                    points=[]),
        SweepResult(label="vpu4", max_rate=390.0, slo_seconds=0.05,
                    points=[]),
    ]
    text = render_sweep_table(results)
    assert "vpu1" in text and "vpu4" in text
    assert "1.00x" in text and "3.90x" in text
    assert render_sweep_table([]) == "load sweep: no results"
