"""Tests for the real-time streaming pipeline."""

import pytest

from repro.errors import FrameworkError
from repro.ncs import NCAPI, paper_testbed_topology
from repro.ncsw.pipeline import PipelineResult, StreamingPipeline
from repro.nn import get_model
from repro.nn.weights import initialize_network
from repro.sim import Environment
from repro.vpu import compile_graph


@pytest.fixture(scope="module")
def micro_graph():
    net = get_model("googlenet-micro")
    initialize_network(net)
    return compile_graph(net)


def _stream(micro_graph, devices, fps, frames, queue_depth=4):
    env = Environment()
    topo = paper_testbed_topology(env, num_devices=devices)
    api = NCAPI(env, topo, functional=False)

    def scenario():
        opens = [api.open_device(i) for i in range(devices)]
        handles = yield env.all_of(opens)
        devs = [handles[ev] for ev in opens]
        allocs = [d.allocate_compiled(micro_graph) for d in devs]
        graphs = yield env.all_of(allocs)
        pipeline = StreamingPipeline(
            env, [graphs[ev] for ev in allocs], fps=fps,
            queue_depth=queue_depth)
        result = yield pipeline.run(frames)
        return result

    return env.run(until=env.process(scenario()))


def test_validation(micro_graph):
    env = Environment()
    with pytest.raises(FrameworkError):
        StreamingPipeline(env, [], fps=30)
    with pytest.raises(FrameworkError):
        StreamingPipeline(env, [object()], fps=0)  # type: ignore
    with pytest.raises(FrameworkError):
        StreamingPipeline(env, [object()], fps=30,  # type: ignore
                          queue_depth=0)


def test_underloaded_pipeline_no_drops(micro_graph):
    # Micro inference ~2.7 ms -> one stick sustains ~370 fps; offer 30.
    result = _stream(micro_graph, devices=1, fps=30, frames=40)
    assert result.frames_dropped == 0
    assert result.frames_processed == 40
    assert result.drop_rate == 0.0
    # Latency ~ one inference (no queueing).
    assert result.latency_percentile(95) < 3 * \
        micro_graph.inference_seconds


def test_overloaded_pipeline_drops_frames(micro_graph):
    # Offer 3000 fps to one stick (~370 fps capacity): heavy drops.
    result = _stream(micro_graph, devices=1, fps=3000, frames=200)
    assert result.frames_dropped > 0
    assert result.frames_processed + result.frames_dropped == 200
    assert result.drop_rate > 0.5
    # Sustained fps saturates near the stick's service rate.
    assert result.sustained_fps == pytest.approx(
        1 / micro_graph.inference_seconds, rel=0.25)


def test_more_sticks_raise_sustained_fps(micro_graph):
    r1 = _stream(micro_graph, devices=1, fps=3000, frames=200)
    r4 = _stream(micro_graph, devices=4, fps=3000, frames=200)
    assert r4.sustained_fps > 2.5 * r1.sustained_fps
    assert r4.drop_rate < r1.drop_rate


def test_queue_depth_bounds_latency(micro_graph):
    shallow = _stream(micro_graph, devices=1, fps=3000, frames=150,
                      queue_depth=1)
    deep = _stream(micro_graph, devices=1, fps=3000, frames=150,
                   queue_depth=8)
    # A deeper queue trades latency for fewer drops.
    assert deep.latency_percentile(95) > shallow.latency_percentile(95)
    assert deep.drop_rate <= shallow.drop_rate


def test_result_summary_and_guards(micro_graph):
    result = _stream(micro_graph, devices=1, fps=100, frames=10)
    s = result.summary()
    assert "fps sustained" in s and "p95" in s
    empty = PipelineResult(frames_offered=0, frames_processed=0,
                           frames_dropped=0, wall_seconds=1.0)
    assert empty.drop_rate == 0.0
    with pytest.raises(ValueError):
        empty.latency_percentile(50)
    with pytest.raises(ValueError):
        _ = empty.mean_latency
    zero_time = PipelineResult(frames_offered=1, frames_processed=1,
                               frames_dropped=0, wall_seconds=0.0,
                               latencies=[0.01])
    with pytest.raises(FrameworkError):
        _ = zero_time.sustained_fps


def test_summary_degrades_when_all_frames_dropped():
    # A run where the live queue skipped every frame must still
    # summarise instead of raising on the latency percentiles.
    all_dropped = PipelineResult(frames_offered=50, frames_processed=0,
                                 frames_dropped=50, wall_seconds=1.0)
    s = all_dropped.summary()
    assert "0/50 frames" in s
    assert "100.0% dropped" in s
    assert "no completed frames" in s
    assert "p95" not in s


def test_accounting_invariant_is_enforced():
    # processed + dropped + abandoned must equal offered.
    with pytest.raises(FrameworkError):
        PipelineResult(frames_offered=10, frames_processed=5,
                       frames_dropped=2, wall_seconds=1.0,
                       latencies=[0.0] * 5)
    # ...and latencies must match the processed count.
    with pytest.raises(FrameworkError):
        PipelineResult(frames_offered=5, frames_processed=5,
                       frames_dropped=0, wall_seconds=1.0,
                       latencies=[0.0] * 3)


def test_pipeline_survives_device_death(micro_graph):
    """A stick dying mid-stream fails over: the survivor keeps the
    pipeline alive and every frame is accounted for."""
    env = Environment()
    topo = paper_testbed_topology(env, num_devices=2)
    api = NCAPI(env, topo, functional=False)

    def scenario():
        opens = [api.open_device(i) for i in range(2)]
        handles = yield env.all_of(opens)
        devs = [handles[ev] for ev in opens]
        allocs = [d.allocate_compiled(micro_graph) for d in devs]
        graphs = yield env.all_of(allocs)
        for d in api.devices:
            d.enable_fault_hooks()

        def killer():
            yield env.timeout(0.05)
            api.devices[0].inject_death()

        env.process(killer())
        pipeline = StreamingPipeline(
            env, [graphs[ev] for ev in allocs], fps=300,
            fault_tolerant=True, call_timeout=0.05)
        result = yield pipeline.run(60)
        return result

    result = env.run(until=env.process(scenario()))
    assert result.degraded
    assert result.failures and result.failures[0].kind == "death"
    assert (result.frames_processed + result.frames_dropped
            + result.frames_abandoned) == 60
    # The survivor kept serving after the death.
    assert result.frames_processed > 0


def test_run_validation(micro_graph):
    env = Environment()
    topo = paper_testbed_topology(env, num_devices=1)
    api = NCAPI(env, topo, functional=False)

    def scenario():
        dev = yield api.open_device(0)
        g = yield dev.allocate_compiled(micro_graph)
        pipeline = StreamingPipeline(env, [g], fps=30)
        pipeline.run(0)
        yield env.timeout(0)

    with pytest.raises(FrameworkError):
        env.run(until=env.process(scenario()))

def _stream_policy(micro_graph, admission, fps=3000, frames=150,
                   queue_depth=2):
    env = Environment()
    topo = paper_testbed_topology(env, num_devices=1)
    api = NCAPI(env, topo, functional=False)

    def scenario():
        dev = yield api.open_device(0)
        g = yield dev.allocate_compiled(micro_graph)
        pipeline = StreamingPipeline(
            env, [g], fps=fps, queue_depth=queue_depth,
            admission=admission)
        result = yield pipeline.run(frames)
        return result

    return env.run(until=env.process(scenario()))


def test_admission_policy_validation(micro_graph):
    env = Environment()
    with pytest.raises(FrameworkError):
        StreamingPipeline(env, [object()], fps=30,  # type: ignore
                          admission="drop-all")


def test_block_admission_backpressures_instead_of_dropping(
        micro_graph):
    from repro.ncsw.pipeline import BLOCK

    result = _stream_policy(micro_graph, BLOCK)
    # Backpressure loses nothing, even at 8x the stick's capacity...
    assert result.frames_dropped == 0
    assert result.frames_processed == 150
    # ...but the producer stalls, so the offered rate collapses to
    # the service rate and latency is bounded by the short queue.
    assert result.sustained_fps == pytest.approx(
        1 / micro_graph.inference_seconds, rel=0.25)


def test_shed_oldest_admission_drops_but_accounts(micro_graph):
    from repro.ncsw.pipeline import SHED_OLDEST

    result = _stream_policy(micro_graph, SHED_OLDEST)
    assert result.frames_dropped > 0
    assert (result.frames_processed + result.frames_dropped
            + result.frames_abandoned) == 150
    assert result.drop_rate > 0.5


def test_lossy_policies_agree_on_drop_volume(micro_graph):
    # Same offered load, same capacity: which frames are lost differs
    # (head vs tail of the queue), but how many cannot.
    from repro.ncsw.pipeline import REJECT_NEWEST, SHED_OLDEST

    rej = _stream_policy(micro_graph, REJECT_NEWEST)
    shed = _stream_policy(micro_graph, SHED_OLDEST)
    assert rej.frames_dropped == pytest.approx(
        shed.frames_dropped, abs=3)


def test_block_admission_survives_total_device_loss(micro_graph):
    # The producer must not deadlock waiting for space when every
    # worker has died: the run drains and the leftovers are abandoned.
    from repro.ncsw.pipeline import BLOCK

    env = Environment()
    topo = paper_testbed_topology(env, num_devices=1)
    api = NCAPI(env, topo, functional=False)

    def scenario():
        dev = yield api.open_device(0)
        g = yield dev.allocate_compiled(micro_graph)
        for d in api.devices:
            d.enable_fault_hooks()

        def killer():
            yield env.timeout(0.02)
            api.devices[0].inject_death()

        env.process(killer())
        pipeline = StreamingPipeline(
            env, [g], fps=300, queue_depth=1, admission=BLOCK,
            fault_tolerant=True, call_timeout=0.05)
        result = yield pipeline.run(60)
        return result

    result = env.run(until=env.process(scenario()))
    assert result.degraded
    assert result.frames_abandoned > 0
    assert (result.frames_processed + result.frames_dropped
            + result.frames_abandoned) == 60
