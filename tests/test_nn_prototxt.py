"""Tests for prototxt serialisation and npz weight archives."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.nn import (
    Convolution,
    GoogLeNetConfig,
    Network,
    ReLU,
    Softmax,
    build_googlenet,
    get_model,
    initialize_network,
)
from repro.nn.prototxt import from_prototxt, to_prototxt
from repro.nn.weights import load_weights, save_weights
from repro.tensors import BlobShape


def _tiny_net():
    net = Network("tiny", "data", BlobShape(1, 2, 8, 8))
    net.add(Convolution("conv", "data", "conv", num_output=3,
                        kernel_size=3, in_channels=2, pad=1, stride=1))
    net.add(ReLU("relu", "conv", "conv"))
    net.add(Softmax("prob", "conv", "prob"))
    return net


# --- emission ---------------------------------------------------------------

def test_emit_contains_structure():
    text = to_prototxt(_tiny_net())
    assert 'name: "tiny"' in text
    assert 'input: "data"' in text
    assert text.count("input_dim:") == 4
    assert 'type: "Convolution"' in text
    assert "num_output: 3" in text
    assert 'bottom: "conv"' in text  # in-place relu


def test_emit_googlenet_structure():
    net = build_googlenet(GoogLeNetConfig(input_size=64, width=0.25,
                                          num_classes=10))
    text = to_prototxt(net)
    assert text.count("layer {") == len(net.layers)
    assert 'type: "Concat"' in text
    assert "global_pooling: true" in text
    assert 'pool: "AVE"' in text


# --- roundtrip --------------------------------------------------------------------

def test_roundtrip_tiny():
    net = _tiny_net()
    rebuilt = from_prototxt(to_prototxt(net))
    assert rebuilt.name == net.name
    assert len(rebuilt) == len(net)
    assert rebuilt.infer_shapes() == net.infer_shapes()


def test_roundtrip_googlenet_shapes_and_costs():
    net = build_googlenet(GoogLeNetConfig(input_size=64, width=0.25,
                                          num_classes=10))
    rebuilt = from_prototxt(to_prototxt(net))
    assert rebuilt.infer_shapes() == net.infer_shapes()
    assert rebuilt.total_macs(1) == net.total_macs(1)
    assert [l.name for l in rebuilt.layers] == [
        l.name for l in net.layers]


def test_roundtrip_preserves_function_with_weights():
    net = get_model("googlenet-micro")
    initialize_network(net, seed=3)
    rebuilt = from_prototxt(to_prototxt(net))
    # Same init seed -> same weights -> same outputs.
    initialize_network(rebuilt, seed=3)
    x = np.random.default_rng(0).normal(
        size=(1, 3, 32, 32)).astype(np.float32) * 0.1
    np.testing.assert_allclose(rebuilt.forward(x), net.forward(x),
                               rtol=1e-5)


# --- parser errors ----------------------------------------------------------------

def test_parse_requires_input():
    with pytest.raises(GraphError, match="input"):
        from_prototxt('name: "x"\n')


def test_parse_bad_dims():
    with pytest.raises(GraphError, match="input_dim"):
        from_prototxt('input: "d"\ninput_dim: 1\ninput_dim: 2\n')


def test_parse_undefined_bottom():
    text = ('input: "d"\n' + "input_dim: 1\n" * 1 +
            "input_dim: 1\ninput_dim: 4\ninput_dim: 4\n"
            'layer { name: "r" type: "ReLU" bottom: "ghost" '
            'top: "o" }')
    with pytest.raises(GraphError, match="undefined blob"):
        from_prototxt(text)


def test_parse_unknown_layer_type():
    text = ('input: "d"\ninput_dim: 1\ninput_dim: 1\n'
            'input_dim: 4\ninput_dim: 4\n'
            'layer { name: "b" type: "BatchNorm" bottom: "d" '
            'top: "o" }')
    with pytest.raises(GraphError, match="unsupported layer type"):
        from_prototxt(text)


def test_parse_garbage():
    with pytest.raises(GraphError, match="parse error"):
        from_prototxt("input: @@@")


def test_parse_layer_missing_name():
    text = ('input: "d"\ninput_dim: 1\ninput_dim: 1\n'
            'input_dim: 4\ninput_dim: 4\n'
            'layer { type: "ReLU" bottom: "d" top: "o" }')
    with pytest.raises(GraphError):
        from_prototxt(text)


# --- weight archives -----------------------------------------------------------------

def test_save_load_weights_roundtrip(tmp_path):
    net = get_model("googlenet-micro")
    initialize_network(net, seed=9)
    path = tmp_path / "weights.npz"
    save_weights(net, path)

    other = get_model("googlenet-micro")
    load_weights(other, path)
    x = np.random.default_rng(1).normal(
        size=(1, 3, 32, 32)).astype(np.float32) * 0.1
    np.testing.assert_allclose(other.forward(x), net.forward(x),
                               rtol=1e-6)


def test_load_weights_strict_mismatch(tmp_path):
    net = get_model("googlenet-micro")
    initialize_network(net)
    path = tmp_path / "w.npz"
    save_weights(net, path)
    other = _tiny_net()
    with pytest.raises(GraphError, match="mismatch"):
        load_weights(other, path)


def test_load_weights_non_strict_partial(tmp_path):
    net = _tiny_net()
    rng = np.random.default_rng(2)
    net.layer("conv").set_params(
        weight=rng.normal(size=(3, 2, 3, 3)).astype(np.float32))
    path = tmp_path / "w.npz"
    save_weights(net, path)
    # A different net with one matching layer name loads just that.
    other = _tiny_net()
    load_weights(other, path, strict=False)
    np.testing.assert_array_equal(other.layer("conv").params["weight"],
                                  net.layer("conv").params["weight"])


def test_prototxt_plus_weights_full_pipeline(tmp_path):
    """deploy.prototxt + weights.npz reproduce the original network."""
    net = get_model("googlenet-micro")
    initialize_network(net, seed=11)
    (tmp_path / "deploy.prototxt").write_text(to_prototxt(net))
    save_weights(net, tmp_path / "model.npz")

    rebuilt = from_prototxt((tmp_path / "deploy.prototxt").read_text())
    load_weights(rebuilt, tmp_path / "model.npz")
    x = np.random.default_rng(5).normal(
        size=(2, 3, 32, 32)).astype(np.float32) * 0.1
    np.testing.assert_allclose(rebuilt.forward(x), net.forward(x),
                               rtol=1e-6)
