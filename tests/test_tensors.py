"""Tests for tensor substrate: layout math, im2col, Tensor wrapper."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ShapeError
from repro.tensors import (
    BlobShape,
    Tensor,
    col2im,
    conv_output_hw,
    im2col,
    pool_output_hw,
)
from repro.tensors.im2col import conv2d_gemm


# --- layout ---------------------------------------------------------------

def test_blobshape_count_and_bytes():
    s = BlobShape(8, 3, 224, 224)
    assert s.count == 8 * 3 * 224 * 224
    assert s.nbytes(2) == s.count * 2
    assert s.as_tuple() == (8, 3, 224, 224)
    assert str(s) == "8x3x224x224"


def test_blobshape_validation():
    with pytest.raises(ShapeError):
        BlobShape(0, 3, 4, 4)
    with pytest.raises(ShapeError):
        BlobShape(1, 3, -1, 4)


def test_blobshape_with_batch():
    s = BlobShape(1, 3, 224, 224).with_batch(8)
    assert s.n == 8 and s.c == 3


def test_conv_output_googlenet_stem():
    # GoogLeNet conv1: 224x224, k=7, s=2, p=3 -> 112x112
    assert conv_output_hw(224, 224, 7, 2, 3) == (112, 112)
    # conv2 3x3: 56x56, k=3, s=1, p=1 -> 56x56
    assert conv_output_hw(56, 56, 3, 1, 1) == (56, 56)
    # 1x1 conv preserves size
    assert conv_output_hw(28, 28, 1, 1, 0) == (28, 28)


def test_pool_output_googlenet():
    # pool1: 112x112, k=3, s=2, p=0 -> Caffe ceil -> 56x56
    assert pool_output_hw(112, 112, 3, 2, 0) == (56, 56)
    # pool after inception 3: 28x28, k=3, s=2 -> 14x14
    assert pool_output_hw(28, 28, 3, 2, 0) == (14, 14)
    # global avg pool 7x7, k=7, s=1 -> 1x1
    assert pool_output_hw(7, 7, 7, 1, 0) == (1, 1)


def test_pool_ceil_vs_conv_floor():
    # 12 input, k=3, s=2: conv floor -> 5, pool ceil -> 6
    assert conv_output_hw(12, 12, 3, 2, 0) == (5, 5)
    assert pool_output_hw(12, 12, 3, 2, 0) == (6, 6)


def test_pool_pad_clipping():
    # Caffe clips windows starting in the trailing pad region.
    out_h, _ = pool_output_hw(4, 4, 2, 2, 1)
    # ceil((4+2-2)/2)+1 = 3; window 2 starts at 4 >= 4+1? no (4 < 5) -> 3
    assert out_h == 3


def test_geometry_validation():
    with pytest.raises(ShapeError):
        conv_output_hw(0, 4, 3, 1, 0)
    with pytest.raises(ShapeError):
        conv_output_hw(4, 4, 0, 1, 0)
    with pytest.raises(ShapeError):
        conv_output_hw(4, 4, 3, 0, 0)
    with pytest.raises(ShapeError):
        conv_output_hw(4, 4, 3, 1, -1)
    with pytest.raises(ShapeError):
        conv_output_hw(4, 4, 3, 1, 3)  # pad >= kernel
    with pytest.raises(ShapeError):
        conv_output_hw(2, 2, 3, 1, 0)  # empty output


# --- im2col ----------------------------------------------------------------

def _reference_conv(x, w, b, stride, pad):
    """Naive direct convolution for cross-validation."""
    n, c, h, wd = x.shape
    k_out, _, kh, kw = w.shape
    oh = (h + 2 * pad - kh) // stride + 1
    ow = (wd + 2 * pad - kw) // stride + 1
    xp = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)))
    out = np.zeros((n, k_out, oh, ow), dtype=np.float64)
    for ni in range(n):
        for ko in range(k_out):
            for i in range(oh):
                for j in range(ow):
                    region = xp[ni, :, i * stride:i * stride + kh,
                                j * stride:j * stride + kw]
                    out[ni, ko, i, j] = np.sum(region * w[ko]) + b[ko]
    return out.astype(np.float32)


def test_im2col_shape():
    x = np.arange(2 * 3 * 5 * 5, dtype=np.float32).reshape(2, 3, 5, 5)
    cols = im2col(x, kernel=3, stride=1, pad=0)
    assert cols.shape == (2, 3 * 9, 9)


def test_im2col_known_values():
    x = np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4)
    cols = im2col(x, kernel=2, stride=2, pad=0)
    # First patch is the top-left 2x2 block.
    assert cols[0, :, 0].tolist() == [0, 1, 4, 5]
    # Last patch is the bottom-right 2x2 block.
    assert cols[0, :, -1].tolist() == [10, 11, 14, 15]


def test_im2col_requires_4d():
    with pytest.raises(ShapeError):
        im2col(np.zeros((3, 5, 5)), 3, 1, 0)


def test_conv2d_gemm_matches_reference():
    rng = np.random.default_rng(0)
    x = rng.normal(size=(2, 3, 8, 8)).astype(np.float32)
    w = rng.normal(size=(4, 3, 3, 3)).astype(np.float32)
    b = rng.normal(size=4).astype(np.float32)
    for stride, pad in [(1, 0), (1, 1), (2, 1), (2, 0)]:
        fast = conv2d_gemm(x, w, b, stride, pad)
        ref = _reference_conv(x, w, b, stride, pad)
        np.testing.assert_allclose(fast, ref, rtol=1e-4, atol=1e-4)


def test_conv2d_gemm_1x1():
    rng = np.random.default_rng(1)
    x = rng.normal(size=(1, 6, 4, 4)).astype(np.float32)
    w = rng.normal(size=(2, 6, 1, 1)).astype(np.float32)
    b = np.zeros(2, dtype=np.float32)
    out = conv2d_gemm(x, w, b, 1, 0)
    # 1x1 conv is a channel-mixing matmul at each pixel.
    expected = np.einsum("kc,nchw->nkhw", w[:, :, 0, 0], x)
    np.testing.assert_allclose(out, expected, rtol=1e-5)


def test_conv2d_gemm_channel_mismatch():
    x = np.zeros((1, 3, 4, 4), dtype=np.float32)
    w = np.zeros((2, 4, 3, 3), dtype=np.float32)
    with pytest.raises(ShapeError):
        conv2d_gemm(x, w, np.zeros(2, dtype=np.float32), 1, 0)


def test_conv2d_gemm_rect_kernel_rejected():
    x = np.zeros((1, 3, 4, 4), dtype=np.float32)
    w = np.zeros((2, 3, 3, 2), dtype=np.float32)
    with pytest.raises(ShapeError):
        conv2d_gemm(x, w, np.zeros(2, dtype=np.float32), 1, 0)


def test_col2im_adjoint_counts_overlaps():
    # col2im(im2col(ones)) counts how many patches cover each pixel.
    x = np.ones((1, 1, 4, 4), dtype=np.float32)
    cols = im2col(x, kernel=3, stride=1, pad=0)
    folded = col2im(cols, (1, 1, 4, 4), kernel=3, stride=1, pad=0)
    # Corner pixels appear in 1 patch, centre pixels in 4.
    assert folded[0, 0, 0, 0] == 1
    assert folded[0, 0, 1, 1] == 4


@given(st.integers(4, 10), st.integers(1, 3), st.integers(1, 2),
       st.integers(0, 1), st.integers(1, 3))
@settings(max_examples=50, deadline=None)
def test_property_conv_gemm_equals_direct(size, kernel, stride, pad, cin):
    if pad >= kernel or size + 2 * pad < kernel:
        return
    rng = np.random.default_rng(size * 100 + kernel * 10 + stride)
    x = rng.normal(size=(1, cin, size, size)).astype(np.float32)
    w = rng.normal(size=(2, cin, kernel, kernel)).astype(np.float32)
    b = rng.normal(size=2).astype(np.float32)
    fast = conv2d_gemm(x, w, b, stride, pad)
    ref = _reference_conv(x, w, b, stride, pad)
    np.testing.assert_allclose(fast, ref, rtol=1e-3, atol=1e-4)


# --- Tensor -----------------------------------------------------------------

def test_tensor_wraps_4d():
    t = Tensor(np.zeros((2, 3, 4, 5)), name="data")
    assert t.shape.as_tuple() == (2, 3, 4, 5)
    assert t.name == "data"
    assert t.data.dtype == np.float32
    assert t.data.flags["C_CONTIGUOUS"]


def test_tensor_promotes_2d_and_3d():
    t2 = Tensor(np.zeros((4, 10)))
    assert t2.shape.as_tuple() == (4, 10, 1, 1)
    t3 = Tensor(np.zeros((3, 8, 8)))
    assert t3.shape.as_tuple() == (1, 3, 8, 8)


def test_tensor_rejects_other_dims():
    with pytest.raises(ShapeError):
        Tensor(np.zeros(5))
    with pytest.raises(ShapeError):
        Tensor(np.zeros((1, 2, 3, 4, 5)))


def test_tensor_flat2d():
    t = Tensor(np.arange(24).reshape(2, 3, 2, 2))
    assert t.flat2d().shape == (2, 12)


def test_tensor_clone_is_deep():
    t = Tensor(np.zeros((1, 1, 2, 2)), name="a")
    c = t.clone()
    c.data[0, 0, 0, 0] = 9
    assert t.data[0, 0, 0, 0] == 0
    assert c.name == "a"
    assert t.clone(name="b").name == "b"


def test_tensor_zeros_factory():
    t = Tensor.zeros(BlobShape(1, 3, 2, 2), name="z")
    assert t.shape.count == 12
    assert float(t.data.sum()) == 0.0
    t2 = Tensor.zeros((2, 1, 1, 1))
    assert t2.batch == 2
