"""Tests for elastic autoscaling over the sharded cluster.

Covers the scale surface end to end on real micro-graph VPU hosts:
reactive and predictive policies, the warm pool, zero-loss scale-in
drains (mirroring the kill-1-of-4 shape), the exactly-once invariant
under randomized interleavings of scale-out / drain / kill, flapping
alerts, and the cost-vs-SLO acceptance criterion — the reactive
autoscaler must beat the cheapest fixed-N configuration that matches
its SLO attainment.
"""

import types

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import (
    Autoscaler,
    AutoscaleSignal,
    ClusterServer,
    PredictivePolicy,
    ReactivePolicy,
    ScaleAction,
    ScaleEvent,
    ScalePlan,
    cost_point,
    render_cluster_report,
)
from repro.errors import FrameworkError
from repro.ncsw.faults import FaultPlan
from repro.obs import ObsSession, flapping_alerts
from repro.serve import DiurnalWorkload, PoissonWorkload


# -- helpers ----------------------------------------------------------------

def _targets(chaos_graph, hosts, devices=1):
    from repro.ncsw import IntelVPU

    return [IntelVPU(graph=chaos_graph, num_devices=devices,
                     functional=False)
            for _ in range(hosts)]


def _reactive(**kwargs):
    kwargs.setdefault("min_hosts", 1)
    kwargs.setdefault("interval_s", 0.005)
    kwargs.setdefault("cooldown_s", 0.01)
    kwargs.setdefault("warm_pool", 2)
    policy = ReactivePolicy(high_water=kwargs.pop("high_water", 2.0),
                            low_water=kwargs.pop("low_water", 0.5))
    return Autoscaler(policy, **kwargs)


#: The acceptance-criterion day trace: peak needs ~3 hosts, the
#: trough fits in one, a tight-but-reachable SLO.
def _day_trace(seed=11):
    return DiurnalWorkload(peak_rate=1600, period_s=1.0,
                           floor_frac=0.1, seed=seed)


def _elastic_run(chaos_graph, *, pool=4, requests=500,
                 workload=None, autoscaler=None, **kwargs):
    kwargs.setdefault("slo_seconds", 0.080)
    kwargs.setdefault("queue_depth", None)
    kwargs.setdefault("admission", "block")
    server = ClusterServer(_targets(chaos_graph, pool),
                           autoscaler=autoscaler, **kwargs)
    return server.run(workload or _day_trace(), requests)


# -- validation -------------------------------------------------------------

def test_autoscale_validation(chaos_graph):
    with pytest.raises(FrameworkError):
        ReactivePolicy(high_water=0)
    with pytest.raises(FrameworkError):
        ReactivePolicy(high_water=2.0, low_water=2.0)  # no hysteresis
    with pytest.raises(FrameworkError):
        PredictivePolicy(PoissonWorkload(100.0), host_rate=100.0)
    with pytest.raises(FrameworkError):
        PredictivePolicy(_day_trace(), host_rate=0.0)
    with pytest.raises(FrameworkError):
        Autoscaler(ReactivePolicy(), min_hosts=0)
    with pytest.raises(FrameworkError):
        Autoscaler(ReactivePolicy(), min_hosts=2, max_hosts=1)
    with pytest.raises(FrameworkError):
        Autoscaler(ReactivePolicy(), interval_s=0.0)
    with pytest.raises(FrameworkError):
        ScaleAction(at=0.1, action="explode")
    with pytest.raises(FrameworkError):
        ScaleAction(at=-1.0, action="out")
    targets = _targets(chaos_graph, 2)
    with pytest.raises(FrameworkError):
        ClusterServer(targets, initial_hosts=3)
    with pytest.raises(FrameworkError):
        ClusterServer(targets, warm_pool=-1)
    with pytest.raises(FrameworkError):
        ClusterServer(targets, drain_grace_s=0.0)
    with pytest.raises(FrameworkError):
        ClusterServer(targets, scale_plan=ScalePlan(
            [ScaleAction(at=0.1, action="drain", slot=5)]))


def test_predictive_policy_shares_the_generator_phase():
    workload = _day_trace()
    policy = PredictivePolicy(workload, host_rate=500.0,
                              utilization=0.8)

    def signal(t):
        return AutoscaleSignal(time=t, since_epoch=t, live=1,
                               booting=0, addable=3,
                               total_outstanding=0, rolling_p99=None,
                               slo_seconds=0.08)

    # Trough (t=0): phase == floor_frac -> one host suffices.
    assert workload.diurnal_phase(0.0) == pytest.approx(0.1)
    assert policy.desired(signal(0.0)) == 1
    # Peak (half period): phase == 1.0 -> 1600 / (500 * 0.8) -> 4.
    assert workload.diurnal_phase(0.5) == pytest.approx(1.0)
    assert policy.desired(signal(0.5)) == 4
    # Lead time shifts the query: at the trough, looking half a
    # period ahead provisions for the peak before it arrives.
    ahead = PredictivePolicy(workload, host_rate=500.0,
                             utilization=0.8, lead_s=0.5)
    assert ahead.desired(signal(0.0)) == 4


# -- reactive scaling -------------------------------------------------------

def test_reactive_scales_out_and_in_losing_nothing(chaos_graph):
    result = _elastic_run(chaos_graph, autoscaler=_reactive())
    assert result.completed == result.offered == 500
    assert result.frontend_abandoned == 0
    assert result.abandoned == 0
    assert result.scale_outs > 0
    assert result.scale_ins > 0
    # Drained generations are accounted distinctly from deaths.
    drained = [s for s in result.shards if s.drained_at is not None]
    assert len(drained) == result.scale_ins
    assert all(s.killed_at is None for s in drained)
    # Elasticity costs less than keeping the whole pool up.
    assert result.host_seconds < result.pool_hosts * result.wall_seconds
    text = render_cluster_report(result)
    assert "scale timeline" in text
    assert "drained @" in text
    assert "host-seconds" in text


def test_autoscale_run_is_deterministic_and_obs_neutral(chaos_graph):
    plain = _elastic_run(chaos_graph, autoscaler=_reactive())
    replay = _elastic_run(chaos_graph, autoscaler=_reactive())
    assert render_cluster_report(plain) == render_cluster_report(replay)
    assert ([
        (e.time, e.action, e.host) for e in plain.scale_events
    ] == [(e.time, e.action, e.host) for e in replay.scale_events])
    # Zero-cost contract: observability must not move a single byte
    # of the report — scale decisions read frontend state only.
    obs = ObsSession()
    traced = _elastic_run(chaos_graph, autoscaler=_reactive(), obs=obs)
    assert render_cluster_report(traced) == render_cluster_report(plain)
    # The scale surface is instrumented when a session is attached.
    assert obs.metrics.counter("cluster.scale_out").value > 0
    gauge_track = obs.metrics.gauge("cluster.live_hosts").samples
    assert gauge_track  # live-host gauge recorded


def test_predictive_policy_prewarms_ahead_of_peak(chaos_graph):
    # A short day (period 0.5 s) so 500 requests at ~880 req/s mean
    # rate span a full cycle — the run sees the rising edge, the peak
    # AND the decline, exercising both scale directions.
    workload = DiurnalWorkload(peak_rate=1600.0, period_s=0.5,
                               floor_frac=0.1, seed=11)
    # Host capacity ~500 req/s (1-stick micro-graph, closed loop).
    policy = PredictivePolicy(workload, host_rate=500.0,
                              lead_s=0.1, utilization=0.8)
    auto = Autoscaler(policy, min_hosts=1, interval_s=0.005,
                      cooldown_s=0.01, warm_pool=2)
    result = _elastic_run(chaos_graph, workload=workload,
                          autoscaler=auto)
    assert result.completed == result.offered
    assert result.abandoned == 0
    assert result.scale_outs > 0
    # The predictive run rides the modelled day: capacity is added
    # on the rising edges and removed past the peaks.
    assert result.scale_ins > 0


# -- warm pool --------------------------------------------------------------

def test_warm_pool_makes_scale_out_instant(chaos_graph):
    plan = ScalePlan([ScaleAction(at=0.0, action="out")])
    warm = ClusterServer(_targets(chaos_graph, 2), slo_seconds=60.0,
                         initial_hosts=1, warm_pool=1,
                         scale_plan=plan)
    result = warm.run(PoissonWorkload(rate=400.0, seed=0), 120)
    [event] = result.scale_events
    # The slot was pre-initialised: activation costs zero sim time —
    # the scale-out lands at the serving epoch itself.
    assert event.action == "scale-out"
    assert event.time == result.prepare_seconds
    assert result.completed == 120
    # Cold pool: the same action must pay the boot; on this short a
    # run the host never activates before the workload resolves.
    cold = ClusterServer(_targets(chaos_graph, 2), slo_seconds=60.0,
                         initial_hosts=1, warm_pool=0,
                         scale_plan=plan)
    cold_result = cold.run(PoissonWorkload(rate=400.0, seed=0), 120)
    assert all(e.time > cold_result.prepare_seconds
               for e in cold_result.scale_events)
    assert cold_result.completed == 120


# -- scale-in drain (satellite: zero-loss under load) -----------------------

def test_draining_a_host_under_load_loses_nothing(chaos_graph):
    hosts, requests, rate = 4, 200, 2000.0
    baseline_server = ClusterServer(_targets(chaos_graph, hosts),
                                    slo_seconds=60.0)
    workload = PoissonWorkload(rate=rate, seed=0)
    baseline = baseline_server.run(workload, requests)
    assert baseline.completed == requests
    drain_at = (baseline.prepare_seconds
                + 0.5 * baseline.wall_seconds)
    server = ClusterServer(
        _targets(chaos_graph, hosts), slo_seconds=60.0,
        drain_grace_s=0.001,  # force the re-shard path under load
        scale_plan=ScalePlan(
            [ScaleAction(at=drain_at, action="drain", slot=1)]))
    result = server.run(workload, requests)
    # The drain analogue of kill-1-of-4: every in-flight request on
    # the draining host completes there or re-shards — abandoned
    # must not grow, the frontend resolves everything exactly once.
    assert result.completed == requests
    assert result.frontend_abandoned == 0
    assert result.abandoned == baseline.abandoned == 0
    [drained] = [s for s in result.shards
                 if s.drained_at is not None]
    assert drained.name == "host1"
    assert drained.killed_at is None
    assert drained.resharded == result.resharded > 0
    assert "drained @" in render_cluster_report(result)


def test_drain_at_low_load_completes_its_backlog(chaos_graph):
    server = ClusterServer(
        _targets(chaos_graph, 2), slo_seconds=60.0,
        scale_plan=ScalePlan(
            [ScaleAction(at=0.85, action="drain", slot=0)]))
    result = server.run(PoissonWorkload(rate=100.0, seed=0), 60)
    # Lame-duck drain: the grace window lets the backlog finish on
    # the draining host, so nothing needs re-sharding.
    assert result.completed == 60
    assert result.resharded == 0
    [drained] = [s for s in result.shards
                 if s.drained_at is not None]
    assert drained.name == "host0"


def test_drain_refuses_to_empty_the_cluster(chaos_graph):
    server = ClusterServer(
        _targets(chaos_graph, 2), slo_seconds=60.0, initial_hosts=1,
        scale_plan=ScalePlan(
            [ScaleAction(at=0.5, action="drain", slot=0)]))
    result = server.run(PoissonWorkload(rate=200.0, seed=0), 60)
    # The only routable host cannot be drained away: the action is
    # refused and serving continues unharmed.
    assert result.completed == 60
    assert result.scale_ins == 0


# -- exactly-once under randomized interleavings (satellite) ----------------

interleavings = st.lists(
    st.tuples(st.floats(min_value=0.0, max_value=0.12),
              st.sampled_from(["out", "drain"]),
              st.integers(min_value=0, max_value=3)),
    min_size=1, max_size=5)


@given(actions=interleavings,
       kill_frac=st.one_of(st.none(),
                           st.floats(min_value=0.01, max_value=0.12)))
@settings(max_examples=10, deadline=None)
def test_scale_interleavings_keep_exactly_once(chaos_graph_global,
                                               actions, kill_frac):
    chaos_graph = chaos_graph_global
    # Serving epoch for 4 micro-graph hosts is ~0.46 s; offsets land
    # the randomized actions inside the ~0.13 s serving window.
    epoch = 0.46

    def run_once():
        plan = ScalePlan([
            ScaleAction(at=epoch + dt, action=action,
                        slot=slot if action == "drain" else None)
            for dt, action, slot in actions])
        faults = (FaultPlan.kill(2, epoch + kill_frac)
                  if kill_frac is not None else None)
        server = ClusterServer(
            _targets(chaos_graph, 4), slo_seconds=60.0,
            initial_hosts=3, warm_pool=1, drain_grace_s=0.02,
            scale_plan=plan, host_faults=faults)
        return server.run(PoissonWorkload(rate=2000.0, seed=5), 60)

    # ClusterResult's constructor enforces request-id disjointness
    # and offered reconciliation — constructing it IS the invariant
    # check, across whatever interleaving hypothesis found.
    result = run_once()
    assert (sum(s.result.offered for s in result.shards)
            + result.frontend_abandoned == 60)
    # Same-seed replay is byte-identical, scale events included.
    replay = run_once()
    assert render_cluster_report(result) == render_cluster_report(replay)
    assert result.scale_events == replay.scale_events


@pytest.fixture(scope="module")
def chaos_graph_global(chaos_graph):
    """Session graph re-exposed for hypothesis (stable across
    examples, so every interleaving runs on identical hosts)."""
    return chaos_graph


# -- flapping alerts --------------------------------------------------------

def _event(t, action, live):
    return ScaleEvent(time=t, action=action, host="hostX",
                      reason="", live_after=live)


def test_flapping_alert_fires_on_thrash_and_stays_silent():
    thrash = [_event(0.00, "scale-out", 2),
              _event(0.05, "scale-in", 1),
              _event(0.10, "scale-out", 2),
              _event(0.15, "scale-in", 1),
              _event(0.20, "scale-out", 2)]
    [alert] = flapping_alerts(thrash, window_s=0.5, min_flips=3)
    assert alert.kind == "flapping"
    assert alert.metric == "cluster.live_hosts"
    # A healthy ramp (out, out, out, one drain much later) never
    # accumulates reversals inside the window.
    calm = [_event(0.0, "scale-out", 2),
            _event(0.1, "scale-out", 3),
            _event(0.2, "scale-out", 4),
            _event(5.0, "scale-in", 3)]
    assert flapping_alerts(calm, window_s=0.5, min_flips=3) == []
    # Offline twin: the same thrash recovered from the live-host
    # timeline gauge alone.
    gauge = types.SimpleNamespace(samples=[
        (0.00, 2.0), (0.05, 1.0), (0.10, 2.0),
        (0.15, 1.0), (0.20, 2.0)])
    session = types.SimpleNamespace(
        timeline=object(),
        metrics=types.SimpleNamespace(gauge=lambda name: gauge))
    [offline] = flapping_alerts(session, window_s=0.5, min_flips=3)
    assert offline.kind == "flapping"


# -- the acceptance criterion: cost vs SLO frontier -------------------------

def test_reactive_beats_the_best_fixed_baseline(chaos_graph):
    """Under a diurnal day trace the reactive autoscaler must match
    the best fixed-N SLO attainment at equal or fewer host-seconds,
    losing zero requests across all scale events."""
    workload = _day_trace()
    fixed = []
    for n in range(1, 5):
        result = _elastic_run(chaos_graph, pool=n, initial_hosts=n,
                              workload=workload)
        assert result.completed == result.offered  # nothing lost
        fixed.append(cost_point(f"fixed-{n}", result))
    elastic = _elastic_run(chaos_graph, workload=workload,
                           autoscaler=_reactive())
    assert elastic.completed == elastic.offered
    assert elastic.abandoned == 0
    point = cost_point("reactive", elastic)
    # Best fixed-N: highest attainment, cheapest on ties.
    best = max(fixed, key=lambda p: (p.attainment, -p.host_seconds))
    assert point.attainment >= best.attainment
    assert point.host_seconds <= best.host_seconds
    assert point.lost == 0
    # The frontier is real: the small fixed configs melt at the peak.
    assert min(p.attainment for p in fixed) < 0.5


def test_host_seconds_accounting(chaos_graph):
    # Fixed run: every host bills the whole serving wall.
    fixed = _elastic_run(chaos_graph, pool=2, initial_hosts=2,
                         requests=100)
    assert fixed.host_seconds == pytest.approx(
        2 * fixed.wall_seconds)
    assert fixed.pool_hosts == 2
    assert fixed.scale_events == []
