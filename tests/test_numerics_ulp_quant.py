"""Tests for ULP analysis and precision policies."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.numerics import (
    Precision,
    PrecisionPolicy,
    max_abs_error,
    relative_error,
    ulp_distance,
)
from repro.numerics.ulp import mean_abs_error


def test_ulp_zero_for_identical():
    x = np.array([1.0, -2.0, 0.5])
    assert np.all(ulp_distance(x, x) == 0)


def test_ulp_one_for_adjacent_fp16():
    a = np.float16(1.0)
    b = np.nextafter(a, np.float16(2.0))
    assert ulp_distance(np.array([a]), np.array([b]))[0] == 1


def test_ulp_across_zero():
    # +smallest_subnormal and -smallest_subnormal are 2 ULP apart.
    tiny = np.nextafter(np.float16(0), np.float16(1))
    d = ulp_distance(np.array([tiny]), np.array([-tiny]))
    assert d[0] == 2


def test_ulp_nan_flagged():
    d = ulp_distance(np.array([np.nan]), np.array([1.0]))
    assert d[0] == np.iinfo(np.int64).max


def test_ulp_symmetry():
    a = np.array([1.5, 3.25])
    b = np.array([1.75, 3.0])
    assert np.array_equal(ulp_distance(a, b), ulp_distance(b, a))


def test_relative_error():
    err = relative_error(np.array([1.1]), np.array([1.0]))
    assert err[0] == pytest.approx(0.1)


def test_relative_error_near_zero_uses_eps():
    err = relative_error(np.array([1e-13]), np.array([0.0]))
    assert np.isfinite(err[0])


def test_max_and_mean_abs_error():
    a = np.array([1.0, 2.0, 3.0])
    b = np.array([1.0, 2.5, 2.0])
    assert max_abs_error(a, b) == 1.0
    assert mean_abs_error(a, b) == pytest.approx(0.5)


def test_precision_enum_dtypes():
    assert Precision.FP32.dtype == np.float32
    assert Precision.FP16.dtype == np.float16
    assert Precision.FP32.bytes_per_element == 4
    assert Precision.FP16.bytes_per_element == 2


def test_fp32_policy_is_identity():
    p = PrecisionPolicy.fp32()
    x = np.array([0.1, 0.2], dtype=np.float32)
    assert np.array_equal(p.quantize_weight_array(x), x)
    assert p.quantize_activation_array(x) is x


def test_fp16_policy_rounds():
    p = PrecisionPolicy.fp16()
    x = np.array([0.1], dtype=np.float32)
    w = p.quantize_weight_array(x)
    assert w.dtype == np.float32
    assert w[0] != x[0]  # 0.1 is not fp16-representable
    assert w[0] == np.float16(0.1)


def test_policy_names():
    assert PrecisionPolicy.fp32().name == "fp32"
    assert PrecisionPolicy.fp16().name == "fp16"


def test_policy_frozen():
    p = PrecisionPolicy.fp16()
    with pytest.raises(AttributeError):
        p.precision = Precision.FP32


@given(st.floats(min_value=-60000, max_value=60000, allow_nan=False))
@settings(max_examples=100, deadline=None)
def test_property_fp16_roundtrip_is_within_one_ulp(x):
    from repro.numerics import round_fp16
    r = round_fp16(np.float32(x))
    # Round-to-nearest lands on the nearest lattice point: <= 1 ULP away
    # (0 ULP when measured after both are in the fp16 lattice).
    assert ulp_distance(np.array([r]), np.array([x]))[0] <= 1
