"""Tests for the request-scoped observability plane.

Three coupled pieces under test: causal request traces with
waterfalls and Perfetto flow events (:mod:`repro.obs.reqtrace`),
windowed time-series aggregation with a JSONL round-trip
(:mod:`repro.obs.timeline`), and SLO burn-rate / anomaly alerting
(:mod:`repro.obs.alerts`) — plus the zero-cost contract: a run with
observability attached renders byte-identical reports to one without.
"""

import json

import pytest

from repro.cluster import ClusterServer, render_cluster_report
from repro.errors import ObservabilityError
from repro.harness.cli import main
from repro.ncsw.faults import FaultPlan
from repro.obs import (
    ObsSession,
    BurnRatePolicy,
    burn_rate_alerts,
    dead_rank_alerts,
    dead_ranks,
    default_policy,
    load_metrics_jsonl,
    outcomes_from_traces,
    queue_slope_alerts,
    render_timeline,
    render_waterfall,
    request_outcomes,
    serve_alerts,
    timeline_rows,
    to_chrome_trace,
    utilisation_report,
    write_metrics_jsonl,
)
from repro.serve import PoissonWorkload


# -- helpers ----------------------------------------------------------------

def _cluster_run(chaos_graph, *, hosts=2, requests=80, rate=400.0,
                 seed=0, obs=None, **kwargs):
    from repro.ncsw import IntelVPU

    kwargs.setdefault("slo_seconds", 60.0)
    targets = [IntelVPU(graph=chaos_graph, num_devices=1,
                        functional=False) for _ in range(hosts)]
    server = ClusterServer(targets, obs=obs, **kwargs)
    return server.run(PoissonWorkload(rate=rate, seed=seed), requests)


@pytest.fixture(scope="module")
def traced_cluster(chaos_graph):
    """One healthy 2-host cluster run with full request tracing."""
    obs = ObsSession()
    result = _cluster_run(chaos_graph, obs=obs)
    return result, obs


@pytest.fixture(scope="module")
def killed_cluster(chaos_graph):
    """A 3-host run where host 1 dies mid-serve (after prepare)."""
    obs = ObsSession()
    result = _cluster_run(chaos_graph, hosts=3, requests=400,
                          rate=500.0, obs=obs,
                          host_faults=FaultPlan.kill(1, 0.75))
    return result, obs


# -- request traces / waterfalls --------------------------------------------

def test_waterfall_tiles_and_telescopes_to_e2e(serve_run):
    obs = ObsSession()
    result = serve_run(requests=40, rate=100.0, obs=obs)
    done = {r.request_id: r for r in result.requests
            if r.status == "completed"}
    trace = next(t for t in obs.reqtrace.traces() if t.completed
                 and t.trace_id in done)
    req = done[trace.trace_id]

    # Arrival hop is backdated to the request's nominal arrival.
    assert trace.start == req.arrival_time
    rows = obs.reqtrace.waterfall(trace.trace_id)
    assert rows, "completed request must have stage intervals"
    # Consecutive rows tile the journey with no gaps...
    assert rows[0]["t0"] == trace.start
    assert rows[-1]["t1"] == trace.end
    for a, b in zip(rows, rows[1:]):
        assert a["t1"] == b["t0"]
    # ...so the stage durations telescope to the e2e latency.
    total = sum(r["seconds"] for r in rows)
    assert total == pytest.approx(req.e2e_latency, rel=1e-9)
    assert trace.end - trace.start == pytest.approx(req.e2e_latency)


def test_serve_hop_chain_is_causally_linked(serve_run):
    obs = ObsSession()
    serve_run(requests=30, rate=100.0, obs=obs)
    trace = next(t for t in obs.reqtrace.traces() if t.completed)
    stages = [h.stage for h in trace.hops]
    # The serve-layer journey, in order.
    expected = ["arrival", "admitted", "dequeued", "dispatched",
                "device_submit", "device_done", "completed"]
    positions = [stages.index(s) for s in expected]
    assert positions == sorted(positions)
    # Each hop chains to its predecessor's span id.
    for prev, hop in zip(trace.hops, trace.hops[1:]):
        assert hop.parent_span == prev.span_id


def test_cluster_trace_crosses_rank_boundaries(traced_cluster):
    _result, obs = traced_cluster
    trace = next(t for t in obs.reqtrace.traces() if t.completed)
    stages = [h.stage for h in trace.hops]
    assert stages[0] == "arrival"
    assert "sharded" in stages        # frontend routing
    assert "delivered" in stages      # MPI stream hop
    assert "device_done" in stages    # device call on the host rank
    assert stages[-1] == "completed"
    tracks = {h.track for h in trace.hops}
    assert "cluster" in tracks
    assert any(t.startswith("rank") for t in tracks)


def test_critical_path_names_batch_gate(serve_run):
    obs = ObsSession()
    # High rate so batches actually form.
    serve_run(requests=40, rate=800.0, obs=obs)
    trace = next(t for t in obs.reqtrace.traces() if t.completed)
    cp = obs.reqtrace.critical_path(trace.trace_id)
    assert cp["terminal"] == "completed"
    assert cp["dominant"] in {r["stage"] for r in cp["stages"]}
    assert trace.trace_id in cp["siblings"]
    assert cp["batch_gate"] in cp["siblings"]
    sibs = obs.reqtrace.siblings(trace.trace_id)
    assert sorted(t.trace_id for t in sibs) == cp["siblings"]


def test_render_waterfall_is_deterministic(serve_run):
    obs = ObsSession()
    serve_run(requests=30, rate=100.0, obs=obs)
    trace = next(t for t in obs.reqtrace.traces() if t.completed)
    text = render_waterfall(obs.reqtrace, trace.trace_id)
    assert "end-to-end" in text
    assert "dominant stage:" in text
    assert text == render_waterfall(obs.reqtrace, trace.trace_id)


def test_sampling_thins_traces_deterministically(serve_run):
    obs = ObsSession(sample_every=4)
    result = serve_run(requests=40, rate=100.0, obs=obs)
    ids = {t.trace_id for t in obs.reqtrace.traces()}
    assert ids == {r.request_id for r in result.requests
                   if r.request_id % 4 == 0}
    # Unsampled requests never grew a context.
    for req in result.requests:
        assert (req.trace is not None) == (req.request_id % 4 == 0)


def test_unsampled_request_raises_on_lookup(serve_run):
    obs = ObsSession(sample_every=2)
    serve_run(requests=10, rate=100.0, obs=obs)
    with pytest.raises(ObservabilityError):
        obs.reqtrace.get(1)


# -- Perfetto flow events ---------------------------------------------------

def test_flow_events_cross_process_groups(traced_cluster):
    _result, obs = traced_cluster
    trace = next(t for t in obs.reqtrace.traces() if t.completed)
    events = to_chrome_trace(obs)["traceEvents"]
    markers = [e for e in events if e.get("cat") == "reqtrace"
               and e["ph"] == "X"
               and e["args"]["trace_id"] == trace.trace_id]
    flows = [e for e in events if e["ph"] in ("s", "t", "f")
             and e.get("id") == trace.trace_id]
    assert len(markers) == len(trace.hops)
    assert len(flows) == len(trace.hops)
    # The request's life spans at least two process groups (frontend
    # pid + one rank pid) — the clickable-across-ranks property.
    assert len({e["pid"] for e in markers}) >= 2
    assert flows[0]["ph"] == "s"
    assert flows[-1]["ph"] == "f" and flows[-1]["bp"] == "e"
    assert all(e["ph"] == "t" for e in flows[1:-1])
    # Every flow step is anchored to its marker slice.
    anchors = {(e["pid"], e["tid"], e["ts"]) for e in markers}
    for e in flows:
        assert (e["pid"], e["tid"], e["ts"]) in anchors
    json.dumps(events)  # everything JSON-serialisable


# -- timeline windows -------------------------------------------------------

def _synthetic_session():
    session = ObsSession()
    for t in (0.1, 0.4, 1.2, 1.3, 2.2):
        session.timeline.record_inc("serve.completed", t, 1.0)
    for t, v in ((0.2, 0.010), (1.1, 0.020), (2.1, 0.040)):
        session.timeline.record_value("latency", t, v)
    return session


def test_timeline_rows_fold_counters_into_windows():
    session = _synthetic_session()
    rows = [r for r in timeline_rows(session, 1.0, end=2.5)
            if r["metric"] == "serve.completed"]
    assert [r["count"] for r in rows] == [2.0, 2.0, 1.0]
    assert [r["truncated"] for r in rows] == [False, False, True]
    # Final window is clipped to the recording end and its rate uses
    # the covered width, not the nominal one.
    assert rows[2]["t1"] == 2.5
    assert rows[2]["rate"] == pytest.approx(1.0 / 0.5)


def test_timeline_rows_histogram_percentiles():
    session = _synthetic_session()
    rows = [r for r in timeline_rows(session, 1.0, end=2.5)
            if r["kind"] == "histogram"]
    assert [r["count"] for r in rows] == [1.0, 1.0, 1.0]
    assert rows[0]["p50"] == pytest.approx(0.010)
    assert rows[2]["p99"] == pytest.approx(0.040)


def test_timeline_gauge_window_is_time_weighted():
    session = ObsSession()
    gauge = session.metrics.gauge("adm.queue_depth")
    gauge._monitor.times = [0.0, 1.0]
    gauge._monitor.values = [0.0, 10.0]
    row = [r for r in timeline_rows(session, 2.0, end=2.0)
           if r["metric"] == "adm.queue_depth"][0]
    assert row["mean"] == pytest.approx(5.0)   # 0 for 1s, 10 for 1s
    assert row["max"] == 10.0 and row["last"] == 10.0


def test_timeline_rejects_nonpositive_width():
    with pytest.raises(ObservabilityError):
        timeline_rows(_synthetic_session(), 0.0, end=1.0)


def test_render_timeline_marks_truncated_window():
    text = render_timeline(_synthetic_session(), 1.0, end=2.5)
    assert "serve.completed [counter]" in text
    assert " *" in text
    assert "window truncated at end of recording" in text
    assert text == render_timeline(_synthetic_session(), 1.0, end=2.5)


# -- metrics JSONL round-trip -----------------------------------------------

def test_metrics_jsonl_round_trips_byte_identical(tmp_path, serve_run):
    obs = ObsSession()
    serve_run(requests=40, rate=200.0, obs=obs)
    first = write_metrics_jsonl(obs, tmp_path / "a.jsonl")
    loaded = load_metrics_jsonl(first)
    second = write_metrics_jsonl(loaded, tmp_path / "b.jsonl")
    assert first.read_bytes() == second.read_bytes()
    # The loaded view answers the same questions as the live one.
    assert len(loaded.reqtrace) == len(obs.reqtrace)
    assert loaded.tracer.extent == obs.tracer.extent
    assert (timeline_rows(loaded, 0.05, end=obs.tracer.extent)
            == timeline_rows(obs, 0.05, end=obs.tracer.extent))
    live = next(t for t in obs.reqtrace.traces() if t.completed)
    assert (render_waterfall(loaded.reqtrace, live.trace_id)
            == render_waterfall(obs.reqtrace, live.trace_id))


def test_load_metrics_jsonl_rejects_bad_files(tmp_path):
    missing_meta = tmp_path / "bad.jsonl"
    missing_meta.write_text('{"kind":"counter","name":"x"}\n')
    with pytest.raises(ObservabilityError):
        load_metrics_jsonl(missing_meta)
    bad_version = tmp_path / "ver.jsonl"
    bad_version.write_text('{"kind":"meta","version":99,"extent":1}\n')
    with pytest.raises(ObservabilityError):
        load_metrics_jsonl(bad_version)


# -- alerts -----------------------------------------------------------------

def test_burn_rate_fires_only_when_both_windows_burn():
    policy = BurnRatePolicy(fast_s=0.1, slow_s=0.5)
    bad = [(0.9 + 0.02 * i, False) for i in range(30)]
    good = [(0.9 + 0.02 * i, True) for i in range(30)]
    assert burn_rate_alerts(bad, end=2.0, policy=policy)
    assert burn_rate_alerts(good, end=2.0, policy=policy) == []
    assert burn_rate_alerts([], end=2.0, policy=policy) == []
    # Consecutive firing steps merge into one alert interval.
    fired = burn_rate_alerts(bad, end=2.0, policy=policy)
    assert len(fired) == 1
    assert fired[0].until > fired[0].at


def test_burn_rate_policy_validates():
    with pytest.raises(ObservabilityError):
        BurnRatePolicy(target=1.0)
    with pytest.raises(ObservabilityError):
        BurnRatePolicy(fast_s=0.5, slow_s=0.1)
    assert default_policy(10.0).fast_s == pytest.approx(0.5)
    assert default_policy(10.0).slow_s == pytest.approx(2.0)


def test_overload_pages_and_baseline_stays_quiet(serve_run):
    hot_obs = ObsSession()
    hot = serve_run(requests=300, rate=2000.0, queue_depth=16,
                    slo_seconds=0.05, obs=hot_obs)
    hot_alerts = serve_alerts(hot, session=hot_obs)
    assert any(a.kind == "burn-rate" for a in hot_alerts)

    calm_obs = ObsSession()
    calm = serve_run(requests=60, rate=50.0, obs=calm_obs)
    assert serve_alerts(calm, session=calm_obs) == []


def test_queue_slope_flags_sustained_growth_only():
    session = ObsSession()
    climb = session.metrics.gauge("adm.queue_depth")
    climb._monitor.times = [float(t) for t in range(6)]
    climb._monitor.values = [0.0, 2.0, 4.0, 6.0, 8.0, 10.0]
    flat = session.metrics.gauge("idle.queue_depth")
    flat._monitor.times = [0.0, 3.0]
    flat._monitor.values = [1.0, 1.0]
    alerts = queue_slope_alerts(session, width=1.0, end=6.0)
    assert [a.metric for a in alerts] == ["adm.queue_depth"]
    assert alerts[0].kind == "queue-slope"


def test_dead_rank_detected_from_metrics_alone(killed_cluster):
    result, obs = killed_cluster
    killed = next(s for s in result.shards if s.killed_at is not None)
    alerts = dead_rank_alerts(obs)
    assert ([a.metric for a in alerts]
            == [f"rank{killed.rank}.completed"])
    # The detector's gap starts at the rank's last completion, which
    # precedes the kill instant.
    assert alerts[0].at <= killed.killed_at
    assert alerts[0].until > killed.killed_at


def test_dead_rank_marked_in_utilisation_report(killed_cluster):
    result, obs = killed_cluster
    killed = next(s for s in result.shards if s.killed_at is not None)
    deaths = dead_ranks(obs)
    assert set(deaths) == {killed.rank}
    assert deaths[killed.rank] == pytest.approx(0.75, abs=1e-6)
    report = utilisation_report(obs, result.wall_seconds)
    assert f"rank{killed.rank} DEAD (killed @" in report
    assert report == utilisation_report(obs, result.wall_seconds)


def test_outcomes_from_traces_matches_request_outcomes(serve_run):
    obs = ObsSession()
    result = serve_run(requests=60, rate=400.0, obs=obs)
    live = request_outcomes(result.requests, result.slo_seconds)
    offline = outcomes_from_traces(obs.reqtrace, result.slo_seconds)
    assert len(live) == len(offline)
    assert (sum(good for _, good in live)
            == sum(good for _, good in offline))


def test_cluster_report_appends_alert_section(killed_cluster):
    result, obs = killed_cluster
    alerts = serve_alerts(result, session=obs)
    plain = render_cluster_report(result)
    assert "alerts" not in plain
    report = render_cluster_report(
        result, alerts=alerts, policy=default_policy(result.wall_seconds))
    assert report.startswith(plain)
    assert "[dead-rank]" in report


# -- zero-cost contract (satellite: obs off vs on) --------------------------

def test_cluster_run_byte_identical_with_obs_on(chaos_graph):
    bare = _cluster_run(chaos_graph, requests=60)
    traced = _cluster_run(chaos_graph, requests=60, obs=ObsSession())
    assert render_cluster_report(bare) == render_cluster_report(traced)


# -- trace-analyze CLI ------------------------------------------------------

def test_trace_analyze_cli_smoke(tmp_path, capsys, serve_run):
    obs = ObsSession()
    serve_run(requests=40, rate=200.0, obs=obs)
    path = write_metrics_jsonl(obs, tmp_path / "metrics.jsonl")
    assert main(["trace-analyze", str(path), "--window", "25",
                 "--waterfalls", "2"]) == 0
    out = capsys.readouterr().out
    assert "timeline (window 25.0 ms)" in out
    assert "waterfall" in out
    assert "alerts" in out


def test_trace_analyze_rejects_missing_or_bad_file(tmp_path, capsys):
    assert main(["trace-analyze", str(tmp_path / "nope.jsonl")]) == 2
    bad = tmp_path / "bad.jsonl"
    bad.write_text("not json at all\n")
    assert main(["trace-analyze", str(bad)]) == 2


def test_serve_run_cli_records_trace_and_metrics(tmp_path, capsys):
    trace = tmp_path / "trace.json"
    metrics = tmp_path / "metrics.jsonl"
    assert main(["serve-run", "--backends", "vpu2", "--requests", "16",
                 "--rate", "200", "--trace", str(trace),
                 "--metrics", str(metrics)]) == 0
    out = capsys.readouterr().out
    assert "alerts" in out
    assert "waterfall" in out
    assert json.loads(trace.read_text())["traceEvents"]
    loaded = load_metrics_jsonl(metrics)
    assert len(loaded.reqtrace) > 0
