"""Unit tests for individual NN layers."""

import numpy as np
import pytest

from repro.errors import GraphError, ShapeError
from repro.nn import (
    LAYER_REGISTRY,
    LRN,
    Concat,
    Convolution,
    Dropout,
    InnerProduct,
    Pooling,
    PoolMethod,
    ReLU,
    Softmax,
)
from repro.tensors import BlobShape


# --- registry ----------------------------------------------------------------

def test_registry_contains_all_types():
    for name in ("Convolution", "ReLU", "Pooling", "LRN", "Concat",
                 "InnerProduct", "Softmax", "Dropout"):
        assert name in LAYER_REGISTRY


def test_layer_requires_name():
    with pytest.raises(GraphError):
        ReLU("", "a", "b")


# --- convolution -------------------------------------------------------------

def test_conv_shapes_and_params():
    conv = Convolution("c", "in", "out", num_output=8, kernel_size=3,
                       in_channels=4, stride=1, pad=1)
    out = conv.output_shapes([BlobShape(2, 4, 10, 10)])
    assert out[0].as_tuple() == (2, 8, 10, 10)
    assert conv.params["weight"].shape == (8, 4, 3, 3)
    assert conv.param_count() == 8 * 4 * 9 + 8


def test_conv_forward_identity_kernel():
    conv = Convolution("c", "in", "out", num_output=2, kernel_size=1,
                       in_channels=2)
    w = np.zeros((2, 2, 1, 1), dtype=np.float32)
    w[0, 0], w[1, 1] = 1.0, 1.0
    conv.set_params(weight=w, bias=np.zeros(2, dtype=np.float32))
    x = np.random.default_rng(0).normal(
        size=(1, 2, 4, 4)).astype(np.float32)
    out = conv.forward([x])[0]
    np.testing.assert_allclose(out, x)


def test_conv_bias_applied():
    conv = Convolution("c", "in", "out", num_output=1, kernel_size=1,
                       in_channels=1)
    conv.set_params(weight=np.zeros((1, 1, 1, 1), dtype=np.float32),
                    bias=np.array([3.5], dtype=np.float32))
    out = conv.forward([np.zeros((1, 1, 2, 2), dtype=np.float32)])[0]
    assert np.all(out == 3.5)


def test_conv_macs():
    conv = Convolution("c", "in", "out", num_output=8, kernel_size=3,
                       in_channels=4)
    shape = BlobShape(1, 4, 10, 10)
    out = conv.output_shapes([shape])[0]
    assert conv.macs([shape]) == out.count * 4 * 9


def test_conv_invalid_num_output():
    with pytest.raises(ValueError):
        Convolution("c", "a", "b", num_output=0, kernel_size=1,
                    in_channels=1)


def test_conv_set_params_shape_check():
    conv = Convolution("c", "a", "b", num_output=2, kernel_size=3,
                       in_channels=1)
    with pytest.raises(ShapeError):
        conv.set_params(weight=np.zeros((2, 1, 5, 5), dtype=np.float32))
    with pytest.raises(GraphError):
        conv.set_params(gamma=np.zeros(2))


# --- relu ---------------------------------------------------------------------

def test_relu_clamps_negatives():
    r = ReLU("r", "a", "b")
    x = np.array([[-1.0, 2.0], [0.0, -3.0]], dtype=np.float32)
    out = r.forward([x])[0]
    np.testing.assert_array_equal(out, [[0, 2], [0, 0]])


def test_leaky_relu():
    r = ReLU("r", "a", "b", negative_slope=0.1)
    x = np.array([-10.0, 5.0], dtype=np.float32)
    out = r.forward([x])[0]
    np.testing.assert_allclose(out, [-1.0, 5.0])


def test_relu_shape_passthrough():
    r = ReLU("r", "a", "b")
    s = BlobShape(1, 3, 5, 5)
    assert r.output_shapes([s]) == [s]


# --- pooling ------------------------------------------------------------------

def test_max_pool_values():
    p = Pooling("p", "a", "b", method=PoolMethod.MAX, kernel_size=2,
                stride=2)
    x = np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4)
    out = p.forward([x])[0]
    np.testing.assert_array_equal(out[0, 0], [[5, 7], [13, 15]])


def test_ave_pool_values():
    p = Pooling("p", "a", "b", method=PoolMethod.AVE, kernel_size=2,
                stride=2)
    x = np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4)
    out = p.forward([x])[0]
    np.testing.assert_allclose(out[0, 0], [[2.5, 4.5], [10.5, 12.5]])


def test_max_pool_overlapping_stride():
    # GoogLeNet-style 3x3/2 overlapping pool with ceil geometry.
    p = Pooling("p", "a", "b", method=PoolMethod.MAX, kernel_size=3,
                stride=2)
    x = np.arange(25, dtype=np.float32).reshape(1, 1, 5, 5)
    out = p.forward([x])[0]
    assert out.shape == (1, 1, 2, 2)
    assert out[0, 0, 0, 0] == 12  # max of top-left 3x3 block
    assert out[0, 0, 1, 1] == 24


def test_max_pool_with_padding_ignores_pad():
    p = Pooling("p", "a", "b", method=PoolMethod.MAX, kernel_size=3,
                stride=1, pad=1)
    x = -np.ones((1, 1, 3, 3), dtype=np.float32)
    out = p.forward([x])[0]
    # Padding is -inf for max pooling, so corners still see only real
    # values.
    assert out.shape == (1, 1, 3, 3)
    assert np.all(out == -1)


def test_global_pooling_any_size():
    p = Pooling("p", "a", "b", method=PoolMethod.AVE,
                global_pooling=True)
    for size in (2, 4, 7):
        x = np.ones((1, 3, size, size), dtype=np.float32) * 2
        out = p.forward([x])[0]
        assert out.shape == (1, 3, 1, 1)
        np.testing.assert_allclose(out, 2.0)


def test_global_pooling_rejects_rect():
    p = Pooling("p", "a", "b", global_pooling=True)
    with pytest.raises(ShapeError):
        p.output_shapes([BlobShape(1, 1, 3, 4)])


def test_global_pooling_rejects_pad():
    with pytest.raises(ShapeError):
        Pooling("p", "a", "b", global_pooling=True, pad=1)


def test_pool_macs_positive():
    p = Pooling("p", "a", "b", kernel_size=3, stride=2)
    assert p.macs([BlobShape(1, 4, 8, 8)]) > 0


# --- LRN ------------------------------------------------------------------------

def _lrn_reference(x, local_size, alpha, beta, k):
    n, c, h, w = x.shape
    out = np.zeros_like(x)
    half = local_size // 2
    for ci in range(c):
        lo, hi = max(0, ci - half), min(c, ci + half + 1)
        window = (x[:, lo:hi] ** 2).sum(axis=1)
        scale = (k + alpha / local_size * window) ** (-beta)
        out[:, ci] = x[:, ci] * scale
    return out


def test_lrn_matches_reference():
    rng = np.random.default_rng(5)
    x = rng.normal(size=(2, 8, 3, 3)).astype(np.float32)
    lrn = LRN("n", "a", "b", local_size=5, alpha=1e-4, beta=0.75)
    out = lrn.forward([x])[0]
    ref = _lrn_reference(x, 5, 1e-4, 0.75, 1.0)
    np.testing.assert_allclose(out, ref, rtol=1e-5)


def test_lrn_unit_input_scale():
    # For x = 1 everywhere: scale = (1 + alpha/n * n_window)^-beta.
    x = np.ones((1, 5, 1, 1), dtype=np.float32)
    lrn = LRN("n", "a", "b", local_size=5, alpha=5.0, beta=1.0)
    out = lrn.forward([x])[0]
    # Centre channel sees the full window of 5 ones: 1/(1 + 1*5) = wrong;
    # alpha/n = 1, window sum = 5 -> 1/(1+5) for centre channel.
    assert out[0, 2, 0, 0] == pytest.approx(1 / 6)
    # Edge channel sees only 3 ones: 1/(1+3).
    assert out[0, 0, 0, 0] == pytest.approx(1 / 4)


def test_lrn_rejects_even_local_size():
    with pytest.raises(ShapeError):
        LRN("n", "a", "b", local_size=4)


# --- concat ---------------------------------------------------------------------

def test_concat_channels():
    c = Concat("c", ["a", "b"], "out")
    x1 = np.ones((1, 2, 3, 3), dtype=np.float32)
    x2 = np.zeros((1, 3, 3, 3), dtype=np.float32)
    out = c.forward([x1, x2])[0]
    assert out.shape == (1, 5, 3, 3)
    assert out[0, 0, 0, 0] == 1 and out[0, 4, 0, 0] == 0


def test_concat_shape_inference():
    c = Concat("c", ["a", "b", "d"], "out")
    shapes = [BlobShape(2, 4, 7, 7)] * 3
    assert c.output_shapes(shapes)[0].c == 12


def test_concat_rejects_mismatched_spatial():
    c = Concat("c", ["a", "b"], "out")
    with pytest.raises(ShapeError):
        c.output_shapes([BlobShape(1, 2, 3, 3), BlobShape(1, 2, 4, 4)])


def test_concat_needs_two_inputs():
    with pytest.raises(ShapeError):
        Concat("c", ["a"], "out")


# --- inner product ----------------------------------------------------------------

def test_inner_product_forward():
    ip = InnerProduct("fc", "a", "b", num_output=2, num_input=3)
    ip.set_params(weight=np.array([[1, 0, 0], [0, 1, 1]],
                                  dtype=np.float32),
                  bias=np.array([0.5, -0.5], dtype=np.float32))
    x = np.array([[1.0, 2.0, 3.0]], dtype=np.float32).reshape(1, 3, 1, 1)
    out = ip.forward([x])[0]
    np.testing.assert_allclose(out.ravel(), [1.5, 4.5])


def test_inner_product_shape_check():
    ip = InnerProduct("fc", "a", "b", num_output=2, num_input=12)
    assert ip.output_shapes(
        [BlobShape(4, 3, 2, 2)])[0].as_tuple() == (4, 2, 1, 1)
    with pytest.raises(ShapeError):
        ip.output_shapes([BlobShape(1, 3, 3, 3)])


def test_inner_product_macs():
    ip = InnerProduct("fc", "a", "b", num_output=10, num_input=100)
    assert ip.macs([BlobShape(2, 100, 1, 1)]) == 2 * 10 * 100


# --- softmax --------------------------------------------------------------------------

def test_softmax_sums_to_one():
    sm = Softmax("s", "a", "b")
    x = np.random.default_rng(1).normal(
        size=(3, 7, 1, 1)).astype(np.float32)
    out = sm.forward([x])[0]
    np.testing.assert_allclose(out.sum(axis=1), 1.0, rtol=1e-6)
    assert np.all(out >= 0)


def test_softmax_stable_for_large_logits():
    sm = Softmax("s", "a", "b")
    x = np.array([[1000.0, 1001.0]], dtype=np.float32).reshape(1, 2, 1, 1)
    out = sm.forward([x])[0]
    assert np.all(np.isfinite(out))
    assert out[0, 1, 0, 0] > out[0, 0, 0, 0]


def test_softmax_preserves_argmax():
    sm = Softmax("s", "a", "b")
    x = np.array([[0.1, 3.0, -2.0]], dtype=np.float32).reshape(1, 3, 1, 1)
    out = sm.forward([x])[0]
    assert out.argmax() == 1


# --- dropout -----------------------------------------------------------------------------

def test_dropout_is_identity():
    d = Dropout("d", "a", "b", dropout_ratio=0.4)
    x = np.random.default_rng(2).normal(size=(1, 4, 2, 2))
    out = d.forward([x.astype(np.float32)])[0]
    np.testing.assert_array_equal(out, x.astype(np.float32))


def test_dropout_ratio_validation():
    with pytest.raises(ValueError):
        Dropout("d", "a", "b", dropout_ratio=1.0)
    with pytest.raises(ValueError):
        Dropout("d", "a", "b", dropout_ratio=-0.1)
