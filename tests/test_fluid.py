"""Tests for the hybrid fluid/DES model (:mod:`repro.sim.fluid`).

Covers determinism, termination and accounting invariants of
:class:`FluidCluster`, the window-mode routing (fluid in steady
state, DES at transients), the slow-host regression (service time
longer than the tick interval must still drain), cost-frontier
compatibility, and the equivalence gate in both directions — PASS on
an in-envelope config against a real :class:`ClusterServer` run, and
FAIL loudly when the operating regimes disagree.
"""

import pytest

from repro.cluster import Autoscaler, ClusterServer, ReactivePolicy, cost_point
from repro.errors import SimulationError
from repro.serve import DiurnalWorkload, PoissonWorkload
from repro.sim.fluid import FluidCluster, FluidResult, equivalence_gate


def _reactive(**kwargs):
    kwargs.setdefault("min_hosts", 1)
    kwargs.setdefault("interval_s", 0.005)
    kwargs.setdefault("cooldown_s", 0.01)
    kwargs.setdefault("warm_pool", 2)
    policy = ReactivePolicy(high_water=kwargs.pop("high_water", 2.0),
                            low_water=kwargs.pop("low_water", 0.5))
    return Autoscaler(policy, **kwargs)


def _day(seed=11):
    return DiurnalWorkload(peak_rate=1600, period_s=1.0,
                           floor_frac=0.1, seed=seed)


def _fluid(workload=None, **kwargs):
    kwargs.setdefault("host_rate", 500.0)
    kwargs.setdefault("pool", 4)
    kwargs.setdefault("slo_seconds", 0.080)
    return FluidCluster(workload or _day(), **kwargs)


# -- validation -------------------------------------------------------------

def test_fluid_validation():
    with pytest.raises(SimulationError):
        _fluid(host_rate=0.0)
    with pytest.raises(SimulationError):
        _fluid(pool=0)
    with pytest.raises(SimulationError):
        _fluid(slo_seconds=-1.0)
    with pytest.raises(SimulationError):
        _fluid(initial_hosts=9)   # > pool
    with pytest.raises(SimulationError):
        _fluid().run(0)
    with pytest.raises(SimulationError):
        _fluid(object())          # no rate_at / rate


def test_constant_rate_workload_accepted():
    result = _fluid(PoissonWorkload(rate=400.0, seed=3)).run(200)
    assert result.offered == 200
    assert result.completed == 200


# -- determinism and accounting ---------------------------------------------

def test_same_seed_same_numbers():
    a = _fluid(autoscaler=_reactive(), seed=5).run(400)
    b = _fluid(autoscaler=_reactive(), seed=5).run(400)
    assert a.offered == b.offered
    assert a.completed == b.completed
    assert a.attained_mass == b.attained_mass
    assert a.host_seconds == b.host_seconds
    assert a.p99 == b.p99
    assert [(w.mode, w.start) for w in a.windows] \
        == [(w.mode, w.start) for w in b.windows]
    assert [(e.time, e.action) for e in a.scale_events] \
        == [(e.time, e.action) for e in b.scale_events]


def test_accounting_invariants():
    result = _fluid(autoscaler=_reactive()).run(500)
    assert result.offered == 500
    assert result.completed == 500       # the model never sheds
    assert 0.0 <= result.slo_attainment <= 1.0
    assert result.attained_mass <= result.completed_mass + 1e-6
    assert result.host_seconds > 0.0
    assert result.wall_seconds > 0.0
    assert result.fluid_windows + result.des_windows \
        == len(result.windows)
    assert result.p99 >= 0.0
    assert result.percentile(0.5) <= result.p99
    assert "attainment" in result.summary()


def test_empty_result_percentile_raises():
    empty = FluidResult(offered=0, completed=0, completed_mass=0.0,
                        attained_mass=0.0, host_seconds=0.0,
                        wall_seconds=0.0, elapsed_s=0.0,
                        slo_seconds=0.1)
    with pytest.raises(ValueError):
        empty.p99
    assert empty.slo_attainment == 0.0


# -- window-mode routing ----------------------------------------------------

def test_mega_scale_day_is_mostly_fluid():
    """At million-user scale the stochastic wait shrinks with n
    (square-root staffing): the day must run almost entirely on the
    ODE, not per-request DES — that is the whole speed claim."""
    asc = Autoscaler(ReactivePolicy(high_water=2.0, low_water=0.5),
                     min_hosts=2, max_hosts=8, interval_s=0.02,
                     cooldown_s=0.05, warm_pool=2)
    result = _fluid(
        DiurnalWorkload(peak_rate=180000.0, period_s=10.0,
                        floor_frac=0.1, seed=7),
        host_rate=30000.0, pool=8, autoscaler=asc,
        slo_seconds=0.250, service_floor_s=8 / 30000.0,
        seed=7).run(300_000)
    assert result.offered == 300_000
    assert result.fluid_windows > 10 * result.des_windows
    assert result.slo_attainment > 0.95
    assert len(result.scale_events) > 0


def test_hybrid_off_forces_pure_fluid():
    result = _fluid(autoscaler=_reactive(), hybrid=False).run(300)
    assert result.des_windows == 0
    assert result.fluid_windows == len(result.windows)


def test_slow_hosts_terminate_and_complete():
    """Regression: a service time (1/mu = 50 ms) longer than the
    tick interval (20 ms) must still drain — server occupancy
    carries across consecutive DES windows."""
    asc = Autoscaler(ReactivePolicy(high_water=4.0, low_water=1.0),
                     min_hosts=1, max_hosts=3, interval_s=0.02,
                     cooldown_s=0.05, warm_pool=1)
    result = _fluid(
        DiurnalWorkload(peak_rate=50.0, period_s=2.0,
                        floor_frac=0.1, seed=0),
        host_rate=20.0, pool=3, autoscaler=asc, slo_seconds=1.5,
        service_floor_s=8 / 20.0, seed=0).run(120)
    assert result.offered == 120
    assert result.completed == 120
    assert result.p99 < 5.0   # queued, not stuck


def test_service_floor_raises_latency_floor():
    lo = _fluid(service_floor_s=None).run(200)
    hi = _fluid(service_floor_s=0.050).run(200)
    assert hi.percentile(0.5) >= lo.percentile(0.5) + 0.04


# -- frontier compatibility -------------------------------------------------

def test_cost_point_accepts_fluid_result():
    result = _fluid(autoscaler=_reactive(), seed=2).run(400)
    point = cost_point("fluid-reactive", result)
    assert point.completed == result.completed
    assert point.lost == 0
    assert point.scale_outs == sum(
        1 for e in result.scale_events if e.action == "scale-out")


# -- the equivalence gate ---------------------------------------------------

class _FakeDes:
    def __init__(self, attainment, goodput, p99):
        self.slo_attainment = attainment
        self.goodput = goodput
        self._p99 = p99

    @property
    def p99(self):
        if self._p99 is None:
            raise ValueError("no completions")
        return self._p99


def test_gate_fails_on_regime_disagreement():
    fluid = _fluid(autoscaler=_reactive(), seed=2).run(400)
    report = equivalence_gate(
        fluid, _FakeDes(attainment=fluid.slo_attainment - 0.5,
                        goodput=fluid.goodput, p99=fluid.p99))
    assert not report.ok
    assert any(c.name == "attainment" and not c.ok
               for c in report.checks)
    assert "VIOLATION" in report.render()


def test_gate_skips_p99_when_unavailable():
    fluid = _fluid(autoscaler=_reactive(), seed=2).run(400)
    report = equivalence_gate(
        fluid, _FakeDes(attainment=fluid.slo_attainment,
                        goodput=fluid.goodput, p99=None))
    assert all(c.name != "p99" for c in report.checks)


def test_equivalence_gate_against_real_cluster(chaos_graph):
    """The acceptance criterion: the hybrid model agrees with a pure
    per-request :class:`ClusterServer` run on the small elastic-day
    config (same workload, same autoscaler stack, calibrated rate)."""
    from repro.ncsw import IntelVPU, NCSw, SyntheticSource

    def targets(n):
        return [IntelVPU(graph=chaos_graph, num_devices=1,
                         functional=False) for _ in range(n)]

    fw = NCSw()
    fw.add_source("s", SyntheticSource(64))
    one = targets(1)[0]
    fw.add_target("h", one)
    batch = max(1, one.preferred_batch_size)
    host_rate = fw.run("s", "h", batch_size=batch).throughput()

    des = ClusterServer(targets(4), autoscaler=_reactive(),
                        slo_seconds=0.080, queue_depth=None,
                        admission="block").run(_day(), 500)
    fluid = FluidCluster(_day(), host_rate=host_rate, pool=4,
                         autoscaler=_reactive(), slo_seconds=0.080,
                         service_floor_s=batch / host_rate,
                         seed=11).run(500)
    report = equivalence_gate(fluid, des)
    assert report.ok, "\n" + report.render()
    # And the hybrid is not trivially exact DES: on this toy config
    # most windows sit at the integer/transient regime by design.
    assert fluid.des_windows > 0
