"""TinyDet tests: the synthetic detector feeding workflow cascades.

Pins the builder (shapes, zoo registration, VPU compilability), the
pure decode path (logistic box decode, clamping, score ordering) and
the seeded oracle that timing-only workflow runs rely on for
byte-identical replay.
"""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.nn.tinydet import (
    BOX_FIELDS,
    TinyDetConfig,
    build_tinydet,
    decode_detections,
    seeded_detections,
    tinydet_feature_blob,
)
from repro.nn.zoo import list_models, model_entry
from repro.vpu import compile_graph


# -- config and builder -----------------------------------------------------

def test_config_validation():
    with pytest.raises(GraphError):
        TinyDetConfig(input_size=8)
    with pytest.raises(GraphError):
        TinyDetConfig(num_boxes=0)
    with pytest.raises(GraphError):
        TinyDetConfig(width=0.0)
    with pytest.raises(GraphError):
        TinyDetConfig(width=1.5)


def test_width_multiplier_never_collapses_a_layer():
    assert TinyDetConfig(width=0.01).ch(16) == 1
    assert TinyDetConfig(width=0.5).ch(16) == 8


def test_builder_head_size_matches_box_count():
    cfg = TinyDetConfig(input_size=32, num_boxes=3, width=0.5)
    net = build_tinydet(cfg)
    shapes = net.infer_shapes()
    head = shapes["det_head"]
    assert head.c == BOX_FIELDS * 3
    # Two stride-2 convs/pools: 32px -> 16 -> 8 -> 4 spatially.
    assert shapes["pool2"].h == shapes["pool2"].w == 4


def test_zoo_registration():
    assert "tinydet" in list_models()
    assert "tinydet-micro" in list_models()
    entry = model_entry("tinydet")
    assert entry.feature_blob == tinydet_feature_blob() == "pool2"
    assert entry.classifier_layer == "det_head"


def test_tinydet_compiles_for_the_vpu():
    graph = compile_graph(build_tinydet(
        TinyDetConfig(input_size=32, num_boxes=3, width=0.5)))
    assert graph.layers
    assert graph.inference_seconds > 0.0


# -- decode -----------------------------------------------------------------

def test_decode_rejects_ragged_output():
    with pytest.raises(GraphError):
        decode_detections(np.zeros(7), input_size=64)


def test_decode_is_pure_and_sorted():
    rng = np.random.default_rng(0)
    output = rng.normal(size=BOX_FIELDS * 4)
    a = decode_detections(output, input_size=64)
    b = decode_detections(output, input_size=64)
    assert a == b
    scores = [d.score for d in a]
    assert scores == sorted(scores, reverse=True)


def test_decode_boxes_stay_inside_the_frame():
    rng = np.random.default_rng(1)
    for _ in range(20):
        output = rng.normal(scale=4.0, size=BOX_FIELDS * 4)
        for det in decode_detections(output, input_size=64):
            assert 0.0 <= det.x and det.x + det.w <= 64.0 + 1e-9
            assert 0.0 <= det.y and det.y + det.h <= 64.0 + 1e-9
            assert det.w >= 64.0 / 8.0 and det.h >= 64.0 / 8.0
            assert 0.0 <= det.score <= 1.0


def test_decode_min_score_filters():
    output = np.array([0.0, 0.0, 0.0, 0.0, -10.0,   # score ~ 0
                       0.0, 0.0, 0.0, 0.0, +10.0])  # score ~ 1
    kept = decode_detections(output, input_size=64, min_score=0.5)
    assert len(kept) == 1
    assert kept[0].score > 0.99


# -- the seeded oracle ------------------------------------------------------

def test_seeded_detections_replay():
    a = seeded_detections(np.random.default_rng(42), 4, 64)
    b = seeded_detections(np.random.default_rng(42), 4, 64)
    assert a == b


def test_seeded_detections_are_valid_boxes():
    for seed in range(8):
        dets = seeded_detections(np.random.default_rng(seed), 4, 64)
        assert 1 <= len(dets) <= 4
        scores = [d.score for d in dets]
        assert scores == sorted(scores, reverse=True)
        for det in dets:
            assert 0.0 <= det.x and det.x + det.w <= 64.0 + 1e-9
            assert 0.0 <= det.y and det.y + det.h <= 64.0 + 1e-9


def test_seeded_detections_rejects_zero_boxes():
    with pytest.raises(GraphError):
        seeded_detections(np.random.default_rng(0), 0, 64)
