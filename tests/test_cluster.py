"""Tests for cluster-scale sharded serving over simulated MPI.

Every cluster run here drives real micro-graph VPU hosts through the
full shard/serve/resolve pipeline; the fixtures keep each run to a
few hundred milliseconds of simulated time.
"""

import pytest

from repro.cluster import (
    ClusterResult,
    ClusterServer,
    HashRing,
    HostShard,
    render_cluster_report,
)
from repro.errors import FrameworkError
from repro.ncsw.faults import FaultPlan
from repro.serve import COMPLETED, PoissonWorkload, Request
from repro.serve.slo import ServeResult


# -- helpers ----------------------------------------------------------------

def _targets(chaos_graph, hosts, devices=1):
    from repro.ncsw import IntelVPU

    return [IntelVPU(graph=chaos_graph, num_devices=devices,
                     functional=False)
            for _ in range(hosts)]


def _cluster_run(chaos_graph, *, hosts=2, requests=60, rate=400.0,
                 seed=0, **kwargs):
    kwargs.setdefault("slo_seconds", 60.0)
    server = ClusterServer(_targets(chaos_graph, hosts), **kwargs)
    workload = PoissonWorkload(rate=rate, seed=seed)
    return server.run(workload, requests)


def _shard_result(ids, wall=1.0):
    reqs = []
    for i in ids:
        r = Request(request_id=i, arrival_time=0.0)
        r.admitted_at = 0.0
        r.dequeued_at = 0.01
        r.dispatched_at = 0.02
        r.completed_at = 0.1
        r.status = COMPLETED
        r.backend = "vpu"
        r.batch_size = 1
        reqs.append(r)
    return ServeResult(offered=len(ids), completed=len(ids), shed=0,
                       rejected=0, timed_out=0, abandoned=0,
                       wall_seconds=wall, requests=reqs)


# -- consistent-hash ring ---------------------------------------------------

def test_hashring_is_deterministic_and_order_independent():
    ring_a = HashRing(["host0", "host1", "host2"])
    ring_b = HashRing(["host2", "host0", "host1"])
    owners = [ring_a.lookup(k) for k in range(200)]
    assert owners == [ring_b.lookup(k) for k in range(200)]
    # Every host owns a share of the keyspace at 64 vnodes.
    assert set(owners) == {"host0", "host1", "host2"}


def test_hashring_removal_only_remaps_the_removed_node():
    ring = HashRing(["host0", "host1", "host2"])
    before = {k: ring.lookup(k) for k in range(300)}
    ring.remove("host1")
    for key, owner in before.items():
        if owner == "host1":
            assert ring.lookup(key) in ("host0", "host2")
        else:
            assert ring.lookup(key) == owner


def test_hashring_validation():
    with pytest.raises(FrameworkError):
        HashRing([])
    with pytest.raises(FrameworkError):
        HashRing(["a", "a"])
    with pytest.raises(FrameworkError):
        HashRing(["a"], replicas=0)
    ring = HashRing(["a"])
    with pytest.raises(FrameworkError):
        ring.add("a")
    with pytest.raises(FrameworkError):
        ring.remove("b")
    ring.remove("a")
    with pytest.raises(FrameworkError):
        ring.lookup(1)


# -- server validation ------------------------------------------------------

def test_cluster_server_validation(chaos_graph):
    targets = _targets(chaos_graph, 2)
    with pytest.raises(FrameworkError):
        ClusterServer([])
    with pytest.raises(FrameworkError):
        ClusterServer(targets, admission="fifo")
    with pytest.raises(FrameworkError):
        ClusterServer(targets, slo_seconds=0.0)
    with pytest.raises(FrameworkError):
        ClusterServer(targets, warmup=-1)
    with pytest.raises(FrameworkError):
        ClusterServer(targets, spill_threshold=0)
    # Host faults: whole-rank death only, and the host must exist.
    with pytest.raises(FrameworkError):
        ClusterServer(targets,
                      host_faults=FaultPlan.kill(0, 0.1, kind="hang"))
    with pytest.raises(FrameworkError):
        ClusterServer(targets, host_faults=FaultPlan.kill(5, 0.1))


# -- healthy runs -----------------------------------------------------------

def test_cluster_completes_every_request_across_hosts(chaos_graph):
    result = _cluster_run(chaos_graph, hosts=2, requests=60)
    assert result.offered == 60
    assert result.completed == 60
    assert result.loss_rate == 0.0
    assert result.frontend_abandoned == 0
    assert not result.degraded
    # Consistent hashing spreads the keyspace over both hosts.
    counts = result.per_host_counts()
    assert set(counts) == {"host0", "host1"}
    assert all(count > 0 for count in counts.values())
    assert result.sharded == 60


def test_cluster_report_renders_and_is_deterministic(chaos_graph):
    first = _cluster_run(chaos_graph, hosts=2, requests=60, seed=3)
    second = _cluster_run(chaos_graph, hosts=2, requests=60, seed=3)
    text = render_cluster_report(first, workload="poisson")
    assert text == render_cluster_report(second, workload="poisson")
    assert "hosts           : 2 (2 live at end)" in text
    assert "offered         : 60" in text
    assert "survived" in text
    # A different seed is a genuinely different run.
    other = _cluster_run(chaos_graph, hosts=2, requests=60, seed=4)
    assert render_cluster_report(other) != render_cluster_report(first)


def test_cluster_spills_off_a_backlogged_shard(chaos_graph):
    # A spill threshold of 1 forces any concurrent load off the
    # sticky host: the spill counter must move under a fast workload.
    result = _cluster_run(chaos_graph, hosts=2, requests=60,
                          rate=2000.0, spill_threshold=1)
    assert result.completed == 60
    assert result.spilled > 0


def test_cluster_warmup_trims_merged_latency_view(chaos_graph):
    full = _cluster_run(chaos_graph, hosts=2, requests=60)
    trimmed = _cluster_run(chaos_graph, hosts=2, requests=60,
                           warmup=10)
    assert len(full.e2e_latencies()) == 60
    assert len(trimmed.e2e_latencies()) == 50
    assert trimmed.warmup == 10


# -- host failure -----------------------------------------------------------

def test_killing_one_host_loses_no_request(chaos_graph):
    hosts, requests = 4, 200
    baseline = _cluster_run(chaos_graph, hosts=hosts,
                            requests=requests, rate=2000.0)
    assert baseline.completed == requests
    kill_at = (baseline.prepare_seconds
               + 0.5 * baseline.wall_seconds)
    result = _cluster_run(chaos_graph, hosts=hosts,
                          requests=requests, rate=2000.0,
                          host_faults=FaultPlan.kill(1, kill_at))
    # Exactly-once under death: every request still resolves, none
    # at the frontend, and the dead host's backlog was re-sharded.
    assert result.completed == requests
    assert result.frontend_abandoned == 0
    assert result.resharded > 0
    assert result.degraded
    [failure] = result.failures
    assert failure.scope == "host"
    assert failure.device == "host1"
    [dead] = [s for s in result.shards if s.killed_at is not None]
    assert dead.name == "host1"
    assert dead.resharded == result.resharded
    # Losing 1 of 4 hosts costs at most that host's share of goodput.
    floor = baseline.goodput * (hosts - 1) / hosts
    assert result.goodput >= floor


def test_kill_is_deterministic(chaos_graph):
    def chaos():
        return _cluster_run(chaos_graph, hosts=4, requests=200,
                            rate=2000.0,
                            host_faults=FaultPlan.kill(1, 0.1))

    assert (render_cluster_report(chaos())
            == render_cluster_report(chaos()))


def test_killed_host_leaves_no_stale_outstanding_gauge(chaos_graph):
    """After a host kill every ``*.outstanding.*`` gauge must end at
    zero (regression: a halted backend's gauge kept the in-flight
    count forever, polluting timelines and queue-slope alerts)."""
    from repro.obs import ObsSession

    baseline = _cluster_run(chaos_graph, hosts=4, requests=200,
                            rate=2000.0)
    kill_at = (baseline.prepare_seconds
               + 0.5 * baseline.wall_seconds)
    obs = ObsSession()
    server = ClusterServer(_targets(chaos_graph, 4),
                           slo_seconds=60.0,
                           host_faults=FaultPlan.kill(1, kill_at),
                           obs=obs)
    result = server.run(PoissonWorkload(rate=2000.0, seed=0), 200)
    assert result.degraded
    outstanding = [g for g in obs.metrics.gauges()
                   if ".outstanding." in g.name]
    assert outstanding, "expected per-backend outstanding gauges"
    stale = {g.name: g.last for g in outstanding if g.last != 0.0}
    assert stale == {}


def test_killing_every_host_abandons_at_the_frontend(chaos_graph):
    plan = FaultPlan(faults=[
        FaultPlan.kill(0, 0.001).faults[0],
        FaultPlan.kill(1, 0.001).faults[0],
    ])
    result = _cluster_run(chaos_graph, hosts=2, requests=40,
                          rate=4000.0, host_faults=plan)
    assert result.completed < 40
    assert result.frontend_abandoned > 0
    assert (sum(s.result.offered for s in result.shards)
            + result.frontend_abandoned == 40)
    assert "no completed" in result.summary() or result.completed > 0
    # The report still renders without latency data.
    assert "cluster serve report" in render_cluster_report(result)


# -- roll-up invariants -----------------------------------------------------

def test_cluster_result_accounting_invariant():
    shard = HostShard(rank=1, name="host0",
                      result=_shard_result([0, 1, 2]))
    with pytest.raises(FrameworkError):
        ClusterResult(offered=5, shards=[shard], wall_seconds=1.0)


def test_cluster_result_rejects_double_resolution():
    shards = [
        HostShard(rank=1, name="host0",
                  result=_shard_result([0, 1])),
        HostShard(rank=2, name="host1",
                  result=_shard_result([1, 2])),
    ]
    with pytest.raises(FrameworkError) as err:
        ClusterResult(offered=4, shards=shards, wall_seconds=1.0)
    assert "exactly-once" in str(err.value)


def test_cluster_result_abandon_bookkeeping():
    shard = HostShard(rank=1, name="host0",
                      result=_shard_result([0]))
    with pytest.raises(FrameworkError):
        ClusterResult(offered=2, shards=[shard], wall_seconds=1.0,
                      frontend_abandoned=1, abandoned_requests=[])
    with pytest.raises(FrameworkError):
        ClusterResult(offered=1, shards=[shard], wall_seconds=1.0,
                      warmup=-1)
    with pytest.raises(FrameworkError):
        ClusterResult(offered=0, shards=[], wall_seconds=1.0)
