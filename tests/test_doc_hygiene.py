"""Documentation hygiene: every public module, class and function in
the library carries a docstring.

The repo's contract is "doc comments on every public item"; this test
keeps that true as the codebase grows.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro


def _public_modules():
    names = ["repro"]
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if any(part.startswith("_") for part in info.name.split(".")):
            continue
        names.append(info.name)
    return names


MODULES = _public_modules()


@pytest.mark.parametrize("module_name", MODULES)
def test_module_has_docstring(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__ and module.__doc__.strip(), (
        f"{module_name} lacks a module docstring")


@pytest.mark.parametrize("module_name", MODULES)
def test_public_items_have_docstrings(module_name):
    module = importlib.import_module(module_name)
    missing = []
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(obj) or inspect.isfunction(obj)):
            continue
        if getattr(obj, "__module__", None) != module_name:
            continue  # re-exports documented at their home
        if not (obj.__doc__ and obj.__doc__.strip()):
            missing.append(name)
        if inspect.isclass(obj):
            for mname, member in vars(obj).items():
                if mname.startswith("_"):
                    continue
                if not (inspect.isfunction(member)
                        or isinstance(member, property)):
                    continue
                # getattr on the class resolves the descriptor so
                # inspect.getdoc can follow inheritance (an override
                # inherits the documented contract of its base).
                doc = inspect.getdoc(getattr(obj, mname))
                if not (doc and doc.strip()):
                    missing.append(f"{name}.{mname}")
    assert not missing, (
        f"{module_name}: missing docstrings on {missing}")


def test_every_module_is_covered():
    # The walker found the whole tree (guards against silent import
    # failures hiding modules from the hygiene check).
    assert len(MODULES) > 50
    assert "repro.vpu.myriad2" in MODULES
    assert "repro.ncsw.pipeline" in MODULES
