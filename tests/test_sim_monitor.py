"""Unit tests for Monitor time-series probes and TraceRecorder."""

import pytest

from repro.sim import Environment, Monitor, TraceRecorder


def _advance(env, t):
    def proc():
        yield env.timeout(t)
    env.process(proc())
    env.run()


def test_monitor_empty():
    env = Environment()
    m = Monitor(env)
    assert len(m) == 0
    assert m.last == 0.0
    assert m.time_average() == 0.0
    assert m.integral() == 0.0
    assert m.maximum() == 0.0


def test_monitor_records_time_and_value():
    env = Environment()
    m = Monitor(env, name="queue")

    def proc():
        m.record(1)
        yield env.timeout(2)
        m.record(3)

    env.process(proc())
    env.run()
    assert m.times == [0, 2]
    assert m.values == [1, 3]
    assert m.last == 3


def test_monitor_time_average_piecewise():
    env = Environment()
    m = Monitor(env)

    def proc():
        m.record(0)          # value 0 on [0, 4)
        yield env.timeout(4)
        m.record(10)         # value 10 on [4, 8)
        yield env.timeout(4)

    env.process(proc())
    env.run()
    # average = (0*4 + 10*4) / 8 = 5
    assert m.time_average() == pytest.approx(5.0)


def test_monitor_integral_power_to_energy():
    env = Environment()
    power = Monitor(env)

    def proc():
        power.record(2.5)     # 2.5 W on [0, 10)
        yield env.timeout(10)
        power.record(0.9)     # 0.9 W on [10, 20)
        yield env.timeout(10)

    env.process(proc())
    env.run()
    assert power.integral() == pytest.approx(2.5 * 10 + 0.9 * 10)


def test_monitor_integral_until():
    env = Environment()
    m = Monitor(env)

    def proc():
        m.record(4)
        yield env.timeout(10)

    env.process(proc())
    env.run()
    assert m.integral(until=3) == pytest.approx(12)


def test_monitor_maximum():
    env = Environment()
    m = Monitor(env)
    m.record(1)
    m.record(9)
    m.record(4)
    assert m.maximum() == 9


def test_monitor_until_before_first_sample():
    env = Environment()
    m = Monitor(env)

    def proc():
        yield env.timeout(5)
        m.record(10)          # first sample only at t=5
        yield env.timeout(5)

    env.process(proc())
    env.run()
    # A window that ends strictly before any sample holds no signal.
    assert m.time_average(until=3) == 0.0
    assert m.integral(until=3) == 0.0
    # At exactly the first sample time the zero-duration fallback
    # still reports the sample value (consistent with single-sample).
    assert m.time_average(until=5) == 10
    assert m.integral(until=5) == 0.0


def test_monitor_single_sample_average():
    env = Environment()
    m = Monitor(env)
    m.record(7)
    # No duration elapsed -> average falls back to the sample value.
    assert m.time_average() == 7


def test_trace_recorder_emit_and_query():
    env = Environment()
    tr = TraceRecorder(env)

    def proc():
        tr.emit("vpu0", "load_tensor", nbytes=1000)
        yield env.timeout(1)
        tr.emit("vpu0", "get_result")
        tr.emit("vpu1", "load_tensor", nbytes=500)

    env.process(proc())
    env.run()
    assert len(tr) == 3
    loads = tr.by_action("load_tensor")
    assert len(loads) == 2
    assert loads[0].time == 0 and loads[0].detail["nbytes"] == 1000
    assert len(tr.by_actor("vpu0")) == 2


def test_trace_recorder_disable():
    env = Environment()
    tr = TraceRecorder(env)
    tr.disable()
    assert not tr.enabled
    tr.emit("x", "y")
    assert len(tr) == 0
    tr.enable()
    tr.emit("x", "y")
    assert len(tr) == 1


def test_trace_recorder_enabled_attribute_deprecated():
    env = Environment()
    tr = TraceRecorder(env)
    # Direct attribute pokes still work but warn.
    with pytest.deprecated_call():
        tr.enabled = False
    tr.emit("x", "y")
    assert len(tr) == 0
    with pytest.deprecated_call():
        tr.enabled = True
    tr.emit("x", "y")
    assert len(tr) == 1


def test_trace_events_are_frozen():
    env = Environment()
    tr = TraceRecorder(env)
    tr.emit("a", "b")
    ev = tr.events[0]
    with pytest.raises(AttributeError):
        ev.time = 99
