"""Tests for the Network DAG container."""

import numpy as np
import pytest

from repro.errors import GraphError, ShapeError
from repro.nn import Convolution, Network, ReLU, Softmax
from repro.numerics import PrecisionPolicy
from repro.tensors import BlobShape


def _tiny_net():
    net = Network("tiny", "data", BlobShape(1, 2, 4, 4))
    net.add(Convolution("conv", "data", "conv", num_output=3,
                        kernel_size=3, in_channels=2, pad=1))
    net.add(ReLU("relu", "conv", "conv"))
    net.add(Softmax("prob", "conv", "prob"))
    return net


def test_wiring_validation_undefined_blob():
    net = Network("n", "data", BlobShape(1, 1, 2, 2))
    with pytest.raises(GraphError, match="undefined blob"):
        net.add(ReLU("r", "nonexistent", "out"))


def test_wiring_duplicate_layer_name():
    net = _tiny_net()
    with pytest.raises(GraphError, match="duplicate"):
        net.add(ReLU("relu", "prob", "x"))


def test_wiring_duplicate_top_rejected():
    net = Network("n", "data", BlobShape(1, 1, 2, 2))
    net.add(ReLU("r1", "data", "out"))
    with pytest.raises(GraphError, match="already produced"):
        net.add(ReLU("r2", "data", "out"))


def test_inplace_top_allowed():
    net = Network("n", "data", BlobShape(1, 1, 2, 2))
    net.add(ReLU("r1", "data", "data"))  # in-place, Caffe style
    assert len(net) == 1


def test_layer_lookup():
    net = _tiny_net()
    assert net.layer("conv").name == "conv"
    with pytest.raises(GraphError):
        net.layer("missing")


def test_output_blob():
    assert _tiny_net().output_blob == "prob"
    with pytest.raises(GraphError):
        _ = Network("n", "d", BlobShape(1, 1, 1, 1)).output_blob


def test_infer_shapes():
    net = _tiny_net()
    shapes = net.infer_shapes()
    assert shapes["conv"].as_tuple() == (1, 3, 4, 4)
    assert shapes["prob"].as_tuple() == (1, 3, 4, 4)


def test_infer_shapes_with_batch():
    shapes = _tiny_net().infer_shapes(batch=8)
    assert shapes["prob"].n == 8


def test_forward_shapes_and_softmax():
    net = _tiny_net()
    x = np.random.default_rng(0).normal(size=(2, 2, 4, 4))
    out = net.forward(x)
    assert out.shape == (2, 3, 4, 4)
    np.testing.assert_allclose(out.sum(axis=1), 1.0, rtol=1e-5)


def test_forward_rejects_bad_geometry():
    net = _tiny_net()
    with pytest.raises(ShapeError):
        net.forward(np.zeros((1, 2, 5, 5)))
    with pytest.raises(ShapeError):
        net.forward(np.zeros((2, 4, 4)))


def test_forward_fp16_differs_from_fp32():
    net = _tiny_net()
    rng = np.random.default_rng(1)
    net.layer("conv").set_params(
        weight=rng.normal(size=(3, 2, 3, 3)).astype(np.float32) * 0.3,
        bias=rng.normal(size=3).astype(np.float32))
    net.invalidate_weight_cache()
    x = rng.normal(size=(1, 2, 4, 4)).astype(np.float32)
    out32 = net.forward(x, PrecisionPolicy.fp32())
    out16 = net.forward(x, PrecisionPolicy.fp16())
    assert out32.shape == out16.shape
    assert not np.array_equal(out32, out16)   # fp16 rounding visible
    np.testing.assert_allclose(out32, out16, atol=5e-3)  # but small


def test_fp16_weight_cache_and_invalidation():
    net = _tiny_net()
    rng = np.random.default_rng(2)
    w = rng.normal(size=(3, 2, 3, 3)).astype(np.float32)
    net.layer("conv").set_params(weight=w)
    net.invalidate_weight_cache()
    x = rng.normal(size=(1, 2, 4, 4)).astype(np.float32)
    out_a = net.forward(x, PrecisionPolicy.fp16())
    # Mutate weights without invalidating: cache returns stale values.
    net.layer("conv").params["weight"] = w * 2
    out_stale = net.forward(x, PrecisionPolicy.fp16())
    np.testing.assert_array_equal(out_a, out_stale)
    net.invalidate_weight_cache()
    out_fresh = net.forward(x, PrecisionPolicy.fp16())
    assert not np.array_equal(out_a, out_fresh)


def test_forward_params_restored_after_fp16_run():
    net = _tiny_net()
    w = np.full((3, 2, 3, 3), 0.1, dtype=np.float32)
    net.layer("conv").set_params(weight=w)
    net.invalidate_weight_cache()
    net.forward(np.zeros((1, 2, 4, 4)), PrecisionPolicy.fp16())
    # Original FP32 weights must be back in place after the pass.
    np.testing.assert_array_equal(net.layer("conv").params["weight"], w)


def test_forward_with_blobs_capture():
    net = _tiny_net()
    x = np.random.default_rng(3).normal(size=(1, 2, 4, 4))
    out, captured = net.forward_with_blobs(x, capture=["conv"])
    assert "conv" in captured
    assert captured["conv"].shape == (1, 3, 4, 4)
    np.testing.assert_array_equal(out, net.forward(x))


def test_predict_returns_labels_and_confidences():
    net = _tiny_net()
    x = np.random.default_rng(4).normal(size=(5, 2, 4, 4))
    labels, confs = net.predict(x)
    assert labels.shape == (5,)
    assert confs.shape == (5,)
    assert np.all((confs > 0) & (confs <= 1))


def test_layer_costs_and_total_macs():
    net = _tiny_net()
    costs = net.layer_costs(batch=2)
    assert [c.name for c in costs] == ["conv", "relu", "prob"]
    conv_cost = costs[0]
    # 2 * 3 * 4 * 4 outputs, each 2*3*3 MACs
    assert conv_cost.macs == 2 * 3 * 16 * 18
    assert net.total_macs(batch=2) == sum(c.macs for c in costs)
    assert net.total_macs(batch=2) == 2 * net.total_macs(batch=1)


def test_total_param_bytes_precision():
    net = _tiny_net()
    assert net.total_param_bytes(4) == 2 * net.total_param_bytes(2)
