"""Tests for the miniature MPI substrate."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.mpi import Communicator, StreamWindow
from repro.mpi.comm import ANY_SOURCE, ANY_TAG
from repro.sim import Environment


def test_communicator_validation():
    env = Environment()
    with pytest.raises(SimulationError):
        Communicator(env, 0)
    with pytest.raises(SimulationError):
        Communicator(env, 2, bandwidth=0)
    comm = Communicator(env, 2)
    with pytest.raises(SimulationError):
        comm.isend("x", dest=5)
    with pytest.raises(SimulationError):
        comm.isend("x", dest=0, tag=-1)


def test_blocking_send_recv():
    env = Environment()
    comm = Communicator(env, 2)
    got = []

    def rank0():
        yield comm.send({"a": 7}, dest=1, tag=11, source=0)

    def rank1():
        payload, status = yield comm.recv(dest=1, source=0, tag=11)
        got.append((payload, status))

    env.process(rank0())
    env.process(rank1())
    env.run()
    payload, status = got[0]
    assert payload == {"a": 7}
    assert status.source == 0 and status.tag == 11


def test_nonblocking_isend_wait():
    env = Environment()
    comm = Communicator(env, 2)
    marks = {}

    def rank0():
        req = comm.isend(np.zeros(1000, dtype=np.float32), dest=1,
                         source=0)
        marks["after_isend"] = env.now   # returns immediately
        yield req.wait()
        marks["after_wait"] = env.now

    def rank1():
        yield comm.recv(dest=1)

    env.process(rank0())
    env.process(rank1())
    env.run()
    assert marks["after_isend"] == 0.0
    assert marks["after_wait"] > 0.0


def test_transfer_time_scales_with_bytes():
    env = Environment()
    comm = Communicator(env, 2)
    small = comm.transfer_seconds(1000)
    large = comm.transfer_seconds(4_000_000_000)
    assert large == pytest.approx(1.0, rel=0.01)
    assert small < large


def test_messages_non_overtaking_same_tag():
    env = Environment()
    comm = Communicator(env, 2)
    got = []

    def producer():
        for i in range(5):
            yield comm.send(i, dest=1, tag=3, source=0)

    def consumer():
        for _ in range(5):
            payload, _ = yield comm.recv(dest=1, source=0, tag=3)
            got.append(payload)

    env.process(producer())
    env.process(consumer())
    env.run()
    assert got == [0, 1, 2, 3, 4]


def test_tag_matching_skips_other_tags():
    env = Environment()
    comm = Communicator(env, 2)
    got = []

    def producer():
        yield comm.send("wrong", dest=1, tag=1, source=0)
        yield comm.send("right", dest=1, tag=2, source=0)

    def consumer():
        payload, _ = yield comm.recv(dest=1, tag=2)
        got.append(payload)

    env.process(producer())
    env.process(consumer())
    env.run()
    assert got == ["right"]


def test_any_source_any_tag():
    env = Environment()
    comm = Communicator(env, 3)
    got = []

    def producer(rank, delay):
        yield env.timeout(delay)
        yield comm.send(f"from{rank}", dest=2, tag=rank, source=rank)

    def consumer():
        for _ in range(2):
            payload, status = yield comm.recv(
                dest=2, source=ANY_SOURCE, tag=ANY_TAG)
            got.append((payload, status.source))

    env.process(producer(0, 1.0))
    env.process(producer(1, 0.5))
    env.process(consumer())
    env.run()
    assert got[0] == ("from1", 1)  # earlier sender arrives first
    assert got[1] == ("from0", 0)


def test_bcast_reaches_all_ranks():
    env = Environment()
    comm = Communicator(env, 4)
    got = []

    def root():
        for req in comm.bcast("hello", root=0):
            yield req.wait()

    def leaf(rank):
        payload, status = yield comm.recv(dest=rank, source=0)
        got.append((rank, payload, status.source))

    env.process(root())
    for r in (1, 2, 3):
        env.process(leaf(r))
    env.run()
    assert sorted(got) == [(1, "hello", 0), (2, "hello", 0),
                           (3, "hello", 0)]


def test_barrier_synchronises():
    env = Environment()
    comm = Communicator(env, 3)
    release_times = []

    def rank(delay):
        yield env.timeout(delay)
        yield comm.barrier()
        release_times.append(env.now)

    for d in (1.0, 2.0, 5.0):
        env.process(rank(d))
    env.run()
    assert release_times == [5.0, 5.0, 5.0]


def test_barrier_reusable_across_generations():
    env = Environment()
    comm = Communicator(env, 2)
    log = []

    def rank(idx, delays):
        for d in delays:
            yield env.timeout(d)
            gen = yield comm.barrier()
            log.append((gen, idx, env.now))

    env.process(rank(0, [1.0, 1.0]))
    env.process(rank(1, [2.0, 3.0]))
    env.run()
    gens = [g for g, _, _ in log]
    assert sorted(set(gens)) == [1, 2]
    # Second barrier releases at max(1+1 from rank0, 2+3 from rank1)=5.
    assert max(t for g, _, t in log if g == 2) == 5.0


def test_accounting_counters():
    env = Environment()
    comm = Communicator(env, 2)

    def proc():
        yield comm.send(np.zeros(100, dtype=np.float64), dest=1,
                        source=0)
        yield comm.recv(dest=1)

    env.process(proc())
    env.run()
    assert comm.messages_sent == 1
    assert comm.bytes_sent == 800


# --- stream window ----------------------------------------------------------------

def test_stream_validation():
    env = Environment()
    comm = Communicator(env, 2)
    with pytest.raises(SimulationError):
        StreamWindow(comm, 0, 0)
    with pytest.raises(SimulationError):
        StreamWindow(comm, 0, 1, window=0)


def test_stream_push_pop_order():
    env = Environment()
    comm = Communicator(env, 2)
    stream = StreamWindow(comm, 0, 1)
    got = []

    def producer():
        for i in range(4):
            yield stream.push(i)
        yield stream.close()

    def consumer():
        while True:
            item = yield stream.pop()
            if item is None:
                break
            got.append(item)

    env.process(producer())
    env.process(consumer())
    env.run()
    assert got == [0, 1, 2, 3]
    assert stream.pushed == 4 and stream.popped == 4


def test_stream_backpressure():
    env = Environment()
    comm = Communicator(env, 2)
    stream = StreamWindow(comm, 0, 1, window=2)
    push_times = []

    def producer():
        for i in range(4):
            yield stream.push(i)
            push_times.append(env.now)
        yield stream.close()

    def consumer():
        yield env.timeout(10.0)
        while True:
            item = yield stream.pop()
            if item is None:
                break

    env.process(producer())
    env.process(consumer())
    env.run()
    # First two pushes fill the window immediately; later pushes wait
    # for the consumer to start draining at t=10.
    assert push_times[1] < 1.0
    assert push_times[2] >= 10.0


def test_stream_eos_persists():
    env = Environment()
    comm = Communicator(env, 2)
    stream = StreamWindow(comm, 0, 1)
    got = []

    def proc():
        yield stream.close()
        got.append((yield stream.pop()))
        got.append((yield stream.pop()))  # still EOS

    env.process(proc())
    env.run()
    assert got == [None, None]


def test_stream_rejects_push_after_close():
    env = Environment()
    comm = Communicator(env, 2)
    stream = StreamWindow(comm, 0, 1)
    stream.close()
    with pytest.raises(SimulationError):
        stream.push(1)


def test_stream_abort_returns_backlog_and_signals_eos():
    env = Environment()
    comm = Communicator(env, 2)
    stream = StreamWindow(comm, 0, 1, window=2)
    stranded = {}
    got = []

    def producer():
        # Two pushes fill the window; two more block on it.
        events = [stream.push(i) for i in range(4)]
        yield env.all_of(events)

    def killer():
        yield env.timeout(5.0)
        stranded["items"] = stream.abort()

    def late_consumer():
        yield env.timeout(10.0)
        got.append((yield stream.pop()))
        got.append((yield stream.pop()))

    env.process(producer())
    env.process(killer())
    env.process(late_consumer())
    env.run()
    # Abort recovered everything undelivered: the buffered window
    # plus the payloads of the blocked pushes.
    assert sorted(stranded["items"]) == [0, 1, 2, 3]
    assert stream.closed
    # The blocked producer was released (env.run() returned), and
    # pops after the abort see only EOS.
    assert got == [None, None]


def test_stream_abort_unblocks_a_waiting_pop():
    env = Environment()
    comm = Communicator(env, 2)
    stream = StreamWindow(comm, 0, 1)
    got = []

    def consumer():
        got.append((yield stream.pop()))

    def killer():
        yield env.timeout(1.0)
        stream.abort()

    env.process(consumer())
    env.process(killer())
    env.run()
    assert got == [None]


def test_stream_abort_rejects_further_pushes():
    env = Environment()
    comm = Communicator(env, 2)
    stream = StreamWindow(comm, 0, 1)
    assert stream.abort() == []
    with pytest.raises(SimulationError):
        stream.push(1)
