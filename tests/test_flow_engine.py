"""Workflow engine tests: cascades end-to-end through the serve stack.

The acceptance properties pinned here: a detect→crop→classify→join
cascade runs whole workflows through real per-stage serving stacks;
every fan-out is exactly-once accounted (``spawned = joined +
abandoned``) and the :class:`WorkflowResult` constructor rejects any
ledger that is not; per-stage intervals tile a completed workflow's
journey without gaps; seeded runs replay byte-identically; branches
route both ways; and overload resolves workflows into terminal states
without losing a single sub-request.
"""

import pytest

from repro.errors import FlowError
from repro.flow import (
    FanOutAccount,
    FlowCoordinator,
    WorkflowRequest,
    WorkflowResult,
    build_workflow,
    render_workflow_report,
)
from repro.serve import PoissonWorkload
from repro.serve.workload import ABANDONED, COMPLETED

pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")


def _run(workflow_name, *, requests=30, rate=200.0, seed=0,
         devices=2, **kwargs):
    wf = build_workflow(workflow_name, "micro", vpu_devices=devices)
    coord = FlowCoordinator(wf, seed=seed, **kwargs)
    result = coord.run(PoissonWorkload(rate=rate, seed=seed),
                       requests)
    return coord, result


def _assert_accounted(result):
    assert (result.completed + result.shed + result.rejected
            + result.timed_out + result.abandoned) == result.offered
    for acct in result.fan_out:
        assert acct.spawned == acct.joined + acct.abandoned


# -- validation -------------------------------------------------------------

def test_coordinator_needs_a_compiled_workflow():
    with pytest.raises(FlowError):
        FlowCoordinator("cascade")


def test_coordinator_validation():
    wf = build_workflow("cascade", "micro", vpu_devices=1)
    with pytest.raises(FlowError):
        FlowCoordinator(wf, admission="fifo")
    with pytest.raises(FlowError):
        FlowCoordinator(wf, slo_seconds=0.0)
    with pytest.raises(FlowError):
        FlowCoordinator(wf, deadline_seconds=-1.0)
    with pytest.raises(FlowError):
        FlowCoordinator(wf, warmup=-1)
    with pytest.raises(FlowError):
        FlowCoordinator(wf).run(PoissonWorkload(10.0), 0)


# -- the cascade, end to end ------------------------------------------------

def test_cascade_completes_and_accounts_everything():
    _, result = _run("cascade", requests=30, rate=100.0)
    _assert_accounted(result)
    assert result.completed == result.offered == 30
    assert [s.name for s in result.stages] == ["detect", "classify"]
    # Fan-out multiplied the classify load: the ledger says by how
    # much, and the classify stage served exactly that many.
    (acct,) = result.fan_out
    assert acct.step == "crop" and acct.join == "aggregate"
    assert acct.spawned > 0 and acct.abandoned == 0
    assert result.stage("classify").result.offered == acct.spawned
    assert result.stage("detect").result.offered == 30


def test_cascade_outputs_carry_the_join_verdict():
    _, result = _run("cascade", requests=12, rate=100.0)
    for req in result.completed_requests():
        assert set(req.output) == {"labels", "top"}
        if req.output["labels"]:
            assert req.output["top"] in req.output["labels"]


def test_stage_intervals_tile_arrival_to_completion():
    _, result = _run("cascade", requests=20, rate=150.0)
    for req in result.completed_requests():
        assert req.stage_intervals, "completed with no intervals"
        assert req.stage_intervals[0][1] == req.arrival_time
        for (_, _, t1), (_, t0, _) in zip(req.stage_intervals,
                                          req.stage_intervals[1:]):
            assert t1 == t0  # no gap, no overlap
        assert req.stage_intervals[-1][2] == req.completed_at
        # The fan-out region collapses to one labelled interval.
        names = [name for name, _, _ in req.stage_intervals]
        assert "crop+aggregate" in names


def test_seeded_run_is_byte_identical():
    reports = []
    for _ in range(2):
        _, result = _run("cascade", requests=25, rate=300.0, seed=7,
                         slo_seconds=0.5)
        reports.append(render_workflow_report(result,
                                              workload="poisson"))
    assert reports[0] == reports[1]


def test_different_seeds_change_the_run():
    _, a = _run("cascade", requests=25, rate=300.0, seed=0)
    _, b = _run("cascade", requests=25, rate=300.0, seed=1)
    assert a.wall_seconds != b.wall_seconds


# -- branches and ensembles -------------------------------------------------

def test_escalation_routes_both_ways():
    _, result = _run("escalate", requests=40, rate=100.0)
    _assert_accounted(result)
    assert result.completed == 40
    fp16 = result.stage("classify-fp16").result
    fp32 = result.stage("classify-fp32").result
    assert fp16.offered == 40
    # The 0.8 gate over U(0.5, 1) confidences escalates some but not
    # all: both branch arms must have been taken.
    assert 0 < fp32.offered < 40


def test_ensemble_votes_over_both_members():
    _, result = _run("ensemble", requests=20, rate=100.0)
    _assert_accounted(result)
    assert result.completed == 20
    (acct,) = result.fan_out
    assert acct.spawned == 40  # broadcast: one sub-item per member
    for req in result.completed_requests():
        assert set(req.output) == {"label", "agreed"}


# -- overload ---------------------------------------------------------------

def test_overload_resolves_every_workflow():
    _, result = _run("cascade", requests=120, rate=3000.0,
                     queue_depth=2, deadline_seconds=0.004)
    _assert_accounted(result)
    assert result.completed < result.offered  # pressure really bit
    lost = (result.shed + result.rejected + result.timed_out
            + result.abandoned)
    assert lost > 0
    (acct,) = result.fan_out
    assert acct.spawned == acct.joined + acct.abandoned


def test_warmup_trims_latency_stats_only():
    _, full = _run("cascade", requests=20, rate=100.0, seed=3)
    _, trimmed = _run("cascade", requests=20, rate=100.0, seed=3,
                      warmup=5)
    assert trimmed.completed == full.completed
    assert len(trimmed.e2e_latencies()) == \
        len(full.e2e_latencies()) - 5


# -- the result constructor is the last line of defence ---------------------

def _request(rid, status=COMPLETED):
    req = WorkflowRequest(request_id=rid, arrival_time=0.0)
    req.status = status
    if status == COMPLETED:
        req.completed_at = 0.1
    return req


def test_result_rejects_broken_workflow_accounting():
    with pytest.raises(FlowError, match="accounting broken"):
        WorkflowResult(workflow="wf", offered=3, completed=1, shed=0,
                       rejected=0, timed_out=0, abandoned=1,
                       wall_seconds=1.0)


def test_result_crosschecks_per_request_statuses():
    reqs = [_request(0), _request(1, ABANDONED)]
    with pytest.raises(FlowError, match="tally"):
        WorkflowResult(workflow="wf", offered=2, completed=2, shed=0,
                       rejected=0, timed_out=0, abandoned=0,
                       wall_seconds=1.0, requests=reqs)


def test_result_rejects_leaky_fan_out_ledger():
    acct = FanOutAccount(step="crop", join="merge", spawned=5,
                         joined=3, abandoned=1)
    with pytest.raises(FlowError, match="fan-out accounting"):
        WorkflowResult(workflow="wf", offered=1, completed=1, shed=0,
                       rejected=0, timed_out=0, abandoned=0,
                       wall_seconds=1.0, requests=[_request(0)],
                       fan_out=[acct])
