"""Unit tests for the Channel primitive."""

from repro.sim import Channel, Environment


def test_channel_zero_delay_immediate():
    env = Environment()
    chan = Channel(env)
    got = []

    def proc():
        yield chan.send("msg")
        item = yield chan.recv()
        got.append((env.now, item))

    env.process(proc())
    env.run()
    assert got == [(0.0, "msg")]


def test_channel_constant_delay():
    env = Environment()
    chan = Channel(env, delay=2.5)
    got = []

    def sender():
        yield chan.send("hello")

    def receiver():
        item = yield chan.recv()
        got.append((env.now, item))

    env.process(sender())
    env.process(receiver())
    env.run()
    assert got == [(2.5, "hello")]


def test_channel_size_dependent_delay():
    env = Environment()
    # delay proportional to message "size" field
    chan = Channel(env, delay=lambda m: m["size"] / 100.0)
    got = []

    def sender():
        yield chan.send({"size": 300})

    def receiver():
        item = yield chan.recv()
        got.append(env.now)

    env.process(sender())
    env.process(receiver())
    env.run()
    assert got == [3.0]


def test_channel_preserves_fifo_with_equal_delays():
    env = Environment()
    chan = Channel(env, delay=1.0)
    got = []

    def sender():
        for i in range(3):
            chan.send(i)
            yield env.timeout(0.1)

    def receiver():
        for _ in range(3):
            item = yield chan.recv()
            got.append(item)

    env.process(sender())
    env.process(receiver())
    env.run()
    assert got == [0, 1, 2]


def test_channel_counters():
    env = Environment()
    chan = Channel(env)

    def proc():
        yield chan.send("a")
        yield chan.send("b")
        yield chan.recv()

    env.process(proc())
    env.run()
    assert chan.sent == 2
    assert chan.received == 1
    assert chan.pending == 1


def test_channel_filtered_recv():
    env = Environment()
    chan = Channel(env)
    got = []

    def proc():
        yield chan.send({"tag": 1})
        yield chan.send({"tag": 2})
        item = yield chan.recv(filter=lambda m: m["tag"] == 2)
        got.append(item["tag"])

    env.process(proc())
    env.run()
    assert got == [2]


def test_channel_capacity_backpressure():
    env = Environment()
    chan = Channel(env, capacity=1)
    send_times = []

    def sender():
        yield chan.send("a")
        send_times.append(env.now)
        yield chan.send("b")
        send_times.append(env.now)

    def receiver():
        yield env.timeout(7)
        yield chan.recv()

    env.process(sender())
    env.process(receiver())
    env.run()
    assert send_times == [0, 7]
