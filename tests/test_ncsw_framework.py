"""Integration tests for the NCSw framework, scheduler and targets."""

import numpy as np
import pytest

from repro.data import ILSVRCValidation, ImageSynthesizer, Preprocessor
from repro.data import SynsetVocabulary
from repro.errors import FrameworkError
from repro.ncsw import (
    ImageFolder,
    IntelCPU,
    IntelVPU,
    NCSw,
    NvGPU,
    SyntheticSource,
)
from repro.nn import get_model
from repro.nn.weights import WeightStore
from repro.vpu import compile_graph


@pytest.fixture(scope="module")
def micro_setup():
    """Pretrained micro network + matching dataset and preprocessor."""
    net = get_model("googlenet-micro")
    synth = ImageSynthesizer(num_classes=10, size=32, noise_sigma=0,
                             jitter_shift=0)
    pp = Preprocessor(input_size=32)
    WeightStore(seed=0, logit_scale=8.0).pretrain(
        net, lambda c: pp(synth.template(c)), num_classes=10)
    vocab = SynsetVocabulary(num_classes=10)
    ds = ILSVRCValidation(vocab, synth.with_noise(25.0), num_images=40,
                          subset_size=20)
    return net, ds, pp


@pytest.fixture(scope="module")
def micro_graph(micro_setup):
    net, _, _ = micro_setup
    return compile_graph(net)


def _fw(micro_setup, micro_graph, functional=True, vpus=2):
    net, ds, pp = micro_setup
    fw = NCSw()
    fw.add_source("val0", ImageFolder(ds, 0, pp))
    fw.add_source("synth", SyntheticSource(24))
    fw.add_target("cpu", IntelCPU(net, functional=functional))
    fw.add_target("gpu", NvGPU(net, functional=functional))
    fw.add_target("vpu", IntelVPU(graph=micro_graph, num_devices=vpus,
                                  functional=functional))
    return fw


def test_registration_guards(micro_setup, micro_graph):
    fw = _fw(micro_setup, micro_graph)
    with pytest.raises(FrameworkError):
        fw.add_source("val0", SyntheticSource(1))
    with pytest.raises(FrameworkError):
        fw.add_target("cpu", IntelCPU(micro_setup[0]))
    with pytest.raises(FrameworkError):
        fw.run("nope", "cpu")
    with pytest.raises(FrameworkError):
        fw.run("val0", "nope")
    with pytest.raises(FrameworkError):
        fw.run("val0", "cpu", batch_size=0)


def test_cpu_run_functional(micro_setup, micro_graph):
    fw = _fw(micro_setup, micro_graph)
    result = fw.run("val0", "cpu", batch_size=4)
    assert result.images == 20
    assert result.wall_seconds > 0
    # All predictions scored; calibrated noise keeps error moderate.
    assert 0.0 <= result.top1_error() <= 0.7
    assert result.decode_seconds_excluded > 0


def test_vpu_run_functional_matches_fp16(micro_setup, micro_graph):
    net, ds, pp = micro_setup
    fw = _fw(micro_setup, micro_graph)
    result = fw.run("val0", "vpu", batch_size=2)
    assert result.images == 20
    # VPU records carry device names and balanced round-robin counts.
    counts = result.per_device_counts()
    assert set(counts) == {"vpu0", "vpu1"}
    assert counts["vpu0"] == counts["vpu1"] == 10
    # Spot-check one record against the reference FP16 path.
    from repro.numerics import PrecisionPolicy
    rec = result.records[0]
    item_tensor = pp(ds.pixels(rec.image_id))
    probs = net.forward(item_tensor[None], PrecisionPolicy.fp16())
    assert rec.predicted == int(probs.ravel().argmax())


def test_cpu_vpu_error_rates_close(micro_setup, micro_graph):
    """FP32 (CPU) and FP16 (VPU) disagree on at most a few images."""
    fw = _fw(micro_setup, micro_graph)
    e_cpu = fw.run("val0", "cpu", batch_size=4).top1_error()
    e_vpu = fw.run("val0", "vpu", batch_size=4).top1_error()
    assert abs(e_cpu - e_vpu) <= 0.15


def test_timing_only_run(micro_setup, micro_graph):
    fw = _fw(micro_setup, micro_graph, functional=False)
    result = fw.run("synth", "vpu", batch_size=2)
    assert result.images == 24
    assert result.throughput() > 0
    with pytest.raises(FrameworkError):
        result.top1_error()


def test_multi_vpu_throughput_scales(micro_setup, micro_graph):
    net, _, _ = micro_setup
    fw = NCSw()
    fw.add_source("synth", SyntheticSource(32))
    for n in (1, 4):
        fw.add_target(f"vpu{n}", IntelVPU(graph=micro_graph,
                                          num_devices=n,
                                          functional=False))
    t1 = fw.run("synth", "vpu1", batch_size=1).throughput()
    t4 = fw.run("synth", "vpu4", batch_size=4).throughput()
    assert t4 > 2.0 * t1  # strong scaling with stick count


def test_overlap_beats_serialized(micro_setup, micro_graph):
    fw = NCSw()
    fw.add_source("synth", SyntheticSource(16))
    fw.add_target("ov", IntelVPU(graph=micro_graph, num_devices=1,
                                 functional=False, overlap=True))
    fw.add_target("ser", IntelVPU(graph=micro_graph, num_devices=1,
                                  functional=False, overlap=False))
    t_ov = fw.run("synth", "ov", batch_size=8).wall_seconds
    t_ser = fw.run("synth", "ser", batch_size=8).wall_seconds
    assert t_ov < t_ser  # transfer/compute overlap pays


def test_run_limit(micro_setup, micro_graph):
    fw = _fw(micro_setup, micro_graph, functional=False)
    result = fw.run("synth", "cpu", batch_size=4, limit=6)
    assert result.images == 6


def test_run_group_splits_items(micro_setup, micro_graph):
    fw = _fw(micro_setup, micro_graph, functional=False)
    results = fw.run_group("synth", ["cpu", "gpu"], batch_size=4)
    assert results["cpu"].images == 12
    assert results["gpu"].images == 12
    assert results["cpu"].wall_seconds > 0
    with pytest.raises(FrameworkError):
        fw.run_group("synth", [])


def test_run_group_empty_split_marked(micro_setup, micro_graph):
    # Two items over three targets: round-robin starves the last one.
    fw = _fw(micro_setup, micro_graph, functional=False)
    results = fw.run_group("synth", ["cpu", "gpu", "vpu"],
                           batch_size=4, limit=2)
    assert results["cpu"].images == 1
    assert results["gpu"].images == 1
    empty = results["vpu"]
    assert empty.empty and empty.images == 0
    assert "empty" in empty.summary()
    with pytest.raises(FrameworkError):
        empty.throughput()
    with pytest.raises(FrameworkError):
        empty.seconds_per_image()
    # Populated results are not flagged.
    assert not results["cpu"].empty


def test_gpu_faster_than_cpu_at_batch8(micro_setup, micro_graph):
    fw = _fw(micro_setup, micro_graph, functional=False)
    t_cpu = fw.run("synth", "cpu", batch_size=8).throughput()
    t_gpu = fw.run("synth", "gpu", batch_size=8).throughput()
    assert t_gpu > t_cpu


def test_intel_vpu_validation(micro_setup, micro_graph):
    with pytest.raises(FrameworkError):
        IntelVPU()  # neither network nor graph
    with pytest.raises(FrameworkError):
        IntelVPU(graph=micro_graph, num_devices=0)
    with pytest.raises(FrameworkError):
        IntelVPU(graph=micro_graph, num_devices=9)
    target = IntelVPU(graph=micro_graph, num_devices=3)
    with pytest.raises(FrameworkError):
        target.process_batch([])  # prepare() not called


def test_vpu_tdp_scales_with_devices(micro_graph):
    assert IntelVPU(graph=micro_graph, num_devices=1).tdp_watts == 2.5
    assert IntelVPU(graph=micro_graph, num_devices=8).tdp_watts == 20.0


def test_host_target_tdp(micro_setup, micro_graph):
    net, _, _ = micro_setup
    assert IntelCPU(net).tdp_watts == 80.0
    assert NvGPU(net).tdp_watts == 80.0
