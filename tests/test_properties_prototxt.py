"""Property tests: random layer stacks survive serialisation intact.

Hypothesis generates arbitrary valid conv/pool/relu/lrn stacks; the
prototxt round-trip must preserve the topology (shapes, MAC counts,
layer names) and the compiled-graph round-trip must preserve timing.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import (
    Convolution,
    LRN,
    Network,
    Pooling,
    PoolMethod,
    ReLU,
    Softmax,
)
from repro.nn.prototxt import from_prototxt, to_prototxt
from repro.nn.weights import initialize_network
from repro.tensors import BlobShape
from repro.vpu import CompiledGraph, compile_graph

# One random layer step: kind plus its parameters.
_STEP = st.sampled_from(["conv", "pool", "relu", "lrn"])


@st.composite
def random_network(draw):
    """A random but always-valid stack over a random input geometry."""
    size = draw(st.sampled_from([16, 24, 32]))
    channels = draw(st.integers(1, 4))
    net = Network("rand", "data", BlobShape(1, channels, size, size))
    cur_blob = "data"
    cur_c, cur_hw = channels, size
    n_steps = draw(st.integers(1, 6))
    for i in range(n_steps):
        kind = draw(_STEP)
        name = f"{kind}{i}"
        if kind == "conv":
            k = draw(st.sampled_from([1, 3]))
            out_c = draw(st.integers(1, 6))
            net.add(Convolution(name, cur_blob, name,
                                num_output=out_c, kernel_size=k,
                                in_channels=cur_c, pad=k // 2))
            cur_blob, cur_c = name, out_c
        elif kind == "pool" and cur_hw >= 4:
            net.add(Pooling(name, cur_blob, name,
                            method=draw(st.sampled_from(
                                [PoolMethod.MAX, PoolMethod.AVE])),
                            kernel_size=2, stride=2))
            cur_blob = name
            cur_hw = net.infer_shapes()[name].h
        elif kind == "relu":
            net.add(ReLU(name, cur_blob, cur_blob))  # in-place
        elif kind == "lrn" and cur_c >= 1:
            net.add(LRN(name, cur_blob, name))
            cur_blob = name
    net.add(Softmax("prob", cur_blob, "prob"))
    return net


@given(random_network())
@settings(max_examples=40, deadline=None)
def test_property_prototxt_roundtrip_preserves_topology(net):
    rebuilt = from_prototxt(to_prototxt(net))
    assert [l.name for l in rebuilt.layers] == [
        l.name for l in net.layers]
    assert rebuilt.infer_shapes() == net.infer_shapes()
    assert rebuilt.total_macs(1) == net.total_macs(1)


@given(random_network())
@settings(max_examples=25, deadline=None)
def test_property_compiled_graph_roundtrip_preserves_timing(net):
    initialize_network(net)
    g = compile_graph(net)
    g2 = CompiledGraph.from_bytes(g.to_bytes())
    assert g2.total_cycles == g.total_cycles
    assert g2.input_shape == g.input_shape
    x = np.zeros((1,) + net.input_shape.as_tuple()[1:],
                 dtype=np.float32)
    np.testing.assert_array_equal(g.network.forward(x),
                                  g2.network.forward(x))


@given(random_network())
@settings(max_examples=25, deadline=None)
def test_property_random_networks_compile_and_validate(net):
    from repro.vpu.compiler import validate_plan
    initialize_network(net)
    g = compile_graph(net)
    v = validate_plan(g)
    assert v.layers_checked == len(g.layers)
    assert g.inference_seconds > 0