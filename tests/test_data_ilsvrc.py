"""Tests for the ILSVRC validation dataset, decode and preprocessing."""

import numpy as np
import pytest

from repro.data import (
    ILSVRCValidation,
    ImageSynthesizer,
    JPEGDecoder,
    Preprocessor,
    SynsetVocabulary,
)
from repro.data.preprocess import ILSVRC2012_MEAN_BGR, resize_bilinear
from repro.errors import DatasetError


def _dataset(num_images=100, subset_size=20, classes=10, size=32):
    vocab = SynsetVocabulary(num_classes=classes)
    synth = ImageSynthesizer(num_classes=classes, size=size,
                             noise_sigma=20)
    return ILSVRCValidation(vocab, synth, num_images=num_images,
                            subset_size=subset_size)


# --- dataset ---------------------------------------------------------------

def test_dataset_length_and_subsets():
    ds = _dataset()
    assert len(ds) == 100
    assert ds.num_subsets == 5
    assert list(ds.subset_ids(0)) == list(range(1, 21))
    assert list(ds.subset_ids(4)) == list(range(81, 101))


def test_paper_scale_structure():
    ds = _dataset(num_images=50_000, subset_size=10_000, classes=1000,
                  size=32)
    assert ds.num_subsets == 5
    rec = ds.record(1)
    assert rec.filename == "ILSVRC2012_val_00000001.JPEG"
    assert ds.record(50_000).image_id == 50_000


def test_record_validation():
    ds = _dataset()
    with pytest.raises(DatasetError):
        ds.record(0)
    with pytest.raises(DatasetError):
        ds.record(101)
    with pytest.raises(DatasetError):
        ds.subset_ids(5)


def test_labels_balanced():
    ds = _dataset(num_images=100, subset_size=20, classes=10)
    labels = [ds.record(i).label for i in range(1, 101)]
    counts = np.bincount(labels, minlength=10)
    assert np.all(counts == 10)  # perfectly balanced


def test_labels_deterministic():
    a = _dataset()
    b = _dataset()
    assert [a.record(i).label for i in range(1, 101)] == \
           [b.record(i).label for i in range(1, 101)]


def test_record_wnid_matches_vocab():
    ds = _dataset()
    rec = ds.record(5)
    assert ds.vocabulary[rec.label].wnid == rec.wnid


def test_pixels_lazy_and_deterministic():
    ds = _dataset()
    np.testing.assert_array_equal(ds.pixels(7), ds.pixels(7))
    assert ds.pixels(7).shape == (32, 32, 3)


def test_annotation_within_bounds():
    ds = _dataset()
    for i in (1, 50, 100):
        ann = ds.annotation(i)
        assert 0 <= ann.xmin < ann.xmax <= 32
        assert 0 <= ann.ymin < ann.ymax <= 32
        assert ann.wnid == ds.record(i).wnid


def test_iter_subset_with_limit():
    ds = _dataset()
    recs = list(ds.iter_subset(1, limit=5))
    assert len(recs) == 5
    assert recs[0].image_id == 21


def test_labels_for():
    ds = _dataset()
    recs = list(ds.iter_subset(0, limit=3))
    labels = ds.labels_for(recs)
    assert labels.tolist() == [r.label for r in recs]


def test_mismatched_vocab_synth_rejected():
    vocab = SynsetVocabulary(num_classes=10)
    synth = ImageSynthesizer(num_classes=5, size=32)
    with pytest.raises(DatasetError):
        ILSVRCValidation(vocab, synth, num_images=10, subset_size=5)


def test_subset_size_must_divide():
    vocab = SynsetVocabulary(num_classes=10)
    synth = ImageSynthesizer(num_classes=10, size=32)
    with pytest.raises(DatasetError):
        ILSVRCValidation(vocab, synth, num_images=100, subset_size=30)


# --- decoder -------------------------------------------------------------------

def test_decoder_produces_pixels_and_tracks_time():
    synth = ImageSynthesizer(num_classes=5, size=32)
    dec = JPEGDecoder(synth)
    img = dec.decode(2, 10)
    np.testing.assert_array_equal(img, synth.sample(2, 10))
    assert dec.stats.images == 1
    assert dec.stats.seconds > 0
    assert dec.stats.ms_per_image > 0
    dec.reset_stats()
    assert dec.stats.images == 0
    assert dec.stats.ms_per_image == 0.0


def test_decoder_time_scales_with_pixels():
    small = JPEGDecoder(ImageSynthesizer(num_classes=2, size=32))
    large = JPEGDecoder(ImageSynthesizer(num_classes=2, size=128))
    small.decode(0, 1)
    large.decode(0, 1)
    assert large.stats.seconds > small.stats.seconds


# --- preprocessing ---------------------------------------------------------------

def test_resize_identity():
    img = np.random.default_rng(0).integers(
        0, 256, size=(16, 16, 3), dtype=np.uint8).astype(np.uint8)
    out = resize_bilinear(img, 16)
    np.testing.assert_array_equal(out, img)
    assert out is not img  # copy, not view


def test_resize_up_down():
    img = np.zeros((8, 8, 3), dtype=np.uint8)
    img[:4] = 200
    up = resize_bilinear(img, 32)
    assert up.shape == (32, 32, 3)
    assert up[0, 0, 0] == 200 and up[-1, -1, 0] == 0
    down = resize_bilinear(up, 8)
    assert down.shape == (8, 8, 3)


def test_resize_constant_image_preserved():
    img = np.full((10, 10, 3), 77, dtype=np.uint8)
    out = resize_bilinear(img, 23)
    assert np.all(out == 77)


def test_preprocessor_output_shape_and_scale():
    pp = Preprocessor(input_size=32)
    img = np.full((64, 64, 3), 128, dtype=np.uint8)
    out = pp(img)
    assert out.shape == (3, 32, 32)
    assert out.dtype == np.float32
    # value = (128 - mean_bgr[c]) / 128 for each channel
    for c in range(3):
        expected = (128 - ILSVRC2012_MEAN_BGR[c]) / 128
        np.testing.assert_allclose(out[c], expected, rtol=1e-5)


def test_preprocessor_bgr_flip():
    # Pure red RGB image: after RGB->BGR flip, channel 0 (B) is 0 and
    # channel 2 (R) is 255.
    img = np.zeros((8, 8, 3), dtype=np.uint8)
    img[:, :, 0] = 255  # R
    out = Preprocessor(input_size=8, mean_bgr=(0, 0, 0), scale=1.0)(img)
    assert np.all(out[0] == 0)
    assert np.all(out[2] == 255)


def test_preprocessor_batch():
    pp = Preprocessor(input_size=16)
    imgs = [np.zeros((16, 16, 3), dtype=np.uint8) for _ in range(4)]
    batch = pp.batch(imgs)
    assert batch.shape == (4, 3, 16, 16)
    with pytest.raises(DatasetError):
        pp.batch([])


def test_preprocessor_fp16_payload():
    pp = Preprocessor(input_size=8)
    chw = pp(np.zeros((8, 8, 3), dtype=np.uint8))
    half = pp.to_fp16_payload(chw)
    assert half.dtype == np.float16
    assert half.nbytes == chw.nbytes // 2


def test_preprocessor_rejects_bad_input():
    pp = Preprocessor(input_size=8)
    with pytest.raises(DatasetError):
        pp(np.zeros((8, 8), dtype=np.uint8))
    with pytest.raises(DatasetError):
        pp(np.zeros((8, 8, 4), dtype=np.uint8))
