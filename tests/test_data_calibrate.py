"""Integration tests: noise calibration against a real (micro) network."""

import numpy as np
import pytest

from repro.data import ImageSynthesizer, Preprocessor
from repro.data.calibrate import CalibrationResult, calibrate_noise
from repro.nn import get_model
from repro.nn.weights import WeightStore
from repro.numerics import PrecisionPolicy


@pytest.fixture(scope="module")
def pretrained_micro():
    """Micro GoogLeNet pretrained on 10 synthetic class templates."""
    net = get_model("googlenet-micro")
    # The 32px/0.125-width model is very shift-sensitive; disable the
    # spatial jitter so noise_sigma is the only difficulty knob here.
    synth = ImageSynthesizer(num_classes=10, size=48, noise_sigma=0,
                             jitter_shift=0)
    pp = Preprocessor(input_size=32)
    WeightStore(seed=0, logit_scale=8.0).pretrain(
        net, lambda c: pp(synth.template(c)), num_classes=10)
    return net, synth, pp


def test_zero_noise_error_is_low(pretrained_micro):
    net, synth, pp = pretrained_micro
    rng = np.random.default_rng(0)
    labels = rng.integers(0, 10, size=128)
    s = synth.with_noise(0.0)
    wrong = 0
    for start in range(0, 128, 32):
        chunk = labels[start:start + 32]
        x = np.stack([pp(s.sample(int(c), 1000 + start + i))
                      for i, c in enumerate(chunk)])
        pred, _ = net.predict(x)
        wrong += int(np.sum(pred != chunk))
    assert wrong / 128 < 0.25


def test_error_monotone_in_noise(pretrained_micro):
    net, synth, pp = pretrained_micro

    def err(sigma, n=96):
        rng = np.random.default_rng(1)
        labels = rng.integers(0, 10, size=n)
        s = synth.with_noise(sigma)
        wrong = 0
        for start in range(0, n, 32):
            chunk = labels[start:start + 32]
            x = np.stack([pp(s.sample(int(c), 2000 + start + i))
                          for i, c in enumerate(chunk)])
            pred, _ = net.predict(x)
            wrong += int(np.sum(pred != chunk))
        return wrong / n

    e_low, e_high = err(5), err(150)
    assert e_low < e_high


def test_calibration_converges_to_target(pretrained_micro):
    net, synth, pp = pretrained_micro
    res = calibrate_noise(net, synth, pp, target_error=0.32,
                          n_samples=128, tolerance=0.06)
    assert isinstance(res, CalibrationResult)
    assert res.noise_sigma > 0
    assert abs(res.achieved_error - 0.32) <= 0.12  # sampling noise
    assert res.target_error == 0.32


def test_calibration_rejects_bad_target(pretrained_micro):
    net, synth, pp = pretrained_micro
    with pytest.raises(ValueError):
        calibrate_noise(net, synth, pp, target_error=0.0)
    with pytest.raises(ValueError):
        calibrate_noise(net, synth, pp, target_error=1.0)


def test_fp16_delta_is_small_at_calibrated_noise(pretrained_micro):
    """The paper's §IV-B result: FP16 changes top-1 error negligibly."""
    net, synth, pp = pretrained_micro
    s = synth.with_noise(30.0)
    rng = np.random.default_rng(3)
    labels = rng.integers(0, 10, size=128)
    delta_sum = 0
    conf_diffs = []
    for start in range(0, 128, 32):
        chunk = labels[start:start + 32]
        x = np.stack([pp(s.sample(int(c), 4000 + start + i))
                      for i, c in enumerate(chunk)])
        p32, c32 = net.predict(x, PrecisionPolicy.fp32())
        p16, c16 = net.predict(x, PrecisionPolicy.fp16())
        delta_sum += int(np.sum(p16 != chunk)) - int(np.sum(p32 != chunk))
        both = (p32 == chunk) & (p16 == chunk)
        conf_diffs.extend(np.abs(c32[both] - c16[both]))
    # Error delta within a few percentage points (paper: 0.09 %).
    assert abs(delta_sum) / 128 < 0.05
    # Confidence difference small but nonzero (paper: 0.44 %).
    assert 0 < np.mean(conf_diffs) < 0.05
