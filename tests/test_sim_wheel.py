"""Dual-kernel equivalence and lazy-delete compaction.

The event wheel (:class:`repro.sim.wheel.CalendarQueue`) is a drop-in
replacement for the binary heap: same ``(time, priority, seq)`` fire
order, byte for byte.  The property test here drives one randomized
schedule — timeouts, store puts/gets, cancels, exotic priorities,
same-instant ties — through both kernels and asserts the traces and
final store states are identical.  The compaction tests pin the
lazy-delete contract: cancelling most of a deep pending set keeps the
queue (and the store waiter lists) bounded instead of accumulating
tombstones.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.sim import (
    CANCELLED,
    SCHEDULER_ENV_VAR,
    SCHEDULERS,
    Environment,
    Store,
)

KERNELS = ("heap", "wheel")

#: One program step: (opcode, delay-in-eighths, operand).
_OP = st.tuples(st.integers(0, 6), st.integers(0, 24),
                st.integers(0, 5))


def _run_program(ops, scheduler):
    """Interpret *ops* on a fresh kernel; returns (trace, state).

    The trace appends one entry per fired waiter in callback order,
    so comparing traces compares the kernel's fire order exactly.
    """
    env = Environment(scheduler=scheduler)
    store = Store(env, capacity=3)
    trace = []
    timeouts = []
    gets = []

    def waiter(tag, ev):
        value = yield ev
        trace.append((tag, round(env.now, 9), value))

    def driver():
        for i, (op, delay, operand) in enumerate(ops):
            d = delay / 8.0
            if op == 0:      # plain timeout (NORMAL priority)
                t = env.timeout(d, value=i)
                timeouts.append(t)
                env.process(waiter(f"t{i}", t))
            elif op == 1:    # now-event chain (URGENT priority)
                ev = env.event()
                env.process(waiter(f"u{i}", ev))
                ev.succeed(i)
            elif op == 2:    # store put (may pend when full)
                env.process(waiter(f"p{i}", store.put(i)))
            elif op == 3:    # store get (may pend when empty)
                g = store.get()
                gets.append(g)
                env.process(waiter(f"g{i}", g))
            elif op == 4:    # cancel an outstanding timeout
                if timeouts:
                    t = timeouts.pop(operand % len(timeouts))
                    if not t._processed:
                        env.cancel(t)
            elif op == 5:    # cancel an outstanding store get
                if gets:
                    store.cancel(gets.pop(operand % len(gets)))
            elif op == 6:    # exotic priority, behind NORMAL ties
                ev = env.event()
                ev._value = i
                ev._ok = True
                env.process(waiter(f"x{i}", ev))
                env.schedule(ev, priority=2 + operand, delay=d)
            if operand == 0 and d > 0.0:
                yield env.timeout(d / 2.0)   # advance the clock
        trace.append(("driver-done", round(env.now, 9), None))

    env.process(driver())
    env.run()
    state = (list(store.items), env._seq, round(env.now, 9),
             sum(1 for g in gets if g._value is CANCELLED))
    return trace, state


@settings(max_examples=60, deadline=None)
@given(st.lists(_OP, min_size=1, max_size=40))
def test_property_dual_kernel_identical(ops):
    """One schedule, two kernels, identical fire order and state."""
    heap_trace, heap_state = _run_program(ops, "heap")
    wheel_trace, wheel_state = _run_program(ops, "wheel")
    assert heap_trace == wheel_trace
    assert heap_state == wheel_state


@pytest.mark.parametrize("scheduler", KERNELS)
def test_cancel_heavy_timeouts_stay_compacted(scheduler):
    """The serve pattern — most deadline timers are cancelled by
    completion — must not accumulate tombstones in the queue."""
    env = Environment(scheduler=scheduler)
    fired = []

    def main():
        survivor = env.timeout(500.0, value="survivor")
        doomed = [env.timeout(100.0 + i * 1e-4) for i in range(5000)]
        for t in doomed:
            env.cancel(t)
        # Lazy delete compacts once tombstones outnumber live
        # entries: the 5000 cancelled timers must not linger.
        depth = (len(env._queue) if env._wheel is None
                 else len(env._wheel))
        assert depth < 100
        fired.append((yield survivor))

    env.run(until=env.process(main()))
    assert fired == ["survivor"]
    assert env.now == 500.0


@pytest.mark.parametrize("scheduler", KERNELS)
def test_cancelled_timeout_never_fires(scheduler):
    env = Environment(scheduler=scheduler)
    fired = []

    def waiter(ev):
        fired.append((yield ev))

    def main():
        doomed = env.timeout(1.0, value="doomed")
        env.process(waiter(doomed))
        yield env.timeout(0.5)   # the waiter is subscribed by now
        env.cancel(doomed)
        fired.append((yield env.timeout(2.0, value="kept")))
        env.cancel(doomed)       # double-cancel is a no-op

    env.run(until=env.process(main()))
    assert fired == ["kept"]


@pytest.mark.parametrize("scheduler", KERNELS)
def test_cancel_heavy_store_gets_stay_compacted(scheduler):
    """Store-side lazy delete: cancelled getters are tombstoned in
    O(1) and compacted away, and a cancelled get never steals."""
    env = Environment(scheduler=scheduler)
    store = Store(env)
    gets = [store.get() for _ in range(4000)]
    for g in gets[1:]:
        store.cancel(g)
    assert len(store._getters) < 100
    received = []

    def main():
        yield store.put("item")
        received.append(gets[0].value)

    env.run(until=env.process(main()))
    assert received == ["item"]
    assert all(g.value is CANCELLED for g in gets[1:])


def test_store_cancel_rejects_foreign_events():
    env = Environment()
    store = Store(env)
    with pytest.raises(SimulationError):
        store.cancel(env.event())


def test_scheduler_registry_and_validation():
    assert set(SCHEDULERS) == {"heap", "wheel"}
    with pytest.raises(SimulationError):
        Environment(scheduler="splay-tree")


def test_scheduler_env_var_default(monkeypatch):
    monkeypatch.setenv(SCHEDULER_ENV_VAR, "wheel")
    assert Environment()._wheel is not None
    monkeypatch.setenv(SCHEDULER_ENV_VAR, "heap")
    assert Environment()._wheel is None
    # Explicit argument wins over the environment.
    monkeypatch.setenv(SCHEDULER_ENV_VAR, "heap")
    assert Environment(scheduler="wheel")._wheel is not None


@pytest.mark.parametrize("scheduler", KERNELS)
def test_far_future_and_past_events_fire_in_order(scheduler):
    """Overflow heap coverage: events far beyond the wheel horizon
    and same-instant re-schedules keep global order."""
    env = Environment(scheduler=scheduler)
    fired = []

    def waiter(tag, ev):
        yield ev
        fired.append((tag, env.now))

    env.process(waiter("near", env.timeout(0.001)))
    env.process(waiter("far", env.timeout(1e6)))
    env.process(waiter("mid", env.timeout(42.0)))
    env.run()
    assert fired == [("near", 0.001), ("mid", 42.0), ("far", 1e6)]
