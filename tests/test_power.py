"""Tests for the power package: TDP registry and Eq. (1) metrics."""

import pytest

from repro.errors import PowerError
from repro.power import (
    DEFAULT_TDP,
    EnergyAccount,
    TDP,
    TDPRegistry,
    tdp_reduction,
    throughput_per_watt,
)


def test_default_registry_paper_values():
    assert DEFAULT_TDP.watts("cpu") == 80.0
    assert DEFAULT_TDP.watts("gpu") == 80.0
    assert DEFAULT_TDP.watts("vpu_chip") == pytest.approx(0.9)
    assert DEFAULT_TDP.watts("ncs") == pytest.approx(2.5)


def test_registry_count_scaling():
    assert DEFAULT_TDP.watts("ncs", count=8) == pytest.approx(20.0)
    with pytest.raises(PowerError):
        DEFAULT_TDP.watts("ncs", count=0)


def test_registry_lookup_and_contains():
    assert "cpu" in DEFAULT_TDP
    assert "tpu" not in DEFAULT_TDP
    entry = DEFAULT_TDP.get("vpu_chip")
    assert "Myriad" in entry.source
    with pytest.raises(PowerError):
        DEFAULT_TDP.get("tpu")
    assert DEFAULT_TDP.names() == ["cpu", "gpu", "ncs", "vpu_chip"]


def test_registry_duplicate_rejected():
    with pytest.raises(PowerError):
        TDPRegistry([TDP("a", 1, "x"), TDP("a", 2, "y")])


def test_tdp_validation():
    with pytest.raises(PowerError):
        TDP("bad", 0, "nowhere")


def test_throughput_per_watt_eq1():
    # Paper Fig. 8a: one VPU does 9.93 img/s on a 2.5 W stick.
    assert throughput_per_watt(9.93, 2.5) == pytest.approx(3.97,
                                                           abs=0.01)
    # CPU: 44.0 img/s at 80 W -> 0.55.
    assert throughput_per_watt(44.0, 80.0) == pytest.approx(0.55)
    with pytest.raises(PowerError):
        throughput_per_watt(1.0, 0.0)
    with pytest.raises(PowerError):
        throughput_per_watt(-1.0, 1.0)


def test_tdp_reduction_headline():
    # 80 W CPU vs 8 chips x 0.9 W: the paper's "up to 8x" headline
    # (11x at pure chip TDP, 4x counting whole sticks).
    assert tdp_reduction(80.0, 8 * 0.9) == pytest.approx(11.1, abs=0.1)
    assert tdp_reduction(80.0, 8 * 2.5) == pytest.approx(4.0)
    with pytest.raises(PowerError):
        tdp_reduction(0, 1)


def test_energy_account():
    acct = EnergyAccount()
    acct.add("vpu", 2.5, 10.0)
    acct.add("cpu", 80.0, 1.0)
    acct.add("vpu", 2.5, 2.0)
    assert acct.joules == pytest.approx(25 + 80 + 5)
    by = acct.by_label()
    assert by["vpu"] == pytest.approx(30)
    assert by["cpu"] == pytest.approx(80)
    assert acct.images_per_joule(110) == pytest.approx(1.0)


def test_energy_account_validation():
    acct = EnergyAccount()
    with pytest.raises(PowerError):
        acct.add("x", -1, 1)
    with pytest.raises(PowerError):
        acct.images_per_joule(10)
    acct.add("x", 1, 1)
    with pytest.raises(PowerError):
        acct.images_per_joule(-1)
