"""Unit + property tests for FP16 emulation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.numerics import (
    FP16_MAX,
    FP16_MIN_NORMAL,
    from_half,
    is_representable_fp16,
    round_fp16,
    to_half,
)
from repro.numerics.half import (
    FP16_EPS,
    FP16_MIN_SUBNORMAL,
    dynamic_range_bits,
    quantization_error,
)


def test_constants_match_ieee_binary16():
    assert FP16_MAX == 65504.0
    assert FP16_MIN_NORMAL == pytest.approx(2 ** -14)
    assert FP16_MIN_SUBNORMAL == pytest.approx(2 ** -24)
    assert FP16_EPS == pytest.approx(2 ** -10)


def test_to_half_dtype():
    out = to_half(np.array([1.0, 2.0]))
    assert out.dtype == np.float16


def test_round_trip_exact_for_small_integers():
    x = np.arange(-512, 513, dtype=np.float32)
    assert np.array_equal(from_half(to_half(x)), x)


def test_overflow_to_inf_without_saturation():
    out = to_half(np.array([1e6, -1e6], dtype=np.float32))
    assert np.isinf(out[0]) and out[0] > 0
    assert np.isinf(out[1]) and out[1] < 0


def test_saturating_mode_clamps():
    out = to_half(np.array([1e6, -1e6], dtype=np.float32), saturate=True)
    assert out[0] == np.float16(FP16_MAX)
    assert out[1] == np.float16(-FP16_MAX)


def test_saturating_mode_passes_nan():
    out = to_half(np.array([np.nan], dtype=np.float32), saturate=True)
    assert np.isnan(out[0])


def test_round_fp16_idempotent():
    x = np.random.default_rng(0).normal(size=100).astype(np.float32)
    once = round_fp16(x)
    assert np.array_equal(round_fp16(once), once)


def test_round_fp16_returns_float32():
    assert round_fp16(np.array([1.1])).dtype == np.float32


def test_round_to_nearest_even():
    # 2049 is exactly between fp16-representable 2048 and 2050;
    # ties go to the even significand (2048).
    assert float(to_half(np.float32(2049.0))) == 2048.0
    # 2051 is between 2050 and 2052 -> even is 2052.
    assert float(to_half(np.float32(2051.0))) == 2052.0


def test_is_representable():
    assert is_representable_fp16(1.0)
    assert is_representable_fp16(0.5)
    assert is_representable_fp16(65504.0)
    assert not is_representable_fp16(1e-10)  # underflows to 0
    assert not is_representable_fp16(0.1)    # not a dyadic rational
    assert not is_representable_fp16(1e6)    # overflows to inf
    assert is_representable_fp16(float("nan"))


def test_quantization_error_zero_for_representable():
    x = np.array([0.0, 1.0, -2.5, 1024.0], dtype=np.float32)
    assert np.all(quantization_error(x) == 0)


def test_quantization_error_bounded_by_half_ulp():
    rng = np.random.default_rng(1)
    x = rng.uniform(1.0, 2.0, size=1000).astype(np.float32)
    # In [1, 2), fp16 ULP is 2^-10; round-to-nearest error <= half ULP.
    assert np.all(quantization_error(x) <= 2 ** -11 + 1e-12)


def test_dynamic_range_bits():
    x = np.array([1.0, 1024.0])
    assert dynamic_range_bits(x) == pytest.approx(10.0)
    assert dynamic_range_bits(np.zeros(4)) == 0.0


@given(st.floats(min_value=-60000, max_value=60000,
                 allow_nan=False, allow_infinity=False))
@settings(max_examples=200, deadline=None)
def test_property_round_fp16_idempotent_scalar(x):
    once = round_fp16(np.float32(x))
    assert np.array_equal(round_fp16(once), once)


@given(st.floats(min_value=-60000, max_value=60000,
                 allow_nan=False, allow_infinity=False))
@settings(max_examples=200, deadline=None)
def test_property_rounding_error_within_relative_bound(x):
    # fp16 has 11 significand bits -> relative error <= 2^-11 for
    # values in the normal range.
    if abs(x) < FP16_MIN_NORMAL:
        return
    r = float(round_fp16(np.float32(x)))
    assert abs(r - np.float32(x)) <= abs(np.float32(x)) * 2 ** -11 * 1.0001


@given(st.floats(min_value=-60000, max_value=60000, allow_nan=False),
       st.floats(min_value=-60000, max_value=60000, allow_nan=False))
@settings(max_examples=200, deadline=None)
def test_property_rounding_is_monotone(a, b):
    # Round-to-nearest preserves <= ordering.
    lo, hi = min(a, b), max(a, b)
    assert float(round_fp16(np.float32(lo))) <= float(
        round_fp16(np.float32(hi)))
