"""Per-stage batching tests: each stage batches at its own backend.

The point of running every model stage through its own admission
queue + dynamic batcher + router is that a VPU detect stage and a CPU
classify stage batch independently — the VPU stage at its stick count,
the host stage at the host's preferred 16 — inside one workflow.
These tests pin the batcher caps the coordinator actually wired, via
the stage stacks it retains after a run.
"""

import pytest

from repro.flow import (
    FlowCoordinator,
    InferStep,
    WorkflowSpec,
    build_workflow,
    compile_workflow,
)
from repro.ncsw import IntelCPU, IntelVPU
from repro.nn import get_model
from repro.serve import PoissonWorkload
from repro.vpu import compile_graph


@pytest.fixture(scope="module")
def detect_graph():
    return compile_graph(get_model("tinydet-micro"))


def _run(wf, requests=8, rate=100.0):
    coord = FlowCoordinator(wf, seed=0)
    coord.run(PoissonWorkload(rate=rate, seed=0), requests)
    return coord


def test_cascade_stages_batch_at_their_own_backends():
    wf = build_workflow("cascade", "micro", vpu_devices=3)
    coord = _run(wf)
    # VPU detect stage: cap = stick count; CPU classify stage: the
    # host target's preferred 16.  Same workflow, different caps.
    assert coord.stages["detect"].batcher._batch_cap() == 3
    assert coord.stages["classify"].batcher._batch_cap() == 16


def test_vpu_stage_cap_tracks_stick_count():
    for devices in (1, 4):
        wf = build_workflow("monolithic", "micro",
                            vpu_devices=devices)
        coord = _run(wf)
        assert coord.stages["classify"].batcher._batch_cap() \
            == devices


def test_explicit_step_cap_overrides_backend_preference(detect_graph):
    spec = WorkflowSpec("capped")
    spec.add(InferStep(
        "detect",
        targets=lambda: {"vpu": IntelVPU(graph=detect_graph,
                                         num_devices=4,
                                         functional=False)},
        max_batch_size=2))
    coord = _run(compile_workflow(spec))
    assert coord.stages["detect"].batcher._batch_cap() == 2


def test_ensemble_members_keep_their_own_caps():
    wf = build_workflow("ensemble", "micro", vpu_devices=2)
    coord = _run(wf)
    assert coord.stages["classify-vpu"].batcher._batch_cap() == 2
    assert coord.stages["classify-cpu"].batcher._batch_cap() == 16


def test_cpu_stage_actually_forms_multi_request_batches():
    # Overloaded cascade: the classify stage should coalesce fan-out
    # sub-requests into real multi-item batches, not serve them 1:1.
    wf = build_workflow("cascade", "micro", vpu_devices=2)
    coord = FlowCoordinator(wf, seed=0)
    result = coord.run(PoissonWorkload(rate=2000.0, seed=0), 40)
    classify = result.stage("classify").result
    sizes = [r.batch_size for r in classify.completed_requests()
             if r.batch_size is not None]
    assert sizes and max(sizes) > 1


def test_per_stage_queues_are_isolated():
    wf = build_workflow("cascade", "micro", vpu_devices=2)
    coord = _run(wf)
    names = {stage.queue.name for stage in coord.stages.values()}
    assert names == {"flow.detect", "flow.classify"}


def test_stage_batch_caps_are_independent_of_each_other():
    # A tight cap on one stage must not leak into its peer.
    wf = build_workflow("cascade", "micro", vpu_devices=1)
    coord = _run(wf)
    assert coord.stages["detect"].batcher._batch_cap() == 1
    assert coord.stages["classify"].batcher._batch_cap() == 16
