"""``--jobs N`` must be a pure wall-clock knob: merged results are
positionally and numerically identical to the serial run.

The figure drivers only fan out configurations whose serial execution
carries no state between items (jitter-free timing runs, per-subset
functional runs on fresh frameworks), so parallel results can be —
and are — compared for exact equality, not tolerance.
"""

import pytest

from repro.harness import figures
from repro.harness.experiment import parallel_map


def _series_fingerprint(result):
    return [(s.label, s.x, s.y, s.yerr) for s in result.series]


# --- parallel_map mechanics ---------------------------------------------------

def test_parallel_map_serial_fallback():
    assert parallel_map(abs, [-1, 2, -3], jobs=1) == [1, 2, 3]
    assert parallel_map(abs, [], jobs=4) == []
    assert parallel_map(abs, [-7], jobs=4) == [7]


def test_parallel_map_preserves_order():
    items = list(range(20))
    assert parallel_map(str, items, jobs=3) == [str(i) for i in items]


def test_parallel_map_serial_raises():
    def boom(_):
        raise RuntimeError("worker failed")

    with pytest.raises(RuntimeError, match="worker failed"):
        parallel_map(boom, [1, 2], jobs=1)


# --- figure equivalence -------------------------------------------------------

@pytest.mark.parametrize("fig,kwargs", [
    (figures.fig6a_throughput_per_subset,
     {"num_subsets": 2, "images_per_subset": 24}),
    (figures.fig6b_normalized_scaling, {"images": 24}),
    (figures.fig8a_throughput_per_watt, {"images": 24}),
    (figures.fig8b_projected_throughput, {"images": 24}),
])
def test_timing_figure_jobs_equivalence(fig, kwargs):
    serial = fig(jobs=1, **kwargs)
    fanned = fig(jobs=2, **kwargs)
    assert _series_fingerprint(serial) == _series_fingerprint(fanned)


def test_fig7a_jobs_equivalence_smoke():
    serial = figures.fig7a_top1_error(scale="smoke", jobs=1)
    fanned = figures.fig7a_top1_error(scale="smoke", jobs=2)
    assert _series_fingerprint(serial) == _series_fingerprint(fanned)


def test_fig7b_jobs_equivalence_smoke():
    serial = figures.fig7b_confidence_difference(scale="smoke", jobs=1)
    fanned = figures.fig7b_confidence_difference(scale="smoke", jobs=2)
    assert _series_fingerprint(serial) == _series_fingerprint(fanned)


def test_fig6a_jitter_stays_serial_and_works():
    # Jitter threads RNG state through the serial run order, so the
    # driver must quietly ignore jobs>1 rather than diverge.
    res = figures.fig6a_throughput_per_subset(
        num_subsets=2, images_per_subset=24, jitter=0.05, jobs=2)
    assert len(res.series) == 3
    assert all(len(s.y) == 2 for s in res.series)


# --- CLI sweeps ---------------------------------------------------------------

def _main_output(capsys, argv):
    from repro.harness.cli import main

    rc = main(argv)
    out = capsys.readouterr().out
    return rc, out


def test_cli_serve_sweep_jobs_equivalence(capsys):
    base = ["serve-sweep", "--configs", "vpu1,vpu2", "--requests",
            "32", "--steps", "3"]
    rc1, out1 = _main_output(capsys, base + ["--jobs", "1"])
    rc2, out2 = _main_output(capsys, base + ["--jobs", "2"])
    assert rc1 == rc2 == 0
    assert out1 == out2


def test_cli_chaos_run_jobs_equivalence(capsys):
    base = ["chaos-run", "--devices", "3", "--images", "24"]
    rc1, out1 = _main_output(capsys, base + ["--jobs", "1"])
    rc2, out2 = _main_output(capsys, base + ["--jobs", "2"])
    assert rc1 == rc2 == 0
    assert out1 == out2
