"""Tests for the sensitivity-analysis module and dynamic scheduling."""

import pytest

from repro.errors import AllocationError, ReproError
from repro.harness.sensitivity import (
    SensitivityRow,
    elasticity,
    render_sensitivity,
    sensitivity_analysis,
)
from repro.ncsw import IntelVPU, NCSw, SyntheticSource
from repro.nn import get_model
from repro.nn.weights import initialize_network
from repro.vpu import compile_graph


@pytest.fixture(scope="module")
def micro_graph():
    net = get_model("googlenet-micro")
    initialize_network(net)
    return compile_graph(net)


# --- frequency-mismatch guard --------------------------------------------------

def test_chip_rejects_wrong_frequency_graph():
    from repro.sim import Environment
    from repro.vpu import Myriad2, Myriad2Config
    net = get_model("googlenet-micro")
    initialize_network(net)
    fast_graph = compile_graph(net, freq_hz=1200e6)
    env = Environment()
    chip = Myriad2(env, Myriad2Config())  # 600 MHz
    with pytest.raises(AllocationError, match="MHz"):
        chip.allocate_graph(fast_graph)


# --- sensitivity ------------------------------------------------------------------

def test_sensitivity_requires_baseline():
    with pytest.raises(ReproError):
        sensitivity_analysis(factors=(0.5, 2.0))


def test_elasticity_helpers():
    rows = [
        SensitivityRow("p", 0.5, 0.2, 50.0),
        SensitivityRow("p", 2.0, 0.05, 200.0),
    ]
    # latency quarters over a 4x factor: slope -1.
    assert elasticity(rows, "p") == pytest.approx(-1.0)
    assert elasticity(rows, "p", output="throughput") == \
        pytest.approx(1.0)
    with pytest.raises(ReproError):
        elasticity(rows, "missing")
    with pytest.raises(ReproError):
        elasticity(rows, "p", output="wattage")


def test_sensitivity_analysis_shapes_and_direction():
    rows = sensitivity_analysis(factors=(0.5, 1.0), images=16)
    params = {r.parameter for r in rows}
    assert params == {"ddr_bandwidth", "clock_frequency",
                      "usb_bandwidth", "shave_count"}
    # Halving the clock ~doubles latency.
    assert elasticity(rows, "clock_frequency") == pytest.approx(
        -1.0, abs=0.1)
    # Fewer SHAVEs -> slower, strongly.
    assert elasticity(rows, "shave_count") < -0.4
    text = render_sensitivity(rows)
    assert "elasticities" in text and "clock_frequency" in text


# --- dynamic scheduling ------------------------------------------------------------

def test_dynamic_scheduler_processes_everything(micro_graph):
    fw = NCSw()
    fw.add_source("s", SyntheticSource(20))
    fw.add_target("vpu", IntelVPU(graph=micro_graph, num_devices=3,
                                  functional=False, dynamic=True))
    run = fw.run("s", "vpu", batch_size=20)
    assert run.images == 20
    # All three devices participated.
    assert len(run.per_device_counts()) == 3


def test_dynamic_matches_static_under_uniform_latency(micro_graph):
    def thr(dynamic):
        fw = NCSw()
        fw.add_source("s", SyntheticSource(24))
        fw.add_target("vpu", IntelVPU(graph=micro_graph,
                                      num_devices=4,
                                      functional=False,
                                      dynamic=dynamic))
        return fw.run("s", "vpu", batch_size=24).throughput()

    # Dynamic pulls serialise load->get (no double-buffering), so at
    # micro scale — where the USB transfer is ~20% of the 2.7 ms
    # inference — static-with-overlap keeps an edge. At paper scale
    # the gap collapses to ~1% (see the scheduling ablation bench).
    assert thr(True) == pytest.approx(thr(False), rel=0.3)
    assert thr(True) <= thr(False)


def test_dynamic_balances_under_jitter(micro_graph):
    fw = NCSw()
    fw.add_source("s", SyntheticSource(40))
    fw.add_target("vpu", IntelVPU(graph=micro_graph, num_devices=4,
                                  functional=False, dynamic=True,
                                  jitter=0.3))
    run = fw.run("s", "vpu", batch_size=40)
    counts = run.per_device_counts()
    assert sum(counts.values()) == 40
    # Pull-based assignment: a fast device takes more work; nobody
    # starves.
    assert min(counts.values()) >= 1
