"""Tests for the observability subsystem (repro.obs).

Covers the tracer's span algebra (well-nesting, epoch concatenation,
disabled no-ops), the metrics registry, the Chrome/Perfetto exporter
round-trip, and the end-to-end instrumented framework run — including
the zero-overhead guarantee that tracing off means byte-identical
benchmark results.
"""

import json

import numpy as np
import pytest

from repro.errors import ObservabilityError
from repro.ncsw import IntelVPU, NCSw, SyntheticSource
from repro.nn import get_model
from repro.nn.weights import initialize_network
from repro.obs import (
    NULL_TRACER,
    Counter,
    Gauge,
    Histogram,
    NullTracer,
    ObsSession,
    Tracer,
    TracerClock,
    device_utilisation,
    link_occupancy,
    to_chrome_trace,
    utilisation_report,
    write_chrome_trace,
)
from repro.sim import Environment


@pytest.fixture(scope="module")
def micro_graph():
    net = get_model("googlenet-micro")
    initialize_network(net)
    return compile_micro(net)


def compile_micro(net):
    from repro.vpu import compile_graph
    return compile_graph(net)


def _traced_run(micro_graph, devices=2, images=12, batch_size=4,
                session=None):
    """One synthetic VPU run with tracing on; returns (session, run)."""
    obs = session or ObsSession()
    fw = NCSw(obs=obs)
    fw.add_source("synth", SyntheticSource(images))
    fw.add_target("vpu", IntelVPU(graph=micro_graph,
                                  num_devices=devices,
                                  functional=False))
    run = fw.run("synth", "vpu", batch_size=batch_size)
    return obs, run


def assert_well_nested(tracer):
    """Every span tree must be well-nested: child ⊆ parent, and spans
    sharing a track are pairwise disjoint or nested."""
    end_of = {id(s): (s.end if s.end is not None else tracer.extent)
              for s in tracer.spans}
    for s in tracer.spans:
        if s.parent is not None:
            assert s.parent.track == s.track
            assert s.parent.start <= s.start
            assert end_of[id(s)] <= end_of[id(s.parent)] + 1e-12
    by_track = {}
    for s in tracer.spans:
        by_track.setdefault(s.track, []).append(s)
    for spans in by_track.values():
        for i, a in enumerate(spans):
            for b in spans[i + 1:]:
                a0, a1 = a.start, end_of[id(a)]
                b0, b1 = b.start, end_of[id(b)]
                disjoint = a1 <= b0 + 1e-12 or b1 <= a0 + 1e-12
                nested = ((a0 <= b0 and b1 <= a1 + 1e-12)
                          or (b0 <= a0 and a1 <= b1 + 1e-12))
                assert disjoint or nested, (
                    f"{a.name}@[{a0},{a1}] and {b.name}@[{b0},{b1}] "
                    f"overlap without nesting on track {a.track}")


# -- tracer ----------------------------------------------------------------

def test_span_stamped_with_simulated_time():
    env = Environment()
    tracer = Tracer()
    tracer.bind(env)

    def proc():
        with tracer.span("outer", track="t") as outer:
            yield env.timeout(2)
            with tracer.span("inner", track="t") as inner:
                yield env.timeout(3)
            assert inner.parent is outer
        yield env.timeout(1)

    env.process(proc())
    env.run()
    outer, = tracer.by_name("outer")
    inner, = tracer.by_name("inner")
    assert (outer.start, outer.end) == (0, 5)
    assert (inner.start, inner.end) == (2, 5)
    assert inner.duration == 3
    assert outer.finished and inner.finished
    assert tracer.tracks() == ["t"]


def test_random_span_trees_are_well_nested():
    # Property-style: drive a random fork/join workload and check the
    # nesting invariant on every track.
    rng = np.random.default_rng(1234)
    env = Environment()
    tracer = Tracer()
    tracer.bind(env)

    def worker(track, depth):
        with tracer.span(f"d{depth}", track=track):
            for _ in range(int(rng.integers(1, 4))):
                yield env.timeout(float(rng.uniform(0.1, 1.0)))
                if depth < 3 and rng.random() < 0.7:
                    yield from worker(track, depth + 1)
            yield env.timeout(float(rng.uniform(0.1, 1.0)))

    def actor(track):
        # One actor per track (spans on a track come from one logical
        # thread of control, as in the instrumented stack).
        for _ in range(4):
            yield from worker(track, 0)

    for k in range(4):
        env.process(actor(f"track{k}"))
    env.run()
    assert len(tracer) > 8
    assert all(s.finished for s in tracer)
    assert_well_nested(tracer)


def test_disabled_tracer_records_nothing():
    tracer = Tracer(enabled=False)
    assert tracer.begin("x") is None
    tracer.end(None)          # tolerated
    tracer.instant("marker")
    with tracer.span("y"):
        pass
    assert len(tracer) == 0
    tracer.enable()
    tracer.end(tracer.begin("z"))
    assert len(tracer) == 1


def test_double_end_raises():
    tracer = Tracer()
    span = tracer.begin("once")
    tracer.end(span)
    with pytest.raises(ObservabilityError):
        tracer.end(span)


def test_busy_seconds_counts_top_level_only():
    env = Environment()
    tracer = Tracer()
    tracer.bind(env)

    def proc():
        with tracer.span("outer", track="t"):
            with tracer.span("inner", track="t"):
                yield env.timeout(4)

    env.process(proc())
    env.run()
    # Inner's 4 s is contained in outer's 4 s: occupancy is 4, not 8.
    assert tracer.busy_seconds("t") == pytest.approx(4.0)
    assert tracer.busy_seconds("t", name="inner") == 0.0


def test_rebind_concatenates_runs_on_one_timeline():
    tracer = Tracer()
    for expected_offset in (0.0, 5.0):
        env = Environment()
        tracer.bind(env)

        def proc():
            with tracer.span("run", track="host"):
                yield env.timeout(5)

        env.process(proc())
        env.run()
        span = tracer.by_name("run")[-1]
        assert span.start == pytest.approx(expected_offset)
        assert span.end == pytest.approx(expected_offset + 5)
    assert tracer.extent == pytest.approx(10.0)


def test_null_tracer_refuses_enable():
    assert isinstance(NULL_TRACER, NullTracer)
    assert not NULL_TRACER.enabled
    with pytest.raises(ObservabilityError):
        NULL_TRACER.enable()
    assert NULL_TRACER.begin("x") is None
    assert len(NULL_TRACER) == 0


# -- metrics ---------------------------------------------------------------

def test_counter_increments_and_rejects_negative():
    c = Counter("hits")
    c.inc()
    c.inc(2.5)
    assert c.value == 3.5
    with pytest.raises(ObservabilityError):
        c.inc(-1)


def test_gauge_tracks_tracer_clock():
    env = Environment()
    tracer = Tracer()
    tracer.bind(env)
    g = Gauge("depth", TracerClock(tracer.now))

    def proc():
        g.set(0)
        yield env.timeout(4)
        g.set(10)
        yield env.timeout(4)
        g.set(10)  # touch the clock at t=8

    env.process(proc())
    env.run()
    assert g.last == 10
    assert g.samples[0] == (0, 0)
    assert g.time_average() == pytest.approx(5.0)
    assert g.maximum() == 10


def test_histogram_percentiles():
    h = Histogram("lat")
    for v in range(1, 101):
        h.observe(float(v))
    assert h.count == 100
    assert h.mean == pytest.approx(50.5)
    assert h.p50 == pytest.approx(np.percentile(range(1, 101), 50))
    assert h.p99 >= h.p95 >= h.p50
    empty = Histogram("none")
    with pytest.raises(ObservabilityError):
        _ = empty.p50


def test_registry_get_or_create_identity():
    session = ObsSession()
    reg = session.metrics
    assert reg.counter("a") is reg.counter("a")
    assert reg.gauge("b") is reg.gauge("b")
    assert reg.histogram("c") is reg.histogram("c")
    with pytest.raises(ObservabilityError):
        reg.gauge("a")  # name already taken by another kind


# -- perfetto export -------------------------------------------------------

def test_chrome_trace_round_trips_through_json(micro_graph):
    obs, _run = _traced_run(micro_graph, devices=2, images=8)
    doc = to_chrome_trace(obs)
    restored = json.loads(json.dumps(doc))
    events = restored["traceEvents"]
    assert restored["displayTimeUnit"] == "ms"

    names = {e["args"]["name"] for e in events
             if e["ph"] == "M" and e["name"] == "thread_name"}
    assert {"ncs0", "ncs1", "ncs0/host", "host"} <= names

    xs = [e for e in events if e["ph"] == "X"]
    assert {"inference", "load_tensor", "get_result",
            "process_batch", "usb_transfer", "run"} <= {
                e["name"] for e in xs}
    for e in xs:
        assert e["pid"] == 1
        assert e["ts"] >= 0 and e["dur"] >= 0
        json.dumps(e["args"])  # args survived _json_safe

    # Exactly one X event per recorded span, microsecond-scaled.
    assert len(xs) == len(obs.tracer.spans)
    span0 = obs.tracer.spans[0]
    ev0 = xs[0]
    assert ev0["ts"] == pytest.approx(span0.start * 1e6)

    counters = [e for e in events if e["ph"] == "C"]
    assert counters, "gauge samples should export as counter events"


def test_write_chrome_trace_file(tmp_path, micro_graph):
    obs, _run = _traced_run(micro_graph, devices=1, images=4)
    path = write_chrome_trace(obs, tmp_path / "trace.json")
    data = json.loads(path.read_text())
    assert data["traceEvents"]


# -- instrumented framework runs -------------------------------------------

def test_traced_vpu_run_spans(micro_graph):
    obs, run = _traced_run(micro_graph, devices=2, images=12)
    tracer = obs.tracer
    assert run.images == 12
    # One inference span per image, split across both sticks.
    inf = tracer.by_name("inference")
    assert len(inf) == 12
    assert {s.track for s in inf} == {"ncs0", "ncs1"}
    # Host-side NCAPI call spans exist and pair up per image.
    assert len(tracer.by_name("load_tensor")) == 12
    assert len(tracer.by_name("get_result")) == 12
    assert len(tracer.by_name("usb_transfer")) >= 24  # in + out
    assert tracer.by_name("run") and tracer.by_name("process_batch")
    assert all(s.finished for s in tracer)
    assert_well_nested(tracer)


def test_busy_fraction_consistent_with_wall(micro_graph):
    obs, run = _traced_run(micro_graph, devices=2, images=16)
    table = device_utilisation(obs, run.wall_seconds)
    assert set(table) == {"ncs0", "ncs1"}
    for row in table.values():
        assert 0.0 < row["busy_fraction"] <= 1.0
        assert row["busy_fraction"] + row["idle_fraction"] == (
            pytest.approx(1.0))
        assert row["energy_joules"] > 0.0
        # 8 inferences of a known-duration graph per stick.
        assert row["inferences"] == 8
        assert row["busy_seconds"] == pytest.approx(
            8 * micro_graph.inference_seconds, rel=0.2)
    total_busy = sum(r["busy_seconds"] for r in table.values())
    assert total_busy <= 2 * run.wall_seconds
    assert link_occupancy(obs, run.wall_seconds)


def test_utilisation_report_renders(micro_graph):
    obs, run = _traced_run(micro_graph, devices=2, images=8)
    text = utilisation_report(obs, run.wall_seconds)
    assert "utilisation report" in text
    assert "ncs0" in text and "ncs1" in text
    assert "usb:" in text
    assert "sim.processes_started" in text
    assert "ncs.inference_seconds" in text


def test_tracing_off_is_byte_identical(micro_graph):
    """The zero-overhead guarantee: obs off changes no results."""
    def fingerprint(run):
        return (run.wall_seconds, run.batch_size,
                tuple((r.index, r.device, r.t_submit, r.t_complete)
                      for r in run.records))

    baseline = []
    for session in (None, ObsSession(enabled=False), ObsSession()):
        fw = NCSw(obs=session)
        fw.add_source("synth", SyntheticSource(12))
        fw.add_target("vpu", IntelVPU(graph=micro_graph,
                                      num_devices=2,
                                      functional=False))
        baseline.append(fingerprint(fw.run("synth", "vpu",
                                           batch_size=4)))
    assert baseline[0] == baseline[1] == baseline[2]


def test_disabled_session_attach_keeps_env_obs_none():
    session = ObsSession(enabled=False)
    env = Environment()
    session.attach(env)
    assert env.obs is None
    session.enable()
    session.attach(env)
    assert env.obs is session


def test_session_energy_accumulates_across_runs(micro_graph):
    session = ObsSession()
    _traced_run(micro_graph, devices=1, images=4, session=session)
    e1 = session.energy_joules("ncs0")
    _traced_run(micro_graph, devices=1, images=4, session=session)
    e2 = session.energy_joules("ncs0")
    assert 0.0 < e1 < e2
    assert session.energy_joules("nonexistent") == 0.0

def test_histogram_snapshot_freezes_a_window():
    h = Histogram("lat")
    for v in (1.0, 2.0, 3.0):
        h.observe(v)
    snap = h.snapshot()
    h.observe(100.0)
    # The snapshot is immune to later observations...
    assert snap.count == 3
    assert snap.mean == pytest.approx(2.0)
    assert snap.percentile(50) == pytest.approx(2.0)
    # ...while the live histogram keeps accumulating.
    assert h.count == 4
    assert "n=3" in repr(snap)


def test_histogram_reset_returns_the_dropped_window():
    h = Histogram("lat")
    for v in (5.0, 7.0):
        h.observe(v)
    warmup = h.reset()
    assert warmup.count == 2
    assert warmup.mean == pytest.approx(6.0)
    assert h.count == 0
    h.observe(1.0)
    assert h.p50 == pytest.approx(1.0)  # steady state only
    empty = Histogram("none").snapshot()
    assert empty.count == 0
    with pytest.raises(ObservabilityError):
        empty.percentile(50)
    with pytest.raises(ObservabilityError):
        _ = empty.mean


def test_serving_activity_orders_serve_counters():
    from repro.obs import serving_activity

    session = ObsSession()
    session.metrics.counter("serve.completed").inc(10)
    session.metrics.counter("serve.offered").inc(12)
    session.metrics.counter("serve.rejected").inc(2)
    session.metrics.counter("serve.zz_custom").inc(1)
    session.metrics.counter("other.counter").inc(5)
    session.metrics.counter("serve.shed")  # zero: excluded
    activity = serving_activity(session)
    assert list(activity) == ["serve.offered", "serve.completed",
                              "serve.rejected", "serve.zz_custom"]
    assert activity["serve.offered"] == 12
    assert "other.counter" not in activity


def test_utilisation_report_includes_serving_section(chaos_graph):
    from repro.ncsw import IntelVPU
    from repro.serve import InferenceServer, PoissonWorkload

    session = ObsSession()
    server = InferenceServer(obs=session, slo_seconds=0.050)
    server.add_target("vpu", IntelVPU(graph=chaos_graph,
                                      num_devices=2,
                                      functional=False))
    result = server.run(PoissonWorkload(200.0, seed=1), 40)
    assert result.completed == 40
    text = utilisation_report(session)
    assert "serving" in text
    assert "serve.offered" in text and "serve.completed" in text
    assert "serve.e2e_seconds" in text  # histogram table
    assert "ncs0" in text and "ncs1" in text


def test_rank_activity_groups_cluster_counters():
    from repro.obs import rank_activity

    session = ObsSession()
    session.metrics.counter("rank2.completed").inc(7)
    session.metrics.counter("rank1.completed").inc(5)
    session.metrics.counter("rank1.batches").inc(3)
    session.metrics.counter("serve.completed").inc(9)
    session.metrics.counter("rank1.empty")  # zero: excluded
    activity = rank_activity(session)
    assert list(activity) == ["rank1", "rank2"]
    assert activity["rank1"] == {"batches": 3.0, "completed": 5.0}
    assert activity["rank2"] == {"completed": 7.0}
    assert rank_activity(ObsSession()) == {}


def test_chrome_trace_groups_rank_tracks_into_processes():
    from repro.obs.perfetto import TRACE_PID, to_chrome_trace

    session = ObsSession()
    env = Environment()
    session.attach(env)
    span = session.tracer.begin("batch", track="rank2/batcher")
    session.tracer.end(span)
    span = session.tracer.begin("inference", track="ncs0")
    session.tracer.end(span)
    doc = to_chrome_trace(session)
    events = doc["traceEvents"]
    names = {e["pid"]: e["args"]["name"] for e in events
             if e["name"] == "process_name"}
    assert names[TRACE_PID] == "repro simulation"
    assert names[TRACE_PID + 2] == "rank 2"
    spans = {e["name"]: e["pid"] for e in events
             if e.get("ph") == "X"}
    assert spans["batch"] == TRACE_PID + 2
    assert spans["inference"] == TRACE_PID
    json.dumps(doc)  # still a valid trace document
