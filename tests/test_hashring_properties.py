"""Property tests (hypothesis) for the consistent-hash ring.

The autoscaler's whole premise is the ring's *minimal remap*
guarantee: adding a host steals only the keys that move **to** it,
removing one re-maps only the keys it owned, and an add/remove
round-trip is a perfect no-op on the ownership map.  These properties
are what make live scale events cheap — every key that does not have
to move, does not move — so they are pinned here over randomized
node sets, not just the three-host example in ``test_cluster.py``.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import HashRing

#: Keyspace sample: large enough that every host owns keys at 64
#: vnodes, small enough to keep each example fast.
KEYS = range(300)

node_names = st.lists(
    st.sampled_from([f"host{i}" for i in range(10)]),
    min_size=1, max_size=6, unique=True)


def _owners(ring: HashRing) -> dict[int, str]:
    return {k: ring.lookup(k) for k in KEYS}


@given(nodes=node_names, extra=st.integers(min_value=0, max_value=9))
@settings(max_examples=60, deadline=None)
def test_add_remaps_only_keys_moving_to_the_new_node(nodes, extra):
    new = f"new{extra}"
    ring = HashRing(nodes)
    before = _owners(ring)
    ring.add(new)
    after = _owners(ring)
    for key in KEYS:
        if after[key] != before[key]:
            # The complement of the removal property: every remapped
            # key must have moved *to* the added node.
            assert after[key] == new
    # At 64 vnodes the new node actually takes a share (unless the
    # sample keyspace happened to miss every stolen arc, which 300
    # keys over <= 7 nodes makes implausible but not impossible —
    # so only assert membership, not share size).
    assert new in ring.nodes


@given(nodes=node_names, extra=st.integers(min_value=0, max_value=9))
@settings(max_examples=60, deadline=None)
def test_add_then_remove_round_trip_restores_ownership(nodes, extra):
    new = f"new{extra}"
    ring = HashRing(nodes)
    before = _owners(ring)
    ring.add(new)
    ring.remove(new)
    assert _owners(ring) == before
    assert tuple(sorted(ring.nodes)) == tuple(sorted(nodes))


@given(nodes=st.lists(
    st.sampled_from([f"host{i}" for i in range(10)]),
    min_size=2, max_size=6, unique=True))
@settings(max_examples=60, deadline=None)
def test_remove_remaps_only_the_removed_nodes_keys(nodes):
    victim = sorted(nodes)[0]
    ring = HashRing(nodes)
    before = _owners(ring)
    ring.remove(victim)
    after = _owners(ring)
    for key in KEYS:
        if before[key] != victim:
            assert after[key] == before[key]
        else:
            assert after[key] != victim


@given(nodes=node_names)
@settings(max_examples=30, deadline=None)
def test_ring_is_insertion_order_independent(nodes):
    grown = HashRing([nodes[0]])
    for node in nodes[1:]:
        grown.add(node)
    assert _owners(grown) == _owners(HashRing(sorted(nodes)))
