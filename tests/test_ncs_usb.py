"""Tests for the USB topology model."""

import pytest

from repro.errors import USBError
from repro.sim import Environment
from repro.ncs import USBTopology, paper_testbed_topology
from repro.ncs.usb import USB3_BANDWIDTH_BYTES_S, USB3_LATENCY_S


def test_attach_to_root_ports():
    env = Environment()
    topo = USBTopology(env, root_ports=2)
    topo.attach_device("a")
    topo.attach_device("b")
    assert topo.devices == ["a", "b"]
    with pytest.raises(USBError):
        topo.attach_device("c")  # no ports left


def test_duplicate_device_rejected():
    env = Environment()
    topo = USBTopology(env)
    topo.attach_device("a")
    with pytest.raises(USBError):
        topo.attach_device("a")


def test_hub_attachment_and_port_limit():
    env = Environment()
    topo = USBTopology(env, root_ports=2)
    topo.add_hub("h", ports=2)
    topo.attach_device("a", hub="h")
    topo.attach_device("b", hub="h")
    with pytest.raises(USBError):
        topo.attach_device("c", hub="h")
    with pytest.raises(USBError):
        topo.attach_device("d", hub="nope")


def test_hub_consumes_root_port():
    env = Environment()
    topo = USBTopology(env, root_ports=1)
    topo.add_hub("h", ports=4)
    with pytest.raises(USBError):
        topo.attach_device("direct")  # root port taken by hub


def test_path_root_vs_hub():
    env = Environment()
    topo = USBTopology(env)
    topo.attach_device("direct")
    topo.add_hub("h")
    topo.attach_device("hubbed", hub="h")
    assert len(topo.path("direct")) == 1
    assert len(topo.path("hubbed")) == 2
    with pytest.raises(USBError):
        topo.path("ghost")


def test_transfer_seconds_uncontended():
    env = Environment()
    topo = USBTopology(env)
    topo.attach_device("a")
    t = topo.transfer_seconds("a", int(USB3_BANDWIDTH_BYTES_S))
    assert t == pytest.approx(1.0 + USB3_LATENCY_S)


def test_transfer_advances_clock():
    env = Environment()
    topo = USBTopology(env)
    topo.attach_device("a")
    nbytes = int(USB3_BANDWIDTH_BYTES_S / 100)  # 10 ms
    env.run(until=topo.transfer("a", nbytes))
    assert env.now == pytest.approx(0.01 + USB3_LATENCY_S)
    assert topo.links[topo.path("a")[0]].bytes_moved == nbytes


def test_same_hub_transfers_serialise():
    env = Environment()
    topo = USBTopology(env)
    topo.add_hub("h", ports=2)
    topo.attach_device("a", hub="h")
    topo.attach_device("b", hub="h")
    nbytes = int(USB3_BANDWIDTH_BYTES_S / 100)
    done = []

    def proc():
        yield topo.transfer("a", nbytes) & topo.transfer("b", nbytes)
        done.append(env.now)

    env.process(proc())
    env.run()
    # Two 10 ms transfers through one upstream link: ~20 ms.
    assert done[0] == pytest.approx(0.02, rel=0.1)


def test_different_root_ports_parallel():
    env = Environment()
    topo = USBTopology(env)
    topo.attach_device("a")
    topo.attach_device("b")
    nbytes = int(USB3_BANDWIDTH_BYTES_S / 100)
    done = []

    def proc():
        yield topo.transfer("a", nbytes) & topo.transfer("b", nbytes)
        done.append(env.now)

    env.process(proc())
    env.run()
    assert done[0] == pytest.approx(0.01, rel=0.1)


def test_paper_testbed_shape():
    env = Environment()
    topo = paper_testbed_topology(env, num_devices=8)
    assert len(topo.devices) == 8
    # 2 direct, 3 on hubA, 3 on hubB.
    direct = [d for d in topo.devices if len(topo.path(d)) == 1]
    hubbed = [d for d in topo.devices if len(topo.path(d)) == 2]
    assert len(direct) == 2
    assert len(hubbed) == 6
    hub_links = {topo.path(d)[1] for d in hubbed}
    assert len(hub_links) == 2


def test_paper_testbed_partial():
    env = Environment()
    topo = paper_testbed_topology(env, num_devices=3)
    assert len(topo.devices) == 3
    with pytest.raises(USBError):
        paper_testbed_topology(Environment(), num_devices=9)
    with pytest.raises(USBError):
        paper_testbed_topology(Environment(), num_devices=0)


def test_validation():
    with pytest.raises(USBError):
        USBTopology(Environment(), root_ports=0)
    env = Environment()
    topo = USBTopology(env)
    with pytest.raises(USBError):
        topo.add_hub("h", ports=0)
