"""Tests for the CPU/GPU baseline device models."""

import numpy as np
import pytest

from repro.baselines import (
    BatchLatencyModel,
    CPU_LATENCY,
    CPUDevice,
    GPU_LATENCY,
    GPUDevice,
    REFERENCE_GOOGLENET_MACS,
)
from repro.errors import SimulationError
from repro.nn import build_googlenet, get_model
from repro.nn.weights import initialize_network
from repro.sim import Environment


# --- latency model ----------------------------------------------------------

def test_model_reproduces_anchors():
    m = BatchLatencyModel.from_anchors(26.0e-3, 22.7e-3)
    assert m.per_image_seconds(1) == pytest.approx(26.0e-3)
    assert m.per_image_seconds(8) == pytest.approx(22.7e-3)


def test_model_monotone_in_batch():
    m = CPU_LATENCY
    times = [m.per_image_seconds(b) for b in (1, 2, 4, 8, 16)]
    assert all(a >= b for a, b in zip(times, times[1:]))


def test_cpu_matches_paper_throughput():
    # Paper: 44.0 img/s at batch 8; 44.5 img/s projected at batch 16.
    assert CPU_LATENCY.throughput(8) == pytest.approx(44.0, abs=0.5)
    assert CPU_LATENCY.throughput(16) == pytest.approx(44.5, abs=0.5)


def test_gpu_matches_paper_throughput():
    # Paper: 74.2 img/s at batch 8; 79.9 img/s at batch 16 (Fig 8b).
    assert GPU_LATENCY.throughput(8) == pytest.approx(74.2, abs=0.8)
    assert GPU_LATENCY.throughput(16) == pytest.approx(79.9, abs=1.0)


def test_scaling_factors_match_fig6b():
    # Fig 6b: CPU improves ~1.1x at batch 8, GPU ~1.9x.
    cpu_scale = CPU_LATENCY.per_image_seconds(1) / \
        CPU_LATENCY.per_image_seconds(8)
    gpu_scale = GPU_LATENCY.per_image_seconds(1) / \
        GPU_LATENCY.per_image_seconds(8)
    assert cpu_scale == pytest.approx(1.15, abs=0.05)
    assert gpu_scale == pytest.approx(1.9, abs=0.05)


def test_model_validation():
    with pytest.raises(SimulationError):
        BatchLatencyModel(-1, 0)
    with pytest.raises(SimulationError):
        BatchLatencyModel.from_anchors(10e-3, 20e-3)  # anti-scaling
    m = CPU_LATENCY
    with pytest.raises(SimulationError):
        m.per_image_seconds(0)
    with pytest.raises(SimulationError):
        m.per_image_seconds(1000)
    with pytest.raises(SimulationError):
        m.per_image_seconds(1, mac_scale=0)


def test_mac_scale_linear():
    m = CPU_LATENCY
    assert m.per_image_seconds(4, mac_scale=0.5) == pytest.approx(
        0.5 * m.per_image_seconds(4))


# --- devices -------------------------------------------------------------------

@pytest.fixture(scope="module")
def micro_net():
    net = get_model("googlenet-micro")
    initialize_network(net)
    return net


def test_device_tdp_values(micro_net):
    env = Environment()
    assert CPUDevice(env, micro_net).tdp_watts == 80.0
    assert GPUDevice(env, micro_net).tdp_watts == 80.0


def test_paper_scale_mac_scale_is_one():
    env = Environment()
    net = build_googlenet()
    dev = CPUDevice(env, net)
    assert dev.mac_scale == pytest.approx(1.0, abs=1e-6)
    assert net.total_macs(1) == REFERENCE_GOOGLENET_MACS


def test_micro_model_is_cheaper(micro_net):
    env = Environment()
    dev = CPUDevice(env, micro_net)
    assert dev.mac_scale < 0.01
    assert dev.per_image_seconds(1) < 1e-3


def test_run_batch_advances_clock(micro_net):
    env = Environment()
    dev = CPUDevice(env, micro_net, functional=False)
    env.run(until=dev.run_batch(None, batch=8))
    assert env.now == pytest.approx(dev.batch_seconds(8))
    assert dev.batches_run == 1
    assert dev.images_run == 8


def test_run_batch_functional_returns_probs(micro_net):
    env = Environment()
    dev = CPUDevice(env, micro_net, functional=True)
    x = np.random.default_rng(0).normal(
        size=(2, 3, 32, 32)).astype(np.float32) * 0.1
    out = env.run(until=dev.run_batch(x))
    assert out.shape == (2, 10, 1, 1)
    np.testing.assert_allclose(out.sum(axis=1), 1.0, rtol=1e-4)


def test_run_batch_validation(micro_net):
    env = Environment()
    dev = CPUDevice(env, micro_net)
    with pytest.raises(SimulationError):
        dev.run_batch(None)
    with pytest.raises(SimulationError):
        dev.run_batch(np.zeros((2, 3, 32, 32), dtype=np.float32),
                      batch=4)


def test_predict_synchronous(micro_net):
    env = Environment()
    dev = GPUDevice(env, micro_net)
    x = np.random.default_rng(1).normal(
        size=(3, 3, 32, 32)).astype(np.float32) * 0.1
    labels, confs = dev.predict(x)
    assert labels.shape == (3,)
    assert np.all(confs > 0)
    assert env.now == 0  # no simulated time consumed


def test_gpu_memory_check(micro_net):
    env = Environment()
    dev = GPUDevice(env, micro_net)
    assert dev.fits_in_memory(1)
    net = build_googlenet()
    big = GPUDevice(env, net)
    assert big.fits_in_memory(8)   # paper runs batch 8 on the K4000
    assert not big.fits_in_memory(3000)  # 3 GB card limit
