"""Tests for Welford statistics and confidence intervals."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.numerics import RunningStats, confidence_interval, mean_std
from repro.numerics.stats import relative_change


def test_empty_stats_raise():
    rs = RunningStats()
    with pytest.raises(ValueError):
        _ = rs.mean
    with pytest.raises(ValueError):
        _ = rs.min


def test_single_sample():
    rs = RunningStats()
    rs.push(5.0)
    assert rs.mean == 5.0
    assert rs.std == 0.0
    assert rs.min == rs.max == 5.0
    assert rs.n == 1


def test_matches_numpy():
    rng = np.random.default_rng(7)
    xs = rng.normal(10, 3, size=1000)
    rs = RunningStats()
    rs.extend(xs)
    assert rs.mean == pytest.approx(np.mean(xs))
    assert rs.std == pytest.approx(np.std(xs, ddof=1))
    assert rs.min == xs.min()
    assert rs.max == xs.max()


def test_numerical_stability_large_offset():
    # Classic catastrophic-cancellation scenario for naive variance.
    xs = 1e9 + np.array([1.0, 2.0, 3.0, 4.0])
    rs = RunningStats()
    rs.extend(xs)
    assert rs.variance == pytest.approx(np.var(xs, ddof=1), rel=1e-9)


def test_merge_equals_sequential():
    rng = np.random.default_rng(3)
    xs = rng.normal(size=500)
    a, b = RunningStats(), RunningStats()
    a.extend(xs[:200])
    b.extend(xs[200:])
    merged = a.merge(b)
    full = RunningStats()
    full.extend(xs)
    assert merged.n == full.n
    assert merged.mean == pytest.approx(full.mean)
    assert merged.std == pytest.approx(full.std)
    assert merged.min == full.min
    assert merged.max == full.max


def test_merge_with_empty():
    a = RunningStats()
    b = RunningStats()
    b.extend([1, 2, 3])
    m = a.merge(b)
    assert m.n == 3
    assert m.mean == 2.0


def test_mean_std_helper():
    m, s = mean_std([2.0, 4.0, 6.0])
    assert m == 4.0
    assert s == pytest.approx(2.0)


def test_confidence_interval_contains_mean():
    lo, hi = confidence_interval([1, 2, 3, 4, 5], level=0.95)
    assert lo < 3 < hi


def test_confidence_interval_narrows_with_n():
    rng = np.random.default_rng(11)
    small = rng.normal(0, 1, 10)
    large = rng.normal(0, 1, 10000)
    lo_s, hi_s = confidence_interval(small)
    lo_l, hi_l = confidence_interval(large)
    assert (hi_l - lo_l) < (hi_s - lo_s)


def test_confidence_interval_bad_level():
    with pytest.raises(ValueError):
        confidence_interval([1, 2], level=0.5)


def test_relative_change():
    # Paper: CPU (44.0 img/s) is 40.7% slower than the 8-VPU rig (77.2).
    assert relative_change(44.0, 77.2) == pytest.approx(-0.43, abs=0.01)
    with pytest.raises(ValueError):
        relative_change(1.0, 0.0)


def test_sem_decreases_with_n():
    rs = RunningStats()
    rs.extend([1.0, 2.0, 3.0])
    sem3 = rs.sem
    rs.extend([1.0, 2.0, 3.0] * 10)
    assert rs.sem < sem3


@given(st.lists(st.floats(min_value=-1e6, max_value=1e6,
                          allow_nan=False), min_size=2, max_size=100))
@settings(max_examples=100, deadline=None)
def test_property_welford_matches_numpy(xs):
    rs = RunningStats()
    rs.extend(xs)
    assert rs.mean == pytest.approx(float(np.mean(xs)), rel=1e-9, abs=1e-6)
    assert rs.variance == pytest.approx(
        float(np.var(xs, ddof=1)), rel=1e-6, abs=1e-6)


@given(st.lists(st.floats(min_value=-1e3, max_value=1e3,
                          allow_nan=False), min_size=1, max_size=50),
       st.lists(st.floats(min_value=-1e3, max_value=1e3,
                          allow_nan=False), min_size=1, max_size=50))
@settings(max_examples=100, deadline=None)
def test_property_merge_associates(xs, ys):
    a, b = RunningStats(), RunningStats()
    a.extend(xs)
    b.extend(ys)
    m = a.merge(b)
    full = RunningStats()
    full.extend(list(xs) + list(ys))
    assert m.mean == pytest.approx(full.mean, rel=1e-9, abs=1e-9)
    assert math.isclose(m.variance, full.variance,
                        rel_tol=1e-6, abs_tol=1e-9)
