"""Wall-clock floors for the PR-4 hot-path overhaul.

These assertions are intentionally *outside* the tier-1 ``tests/``
run: they compare real wall-clock against the baseline recorded in
``BENCH_PR4.json`` (rescaled by the host-calibration score), which is
meaningful on a quiet benchmark machine and noise on a loaded CI
box.  The tier-1 suite pins behaviour; this file pins speed.
"""

from pathlib import Path

import pytest

from repro.harness import perf

REPO_ROOT = Path(__file__).resolve().parents[1]


@pytest.fixture(scope="module")
def bench_doc():
    path = REPO_ROOT / perf.BENCH_FILENAME
    if not path.exists():
        pytest.skip(f"{perf.BENCH_FILENAME} not present")
    return perf.load_bench(path)


def _rescaled_baseline(doc, workload):
    """Baseline rate for this machine: recorded value x speed ratio.

    Calibration is best-of-3 — interpreter-speed probes are only ever
    slowed by noise, never sped up, so the max is the estimate.
    """
    base = doc["baseline"]["modes"]["full"][workload]["value"]
    ref_calib = doc["baseline"].get("calibration_ops_per_sec") or 0.0
    now_calib = max(perf.calibrate_host() for _ in range(3))
    scale = (now_calib / ref_calib) if ref_calib else 1.0
    return base * scale


def test_sim_kernel_at_least_1_5x_baseline(bench_doc):
    """The lean DES kernel must hold >=1.5x the recorded pure-Python
    baseline events/sec on the perf harness's sim workload."""
    floor = 1.5 * _rescaled_baseline(bench_doc, "sim_events_per_sec")
    sample = perf.bench_sim(n_items=4000, repeats=5)
    print(f"\nsim kernel: {sample.value:,.0f} events/s "
          f"(floor {floor:,.0f})")
    assert sample.value >= floor


def test_forward_at_least_2x_baseline(bench_doc):
    """Cached im2col + fused GEMM must hold >=2x the recorded FP32
    forward throughput at batch 8."""
    floor = 2.0 * _rescaled_baseline(bench_doc, "googlenet_fp32_img_s")
    sample = perf.bench_forward("fp32", forwards=8, repeats=4)
    print(f"\nfp32 forward: {sample.value:.1f} img/s "
          f"(floor {floor:.1f})")
    assert sample.value >= floor
