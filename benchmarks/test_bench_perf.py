"""Wall-clock floors for the perf-harness speed claims.

These assertions are intentionally *outside* the tier-1 ``tests/``
run: they measure real wall-clock, which is meaningful on a quiet
benchmark machine and noise on a loaded CI box.  The tier-1 suite
pins behaviour; this file pins speed.

PR-9 claims pinned here:

* the calendar-queue event wheel holds >=1.3x the binary heap on the
  matched serve-shaped workload (relative, so calibration-free);
* the hybrid fluid/DES model turns a diurnal day into milliseconds
  of wall-clock — the margin behind the >=50x claim;
* the hot paths from PR-4 (lean DES kernel, cached im2col forward)
  have not regressed against the baseline recorded in
  ``BENCH_PR9.json`` (rescaled by the host-calibration score).
"""

from pathlib import Path

import pytest

from repro.harness import perf

REPO_ROOT = Path(__file__).resolve().parents[1]


@pytest.fixture(scope="module")
def bench_doc():
    path = REPO_ROOT / perf.BENCH_FILENAME
    if not path.exists():
        pytest.skip(f"{perf.BENCH_FILENAME} not present")
    return perf.load_bench(path)


def _rescaled(doc, workload, *, key="baseline"):
    """Recorded rate for this machine: value x host-speed ratio.

    Calibration is best-of-3 — interpreter-speed probes are only ever
    slowed by noise, never sped up, so the max is the estimate.
    """
    src = doc[key] if key == "baseline" else doc
    base = src["modes"]["full"][workload]["value"]
    ref_calib = src.get("calibration_ops_per_sec") or 0.0
    now_calib = max(perf.calibrate_host() for _ in range(3))
    scale = (now_calib / ref_calib) if ref_calib else 1.0
    return base * scale


def test_wheel_at_least_1_3x_heap():
    """The headline kernel claim, measured live and interleaved on
    this box so host calibration cancels out entirely."""
    sample = perf.bench_sim_wheel(sessions=4000, cycles=2, repeats=3)
    print(f"\nwheel: {sample.value:,.0f} events/s "
          f"({sample.detail['speedup_vs_heap']:.2f}x heap)")
    assert sample.detail["speedup_vs_heap"] >= 1.3


def test_fluid_day_is_fast(bench_doc):
    """A 200k-request diurnal day must hold the committed simulated
    day-rate within noise (rescaled for host speed)."""
    floor = 0.25 * _rescaled(bench_doc, "fluid_day_s", key="modes")
    sample = perf.bench_fluid(requests=200_000, repeats=3)
    print(f"\nfluid day: {sample.value:.2f} day/s "
          f"(floor {floor:.2f}, wall "
          f"{sample.detail['day_wall_s'] * 1e3:.1f} ms)")
    assert sample.value >= floor


def test_sim_kernel_holds_baseline(bench_doc):
    """The lean DES heap kernel must not regress against the rate
    recorded as this file's baseline (PR-4's committed run)."""
    floor = 0.7 * _rescaled(bench_doc, "sim_events_per_sec")
    sample = perf.bench_sim(n_items=4000, repeats=5)
    print(f"\nsim kernel: {sample.value:,.0f} events/s "
          f"(floor {floor:,.0f})")
    assert sample.value >= floor


def test_forward_holds_baseline(bench_doc):
    """Cached im2col + fused GEMM must hold the recorded FP32
    forward throughput at batch 8 within noise."""
    floor = 0.7 * _rescaled(bench_doc, "googlenet_fp32_img_s")
    sample = perf.bench_forward("fp32", forwards=8, repeats=4)
    print(f"\nfp32 forward: {sample.value:.1f} img/s "
          f"(floor {floor:.1f})")
    assert sample.value >= floor
