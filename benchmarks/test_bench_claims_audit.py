"""Reproduction audit — every quantitative claim in the paper.

The strongest statement this repository makes: each number the paper
asserts (abstract, §IV, §V) is re-measured through the simulation and
checked against its source quote.  Timing claims run against the
paper-scale platform model; accuracy/precision claims run functionally
at the selected scale.
"""

from conftest import emit
from repro.harness.claims import (
    render_audit,
    verify_claims,
    verify_functional_claims,
)


def test_bench_claims_audit(benchmark, timing_images, repro_scale):
    def audit():
        return (verify_claims(images=timing_images),
                verify_functional_claims(scale=repro_scale))

    timing, functional = benchmark.pedantic(audit, rounds=1,
                                            iterations=1)
    emit(render_audit(timing + functional))

    assert all(r.passed for r in timing)
    assert all(r.passed for r in functional)
