"""Fig. 5 testbed — bring-up cost of the 8-stick rig.

Measures enumeration, concurrent firmware boot and graph allocation on
the paper's topology (2 root-port sticks + 6 across two hubs), and
reports where the bring-up time goes.
"""

from conftest import emit
from repro.harness.experiment import paper_timing_graph
from repro.ncs import NCAPI, paper_testbed_topology
from repro.sim import Environment


def _bring_up():
    env = Environment()
    topo = paper_testbed_topology(env, num_devices=8)
    api = NCAPI(env, topo, functional=False)

    def main():
        opens = [api.open_device(i) for i in range(8)]
        handles = yield env.all_of(opens)
        devs = [handles[ev] for ev in opens]
        boot_done = env.now
        graph = paper_timing_graph()
        allocs = [d.allocate_compiled(graph) for d in devs]
        yield env.all_of(allocs)
        return boot_done, env.now

    boot_done, total = env.run(until=env.process(main()))
    return topo, boot_done, total


def test_bench_testbed(benchmark):
    topo, boot_done, total = benchmark.pedantic(
        _bring_up, rounds=1, iterations=1)

    direct = [d for d in topo.devices if len(topo.path(d)) == 1]
    hubbed = [d for d in topo.devices if len(topo.path(d)) == 2]
    emit("testbed bring-up (8 NCS devices, Fig. 5 topology)\n"
         f"  direct-attached sticks : {len(direct)}\n"
         f"  hub-attached sticks    : {len(hubbed)}\n"
         f"  firmware boot (all)    : {boot_done * 1000:.1f} ms\n"
         f"  + graph allocation     : {total * 1000:.1f} ms total")

    assert len(direct) == 2 and len(hubbed) == 6
    # Boot is dominated by the 0.45 s RTOS bring-up; hub contention on
    # the firmware transfer adds only a little.
    assert 0.45 < boot_done < 0.6
    # Allocating the ~14 MB FP16 graph on 8 sticks with 6 sharing two
    # hub uplinks costs a contended multiple of the 35 ms single
    # transfer.
    assert total > boot_done + 0.035
