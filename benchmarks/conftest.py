"""Shared benchmark configuration.

Every benchmark regenerates one paper artefact and prints the same
rows/series the paper reports (paper-reference values included), so a
``pytest benchmarks/ --benchmark-only`` run doubles as the full
reproduction report.

Scale knobs (environment variables):

* ``REPRO_BENCH_SCALE`` — functional-experiment scale for the Fig. 7
  benches: ``smoke`` (default, seconds) or ``default`` (a minute or
  two) or ``paper`` (hours; the honest full geometry).
* ``REPRO_BENCH_IMAGES`` — timing-only images per measurement
  (default 160).
"""

import os

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--repro-scale",
        default=os.environ.get("REPRO_BENCH_SCALE", "smoke"),
        help="functional experiment scale: smoke | default | paper")


@pytest.fixture(scope="session")
def repro_scale(request):
    return request.config.getoption("--repro-scale")


@pytest.fixture(scope="session")
def timing_images():
    return int(os.environ.get("REPRO_BENCH_IMAGES", "160"))


def emit(text: str) -> None:
    """Print a reproduction table under the benchmark output."""
    print()
    print(text)
