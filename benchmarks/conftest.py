"""Shared benchmark configuration.

Every benchmark regenerates one paper artefact and prints the same
rows/series the paper reports (paper-reference values included), so a
``pytest benchmarks/ --benchmark-only`` run doubles as the full
reproduction report.

Scale knobs (environment variables):

* ``REPRO_BENCH_SCALE`` — functional-experiment scale for the Fig. 7
  benches: ``smoke`` (default, seconds) or ``default`` (a minute or
  two) or ``paper`` (hours; the honest full geometry).
* ``REPRO_BENCH_IMAGES`` — timing-only images per measurement
  (default 160; must be a positive integer).

Campaign fan-out: the figure drivers and the ``chaos-run`` /
``serve-sweep`` CLI commands accept ``--jobs N`` (or the ``jobs=``
keyword) to spread independent runs across processes.  Results are
guaranteed identical to the serial run — the flag only buys wall
clock — so the same knob is safe under a benchmark run; it is kept
off here by default because per-process timings are what the
wall-clock suite (``python -m repro perf-run``) measures.
"""

import os

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--repro-scale",
        default=os.environ.get("REPRO_BENCH_SCALE", "smoke"),
        help="functional experiment scale: smoke | default | paper")


@pytest.fixture(scope="session")
def repro_scale(request):
    return request.config.getoption("--repro-scale")


@pytest.fixture(scope="session")
def timing_images():
    raw = os.environ.get("REPRO_BENCH_IMAGES", "160")
    try:
        images = int(raw)
    except ValueError:
        raise pytest.UsageError(
            f"REPRO_BENCH_IMAGES={raw!r} is not an integer")
    if images <= 0:
        raise pytest.UsageError(
            f"REPRO_BENCH_IMAGES must be a positive image count, "
            f"got {images}")
    return images


def emit(text: str) -> None:
    """Print a reproduction table under the benchmark output."""
    print()
    print(text)
