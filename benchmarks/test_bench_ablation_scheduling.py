"""Ablation — static round-robin vs dynamic pull-based scheduling.

§III: "We follow a simple static scheduling (i.e., round-robin) for
this purpose."  This bench validates that design choice: with uniform
per-inference latency (the paper's situation), static assignment loses
nothing; once devices exhibit latency variance (jitter / throttling),
a dynamic shared queue recovers the straggler time that round-robin
leaves on the table.
"""

from conftest import emit
from repro.harness.experiment import paper_timing_graph
from repro.ncsw import IntelVPU, NCSw, SyntheticSource


def _throughput(dynamic: bool, jitter: float, images: int = 96) -> float:
    fw = NCSw()
    fw.add_source("s", SyntheticSource(images))
    fw.add_target("vpu", IntelVPU(graph=paper_timing_graph(),
                                  num_devices=8, functional=False,
                                  jitter=jitter, dynamic=dynamic))
    # One big chunk so the scheduler owns the whole work list.
    return fw.run("s", "vpu", batch_size=images).throughput()


def _run_all():
    return {
        ("static", 0.0): _throughput(False, 0.0),
        ("dynamic", 0.0): _throughput(True, 0.0),
        ("static", 0.2): _throughput(False, 0.2),
        ("dynamic", 0.2): _throughput(True, 0.2),
    }


def test_bench_ablation_scheduling(benchmark):
    res = benchmark.pedantic(_run_all, rounds=1, iterations=1)
    lines = ["scheduling ablation (8 sticks, img/s):"]
    for (mode, jitter), thr in res.items():
        lines.append(f"  {mode:<8} jitter={jitter:4.0%}: {thr:7.2f}")
    uniform_gap = res[("dynamic", 0.0)] / res[("static", 0.0)] - 1
    jitter_gap = res[("dynamic", 0.2)] / res[("static", 0.2)] - 1
    lines.append(f"  dynamic gain: {uniform_gap:+.1%} uniform, "
                 f"{jitter_gap:+.1%} under 20% latency jitter")
    emit("\n".join(lines))

    # Uniform latency: static round-robin is within a hair of dynamic
    # (the paper's simplicity argument holds).
    assert abs(uniform_gap) < 0.03
    # Under heavy jitter the pull queue absorbs stragglers.
    assert jitter_gap > 0.0
