"""Ablation — SHAVE count scaling on one chip.

The multi-stick scaling of Fig. 6b is between devices; this ablation
sweeps the *intra-chip* parallelism the NCSDK exposes: compiling the
paper-scale GoogLeNet for 1-12 SHAVEs.  Scaling is strong but
sub-linear (row-split imbalance on small late layers plus the serial
dispatch path), which is exactly why a 12-SHAVE chip still needs
~100 ms per inference.
"""

from conftest import emit
from repro.harness.experiment import paper_timing_network
from repro.vpu import compile_graph


def _sweep():
    net = paper_timing_network()
    return {s: compile_graph(net, num_shaves=s).inference_seconds
            for s in (1, 2, 4, 6, 8, 12)}


def test_bench_ablation_shave(benchmark):
    times = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    lines = ["SHAVE scaling ablation (paper-scale GoogLeNet, on-chip "
             "ms/inference):"]
    for s, t in times.items():
        speedup = times[1] / t
        lines.append(f"  {s:2d} SHAVEs: {t * 1000:8.1f} ms  "
                     f"(speedup {speedup:5.2f}x, efficiency "
                     f"{speedup / s:4.2f})")
    emit("\n".join(lines))

    # Monotone improvement with diminishing efficiency.
    ts = list(times.values())
    assert all(a > b for a, b in zip(ts, ts[1:]))
    speedup12 = times[1] / times[12]
    assert 6 < speedup12 < 12
    assert times[1] / times[2] > 1.6  # early doublings near-ideal
