"""Fig. 8a — throughput per Watt (Eq. 1) per batch size.

The paper's efficiency claim: the VPU configuration delivers over 3x
more images per Watt than either baseline at every batch size
(3.97 img/W single stick vs 0.55 CPU and 0.93 GPU at batch 8).
"""

from conftest import emit
from repro.harness import (
    fig8a_throughput_per_watt,
    line_chart,
    render_figure_table,
)


def test_bench_fig8a(benchmark, timing_images):
    result = benchmark.pedantic(
        fig8a_throughput_per_watt,
        kwargs={"images": timing_images},
        rounds=1, iterations=1)
    emit(render_figure_table(result))
    emit(line_chart(result))

    cpu = result.by_label("cpu").y
    gpu = result.by_label("gpu").y
    vpu = result.by_label("vpu").y
    for b in range(4):
        assert vpu[b] > 3 * max(cpu[b], gpu[b])  # "over 3x higher"
    assert abs(vpu[0] - 3.97) / 3.97 < 0.05
    assert abs(cpu[-1] - 0.55) / 0.55 < 0.05
    assert abs(gpu[-1] - 0.93) / 0.93 < 0.05
