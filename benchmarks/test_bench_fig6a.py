"""Fig. 6a — inference throughput per subset (batch 8).

Regenerates the paper's grouped bars: CPU / GPU / 8-stick multi-VPU
throughput on each of the five validation subsets, at batch size 8.
"""

import numpy as np

from conftest import emit
from repro.harness import (
    bar_chart,
    fig6a_throughput_per_subset,
    render_figure_table,
)


def test_bench_fig6a(benchmark, timing_images):
    result = benchmark.pedantic(
        fig6a_throughput_per_subset,
        kwargs={"images_per_subset": timing_images},
        rounds=1, iterations=1)
    emit(render_figure_table(result))
    emit(bar_chart(result))

    cpu = float(np.mean(result.by_label("cpu").y))
    gpu = float(np.mean(result.by_label("gpu").y))
    vpu = float(np.mean(result.by_label("vpu").y))
    # Paper shape: multi-VPU ~ GPU, both well ahead of CPU.
    assert vpu > gpu > cpu
    assert abs(cpu - 44.0) / 44.0 < 0.08
    assert abs(gpu - 74.2) / 74.2 < 0.08
    assert abs(vpu - 77.2) / 77.2 < 0.08
