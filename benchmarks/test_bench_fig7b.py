"""Fig. 7b — absolute confidence difference per subset.

After filtering to images both precisions classify correctly, the mean
|confidence_FP32 - confidence_FP16| stays well under a percent (paper:
0.44 % on average).
"""

import numpy as np

from conftest import emit
from repro.harness import (
    fig7b_confidence_difference,
    render_figure_table,
)


def test_bench_fig7b(benchmark, repro_scale):
    result = benchmark.pedantic(
        fig7b_confidence_difference,
        kwargs={"scale": repro_scale},
        rounds=1, iterations=1)
    emit(render_figure_table(result))

    diffs = np.array(result.series[0].y)
    assert np.all(diffs > 0)        # FP16 rounding is visible...
    assert np.all(diffs < 0.02)     # ...but well under a percent-ish
