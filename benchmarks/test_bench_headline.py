"""Headline table — every §IV/§V number in one paper-vs-measured table.

Covers the abstract's claims: single-input latencies, batch-8
throughputs, the 40.7 % CPU gap, the 4x single-chip slowdown, the TDP
reduction factors and the img/W figures.
"""

from conftest import emit
from repro.harness import headline_table, render_comparison


def test_bench_headline(benchmark, timing_images):
    rows = benchmark.pedantic(
        headline_table,
        kwargs={"images": timing_images, "error_scale": None},
        rounds=1, iterations=1)
    emit(render_comparison(rows, title="headline: paper vs measured"))

    by = {name: (paper, measured) for name, paper, measured in rows}
    for metric, rel_tol in [
        ("cpu_single_ms", 0.05), ("gpu_single_ms", 0.05),
        ("vpu_single_ms", 0.03), ("cpu_batch8_img_s", 0.05),
        ("gpu_batch8_img_s", 0.05), ("vpu_batch8_img_s", 0.05),
        ("vpu_img_per_watt", 0.05), ("cpu_img_per_watt", 0.05),
        ("gpu_img_per_watt", 0.05),
    ]:
        paper, measured = by[metric]
        assert abs(measured - paper) / paper < rel_tol, metric
    # The "up to 8x" TDP headline brackets between the stick-level
    # (4x) and chip-level (11x) reduction factors.
    assert by["tdp_reduction_sticks"][1] < 8 < \
        by["tdp_reduction_chips"][1]
