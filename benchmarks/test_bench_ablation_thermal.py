"""Ablation — thermal throttling under sustained load.

The paper's §V caveat ("actual power measurements would be required in
future work") hides a practical effect the TDP analysis cannot see: a
fanless stick throttles under sustained load.  This bench runs a long
paper-scale inference stream on one stick with and without the thermal
model and reports the sustained-throughput penalty.
"""

from conftest import emit
from repro.harness.experiment import paper_timing_graph
from repro.ncs import NCAPI, ThermalConfig, ThermalModel, USBTopology
from repro.sim import Environment


def _sustained_run(thermal, images=120):
    env = Environment()
    topo = USBTopology(env)
    topo.attach_device("ncs0")
    api = NCAPI(env, topo, functional=False)
    device = api.devices[0]
    device.thermal = thermal
    graph = paper_timing_graph()

    def scenario():
        dev = yield api.open_device(0)
        h = yield dev.allocate_compiled(graph)
        t0 = env.now
        for _ in range(images):
            yield h.load_tensor(None)
            yield h.get_result()
        return images / (env.now - t0)

    return env.run(until=env.process(scenario()))


def _run_both():
    # ~120 paper-scale inferences ~= 12 s of sustained 2.5 W load;
    # with tau = 5 s the stick crosses its throttle point mid-run.
    cfg = ThermalConfig(time_constant_s=5.0)
    return {
        "no_thermal_model": _sustained_run(None),
        "thermal_model": _sustained_run(ThermalModel(cfg)),
    }


def test_bench_ablation_thermal(benchmark):
    res = benchmark.pedantic(_run_both, rounds=1, iterations=1)
    penalty = 1 - res["thermal_model"] / res["no_thermal_model"]
    emit("thermal throttling ablation (1 stick, 120 sustained "
         "paper-scale inferences):\n"
         f"  TDP-only (paper's assumption): "
         f"{res['no_thermal_model']:6.2f} img/s\n"
         f"  with RC thermal model        : "
         f"{res['thermal_model']:6.2f} img/s\n"
         f"  sustained-load penalty       : {penalty * 100:.1f}%")

    # The throttled run is slower, but not catastrophically (the
    # firmware's 0.6x clamp bounds it).
    assert res["thermal_model"] < res["no_thermal_model"]
    assert penalty < 0.45
