"""Fig. 6b — normalized performance scaling per batch size.

The paper's key scaling claim: the multi-VPU rig scales almost ideally
with the number of active sticks (~7.8x at 8), the CPU barely moves
(1.1x) and the GPU lands at 1.9x.
"""

from conftest import emit
from repro.harness import (
    fig6b_normalized_scaling,
    line_chart,
    render_figure_table,
)


def test_bench_fig6b(benchmark, timing_images):
    result = benchmark.pedantic(
        fig6b_normalized_scaling,
        kwargs={"images": timing_images},
        rounds=1, iterations=1)
    emit(render_figure_table(result))
    emit(line_chart(result))

    vpu = result.by_label("vpu").y
    cpu = result.by_label("cpu").y
    gpu = result.by_label("gpu").y
    assert 7.3 < vpu[-1] < 8.0      # near-ideal, small penalty
    assert 1.05 < cpu[-1] < 1.25    # "barely affected"
    assert 1.7 < gpu[-1] < 2.1      # "improves only 92.5%"
    # Halving behaviour: each doubling of sticks ~halves per-image time.
    assert vpu[1] / vpu[0] > 1.9
    assert vpu[2] / vpu[1] > 1.9
