"""Ablation — on-stick Caffe batching vs the paper's multi-stick design.

§III: NCSw's batch mode "differs from the traditional Caffe batched
execution, which resizes the input blob layer"; instead it schedules
simultaneous single-image inferences on multiple sticks.  This bench
quantifies why: blob-resize batching on one Myriad 2 only amortises
dispatch and improves SHAVE utilisation on the small late layers
(~1.3x per-image), while eight sticks deliver ~8x.
"""

from conftest import emit
from repro.harness.experiment import paper_timing_network
from repro.ncsw import IntelVPU, NCSw, SyntheticSource
from repro.vpu import compile_graph


def _measure():
    net = paper_timing_network()
    # On-stick batching: per-image time of a batch-N compiled graph.
    on_stick = {b: compile_graph(net, batch=b).inference_seconds / b
                for b in (1, 2, 4, 8)}
    # Multi-stick: measured through the full platform simulation.
    fw = NCSw()
    fw.add_source("s", SyntheticSource(64))
    graph = compile_graph(net)
    multi = {}
    for n in (1, 8):
        fw.add_target(f"vpu{n}", IntelVPU(graph=graph, num_devices=n,
                                          functional=False))
        multi[n] = fw.run("s", f"vpu{n}",
                          batch_size=n).seconds_per_image()
    return on_stick, multi


def test_bench_ablation_batching(benchmark):
    on_stick, multi = benchmark.pedantic(_measure, rounds=1,
                                         iterations=1)
    lines = ["on-stick batching vs multi-stick (per-image ms, "
             "paper-scale GoogLeNet):"]
    for b, t in on_stick.items():
        lines.append(f"  1 stick, blob batch {b}: {t * 1000:7.2f} ms "
                     f"({on_stick[1] / t:4.2f}x)")
    for n, t in multi.items():
        lines.append(f"  {n} stick(s), NCSw     : {t * 1000:7.2f} ms "
                     f"({multi[1] / t:4.2f}x)")
    emit("\n".join(lines))

    stick_gain = on_stick[1] / on_stick[8]
    multi_gain = multi[1] / multi[8]
    # Blob batching helps modestly; multi-stick is in another class.
    assert 1.1 < stick_gain < 2.0
    assert multi_gain > 7.0
    assert multi_gain > 3 * stick_gain
