"""Fig. 7a — top-1 inference error per subset, CPU FP32 vs VPU FP16.

Functional experiment: the same GoogLeNet-topology network runs end to
end in both precisions over every subset; the claim under test is the
paper's §IV-B — FP16 arithmetic changes the top-1 error negligibly
(paper: 31.92 % FP16 vs 32.01 % FP32).
"""

import numpy as np

from conftest import emit
from repro.harness import (
    bar_chart,
    fig7a_top1_error,
    render_figure_table,
)


def test_bench_fig7a(benchmark, repro_scale):
    result = benchmark.pedantic(
        fig7a_top1_error,
        kwargs={"scale": repro_scale},
        rounds=1, iterations=1)
    emit(render_figure_table(result))
    emit(bar_chart(result))

    cpu = np.array(result.by_label("cpu_fp32").y)
    vpu = np.array(result.by_label("vpu_fp16").y)
    # Error is calibrated near the paper's 32 %.
    assert 0.15 < cpu.mean() < 0.5
    # FP16 changes the mean error by at most a few points (paper:
    # 0.09 percentage points at 10k images/subset).
    assert abs(cpu.mean() - vpu.mean()) < 0.03
