"""Ablation — CMX tiling vs DDR-resident execution.

DESIGN.md's compiler keeps each layer's working set in the 2 MB CMX
scratchpad whenever it fits; this bench disables that (by compiling
against a tiny CMX so every layer streams through DDR) and reports the
cost of losing the scratchpad — the design point the Myriad 2's
software-managed memory hierarchy exists for.
"""

from conftest import emit
from repro.harness.experiment import paper_timing_network
from repro.vpu import compile_graph


def _compile_both():
    net = paper_timing_network()
    normal = compile_graph(net)
    # 64 KiB CMX: nothing fits, everything becomes DDR-streamed.
    starved = compile_graph(net, cmx_bytes=64 * 1024)
    return normal, starved


def test_bench_ablation_tiling(benchmark):
    normal, starved = benchmark.pedantic(_compile_both, rounds=1,
                                         iterations=1)
    n_spill_normal = sum(1 for l in normal.layers
                         if not l.tile_plan.fits_cmx)
    n_spill_starved = sum(1 for l in starved.layers
                          if not l.tile_plan.fits_cmx)
    emit("CMX tiling ablation (paper-scale GoogLeNet):\n"
         f"  2 MiB CMX : {normal.inference_seconds * 1000:7.1f} ms, "
         f"{n_spill_normal}/{len(normal.layers)} layers DDR-streamed\n"
         f"  64 KiB CMX: {starved.inference_seconds * 1000:7.1f} ms, "
         f"{n_spill_starved}/{len(starved.layers)} layers DDR-streamed\n"
         f"  slowdown  : {starved.inference_seconds / normal.inference_seconds:5.2f}x")

    # Starving CMX spills the vast majority of layers (the smallest
    # late-stage layers still fit even a 48 KiB data budget).
    assert n_spill_starved > n_spill_normal
    assert n_spill_starved > 0.8 * len(starved.layers)
    # Losing the scratchpad costs real time (DDR bandwidth binds on
    # the big early layers); at 4 GB/s sustained DDR the penalty is a
    # few percent of end-to-end latency — compute still dominates.
    assert starved.inference_seconds > 1.01 * normal.inference_seconds
