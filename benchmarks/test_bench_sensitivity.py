"""Sensitivity bench — which substrate parameters the results lean on.

Perturbs DDR bandwidth, clock frequency, USB bandwidth and SHAVE count
by 0.5x/2x and reports elasticities of the headline quantities, so a
reader can judge the conclusions' robustness to the calibration.
"""

from conftest import emit
from repro.harness.sensitivity import (
    elasticity,
    render_sensitivity,
    sensitivity_analysis,
)


def test_bench_sensitivity(benchmark):
    rows = benchmark.pedantic(sensitivity_analysis, rounds=1,
                              iterations=1)
    emit(render_sensitivity(rows))

    # Clock frequency dominates: latency ~ 1/f (elasticity near -1).
    assert -1.1 < elasticity(rows, "clock_frequency") < -0.7
    # SHAVE count matters strongly but sub-linearly.
    assert -1.0 < elasticity(rows, "shave_count") < -0.5
    # USB bandwidth barely moves the needle (transfers are ~1% of the
    # inference) — the conclusion is robust to the USB model.
    assert abs(elasticity(rows, "usb_bandwidth")) < 0.05
    # DDR bandwidth touches only the spilled early layers: small but
    # directionally correct (more bandwidth, less latency).
    ddr = elasticity(rows, "ddr_bandwidth")
    assert -0.3 < ddr <= 0.0
