"""Ablation — conv+ReLU fusion in the graph compiler.

The NCSDK folds in-place ReLUs into the producing convolution's kernel
epilogue, saving one runtime-scheduler dispatch and one CMX round-trip
per activation.  GoogLeNet has 57 of them, so the pass is worth a few
percent of end-to-end latency — this bench measures exactly how much.
"""

from conftest import emit
from repro.harness.experiment import paper_timing_network
from repro.vpu import compile_graph


def _compile_both():
    net = paper_timing_network()
    return (compile_graph(net, fuse_relu=True),
            compile_graph(net, fuse_relu=False))


def test_bench_ablation_fusion(benchmark):
    fused, unfused = benchmark.pedantic(_compile_both, rounds=1,
                                        iterations=1)
    n_fused = sum(1 for l in fused.layers if l.fused)
    gain = unfused.inference_seconds / fused.inference_seconds - 1
    emit("conv+ReLU fusion ablation (paper-scale GoogLeNet):\n"
         f"  fused   : {fused.inference_seconds * 1000:7.2f} ms "
         f"({len(fused.layers)} scheduled layers, {n_fused} ReLUs "
         f"absorbed)\n"
         f"  unfused : {unfused.inference_seconds * 1000:7.2f} ms "
         f"({len(unfused.layers)} scheduled layers)\n"
         f"  fusion saves {gain * 100:.2f}% end-to-end")

    assert n_fused == 57
    assert 0.01 < gain < 0.10  # a few percent, dominated by dispatch
