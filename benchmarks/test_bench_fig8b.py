"""Fig. 8b — projected inference performance per batch size (1-16).

CPU and GPU plateau (44.5 / 79.9 img/s); the multi-VPU series keeps
near-ideal scaling and its projection reaches 153 img/s at 16 sticks —
3.4x the CPU and 1.9x the GPU.
"""

from conftest import emit
from repro.harness import (
    fig8b_projected_throughput,
    line_chart,
    render_figure_table,
)


def test_bench_fig8b(benchmark, timing_images):
    result = benchmark.pedantic(
        fig8b_projected_throughput,
        kwargs={"images": timing_images},
        rounds=1, iterations=1)
    emit(render_figure_table(result))
    emit(line_chart(result))

    cpu = result.by_label("cpu").y
    gpu = result.by_label("gpu").y
    vpu = result.by_label("vpu").y
    # Plateaus.
    assert abs(cpu[-1] - 44.5) / 44.5 < 0.05
    assert abs(gpu[-1] - 79.9) / 79.9 < 0.05
    # Projection and crossovers.
    assert abs(vpu[-1] - 153.0) / 153.0 < 0.05
    assert vpu[0] < min(cpu[0], gpu[0])   # slow at batch 1
    assert vpu[3] > gpu[3]                 # crossover by batch 8
    assert 3.2 < vpu[-1] / cpu[-1] < 3.7   # paper: 3.4x
    assert 1.75 < vpu[-1] / gpu[-1] < 2.1  # paper: 1.9x
