"""Ablation — overlapped vs serialised load/get.

The NCAPI's split load_tensor/get_result exists so the host can
overlap the next tensor's USB transfer with the current inference
(paper Listing 1 + Fig. 4).  This bench runs the same workload with
the scheduler's double-buffering on and off and reports what the
overlap buys per stick.
"""

from conftest import emit
from repro.harness.experiment import paper_timing_graph
from repro.ncsw import IntelVPU, NCSw, SyntheticSource


def _run(overlap: bool, devices: int, images: int = 64) -> float:
    fw = NCSw()
    fw.add_source("s", SyntheticSource(images))
    fw.add_target("vpu", IntelVPU(graph=paper_timing_graph(),
                                  num_devices=devices,
                                  functional=False, overlap=overlap))
    # 8 items per worker per chunk, so double-buffering has inputs to
    # prefetch (at batch == device count every worker holds one item
    # and there is nothing to overlap within a chunk).
    return fw.run("s", "vpu", batch_size=devices * 8).throughput()


def _run_all():
    return {
        ("overlap", 1): _run(True, 1),
        ("serial", 1): _run(False, 1),
        ("overlap", 8): _run(True, 8),
        ("serial", 8): _run(False, 8),
    }


def test_bench_ablation_overlap(benchmark):
    res = benchmark.pedantic(_run_all, rounds=1, iterations=1)
    lines = ["load/get overlap ablation (img/s):"]
    for (mode, n), thr in res.items():
        lines.append(f"  {n} stick(s), {mode:<8}: {thr:7.2f}")
    gain1 = res[("overlap", 1)] / res[("serial", 1)] - 1
    gain8 = res[("overlap", 8)] / res[("serial", 8)] - 1
    lines.append(f"  overlap gain: {gain1 * 100:.2f}% (1 stick), "
                 f"{gain8 * 100:.2f}% (8 sticks)")
    emit("\n".join(lines))

    # Overlap always helps; the gain is the transfer time it hides
    # (~1 ms against a ~100 ms inference -> single-digit percent).
    assert res[("overlap", 1)] > res[("serial", 1)]
    assert res[("overlap", 8)] > res[("serial", 8)]
    assert 0.0 < gain1 < 0.1
