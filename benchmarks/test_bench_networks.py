"""Related-work bench — CNN comparison on the stick (Dexmont et al.).

The paper cites Pena/Dexmont et al.'s "Benchmarking of CNNs for
low-cost, low-power robotics applications" (RSS'17 workshop), which
runs several CNNs on the NCS.  This bench reproduces that comparison
for the two networks in our zoo: GoogLeNet (compute-heavy, tiny
weights) vs AlexNet (light compute, 61M parameters that must stream
from DDR) — showing the stick favours GoogLeNet-style architectures,
as the robotics study found.
"""

from conftest import emit
from repro.harness.experiment import paper_timing_graph
from repro.nn import get_model
from repro.vpu import compile_graph


def _compile_both():
    return {
        "googlenet": paper_timing_graph(),
        "alexnet": compile_graph(get_model("alexnet")),
    }


def test_bench_networks(benchmark):
    graphs = benchmark.pedantic(_compile_both, rounds=1, iterations=1)
    lines = ["CNN comparison on one simulated NCS (per-inference):",
             f"  {'network':<10} {'ms':>8} {'MMACs':>8} "
             f"{'weights':>9} {'DDR-spilled layers':>19}"]
    for name, g in graphs.items():
        spilled = sum(1 for l in g.layers if not l.tile_plan.fits_cmx)
        macs = sum(l.macs for l in g.layers)
        lines.append(
            f"  {name:<10} {g.inference_seconds * 1000:>8.1f} "
            f"{macs / 1e6:>8.0f} {g.weight_bytes_total / 1e6:>7.1f}MB "
            f"{spilled:>10}/{len(g.layers)}")
    emit("\n".join(lines))

    gnet, anet = graphs["googlenet"], graphs["alexnet"]
    # AlexNet does ~2.2x fewer MACs...
    assert sum(l.macs for l in gnet.layers) > \
        1.8 * sum(l.macs for l in anet.layers)
    # ...but carries ~8x the weights, which must stream from DDR...
    assert anet.weight_bytes_total > 7 * gnet.weight_bytes_total
    # ...so its latency advantage is much smaller than the MAC ratio
    # (the memory wall the robotics benchmarking study observed).
    ratio = gnet.inference_seconds / anet.inference_seconds
    assert 1.0 < ratio < 2.2
