"""Ablation — USB hub contention.

DESIGN.md calls out the hub topology as the source of the paper's
"small penalty ... due to the data transfers".  This bench quantifies
it: 8 sticks all on dedicated root ports vs the paper's 2-direct +
2x3-hubbed rig vs all 8 crammed behind a single hub.
"""

import pytest

from conftest import emit
from repro.harness.experiment import paper_timing_graph
from repro.ncs import NCAPI, USBTopology, paper_testbed_topology
from repro.ncsw import MultiVPUScheduler, SyntheticSource
from repro.sim import Environment


def _throughput(topology_builder, images=160):
    env = Environment()
    topo = topology_builder(env)
    api = NCAPI(env, topo, functional=False)
    graph = paper_timing_graph()
    items = list(SyntheticSource(images))

    def main():
        opens = [api.open_device(i) for i in range(8)]
        handles = yield env.all_of(opens)
        devs = [handles[ev] for ev in opens]
        allocs = [d.allocate_compiled(graph) for d in devs]
        graphs = yield env.all_of(allocs)
        t0 = env.now
        sched = MultiVPUScheduler(env, [graphs[ev] for ev in allocs])
        yield sched.run(items)
        return images / (env.now - t0)

    return env.run(until=env.process(main()))


def _all_root(env):
    topo = USBTopology(env, root_ports=8)
    for i in range(8):
        topo.attach_device(f"ncs{i}")
    return topo


def _single_hub(env):
    topo = USBTopology(env, root_ports=1)
    topo.add_hub("mega", ports=8)
    for i in range(8):
        topo.attach_device(f"ncs{i}", hub="mega")
    return topo


def _run_all():
    return {
        "all_root_ports": _throughput(_all_root),
        "paper_fig5": _throughput(
            lambda env: paper_testbed_topology(env, 8)),
        "single_hub": _throughput(_single_hub),
    }


def test_bench_ablation_usb(benchmark):
    results = benchmark.pedantic(_run_all, rounds=1, iterations=1)
    lines = ["USB topology ablation (8 sticks, batch 8, img/s):"]
    for name, thr in results.items():
        lines.append(f"  {name:<16} {thr:7.2f}")
    emit("\n".join(lines))

    # Contention ordering: dedicated ports >= paper rig >= single hub.
    assert results["all_root_ports"] >= results["paper_fig5"] * 0.999
    assert results["paper_fig5"] >= results["single_hub"] * 0.999
    # But inference dominates transfers, so the penalty is small (the
    # paper's observation): even the worst topology stays within 5 %.
    assert results["single_hub"] == pytest.approx(
        results["all_root_ports"], rel=0.05)
