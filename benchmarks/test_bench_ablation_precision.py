"""Ablation — per-layer FP16 drift (prefix quantisation).

Deepens Fig. 7's question: quantising only the first k layers of the
stack shows how the FP16 rounding error the paper measures accumulates
with depth, and that no single layer dominates — the mechanism behind
the "negligible differences due to arithmetic precision" conclusion.
"""

from conftest import emit
from repro.harness.precision_ablation import (
    prefix_drift_curve,
    render_drift_curve,
)


def test_bench_ablation_precision(benchmark, repro_scale):
    points = benchmark.pedantic(
        prefix_drift_curve,
        kwargs={"scale": repro_scale, "num_images": 48},
        rounds=1, iterations=1)
    emit(render_drift_curve(points))

    assert points[0].mean_conf_drift == 0.0
    full = points[-1]
    assert 0 < full.mean_conf_drift < 0.05  # Fig. 7b ballpark
    assert full.top1_flips <= 48 * 0.15     # few label flips
    # Drift accumulates gradually — the 50% prefix already carries a
    # visible share of the final drift.
    mid = [p for p in points if p.fraction == 0.5][0]
    assert mid.mean_conf_drift > 0
