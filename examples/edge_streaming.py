#!/usr/bin/env python3
"""Edge streaming — live camera inference on NCS sticks.

The VPU was built "to accelerate computer vision applications on the
edge" (paper §II-A); the paper's HPC study measures batch throughput,
but an edge deployment is judged on *sustained fps, frame drops and
end-to-end latency*.  This example streams a simulated camera at
several frame rates into 1-8 sticks running paper-scale GoogLeNet and
reports those numbers — including the knee where the rig stops keeping
up and starts dropping frames.

Run:  python examples/edge_streaming.py
"""

from repro.harness.experiment import paper_timing_graph
from repro.ncs import NCAPI, paper_testbed_topology
from repro.ncsw import StreamingPipeline
from repro.sim import Environment


def stream(devices: int, fps: float, frames: int = 240,
           queue_depth: int = 4):
    env = Environment()
    topo = paper_testbed_topology(env, num_devices=devices)
    api = NCAPI(env, topo, functional=False)
    graph = paper_timing_graph()

    def scenario():
        opens = [api.open_device(i) for i in range(devices)]
        handles = yield env.all_of(opens)
        devs = [handles[ev] for ev in opens]
        allocs = [d.allocate_compiled(graph) for d in devs]
        graphs = yield env.all_of(allocs)
        pipeline = StreamingPipeline(
            env, [graphs[ev] for ev in allocs], fps=fps,
            queue_depth=queue_depth)
        return (yield pipeline.run(frames))

    return env.run(until=env.process(scenario()))


def main() -> None:
    print("live streaming of paper-scale GoogLeNet "
          "(~10 fps per stick capacity):\n")
    print(f"{'sticks':>6} {'offered':>9} {'sustained':>10} "
          f"{'drops':>7} {'p50 ms':>8} {'p95 ms':>8}")
    for devices, fps in [(1, 5), (1, 10), (1, 30),
                         (4, 30), (4, 60),
                         (8, 60), (8, 90)]:
        r = stream(devices, fps)
        print(f"{devices:>6} {fps:>7.0f}Hz {r.sustained_fps:>9.1f}f "
              f"{r.drop_rate:>6.1%} "
              f"{r.latency_percentile(50) * 1000:>8.1f} "
              f"{r.latency_percentile(95) * 1000:>8.1f}")

    print("\nqueue-depth trade-off (1 stick, 30 Hz offered):")
    for depth in (1, 2, 4, 8):
        r = stream(1, 30, queue_depth=depth)
        print(f"  depth {depth}: {r.drop_rate:5.1%} dropped, "
              f"p95 latency {r.latency_percentile(95) * 1000:7.1f} ms")
    print("\n(deeper queues trade latency for fewer drops — the "
          "classic live-pipeline knob)")


if __name__ == "__main__":
    main()
