#!/usr/bin/env python3
"""Power-efficiency study — the paper's Fig. 8 and §V discussion.

Computes throughput per Watt for all three targets (Eq. 1 on datasheet
TDP, exactly as the paper does), projects the multi-VPU rig past the
8-stick testbed, and cross-checks the TDP arithmetic with the chip
model's power-island energy accounting.

Run:  python examples/power_projection.py
"""

from repro.harness import (
    fig8a_throughput_per_watt,
    fig8b_projected_throughput,
    line_chart,
    render_figure_table,
)
from repro.harness.experiment import paper_timing_graph
from repro.ncs import NCAPI, USBTopology
from repro.power import DEFAULT_TDP, throughput_per_watt, tdp_reduction
from repro.sim import Environment


def island_energy_check() -> None:
    """Validate the TDP assumption against the power-island model."""
    env = Environment()
    topo = USBTopology(env)
    topo.attach_device("ncs0")
    api = NCAPI(env, topo, functional=False)
    graph = paper_timing_graph()

    def host():
        dev = yield api.open_device(0)
        h = yield dev.allocate_compiled(graph)
        t0, e0 = env.now, dev.chip.islands.energy_joules()
        for _ in range(10):
            yield h.load_tensor(None)
            yield h.get_result()
        return env.now - t0, dev.chip.islands.energy_joules() - e0

    seconds, joules = env.run(until=env.process(host()))
    avg_w = joules / seconds
    print(f"  island-model average chip power during inference: "
          f"{avg_w:.3f} W (chip TDP {DEFAULT_TDP.watts('vpu_chip')} W, "
          f"stick TDP {DEFAULT_TDP.watts('ncs')} W)")
    print(f"  -> the paper's Eq. 1 uses the *stick* TDP; the chip "
          f"itself draws ~{avg_w / DEFAULT_TDP.watts('ncs'):.0%} of "
          f"that budget in this model")


def main() -> None:
    print("=" * 70)
    print("Fig. 8a — throughput per Watt (Eq. 1, datasheet TDP)")
    print("=" * 70)
    fig8a = fig8a_throughput_per_watt(images=160)
    print(render_figure_table(fig8a))
    print()
    print(line_chart(fig8a))

    print()
    print("=" * 70)
    print("Fig. 8b — projected throughput to 16 VPU chips")
    print("=" * 70)
    fig8b = fig8b_projected_throughput(images=160)
    print(render_figure_table(fig8b))
    print()
    print(line_chart(fig8b))

    print()
    print("=" * 70)
    print("TDP arithmetic (§V) and island-model cross-check")
    print("=" * 70)
    cpu_w = DEFAULT_TDP.watts("cpu")
    chips8 = DEFAULT_TDP.watts("vpu_chip", 8)
    sticks8 = DEFAULT_TDP.watts("ncs", 8)
    print(f"  CPU TDP 80 W vs 8 Myriad 2 chips ({chips8:.1f} W): "
          f"{tdp_reduction(cpu_w, chips8):.1f}x reduction")
    print(f"  CPU TDP 80 W vs 8 NCS sticks  ({sticks8:.1f} W): "
          f"{tdp_reduction(cpu_w, sticks8):.1f}x reduction")
    print(f"  (the paper's abstract quotes 'up to 8x')")
    vpu1 = fig8a.by_label('vpu').y[0]
    print(f"  single stick: {vpu1:.2f} img/W "
          f"(paper: 3.97); over 3x both baselines: "
          f"{vpu1 / max(fig8a.by_label('cpu').y[-1], fig8a.by_label('gpu').y[-1]):.1f}x")
    print()
    island_energy_check()


if __name__ == "__main__":
    main()
