#!/usr/bin/env python3
"""Quickstart: classify images on one simulated Neural Compute Stick.

The shortest end-to-end path through the library, mirroring the
paper's Listing 1:

1. build a GoogLeNet-topology network and install the synthetic
   pre-trained weights;
2. compile it for the Myriad 2 (the ``mvNCCompile`` step);
3. attach one NCS to a simulated USB topology, boot it and allocate
   the graph (NCAPI);
4. ``load_tensor`` / ``get_result`` a few validation images and print
   the predictions with their synsets;
5. print the per-layer timing report (the ``mvNCProfile`` view).

Run:  python examples/quickstart.py
"""

from repro.data import ImageSynthesizer, Preprocessor, SynsetVocabulary
from repro.ncs import NCAPI, USBTopology
from repro.nn import get_model
from repro.nn.weights import WeightStore
from repro.sim import Environment
from repro.vpu import compile_graph
from repro.vpu.compiler import per_layer_report

NUM_CLASSES = 50
NUM_IMAGES = 8


def main() -> None:
    # --- model + synthetic "pre-trained" weights ----------------------
    net = get_model("googlenet-mini")  # full topology, 64px geometry
    vocab = SynsetVocabulary(num_classes=NUM_CLASSES)
    synth = ImageSynthesizer(num_classes=NUM_CLASSES, size=96,
                             noise_sigma=20.0)
    preprocess = Preprocessor(input_size=64)
    WeightStore(seed=0).pretrain(
        net, lambda c: preprocess(synth.template(c)),
        num_classes=NUM_CLASSES)

    # --- compile for the VPU (mvNCCompile) -----------------------------
    graph = compile_graph(net)
    blob = graph.to_bytes()
    print(f"compiled {graph.name}: {len(graph.layers)} layers, "
          f"{graph.weight_bytes_total / 1e6:.2f} MB FP16 weights, "
          f"estimated {graph.inference_seconds * 1000:.2f} ms/inference "
          f"on-chip")

    # --- one stick on the simulated bus (NCAPI) -------------------------
    env = Environment()
    topology = USBTopology(env)
    topology.attach_device("ncs0")
    api = NCAPI(env, topology, functional=True)

    def host():
        device = yield api.open_device(0)
        print(f"opened {device.device_id} "
              f"(boot at t={env.now * 1000:.0f} ms)")
        handle = yield device.allocate_graph(blob)

        # Listing-1 pattern: non-blocking load, blocking get.
        expected = []
        for i in range(NUM_IMAGES):
            label = i % NUM_CLASSES
            tensor = preprocess(synth.sample(label, image_id=1000 + i))
            expected.append(label)
            yield handle.load_tensor(tensor, user=label)
            result, true_label = yield handle.get_result()
            flat = result.astype("float32").ravel()
            pred = int(flat.argmax())
            mark = "ok " if pred == true_label else "MISS"
            print(f"  [{mark}] image {i}: predicted "
                  f"{vocab[pred].name!r} ({flat[pred]:.2f} conf), "
                  f"truth {vocab[true_label].name!r}")
        times = handle.time_taken()
        print(f"device inference time: "
              f"{1000 * sum(times) / len(times):.2f} ms/image "
              f"(simulated)")

    env.run(until=env.process(host()))

    # --- per-layer profile (mvNCProfile) -----------------------------------
    print("\nper-layer timing (top 8):")
    print(per_layer_report(graph, top=8))

    # --- the same flow through the synchronous facade ------------------------
    # For scripts that don't need the event-driven overlap patterns,
    # SyncSession drives the simulation behind plain calls.
    from repro.ncs import SyncSession

    sess = SyncSession(num_devices=1, functional=True)
    dev = sess.open_device(0)
    handle = sess.allocate(dev, graph)
    tensor = preprocess(synth.sample(0, image_id=2000))
    result, _ = sess.infer(handle, tensor)
    pred = int(result.astype("float32").ravel().argmax())
    print(f"\nSyncSession check: predicted {vocab[pred].name!r} "
          f"(simulated t={sess.now * 1000:.0f} ms)")


if __name__ == "__main__":
    main()
