#!/usr/bin/env python3
"""Heterogeneous pipeline — MPI streams, device groups and SIPP.

Exercises the NCSw architecture points the paper's §III highlights
beyond raw throughput:

* an ``MPIStream`` source (the paper's Fig. 3 names MPI streams as a
  pluggable input, citing the authors' MPI-streaming work);
* *device groups*: one input stream split across a CPU group and a
  multi-VPU group running concurrently (§III: "different sources can
  be easily connected to the same or multiple targets");
* the SIPP hardware filter pipeline doing on-chip preprocessing
  (Harris corners + denoise) ahead of the SHAVE inference — the
  "combining operations on the SHAVE vector processors and the
  hardware-accelerated kernels is feasible" point of §II-A.

Run:  python examples/mpi_stream_pipeline.py
"""

import numpy as np

from repro.data import ImageSynthesizer, Preprocessor
from repro.ncsw import IntelCPU, IntelVPU, MPIStream, NCSw
from repro.nn import GoogLeNetConfig, build_googlenet
from repro.nn.weights import WeightStore
from repro.sim import Environment
from repro.vpu import Myriad2, compile_graph

NUM_CLASSES = 20
STREAMED_IMAGES = 32


def build_model():
    # A custom-width GoogLeNet for a 20-class stream (the builder is
    # fully parameterised; the zoo only names the common presets).
    net = build_googlenet(GoogLeNetConfig(
        num_classes=NUM_CLASSES, input_size=64, width=0.25))
    pp = Preprocessor(input_size=64)
    synth = ImageSynthesizer(num_classes=NUM_CLASSES, size=96,
                             noise_sigma=15.0)
    WeightStore(seed=0).pretrain(
        net, lambda c: pp(synth.template(c)), num_classes=NUM_CLASSES)
    return net, pp, synth


def main() -> None:
    net, pp, synth = build_model()
    graph = compile_graph(net)

    # --- producer rank fills the MPI stream ----------------------------
    stream = MPIStream(source_rank=0)
    rng = np.random.default_rng(7)
    for i in range(STREAMED_IMAGES):
        label = int(rng.integers(NUM_CLASSES))
        stream.send(pp(synth.sample(label, image_id=5000 + i)),
                    label=label, tag=f"frame{i}")
    stream.close()
    print(f"producer rank 0 streamed {len(stream)} frames")

    # --- split the stream across a CPU group and a VPU group -------------
    fw = NCSw()
    fw.add_source("stream", stream)
    fw.add_target("cpu_group", IntelCPU(net, functional=True))
    fw.add_target("vpu_group", IntelVPU(graph=graph, num_devices=4,
                                        functional=True))
    results = fw.run_group("stream", ["cpu_group", "vpu_group"],
                           batch_size=4)
    for name, run in results.items():
        print(f"  {name}: {run.images} frames, "
              f"top-1 error {run.top1_error():.3f}, "
              f"{run.throughput():.1f} img/s (simulated)")
    counts = results["vpu_group"].per_device_counts()
    print(f"  vpu_group round-robin balance: {counts}")

    # --- SIPP preprocessing offload --------------------------------------
    print("\nSIPP hardware-filter preprocessing (one Myriad 2):")
    env = Environment()
    chip = Myriad2(env)

    def sipp_pipeline():
        # Denoise + Harris corners on a 640x480 frame, then a scale
        # pass — all on the hardware filters, no SHAVE involvement.
        for name in ("luma_denoise", "harris", "scale"):
            t0 = env.now
            yield chip.sipp.run_filter(name, 640, 480)
            print(f"  {name:<13} {1000 * (env.now - t0):6.2f} ms")

    env.run(until=env.process(sipp_pipeline()))
    print(f"  total on-chip preprocessing: {env.now * 1000:.2f} ms "
          f"per 640x480 frame")


if __name__ == "__main__":
    main()
