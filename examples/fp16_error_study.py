#!/usr/bin/env python3
"""FP16 vs FP32 precision study — the paper's Fig. 7 scenario.

Builds the calibrated synthetic ILSVRC validation set (top-1 error
tuned to the paper's ~32 %), runs every subset through the CPU (FP32)
and the multi-VPU rig (FP16) *functionally*, and reports:

* top-1 error per subset for both precisions (Fig. 7a);
* the mean absolute confidence difference over images both precisions
  classify correctly (Fig. 7b);
* a per-image ULP/rounding analysis of where FP16 drift comes from.

Run:  python examples/fp16_error_study.py          (default scale)
      REPRO_SCALE=smoke python examples/fp16_error_study.py
"""

import os

import numpy as np

from repro.harness import (
    fig7a_top1_error,
    fig7b_confidence_difference,
    get_context,
    render_figure_table,
)
from repro.numerics import PrecisionPolicy, ulp_distance


def main() -> None:
    scale = os.environ.get("REPRO_SCALE", "default")
    ctx = get_context(scale)
    print(f"scale: {scale} ({ctx.scale.model}, "
          f"{ctx.scale.images_per_subset} images/subset, "
          f"noise sigma {ctx.calibration.noise_sigma:.2f} calibrated "
          f"to {ctx.calibration.target_error:.0%} top-1 error)")

    print()
    print("=" * 70)
    print("Fig. 7a — top-1 error per subset (FP32 vs FP16)")
    print("=" * 70)
    fig7a = fig7a_top1_error(scale=scale)
    print(render_figure_table(fig7a))
    cpu = np.mean(fig7a.by_label("cpu_fp32").y)
    vpu = np.mean(fig7a.by_label("vpu_fp16").y)
    print(f"\n  mean error: FP32 {cpu:.4f} vs FP16 {vpu:.4f} "
          f"(delta {abs(cpu - vpu):.4f}; paper: 0.3201 vs 0.3192)")

    print()
    print("=" * 70)
    print("Fig. 7b — confidence difference per subset")
    print("=" * 70)
    fig7b = fig7b_confidence_difference(scale=scale)
    print(render_figure_table(fig7b))
    print(f"\n  mean |conf_FP32 - conf_FP16| = "
          f"{np.mean(fig7b.series[0].y):.4f} (paper: 0.0044)")

    # Where does the drift come from? Push one image through both
    # precisions and look at the output distribution in ULP terms.
    print()
    print("=" * 70)
    print("Rounding drill-down on one validation image")
    print("=" * 70)
    x = ctx.preprocessor(ctx.dataset.pixels(1))[None]
    p32 = ctx.network.forward(x, PrecisionPolicy.fp32()).ravel()
    p16 = ctx.network.forward(x, PrecisionPolicy.fp16()).ravel()
    ulps = ulp_distance(p32, p16, dtype=np.float16)
    print(f"  softmax outputs ({p32.size} classes):")
    print(f"    max |p32 - p16|   = {np.abs(p32 - p16).max():.3e}")
    print(f"    median ULP dist   = {int(np.median(ulps))}")
    print(f"    max ULP dist      = {int(ulps.max())}")
    print(f"    argmax agreement  = "
          f"{'yes' if p32.argmax() == p16.argmax() else 'NO'}")


if __name__ == "__main__":
    main()
