#!/usr/bin/env python3
"""Multi-VPU throughput study — the paper's Fig. 6 scenario.

Drives the paper-scale GoogLeNet through all three targets at batch 8,
sweeps the batch size with the VPU count coupled to it (Fig. 6b), and
prints the same tables/plots the paper's performance section shows.

Everything here is the *timing* plane: the compiled paper-scale graph
runs through the full platform simulation (USB topology, RISC
scheduler, SHAVE array) in non-functional mode, so the simulated clock
is the measurement.

Run:  python examples/multi_vpu_throughput.py
"""

from repro.harness import (
    bar_chart,
    fig6a_throughput_per_subset,
    fig6b_normalized_scaling,
    line_chart,
    render_figure_table,
)
from repro.harness.experiment import paper_timing_graph
from repro.ncsw import IntelVPU, NCSw, SyntheticSource


def main() -> None:
    print("=" * 70)
    print("Fig. 6a — throughput per subset (batch 8, 8 NCS devices)")
    print("=" * 70)
    fig6a = fig6a_throughput_per_subset(images_per_subset=160)
    print(render_figure_table(fig6a))
    print()
    print(bar_chart(fig6a))

    print()
    print("=" * 70)
    print("Fig. 6b — normalized scaling (VPU count coupled to batch)")
    print("=" * 70)
    fig6b = fig6b_normalized_scaling(images=160)
    print(render_figure_table(fig6b))
    print()
    print(line_chart(fig6b))

    # Bonus: stick-count sweep at fixed batch, showing the near-ideal
    # halving of per-inference time the paper reports.
    print()
    print("=" * 70)
    print("Stick sweep — per-image latency vs number of NCS devices")
    print("=" * 70)
    fw = NCSw()
    fw.add_source("s", SyntheticSource(160))
    graph = paper_timing_graph()
    for n in (1, 2, 4, 8):
        fw.add_target(f"vpu{n}", IntelVPU(graph=graph, num_devices=n,
                                          functional=False))
    base = None
    for n in (1, 2, 4, 8):
        run = fw.run("s", f"vpu{n}", batch_size=n)
        ms = run.seconds_per_image() * 1000
        base = base or ms
        print(f"  {n} device(s): {ms:7.2f} ms/image   "
              f"speedup {base / ms:4.2f}x   "
              f"({run.throughput():6.2f} img/s)")


if __name__ == "__main__":
    main()
