#!/usr/bin/env python3
"""General-purpose compute on the VPU — the paper's future work.

§VII: "This would imply extending our work and integrating the VPU
chip as a conventional vector processor for general-purpose
computing."  §VI pairs the paper with Ionica & Gregg's Myriad DGEMM
study (custom GEMM with CMX tiling, results in Gflops and Gflops/W
estimated through TDP).

This example runs that study on the simulator: LAMA-style tiled GEMMs
of increasing size on the Myriad 2 model, reported in Gflops and
Gflops/W against the Xeon baseline — plus a functional FP16 GEMM
accuracy check and an OpenCL-style queued pipeline.

Run:  python examples/mdk_gemm.py
"""

import numpy as np

from repro.mdk import (
    CommandQueue,
    ComputeKernel,
    Context,
    gemm,
    gemm_gflops_per_watt,
    plan_gemm,
    simulate_gemm,
)
from repro.numerics import PrecisionPolicy, relative_error
from repro.power import DEFAULT_TDP
from repro.sim import Environment
from repro.vpu import Myriad2
from repro.vpu.shave import KernelWorkload

#: Practical FP32 GEMM rate of the paper's dual E5-2609v2 (AVX, no
#: FMA): 2 sockets x 4 cores x 8 SP FLOP x 2.5 GHz at ~80 % MKL
#: efficiency.
CPU_GEMM_GFLOPS = 128.0


def gemm_study() -> None:
    print("LAMA tiled GEMM on the Myriad 2 model (FP16, 12 SHAVEs):")
    print(f"  {'size':>6} {'tile':>5} {'ms':>9} {'Gflops':>8} "
          f"{'Gflops/W':>9}")
    chip_w = DEFAULT_TDP.watts("vpu_chip")
    for size in (256, 512, 1024, 2048):
        env = Environment()
        chip = Myriad2(env)
        plan = plan_gemm(size, size, size)
        seconds = env.run(until=simulate_gemm(chip, plan))
        gflops, gflops_w = gemm_gflops_per_watt(plan, seconds, chip_w)
        print(f"  {size:>6} {plan.tile:>5} {seconds * 1000:>9.2f} "
              f"{gflops:>8.1f} {gflops_w:>9.1f}")
    cpu_gw = CPU_GEMM_GFLOPS / DEFAULT_TDP.watts("cpu")
    print(f"\n  Xeon E5-2609v2 pair reference: {CPU_GEMM_GFLOPS:.0f} "
          f"Gflops FP32 at 80 W -> {cpu_gw:.1f} Gflops/W")
    print("  (the VPU's Gflops/W advantage is the Ionica study's "
          "conclusion, reproduced)")


def fp16_accuracy_check() -> None:
    print("\nFP16 GEMM functional accuracy (vs FP32 reference):")
    rng = np.random.default_rng(0)
    for size in (64, 256):
        a = rng.normal(size=(size, size)).astype(np.float32)
        b = rng.normal(size=(size, size)).astype(np.float32)
        exact = gemm(a, b, PrecisionPolicy.fp32())
        approx = gemm(a, b, PrecisionPolicy.fp16())
        rel = relative_error(approx, exact)
        print(f"  {size}x{size}: median rel err {np.median(rel):.2e}, "
              f"max {rel.max():.2e}")


def opencl_pipeline() -> None:
    print("\nOpenCL-style queued pipeline (write -> kernel -> read):")
    env = Environment()
    ctx = Context(env)
    queue = CommandQueue(ctx)
    buf_in = ctx.alloc_buffer(2 * 1024 * 1024)
    buf_out = ctx.alloc_buffer(2 * 1024 * 1024)
    saxpy = ComputeKernel(
        name="saxpy",
        per_item=KernelWorkload(macs=1, load_bytes=4, store_bytes=2,
                                setup_cycles=0),
        work_items=1_000_000,
        efficiency=0.8,
    )
    queue.enqueue_write(buf_in)
    queue.enqueue_kernel(saxpy)
    queue.enqueue_read(buf_out)
    env.run(until=queue.finish())
    prof = queue.launcher.profiles["saxpy"]
    print(f"  pipeline finished at t={env.now * 1000:.3f} ms "
          f"(saxpy: {prof.total_seconds * 1e6:.1f} us on "
          f"{prof.shaves_used[0]} SHAVEs)")
    ctx.release_all()


if __name__ == "__main__":
    gemm_study()
    fp16_accuracy_check()
    opencl_pipeline()
