"""Caffe-deploy-prototxt serialisation.

The paper's pipeline consumes Caffe model definitions (a
``deploy.prototxt`` plus a ``.caffemodel``); this module emits and
parses the same protobuf-text shape for our networks, so model
definitions are inspectable, diffable text — and the parser rebuilds a
working :class:`~repro.nn.graph.Network` from it (channel counts are
inferred by propagating shapes, exactly as Caffe's net initialisation
does).

Weights travel separately (:func:`repro.nn.weights.save_weights` /
``load_weights`` — the ``.caffemodel`` role).
"""

from __future__ import annotations

import re
from typing import Any, Iterator

from repro.errors import GraphError
from repro.nn.concat import Concat
from repro.nn.conv import Convolution
from repro.nn.dropout import Dropout
from repro.nn.graph import Network
from repro.nn.inner_product import InnerProduct
from repro.nn.lrn import LRN
from repro.nn.pool import Pooling, PoolMethod
from repro.nn.relu import ReLU
from repro.nn.softmax import Softmax
from repro.tensors.layout import BlobShape


# ---------------------------------------------------------------------------
# emission
# ---------------------------------------------------------------------------

def _param_block(name: str, params: dict[str, Any], indent: int) -> str:
    pad = " " * indent
    lines = [f"{pad}{name} {{"]
    for key, value in params.items():
        if isinstance(value, str):
            lines.append(f'{pad}  {key}: "{value}"')
        elif isinstance(value, bool):
            lines.append(f"{pad}  {key}: {'true' if value else 'false'}")
        else:
            lines.append(f"{pad}  {key}: {value}")
    lines.append(f"{pad}}}")
    return "\n".join(lines)


def _layer_params(layer) -> tuple[str, dict[str, Any]] | None:
    """(param block name, fields) for a layer, or None if it has none."""
    t = layer.type_name()
    if t == "Convolution":
        return "convolution_param", {
            "num_output": layer.num_output,
            "kernel_size": layer.kernel_size,
            "stride": layer.stride,
            "pad": layer.pad,
        }
    if t == "Pooling":
        fields: dict[str, Any] = {
            "pool": "MAX" if layer.method is PoolMethod.MAX else "AVE"}
        if layer.global_pooling:
            fields["global_pooling"] = True
        else:
            fields.update(kernel_size=layer.kernel_size,
                          stride=layer.stride, pad=layer.pad)
        return "pooling_param", fields
    if t == "LRN":
        return "lrn_param", {"local_size": layer.local_size,
                             "alpha": layer.alpha, "beta": layer.beta}
    if t == "InnerProduct":
        return "inner_product_param", {"num_output": layer.num_output}
    if t == "Dropout":
        return "dropout_param", {"dropout_ratio": layer.dropout_ratio}
    if t == "ReLU" and layer.negative_slope != 0.0:
        return "relu_param", {"negative_slope": layer.negative_slope}
    return None


def to_prototxt(net: Network) -> str:
    """Emit the network as deploy-prototxt text."""
    s = net.input_shape
    lines = [f'name: "{net.name}"',
             f'input: "{net.input_blob}"']
    for dim in s.as_tuple():
        lines.append(f"input_dim: {dim}")
    for layer in net.layers:
        lines.append("layer {")
        lines.append(f'  name: "{layer.name}"')
        lines.append(f'  type: "{layer.type_name()}"')
        for bottom in layer.bottoms:
            lines.append(f'  bottom: "{bottom}"')
        for top in layer.tops:
            lines.append(f'  top: "{top}"')
        block = _layer_params(layer)
        if block is not None:
            lines.append(_param_block(block[0], block[1], 2))
        lines.append("}")
    return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# parsing
# ---------------------------------------------------------------------------

_TOKEN = re.compile(
    r"""\s*(?:(?P<key>[A-Za-z_][\w]*)\s*(?::\s*(?P<value>"[^"]*"|[-\w.+]+)|\s*(?P<open>\{))|(?P<close>\}))""")


def _tokens(text: str) -> Iterator[tuple[str, Any]]:
    pos = 0
    while pos < len(text):
        m = _TOKEN.match(text, pos)
        if not m:
            remainder = text[pos:].strip()
            if not remainder:
                return
            raise GraphError(
                f"prototxt parse error near: {remainder[:40]!r}")
        pos = m.end()
        if m.group("close"):
            yield ("close", None)
        elif m.group("open"):
            yield ("open", m.group("key"))
        else:
            value = m.group("value")
            if value is None:
                raise GraphError(
                    f"field {m.group('key')!r} missing value")
            if value.startswith('"'):
                parsed: Any = value[1:-1]
            elif value in ("true", "false"):
                parsed = value == "true"
            else:
                try:
                    parsed = int(value)
                except ValueError:
                    parsed = float(value)
            yield ("field", (m.group("key"), parsed))


def _parse_message(tokens: Iterator[tuple[str, Any]]) -> dict[str, Any]:
    """Parse one brace-delimited message into a dict.

    Repeated fields collect into lists under the same key.
    """
    out: dict[str, Any] = {}

    def put(key: str, value: Any) -> None:
        if key in out:
            if not isinstance(out[key], list):
                out[key] = [out[key]]
            out[key].append(value)
        else:
            out[key] = value

    for kind, payload in tokens:
        if kind == "close":
            return out
        if kind == "open":
            put(payload, _parse_message(tokens))
        else:
            key, value = payload
            put(key, value)
    return out


def _as_list(value: Any) -> list:
    return value if isinstance(value, list) else [value]


def from_prototxt(text: str) -> Network:
    """Parse deploy-prototxt text into a zero-initialised Network."""
    msg = _parse_message(_tokens(text))
    if "input" not in msg or "input_dim" not in msg:
        raise GraphError("prototxt must declare input and input_dim")
    dims = _as_list(msg["input_dim"])
    if len(dims) != 4:
        raise GraphError(f"expected 4 input_dim entries, got {len(dims)}")
    net = Network(str(msg.get("name", "net")), str(msg["input"]),
                  BlobShape(*[int(d) for d in dims]))

    shapes = {net.input_blob: net.input_shape}
    for layer_msg in _as_list(msg.get("layer", [])):
        layer = _build_layer(layer_msg, shapes)
        net.add(layer)
        inputs = [shapes[b] for b in layer.bottoms]
        for top, out in zip(layer.tops, layer.output_shapes(inputs)):
            shapes[top] = out
    return net


def _build_layer(msg: dict[str, Any], shapes: dict[str, BlobShape]):
    try:
        name = msg["name"]
        type_name = msg["type"]
    except KeyError as exc:
        raise GraphError(f"layer missing {exc}") from None
    bottoms = [str(b) for b in _as_list(msg.get("bottom", []))]
    tops = [str(t) for t in _as_list(msg.get("top", []))]
    if not bottoms or not tops:
        raise GraphError(f"layer {name!r} needs bottom and top")
    for b in bottoms:
        if b not in shapes:
            raise GraphError(
                f"layer {name!r} reads undefined blob {b!r}")

    if type_name == "Convolution":
        p = msg.get("convolution_param", {})
        return Convolution(
            name, bottoms[0], tops[0],
            num_output=int(p["num_output"]),
            kernel_size=int(p.get("kernel_size", 1)),
            in_channels=shapes[bottoms[0]].c,
            stride=int(p.get("stride", 1)),
            pad=int(p.get("pad", 0)))
    if type_name == "ReLU":
        p = msg.get("relu_param", {})
        return ReLU(name, bottoms[0], tops[0],
                    negative_slope=float(p.get("negative_slope", 0.0)))
    if type_name == "Pooling":
        p = msg.get("pooling_param", {})
        method = (PoolMethod.AVE if p.get("pool") == "AVE"
                  else PoolMethod.MAX)
        if p.get("global_pooling"):
            return Pooling(name, bottoms[0], tops[0], method=method,
                           global_pooling=True)
        return Pooling(name, bottoms[0], tops[0], method=method,
                       kernel_size=int(p.get("kernel_size", 2)),
                       stride=int(p.get("stride", 1)),
                       pad=int(p.get("pad", 0)))
    if type_name == "LRN":
        p = msg.get("lrn_param", {})
        return LRN(name, bottoms[0], tops[0],
                   local_size=int(p.get("local_size", 5)),
                   alpha=float(p.get("alpha", 1e-4)),
                   beta=float(p.get("beta", 0.75)))
    if type_name == "Concat":
        return Concat(name, bottoms, tops[0])
    if type_name == "InnerProduct":
        p = msg.get("inner_product_param", {})
        s = shapes[bottoms[0]]
        return InnerProduct(name, bottoms[0], tops[0],
                            num_output=int(p["num_output"]),
                            num_input=s.c * s.h * s.w)
    if type_name == "Softmax":
        return Softmax(name, bottoms[0], tops[0])
    if type_name == "Dropout":
        p = msg.get("dropout_param", {})
        return Dropout(name, bottoms[0], tops[0],
                       dropout_ratio=float(p.get("dropout_ratio", 0.5)))
    raise GraphError(f"unsupported layer type {type_name!r}")
