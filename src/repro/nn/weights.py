"""Deterministic synthetic "pre-trained" weights.

The paper uses the BVLC GoogLeNet caffemodel — ~28 MB of proprietary-
scale trained parameters we cannot ship or retrain here.  The
substitution (DESIGN.md §2) is a *statistically calibrated* model:

1. Every conv/FC layer gets deterministic He-scaled Gaussian weights,
   seeded per layer name, so features are a fixed random projection
   with well-behaved activation magnitudes (safe for FP16).
2. The final classifier row for class *c* is set to the network's own
   feature response to that class's canonical template image (computed
   once through the real network).  Images of class *c* are templates
   plus noise, so top-1 accuracy is a smooth, controllable function of
   the dataset noise level — and both precision paths (FP32 / FP16)
   run the *same real network* end to end.
"""

from __future__ import annotations

import hashlib
from pathlib import Path
from typing import Callable

import numpy as np

from repro.errors import GraphError
from repro.nn.googlenet import feature_blob_name
from repro.nn.graph import Network


def _layer_rng(seed: int, layer_name: str, role: str) -> np.random.Generator:
    """Deterministic RNG per (seed, layer, role), stable across runs."""
    digest = hashlib.sha256(
        f"{seed}:{layer_name}:{role}".encode()).digest()
    return np.random.default_rng(int.from_bytes(digest[:8], "little"))


def initialize_network(net: Network, seed: int = 0) -> None:
    """Install He-scaled Gaussian weights into every parameterised layer.

    Fan-in scaling (``std = sqrt(2 / fan_in)``) keeps activation
    variance roughly constant through the ReLU stack, which keeps every
    intermediate tensor comfortably inside FP16's dynamic range.
    """
    for layer in net.layers:
        if not layer.params:
            continue
        new = {}
        for role, arr in layer.params.items():
            rng = _layer_rng(seed, layer.name, role)
            if role == "bias" or arr.ndim == 1:
                new[role] = np.zeros_like(arr)
            else:
                fan_in = int(np.prod(arr.shape[1:]))
                std = np.sqrt(2.0 / fan_in)
                new[role] = rng.normal(
                    0.0, std, size=arr.shape).astype(np.float32)
        layer.set_params(**new)
    net.invalidate_weight_cache()


class WeightStore:
    """Builds and installs the calibrated synthetic-pretrained weights.

    Parameters
    ----------
    seed:
        Master seed; the same seed always produces bit-identical weights.
    logit_scale:
        Multiplier applied to the class-prototype classifier rows.
        Larger values sharpen softmax confidences.
    """

    def __init__(self, seed: int = 0, logit_scale: float = 8.0) -> None:
        self.seed = seed
        self.logit_scale = float(logit_scale)

    def pretrain(self, net: Network,
                 class_template: Callable[[int], np.ndarray],
                 num_classes: int,
                 classifier_layer: str = "loss3/classifier",
                 feature_blob: str | None = None,
                 batch: int = 32) -> None:
        """Install backbone weights and calibrate the classifier.

        ``class_template(c)`` must return the canonical CHW image for
        class *c* (the noise-free centre of that class's image
        distribution — see :mod:`repro.data.generator`).
        ``feature_blob`` names the pre-classifier blob (defaults to
        GoogLeNet's; pass ``alexnet_feature_blob()`` for AlexNet).
        """
        initialize_network(net, seed=self.seed)
        feats = self._template_features(
            net, class_template, num_classes, batch,
            feature_blob or feature_blob_name())
        # Prototype construction with a margin guarantee.  The raw
        # features of a random ReLU network share a large common
        # component, so rows are built from *centred* features, and the
        # bias subtracts the mean at inference time:
        #
        #   logit_k(x) = a * <u_k, f(x) - m>,  u_k = (f_k - m)/|f_k - m|
        #
        # For the noise-free template of class c, Cauchy-Schwarz gives
        # logit_c = a*|f_c - m| >= logit_k for every k, with equality
        # only if two centred features are parallel — so templates
        # always classify correctly, and noisy samples degrade smoothly.
        mean = feats.mean(axis=0)
        centred = feats - mean
        norms = np.linalg.norm(centred, axis=1, keepdims=True)
        norms[norms == 0] = 1.0
        units = centred / norms
        alpha = self.logit_scale / float(norms.mean())
        rows = (units * alpha).astype(np.float32)
        bias = (-rows @ mean).astype(np.float32)

        clf = net.layer(classifier_layer)
        if clf.params["weight"].shape != rows.shape:
            raise ValueError(
                f"classifier shape {clf.params['weight'].shape} != "
                f"prototype matrix {rows.shape}; check num_classes")
        clf.set_params(weight=rows, bias=bias)
        net.invalidate_weight_cache()

    def _template_features(self, net: Network,
                           class_template: Callable[[int], np.ndarray],
                           num_classes: int,
                           batch: int,
                           feature_blob: str) -> np.ndarray:
        """Feature vectors of every class template through the backbone."""
        feats = []
        for start in range(0, num_classes, batch):
            stop = min(start + batch, num_classes)
            imgs = np.stack([np.asarray(class_template(c), dtype=np.float32)
                             for c in range(start, stop)])
            _, captured = net.forward_with_blobs(
                imgs, capture=[feature_blob])
            feats.append(captured[feature_blob].reshape(stop - start, -1))
        return np.concatenate(feats, axis=0)


def save_weights(net: Network, path: str | Path) -> None:
    """Write every parameter to an ``.npz`` archive (caffemodel role).

    Keys are ``<layer name>/<role>``; layer names may contain ``/``
    already (GoogLeNet style), which npz keys tolerate.
    """
    arrays = {}
    for layer in net.layers:
        for role, arr in layer.params.items():
            arrays[f"{layer.name}::{role}"] = arr
    np.savez_compressed(str(path), **arrays)


def load_weights(net: Network, path: str | Path,
                 strict: bool = True) -> None:
    """Install parameters saved with :func:`save_weights`.

    ``strict=True`` requires an exact match between the archive and
    the network's parameter slots (missing or extra entries raise).
    """
    with np.load(str(path)) as archive:
        available = set(archive.files)
        expected = {f"{layer.name}::{role}"
                    for layer in net.layers
                    for role in layer.params}
        if strict:
            missing = expected - available
            extra = available - expected
            if missing or extra:
                raise GraphError(
                    f"weight archive mismatch: missing={sorted(missing)[:3]} "
                    f"extra={sorted(extra)[:3]}")
        for layer in net.layers:
            updates = {}
            for role in layer.params:
                key = f"{layer.name}::{role}"
                if key in available:
                    updates[role] = archive[key]
            if updates:
                layer.set_params(**updates)
    net.invalidate_weight_cache()
