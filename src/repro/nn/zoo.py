"""Model zoo: named network configurations.

``googlenet`` is the paper-faithful geometry; ``alexnet`` is the other
standard NCS benchmark network (grouped convolutions, giant FC
layers).  The ``mini``/``micro`` variants keep each full topology at
reduced width/geometry so functional experiments run in seconds on the
NumPy substrate; EXPERIMENTS.md records which variant each experiment
used.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.errors import GraphError
from repro.nn.alexnet import AlexNetConfig, build_alexnet
from repro.nn.googlenet import GoogLeNetConfig, build_googlenet
from repro.nn.graph import Network
from repro.nn.tinydet import TinyDetConfig, build_tinydet


@dataclass(frozen=True)
class ModelEntry:
    """Zoo entry: builder + config + human description."""

    name: str
    config: Any
    builder: Callable[[Any], Network]
    description: str
    #: Pre-classifier feature blob (for WeightStore.pretrain) and the
    #: classifier layer name.
    feature_blob: str
    classifier_layer: str

    def build(self) -> Network:
        """Construct a fresh zero-initialised network."""
        return self.builder(self.config)


def _googlenet_entry(name: str, config: GoogLeNetConfig,
                     description: str) -> ModelEntry:
    return ModelEntry(name, config, build_googlenet, description,
                      feature_blob="pool5/drop_7x7_s1",
                      classifier_layer="loss3/classifier")


def _alexnet_entry(name: str, config: AlexNetConfig,
                   description: str) -> ModelEntry:
    return ModelEntry(name, config, build_alexnet, description,
                      feature_blob="fc7", classifier_layer="fc8")


_ZOO: dict[str, ModelEntry] = {
    "googlenet": _googlenet_entry(
        "googlenet",
        GoogLeNetConfig(num_classes=1000, input_size=224, width=1.0),
        "BVLC GoogLeNet deploy geometry (paper scale: 224px, 1000 "
        "classes)"),
    "googlenet-mini": _googlenet_entry(
        "googlenet-mini",
        GoogLeNetConfig(num_classes=50, input_size=64, width=0.25),
        "Same topology at 64px / quarter width / 50 classes; default "
        "scale for functional experiments"),
    "googlenet-micro": _googlenet_entry(
        "googlenet-micro",
        GoogLeNetConfig(num_classes=10, input_size=32, width=0.125),
        "Smallest full-topology variant (32px), used by the test "
        "suite"),
    "alexnet": _alexnet_entry(
        "alexnet",
        AlexNetConfig(num_classes=1000, input_size=227, width=1.0),
        "BVLC AlexNet deploy geometry (227px, grouped convs, 1000 "
        "classes)"),
    "alexnet-mini": _alexnet_entry(
        "alexnet-mini",
        AlexNetConfig(num_classes=50, input_size=79, width=0.25),
        "AlexNet topology at 79px / quarter width / 50 classes"),
    "tinydet": ModelEntry(
        "tinydet",
        TinyDetConfig(input_size=64, num_boxes=4, width=1.0),
        build_tinydet,
        "Synthetic single-shot detection head (64px, 4 candidate "
        "boxes); the detector class for multi-model workflows",
        feature_blob="pool2", classifier_layer="det_head"),
    "tinydet-micro": ModelEntry(
        "tinydet-micro",
        TinyDetConfig(input_size=32, num_boxes=3, width=0.5),
        build_tinydet,
        "Smallest detector variant (32px, 3 boxes), used by the test "
        "suite and --smoke workflows",
        feature_blob="pool2", classifier_layer="det_head"),
}


def list_models() -> list[str]:
    """Names of all registered models."""
    return sorted(_ZOO)


def model_entry(name: str) -> ModelEntry:
    """Zoo entry for *name*."""
    try:
        return _ZOO[name]
    except KeyError:
        raise GraphError(
            f"unknown model {name!r}; available: {list_models()}") from None


def get_model(name: str) -> Network:
    """Build a zero-initialised network from the zoo."""
    return model_entry(name).build()
