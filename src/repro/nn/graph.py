"""DAG network container with Caffe-style named blobs.

A :class:`Network` is an ordered list of layers wired by blob names.
Construction validates the wiring (every bottom must be produced before
it is consumed; exactly one producer per blob), so execution is a simple
in-order sweep — the same invariant Caffe's net initialisation enforces.

Execution takes a :class:`~repro.numerics.quant.PrecisionPolicy`:

* FP32 — the reference CPU/GPU path; weights and activations untouched.
* FP16 — the VPU path; weights rounded once (cached), every layer
  output rounded through binary16 before the next layer reads it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Sequence

import numpy as np

from repro.errors import GraphError, ShapeError
from repro.numerics.quant import PrecisionPolicy
from repro.nn.layer import Layer
from repro.tensors.layout import BlobShape


@dataclass(frozen=True)
class LayerCost:
    """Static per-layer cost summary used by compilers and timing models."""

    name: str
    type_name: str
    macs: int
    param_bytes: int
    activation_bytes: int


class Network:
    """An inference network: input blob + ordered, validated layers."""

    def __init__(self, name: str, input_blob: str,
                 input_shape: BlobShape) -> None:
        self.name = name
        self.input_blob = input_blob
        self.input_shape = input_shape
        self.layers: list[Layer] = []
        self._producers: dict[str, str] = {input_blob: "<input>"}
        # Cache of FP16-quantised parameters, built lazily per layer.
        self._fp16_params: dict[str, dict[str, np.ndarray]] = {}
        # Cached execution plans (fused steps + blob refcounts) keyed
        # by the capture set; invalidated when the topology changes.
        self._plan_cache: dict[frozenset,
                               tuple[list, dict[str, int]]] = {}

    # -- construction ---------------------------------------------------
    def add(self, layer: Layer) -> Layer:
        """Append a layer, validating blob wiring."""
        if any(l.name == layer.name for l in self.layers):
            raise GraphError(f"duplicate layer name {layer.name!r}")
        for bottom in layer.bottoms:
            if bottom not in self._producers:
                raise GraphError(
                    f"layer {layer.name!r} reads undefined blob "
                    f"{bottom!r}")
        for top in layer.tops:
            if top in self._producers and top not in layer.bottoms:
                # In-place layers (ReLU top == bottom) are allowed,
                # matching Caffe's in-place computation convention.
                raise GraphError(
                    f"blob {top!r} already produced by "
                    f"{self._producers[top]!r}")
            self._producers[top] = layer.name
        self.layers.append(layer)
        self._fp16_params.pop(layer.name, None)
        self._plan_cache.clear()
        return layer

    def __len__(self) -> int:
        return len(self.layers)

    def __iter__(self) -> Iterator[Layer]:
        return iter(self.layers)

    def layer(self, name: str) -> Layer:
        """Look up a layer by name."""
        for l in self.layers:
            if l.name == name:
                return l
        raise GraphError(f"no layer named {name!r} in {self.name!r}")

    @property
    def output_blob(self) -> str:
        """The top of the final layer."""
        if not self.layers:
            raise GraphError(f"network {self.name!r} has no layers")
        return self.layers[-1].tops[-1]

    # -- shape inference -------------------------------------------------
    def infer_shapes(
            self, batch: Optional[int] = None) -> dict[str, BlobShape]:
        """Shapes of every blob for the given batch size."""
        shape = (self.input_shape if batch is None
                 else self.input_shape.with_batch(batch))
        shapes: dict[str, BlobShape] = {self.input_blob: shape}
        for layer in self.layers:
            inputs = [shapes[b] for b in layer.bottoms]
            for top, out in zip(layer.tops, layer.output_shapes(inputs)):
                shapes[top] = out
        return shapes

    def validate(self) -> None:
        """Run shape inference end-to-end; raises on any mismatch."""
        self.infer_shapes()

    # -- cost model --------------------------------------------------------
    def layer_costs(self, batch: int = 1,
                    bytes_per_element: int = 4) -> list[LayerCost]:
        """Static cost table (MACs, bytes) for every layer.

        ``bytes_per_element`` sets the storage precision the byte
        columns are quoted at (4 for FP32 hosts, 2 for the FP16 VPU
        tier), so ``sum(c.param_bytes ...)`` always agrees with
        :meth:`total_param_bytes` at the same precision.
        """
        shapes = self.infer_shapes(batch)
        costs = []
        for layer in self.layers:
            inputs = [shapes[b] for b in layer.bottoms]
            costs.append(LayerCost(
                name=layer.name,
                type_name=layer.type_name(),
                macs=layer.macs(inputs),
                param_bytes=layer.param_bytes(bytes_per_element),
                activation_bytes=layer.activation_bytes(
                    inputs, bytes_per_element),
            ))
        return costs

    def total_macs(self, batch: int = 1) -> int:
        """Total multiply-accumulates for one forward pass."""
        return sum(c.macs for c in self.layer_costs(batch))

    def total_param_bytes(self, bytes_per_element: int = 4) -> int:
        """Total parameter storage at the given precision."""
        return sum(l.param_bytes(bytes_per_element) for l in self.layers)

    # -- execution ------------------------------------------------------------
    def _params_for(self, layer: Layer,
                    policy: PrecisionPolicy) -> dict[str, np.ndarray]:
        if (not policy.quantize_weights or not layer.params
                or not policy.applies_to(layer.name)):
            return layer.params
        cached = self._fp16_params.get(layer.name)
        if cached is None:
            cached = {role: policy.quantize_weight_array(arr)
                      for role, arr in layer.params.items()}
            self._fp16_params[layer.name] = cached
        return cached

    def invalidate_weight_cache(self) -> None:
        """Drop cached quantised weights (call after mutating params)."""
        self._fp16_params.clear()

    def _exec_plan(self, capture: frozenset
                   ) -> tuple[list, dict[str, int]]:
        """Execution plan: (layer, fused_relu) steps + blob refcounts.

        A Convolution immediately followed by the plain ReLU that is
        its sole consumer executes as one fused step: the ReLU is
        applied in place on the convolution output, skipping the
        intermediate blob round-trip.  Fusion never changes values —
        ``max(x, 0)`` is exact in every dtype and FP16 rounding is
        idempotent across it — so results are bit-identical to the
        unfused sweep.  Out-of-place ReLUs whose bottom is captured
        stay unfused so the pre-activation blob remains observable.
        """
        cached = self._plan_cache.get(capture)
        if cached is not None:
            return cached
        from repro.nn.conv import Convolution
        from repro.nn.relu import ReLU

        keep = set(capture) | {self.output_blob}
        consumers: dict[str, int] = {}
        for l in self.layers:
            for b in l.bottoms:
                consumers[b] = consumers.get(b, 0) + 1

        steps: list = []
        i = 0
        layers = self.layers
        while i < len(layers):
            layer = layers[i]
            fused = None
            if i + 1 < len(layers) and isinstance(layer, Convolution):
                nxt = layers[i + 1]
                if (isinstance(nxt, ReLU)
                        and nxt.negative_slope == 0.0
                        and len(layer.tops) == 1
                        and list(nxt.bottoms) == [layer.tops[0]]):
                    in_place = nxt.tops[0] == nxt.bottoms[0]
                    lone = (consumers.get(layer.tops[0], 0) == 1
                            and layer.tops[0] not in keep)
                    if in_place or lone:
                        fused = nxt
            steps.append((layer, fused))
            i += 2 if fused is not None else 1

        refcount: dict[str, int] = {}
        for layer, _ in steps:
            for b in layer.bottoms:
                refcount[b] = refcount.get(b, 0) + 1
        self._plan_cache[capture] = (steps, refcount)
        return steps, refcount

    def forward(self, x: np.ndarray,
                policy: Optional[PrecisionPolicy] = None,
                capture: Optional[Sequence[str]] = None) -> np.ndarray:
        """Run inference on a batch.

        Parameters
        ----------
        x:
            Input batch, NCHW float array.
        policy:
            Precision policy (default FP32 reference).
        capture:
            Optional blob names whose values to retain; retrieve with
            :meth:`forward_with_blobs` instead for the full mapping.
        """
        out, _ = self.forward_with_blobs(x, policy, capture or ())
        return out

    def forward_with_blobs(
            self, x: np.ndarray, policy: Optional[PrecisionPolicy] = None,
            capture: Sequence[str] = (),
    ) -> tuple[np.ndarray, dict[str, np.ndarray]]:
        """Like :meth:`forward`, also returning requested blob values."""
        policy = policy or PrecisionPolicy.fp32()
        x = np.asarray(x, dtype=np.float32)
        if x.ndim != 4:
            raise ShapeError(f"input must be NCHW, got ndim={x.ndim}")
        expected = self.input_shape
        if x.shape[1:] != (expected.c, expected.h, expected.w):
            raise ShapeError(
                f"input shape {x.shape[1:]} != network geometry "
                f"({expected.c}, {expected.h}, {expected.w})")

        if policy.quantize_input_blob:
            # Host-side FP16 input conversion (the OpenEXR step); the
            # per-layer ablation policies keep the input in FP32 so
            # only the selected layers contribute drift, and the back
            # half of a split network keeps its input (the cut blob)
            # exactly as the front half produced it.
            x = policy.quantize_activation_array(x)
        blobs: dict[str, np.ndarray] = {self.input_blob: x}
        captured: dict[str, np.ndarray] = {}
        # The plan carries fused Conv+ReLU steps and the blob
        # reference counts that let us free dead activations as we
        # sweep — peak memory stays near the true working set.
        steps, base_refcount = self._exec_plan(frozenset(capture))
        refcount = dict(base_refcount)
        keep = set(capture) | {self.output_blob}

        for layer, fused in steps:
            bottoms = layer.bottoms
            inputs = [blobs[b] for b in bottoms]
            saved_params = None
            applies = policy.applies_to(layer.name)
            if policy.quantize_weights and layer.params and applies:
                saved_params = layer.params
                layer.params = self._params_for(layer, policy)
            try:
                outputs = layer.forward(inputs)
            finally:
                if saved_params is not None:
                    layer.params = saved_params
            if fused is None:
                for top, out in zip(layer.tops, outputs):
                    out = np.asarray(out, dtype=np.float32)
                    if applies:
                        out = policy.quantize_activation_array(out)
                    blobs[top] = out
                    if top in keep:
                        captured[top] = out
            else:
                # Fused Conv+ReLU: rectify in place on the conv
                # output (freshly allocated, so mutation is safe).
                out = np.asarray(outputs[0], dtype=np.float32)
                if applies:
                    out = policy.quantize_activation_array(out)
                np.maximum(out, 0.0, out=out)
                if policy.applies_to(fused.name):
                    out = policy.quantize_activation_array(out)
                top = fused.tops[0]
                blobs[top] = out
                if top in keep:
                    captured[top] = out
            for b in bottoms:
                left = refcount[b] - 1
                refcount[b] = left
                if left == 0 and b not in keep:
                    blobs.pop(b, None)

        return blobs[self.output_blob], captured

    def predict(self, x: np.ndarray,
                policy: Optional[PrecisionPolicy] = None
                ) -> tuple[np.ndarray, np.ndarray]:
        """Top-1 labels and confidences for a batch.

        Returns ``(labels, confidences)`` where labels has shape (N,)
        and confidences the corresponding softmax probabilities.
        """
        probs = self.forward(x, policy).reshape(x.shape[0], -1)
        labels = probs.argmax(axis=1)
        return labels, probs[np.arange(len(labels)), labels]

    def __repr__(self) -> str:
        return (f"<Network {self.name!r} layers={len(self.layers)} "
                f"input={self.input_shape}>")
