"""Fully-connected (Caffe ``InnerProduct``) layer."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.nn.layer import Layer, register_layer
from repro.tensors.layout import BlobShape


@register_layer
class InnerProduct(Layer):
    """``y = W @ flatten(x) + b``; GoogLeNet's 1024->1000 classifier."""

    def __init__(self, name: str, bottom: str, top: str, *,
                 num_output: int, num_input: int) -> None:
        super().__init__(name, [bottom], [top])
        if num_output < 1 or num_input < 1:
            raise ValueError(f"{name}: dimensions must be >= 1")
        self.num_output = num_output
        self.num_input = num_input
        self.params = {
            "weight": np.zeros((num_output, num_input), dtype=np.float32),
            "bias": np.zeros(num_output, dtype=np.float32),
        }

    def output_shapes(
            self, input_shapes: Sequence[BlobShape]) -> list[BlobShape]:
        self._expect_bottoms(input_shapes, 1)
        s = input_shapes[0]
        flat = s.c * s.h * s.w
        if flat != self.num_input:
            from repro.errors import ShapeError
            raise ShapeError(
                f"{self.name}: flattened input {flat} != num_input "
                f"{self.num_input}")
        return [BlobShape(s.n, self.num_output, 1, 1)]

    def forward(self, inputs: Sequence[np.ndarray]) -> list[np.ndarray]:
        x = inputs[0]
        flat = x.reshape(x.shape[0], -1)
        out = flat @ self.params["weight"].T + self.params["bias"]
        return [out.reshape(x.shape[0], self.num_output, 1, 1)]

    def macs(self, input_shapes: Sequence[BlobShape]) -> int:
        return input_shapes[0].n * self.num_output * self.num_input
