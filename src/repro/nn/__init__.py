"""From-scratch CNN inference engine (the Caffe substrate).

The paper's three execution targets all consume the same pre-trained
Caffe GoogLeNet; this package provides the equivalent substrate: NCHW
layer implementations with Caffe semantics, a DAG network container,
the full GoogLeNet topology (Szegedy et al., 2015) and a deterministic
synthetic-pretrained weight store.

Only inference is implemented — the NCS platform performs no training
(paper §II-B, footnote 2), and neither do we.
"""

from repro.nn.layer import Layer, LAYER_REGISTRY, register_layer
from repro.nn.conv import Convolution
from repro.nn.relu import ReLU
from repro.nn.pool import Pooling, PoolMethod
from repro.nn.lrn import LRN
from repro.nn.concat import Concat
from repro.nn.inner_product import InnerProduct
from repro.nn.softmax import Softmax
from repro.nn.dropout import Dropout
from repro.nn.graph import Network
from repro.nn.googlenet import build_googlenet, GoogLeNetConfig
from repro.nn.alexnet import build_alexnet, AlexNetConfig
from repro.nn.weights import WeightStore, initialize_network
from repro.nn.zoo import get_model, list_models

__all__ = [
    "Layer",
    "LAYER_REGISTRY",
    "register_layer",
    "Convolution",
    "ReLU",
    "Pooling",
    "PoolMethod",
    "LRN",
    "Concat",
    "InnerProduct",
    "Softmax",
    "Dropout",
    "Network",
    "build_googlenet",
    "GoogLeNetConfig",
    "build_alexnet",
    "AlexNetConfig",
    "WeightStore",
    "initialize_network",
    "get_model",
    "list_models",
]
