"""Rectified linear unit."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.nn.layer import Layer, register_layer
from repro.tensors.layout import BlobShape


@register_layer
class ReLU(Layer):
    """Element-wise ``max(0, x)``.

    Supports Caffe's ``negative_slope`` for leaky variants (0 = plain
    ReLU, the GoogLeNet default).
    """

    def __init__(self, name: str, bottom: str, top: str, *,
                 negative_slope: float = 0.0) -> None:
        super().__init__(name, [bottom], [top])
        self.negative_slope = float(negative_slope)

    def output_shapes(
            self, input_shapes: Sequence[BlobShape]) -> list[BlobShape]:
        self._expect_bottoms(input_shapes, 1)
        return [input_shapes[0]]

    def forward(self, inputs: Sequence[np.ndarray]) -> list[np.ndarray]:
        x = inputs[0]
        if self.negative_slope == 0.0:
            return [np.maximum(x, 0.0)]
        return [np.where(x > 0, x, x * self.negative_slope).astype(
            x.dtype, copy=False)]

    def macs(self, input_shapes: Sequence[BlobShape]) -> int:
        # One compare per element; count as one op for roofline purposes.
        return input_shapes[0].count
