"""Max and average pooling with Caffe ceil-mode geometry."""

from __future__ import annotations

import enum
from typing import Sequence

import numpy as np

from repro.errors import ShapeError
from repro.nn.layer import Layer, register_layer
from repro.tensors.layout import BlobShape, pool_output_hw


class PoolMethod(enum.Enum):
    """Pooling operators supported by Caffe's ``PoolingParameter``."""

    MAX = "max"
    AVE = "ave"


@register_layer
class Pooling(Layer):
    """Spatial pooling.

    ``global_pooling=True`` pools the whole feature map regardless of
    input size (Caffe's ``global_pooling``), used for GoogLeNet's final
    average pool so the topology works at any input geometry.

    Average pooling uses *inclusive* counting over the padded window
    (Caffe's historical behaviour).
    """

    def __init__(self, name: str, bottom: str, top: str, *,
                 method: PoolMethod = PoolMethod.MAX,
                 kernel_size: int = 2, stride: int = 1, pad: int = 0,
                 global_pooling: bool = False) -> None:
        super().__init__(name, [bottom], [top])
        self.method = method
        self.kernel_size = kernel_size
        self.stride = stride
        self.pad = pad
        self.global_pooling = global_pooling
        if global_pooling and pad != 0:
            raise ShapeError(f"{name}: global pooling cannot be padded")

    def _geometry(self, s: BlobShape) -> tuple[int, int, int]:
        """(kernel_h==kernel_w, stride, pad) resolved for this input."""
        if self.global_pooling:
            if s.h != s.w:
                raise ShapeError(
                    f"{self.name}: global pooling needs square input, "
                    f"got {s.h}x{s.w}")
            return s.h, 1, 0
        return self.kernel_size, self.stride, self.pad

    def output_shapes(
            self, input_shapes: Sequence[BlobShape]) -> list[BlobShape]:
        self._expect_bottoms(input_shapes, 1)
        s = input_shapes[0]
        k, stride, pad = self._geometry(s)
        oh, ow = pool_output_hw(s.h, s.w, k, stride, pad)
        return [BlobShape(s.n, s.c, oh, ow)]

    def forward(self, inputs: Sequence[np.ndarray]) -> list[np.ndarray]:
        x = inputs[0]
        n, c, h, w = x.shape
        s = BlobShape(n, c, h, w)
        k, stride, pad = self._geometry(s)
        oh, ow = pool_output_hw(h, w, k, stride, pad)

        if self.method is PoolMethod.MAX:
            fill = np.float32(-np.inf)
        else:
            fill = np.float32(0.0)
        xp = np.full((n, c, h + 2 * pad + k, w + 2 * pad + k), fill,
                     dtype=x.dtype)
        xp[:, :, pad:pad + h, pad:pad + w] = x

        # Each (di, dj) window offset is a strided *view* of the padded
        # input — no per-offset gather copies.  Max pooling folds the
        # views with a running in-place maximum (exact in any order);
        # average pooling still stacks and uses NumPy's pairwise sum so
        # results stay bit-identical to the stacked reduction.
        def window(di: int, dj: int) -> np.ndarray:
            return xp[:, :, di:di + stride * (oh - 1) + 1:stride,
                      dj:dj + stride * (ow - 1) + 1:stride]

        if self.method is PoolMethod.MAX:
            out = np.array(window(0, 0))
            for di in range(k):
                for dj in range(k):
                    if di or dj:
                        np.maximum(out, window(di, dj), out=out)
            return [out]
        stack = np.empty((k * k, n, c, oh, ow), dtype=x.dtype)
        for di in range(k):
            for dj in range(k):
                stack[di * k + dj] = window(di, dj)
        # Caffe averages over the full k*k window including padding.
        return [stack.sum(axis=0) / np.float32(k * k)]

    def macs(self, input_shapes: Sequence[BlobShape]) -> int:
        out = self.output_shapes(input_shapes)[0]
        s = input_shapes[0]
        k, _, _ = self._geometry(s)
        return out.count * k * k
