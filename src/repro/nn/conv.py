"""Convolution layer (Caffe semantics, square kernels, groups)."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import ShapeError
from repro.nn.layer import Layer, register_layer
from repro.tensors.im2col import conv2d_gemm
from repro.tensors.layout import BlobShape, conv_output_hw


@register_layer
class Convolution(Layer):
    """2-D convolution lowered to GEMM via im2col.

    Parameters mirror Caffe's ``convolution_param``: ``num_output``,
    ``kernel_size``, ``stride``, ``pad`` and ``group`` (grouped
    convolution, as AlexNet's conv2/4/5 use).  Weights are laid out
    ``(num_output, in_channels / group, k, k)``.
    """

    def __init__(self, name: str, bottom: str, top: str, *,
                 num_output: int, kernel_size: int, in_channels: int,
                 stride: int = 1, pad: int = 0, group: int = 1) -> None:
        super().__init__(name, [bottom], [top])
        if num_output < 1:
            raise ValueError(f"{name}: num_output must be >= 1")
        if group < 1:
            raise ValueError(f"{name}: group must be >= 1")
        if in_channels % group or num_output % group:
            raise ShapeError(
                f"{name}: group {group} must divide in_channels "
                f"{in_channels} and num_output {num_output}")
        self.num_output = num_output
        self.kernel_size = kernel_size
        self.stride = stride
        self.pad = pad
        self.in_channels = in_channels
        self.group = group
        self.params = {
            "weight": np.zeros(
                (num_output, in_channels // group, kernel_size,
                 kernel_size), dtype=np.float32),
            "bias": np.zeros(num_output, dtype=np.float32),
        }

    def output_shapes(
            self, input_shapes: Sequence[BlobShape]) -> list[BlobShape]:
        self._expect_bottoms(input_shapes, 1)
        s = input_shapes[0]
        if s.c != self.in_channels:
            raise ShapeError(
                f"{self.name}: input channels {s.c} != configured "
                f"{self.in_channels}")
        oh, ow = conv_output_hw(s.h, s.w, self.kernel_size, self.stride,
                                self.pad)
        return [BlobShape(s.n, self.num_output, oh, ow)]

    def forward(self, inputs: Sequence[np.ndarray]) -> list[np.ndarray]:
        x = inputs[0]
        w = self.params["weight"]
        b = self.params["bias"]
        if self.group == 1:
            return [conv2d_gemm(x, w, b, self.stride, self.pad)]
        # Grouped path: split channels, convolve per group, concat.
        cin_g = self.in_channels // self.group
        cout_g = self.num_output // self.group
        outs = []
        for g in range(self.group):
            xg = x[:, g * cin_g:(g + 1) * cin_g]
            wg = w[g * cout_g:(g + 1) * cout_g]
            bg = b[g * cout_g:(g + 1) * cout_g]
            outs.append(conv2d_gemm(xg, wg, bg, self.stride, self.pad))
        return [np.concatenate(outs, axis=1)]

    def macs(self, input_shapes: Sequence[BlobShape]) -> int:
        out = self.output_shapes(input_shapes)[0]
        per_output = (self.in_channels // self.group
                      ) * self.kernel_size ** 2
        return out.count * per_output
