"""Layer base class and registry.

Layers follow Caffe's bottom/top blob convention: a layer reads its
input blobs (*bottoms*) from the network's blob table and writes its
output blobs (*tops*).  Each layer also reports its compute and memory
footprint (:meth:`Layer.macs`, :meth:`Layer.param_count`), which the
VPU graph compiler and the device timing models consume.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.errors import GraphError, ShapeError
from repro.tensors.layout import BlobShape

#: Global registry mapping layer type names to classes.
LAYER_REGISTRY: dict[str, type["Layer"]] = {}


def register_layer(cls: type["Layer"]) -> type["Layer"]:
    """Class decorator adding a layer type to :data:`LAYER_REGISTRY`."""
    type_name = cls.type_name()
    if type_name in LAYER_REGISTRY:
        raise GraphError(f"duplicate layer type {type_name!r}")
    LAYER_REGISTRY[type_name] = cls
    return cls


class Layer:
    """Base class for network layers.

    Parameters
    ----------
    name:
        Unique layer name within the network.
    bottoms:
        Names of input blobs.
    tops:
        Names of output blobs.
    """

    def __init__(self, name: str, bottoms: Sequence[str],
                 tops: Sequence[str]) -> None:
        if not name:
            raise GraphError("layer name must be non-empty")
        self.name = name
        self.bottoms = list(bottoms)
        self.tops = list(tops)
        #: learnable parameters by role ("weight", "bias")
        self.params: dict[str, np.ndarray] = {}

    # -- identity -------------------------------------------------------
    @classmethod
    def type_name(cls) -> str:
        """Caffe-style layer type string (class name by default)."""
        return cls.__name__

    # -- shape inference --------------------------------------------------
    def output_shapes(
            self, input_shapes: Sequence[BlobShape]) -> list[BlobShape]:
        """Shapes of the top blobs given bottom shapes."""
        raise NotImplementedError

    def _expect_bottoms(self, shapes: Sequence, n: int) -> None:
        if len(shapes) != n:
            raise ShapeError(
                f"{self.name}: expected {n} input(s), got {len(shapes)}")

    # -- execution ----------------------------------------------------------
    def forward(self, inputs: Sequence[np.ndarray]) -> list[np.ndarray]:
        """Compute top blobs from bottom blobs (float32 in, float32 out)."""
        raise NotImplementedError

    # -- cost model -----------------------------------------------------------
    def macs(self, input_shapes: Sequence[BlobShape]) -> int:
        """Multiply-accumulate operations per forward pass (whole batch)."""
        return 0

    def param_count(self) -> int:
        """Number of learnable parameters."""
        return sum(int(p.size) for p in self.params.values())

    def param_bytes(self, bytes_per_element: int = 4) -> int:
        """Parameter storage size at the given precision."""
        return self.param_count() * bytes_per_element

    def activation_bytes(self, input_shapes: Sequence[BlobShape],
                         bytes_per_element: int = 4) -> int:
        """Output activation storage for one forward pass."""
        return sum(s.count for s in self.output_shapes(input_shapes)
                   ) * bytes_per_element

    # -- weight plumbing -------------------------------------------------------
    def set_params(self, **arrays: np.ndarray) -> None:
        """Install parameter arrays after validating their shapes."""
        for role, arr in arrays.items():
            if role not in self.params:
                raise GraphError(
                    f"{self.name}: no parameter slot {role!r}")
            expected = self.params[role].shape
            arr = np.asarray(arr, dtype=np.float32)
            if arr.shape != expected:
                raise ShapeError(
                    f"{self.name}.{role}: shape {arr.shape} != {expected}")
            self.params[role] = np.ascontiguousarray(arr)

    def __repr__(self) -> str:
        return (f"<{self.type_name()} {self.name!r} "
                f"{self.bottoms}->{self.tops}>")


def quantized_params(layer: Layer,
                     quantize: Callable[[np.ndarray], np.ndarray]
                     ) -> dict[str, np.ndarray]:
    """Apply a quantisation function to every parameter of *layer*."""
    return {role: quantize(arr) for role, arr in layer.params.items()}
