"""Local Response Normalisation (across channels).

GoogLeNet's stem uses two LRN layers with Caffe defaults
(``local_size=5, alpha=1e-4, beta=0.75``).  The across-channel variant
normalises each activation by a window of neighbouring channels:

    y = x / (k + alpha/n * sum(x_j^2 for j in window))^beta
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import ShapeError
from repro.nn.layer import Layer, register_layer
from repro.tensors.layout import BlobShape


@register_layer
class LRN(Layer):
    """Across-channel local response normalisation."""

    def __init__(self, name: str, bottom: str, top: str, *,
                 local_size: int = 5, alpha: float = 1e-4,
                 beta: float = 0.75, k: float = 1.0) -> None:
        super().__init__(name, [bottom], [top])
        if local_size < 1 or local_size % 2 == 0:
            raise ShapeError(
                f"{name}: local_size must be odd and >= 1, got {local_size}")
        self.local_size = local_size
        self.alpha = float(alpha)
        self.beta = float(beta)
        self.k = float(k)

    def output_shapes(
            self, input_shapes: Sequence[BlobShape]) -> list[BlobShape]:
        self._expect_bottoms(input_shapes, 1)
        return [input_shapes[0]]

    def forward(self, inputs: Sequence[np.ndarray]) -> list[np.ndarray]:
        x = inputs[0]
        c = x.shape[1]
        half = self.local_size // 2
        sq = x.astype(np.float32) ** 2
        # Sliding-window channel sum via a padded cumulative sum:
        # window_sum[c] = cum[c + half + 1] - cum[c - half].
        cum = np.cumsum(
            np.pad(sq, ((0, 0), (1, 0), (0, 0), (0, 0))), axis=1)
        hi = np.minimum(np.arange(c) + half + 1, c)
        lo = np.maximum(np.arange(c) - half, 0)
        window = cum[:, hi] - cum[:, lo]
        scale = (self.k + (self.alpha / self.local_size) * window)
        return [(x * scale ** (-self.beta)).astype(np.float32, copy=False)]

    def macs(self, input_shapes: Sequence[BlobShape]) -> int:
        # square + window add + pow + divide per element ~ local_size ops
        return input_shapes[0].count * self.local_size
