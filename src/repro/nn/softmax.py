"""Numerically-stable softmax over the channel axis."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.nn.layer import Layer, register_layer
from repro.tensors.layout import BlobShape


@register_layer
class Softmax(Layer):
    """``softmax(x)`` along channels; the network's confidence output.

    Subtracting the per-sample maximum before exponentiation keeps the
    computation in range even for FP16-quantised logits.
    """

    def __init__(self, name: str, bottom: str, top: str) -> None:
        super().__init__(name, [bottom], [top])

    def output_shapes(
            self, input_shapes: Sequence[BlobShape]) -> list[BlobShape]:
        self._expect_bottoms(input_shapes, 1)
        return [input_shapes[0]]

    def forward(self, inputs: Sequence[np.ndarray]) -> list[np.ndarray]:
        x = inputs[0]
        shifted = x - x.max(axis=1, keepdims=True)
        e = np.exp(shifted.astype(np.float32))
        return [e / e.sum(axis=1, keepdims=True)]

    def macs(self, input_shapes: Sequence[BlobShape]) -> int:
        # exp + add + divide per element ~ 3 ops
        return input_shapes[0].count * 3
