"""Channel concatenation (the join at the end of every inception module)."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import ShapeError
from repro.nn.layer import Layer, register_layer
from repro.tensors.layout import BlobShape


@register_layer
class Concat(Layer):
    """Concatenate bottoms along the channel axis."""

    def __init__(self, name: str, bottoms: Sequence[str],
                 top: str) -> None:
        if len(bottoms) < 2:
            raise ShapeError(f"{name}: concat needs >= 2 inputs")
        super().__init__(name, bottoms, [top])

    def output_shapes(
            self, input_shapes: Sequence[BlobShape]) -> list[BlobShape]:
        self._expect_bottoms(input_shapes, len(self.bottoms))
        first = input_shapes[0]
        for s in input_shapes[1:]:
            if (s.n, s.h, s.w) != (first.n, first.h, first.w):
                raise ShapeError(
                    f"{self.name}: incompatible concat shapes "
                    f"{first} vs {s}")
        channels = sum(s.c for s in input_shapes)
        return [BlobShape(first.n, channels, first.h, first.w)]

    def forward(self, inputs: Sequence[np.ndarray]) -> list[np.ndarray]:
        return [np.concatenate(list(inputs), axis=1)]

    def macs(self, input_shapes: Sequence[BlobShape]) -> int:
        return 0  # pure data movement
