"""Dropout — identity at inference time.

Caffe scales activations during *training* only; the deploy network
(which is all the NCS, CPU and GPU paths run) passes data through
unchanged.  The layer exists so the GoogLeNet deploy topology matches
the prototxt layer-for-layer.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.nn.layer import Layer, register_layer
from repro.tensors.layout import BlobShape


@register_layer
class Dropout(Layer):
    """Inference-mode dropout (identity)."""

    def __init__(self, name: str, bottom: str, top: str, *,
                 dropout_ratio: float = 0.5) -> None:
        super().__init__(name, [bottom], [top])
        if not 0.0 <= dropout_ratio < 1.0:
            raise ValueError(
                f"{name}: dropout_ratio must be in [0, 1), got "
                f"{dropout_ratio}")
        self.dropout_ratio = float(dropout_ratio)

    def output_shapes(
            self, input_shapes: Sequence[BlobShape]) -> list[BlobShape]:
        self._expect_bottoms(input_shapes, 1)
        return [input_shapes[0]]

    def forward(self, inputs: Sequence[np.ndarray]) -> list[np.ndarray]:
        return [inputs[0]]

    def macs(self, input_shapes: Sequence[BlobShape]) -> int:
        return 0
