"""AlexNet (Krizhevsky et al., 2012) deploy topology.

The Neural Compute Stick's standard benchmark set pairs GoogLeNet with
AlexNet (the Dexmont et al. robotics benchmarking study the paper
cites runs both); having a second topology also exercises grouped
convolutions and the giant-FC tiling path that GoogLeNet never hits —
fc6's ~37M parameters dwarf the 2 MB CMX and must stream from DDR.

Geometry follows the BVLC ``deploy.prototxt``: 227x227 input, grouped
conv2/4/5, two LRNs, three max pools, fc6/fc7 (4096) and the 1000-way
classifier.  Like the GoogLeNet builder, ``width`` scales channels and
``input_size`` the geometry; the FC sizes derive from the actual
flattened shape so any valid input size works.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import GraphError
from repro.nn.conv import Convolution
from repro.nn.dropout import Dropout
from repro.nn.graph import Network
from repro.nn.inner_product import InnerProduct
from repro.nn.lrn import LRN
from repro.nn.pool import Pooling, PoolMethod
from repro.nn.relu import ReLU
from repro.nn.softmax import Softmax
from repro.tensors.layout import BlobShape


@dataclass(frozen=True)
class AlexNetConfig:
    """Scale configuration for the AlexNet builder."""

    num_classes: int = 1000
    input_size: int = 227
    width: float = 1.0
    include_lrn: bool = True

    def __post_init__(self) -> None:
        if self.num_classes < 2:
            raise GraphError("num_classes must be >= 2")
        if self.input_size < 63:
            raise GraphError(
                f"input_size must be >= 63 for the 11x11/4 stem, got "
                f"{self.input_size}")
        if not 0.0 < self.width <= 1.0:
            raise GraphError(f"width must be in (0, 1], got {self.width}")

    def ch(self, base: int, group: int = 1) -> int:
        """Scale a channel count, keeping it divisible by *group*."""
        scaled = max(group, round(base * self.width))
        return scaled - scaled % group or group


def build_alexnet(config: AlexNetConfig | None = None) -> Network:
    """Construct the AlexNet deploy network (weights zero-initialised)."""
    cfg = config or AlexNetConfig()
    net = Network(
        name=f"alexnet-w{cfg.width}-{cfg.input_size}px",
        input_blob="data",
        input_shape=BlobShape(1, 3, cfg.input_size, cfg.input_size))

    def conv_relu(name, bottom, *, num_output, kernel, in_channels,
                  stride=1, pad=0, group=1):
        net.add(Convolution(name, bottom, name, num_output=num_output,
                            kernel_size=kernel, in_channels=in_channels,
                            stride=stride, pad=pad, group=group))
        net.add(ReLU(f"relu_{name}", name, name))
        return name

    # conv1 feeds the grouped conv2, so its width-scaled channel count
    # must stay divisible by the group as well.
    c96 = cfg.ch(96, group=2)
    c256 = cfg.ch(256, group=2)
    c384 = cfg.ch(384, group=2)
    fc_dim = cfg.ch(4096)

    top = conv_relu("conv1", "data", num_output=c96, kernel=11,
                    in_channels=3, stride=4)
    if cfg.include_lrn:
        net.add(LRN("norm1", top, "norm1"))
        top = "norm1"
    net.add(Pooling("pool1", top, "pool1", method=PoolMethod.MAX,
                    kernel_size=3, stride=2))
    top = "pool1"

    top = conv_relu("conv2", top, num_output=c256, kernel=5,
                    in_channels=c96, pad=2, group=2)
    if cfg.include_lrn:
        net.add(LRN("norm2", top, "norm2"))
        top = "norm2"
    net.add(Pooling("pool2", top, "pool2", method=PoolMethod.MAX,
                    kernel_size=3, stride=2))
    top = "pool2"

    top = conv_relu("conv3", top, num_output=c384, kernel=3,
                    in_channels=c256, pad=1)
    top = conv_relu("conv4", top, num_output=c384, kernel=3,
                    in_channels=c384, pad=1, group=2)
    top = conv_relu("conv5", top, num_output=c256, kernel=3,
                    in_channels=c384, pad=1, group=2)
    net.add(Pooling("pool5", top, "pool5", method=PoolMethod.MAX,
                    kernel_size=3, stride=2))
    top = "pool5"

    s = net.infer_shapes()[top]
    flat = s.c * s.h * s.w
    net.add(InnerProduct("fc6", top, "fc6", num_output=fc_dim,
                         num_input=flat))
    net.add(ReLU("relu_fc6", "fc6", "fc6"))
    net.add(Dropout("drop6", "fc6", "fc6", dropout_ratio=0.5))
    net.add(InnerProduct("fc7", "fc6", "fc7", num_output=fc_dim,
                         num_input=fc_dim))
    net.add(ReLU("relu_fc7", "fc7", "fc7"))
    net.add(Dropout("drop7", "fc7", "fc7", dropout_ratio=0.5))
    net.add(InnerProduct("fc8", "fc7", "fc8",
                         num_output=cfg.num_classes, num_input=fc_dim))
    net.add(Softmax("prob", "fc8", "prob"))

    net.validate()
    return net


def alexnet_feature_blob() -> str:
    """Blob holding the pre-classifier features (after drop7)."""
    return "fc7"
