"""TinyDet: a synthetic single-shot detection head.

The zoo's other networks are classifiers; multi-model workflows
(:mod:`repro.flow`) need a *detector* in front of them — the
detect→crop→classify cascade is the canonical multi-phase vision
pipeline.  TinyDet is a deliberately small conv head (two conv/pool
blocks and one fully-connected regression layer) whose output vector
encodes ``num_boxes`` candidate boxes as ``(cx, cy, w, h, score)``
tuples.  It compiles through the VPU compiler like any zoo model, so a
detection stage costs realistic simulated time, and it is cheap enough
that a cascade's first phase never dwarfs its second.

Determinism contract: :func:`decode_detections` is a pure function of
the network output, and :func:`seeded_detections` draws boxes from a
caller-supplied seeded RNG — either way, the same inputs always yield
the same boxes and scores, which is what makes workflow runs replay
byte-identically.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import GraphError
from repro.nn.conv import Convolution
from repro.nn.graph import Network
from repro.nn.inner_product import InnerProduct
from repro.nn.pool import Pooling, PoolMethod
from repro.nn.relu import ReLU
from repro.tensors.layout import BlobShape

#: Values per box in the regression output: cx, cy, w, h, score.
BOX_FIELDS = 5


@dataclass(frozen=True)
class TinyDetConfig:
    """Scale configuration for the TinyDet builder."""

    input_size: int = 64
    num_boxes: int = 4
    width: float = 1.0

    def __post_init__(self) -> None:
        if self.input_size < 16:
            raise GraphError(
                f"input_size must be >= 16 for the two pooled stages, "
                f"got {self.input_size}")
        if self.num_boxes < 1:
            raise GraphError(
                f"num_boxes must be >= 1, got {self.num_boxes}")
        if not 0.0 < self.width <= 1.0:
            raise GraphError(
                f"width must be in (0, 1], got {self.width}")

    def ch(self, base: int) -> int:
        """Scale a channel count by the width multiplier."""
        return max(1, round(base * self.width))


@dataclass(frozen=True)
class Detection:
    """One decoded candidate box in input-pixel coordinates."""

    x: float       #: left edge
    y: float       #: top edge
    w: float       #: width
    h: float       #: height
    score: float   #: confidence in [0, 1]


def build_tinydet(config: TinyDetConfig | None = None) -> Network:
    """Construct the TinyDet network (weights zero-initialised)."""
    cfg = config or TinyDetConfig()
    net = Network(
        name=f"tinydet-w{cfg.width}-{cfg.input_size}px",
        input_blob="data",
        input_shape=BlobShape(1, 3, cfg.input_size, cfg.input_size))

    c16 = cfg.ch(16)
    c32 = cfg.ch(32)
    net.add(Convolution("conv1", "data", "conv1", num_output=c16,
                        kernel_size=3, in_channels=3, stride=2, pad=1))
    net.add(ReLU("relu_conv1", "conv1", "conv1"))
    net.add(Pooling("pool1", "conv1", "pool1", method=PoolMethod.MAX,
                    kernel_size=2, stride=2))
    net.add(Convolution("conv2", "pool1", "conv2", num_output=c32,
                        kernel_size=3, in_channels=c16, pad=1))
    net.add(ReLU("relu_conv2", "conv2", "conv2"))
    net.add(Pooling("pool2", "conv2", "pool2", method=PoolMethod.MAX,
                    kernel_size=2, stride=2))
    s = net.infer_shapes()["pool2"]
    net.add(InnerProduct("det_head", "pool2", "det_head",
                         num_output=BOX_FIELDS * cfg.num_boxes,
                         num_input=s.c * s.h * s.w))
    net.validate()
    return net


def tinydet_feature_blob() -> str:
    """Blob holding the pre-head features (after pool2)."""
    return "pool2"


def _squash(v: float) -> float:
    """Numerically stable logistic squash onto (0, 1)."""
    if v >= 0:
        return 1.0 / (1.0 + math.exp(-v))
    e = math.exp(v)
    return e / (1.0 + e)


def decode_detections(output: np.ndarray, input_size: int,
                      min_score: float = 0.0) -> list[Detection]:
    """Decode a TinyDet head output into candidate boxes.

    ``output`` is the flat ``det_head`` activation (``5 * num_boxes``
    values).  Each quintuple maps through a logistic squash onto the
    input square: centre and size are fractions of ``input_size``
    (size floored at 1/8th of the frame so crops never degenerate),
    and the fifth value is the confidence score.  Boxes are returned
    sorted by descending score, ties by decoded order, and boxes
    scoring below ``min_score`` are dropped.
    """
    flat = np.asarray(output).ravel()
    if flat.size % BOX_FIELDS != 0:
        raise GraphError(
            f"detection output length {flat.size} is not a multiple "
            f"of {BOX_FIELDS}")
    boxes: list[Detection] = []
    for i in range(flat.size // BOX_FIELDS):
        cx, cy, w, h, raw = (float(v)
                             for v in flat[i * BOX_FIELDS:
                                           (i + 1) * BOX_FIELDS])
        score = _squash(raw)
        if score < min_score:
            continue
        bw = (0.125 + 0.875 * _squash(w)) * input_size
        bh = (0.125 + 0.875 * _squash(h)) * input_size
        x = _squash(cx) * input_size - bw / 2.0
        y = _squash(cy) * input_size - bh / 2.0
        boxes.append(Detection(
            x=max(0.0, min(x, input_size - bw)),
            y=max(0.0, min(y, input_size - bh)),
            w=bw, h=bh, score=score))
    boxes.sort(key=lambda b: (-b.score, b.x, b.y))
    return boxes


def seeded_detections(rng: np.random.Generator, num_boxes: int,
                      input_size: int) -> list[Detection]:
    """Draw a deterministic detection set from a seeded RNG.

    The timing-only oracle for workflow runs whose backends skip real
    inference: between 1 and ``num_boxes`` boxes, geometry and scores
    drawn from ``rng``, sorted by descending score like
    :func:`decode_detections`.  The same RNG state always yields the
    same boxes.
    """
    if num_boxes < 1:
        raise GraphError(f"num_boxes must be >= 1, got {num_boxes}")
    count = int(rng.integers(1, num_boxes + 1))
    boxes = []
    for _ in range(count):
        bw = float(rng.uniform(0.125, 1.0)) * input_size
        bh = float(rng.uniform(0.125, 1.0)) * input_size
        boxes.append(Detection(
            x=float(rng.uniform(0.0, input_size - bw)),
            y=float(rng.uniform(0.0, input_size - bh)),
            w=bw, h=bh, score=float(rng.uniform(0.0, 1.0))))
    boxes.sort(key=lambda b: (-b.score, b.x, b.y))
    return boxes
