"""GoogLeNet (Inception v1) topology builder.

Reproduces the BVLC GoogLeNet *deploy* network used by the paper —
the architecture of Szegedy et al., "Going deeper with convolutions"
(CVPR 2015): a 7x7/2 stem, two LRN layers, nine inception modules
(3a-3b, 4a-4e, 5a-5b), global average pooling, 40% dropout and a
single linear classifier.  The training-time auxiliary classifiers are
not part of the deploy prototxt and are therefore optional here.

Two scale knobs keep the NumPy substrate tractable without changing
the topology:

* ``width`` multiplies every channel count (1.0 = paper scale);
* ``input_size`` sets the input geometry (224 = paper scale).  The
  final pool is *global*, so any input size the stem can reduce works.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import GraphError
from repro.nn.concat import Concat
from repro.nn.conv import Convolution
from repro.nn.dropout import Dropout
from repro.nn.graph import Network
from repro.nn.inner_product import InnerProduct
from repro.nn.lrn import LRN
from repro.nn.pool import Pooling, PoolMethod
from repro.nn.relu import ReLU
from repro.nn.softmax import Softmax
from repro.tensors.layout import BlobShape

#: (1x1, 3x3reduce, 3x3, 5x5reduce, 5x5, pool_proj) per inception module,
#: exactly the BVLC GoogLeNet channel table.
INCEPTION_TABLE: dict[str, tuple[int, int, int, int, int, int]] = {
    "3a": (64, 96, 128, 16, 32, 32),
    "3b": (128, 128, 192, 32, 96, 64),
    "4a": (192, 96, 208, 16, 48, 64),
    "4b": (160, 112, 224, 24, 64, 64),
    "4c": (128, 128, 256, 24, 64, 64),
    "4d": (112, 144, 288, 32, 64, 64),
    "4e": (256, 160, 320, 32, 128, 128),
    "5a": (256, 160, 320, 32, 128, 128),
    "5b": (384, 192, 384, 48, 128, 128),
}

#: Inception modules after which a 3x3/2 max pool follows.
_POOL_AFTER = {"3b": "pool3", "4e": "pool4"}


@dataclass(frozen=True)
class GoogLeNetConfig:
    """Scale configuration for the GoogLeNet builder."""

    num_classes: int = 1000
    input_size: int = 224
    width: float = 1.0
    include_lrn: bool = True

    def __post_init__(self) -> None:
        if self.num_classes < 2:
            raise GraphError("num_classes must be >= 2")
        if self.input_size < 32:
            raise GraphError(
                f"input_size must be >= 32 so the stem can reduce it, "
                f"got {self.input_size}")
        if not 0.0 < self.width <= 1.0:
            raise GraphError(f"width must be in (0, 1], got {self.width}")

    def ch(self, base: int) -> int:
        """Scale a channel count by the width multiplier (min 1)."""
        return max(1, round(base * self.width))

    @property
    def paper_scale(self) -> bool:
        """True when this is the exact geometry the paper used."""
        return (self.num_classes == 1000 and self.input_size == 224
                and self.width == 1.0)


def _conv_relu(net: Network, name: str, bottom: str, *, num_output: int,
               kernel: int, in_channels: int, stride: int = 1,
               pad: int = 0) -> str:
    """Append conv + in-place ReLU; returns the top blob name."""
    net.add(Convolution(name, bottom, name, num_output=num_output,
                        kernel_size=kernel, in_channels=in_channels,
                        stride=stride, pad=pad))
    net.add(ReLU(f"relu_{name}", name, name))
    return name


def _inception(net: Network, tag: str, bottom: str, in_channels: int,
               cfg: GoogLeNetConfig) -> tuple[str, int]:
    """Append one inception module; returns (top blob, out channels)."""
    c1, c3r, c3, c5r, c5, cp = (cfg.ch(v) for v in INCEPTION_TABLE[tag])
    p = f"inception_{tag}"

    b1 = _conv_relu(net, f"{p}/1x1", bottom, num_output=c1, kernel=1,
                    in_channels=in_channels)

    b3r = _conv_relu(net, f"{p}/3x3_reduce", bottom, num_output=c3r,
                     kernel=1, in_channels=in_channels)
    b3 = _conv_relu(net, f"{p}/3x3", b3r, num_output=c3, kernel=3,
                    in_channels=c3r, pad=1)

    b5r = _conv_relu(net, f"{p}/5x5_reduce", bottom, num_output=c5r,
                     kernel=1, in_channels=in_channels)
    b5 = _conv_relu(net, f"{p}/5x5", b5r, num_output=c5, kernel=5,
                    in_channels=c5r, pad=2)

    net.add(Pooling(f"{p}/pool", bottom, f"{p}/pool",
                    method=PoolMethod.MAX, kernel_size=3, stride=1, pad=1))
    bp = _conv_relu(net, f"{p}/pool_proj", f"{p}/pool", num_output=cp,
                    kernel=1, in_channels=in_channels)

    top = f"{p}/output"
    net.add(Concat(top, [b1, b3, b5, bp], top))
    return top, c1 + c3 + c5 + cp


def build_googlenet(config: GoogLeNetConfig | None = None) -> Network:
    """Construct the GoogLeNet deploy network (weights zero-initialised).

    Use :func:`repro.nn.weights.initialize_network` or a
    :class:`~repro.nn.weights.WeightStore` to install the synthetic
    pre-trained parameters.
    """
    cfg = config or GoogLeNetConfig()
    net = Network(
        name=f"googlenet-w{cfg.width}-{cfg.input_size}px",
        input_blob="data",
        input_shape=BlobShape(1, 3, cfg.input_size, cfg.input_size))

    # --- stem ------------------------------------------------------------
    c64, c192 = cfg.ch(64), cfg.ch(192)
    top = _conv_relu(net, "conv1/7x7_s2", "data", num_output=c64,
                     kernel=7, in_channels=3, stride=2, pad=3)
    net.add(Pooling("pool1/3x3_s2", top, "pool1/3x3_s2",
                    method=PoolMethod.MAX, kernel_size=3, stride=2))
    top = "pool1/3x3_s2"
    if cfg.include_lrn:
        net.add(LRN("pool1/norm1", top, "pool1/norm1"))
        top = "pool1/norm1"
    top = _conv_relu(net, "conv2/3x3_reduce", top, num_output=c64,
                     kernel=1, in_channels=c64)
    top = _conv_relu(net, "conv2/3x3", top, num_output=c192, kernel=3,
                     in_channels=c64, pad=1)
    if cfg.include_lrn:
        net.add(LRN("conv2/norm2", top, "conv2/norm2"))
        top = "conv2/norm2"
    net.add(Pooling("pool2/3x3_s2", top, "pool2/3x3_s2",
                    method=PoolMethod.MAX, kernel_size=3, stride=2))
    top = "pool2/3x3_s2"

    # --- nine inception modules with interleaved pools ---------------------
    channels = c192
    for tag in INCEPTION_TABLE:
        top, channels = _inception(net, tag, top, channels, cfg)
        if tag in _POOL_AFTER:
            pool_name = f"{_POOL_AFTER[tag]}/3x3_s2"
            net.add(Pooling(pool_name, top, pool_name,
                            method=PoolMethod.MAX, kernel_size=3,
                            stride=2))
            top = pool_name

    # --- head ----------------------------------------------------------------
    net.add(Pooling("pool5/drop_in", top, "pool5/drop_in",
                    method=PoolMethod.AVE, global_pooling=True))
    net.add(Dropout("pool5/drop_7x7_s1", "pool5/drop_in",
                    "pool5/drop_7x7_s1", dropout_ratio=0.4))
    net.add(InnerProduct("loss3/classifier", "pool5/drop_7x7_s1",
                         "loss3/classifier", num_output=cfg.num_classes,
                         num_input=channels))
    net.add(Softmax("prob", "loss3/classifier", "prob"))

    net.validate()
    return net


def feature_blob_name() -> str:
    """Blob holding the pre-classifier feature vector (after dropout)."""
    return "pool5/drop_7x7_s1"
