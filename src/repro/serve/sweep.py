"""Load sweep: the maximum sustainable arrival rate under an SLO.

The serving analogue of the paper's scaling study (Fig. 6a): instead
of "how many images per second do n sticks push through a closed
loop", the question becomes "what open-loop arrival rate can n sticks
*sustain* while keeping p99 end-to-end latency inside the SLO and
losing nothing".  The answer is found by bisection on the arrival
rate: below capacity the queue stays short and p99 hugs the service
time; past capacity the queue grows without bound and p99 explodes,
so the sustainable/unsustainable boundary is sharp and monotone —
exactly what bisection wants.

Determinism: each probe reuses the same workload seed, so the whole
sweep is reproducible and the bracket shrinks identically run to
run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.errors import FrameworkError
from repro.serve.slo import ServeResult

#: Bisection steps per sweep point; 12 halvings of the bracket give
#: ~0.05% rate resolution, far below run-to-run workload noise.
BISECTION_STEPS = 12


@dataclass(frozen=True)
class SweepPoint:
    """One probed arrival rate and its outcome."""

    rate: float
    sustainable: bool
    p99: Optional[float]
    completed: int
    offered: int


@dataclass
class SweepResult:
    """Outcome of one load sweep (one backend configuration)."""

    label: str
    max_rate: float
    slo_seconds: float
    points: list[SweepPoint]

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (f"{self.label}: max sustainable rate "
                f"{self.max_rate:.1f} req/s under p99 <= "
                f"{self.slo_seconds * 1000:.0f} ms "
                f"({len(self.points)} probes)")


def find_max_rate(run_at: Callable[[float], ServeResult],
                  slo_seconds: float,
                  hi: float,
                  lo: float = 0.0,
                  steps: int = BISECTION_STEPS,
                  label: str = "") -> SweepResult:
    """Bisect for the largest sustainable arrival rate in [lo, hi].

    ``run_at(rate)`` must run one serving experiment at that arrival
    rate and return its :class:`ServeResult` (judged against
    *slo_seconds* — the probe is sustainable when ``slo_met``: every
    request completed and p99 within the SLO).  ``hi`` should
    over-estimate capacity (e.g. 2x the closed-loop throughput); if
    even ``lo`` is unsustainable the result's ``max_rate`` is 0.
    """
    if slo_seconds <= 0:
        raise FrameworkError("slo_seconds must be positive")
    if hi <= lo or lo < 0:
        raise FrameworkError(
            f"need 0 <= lo < hi, got lo={lo}, hi={hi}")
    if steps < 1:
        raise FrameworkError("steps must be >= 1")

    points: list[SweepPoint] = []

    def probe(rate: float) -> bool:
        result = run_at(rate)
        ok = result.slo_met
        try:
            p99: Optional[float] = result.p99
        except ValueError:
            p99 = None
        points.append(SweepPoint(
            rate=rate, sustainable=ok, p99=p99,
            completed=result.completed, offered=result.offered))
        return ok

    # Establish the bracket: hi must be unsustainable for bisection
    # to mean anything; double outward a few times if it is not.
    # ``good`` starts at the *unprobed* lo, so until a probe sustains
    # it is only a bracket edge, not a demonstrated rate.
    good, bad = lo, hi
    good_proven = False
    for _ in range(4):
        if not probe(bad):
            break
        good, bad = bad, bad * 2.0
        good_proven = True
    else:
        # Even the final doubling sustained: report that as the floor.
        return SweepResult(label=label, max_rate=good,
                           slo_seconds=slo_seconds, points=points)

    for _ in range(steps):
        mid = 0.5 * (good + bad)
        if probe(mid):
            good = mid
            good_proven = True
        else:
            bad = mid
    if not good_proven:
        # Every probe was unsustainable and lo was never touched:
        # demonstrate lo rather than report an unproven floor.  A lo
        # of 0 is trivially sustainable (no arrivals) and not probed.
        good = lo if lo > 0 and probe(lo) else 0.0
    return SweepResult(label=label, max_rate=good,
                       slo_seconds=slo_seconds, points=points)


def render_sweep_table(results: list[SweepResult]) -> str:
    """Side-by-side sweep table (one row per configuration)."""
    if not results:
        return "load sweep: no results"
    slos = {r.slo_seconds for r in results}
    if len(slos) > 1:
        raise FrameworkError(
            "render_sweep_table: results were judged against "
            f"different SLOs ({sorted(slos)}) but the table header "
            "states a single one; sweep each configuration under the "
            "same SLO or render them separately")
    lines = [
        "load sweep: max sustainable arrival rate vs SLO",
        f"  SLO: p99 <= {results[0].slo_seconds * 1000:.0f} ms, "
        "no request lost",
        "",
        f"  {'config':<10} {'max req/s':>10} {'probes':>7} "
        f"{'scaling':>8}",
    ]
    base = results[0].max_rate
    for r in results:
        scaling = (f"{r.max_rate / base:>7.2f}x" if base > 0
                   else f"{'-':>8}")
        lines.append(f"  {r.label:<10} {r.max_rate:>10.1f} "
                     f"{len(r.points):>7} {scaling}")
    return "\n".join(lines)
