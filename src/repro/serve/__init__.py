"""repro.serve — online inference serving on the simulated stack.

The paper evaluates the NCS rig as a *batch* co-processor: a fixed
image set, fed as fast as the sticks drain it.  This package turns
the same simulated hardware into an *online service* — the regime the
ROADMAP's "heavy traffic from millions of users" north star actually
lives in — where requests arrive on their own clock and tail latency
under load, not aggregate throughput, decides viability:

* :mod:`workload` — seeded open-loop arrival processes (Poisson,
  bursty MMPP, diurnal ramp, trace replay) emitting :class:`Request`
  objects with arrival timestamps on the sim clock;
* :mod:`queue` — bounded admission queue with block / shed-oldest /
  reject-newest overload policies and per-request deadlines;
* :mod:`batcher` — dynamic batching (max batch size + max wait,
  Triton-style) sized to each backend's preferred batch;
* :mod:`router` — multi-backend dispatch (round-robin,
  least-outstanding, latency-EWMA) over the existing ``IntelVPU`` /
  ``IntelCPU`` / ``NvGPU`` targets, with re-routing on device death
  (reusing the fault-tolerant multi-VPU scheduler underneath);
* :mod:`slo` / :mod:`report` — per-request latency recording,
  p50/p95/p99 against a configurable SLO, goodput vs
  shed/timed-out/abandoned accounting;
* :mod:`server` — the :class:`InferenceServer` harness wiring it all
  onto one simulated timeline;
* :mod:`sweep` — bisection for the maximum sustainable arrival rate
  under a p99 SLO (the serving analogue of the paper's scaling
  study).

Everything is deterministic: seeded workloads on the DES kernel's
reproducible clock mean two runs with the same configuration produce
byte-identical SLO reports.
"""

from repro.serve.workload import (
    ABANDONED,
    COMPLETED,
    PENDING,
    REJECTED,
    SHED,
    TIMED_OUT,
    BurstyWorkload,
    DiurnalWorkload,
    PoissonWorkload,
    Request,
    TraceWorkload,
    Workload,
)
from repro.serve.queue import (
    BLOCK,
    REJECT_NEWEST,
    SHED_OLDEST,
    AdmissionQueue,
)
from repro.serve.batcher import DynamicBatcher
from repro.serve.router import (
    LATENCY_EWMA,
    LEAST_OUTSTANDING,
    ROUND_ROBIN,
    Backend,
    Router,
)
from repro.serve.slo import ServeResult
from repro.serve.report import render_slo_report
from repro.serve.server import InferenceServer
from repro.serve.sweep import (
    SweepPoint,
    SweepResult,
    find_max_rate,
    render_sweep_table,
)

__all__ = [
    "Workload",
    "PoissonWorkload",
    "BurstyWorkload",
    "DiurnalWorkload",
    "TraceWorkload",
    "Request",
    "PENDING",
    "COMPLETED",
    "SHED",
    "REJECTED",
    "TIMED_OUT",
    "ABANDONED",
    "AdmissionQueue",
    "BLOCK",
    "SHED_OLDEST",
    "REJECT_NEWEST",
    "DynamicBatcher",
    "Router",
    "Backend",
    "ROUND_ROBIN",
    "LEAST_OUTSTANDING",
    "LATENCY_EWMA",
    "ServeResult",
    "render_slo_report",
    "InferenceServer",
    "SweepPoint",
    "SweepResult",
    "find_max_rate",
    "render_sweep_table",
]
