"""The online inference server: workload → queue → batcher → router.

:class:`InferenceServer` wires the serving layer together on one
simulated timeline, NCSw-style: register named targets, then ``run``
an open-loop workload through them.  Device preparation (stick boot,
graph allocation, host warm-up) happens before the measured window,
exactly as the batch framework does, so serving latency numbers are
steady-state numbers.

The run terminates when every offered request has resolved into one
of the five terminal states — completed, shed, rejected, timed out,
or abandoned — and the returned
:class:`~repro.serve.slo.ServeResult` enforces that accounting in
its constructor.  Everything is deterministic: a seeded workload plus
the DES kernel's determinism contract means two runs with the same
configuration produce byte-identical SLO reports.
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.errors import FrameworkError
from repro.ncsw.faults import FailureEvent
from repro.ncsw.targets import TargetDevice
from repro.serve.batcher import DynamicBatcher
from repro.serve.queue import POLICIES as ADMISSION_POLICIES
from repro.serve.queue import REJECT_NEWEST, AdmissionQueue
from repro.serve.router import ROUND_ROBIN, Backend, Router
from repro.serve.slo import ServeResult
from repro.serve.workload import Request, Workload
from repro.sim.core import Environment, Event

#: Maximum batcher wait (seconds) used when none is given: two
#: milliseconds, roughly one USB transfer — long enough to fill a
#: window under load, short enough to stay invisible in a 250 ms SLO.
DEFAULT_MAX_WAIT_S = 0.002


class InferenceServer:
    """Open-loop serving harness over prepared NCSw targets."""

    def __init__(self, *,
                 queue_depth: Optional[int] = 64,
                 admission: str = REJECT_NEWEST,
                 max_batch_size: Optional[int] = None,
                 max_wait_s: float = DEFAULT_MAX_WAIT_S,
                 policy: str = ROUND_ROBIN,
                 slo_seconds: Optional[float] = 0.250,
                 deadline_seconds: Optional[float] = None,
                 max_redirects: int = 1,
                 ewma_alpha: float = 0.2,
                 warmup: int = 0,
                 scheduler: Optional[str] = None,
                 obs=None) -> None:
        if admission not in ADMISSION_POLICIES:
            raise FrameworkError(
                f"unknown admission policy {admission!r}; one of "
                f"{ADMISSION_POLICIES}")
        if slo_seconds is not None and slo_seconds <= 0:
            raise FrameworkError(
                f"slo_seconds must be positive, got {slo_seconds}")
        if warmup < 0:
            raise FrameworkError("warmup must be >= 0")
        self.queue_depth = queue_depth
        self.admission = admission
        self.max_batch_size = max_batch_size
        self.max_wait_s = max_wait_s
        self.policy = policy
        self.slo_seconds = slo_seconds
        self.deadline_seconds = deadline_seconds
        self.max_redirects = max_redirects
        self.ewma_alpha = ewma_alpha
        self.warmup = warmup
        #: Scheduler kernel for the run's Environment ("heap"/"wheel");
        #: None defers to the REPRO_SIM_SCHEDULER env var.  Results are
        #: byte-identical across kernels (the determinism contract).
        self.scheduler = scheduler
        self.obs = obs
        self._targets: dict[str, TargetDevice] = {}

    def add_target(self, name: str, target: TargetDevice) -> None:
        """Register a serving backend under a unique name."""
        if name in self._targets:
            raise FrameworkError(f"duplicate target {name!r}")
        self._targets[name] = target

    # -- the run ---------------------------------------------------------
    def run(self, workload: Workload, num_requests: int) -> ServeResult:
        """Serve *num_requests* drawn from *workload*; blocks until
        every request has resolved and returns the accounting."""
        if not self._targets:
            raise FrameworkError("server needs at least one target")
        requests = workload.requests(
            num_requests, deadline_s=self.deadline_seconds)

        env = Environment(scheduler=self.scheduler)
        if self.obs is not None:
            self.obs.attach(env)

        state = _RunState(env, len(requests), warmup=self.warmup,
                          obs=env.obs)
        queue = AdmissionQueue(env, depth=self.queue_depth,
                               policy=self.admission,
                               on_drop=state.resolve)
        backends = [Backend(env, name, target)
                    for name, target in self._targets.items()]
        router = Router(env, backends, policy=self.policy,
                        max_redirects=self.max_redirects,
                        ewma_alpha=self.ewma_alpha,
                        on_complete=state.complete,
                        on_abandon=state.resolve)
        batcher = DynamicBatcher(env, queue, router,
                                 max_batch_size=self.max_batch_size,
                                 max_wait_s=self.max_wait_s,
                                 on_timeout=state.resolve)

        def main() -> Generator[Event, None, tuple[float, float]]:
            obs = env.obs
            prep = None
            if obs is not None:
                prep = obs.tracer.begin("prepare", track="serve",
                                        backends=len(backends))
            yield env.all_of([t.prepare(env)
                              for t in self._targets.values()])
            if obs is not None:
                obs.tracer.end(prep)
            t0 = env.now
            worker_procs = router.start()
            batcher_proc = batcher.run()
            yield env.process(_arrivals(env, requests, queue))
            yield state.all_resolved
            wall = env.now - t0
            # Orderly shutdown: pill the batcher, then the backends.
            # All work is resolved, so no pill can strand a request.
            queue.close()
            yield batcher_proc
            router.close()
            yield env.all_of(worker_procs)
            return wall, t0

        wall, epoch = env.run(until=env.process(main()))

        failures: list[FailureEvent] = []
        for target in self._targets.values():
            failures.extend(target.fault_stats().events)
        return ServeResult(
            offered=len(requests),
            completed=state.completed,
            shed=queue.shed_count,
            rejected=queue.rejected_count,
            timed_out=batcher.timed_out_count,
            abandoned=router.abandoned_count,
            wall_seconds=wall,
            prepare_seconds=epoch,
            slo_seconds=self.slo_seconds,
            requests=requests,
            failures=failures,
            warmup=min(self.warmup, state.completed),
        )


class _RunState:
    """Per-run resolution bookkeeping shared by the callbacks."""

    def __init__(self, env: Environment, offered: int, warmup: int,
                 obs) -> None:
        self.env = env
        self.offered = offered
        self.warmup = warmup
        self.obs = obs
        self.completed = 0
        self.resolved = 0
        self.all_resolved = env.event()

    def resolve(self, request: Request) -> None:
        """One request reached a non-completed terminal state."""
        self._count()

    def complete(self, batch: list[Request]) -> None:
        """A batch of requests completed; record latency metrics."""
        obs = self.obs
        for req in batch:
            self.completed += 1
            if obs is not None:
                metrics = obs.metrics
                if req.e2e_latency is not None:
                    metrics.histogram("serve.e2e_seconds").observe(
                        req.e2e_latency)
                if req.queue_wait is not None:
                    metrics.histogram(
                        "serve.queue_wait_seconds").observe(
                            req.queue_wait)
                if req.batch_wait is not None:
                    metrics.histogram(
                        "serve.batch_wait_seconds").observe(
                            req.batch_wait)
                if req.service_seconds is not None:
                    metrics.histogram(
                        "serve.service_seconds").observe(
                            req.service_seconds)
                metrics.counter("serve.completed").inc()
                if (self.warmup > 0
                        and self.completed == self.warmup):
                    # Steady-state window: drop the cold-start
                    # transient from the serving histograms.
                    for hist in list(metrics.histograms()):
                        if hist.name.startswith("serve."):
                            hist.reset()
            self._count()

    def _count(self) -> None:
        self.resolved += 1
        if self.resolved > self.offered:
            raise FrameworkError(
                "request resolved twice: serving accounting is "
                "broken")
        if self.resolved == self.offered:
            self.all_resolved.succeed()


def _arrivals(env: Environment, requests: list[Request],
              queue: AdmissionQueue) -> Generator[Event, None, None]:
    """Open-loop arrival process: requests land on their own clock.

    Workload arrival times are offsets from serving start; they are
    rebased onto the simulation clock here (device preparation has
    already consumed some simulated time).  Admission never stalls
    this loop — under the ``block`` policy the put pends in the
    background while arrivals keep their own schedule.
    """
    obs = env.obs
    epoch = env.now
    for request in requests:
        request.arrival_time += epoch
        if request.deadline_at is not None:
            request.deadline_at += epoch
        if request.arrival_time > env.now:
            yield env.timeout(request.arrival_time - env.now)
        if obs is not None:
            obs.metrics.counter("serve.offered").inc()
            # Backdate the arrival hop to the nominal arrival time so
            # the waterfall telescopes exactly to the e2e latency even
            # for same-instant burst arrivals.
            obs.reqtrace.begin(
                request, track="serve",
                t=obs.tracer.timestamp(request.arrival_time))
        queue.offer(request)
