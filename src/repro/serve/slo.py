"""SLO accounting: end-to-end latency percentiles vs a target.

A batch campaign is judged on throughput; a service is judged on a
*service-level objective* — "p99 end-to-end latency ≤ 250 ms", say —
and on *goodput*, the rate of requests that actually met it.  A
:class:`ServeResult` holds every request's full journey (queue wait,
batch wait, service time) plus the terminal accounting, and enforces
the same constructor invariant as
:class:`~repro.ncsw.pipeline.PipelineResult`: every offered request
resolves exactly once — completed, shed, rejected, timed out, or
abandoned to a device failure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.errors import FrameworkError
from repro.serve.workload import (
    ABANDONED,
    COMPLETED,
    REJECTED,
    SHED,
    TIMED_OUT,
    Request,
)

if TYPE_CHECKING:
    from repro.ncsw.faults import FailureEvent


@dataclass
class ServeResult:
    """Outcome of one open-loop serving run."""

    offered: int
    completed: int
    shed: int
    rejected: int
    timed_out: int
    abandoned: int
    wall_seconds: float
    #: Simulated time spent preparing the targets before serving
    #: started (the serving epoch on the simulation clock).
    prepare_seconds: float = 0.0
    #: The latency objective this run was judged against (seconds),
    #: or None when no SLO was configured.
    slo_seconds: Optional[float] = None
    #: Every offered request, in arrival order, with its timestamps.
    requests: list[Request] = field(default_factory=list)
    #: Device failures observed during the run (fault-tolerant mode).
    failures: list["FailureEvent"] = field(default_factory=list)
    #: Leading completed requests excluded from latency statistics
    #: (cold-start transient: empty batcher windows, cold EWMAs).
    warmup: int = 0

    def __post_init__(self) -> None:
        # Mirror PipelineResult: every offered request is accounted
        # for exactly once.
        accounted = (self.completed + self.shed + self.rejected
                     + self.timed_out + self.abandoned)
        if accounted != self.offered:
            raise FrameworkError(
                f"request accounting broken: {self.completed} "
                f"completed + {self.shed} shed + {self.rejected} "
                f"rejected + {self.timed_out} timed out + "
                f"{self.abandoned} abandoned != {self.offered} "
                "offered")
        if self.requests:
            by_status = {
                COMPLETED: self.completed, SHED: self.shed,
                REJECTED: self.rejected, TIMED_OUT: self.timed_out,
                ABANDONED: self.abandoned,
            }
            for status, expected in by_status.items():
                actual = sum(1 for r in self.requests
                             if r.status == status)
                if actual != expected:
                    raise FrameworkError(
                        f"{actual} requests in state {status!r} but "
                        f"the tally says {expected}")
        if self.warmup < 0:
            raise FrameworkError("warmup must be >= 0")

    # -- request views --------------------------------------------------
    def completed_requests(self) -> list[Request]:
        """Completed requests in arrival order."""
        return [r for r in self.requests if r.status == COMPLETED]

    def _steady_state(self) -> list[Request]:
        """Completed requests past the warmup transient."""
        return self.completed_requests()[self.warmup:]

    def e2e_latencies(self) -> list[float]:
        """Arrival-to-completion latency per steady-state request."""
        return [r.e2e_latency for r in self._steady_state()
                if r.e2e_latency is not None]

    def stage_latencies(self, stage: str) -> list[float]:
        """Per-stage latencies: queue_wait / batch_wait / service."""
        attr = {"queue_wait": "queue_wait",
                "batch_wait": "batch_wait",
                "service": "service_seconds"}.get(stage)
        if attr is None:
            raise FrameworkError(
                f"unknown stage {stage!r}; one of queue_wait, "
                "batch_wait, service")
        values = [getattr(r, attr) for r in self._steady_state()]
        return [v for v in values if v is not None]

    # -- percentiles ----------------------------------------------------
    def latency_percentile(self, q: float) -> float:
        """End-to-end latency percentile (q in [0, 100])."""
        latencies = self.e2e_latencies()
        if not latencies:
            raise ValueError(
                "no completed requests past warmup: latency "
                "percentiles are undefined for this run")
        return float(np.percentile(latencies, q))

    @property
    def p50(self) -> float:
        """Median end-to-end latency."""
        return self.latency_percentile(50)

    @property
    def p95(self) -> float:
        """95th-percentile end-to-end latency."""
        return self.latency_percentile(95)

    @property
    def p99(self) -> float:
        """99th-percentile end-to-end latency."""
        return self.latency_percentile(99)

    @property
    def mean_latency(self) -> float:
        """Mean end-to-end latency."""
        latencies = self.e2e_latencies()
        if not latencies:
            raise ValueError(
                "no completed requests past warmup: mean latency is "
                "undefined for this run")
        return float(np.mean(latencies))

    # -- rates ----------------------------------------------------------
    @property
    def throughput(self) -> float:
        """Completed requests per second of wall time."""
        if self.wall_seconds <= 0:
            raise FrameworkError("run has no elapsed time")
        return self.completed / self.wall_seconds

    @property
    def slo_attainment(self) -> float:
        """Fraction of steady-state completed requests whose e2e
        latency met the SLO (1.0 when no SLO was configured or nothing
        completed).  Judged over the same warmup-trimmed view as the
        latency percentiles, so attainment and p99 agree about which
        requests count."""
        if self.slo_seconds is None:
            return 1.0
        latencies = self.e2e_latencies()
        if not latencies:
            return 1.0
        good = sum(1 for lat in latencies
                   if lat <= self.slo_seconds)
        return good / len(latencies)

    @property
    def goodput(self) -> float:
        """Steady-state completed-within-SLO requests per second of
        wall time (warmup-trimmed, matching the latency percentiles)."""
        if self.wall_seconds <= 0:
            raise FrameworkError("run has no elapsed time")
        if self.slo_seconds is None:
            return self.throughput
        latencies = self.e2e_latencies()
        good = sum(1 for lat in latencies
                   if lat <= self.slo_seconds)
        return good / self.wall_seconds

    @property
    def loss_rate(self) -> float:
        """Fraction of offered requests that never completed."""
        if self.offered == 0:
            return 0.0
        return 1.0 - self.completed / self.offered

    @property
    def slo_met(self) -> bool:
        """True when p99 e2e latency is within the SLO and no request
        was lost (the load-sweep's sustainability criterion)."""
        if self.slo_seconds is None:
            raise FrameworkError("run has no SLO configured")
        if self.completed < self.offered:
            return False
        try:
            return self.p99 <= self.slo_seconds
        except ValueError:
            return False

    @property
    def degraded(self) -> bool:
        """True when any device failed or any request was abandoned."""
        return bool(self.failures) or self.abandoned > 0

    def per_backend_counts(self) -> dict[str, int]:
        """Completed requests per backend (routing balance check)."""
        counts: dict[str, int] = {}
        for r in self.completed_requests():
            assert r.backend is not None
            counts[r.backend] = counts.get(r.backend, 0) + 1
        return counts

    def summary(self) -> str:
        """One-line human-readable summary of the run."""
        head = (f"{self.completed}/{self.offered} requests in "
                f"{self.wall_seconds:.2f} s")
        losses = []
        if self.shed:
            losses.append(f"{self.shed} shed")
        if self.rejected:
            losses.append(f"{self.rejected} rejected")
        if self.timed_out:
            losses.append(f"{self.timed_out} timed out")
        if self.abandoned:
            losses.append(f"{self.abandoned} abandoned")
        if losses:
            head += " (" + ", ".join(losses) + ")"
        try:
            tail = (f", p50 {self.p50 * 1000:.1f} ms / p99 "
                    f"{self.p99 * 1000:.1f} ms")
        except ValueError:
            return head + ", no completed requests"
        if self.slo_seconds is not None:
            tail += (f", goodput {self.goodput:.1f} req/s vs SLO "
                     f"{self.slo_seconds * 1000:.0f} ms "
                     f"({'met' if self.slo_met else 'MISSED'})")
        return head + tail
