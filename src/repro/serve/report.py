"""Plain-text SLO report for a serving run.

Deterministic rendering: the report is a pure function of the
:class:`~repro.serve.slo.ServeResult`, so two runs with the same seed
produce byte-identical reports — the property the serving tests (and
CI smoke) pin down.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.serve.slo import ServeResult


def _pcts(values: list[float]) -> Optional[tuple[float, float, float, float]]:
    """(p50, p95, p99, mean) in milliseconds, or None when empty."""
    if not values:
        return None
    arr = np.asarray(values)
    return (float(np.percentile(arr, 50)) * 1000,
            float(np.percentile(arr, 95)) * 1000,
            float(np.percentile(arr, 99)) * 1000,
            float(np.mean(arr)) * 1000)


def render_slo_report(result: ServeResult,
                      workload: str = "",
                      alerts=None, policy=None) -> str:
    """Render the full human-readable serving report.

    Pass ``alerts`` (a list from
    :func:`repro.obs.alerts.serve_alerts`) to append an SLO-alert
    section; the default rendering is unchanged so existing golden
    outputs stay byte-identical.
    """
    lines = ["serve report"]
    if workload:
        lines.append(f"  workload       : {workload}")
    if result.wall_seconds > 0:
        lines.append(
            f"  offered        : {result.offered} requests over "
            f"{result.wall_seconds:.3f} s "
            f"({result.offered / result.wall_seconds:.1f} req/s "
            "offered)")
    else:
        lines.append(f"  offered        : {result.offered} requests")
    if result.prepare_seconds > 0:
        lines.append(
            f"  prepare        : {result.prepare_seconds * 1000:.1f} "
            "ms before serving started")
    if result.offered:
        lines.append(
            f"  completed      : {result.completed} "
            f"({result.completed / result.offered:.1%})")
    else:
        lines.append("  completed      : 0")
    dropped = [("shed", result.shed), ("rejected", result.rejected),
               ("timed out", result.timed_out),
               ("abandoned", result.abandoned)]
    for label, count in dropped:
        if count:
            lines.append(f"  {label:<15}: {count} "
                         f"({count / result.offered:.1%})")
    if result.warmup:
        lines.append(f"  warmup         : first {result.warmup} "
                     "completions excluded from latency stats")
    if result.failures:
        lines.append(f"  device failures: "
                     + ", ".join(sorted({f.device
                                         for f in result.failures})))

    stages = [("e2e", result.e2e_latencies()),
              ("queue wait", result.stage_latencies("queue_wait")),
              ("batch wait", result.stage_latencies("batch_wait")),
              ("service", result.stage_latencies("service"))]
    if any(values for _, values in stages):
        lines.append("")
        lines.append(f"  {'latency':<12} {'p50 ms':>9} {'p95 ms':>9} "
                     f"{'p99 ms':>9} {'mean ms':>9}")
        for label, values in stages:
            pct = _pcts(values)
            if pct is None:
                continue
            p50, p95, p99, mean = pct
            lines.append(f"  {label:<12} {p50:>9.2f} {p95:>9.2f} "
                         f"{p99:>9.2f} {mean:>9.2f}")

    if result.slo_seconds is not None:
        lines.append("")
        try:
            verdict = ("MET" if result.p99 <= result.slo_seconds
                       else "MISSED")
            lines.append(
                f"  SLO p99 <= {result.slo_seconds * 1000:.0f} ms : "
                f"{verdict} (p99 {result.p99 * 1000:.2f} ms, "
                f"attainment {result.slo_attainment:.1%})")
        except ValueError:
            lines.append(
                f"  SLO p99 <= {result.slo_seconds * 1000:.0f} ms : "
                "UNDEFINED (no completed requests)")
        if result.wall_seconds > 0:
            lines.append(
                f"  goodput        : {result.goodput:.1f} req/s "
                f"within SLO ({result.throughput:.1f} req/s "
                "completed)")

    backends = result.per_backend_counts()
    if backends:
        lines.append("")
        lines.append(f"  {'backend':<12} {'served':>7} {'share':>7}")
        for name in sorted(backends):
            count = backends[name]
            lines.append(
                f"  {name:<12} {count:>7} "
                f"{count / result.completed:>7.1%}")
    if alerts is not None:
        from repro.obs.alerts import render_alerts
        lines.append("")
        lines.append(render_alerts(alerts, policy=policy))
    return "\n".join(lines)
