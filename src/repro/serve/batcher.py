"""Dynamic batcher: max-batch-size + max-wait, Triton-style.

The serving layer's throughput/latency dial.  The batcher drains the
admission queue and forms batches under two limits: a size cap and a
wait cap measured from the first request in the window.  A batch is
dispatched as soon as either limit is hit, so an idle system serves
single requests at minimum latency while a busy one amortises
per-batch overheads.

The size cap is backend-aware: the VPU path peaks at batch ≈ number
of sticks (the multi-VPU scheduler deals one image per stick, so a
bigger batch only queues behind itself), while the CPU/GPU Caffe
paths genuinely gain from larger batches (MKL/cuDNN amortisation,
paper Fig. 6b).  The batcher therefore asks the router *which backend
comes next* and sizes the window to that backend's
``preferred_batch_size``, unless an explicit ``max_batch_size``
overrides it.

Per-request deadlines are enforced here, at dequeue time: a request
whose queue deadline has already expired is resolved ``timed_out``
and never occupies a batch slot.
"""

from __future__ import annotations

from typing import Callable, Generator, Optional

from repro.errors import FrameworkError
from repro.serve.queue import AdmissionQueue
from repro.serve.router import Router
from repro.serve.workload import TIMED_OUT, Request
from repro.sim.core import Environment, Event, Interrupt, Process


class DynamicBatcher:
    """Forms batches from the queue and hands them to the router."""

    def __init__(self, env: Environment, queue: AdmissionQueue,
                 router: Router,
                 max_batch_size: Optional[int] = None,
                 max_wait_s: float = 0.002,
                 on_timeout: Optional[Callable[[Request], None]] = None,
                 metrics_prefix: str = "serve") -> None:
        if max_batch_size is not None and max_batch_size < 1:
            raise FrameworkError(
                f"max_batch_size must be >= 1, got {max_batch_size}")
        if max_wait_s < 0:
            raise FrameworkError(
                f"max_wait_s must be >= 0, got {max_wait_s}")
        self.env = env
        self.queue = queue
        self.router = router
        self.max_batch_size = max_batch_size
        self.max_wait_s = max_wait_s
        self.on_timeout = on_timeout
        #: Metric/track namespace — cluster hosts use ``rank<N>``.
        self.metrics_prefix = metrics_prefix
        self.track = f"{metrics_prefix}/batcher"
        self.timed_out_count = 0
        self.batches_formed = 0
        self._process: Optional[Process] = None
        self._pending_get = None

    def run(self) -> Event:
        """Start the batcher process; completes at the poison pill."""
        self._process = self.env.process(self._run())
        return self._process

    def halt(self) -> None:
        """Stop the batcher immediately (cluster host death).

        Any half-formed window is simply dropped: its requests keep
        their PENDING status and stay owned by whoever dispatched them
        (the cluster frontend re-shards them).  The pending queue get,
        if any, is withdrawn so it cannot swallow a later item.
        """
        if self._process is not None and self._process.is_alive:
            self._process.interrupt("halt")
        if self._pending_get is not None:
            self.queue.cancel(self._pending_get)
            self._pending_get = None

    def _batch_cap(self) -> int:
        """Size cap for the next window (explicit or backend hint)."""
        if self.max_batch_size is not None:
            return self.max_batch_size
        backend = self.router.peek_next()
        if backend is None:
            return 1  # no live backend; batch shape is moot
        return backend.preferred_batch_size

    def _take(self, item: Optional[Request]) -> Optional[Request]:
        """Stamp a dequeued request, enforcing its queue deadline."""
        if item is None:
            return None
        item.dequeued_at = self.env.now
        obs = self.env.obs
        if (item.deadline_at is not None
                and self.env.now > item.deadline_at):
            self.timed_out_count += 1
            item.status = TIMED_OUT
            if obs is not None:
                obs.metrics.counter(
                    f"{self.metrics_prefix}.timed_out").inc()
                obs.tracer.instant("request_timed_out",
                                   track=self.metrics_prefix,
                                   request=item.request_id)
                obs.reqtrace.hop(item.trace, "timed_out",
                                 track=self.track)
            if self.on_timeout is not None:
                self.on_timeout(item)
            return None
        if obs is not None:
            obs.reqtrace.hop(item.trace, "dequeued", track=self.track)
        return item

    def _run(self) -> Generator[Event, None, None]:
        obs = self.env.obs
        try:
            while True:
                first: Optional[Request] = None
                while first is None:
                    get_ev = self.queue.get()
                    self._pending_get = get_ev
                    item = yield get_ev
                    self._pending_get = None
                    if item is None:
                        return  # poison pill: workload drained
                    first = self._take(item)
                cap = self._batch_cap()
                batch = [first]
                span = None
                if obs is not None:
                    span = obs.tracer.begin("form_batch",
                                            track=self.track,
                                            first=first.request_id)
                window = self.env.timeout(self.max_wait_s)
                closed = False
                while len(batch) < cap:
                    get_ev = self.queue.get()
                    self._pending_get = get_ev
                    yield self.env.any_of([get_ev, window])
                    self._pending_get = None
                    if not get_ev.triggered:
                        # Window expired first: withdraw the pending get
                        # so it cannot swallow a later request unseen.
                        self.queue.cancel(get_ev)
                        break
                    item = get_ev.value
                    if item is None:
                        closed = True  # pill in a window: flush + stop
                        break
                    taken = self._take(item)
                    if taken is not None:
                        batch.append(taken)
                self.batches_formed += 1
                if obs is not None:
                    obs.tracer.end(span)
                    obs.metrics.histogram(
                        f"{self.metrics_prefix}.batch_size").observe(
                        len(batch))
                # Yield the dispatch: when every backend's slots are
                # full this is where the batcher stalls, so overload
                # backlog builds in the admission queue (whose policy
                # handles it) rather than an unbounded per-backend
                # buffer.
                yield self.router.dispatch(batch)
                if closed:
                    return
        except Interrupt:
            return  # halted: host died, frontend re-shards the window
