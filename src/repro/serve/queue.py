"""Bounded admission queue with configurable overload policies.

An open-loop server cannot make arrivals wait for capacity — requests
keep coming whether or not the backends keep up — so the admission
queue is where overload policy lives.  Three policies cover the
standard trade-offs:

* ``block`` — classic backpressure: the queue is a bounded buffer and
  admission waits for room.  Nothing is lost, but latency under
  sustained overload grows without bound (the client "hangs").
* ``shed-oldest`` — evict the oldest queued request to admit the new
  one.  Keeps the queue fresh (the newest requests are the ones whose
  deadlines are still winnable) at the cost of wasted earlier work.
* ``reject-newest`` — turn the new request away at the door when the
  queue is full.  Cheapest failure mode: rejected requests consumed
  no queue time at all.

Shed and rejected requests are resolved immediately with their
terminal status; per-request deadlines are enforced downstream by the
batcher at dequeue time (a request that expired while queued is
counted ``timed_out``, not served).
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.errors import FrameworkError
from repro.serve.workload import REJECTED, SHED, Request
from repro.sim.core import Environment, Event
from repro.sim.resources import Store, StoreGet

#: Admission policies.
BLOCK = "block"
SHED_OLDEST = "shed-oldest"
REJECT_NEWEST = "reject-newest"

POLICIES = (BLOCK, SHED_OLDEST, REJECT_NEWEST)


class AdmissionQueue:
    """Bounded FIFO of :class:`~repro.serve.workload.Request`.

    ``depth=None`` removes the bound (every request is admitted and
    the policy never fires).  ``on_drop`` is called once for every
    request resolved at the queue (shed or rejected), so the server
    can keep its accounting in one place.
    """

    def __init__(self, env: Environment,
                 depth: Optional[int] = None,
                 policy: str = REJECT_NEWEST,
                 on_drop: Optional[Callable[[Request], None]] = None,
                 name: str = "serve") -> None:
        if depth is not None and depth < 1:
            raise FrameworkError(f"depth must be >= 1, got {depth}")
        if policy not in POLICIES:
            raise FrameworkError(
                f"unknown admission policy {policy!r}; one of "
                f"{POLICIES}")
        self.env = env
        self.depth = depth
        self.policy = policy
        self.on_drop = on_drop
        #: Metric/track namespace — cluster hosts use ``rank<N>`` so
        #: per-host queues stay distinguishable in one obs session.
        self.name = name
        # The store itself is bounded only under ``block``: the other
        # policies resolve overload at admission time and must never
        # stall the arrival clock.
        self._store = Store(
            env, capacity=(depth if policy == BLOCK and depth is not None
                           else float("inf")))
        self.shed_count = 0
        self.rejected_count = 0

    def __len__(self) -> int:
        """Requests currently waiting (excludes the poison pill)."""
        return sum(1 for item in self._store.items if item is not None)

    @property
    def full(self) -> bool:
        """True when the queue is at its bound."""
        return self.depth is not None and len(self) >= self.depth

    # -- producer side --------------------------------------------------
    def offer(self, request: Request) -> Optional[Event]:
        """Admit *request* under the configured policy.

        Returns the pending put event under ``block`` (the caller may
        wait on it or let it complete in the background — admission
        is stamped when the put lands), the completed put event when
        the request was admitted immediately, or ``None`` when the
        request was turned away (``reject-newest``).
        """
        obs = self.env.obs
        if self.policy == BLOCK:
            event = self._store.put(request)
            # Stamp admission when the put actually lands, which under
            # backpressure can be well after the arrival.
            event.add_callback(
                lambda _ev, req=request: self._admitted(req))
            return event
        if self.full:
            if self.policy == REJECT_NEWEST:
                self.rejected_count += 1
                request.status = REJECTED
                if obs is not None:
                    obs.metrics.counter(f"{self.name}.rejected").inc()
                    obs.tracer.instant("request_rejected",
                                       track=self.name,
                                       request=request.request_id)
                    obs.reqtrace.hop(request.trace, "rejected",
                                     track=self.name)
                if self.on_drop is not None:
                    self.on_drop(request)
                return None
            # shed-oldest: evict the head of the line for the newcomer.
            self._shed_oldest()
        event = self._store.put(request)
        self._admitted(request)
        return event

    def _admitted(self, request: Request) -> None:
        request.admitted_at = self.env.now
        obs = self.env.obs
        if obs is not None:
            obs.metrics.gauge(f"{self.name}.queue_depth").set(len(self))
            obs.reqtrace.hop(request.trace, "admitted",
                             track=self.name, depth=len(self))

    def _shed_oldest(self) -> None:
        items = self._store.items
        for i, item in enumerate(items):
            if item is not None:
                victim = items.pop(i)
                break
        else:
            return  # nothing evictable (races with an in-flight get)
        self.shed_count += 1
        victim.status = SHED
        obs = self.env.obs
        if obs is not None:
            obs.metrics.counter(f"{self.name}.shed").inc()
            obs.tracer.instant("request_shed", track=self.name,
                               request=victim.request_id)
            obs.reqtrace.hop(victim.trace, "shed", track=self.name)
        if self.on_drop is not None:
            self.on_drop(victim)

    # -- consumer side --------------------------------------------------
    def get(self) -> StoreGet:
        """Take the next request; event value is the Request (or the
        ``None`` poison pill once the workload is closed)."""
        event = self._store.get()
        event.add_callback(self._on_take)
        return event

    def _on_take(self, event: Event) -> None:
        obs = self.env.obs
        if obs is not None and event._ok:
            obs.metrics.gauge(f"{self.name}.queue_depth").set(len(self))

    def drain(self) -> list[Request]:
        """Remove and return every queued request, without resolving.

        Host-death path: the cluster frontend re-shards the drained
        requests to surviving hosts, so the queue must give them back
        unresolved instead of shedding them.  Poison pills (if any)
        stay queued.
        """
        items = self._store.items
        drained = [item for item in items if item is not None]
        items[:] = [item for item in items if item is None]
        return drained

    def cancel(self, event: StoreGet) -> None:
        """Withdraw a pending :meth:`get` (see ``Store.cancel``)."""
        self._store.cancel(event)

    def close(self) -> Event:
        """Append the poison pill after all offered work."""
        return self._store.put(None)
