"""Multi-backend dispatch: round-robin, least-outstanding, EWMA.

A :class:`Backend` wraps one prepared
:class:`~repro.ncsw.targets.TargetDevice` (an ``IntelVPU`` rig, the
CPU, the GPU) behind a serial dispatch queue: batches execute one at
a time per backend, while different backends run concurrently on the
shared simulated clock.  Inside a VPU backend, PR 2's fault-tolerant
:class:`~repro.ncsw.scheduler.MultiVPUScheduler` still fans each
batch across the sticks and survives individual stick deaths.

The :class:`Router` picks the backend for each batch:

* ``round-robin`` — cycle through live backends (the paper's static
  policy, lifted one level up);
* ``least-outstanding`` — the backend with the fewest queued +
  in-flight requests (classic load-aware routing);
* ``latency-ewma`` — the backend with the lowest exponentially
  weighted moving average of per-request service latency (adapts to
  heterogeneous backends and to degradation after stick deaths).

Re-routing: when a batch comes back with requests the backend could
not serve (its sticks died past the retry budget), the router
re-dispatches them to another live backend, up to ``max_redirects``
attempts per request, and only then abandons them — a dead stick
costs latency, not requests.
"""

from __future__ import annotations

from typing import Callable, Generator, Optional

from repro.errors import FrameworkError
from repro.ncsw.sources import WorkItem
from repro.ncsw.targets import TargetDevice
from repro.serve.workload import ABANDONED, COMPLETED, Request
from repro.sim.core import Environment, Event, Interrupt, Process
from repro.sim.resources import Store

#: Routing policies.
ROUND_ROBIN = "round-robin"
LEAST_OUTSTANDING = "least-outstanding"
LATENCY_EWMA = "latency-ewma"

POLICIES = (ROUND_ROBIN, LEAST_OUTSTANDING, LATENCY_EWMA)


class Backend:
    """One serving backend: a target device behind a dispatch queue."""

    def __init__(self, env: Environment, name: str,
                 target: TargetDevice,
                 max_pending_batches: int = 1,
                 metrics_prefix: str = "serve") -> None:
        if max_pending_batches < 1:
            raise FrameworkError(
                f"max_pending_batches must be >= 1, got "
                f"{max_pending_batches}")
        self.env = env
        self.name = name
        self.target = target
        #: Metric/track namespace — cluster hosts use ``rank<N>`` so
        #: per-host backends stay distinguishable in one obs session.
        self.metrics_prefix = metrics_prefix
        self.track = f"{metrics_prefix}/{name}"
        # Bounded dispatch: one batch executes while at most
        # ``max_pending_batches`` wait here.  The bound is what pushes
        # overload back into the admission queue (where shed/reject
        # policy lives) instead of letting backlog hide in an
        # unbounded per-backend buffer.
        self._dispatch: Store = Store(env,
                                      capacity=max_pending_batches)
        #: Requests queued at or executing on this backend.
        self.outstanding = 0
        #: EWMA of per-request service seconds (None until sampled).
        self.ewma_latency: Optional[float] = None
        self.served = 0
        self.batches = 0
        self._process: Optional[Process] = None

    @property
    def alive(self) -> bool:
        """False once the backend can no longer serve anything."""
        return self.target.alive

    @property
    def preferred_batch_size(self) -> int:
        """The batch size this backend's hardware path prefers."""
        return self.target.preferred_batch_size

    def submit(self, batch: list[Request]) -> Event:
        """Queue *batch* for execution.

        Returns the put event: it pends while the backend's dispatch
        slots are full, so a caller that yields it feels backpressure
        (and one that doesn't — the re-route path — still lands the
        batch once a slot frees)."""
        self.outstanding += len(batch)
        event = self._dispatch.put(batch)
        obs = self.env.obs
        if obs is not None:
            obs.metrics.gauge(
                f"{self.metrics_prefix}.outstanding.{self.name}").set(
                    self.outstanding)
        return event

    def close(self) -> None:
        """Poison-pill the serve loop (call once no work remains)."""
        self._dispatch.put(None)

    def halt(self) -> None:
        """Kill the serve loop mid-flight (cluster host death).

        The in-flight batch, if any, never gets its completion stamps:
        its requests stay PENDING and are re-sharded by the cluster
        frontend.  Queued batches stay in the dispatch store — the
        frontend's ownership ledger, not this store, is the source of
        truth for what must be re-served.
        """
        if self._process is not None and self._process.is_alive:
            self._process.interrupt("halt")

    def start(self, router: "Router", ewma_alpha: float) -> Event:
        """Fork the serve loop; returns its process event."""
        self._process = self.env.process(
            self._serve_loop(router, ewma_alpha))
        return self._process

    def _serve_loop(self, router: "Router", alpha: float
                    ) -> Generator[Event, None, None]:
        obs = self.env.obs
        try:
            while True:
                batch = yield self._dispatch.get()
                if batch is None:
                    return
                t0 = self.env.now
                for req in batch:
                    req.dispatched_at = t0
                    req.backend = self.name
                    req.batch_size = len(batch)
                    if obs is not None:
                        obs.reqtrace.hop(req.trace, "dispatched",
                                         track=self.track,
                                         backend=self.name,
                                         batch=len(batch))
                items = [WorkItem(index=req.request_id,
                                  image_id=req.request_id, label=None,
                                  tensor=req.tensor, trace=req.trace)
                         for req in batch]
                span = None
                if obs is not None:
                    span = obs.tracer.begin(
                        "serve_batch", track=self.track,
                        size=len(batch))
                records = yield self.target.process_batch(items)
                if obs is not None:
                    obs.tracer.end(span)
                by_id = {r.index: r for r in records}
                completed = [r for r in batch
                             if r.request_id in by_id]
                missing = [r for r in batch
                           if r.request_id not in by_id]
                now = self.env.now
                if completed:
                    # Average over the requests actually served: a
                    # batch that lost its tail to stick deaths spent
                    # the same wall time on fewer completions, so
                    # dividing by the full batch size would report a
                    # degrading backend as *faster* — and latency-ewma
                    # routing would steer more load at it.
                    per_request = (now - t0) / len(completed)
                    self.ewma_latency = (
                        per_request if self.ewma_latency is None
                        else alpha * per_request
                        + (1.0 - alpha) * self.ewma_latency)
                    self.served += len(completed)
                    self.batches += 1
                for req in completed:
                    req.completed_at = now
                    req.status = COMPLETED
                    req.record = by_id[req.request_id]
                    if obs is not None:
                        obs.reqtrace.hop(req.trace, "completed",
                                         track=self.track)
                self.outstanding -= len(batch)
                if obs is not None:
                    obs.metrics.gauge(
                        f"{self.metrics_prefix}.outstanding."
                        f"{self.name}").set(self.outstanding)
                router.on_batch_done(self, completed, missing)
        except Interrupt:
            # Halted: host died, batch ownership reverts to the
            # caller's ledger (the cluster frontend re-shards).  This
            # backend will never serve again, so its queued +
            # in-flight count is no longer meaningful — zero both the
            # counter and the gauge, otherwise the stale value
            # pollutes timelines and the queue-depth-slope alert for
            # the rest of the session.
            self.outstanding = 0
            if obs is not None:
                obs.metrics.gauge(
                    f"{self.metrics_prefix}.outstanding."
                    f"{self.name}").set(0)
            return


class Router:
    """Chooses a backend per batch and owns the re-routing loop."""

    def __init__(self, env: Environment, backends: list[Backend],
                 policy: str = ROUND_ROBIN,
                 max_redirects: int = 1,
                 ewma_alpha: float = 0.2,
                 on_complete: Optional[
                     Callable[[list[Request]], None]] = None,
                 on_abandon: Optional[
                     Callable[[Request], None]] = None,
                 metrics_prefix: str = "serve") -> None:
        if not backends:
            raise FrameworkError("router needs at least one backend")
        if policy not in POLICIES:
            raise FrameworkError(
                f"unknown routing policy {policy!r}; one of "
                f"{POLICIES}")
        if max_redirects < 0:
            raise FrameworkError("max_redirects must be >= 0")
        if not 0.0 < ewma_alpha <= 1.0:
            raise FrameworkError(
                f"ewma_alpha must be in (0, 1], got {ewma_alpha}")
        self.env = env
        self.backends = backends
        self.policy = policy
        self.max_redirects = max_redirects
        self.ewma_alpha = ewma_alpha
        self.on_complete = on_complete
        self.on_abandon = on_abandon
        #: Metric/track namespace — cluster hosts use ``rank<N>``.
        self.metrics_prefix = metrics_prefix
        self._rr_next = 0
        self.abandoned_count = 0

    def start(self) -> list[Event]:
        """Fork every backend's serve loop."""
        return [b.start(self, self.ewma_alpha) for b in self.backends]

    def close(self) -> None:
        """Poison-pill every backend (call once all work is resolved)."""
        for backend in self.backends:
            backend.close()

    # -- selection ------------------------------------------------------
    def _live(self) -> list[Backend]:
        return [b for b in self.backends if b.alive]

    def peek_next(self) -> Optional[Backend]:
        """The backend the next batch would go to (no state change)."""
        return self._select(advance=False)

    def next_backend(self) -> Optional[Backend]:
        """Select (and for round-robin, consume) the next backend."""
        return self._select(advance=True)

    def _select(self, advance: bool) -> Optional[Backend]:
        live = self._live()
        if not live:
            return None
        if self.policy == ROUND_ROBIN:
            # Scan from the cursor so dead backends drop out of the
            # rotation without stalling it.
            n = len(self.backends)
            for k in range(n):
                candidate = self.backends[(self._rr_next + k) % n]
                if candidate.alive:
                    if advance:
                        self._rr_next = (self._rr_next + k + 1) % n
                    return candidate
            return None
        if self.policy == LEAST_OUTSTANDING:
            return min(live, key=lambda b: (b.outstanding,
                                            self.backends.index(b)))
        # latency-ewma: unsampled backends first (they need a probe),
        # then lowest moving-average latency; ties by registration.
        return min(live, key=lambda b: (
            b.ewma_latency is not None,
            b.ewma_latency if b.ewma_latency is not None else 0.0,
            self.backends.index(b)))

    # -- dispatch -------------------------------------------------------
    def dispatch(self, batch: list[Request]) -> Event:
        """Route *batch* to a live backend, or abandon it.

        Returns an event that triggers once the batch occupies a
        dispatch slot (immediately when abandoning) — the batcher
        yields it so dispatch backpressure reaches the admission
        queue."""
        backend = self.next_backend()
        if backend is None:
            for req in batch:
                self._abandon(req)
            return self.env.timeout(0.0)
        obs = self.env.obs
        if obs is not None:
            obs.metrics.counter(f"{self.metrics_prefix}.batches").inc()
        return backend.submit(batch)

    def on_batch_done(self, backend: Backend,
                      completed: list[Request],
                      missing: list[Request]) -> None:
        """Called by a backend after each batch: record + re-route."""
        if completed and self.on_complete is not None:
            self.on_complete(completed)
        if not missing:
            return
        obs = self.env.obs
        retry: list[Request] = []
        for req in missing:
            if req.redirects >= self.max_redirects:
                self._abandon(req)
                continue
            req.redirects += 1
            retry.append(req)
        if not retry:
            return
        if obs is not None:
            obs.metrics.counter(
                f"{self.metrics_prefix}.redirects").inc(len(retry))
            obs.tracer.instant(
                "batch_rerouted", track=self.metrics_prefix,
                from_backend=backend.name, requests=len(retry))
        self.dispatch(retry)

    def _abandon(self, req: Request) -> None:
        self.abandoned_count += 1
        req.status = ABANDONED
        obs = self.env.obs
        if obs is not None:
            obs.metrics.counter(
                f"{self.metrics_prefix}.abandoned").inc()
            obs.tracer.instant("request_abandoned",
                               track=self.metrics_prefix,
                               request=req.request_id)
            obs.reqtrace.hop(req.trace, "abandoned",
                             track=self.metrics_prefix)
        if self.on_abandon is not None:
            self.on_abandon(req)
