"""MPI data streaming (the ExaMPI'15 model the paper cites).

Peng et al.'s streaming extension gives MPI a unidirectional,
bounded *stream window* between a producer and a consumer rank: the
producer pushes items without per-message rendezvous, the consumer
drains in order, and backpressure kicks in when the window fills.
:class:`StreamWindow` provides exactly that over a
:class:`~repro.mpi.comm.Communicator`, and is what the NCSw
``MPIStream`` source would attach to on a real cluster.
"""

from __future__ import annotations

from typing import Any, Generator

from repro.errors import SimulationError
from repro.mpi.comm import Communicator
from repro.sim.core import PENDING, Event
from repro.sim.resources import Store


class StreamWindow:
    """Bounded in-order stream from one rank to another."""

    _EOS = object()

    def __init__(self, comm: Communicator, source: int, dest: int,
                 window: int = 8) -> None:
        comm._check_rank(source, "source")
        comm._check_rank(dest, "dest")
        if source == dest:
            raise SimulationError("stream endpoints must differ")
        if window < 1:
            raise SimulationError(f"window must be >= 1, got {window}")
        self.comm = comm
        self.source = source
        self.dest = dest
        self.window = window
        self._buffer = Store(comm.env, capacity=window)
        self.pushed = 0
        self.popped = 0
        self._closed = False

    def push(self, item: Any) -> Event:
        """Producer side: append an item (blocks when the window is
        full — the stream's backpressure)."""
        if self._closed:
            raise SimulationError("stream already closed")
        env = self.comm.env

        def do_push() -> Generator[Event, None, None]:
            # Wire cost of moving the item to the consumer's window.
            from repro.mpi.comm import _payload_bytes
            yield env.timeout(
                self.comm.transfer_seconds(_payload_bytes(item)))
            yield self._buffer.put(item)
            self.pushed += 1
            obs = env.obs
            if obs is not None:
                obs.reqtrace.hop(getattr(item, "trace", None),
                                 "delivered",
                                 track=f"rank{self.dest}/stream")

        return env.process(do_push())

    def close(self) -> Event:
        """Producer side: end the stream after items in flight."""
        self._closed = True
        env = self.comm.env

        def do_close() -> Generator[Event, None, None]:
            yield self._buffer.put(self._EOS)

        return env.process(do_close())

    @property
    def closed(self) -> bool:
        """True once the stream was closed or aborted."""
        return self._closed

    def abort(self) -> list[Any]:
        """Tear the stream down mid-flight (consumer rank died).

        Unlike :meth:`close`, which lets buffered items drain, abort
        cuts the channel *now*: every undelivered item — the window's
        buffered backlog plus the payloads of pushes still blocked on
        a full window — is pulled out and returned to the caller, and
        an EOS lands in the emptied window so pending and future pops
        resolve to ``None``.  Blocked producers are released (their
        put events succeed) so push processes terminate instead of
        waiting on a rank that will never drain them.

        Pushes whose simulated wire transfer is still in flight at
        abort time are *not* in the returned list — their items land
        in the dead window behind the EOS, where no consumer pop can
        reach them.  Callers needing exactly-once delivery must track
        ownership of in-flight items themselves (the cluster frontend
        does), not rely on the stream's backlog alone.
        """
        self._closed = True
        buffer = self._buffer
        stranded = [item for item in buffer.items
                    if item is not self._EOS]
        buffer.items.clear()
        for put in list(buffer._putters):
            if put._value is PENDING:
                stranded.append(put.item)
                put.succeed()
        buffer._putters.clear()
        buffer.put(self._EOS)  # wakes pending pops with EOS -> None
        return stranded

    def pop(self) -> Event:
        """Consumer side: event -> next item, or ``None`` at EOS."""
        env = self.comm.env

        def do_pop() -> Generator[Event, None, Any]:
            item = yield self._buffer.get()
            if item is self._EOS:
                # Leave the sentinel visible to further pops.
                yield self._buffer.put(self._EOS)
                return None
            self.popped += 1
            return item

        return env.process(do_pop())

    @property
    def depth(self) -> int:
        """Items currently buffered in the window."""
        return sum(1 for i in self._buffer.items if i is not self._EOS)
