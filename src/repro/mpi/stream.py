"""MPI data streaming (the ExaMPI'15 model the paper cites).

Peng et al.'s streaming extension gives MPI a unidirectional,
bounded *stream window* between a producer and a consumer rank: the
producer pushes items without per-message rendezvous, the consumer
drains in order, and backpressure kicks in when the window fills.
:class:`StreamWindow` provides exactly that over a
:class:`~repro.mpi.comm.Communicator`, and is what the NCSw
``MPIStream`` source would attach to on a real cluster.
"""

from __future__ import annotations

from typing import Any, Generator

from repro.errors import SimulationError
from repro.mpi.comm import Communicator
from repro.sim.core import Event
from repro.sim.resources import Store


class StreamWindow:
    """Bounded in-order stream from one rank to another."""

    _EOS = object()

    def __init__(self, comm: Communicator, source: int, dest: int,
                 window: int = 8) -> None:
        comm._check_rank(source, "source")
        comm._check_rank(dest, "dest")
        if source == dest:
            raise SimulationError("stream endpoints must differ")
        if window < 1:
            raise SimulationError(f"window must be >= 1, got {window}")
        self.comm = comm
        self.source = source
        self.dest = dest
        self.window = window
        self._buffer = Store(comm.env, capacity=window)
        self.pushed = 0
        self.popped = 0
        self._closed = False

    def push(self, item: Any) -> Event:
        """Producer side: append an item (blocks when the window is
        full — the stream's backpressure)."""
        if self._closed:
            raise SimulationError("stream already closed")
        env = self.comm.env

        def do_push() -> Generator[Event, None, None]:
            # Wire cost of moving the item to the consumer's window.
            from repro.mpi.comm import _payload_bytes
            yield env.timeout(
                self.comm.transfer_seconds(_payload_bytes(item)))
            yield self._buffer.put(item)
            self.pushed += 1

        return env.process(do_push())

    def close(self) -> Event:
        """Producer side: end the stream after items in flight."""
        self._closed = True
        env = self.comm.env

        def do_close() -> Generator[Event, None, None]:
            yield self._buffer.put(self._EOS)

        return env.process(do_close())

    def pop(self) -> Event:
        """Consumer side: event -> next item, or ``None`` at EOS."""
        env = self.comm.env

        def do_pop() -> Generator[Event, None, Any]:
            item = yield self._buffer.get()
            if item is self._EOS:
                # Leave the sentinel visible to further pops.
                yield self._buffer.put(self._EOS)
                return None
            self.popped += 1
            return item

        return env.process(do_pop())

    @property
    def depth(self) -> int:
        """Items currently buffered in the window."""
        return sum(1 for i in self._buffer.items if i is not self._EOS)
