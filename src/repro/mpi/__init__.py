"""A miniature MPI on the simulation kernel.

Two aspects of the paper lean on MPI:

* §II-B: the NCAPI "follows a set of operations that resemble the MPI
  non-blocking interface" — load_tensor/get_result as isend/wait;
* §III / Fig. 3: ``MPIStream`` is a planned input source, citing the
  authors' "A data streaming model in MPI" (ExaMPI'15) [32].

This package provides the substrate those references assume: a
rank-addressed communicator with blocking and non-blocking
point-to-point operations, broadcast, barrier and a streaming channel
— all running on the deterministic DES clock with size-dependent
transfer costs, so host-side pipelines that mix MPI messaging with NCS
offload can be simulated end to end.
"""

from repro.mpi.comm import Communicator, Request, Status
from repro.mpi.stream import StreamWindow

__all__ = ["Communicator", "Request", "Status", "StreamWindow"]
