"""Rank-addressed communicator over the DES.

Semantics follow MPI's: ``send`` is blocking (completes when the
message is buffered at the receiver — eager protocol), ``isend``
returns a :class:`Request` immediately, ``recv`` blocks until a
matching message (by source and tag) arrives.  Messages between a
(source, dest) pair with the same tag are non-overtaking, like MPI
guarantees.

Transfer cost models an interconnect with per-message latency plus a
bandwidth term on the payload's ``nbytes`` (NumPy arrays report their
true size; other payloads are charged a nominal envelope).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Generator, Optional

import numpy as np

from repro.errors import SimulationError
from repro.sim.core import Environment, Event
from repro.sim.resources import Store
from repro.units import GB

#: Interconnect figures (QDR-InfiniBand-era cluster fabric).
LINK_LATENCY_S = 2e-6
LINK_BANDWIDTH_BYTES_S = 4 * GB

ANY_SOURCE = -1
ANY_TAG = -1


@dataclass(frozen=True)
class Status:
    """Delivery metadata of a received message."""

    source: int
    tag: int
    nbytes: int


@dataclass(frozen=True)
class _Envelope:
    seq: int
    source: int
    dest: int
    tag: int
    payload: Any
    nbytes: int


class Request:
    """Handle to a non-blocking operation (``isend`` / ``irecv``)."""

    def __init__(self, env: Environment, event: Event) -> None:
        self._env = env
        self._event = event

    @property
    def event(self) -> Event:
        """The underlying completion event (yield it in a process)."""
        return self._event

    @property
    def complete(self) -> bool:
        """True once the operation has finished."""
        return self._event.processed

    def wait(self) -> Event:
        """Event completing with the operation's value (MPI_Wait)."""
        return self._event


def _payload_bytes(payload: Any) -> int:
    if isinstance(payload, np.ndarray):
        return int(payload.nbytes)
    if isinstance(payload, (bytes, bytearray)):
        return len(payload)
    return 256  # pickled-object envelope estimate


class Communicator:
    """A fixed-size communicator (``MPI_COMM_WORLD`` analogue)."""

    def __init__(self, env: Environment, size: int,
                 latency_s: float = LINK_LATENCY_S,
                 bandwidth: float = LINK_BANDWIDTH_BYTES_S) -> None:
        if size < 1:
            raise SimulationError(f"size must be >= 1, got {size}")
        if latency_s < 0 or bandwidth <= 0:
            raise SimulationError("invalid interconnect parameters")
        self.env = env
        self.size = size
        self.latency_s = latency_s
        self.bandwidth = bandwidth
        # One mailbox Store per destination rank.
        self._mailboxes = [Store(env) for _ in range(size)]
        self._seq = itertools.count()
        self._barrier_gen = 0
        self._barrier_waiting = 0
        self._barrier_event: Optional[Event] = None
        self.messages_sent = 0
        self.bytes_sent = 0

    # -- validation -------------------------------------------------------
    def _check_rank(self, rank: int, name: str) -> None:
        if not 0 <= rank < self.size:
            raise SimulationError(
                f"{name} {rank} out of range [0, {self.size})")

    def transfer_seconds(self, nbytes: int) -> float:
        """Wire time of one message."""
        return self.latency_s + nbytes / self.bandwidth

    # -- point to point -------------------------------------------------------
    def isend(self, payload: Any, dest: int, tag: int = 0,
              source: int = 0) -> Request:
        """Non-blocking send; the request completes at delivery."""
        self._check_rank(dest, "dest")
        self._check_rank(source, "source")
        if tag < 0:
            raise SimulationError("tag must be >= 0 on the send side")
        env = self.env
        envelope = _Envelope(next(self._seq), source, dest, tag,
                             payload, _payload_bytes(payload))

        def deliver() -> Generator[Event, None, None]:
            yield env.timeout(self.transfer_seconds(envelope.nbytes))
            yield self._mailboxes[dest].put(envelope)
            self.messages_sent += 1
            self.bytes_sent += envelope.nbytes

        return Request(env, env.process(deliver()))

    def send(self, payload: Any, dest: int, tag: int = 0,
             source: int = 0) -> Event:
        """Blocking send (yieldable event)."""
        return self.isend(payload, dest, tag, source).event

    def irecv(self, dest: int, source: int = ANY_SOURCE,
              tag: int = ANY_TAG) -> Request:
        """Non-blocking receive; completes with (payload, Status)."""
        self._check_rank(dest, "dest")
        env = self.env

        def match(envelope: _Envelope) -> bool:
            return ((source == ANY_SOURCE or envelope.source == source)
                    and (tag == ANY_TAG or envelope.tag == tag))

        def receive() -> Generator[Event, None, tuple[Any, Status]]:
            envelope = yield self._mailboxes[dest].get(match)
            return envelope.payload, Status(
                envelope.source, envelope.tag, envelope.nbytes)

        return Request(env, env.process(receive()))

    def recv(self, dest: int, source: int = ANY_SOURCE,
             tag: int = ANY_TAG) -> Event:
        """Blocking receive (yieldable event -> (payload, Status))."""
        return self.irecv(dest, source, tag).event

    # -- collectives ----------------------------------------------------------------
    def bcast(self, payload: Any, root: int = 0) -> list[Request]:
        """Root sends to every other rank; returns the send requests.

        Receivers still call :meth:`recv` — this is the eager
        broadcast of a flat tree, sufficient for the streaming use
        case.
        """
        self._check_rank(root, "root")
        return [self.isend(payload, dest, tag=0, source=root)
                for dest in range(self.size) if dest != root]

    def barrier(self) -> Event:
        """All ranks must arrive before any proceeds.

        Call once per rank per barrier generation; the returned event
        fires when the last participant arrives.
        """
        if self._barrier_event is None or self._barrier_event.processed:
            self._barrier_event = self.env.event()
            self._barrier_waiting = 0
        self._barrier_waiting += 1
        event = self._barrier_event
        if self._barrier_waiting == self.size:
            self._barrier_gen += 1
            event.succeed(self._barrier_gen)
            self._barrier_event = None
        return event
