"""ULP and relative-error analysis between precision variants.

Used by the error-rate experiments (Fig. 7) and their tests to quantify
how far the FP16 execution path drifts from the FP32 reference at the
level of individual tensor elements.
"""

from __future__ import annotations

import numpy as np


def _to_ordered_int(x: np.ndarray, dtype: np.dtype) -> np.ndarray:
    """Map floats to a monotone integer lattice (two's-complement trick)."""
    info = {np.dtype(np.float16): np.int16,
            np.dtype(np.float32): np.int32,
            np.dtype(np.float64): np.int64}[np.dtype(dtype)]
    bits = np.asarray(x, dtype=dtype).view(info).astype(np.int64)
    # Negative floats order backwards in raw bit space; reflect them so
    # the mapping is monotone and -0.0 coincides with +0.0.
    sign_bit = np.int64(1) << (np.dtype(info).itemsize * 8 - 1)
    return np.where(bits < 0, -sign_bit - bits, bits)


def ulp_distance(a: np.ndarray, b: np.ndarray,
                 dtype: np.dtype | type = np.float16) -> np.ndarray:
    """Element-wise ULP distance between *a* and *b* in *dtype*'s lattice.

    Both inputs are first rounded to *dtype*.  NaN positions yield the
    maximum int64 value so they are impossible to miss in assertions.
    """
    dt = np.dtype(dtype)
    aa = np.asarray(a, dtype=np.float64).astype(dt)
    bb = np.asarray(b, dtype=np.float64).astype(dt)
    dist = np.abs(_to_ordered_int(aa, dt) - _to_ordered_int(bb, dt))
    nan_mask = np.isnan(aa.astype(np.float64)) | np.isnan(
        bb.astype(np.float64))
    return np.where(nan_mask, np.iinfo(np.int64).max, dist)


def relative_error(approx: np.ndarray, exact: np.ndarray,
                   eps: float = 1e-12) -> np.ndarray:
    """Element-wise |approx - exact| / max(|exact|, eps)."""
    a = np.asarray(approx, dtype=np.float64)
    e = np.asarray(exact, dtype=np.float64)
    return np.abs(a - e) / np.maximum(np.abs(e), eps)


def max_abs_error(a: np.ndarray, b: np.ndarray) -> float:
    """Largest element-wise absolute difference."""
    return float(np.max(np.abs(np.asarray(a, dtype=np.float64)
                               - np.asarray(b, dtype=np.float64))))


def mean_abs_error(a: np.ndarray, b: np.ndarray) -> float:
    """Mean element-wise absolute difference."""
    return float(np.mean(np.abs(np.asarray(a, dtype=np.float64)
                                - np.asarray(b, dtype=np.float64))))
