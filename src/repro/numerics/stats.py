"""Statistics helpers used by the experiment harness.

Every figure in the paper reports per-subset means with standard
deviations as error bars; :class:`RunningStats` (Welford's online
algorithm) accumulates those without storing all samples, and
:func:`confidence_interval` backs the "confidence error difference"
language of the abstract.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence


class RunningStats:
    """Welford's online mean/variance accumulator.

    Numerically stable for long streams (50 000 validation images) —
    the naive sum-of-squares formula loses precision at that scale.
    """

    def __init__(self) -> None:
        self._n = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._min = math.inf
        self._max = -math.inf

    def push(self, x: float) -> None:
        """Add one sample."""
        x = float(x)
        self._n += 1
        delta = x - self._mean
        self._mean += delta / self._n
        self._m2 += delta * (x - self._mean)
        self._min = min(self._min, x)
        self._max = max(self._max, x)

    def extend(self, xs: Iterable[float]) -> None:
        """Add many samples."""
        for x in xs:
            self.push(x)

    @property
    def n(self) -> int:
        """Number of samples pushed."""
        return self._n

    @property
    def mean(self) -> float:
        """Arithmetic mean of the samples."""
        if self._n == 0:
            raise ValueError("no samples")
        return self._mean

    @property
    def variance(self) -> float:
        """Sample variance (n-1 denominator)."""
        if self._n < 2:
            return 0.0
        return self._m2 / (self._n - 1)

    @property
    def std(self) -> float:
        """Sample standard deviation."""
        return math.sqrt(self.variance)

    @property
    def min(self) -> float:
        """Smallest sample."""
        if self._n == 0:
            raise ValueError("no samples")
        return self._min

    @property
    def max(self) -> float:
        """Largest sample."""
        if self._n == 0:
            raise ValueError("no samples")
        return self._max

    @property
    def sem(self) -> float:
        """Standard error of the mean."""
        if self._n == 0:
            raise ValueError("no samples")
        return self.std / math.sqrt(self._n)

    def merge(self, other: "RunningStats") -> "RunningStats":
        """Combine two accumulators (parallel Welford merge)."""
        out = RunningStats()
        n = self._n + other._n
        if n == 0:
            return out
        delta = other._mean - self._mean
        out._n = n
        out._mean = self._mean + delta * other._n / n
        out._m2 = (self._m2 + other._m2
                   + delta * delta * self._n * other._n / n)
        out._min = min(self._min, other._min)
        out._max = max(self._max, other._max)
        return out

    def __repr__(self) -> str:
        if self._n == 0:
            return "<RunningStats empty>"
        return (f"<RunningStats n={self._n} mean={self._mean:.6g} "
                f"std={self.std:.6g}>")


def mean_std(xs: Sequence[float]) -> tuple[float, float]:
    """Convenience: (mean, sample std) of a sequence."""
    rs = RunningStats()
    rs.extend(xs)
    return rs.mean, rs.std


# Two-sided critical values of the standard normal for common levels.
_Z = {0.90: 1.6448536269514722,
      0.95: 1.959963984540054,
      0.99: 2.5758293035489004}


def confidence_interval(xs: Sequence[float],
                        level: float = 0.95) -> tuple[float, float]:
    """Normal-approximation confidence interval for the mean of *xs*."""
    if level not in _Z:
        raise ValueError(f"unsupported level {level}; use one of {set(_Z)}")
    rs = RunningStats()
    rs.extend(xs)
    half = _Z[level] * rs.sem
    return rs.mean - half, rs.mean + half


def relative_change(new: float, ref: float) -> float:
    """(new - ref) / ref; the paper's '40.7% slower' style of number."""
    if ref == 0:
        raise ValueError("reference value is zero")
    return (new - ref) / ref
