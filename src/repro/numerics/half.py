"""IEEE 754 binary16 (half precision) emulation.

The NCSw framework converts input pixels from FP32 to FP16 using the
OpenEXR ``half`` class before shipping them to the NCS (paper §III); the
Myriad 2 then executes the whole network in FP16.  We emulate this with
NumPy's ``float16``, which implements the same IEEE 754 binary16 format
with round-to-nearest-even, and wrap it so precision handling is explicit
and testable (saturation semantics, subnormal behaviour, ULP structure).
"""

from __future__ import annotations

import numpy as np

#: Largest finite binary16 value (65504.0).
FP16_MAX = float(np.finfo(np.float16).max)
#: Smallest positive *normal* binary16 value (2^-14).
FP16_MIN_NORMAL = float(np.finfo(np.float16).tiny)
#: Smallest positive subnormal binary16 value (2^-24).
FP16_MIN_SUBNORMAL = float(np.nextafter(np.float16(0), np.float16(1)))
#: Machine epsilon of binary16 (2^-10).
FP16_EPS = float(np.finfo(np.float16).eps)


def to_half(x: np.ndarray, saturate: bool = False) -> np.ndarray:
    """Convert an array to binary16.

    With ``saturate=True``, values whose magnitude exceeds
    :data:`FP16_MAX` clamp to ±FP16_MAX instead of overflowing to ±inf —
    this mirrors the saturating store mode of the SHAVE VAU.  NaNs pass
    through unchanged in both modes.
    """
    arr = np.asarray(x, dtype=np.float32)
    if saturate:
        clipped = np.clip(arr, -FP16_MAX, FP16_MAX)
        # clip propagates NaN already, so no special-casing needed.
        return clipped.astype(np.float16)
    with np.errstate(over="ignore"):
        return arr.astype(np.float16)


def from_half(x: np.ndarray) -> np.ndarray:
    """Widen a binary16 array back to float32 (exact, no rounding)."""
    return np.asarray(x, dtype=np.float16).astype(np.float32)


def round_fp16(x: np.ndarray) -> np.ndarray:
    """Round through binary16 and widen back to float32.

    This is the *quantisation* operator used by the FP16 execution
    policy: every intermediate tensor of a VPU layer passes through it,
    so rounding error accumulates exactly as it would on hardware that
    stores activations in half precision.
    """
    arr = np.asarray(x, dtype=np.float32)
    with np.errstate(over="ignore"):
        return arr.astype(np.float16).astype(np.float32)


def is_representable_fp16(x: float) -> bool:
    """True if the scalar converts to binary16 and back without error."""
    if np.isnan(x):
        return True  # NaN is representable (payload aside)
    with np.errstate(over="ignore"):
        h = np.float32(x).astype(np.float16)
    return bool(np.isinf(h) == np.isinf(np.float32(x))
                and (np.isinf(h) or float(h) == float(np.float32(x))))


def quantization_error(x: np.ndarray) -> np.ndarray:
    """Absolute error introduced by a round-trip through binary16."""
    arr = np.asarray(x, dtype=np.float32)
    return np.abs(arr - round_fp16(arr))


def dynamic_range_bits(x: np.ndarray) -> float:
    """log2(max|x| / min nonzero |x|) — how much of FP16's range is used.

    Useful to diagnose when a tensor's dynamic range exceeds what
    binary16 can hold (≈ 40 bits from subnormal min to max).
    """
    arr = np.abs(np.asarray(x, dtype=np.float64)).ravel()
    nz = arr[arr > 0]
    if nz.size == 0:
        return 0.0
    return float(np.log2(nz.max() / nz.min()))
