"""Precision policies for network execution.

A :class:`PrecisionPolicy` tells the NN execution engine which dtype a
device computes in and where rounding happens.  The CPU/GPU baselines
use :meth:`PrecisionPolicy.fp32` (no rounding); the VPU path uses
:meth:`PrecisionPolicy.fp16`, which rounds weights once at graph-compile
time and every activation tensor after each layer — matching how the
NCSDK compiler stores FP16 weights in the graph file and the SHAVEs
write FP16 activations back to CMX.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.numerics.half import round_fp16


class Precision(enum.Enum):
    """Arithmetic precision of a device's inference datapath."""

    FP32 = "fp32"
    FP16 = "fp16"

    @property
    def dtype(self) -> np.dtype:
        """NumPy dtype of this precision."""
        return np.dtype(np.float32 if self is Precision.FP32
                        else np.float16)

    @property
    def bytes_per_element(self) -> int:
        """Storage bytes per tensor element."""
        return 4 if self is Precision.FP32 else 2


@dataclass(frozen=True)
class PrecisionPolicy:
    """How a device quantises tensors during inference.

    Attributes
    ----------
    precision:
        Nominal datapath precision.
    quantize_weights:
        Round parameters through binary16 when a graph is compiled for
        the device.
    quantize_activations:
        Round each layer's output through binary16 before the next
        layer consumes it.
    accumulate_fp32:
        Inner products accumulate in FP32 even under FP16 storage —
        true for the Myriad 2 VAU, whose accumulators are wider than
        its storage format.  (NumPy float32 matmul provides this.)
    layer_filter:
        When set, quantisation applies only to layers whose names are
        in this set — the knob behind the per-layer precision
        ablation (which layers contribute the FP16 drift).  ``None``
        means every layer.
    quantize_input:
        Whether the network input blob is rounded at entry (the
        host-side FP16 conversion).  ``None`` keeps the historical
        derivation — quantise the input exactly when no
        ``layer_filter`` is set — while ``True``/``False`` override
        it.  Split execution needs the override: the front half of a
        cut network quantises its input like the monolithic run,
        while the back half must accept the cut blob exactly as the
        front produced it.
    """

    precision: Precision
    quantize_weights: bool
    quantize_activations: bool
    accumulate_fp32: bool = True
    layer_filter: frozenset[str] | None = None
    quantize_input: bool | None = None

    @staticmethod
    def fp32() -> "PrecisionPolicy":
        """Reference policy: everything in float32, no rounding."""
        return PrecisionPolicy(Precision.FP32, False, False)

    @staticmethod
    def fp16() -> "PrecisionPolicy":
        """Myriad 2 policy: FP16 storage, FP32 accumulation."""
        return PrecisionPolicy(Precision.FP16, True, True)

    @staticmethod
    def fp16_only(layers: frozenset[str] | set[str]) -> "PrecisionPolicy":
        """FP16 policy restricted to the named layers (ablation)."""
        return PrecisionPolicy(Precision.FP16, True, True,
                               layer_filter=frozenset(layers))

    @property
    def quantize_input_blob(self) -> bool:
        """Whether the network input is rounded at entry."""
        if not self.quantize_activations:
            return False
        if self.quantize_input is None:
            return self.layer_filter is None
        return self.quantize_input

    def applies_to(self, layer_name: str) -> bool:
        """Whether quantisation applies to the named layer."""
        return self.layer_filter is None or layer_name in \
            self.layer_filter

    def quantize_weight_array(self, w: np.ndarray) -> np.ndarray:
        """Apply compile-time weight quantisation."""
        return round_fp16(w) if self.quantize_weights else np.asarray(
            w, dtype=np.float32)

    def quantize_activation_array(self, a: np.ndarray) -> np.ndarray:
        """Apply post-layer activation quantisation."""
        return round_fp16(a) if self.quantize_activations else a

    @property
    def name(self) -> str:
        """Short policy name (the precision value)."""
        return self.precision.value
