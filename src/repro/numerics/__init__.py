"""Numerical-precision substrate.

The Myriad 2 VPU executes convolutional networks in native FP16, while
the reference Caffe-MKL CPU path uses FP32.  This package provides the
FP16 emulation used by the VPU execution path (mirroring the OpenEXR
``half`` conversion the paper's NCSw framework performs on input pixels),
mixed-precision execution policies, and the statistics used to report
error bars and confidence intervals in the figures.
"""

from repro.numerics.half import (
    FP16_MAX,
    FP16_MIN_NORMAL,
    to_half,
    from_half,
    round_fp16,
    is_representable_fp16,
)
from repro.numerics.quant import Precision, PrecisionPolicy
from repro.numerics.stats import (
    RunningStats,
    confidence_interval,
    mean_std,
)
from repro.numerics.ulp import ulp_distance, relative_error, max_abs_error

__all__ = [
    "FP16_MAX",
    "FP16_MIN_NORMAL",
    "to_half",
    "from_half",
    "round_fp16",
    "is_representable_fp16",
    "Precision",
    "PrecisionPolicy",
    "RunningStats",
    "confidence_interval",
    "mean_std",
    "ulp_distance",
    "relative_error",
    "max_abs_error",
]
