"""Elastic autoscaling for the sharded serving cluster.

The paper's economics argument — perf/W on cheap VPU sticks beats
CPU/GPU hosts — only pays off at cluster scale if capacity tracks
load: the diurnal/MMPP workload generators model traffic swinging by
orders of magnitude, while a fixed host count either overprovisions
the trough or melts at the peak.  This module closes that loop.

An :class:`Autoscaler` ticks on the simulated clock next to a running
:class:`~repro.cluster.server.ClusterServer`, reads an
:class:`AutoscaleSignal` (live/booting hosts, frontend-ledger
outstanding counts, a rolling p99 over recent completions), asks its
policy for a desired host count, and issues at most one scale action
per tick — scale-out activates a pool slot (warm first, cold-boot
otherwise), scale-in drains a live host through the frontend's
lame-duck path.  The consistent-hash ring's minimal-remap property
(:mod:`repro.cluster.hashring`) is what makes both cheap: adding a
host steals only the keys that move *to* it, draining one re-maps
only the keys it owned.

Two policies ship:

* :class:`ReactivePolicy` — queue-depth (ledger outstanding per host)
  and rolling-p99-vs-SLO thresholds, with hysteresis (distinct
  high/low watermarks) on top of the autoscaler's cooldown so the
  cluster does not flap;
* :class:`PredictivePolicy` — diurnal-phase-aware: queries the
  workload's :meth:`~repro.serve.workload.DiurnalWorkload.diurnal_phase`
  a lead time ahead and provisions for the predicted arrival rate, so
  ranks pre-warm *before* the modelled peak instead of chasing it.

Scripted scale events (:class:`ScalePlan`) drive the same server
surface without a policy — the deterministic harness the
exactly-once property tests randomise over.

Everything here is a pure function of simulated state: same seed,
same scale events, byte-identical reports.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import Any, Generator, Iterable, Optional

from repro.errors import FrameworkError

#: Scale-event actions.
SCALE_OUT = "scale-out"
SCALE_IN = "scale-in"


@dataclass(frozen=True)
class ScaleEvent:
    """One committed scale action at the cluster frontend."""

    time: float      #: sim-clock time the action was taken
    action: str      #: :data:`SCALE_OUT` or :data:`SCALE_IN`
    host: str        #: host (generation) activated or drained
    reason: str      #: policy / plan rationale, for the report
    live_after: int  #: routable hosts immediately after the action


@dataclass(frozen=True)
class AutoscaleSignal:
    """What a policy sees at one autoscaler tick.

    Everything is derived from frontend state alone (ownership
    ledger, slot table, rolling completion latencies) — never from
    the observability session, so policy decisions are byte-identical
    with tracing on or off.
    """

    time: float              #: absolute sim-clock time
    since_epoch: float       #: seconds since serving started
    live: int                #: routable hosts (in the ring)
    booting: int             #: scale-outs still preparing
    addable: int             #: pool slots still activatable
    total_outstanding: int   #: ledger-owned requests across live hosts
    rolling_p99: Optional[float]  #: p99 over recent completions, or None
    slo_seconds: Optional[float]  #: the run's SLO, or None

    @property
    def capacity(self) -> int:
        """Hosts serving or about to serve (live + booting)."""
        return self.live + self.booting


class AutoscalePolicy:
    """Abstract desired-host-count policy."""

    name = "policy"

    def desired(self, signal: AutoscaleSignal) -> int:
        """Desired host count given *signal* (the autoscaler clamps
        to ``[min_hosts, capacity + addable]``)."""
        raise NotImplementedError

    def describe(self) -> str:
        """One-line description for report headers."""
        return self.name


class ReactivePolicy(AutoscalePolicy):
    """Queue-depth / rolling-p99 thresholds with hysteresis.

    Scale **out** when either the per-host outstanding backlog
    exceeds ``high_water`` or the rolling p99 eats more than
    ``p99_headroom`` of the SLO.  Scale **in** only when the load
    would still sit at or under ``low_water`` per host *after*
    removing one — ``low_water < high_water`` is the hysteresis band
    that, together with the autoscaler's cooldown, prevents flapping.
    """

    name = "reactive"

    def __init__(self, high_water: float = 4.0,
                 low_water: float = 1.0,
                 p99_headroom: float = 0.8) -> None:
        if high_water <= 0:
            raise FrameworkError(
                f"high_water must be positive, got {high_water}")
        if not 0 <= low_water < high_water:
            raise FrameworkError(
                f"need 0 <= low_water < high_water for hysteresis, "
                f"got low={low_water}, high={high_water}")
        if not 0.0 < p99_headroom <= 1.0:
            raise FrameworkError(
                f"p99_headroom must be in (0, 1], got {p99_headroom}")
        self.high_water = float(high_water)
        self.low_water = float(low_water)
        self.p99_headroom = float(p99_headroom)

    def desired(self, signal: AutoscaleSignal) -> int:
        capacity = max(1, signal.capacity)
        per_host = signal.total_outstanding / capacity
        hot = (signal.slo_seconds is not None
               and signal.rolling_p99 is not None
               and signal.rolling_p99
               > self.p99_headroom * signal.slo_seconds)
        if per_host > self.high_water or hot:
            return capacity + 1
        if (capacity > 1 and not hot
                and signal.total_outstanding / (capacity - 1)
                <= self.low_water):
            return capacity - 1
        return capacity

    def describe(self) -> str:
        return (f"reactive (out > {self.high_water:g}/host or p99 > "
                f"{self.p99_headroom:.0%} SLO, in <= "
                f"{self.low_water:g}/host)")


class PredictivePolicy(AutoscalePolicy):
    """Diurnal-phase-aware provisioning with pre-warm lead time.

    The policy and the workload generator share one phase function
    (:meth:`~repro.serve.workload.DiurnalWorkload.diurnal_phase`), so
    the prediction is exact up to thinning noise: the desired count is
    the predicted arrival rate a ``lead_s`` ahead, divided by what one
    host sustains at the target utilisation.
    """

    name = "predictive"

    def __init__(self, workload: Any, host_rate: float,
                 lead_s: float = 0.0,
                 utilization: float = 0.7) -> None:
        if not hasattr(workload, "diurnal_phase"):
            raise FrameworkError(
                "predictive policy needs a workload with a "
                "diurnal_phase(t) query (e.g. DiurnalWorkload), got "
                f"{type(workload).__name__}")
        if host_rate <= 0:
            raise FrameworkError(
                f"host_rate must be positive, got {host_rate}")
        if lead_s < 0:
            raise FrameworkError(
                f"lead_s must be >= 0, got {lead_s}")
        if not 0.0 < utilization <= 1.0:
            raise FrameworkError(
                f"utilization must be in (0, 1], got {utilization}")
        self.workload = workload
        self.host_rate = float(host_rate)
        self.lead_s = float(lead_s)
        self.utilization = float(utilization)

    def desired(self, signal: AutoscaleSignal) -> int:
        phase = self.workload.diurnal_phase(
            signal.since_epoch + self.lead_s)
        rate = self.workload.peak_rate * phase
        return max(1, math.ceil(
            rate / (self.host_rate * self.utilization)))

    def describe(self) -> str:
        return (f"predictive (lead {self.lead_s * 1000:.0f} ms, "
                f"{self.host_rate:g} req/s/host @ "
                f"{self.utilization:.0%})")


class Autoscaler:
    """Drives scale decisions against a running cluster server.

    One action per ``interval_s`` tick at most, and never two actions
    within ``cooldown_s`` of each other — the damping layer under the
    policy's own hysteresis.  ``warm_pool`` slots beyond the live set
    are kept pre-initialised (target prepared, not serving) so a
    scale-out activates instantly instead of paying a cold boot.
    """

    def __init__(self, policy: AutoscalePolicy, *,
                 min_hosts: int = 1,
                 max_hosts: Optional[int] = None,
                 interval_s: float = 0.02,
                 cooldown_s: float = 0.05,
                 warm_pool: int = 1,
                 latency_window: int = 64) -> None:
        if min_hosts < 1:
            raise FrameworkError(
                f"min_hosts must be >= 1, got {min_hosts}")
        if max_hosts is not None and max_hosts < min_hosts:
            raise FrameworkError(
                f"max_hosts {max_hosts} below min_hosts {min_hosts}")
        if interval_s <= 0:
            raise FrameworkError(
                f"interval_s must be positive, got {interval_s}")
        if cooldown_s < 0:
            raise FrameworkError(
                f"cooldown_s must be >= 0, got {cooldown_s}")
        if warm_pool < 0:
            raise FrameworkError(
                f"warm_pool must be >= 0, got {warm_pool}")
        if latency_window < 1:
            raise FrameworkError(
                f"latency_window must be >= 1, got {latency_window}")
        self.policy = policy
        self.min_hosts = min_hosts
        self.max_hosts = max_hosts
        self.interval_s = float(interval_s)
        self.cooldown_s = float(cooldown_s)
        self.warm_pool = warm_pool
        self.latency_window = latency_window
        self._latencies: deque = deque(maxlen=latency_window)
        self._last_action: Optional[float] = None

    def reset(self) -> None:
        """Clear per-run state (called by the server at run start)."""
        self._latencies.clear()
        self._last_action = None

    # -- signals ---------------------------------------------------------
    def note_completion(self, latency: float) -> None:
        """Feed one completed request's e2e latency into the rolling
        window (called by the server's resolution path)."""
        self._latencies.append(latency)

    def rolling_p99(self) -> Optional[float]:
        """p99 over the rolling completion window, or None when
        nothing completed yet.  Nearest-rank on a sorted copy —
        deterministic, no interpolation."""
        if not self._latencies:
            return None
        ordered = sorted(self._latencies)
        rank = max(0, math.ceil(0.99 * len(ordered)) - 1)
        return ordered[rank]

    # -- the control loop ------------------------------------------------
    def run(self, server: Any) -> Generator[Any, None, None]:
        """The tick process (forked by the server inside its run)."""
        env = server._env
        while True:
            yield env.timeout(self.interval_s)
            if server.finished:
                return
            signal = server.autoscale_signal()
            desired = self.policy.desired(signal)
            ceiling = signal.capacity + signal.addable
            if self.max_hosts is not None:
                ceiling = min(ceiling, self.max_hosts)
            desired = max(self.min_hosts, min(desired, ceiling))
            if desired == signal.capacity:
                continue
            now = env.now
            if (self._last_action is not None
                    and now - self._last_action < self.cooldown_s):
                continue
            if desired > signal.capacity:
                reason = (f"{self.policy.name}: want {desired}, "
                          f"have {signal.capacity}")
                if server.scale_out(reason=reason) is not None:
                    self._last_action = now
            elif signal.live > self.min_hosts:
                reason = (f"{self.policy.name}: want {desired}, "
                          f"have {signal.capacity}")
                if server.drain_host(reason=reason) is not None:
                    self._last_action = now


# -- scripted scale events (the property-test harness) -------------------

@dataclass(frozen=True)
class ScaleAction:
    """One scripted scale action for a :class:`ScalePlan`."""

    at: float                 #: sim-clock time to act
    action: str               #: ``"out"`` or ``"drain"``
    slot: Optional[int] = None  #: pool slot to drain (default: pick)

    def __post_init__(self) -> None:
        if self.action not in ("out", "drain"):
            raise FrameworkError(
                f"scale action must be 'out' or 'drain', got "
                f"{self.action!r}")
        if self.at < 0:
            raise FrameworkError(
                f"scale action time must be >= 0, got {self.at}")


class ScalePlan:
    """A deterministic schedule of scale actions.

    The policy-free twin of the autoscaler: tests (and the CLI) can
    script exact interleavings of scale-out, drain and — combined
    with ``host_faults`` — whole-host kills, then assert the
    exactly-once invariant survives every ordering.
    """

    def __init__(self, actions: Iterable[ScaleAction] = ()) -> None:
        self.actions = sorted(actions, key=lambda a: a.at)

    def __len__(self) -> int:
        return len(self.actions)


# -- the cost-vs-SLO frontier -------------------------------------------

@dataclass(frozen=True)
class CostPoint:
    """One configuration's cost/quality outcome for the frontier."""

    label: str
    host_seconds: float      #: summed active host time (the cost)
    attainment: float        #: steady-state SLO attainment
    p99_ms: Optional[float]  #: merged p99 in ms, or None
    completed: int
    offered: int
    lost: int                #: offered - completed
    scale_outs: int = 0
    scale_ins: int = 0


def cost_point(label: str, result: Any) -> CostPoint:
    """Fold one :class:`~repro.cluster.result.ClusterResult` into a
    frontier point."""
    try:
        p99_ms: Optional[float] = result.p99 * 1000.0
    except ValueError:
        p99_ms = None
    events = getattr(result, "scale_events", [])
    return CostPoint(
        label=label,
        host_seconds=result.host_seconds,
        attainment=result.slo_attainment,
        p99_ms=p99_ms,
        completed=result.completed,
        offered=result.offered,
        lost=result.offered - result.completed,
        scale_outs=sum(1 for e in events if e.action == SCALE_OUT),
        scale_ins=sum(1 for e in events if e.action == SCALE_IN))


def render_cost_table(points: list[CostPoint],
                      slo_seconds: Optional[float] = None) -> str:
    """The host-hours vs SLO-attainment frontier, one row per config.

    Deterministic fixed-width text, same contract as the sweep and
    cluster reports.
    """
    if not points:
        return "cost vs SLO frontier: no results"
    lines = ["cost vs SLO frontier: host-seconds vs attainment"]
    if slo_seconds is not None:
        lines.append(
            f"  SLO: p99 <= {slo_seconds * 1000:.0f} ms")
    lines += [
        "",
        f"  {'config':<16} {'host-sec':>9} {'attain':>8} "
        f"{'p99 ms':>9} {'lost':>5} {'scale +/-':>10}",
    ]
    for p in points:
        p99 = f"{p.p99_ms:>9.2f}" if p.p99_ms is not None else (
            f"{'-':>9}")
        lines.append(
            f"  {p.label:<16} {p.host_seconds:>9.3f} "
            f"{p.attainment:>7.1%} {p99} {p.lost:>5} "
            f"{p.scale_outs:>5}/{p.scale_ins:<4}")
    return "\n".join(lines)
