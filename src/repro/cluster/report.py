"""Human-readable cluster serving report.

Same contract as the serve-layer SLO report: pure function of the
:class:`~repro.cluster.result.ClusterResult`, deterministic to the
byte for a given seed, suitable for golden-file comparison in tests
and for eyeballs in CI logs.
"""

from __future__ import annotations

from repro.cluster.result import ClusterResult


def _pcts(result: ClusterResult) -> list[tuple[str, float]]:
    return [("p50", result.p50), ("p95", result.p95),
            ("p99", result.p99)]


def render_cluster_report(result: ClusterResult,
                          workload: str = "",
                          alerts=None, policy=None) -> str:
    """Render one cluster run as a fixed-width text report.

    Pass ``alerts`` (a list from
    :func:`repro.obs.alerts.serve_alerts`) to append an SLO-alert
    section; the default rendering is unchanged so existing golden
    outputs stay byte-identical.
    """
    dead = sum(1 for s in result.shards if s.killed_at is not None)
    drained = result.drained_hosts
    lines = ["cluster serve report", "=" * 20]
    if workload:
        lines.append(f"  workload        : {workload}")
    lines += [
        f"  hosts           : {result.num_hosts} "
        f"({result.num_hosts - dead - drained} live at end)",
        f"  offered         : {result.offered}",
        f"  completed       : {result.completed}",
        f"  shed            : {result.shed}",
        f"  rejected        : {result.rejected}",
        f"  timed out       : {result.timed_out}",
        f"  abandoned       : {result.abandoned} "
        f"({result.frontend_abandoned} at the frontend)",
        f"  loss rate       : {result.loss_rate:.2%}",
        f"  wall time       : {result.wall_seconds:.3f} s",
        f"  throughput      : {result.throughput:.1f} req/s",
        f"  sharded/spilled : {result.sharded}/{result.spilled}",
        f"  re-sharded      : {result.resharded}",
    ]
    if result.scale_events:
        lines += [
            f"  host pool       : {result.pool_hosts} slots",
            f"  host-seconds    : {result.host_seconds:.3f}",
            f"  scale events    : {result.scale_outs} out / "
            f"{result.scale_ins} in",
        ]
    if result.failures:
        lines.append(f"  failures        : "
                     + ", ".join(f"{e.device} ({e.kind}, "
                                 f"t={e.time:.3f}s)"
                                 for e in result.failures))
    lines.append("")
    lines.append("  e2e latency (steady state, merged)")
    try:
        pcts = _pcts(result)
    except ValueError:
        lines.append("    no completed requests past warmup")
    else:
        for name, value in pcts:
            lines.append(f"    {name:<4}: {value * 1000:>9.2f} ms")
    if result.slo_seconds is not None:
        lines += [
            "",
            f"  SLO p99 <= {result.slo_seconds * 1000:.0f} ms: "
            f"{'MET' if result.slo_met else 'MISSED'}",
            f"  attainment      : {result.slo_attainment:.2%}",
            f"  goodput         : {result.goodput:.1f} req/s",
        ]
    lines += ["", f"  {'host':<8}{'rank':>5} {'offered':>8} "
                  f"{'completed':>10} {'share':>7} {'fate':>12}"]
    total = max(result.completed, 1)
    for shard in result.shards:
        if shard.killed_at is not None:
            fate = "died @ {:.2f}s".format(shard.killed_at)
        elif shard.drained_at is not None:
            fate = "drained @ {:.2f}s".format(shard.drained_at)
        else:
            fate = "survived"
        share = shard.result.completed / total
        lines.append(
            f"  {shard.name:<8}{shard.rank:>5} "
            f"{shard.result.offered:>8} "
            f"{shard.result.completed:>10} {share:>6.1%} {fate:>12}")
    if result.scale_events:
        lines += ["", "  scale timeline"]
        for event in result.scale_events:
            lines.append(
                f"    {event.time:>8.3f}s {event.action:<10} "
                f"{event.host:<10} -> {event.live_after} live "
                f"({event.reason})")
    if alerts is not None:
        from repro.obs.alerts import render_alerts
        lines.append("")
        lines.append(render_alerts(alerts, policy=policy))
    return "\n".join(lines)
