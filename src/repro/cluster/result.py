"""Cluster-level accounting: per-host ServeResults rolled up.

The single-host invariant — every offered request resolves exactly
once — survives sharding in two parts:

* *within* a shard, each host's :class:`~repro.serve.slo.ServeResult`
  enforces it over the requests that host resolved;
* *across* shards, :class:`ClusterResult` enforces that no request
  was resolved by two hosts (request-id disjointness) and that the
  per-host offered counts plus frontend abandons sum back to the
  cluster's offered total.

Latency statistics are computed over the *merged* completion stream
(all hosts' completed requests ordered by completion time), with the
warmup transient trimmed once at cluster level — the same
steady-state view the serve layer uses, so cluster goodput and p99
agree about which requests count.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.errors import FrameworkError
from repro.ncsw.faults import FailureEvent
from repro.serve.slo import ServeResult
from repro.serve.workload import Request


@dataclass
class HostShard:
    """One host's slice of a cluster run."""

    rank: int  #: MPI rank (1-based; rank 0 is the frontend)
    name: str  #: host name (``host0``, or ``host0r2`` generation 2)
    result: ServeResult
    #: Simulated time the host was killed, or None if it survived.
    killed_at: Optional[float] = None
    #: Requests this host stranded at death (re-sharded or abandoned
    #: by the frontend).
    resharded: int = 0
    #: Simulated time the host joined the ring, or None (fixed-size
    #: runs: serving from the cluster epoch).
    activated_at: Optional[float] = None
    #: Simulated time a scale-in drain retired the host, or None.
    drained_at: Optional[float] = None

    def active_seconds(self, epoch: float, end: float) -> float:
        """Host-time this shard cost: activation (or the serving
        epoch) until death, drain, or the end of the run."""
        start = (self.activated_at if self.activated_at is not None
                 else epoch)
        if self.killed_at is not None:
            stop = self.killed_at
        elif self.drained_at is not None:
            stop = self.drained_at
        else:
            stop = end
        return max(0.0, stop - start)


@dataclass
class ClusterResult:
    """Outcome of one sharded multi-host serving run."""

    offered: int
    shards: list[HostShard]
    wall_seconds: float
    prepare_seconds: float = 0.0
    slo_seconds: Optional[float] = None
    #: Leading completed requests (merged completion order) excluded
    #: from latency statistics — trimmed once, cluster-wide.
    warmup: int = 0
    #: Requests abandoned at the frontend: no live host remained to
    #: take them.
    frontend_abandoned: int = 0
    abandoned_requests: list[Request] = field(default_factory=list)
    #: Host- and device-level failures, in injection order.
    failures: list[FailureEvent] = field(default_factory=list)
    #: Frontend routing tallies.
    sharded: int = 0     #: requests pushed to a shard channel (incl. re-shards)
    spilled: int = 0     #: routed off the hash-preferred host (load spill)
    resharded: int = 0   #: re-pushed after their owner host died
    #: Committed scale actions, in commit order (empty: fixed run).
    scale_events: list = field(default_factory=list)
    #: Pool size the frontend could scale across (0: fixed run,
    #: every shard active throughout).
    pool_hosts: int = 0

    def __post_init__(self) -> None:
        if not self.shards:
            raise FrameworkError("cluster result needs >= 1 shard")
        if self.warmup < 0:
            raise FrameworkError("warmup must be >= 0")
        if self.frontend_abandoned != len(self.abandoned_requests):
            raise FrameworkError(
                f"{self.frontend_abandoned} frontend abandons but "
                f"{len(self.abandoned_requests)} abandoned requests "
                "recorded")
        # Roll-up invariant, part 1: per-host resolutions plus
        # frontend abandons account for every offered request.
        resolved = sum(s.result.offered for s in self.shards)
        if resolved + self.frontend_abandoned != self.offered:
            raise FrameworkError(
                "cluster accounting broken: "
                f"{resolved} host-resolved + {self.frontend_abandoned}"
                f" frontend-abandoned != {self.offered} offered")
        # Part 2: no request resolved by two hosts (exactly once).
        ids = [r.request_id
               for s in self.shards for r in s.result.requests]
        ids.extend(r.request_id for r in self.abandoned_requests)
        if len(ids) != len(set(ids)):
            seen: set[int] = set()
            dup = next(i for i in ids if i in seen or seen.add(i))
            raise FrameworkError(
                f"request {dup} resolved by more than one host: the "
                "cluster exactly-once invariant is broken")

    # -- merged request views -------------------------------------------
    def completed_requests(self) -> list[Request]:
        """All completed requests, merged in completion order."""
        merged = [r for s in self.shards
                  for r in s.result.completed_requests()]
        merged.sort(key=lambda r: (r.completed_at, r.request_id))
        return merged

    def _steady_state(self) -> list[Request]:
        """Merged completed requests past the cluster warmup."""
        return self.completed_requests()[self.warmup:]

    def e2e_latencies(self) -> list[float]:
        """Arrival-to-completion latency per steady-state request."""
        return [r.e2e_latency for r in self._steady_state()
                if r.e2e_latency is not None]

    # -- tallies ---------------------------------------------------------
    @property
    def num_hosts(self) -> int:
        """Number of host shards in the cluster."""
        return len(self.shards)

    @property
    def completed(self) -> int:
        """Completed requests across every host."""
        return sum(s.result.completed for s in self.shards)

    @property
    def shed(self) -> int:
        """Requests shed by host admission queues."""
        return sum(s.result.shed for s in self.shards)

    @property
    def rejected(self) -> int:
        """Requests rejected by host admission queues."""
        return sum(s.result.rejected for s in self.shards)

    @property
    def timed_out(self) -> int:
        """Requests that missed their deadline on any host."""
        return sum(s.result.timed_out for s in self.shards)

    @property
    def abandoned(self) -> int:
        """Host-level abandons plus frontend abandons."""
        return (sum(s.result.abandoned for s in self.shards)
                + self.frontend_abandoned)

    # -- percentiles -----------------------------------------------------
    def latency_percentile(self, q: float) -> float:
        """Merged end-to-end latency percentile (q in [0, 100])."""
        latencies = self.e2e_latencies()
        if not latencies:
            raise ValueError(
                "no completed requests past warmup: latency "
                "percentiles are undefined for this run")
        return float(np.percentile(latencies, q))

    @property
    def p50(self) -> float:
        """Median merged end-to-end latency (seconds)."""
        return self.latency_percentile(50)

    @property
    def p95(self) -> float:
        """95th-percentile merged end-to-end latency (seconds)."""
        return self.latency_percentile(95)

    @property
    def p99(self) -> float:
        """99th-percentile merged end-to-end latency (seconds)."""
        return self.latency_percentile(99)

    # -- rates -----------------------------------------------------------
    @property
    def throughput(self) -> float:
        """Completed requests per second of wall time, cluster-wide."""
        if self.wall_seconds <= 0:
            raise FrameworkError("run has no elapsed time")
        return self.completed / self.wall_seconds

    @property
    def goodput(self) -> float:
        """Steady-state completed-within-SLO requests per second."""
        if self.wall_seconds <= 0:
            raise FrameworkError("run has no elapsed time")
        if self.slo_seconds is None:
            return self.throughput
        latencies = self.e2e_latencies()
        good = sum(1 for lat in latencies
                   if lat <= self.slo_seconds)
        return good / self.wall_seconds

    @property
    def slo_attainment(self) -> float:
        """Fraction of steady-state completions within the SLO."""
        if self.slo_seconds is None:
            return 1.0
        latencies = self.e2e_latencies()
        if not latencies:
            return 1.0
        good = sum(1 for lat in latencies
                   if lat <= self.slo_seconds)
        return good / len(latencies)

    @property
    def loss_rate(self) -> float:
        """Fraction of offered requests that never completed."""
        if self.offered == 0:
            return 0.0
        return 1.0 - self.completed / self.offered

    @property
    def slo_met(self) -> bool:
        """The sweep's sustainability criterion, cluster-wide: every
        request completed and merged p99 within the SLO."""
        if self.slo_seconds is None:
            raise FrameworkError("run has no SLO configured")
        if self.completed < self.offered:
            return False
        try:
            return self.p99 <= self.slo_seconds
        except ValueError:
            return False

    @property
    def degraded(self) -> bool:
        """True when any host/device failed or work was abandoned."""
        return bool(self.failures) or self.abandoned > 0

    # -- elastic-scaling accounting --------------------------------------
    @property
    def end_seconds(self) -> float:
        """Absolute sim time the run ended (epoch + wall)."""
        return self.prepare_seconds + self.wall_seconds

    @property
    def host_seconds(self) -> float:
        """Summed active host time — the run's capacity cost.

        Each shard bills from its activation (ring join) to its
        death, drain, or the end of the run; a fixed-N run therefore
        bills exactly ``N * wall_seconds`` for the survivors.  This
        is the x-axis of the cost-vs-SLO frontier.
        """
        epoch = self.prepare_seconds
        end = self.end_seconds
        return sum(s.active_seconds(epoch, end) for s in self.shards)

    @property
    def drained_hosts(self) -> int:
        """Shards retired by a scale-in drain."""
        return sum(1 for s in self.shards
                   if s.drained_at is not None)

    @property
    def scale_outs(self) -> int:
        """Committed scale-out actions."""
        from repro.cluster.autoscale import SCALE_OUT
        return sum(1 for e in self.scale_events
                   if e.action == SCALE_OUT)

    @property
    def scale_ins(self) -> int:
        """Committed scale-in (drain) actions."""
        from repro.cluster.autoscale import SCALE_IN
        return sum(1 for e in self.scale_events
                   if e.action == SCALE_IN)

    def per_host_counts(self) -> dict[str, int]:
        """Completed requests per host (sharding balance check)."""
        return {s.name: s.result.completed for s in self.shards}

    def summary(self) -> str:
        """One-line human-readable summary of the run."""
        dead = sum(1 for s in self.shards if s.killed_at is not None)
        head = (f"{self.completed}/{self.offered} requests across "
                f"{self.num_hosts} hosts in {self.wall_seconds:.2f} s")
        if dead:
            head += f" ({dead} host{'s' if dead > 1 else ''} died)"
        try:
            tail = (f", p50 {self.p50 * 1000:.1f} ms / p99 "
                    f"{self.p99 * 1000:.1f} ms")
        except ValueError:
            return head + ", no completed requests"
        if self.slo_seconds is not None:
            tail += (f", goodput {self.goodput:.1f} req/s vs SLO "
                     f"{self.slo_seconds * 1000:.0f} ms "
                     f"({'met' if self.slo_met else 'MISSED'})")
        return head + tail
