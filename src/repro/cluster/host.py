"""One simulated serving host (an MPI rank) in the cluster.

A :class:`HostRank` is a full single-host serving pipeline — admission
queue, dynamic batcher, router, one backend target — fed by an ingest
process that drains the host's :class:`~repro.mpi.stream.StreamWindow`
shard channel.  It reuses the ``repro.serve`` components verbatim,
namespaced under ``rank<N>`` so per-host queues, batchers and backends
stay distinguishable in one observability session.

Resolution flows upward: every terminal state (completed, shed,
rejected, timed out, abandoned) is tallied here *and* reported to the
cluster frontend via ``on_resolve``, whose ownership ledger enforces
the cluster-wide exactly-once invariant.

Death is a first-class state: :meth:`kill` tears the whole rank down
mid-flight — the shard channel is aborted, the ingest interrupted,
the queue drained, the batcher and backend halted — leaving every
unresolved request it owned PENDING for the frontend to re-shard.
"""

from __future__ import annotations

from typing import Callable, Generator, Optional

from repro.errors import FrameworkError
from repro.mpi.stream import StreamWindow
from repro.ncsw.faults import FailureEvent
from repro.ncsw.targets import TargetDevice
from repro.serve.batcher import DynamicBatcher
from repro.serve.queue import BLOCK, AdmissionQueue
from repro.serve.router import Backend, Router
from repro.serve.slo import ServeResult
from repro.serve.workload import (
    ABANDONED,
    COMPLETED,
    REJECTED,
    SHED,
    TIMED_OUT,
    Request,
)
from repro.sim.core import Environment, Event, Interrupt, Process


class HostRank:
    """A serving host behind one shard channel of the cluster."""

    def __init__(self, env: Environment, rank: int, name: str,
                 target: TargetDevice, stream: StreamWindow,
                 on_resolve: Callable[["HostRank", Request], None],
                 *,
                 queue_depth: Optional[int] = 64,
                 admission: str = "reject-newest",
                 max_batch_size: Optional[int] = None,
                 max_wait_s: float = 0.002,
                 max_redirects: int = 1,
                 ewma_alpha: float = 0.2) -> None:
        if rank < 1:
            raise FrameworkError(
                f"host ranks start at 1 (rank 0 is the frontend), "
                f"got {rank}")
        self.env = env
        self.rank = rank
        self.name = name
        self.target = target
        self.stream = stream
        self.on_resolve = on_resolve
        prefix = f"rank{rank}"
        self.metrics_prefix = prefix
        self.queue = AdmissionQueue(env, depth=queue_depth,
                                    policy=admission,
                                    on_drop=self._resolve_dropped,
                                    name=prefix)
        self.backend = Backend(env, name, target,
                               metrics_prefix=prefix)
        self.router = Router(env, [self.backend],
                             max_redirects=max_redirects,
                             ewma_alpha=ewma_alpha,
                             on_complete=self._complete,
                             on_abandon=self._resolve_dropped,
                             metrics_prefix=prefix)
        self.batcher = DynamicBatcher(env, self.queue, self.router,
                                      max_batch_size=max_batch_size,
                                      max_wait_s=max_wait_s,
                                      on_timeout=self._resolve_dropped,
                                      metrics_prefix=prefix)
        # -- terminal-state tallies (this host's ServeResult) ---------
        self.completed = 0
        self.shed = 0
        self.rejected = 0
        self.timed_out = 0
        self.abandoned = 0
        #: Every request this host resolved, in resolution order.
        self.resolved: list[Request] = []
        self.dead = False
        self.died_at: Optional[float] = None
        self.failure: Optional[FailureEvent] = None
        #: Unresolved requests stranded by :meth:`kill` (count).
        self.resharded = 0
        # -- autoscaling lifecycle (see repro.cluster.autoscale) -------
        #: Pool slot this generation serves (set by the frontend).
        self.slot: Optional[int] = None
        #: Sim time this host joined the ring, or None (fixed runs
        #: leave it None: active from the serving epoch).
        self.activated_at: Optional[float] = None
        #: True while a scale-in drain is in progress (out of the
        #: ring, still resolving its owned backlog).
        self.draining = False
        #: Sim time a scale-in drain completed, or None.
        self.drained_at: Optional[float] = None
        self._ingest_proc: Optional[Process] = None
        self._batcher_proc: Optional[Event] = None
        self._worker_procs: list[Event] = []
        self._lifecycle_proc: Optional[Event] = None

    # -- lifecycle -------------------------------------------------------
    def prepare(self) -> Event:
        """Boot the host's target (sticks, graph, warm-up)."""
        return self.target.prepare(self.env)

    def start(self) -> Event:
        """Fork ingest + batcher + backend; returns the lifecycle
        process, which completes at orderly shutdown or death."""
        self._worker_procs = self.router.start()
        self._batcher_proc = self.batcher.run()
        self._ingest_proc = self.env.process(self._ingest())
        self._lifecycle_proc = self.env.process(self._lifecycle())
        return self._lifecycle_proc

    def _ingest(self) -> Generator[Event, None, None]:
        """Drain the shard channel into the admission queue."""
        try:
            while True:
                item = yield self.stream.pop()
                if item is None:
                    break  # EOS: stream closed (or aborted at death)
                if self.dead:
                    # Straggler raced the abort; the frontend already
                    # re-sharded it, so it must not enter this queue.
                    continue
                event = self.queue.offer(item)
                if (self.queue.policy == BLOCK and event is not None
                        and not event.triggered):
                    # Blocking admission: stop popping until the put
                    # lands, so backpressure reaches the shard channel
                    # (its window fills and the frontend spills).
                    yield event
        except Interrupt:
            return  # killed while waiting: channel already aborted
        if not self.dead:
            self.queue.close()

    def _lifecycle(self) -> Generator[Event, None, None]:
        """Orderly shutdown after the stream closes (live hosts)."""
        yield self._ingest_proc
        if self.dead:
            return  # batcher/backend were halted, not drained
        yield self._batcher_proc
        self.router.close()
        yield self.env.all_of(self._worker_procs)

    def kill(self) -> None:
        """Tear the whole rank down mid-flight (host failure).

        Order matters: mark dead first (silences late callbacks and
        straggler ingests), interrupt the ingest, abort the shard
        channel (releasing blocked frontend pushes), drain the queue,
        then halt the batcher and backend so no in-flight batch ever
        stamps completion on a request the frontend is re-sharding.
        """
        if self.dead:
            return
        self.dead = True
        self.died_at = self.env.now
        if self._ingest_proc is not None and self._ingest_proc.is_alive:
            self._ingest_proc.interrupt("host killed")
        self.stream.abort()
        self.queue.drain()
        self.batcher.halt()
        self.backend.halt()

    # -- resolution callbacks (wired into the serve components) ---------
    def _resolve_dropped(self, request: Request) -> None:
        """A request reached a non-completed terminal state here."""
        if request.status == SHED:
            self.shed += 1
        elif request.status == REJECTED:
            self.rejected += 1
        elif request.status == TIMED_OUT:
            self.timed_out += 1
        elif request.status == ABANDONED:
            self.abandoned += 1
        else:  # pragma: no cover - defensive
            raise FrameworkError(
                f"request {request.request_id} dropped in "
                f"non-terminal state {request.status!r}")
        self.resolved.append(request)
        self.on_resolve(self, request)

    def _complete(self, batch: list[Request]) -> None:
        """A batch completed on this host's backend."""
        obs = self.env.obs
        for request in batch:
            self.completed += 1
            self.resolved.append(request)
            if obs is not None:
                obs.metrics.counter(
                    f"{self.metrics_prefix}.completed").inc()
                if request.e2e_latency is not None:
                    obs.metrics.histogram(
                        f"{self.metrics_prefix}.e2e_seconds").observe(
                            request.e2e_latency)
            self.on_resolve(self, request)

    # -- accounting ------------------------------------------------------
    def result(self, slo_seconds: Optional[float],
               wall_seconds: float,
               prepare_seconds: float) -> ServeResult:
        """This host's shard of the cluster accounting.

        ``offered`` is the number of requests this host *resolved* —
        ownership of anything it never resolved moved back to the
        frontend at death — so the per-host ServeResult satisfies the
        same exactly-once invariant as a single-host run.  Warmup
        trimming happens at cluster level, over the merged completion
        order, not per shard.
        """
        failures = list(self.target.fault_stats().events)
        if self.failure is not None:
            failures.append(self.failure)
        requests = sorted(self.resolved,
                          key=lambda r: (r.arrival_time, r.request_id))
        return ServeResult(
            offered=len(requests),
            completed=self.completed,
            shed=self.shed,
            rejected=self.rejected,
            timed_out=self.timed_out,
            abandoned=self.abandoned,
            wall_seconds=wall_seconds,
            prepare_seconds=prepare_seconds,
            slo_seconds=slo_seconds,
            requests=requests,
            failures=failures,
            warmup=0,
        )
