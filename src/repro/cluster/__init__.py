"""Cluster-scale sharded serving over simulated MPI.

The production-scale layer the ROADMAP's north star asks for: N
simulated serving hosts (each a full ``repro.serve`` pipeline over an
``IntelVPU``/CPU/GPU target) behind a frontend rank that shards an
open-loop workload over per-host
:class:`~repro.mpi.stream.StreamWindow` channels — consistent-hash
routing with least-outstanding spill, per-shard backpressure,
whole-host failure injection with re-shard/drain semantics, and a
:class:`ClusterResult` that rolls per-host
:class:`~repro.serve.slo.ServeResult` accounting up under the same
exactly-once invariant.
"""

from repro.cluster.hashring import HashRing
from repro.cluster.host import HostRank
from repro.cluster.report import render_cluster_report
from repro.cluster.result import ClusterResult, HostShard
from repro.cluster.server import DEFAULT_WINDOW, ClusterServer

__all__ = [
    "ClusterResult",
    "ClusterServer",
    "DEFAULT_WINDOW",
    "HashRing",
    "HostRank",
    "HostShard",
    "render_cluster_report",
]
