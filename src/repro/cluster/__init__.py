"""Cluster-scale sharded serving over simulated MPI.

The production-scale layer the ROADMAP's north star asks for: N
simulated serving hosts (each a full ``repro.serve`` pipeline over an
``IntelVPU``/CPU/GPU target) behind a frontend rank that shards an
open-loop workload over per-host
:class:`~repro.mpi.stream.StreamWindow` channels — consistent-hash
routing with least-outstanding spill, per-shard backpressure,
whole-host failure injection with re-shard/drain semantics, and a
:class:`ClusterResult` that rolls per-host
:class:`~repro.serve.slo.ServeResult` accounting up under the same
exactly-once invariant.

Capacity is elastic (:mod:`repro.cluster.autoscale`): an
:class:`Autoscaler` with a reactive or predictive policy — or a
scripted :class:`ScalePlan` — adds and drains hosts live against the
ring, with a warm pool for instant scale-out and a zero-loss
lame-duck drain for scale-in; :func:`cost_point` /
:func:`render_cost_table` fold runs into the host-hours vs SLO
frontier.
"""

from repro.cluster.autoscale import (
    SCALE_IN,
    SCALE_OUT,
    Autoscaler,
    AutoscaleSignal,
    CostPoint,
    PredictivePolicy,
    ReactivePolicy,
    ScaleAction,
    ScaleEvent,
    ScalePlan,
    cost_point,
    render_cost_table,
)
from repro.cluster.hashring import HashRing
from repro.cluster.host import HostRank
from repro.cluster.report import render_cluster_report
from repro.cluster.result import ClusterResult, HostShard
from repro.cluster.server import (
    DEFAULT_DRAIN_GRACE_S,
    DEFAULT_WINDOW,
    ClusterServer,
)

__all__ = [
    "Autoscaler",
    "AutoscaleSignal",
    "ClusterResult",
    "ClusterServer",
    "CostPoint",
    "DEFAULT_DRAIN_GRACE_S",
    "DEFAULT_WINDOW",
    "HashRing",
    "HostRank",
    "HostShard",
    "PredictivePolicy",
    "ReactivePolicy",
    "SCALE_IN",
    "SCALE_OUT",
    "ScaleAction",
    "ScaleEvent",
    "ScalePlan",
    "cost_point",
    "render_cost_table",
    "render_cluster_report",
]
