"""Consistent-hash ring for cluster request sharding.

The frontend's default routing decision.  Each host owns ``replicas``
virtual points on a 64-bit ring (sha256 of ``"<host>#<v>"``, so the
layout is deterministic and platform-independent); a request maps to
the first point clockwise of its own hash.  The property that makes
this the right structure for a serving cluster: removing a host
re-maps *only* the keys that host owned — every request sticky to a
surviving host keeps its shard through a failure, so a kill disturbs
1/N of the traffic instead of reshuffling all of it.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Sequence, Union

from repro.errors import FrameworkError


def _point(label: str) -> int:
    """64-bit ring position of a label (stable across platforms)."""
    digest = hashlib.sha256(f"cluster-ring:{label}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


class HashRing:
    """Consistent-hash ring over a set of named nodes."""

    def __init__(self, nodes: Sequence[str],
                 replicas: int = 64) -> None:
        if not nodes:
            raise FrameworkError("hash ring needs at least one node")
        if len(set(nodes)) != len(nodes):
            raise FrameworkError(f"duplicate nodes in {list(nodes)}")
        if replicas < 1:
            raise FrameworkError(
                f"replicas must be >= 1, got {replicas}")
        self.replicas = replicas
        self._nodes: list[str] = []
        # Sorted (point, node) pairs; bisect gives O(log n) lookup.
        self._ring: list[tuple[int, str]] = []
        for node in nodes:
            self.add(node)

    def __len__(self) -> int:
        return len(self._nodes)

    @property
    def nodes(self) -> tuple[str, ...]:
        """Current nodes, in insertion order."""
        return tuple(self._nodes)

    def add(self, node: str) -> None:
        """Insert *node* with its virtual points."""
        if node in self._nodes:
            raise FrameworkError(f"node {node!r} already on the ring")
        self._nodes.append(node)
        for v in range(self.replicas):
            pair = (_point(f"{node}#{v}"), node)
            bisect.insort(self._ring, pair)

    def remove(self, node: str) -> None:
        """Drop *node*; only its keys re-map to the survivors."""
        if node not in self._nodes:
            raise FrameworkError(f"node {node!r} is not on the ring")
        self._nodes.remove(node)
        self._ring = [(p, n) for p, n in self._ring if n != node]

    def lookup(self, key: Union[int, str]) -> str:
        """The node owning *key* (first point clockwise of its hash)."""
        if not self._ring:
            raise FrameworkError("hash ring is empty")
        point = _point(f"key:{key}")
        idx = bisect.bisect_right(self._ring, (point, ""))
        if idx == len(self._ring):
            idx = 0  # wrap: past the last point means the first node
        return self._ring[idx][1]
