"""The cluster frontend: shard, spill, re-shard, scale, account.

:class:`ClusterServer` is the rank-0 process of a simulated serving
cluster.  A pool of host *slots* (each a target that can be booted
into a :class:`~repro.cluster.host.HostRank`) sits behind it; live
hosts get one bounded :class:`~repro.mpi.stream.StreamWindow` shard
channel each, all on one :class:`~repro.mpi.comm.Communicator` sized
for the whole pool so every push pays the modelled interconnect cost.

Routing is consistent-hash first, load-spill second: a request maps
to its sticky host on the :class:`~repro.cluster.hashring.HashRing`;
when that shard's outstanding work (frontend ledger: pushed but not
yet resolved) exceeds ``spill_threshold``, the request spills to the
least-outstanding live host instead.  Backpressure is per shard — a
full stream window blocks that shard's pushes without stalling the
arrival clock or the other shards.

**Elastic scaling** (see :mod:`repro.cluster.autoscale`): the host
set is live-mutable.  ``scale_out`` activates a pool slot — instantly
when the slot is warm (target already prepared), after a cold boot
otherwise — and adds it to the ring, where the minimal-remap property
means only the keys moving *to* the new host change owner.
``drain_host`` is the zero-loss scale-in: the host leaves the ring
(no new sticky or spilled traffic), serves down its owned backlog as
a lame duck, and shuts down orderly once the ledger shows zero
outstanding; if the drain grace expires first, the leftover backlog
takes the exact kill/re-shard path below — re-sharded, never lost.
A drained slot's target stays booted, so the slot re-enters the warm
pool and a later scale-out revives it as a fresh host generation.

Host failure reuses :class:`~repro.ncsw.faults.FaultPlan`, with the
``device_index`` read as a pool-slot index: at the fault time the
slot's live rank dies mid-flight.  The frontend then aborts the shard
channel, prunes the ring, marks the host dead in the
:class:`~repro.ncs.health.HealthMonitor`, collects every request the
dead host owned but never resolved, wipes their partial timestamps
(:meth:`~repro.serve.workload.Request.reset_for_reshard`) and
re-shards them to the survivors — or abandons them at the frontend
when no survivor remains.  Either way the ownership ledger keeps the
exactly-once invariant: the returned
:class:`~repro.cluster.result.ClusterResult` proves it in its
constructor.

Determinism: seeded workload + seeded fault plan + scripted or
policy-driven scale events on the sim clock + the DES kernel's
determinism contract = byte-identical cluster reports run to run.
"""

from __future__ import annotations

from typing import Generator, Optional, Sequence

from repro.cluster.autoscale import (
    SCALE_IN,
    SCALE_OUT,
    Autoscaler,
    AutoscaleSignal,
    ScaleEvent,
    ScalePlan,
)
from repro.cluster.hashring import HashRing
from repro.cluster.host import HostRank
from repro.cluster.result import ClusterResult, HostShard
from repro.errors import FrameworkError
from repro.mpi.comm import (
    LINK_BANDWIDTH_BYTES_S,
    LINK_LATENCY_S,
    Communicator,
)
from repro.mpi.stream import StreamWindow
from repro.ncs.health import HealthMonitor
from repro.ncsw.faults import DEATH, FailureEvent, FaultPlan
from repro.ncsw.targets import TargetDevice
from repro.serve.queue import POLICIES as ADMISSION_POLICIES
from repro.serve.queue import REJECT_NEWEST
from repro.serve.server import DEFAULT_MAX_WAIT_S
from repro.serve.workload import ABANDONED, COMPLETED, Request, Workload
from repro.sim.core import Environment, Event

#: Default per-shard stream window (requests in flight on the wire
#: plus buffered at the host, before pushes block).
DEFAULT_WINDOW = 8

#: Default lame-duck drain grace before the leftover backlog is
#: force-re-sharded (seconds on the sim clock).
DEFAULT_DRAIN_GRACE_S = 0.25


class _Slot:
    """One pool slot: a target and its current host generation."""

    __slots__ = ("index", "target", "prepare_event", "booting",
                 "host", "generation")

    def __init__(self, index: int, target: TargetDevice) -> None:
        self.index = index
        self.target = target
        #: The target's prepare event; None until first boot starts.
        self.prepare_event: Optional[Event] = None
        #: True while a scale-out is waiting on this slot's boot.
        self.booting = False
        #: The slot's live (or draining) HostRank, or None.
        self.host: Optional[HostRank] = None
        #: Host generations this slot has served (names the revival).
        self.generation = 0

    @property
    def warm(self) -> bool:
        """Prepared and idle: activation costs nothing."""
        return (self.host is None and not self.booting
                and self.prepare_event is not None
                and self.prepare_event.processed)

    @property
    def selectable(self) -> bool:
        """Can a scale-out take this slot right now."""
        return self.host is None and not self.booting


class ClusterServer:
    """Sharded multi-host serving over simulated MPI channels."""

    def __init__(self, targets: Sequence[TargetDevice], *,
                 window: int = DEFAULT_WINDOW,
                 replicas: int = 64,
                 spill_threshold: Optional[int] = None,
                 queue_depth: Optional[int] = 64,
                 admission: str = REJECT_NEWEST,
                 max_batch_size: Optional[int] = None,
                 max_wait_s: float = DEFAULT_MAX_WAIT_S,
                 slo_seconds: Optional[float] = 0.250,
                 deadline_seconds: Optional[float] = None,
                 max_redirects: int = 1,
                 ewma_alpha: float = 0.2,
                 warmup: int = 0,
                 host_faults: Optional[FaultPlan] = None,
                 autoscaler: Optional[Autoscaler] = None,
                 scale_plan: Optional[ScalePlan] = None,
                 initial_hosts: Optional[int] = None,
                 warm_pool: Optional[int] = None,
                 drain_grace_s: float = DEFAULT_DRAIN_GRACE_S,
                 latency_s: float = LINK_LATENCY_S,
                 bandwidth: float = LINK_BANDWIDTH_BYTES_S,
                 scheduler: Optional[str] = None,
                 obs=None) -> None:
        if not targets:
            raise FrameworkError("cluster needs at least one host")
        if admission not in ADMISSION_POLICIES:
            raise FrameworkError(
                f"unknown admission policy {admission!r}; one of "
                f"{ADMISSION_POLICIES}")
        if slo_seconds is not None and slo_seconds <= 0:
            raise FrameworkError(
                f"slo_seconds must be positive, got {slo_seconds}")
        if warmup < 0:
            raise FrameworkError("warmup must be >= 0")
        if spill_threshold is not None and spill_threshold < 1:
            raise FrameworkError(
                f"spill_threshold must be >= 1, got {spill_threshold}")
        if host_faults is not None:
            for fault in host_faults.faults:
                if fault.kind != DEATH:
                    raise FrameworkError(
                        f"host faults support kind {DEATH!r} only "
                        f"(whole-rank death), got {fault.kind!r}; "
                        "inject hang/thermal/busy at device level "
                        "via the host target's fault plan")
                if fault.device_index >= len(targets):
                    raise FrameworkError(
                        f"host fault targets host "
                        f"{fault.device_index} but the cluster has "
                        f"{len(targets)} hosts")
        if scale_plan is not None:
            for action in scale_plan.actions:
                if (action.slot is not None
                        and action.slot >= len(targets)):
                    raise FrameworkError(
                        f"scale plan drains slot {action.slot} but "
                        f"the pool has {len(targets)} slots")
        if initial_hosts is None:
            initial_hosts = (autoscaler.min_hosts
                             if autoscaler is not None
                             else len(targets))
        if not 1 <= initial_hosts <= len(targets):
            raise FrameworkError(
                f"initial_hosts must be in [1, {len(targets)}], "
                f"got {initial_hosts}")
        if warm_pool is None:
            warm_pool = (autoscaler.warm_pool
                         if autoscaler is not None else 0)
        if warm_pool < 0:
            raise FrameworkError(
                f"warm_pool must be >= 0, got {warm_pool}")
        if drain_grace_s <= 0:
            raise FrameworkError(
                f"drain_grace_s must be positive, got {drain_grace_s}")
        self.targets = list(targets)
        self.window = window
        self.replicas = replicas
        # Default spill point: the shard's own pipeline capacity —
        # channel window plus admission queue.  Beyond that, queued
        # work on the sticky host is pure wait; a less-loaded host
        # wins even at the cost of breaking stickiness.
        self.spill_threshold = (
            spill_threshold if spill_threshold is not None
            else window + (queue_depth if queue_depth is not None
                           else 3 * window))
        self.queue_depth = queue_depth
        self.admission = admission
        self.max_batch_size = max_batch_size
        self.max_wait_s = max_wait_s
        self.slo_seconds = slo_seconds
        self.deadline_seconds = deadline_seconds
        self.max_redirects = max_redirects
        self.ewma_alpha = ewma_alpha
        self.warmup = warmup
        self.host_faults = host_faults
        self.autoscaler = autoscaler
        self.scale_plan = scale_plan
        self.initial_hosts = initial_hosts
        self.warm_pool = warm_pool
        self.drain_grace_s = drain_grace_s
        self.latency_s = latency_s
        self.bandwidth = bandwidth
        #: Scheduler kernel for the run's Environment ("heap"/"wheel");
        #: None defers to the REPRO_SIM_SCHEDULER env var.
        self.scheduler = scheduler
        self.obs = obs
        #: Health trail of the last run (host-level transitions).
        self.health: Optional[HealthMonitor] = None

    # -- the run ---------------------------------------------------------
    @property
    def finished(self) -> bool:
        """True once every offered request has resolved."""
        return getattr(self, "_finished", False)

    def run(self, workload: Workload,
            num_requests: int) -> ClusterResult:
        """Serve *num_requests* across the hosts; blocks until every
        request resolved cluster-wide and returns the roll-up."""
        requests = workload.requests(
            num_requests, deadline_s=self.deadline_seconds)

        env = Environment(scheduler=self.scheduler)
        if self.obs is not None:
            self.obs.attach(env)
        self._env = env

        pool = len(self.targets)
        comm = Communicator(env, size=pool + 1,
                            latency_s=self.latency_s,
                            bandwidth=self.bandwidth)
        self._comm = comm
        self._slots = [_Slot(i, target)
                       for i, target in enumerate(self.targets)]
        #: Every host generation ever activated, in activation order.
        self.hosts: list[HostRank] = []
        self._by_name: dict[str, HostRank] = {}
        #: Live, non-draining hosts — the routing set (and the ring's
        #: exact membership).
        self._routable: dict[str, HostRank] = {}
        self.ring: Optional[HashRing] = None
        self.health = HealthMonitor(env)
        # Ownership ledger: request id -> (request, owning host), from
        # push initiation until resolution.  The single source of
        # truth for what a dead host strands — channel buffers and
        # queue contents alone undercount in-flight work.
        self._owned: dict[int, tuple[Request, HostRank]] = {}
        self._outstanding: dict[str, int] = {}
        self._drain_done: dict[str, Event] = {}
        self._booting = 0
        self._offered = len(requests)
        self._resolved = 0
        self._all_resolved = env.event()
        self._abandoned: list[Request] = []
        self.failures: list[FailureEvent] = []
        self.scale_events: list[ScaleEvent] = []
        self.sharded = 0
        self.spilled = 0
        self.resharded = 0
        self._finished = False
        self._lifecycles: list[Event] = []
        self._epoch = 0.0
        if self.autoscaler is not None:
            self.autoscaler.reset()

        def main() -> Generator[Event, None, tuple[float, float]]:
            obs = env.obs
            prep = None
            if obs is not None:
                prep = obs.tracer.begin("prepare", track="cluster",
                                        hosts=self.initial_hosts)
            # Boot the initial actives; pre-warm the next warm_pool
            # slots concurrently (their boots overlap the actives' —
            # serving starts when the actives are up).
            boots = [self._slot_prepare(self._slots[i])
                     for i in range(self.initial_hosts)]
            for slot in self._slots[self.initial_hosts:
                                    self.initial_hosts
                                    + self.warm_pool]:
                self._slot_prepare(slot)
            yield env.all_of(boots)
            if obs is not None:
                obs.tracer.end(prep)
            for i in range(self.initial_hosts):
                self._activate(self._slots[i], reason="initial",
                               record=False)
            t0 = env.now
            self._epoch = t0
            if self.host_faults is not None:
                for fault in self.host_faults.faults:
                    env.process(self._inject_host_fault(fault))
            if self.scale_plan is not None:
                for action in self.scale_plan.actions:
                    env.process(self._inject_scale_action(action))
            if self.autoscaler is not None:
                env.process(self.autoscaler.run(self))
            yield env.process(self._arrivals(requests))
            yield self._all_resolved
            self._finished = True
            wall = env.now - t0
            # Orderly shutdown of the survivors: close each shard
            # channel (EOS), which cascades queue close -> batcher
            # pill -> backend pill down each host's lifecycle.  Dead
            # hosts' lifecycles already completed at their death, and
            # drained hosts closed their own channel at drain end.
            for host in self.hosts:
                if not host.dead and not host.stream.closed:
                    host.stream.close()
            yield env.all_of(self._lifecycles)
            return wall, t0

        wall, epoch = env.run(until=env.process(main()))

        total_completed = sum(h.completed for h in self.hosts)
        shards = [HostShard(rank=h.rank, name=h.name,
                            result=h.result(self.slo_seconds, wall,
                                            epoch),
                            killed_at=h.died_at,
                            resharded=h.resharded,
                            activated_at=h.activated_at,
                            drained_at=h.drained_at)
                  for h in self.hosts]
        return ClusterResult(
            offered=self._offered,
            shards=shards,
            wall_seconds=wall,
            prepare_seconds=epoch,
            slo_seconds=self.slo_seconds,
            warmup=min(self.warmup, total_completed),
            frontend_abandoned=len(self._abandoned),
            abandoned_requests=self._abandoned,
            failures=self.failures,
            sharded=self.sharded,
            spilled=self.spilled,
            resharded=self.resharded,
            scale_events=list(self.scale_events),
            pool_hosts=pool,
        )

    # -- slot lifecycle (boot / activate / revive) -----------------------
    def _slot_prepare(self, slot: _Slot) -> Event:
        """Start (or reuse) the slot target's boot; returns its
        prepare event.  A drained slot's target stays booted, so its
        event is already processed and revival is instant."""
        if slot.prepare_event is None:
            slot.prepare_event = slot.target.prepare(self._env)
        return slot.prepare_event

    def _activate(self, slot: _Slot, reason: str,
                  record: bool = True) -> HostRank:
        """Bring a prepared slot into the serving set, live."""
        env = self._env
        gen = slot.generation
        slot.generation += 1
        name = (f"host{slot.index}" if gen == 0
                else f"host{slot.index}r{gen}")
        host = HostRank(
            env, rank=slot.index + 1, name=name,
            target=slot.target,
            stream=StreamWindow(self._comm, source=0,
                                dest=slot.index + 1,
                                window=self.window),
            on_resolve=self._on_resolve,
            queue_depth=self.queue_depth,
            admission=self.admission,
            max_batch_size=self.max_batch_size,
            max_wait_s=self.max_wait_s,
            max_redirects=self.max_redirects,
            ewma_alpha=self.ewma_alpha)
        host.slot = slot.index
        host.activated_at = env.now
        slot.host = host
        self.hosts.append(host)
        self._by_name[name] = host
        self._outstanding[name] = 0
        self._routable[name] = host
        self.health.register(name)
        if self.ring is None:
            self.ring = HashRing([name], replicas=self.replicas)
        else:
            self.ring.add(name)
        self._lifecycles.append(host.start())
        if record:
            self._record_scale(SCALE_OUT, name, reason)
        self._gauge_live()
        return host

    def scale_out(self, reason: str = "") -> Optional[int]:
        """Activate one pool slot; returns its index, or None when no
        slot is available.  Warm slots win (instant activation); a
        cold slot pays its boot before joining the ring."""
        if self._finished:
            return None
        slot = self._pick_slot()
        if slot is None:
            return None
        slot.booting = True
        self._booting += 1
        self._env.process(self._boot_and_activate(slot, reason))
        self._replenish_warm()
        return slot.index

    def _pick_slot(self) -> Optional[_Slot]:
        """Next slot for a scale-out: warm first, then a boot already
        in flight, then cold — lowest index within each tier."""
        warm = [s for s in self._slots if s.warm]
        if warm:
            return warm[0]
        warming = [s for s in self._slots
                   if s.selectable and s.prepare_event is not None]
        if warming:
            return warming[0]
        cold = [s for s in self._slots if s.selectable]
        return cold[0] if cold else None

    def _boot_and_activate(self, slot: _Slot, reason: str
                           ) -> Generator[Event, None, None]:
        event = self._slot_prepare(slot)
        if not event.processed:
            yield event
        slot.booting = False
        self._booting -= 1
        if self._finished:
            return
        self._activate(slot, reason)

    def _replenish_warm(self) -> None:
        """Keep ``warm_pool`` idle slots pre-initialised: when a warm
        slot is consumed, start boiling the next cold one."""
        if self.warm_pool == 0:
            return
        ready = sum(1 for s in self._slots
                    if s.selectable and s.prepare_event is not None)
        for slot in self._slots:
            if ready >= self.warm_pool:
                break
            if slot.selectable and slot.prepare_event is None:
                self._slot_prepare(slot)
                ready += 1

    # -- scale-in drain --------------------------------------------------
    def drain_host(self, host: Optional[HostRank] = None,
                   reason: str = "") -> Optional[HostRank]:
        """Zero-loss scale-in of one live host.

        The host leaves the ring immediately (minimal remap: only its
        keys move) and the spill set, then serves down its owned
        backlog as a lame duck.  :meth:`_drain` finishes the job —
        orderly shutdown at zero outstanding, or a forced re-shard of
        the leftovers after ``drain_grace_s``.  Refuses to drain the
        last routable host; returns the draining host or None.
        """
        if self._finished or len(self._routable) <= 1:
            return None
        if host is None:
            host = min(self._routable.values(),
                       key=lambda h: (self._outstanding[h.name],
                                      -h.rank))
        elif host.name not in self._routable:
            return None
        host.draining = True
        del self._routable[host.name]
        self.ring.remove(host.name)
        slot = self._slots[host.slot]
        self._record_scale(SCALE_IN, host.name, reason)
        self._gauge_live()
        self._env.process(self._drain(host, slot))
        return host

    def _drain(self, host: HostRank, slot: _Slot
               ) -> Generator[Event, None, None]:
        env = self._env
        if self._outstanding[host.name] > 0:
            done = env.event()
            self._drain_done[host.name] = done
            yield done | env.timeout(self.drain_grace_s)
            self._drain_done.pop(host.name, None)
        if host.dead:
            return  # killed mid-drain: the fault path took over
        if self._outstanding[host.name] > 0:
            # Grace expired with work still owned: the kill/re-shard
            # path finishes the drain — halted mid-flight, stranded
            # requests re-shard to the survivors, nothing is lost.
            host.kill()
            host.died_at = None  # a drain, not a death
            self.health.mark_dead(host.name,
                                  reason="drained (scale-in, forced)")
            stranded = self._strand(host)
            host.drained_at = env.now
            host.draining = False
            host.resharded = len(stranded)
            slot.host = None
            obs = env.obs
            if obs is not None:
                obs.tracer.instant("host_drained", track="cluster",
                                   host=host.name, rank=host.rank,
                                   stranded=len(stranded))
                for request in stranded:
                    obs.reqtrace.hop(request.trace, "resharded",
                                     track="cluster", host=host.name)
            if stranded:
                if self._routable:
                    self.resharded += len(stranded)
                    if obs is not None:
                        obs.metrics.counter(
                            "cluster.resharded").inc(len(stranded))
                    env.process(self._reshard(stranded))
                else:
                    for request in stranded:
                        self._frontend_abandon(request)
            return
        # Clean drain: everything resolved, shut the rank down
        # orderly (EOS cascades queue close -> batcher -> backend).
        host.drained_at = env.now
        host.draining = False
        self.health.mark_dead(host.name, reason="drained (scale-in)")
        if not host.stream.closed:
            host.stream.close()
        slot.host = None
        obs = env.obs
        if obs is not None:
            obs.tracer.instant("host_drained", track="cluster",
                               host=host.name, rank=host.rank,
                               stranded=0)

    # -- scale signals / bookkeeping -------------------------------------
    def autoscale_signal(self) -> AutoscaleSignal:
        """Snapshot of the signals a scale policy decides on."""
        env = self._env
        total = sum(self._outstanding[name]
                    for name in self._routable)
        rolling = (self.autoscaler.rolling_p99()
                   if self.autoscaler is not None else None)
        return AutoscaleSignal(
            time=env.now,
            since_epoch=env.now - self._epoch,
            live=len(self._routable),
            booting=self._booting,
            addable=sum(1 for s in self._slots if s.selectable),
            total_outstanding=total,
            rolling_p99=rolling,
            slo_seconds=self.slo_seconds)

    def _record_scale(self, action: str, host: str,
                      reason: str) -> None:
        event = ScaleEvent(time=self._env.now, action=action,
                           host=host, reason=reason,
                           live_after=len(self._routable))
        self.scale_events.append(event)
        obs = self._env.obs
        if obs is not None:
            key = ("cluster.scale_out" if action == SCALE_OUT
                   else "cluster.scale_in")
            obs.metrics.counter(key).inc()
            obs.tracer.instant(action.replace("-", "_"),
                               track="cluster", host=host,
                               live=event.live_after)

    def _gauge_live(self) -> None:
        obs = self._env.obs
        if obs is not None:
            obs.metrics.gauge("cluster.live_hosts").set(
                len(self._routable))

    def _inject_scale_action(self, action
                             ) -> Generator[Event, None, None]:
        """Scripted scale injector (the ScalePlan twin of faults)."""
        env = self._env
        if action.at > env.now:
            yield env.timeout(action.at - env.now)
        if self._finished:
            return
        if action.action == "out":
            self.scale_out(reason=f"plan @ {action.at:g}s")
            return
        host = None
        if action.slot is not None:
            host = self._slots[action.slot].host
            if (host is None or host.dead or host.draining
                    or host.name not in self._routable):
                return
        self.drain_host(host, reason=f"plan @ {action.at:g}s")

    # -- arrivals and routing -------------------------------------------
    def _arrivals(self, requests: list[Request]
                  ) -> Generator[Event, None, None]:
        """Open-loop arrivals, rebased onto the sim clock at rank 0."""
        env = self._env
        obs = env.obs
        epoch = env.now
        for request in requests:
            request.arrival_time += epoch
            if request.deadline_at is not None:
                request.deadline_at += epoch
            if request.arrival_time > env.now:
                yield env.timeout(request.arrival_time - env.now)
            if obs is not None:
                obs.metrics.counter("cluster.offered").inc()
                obs.reqtrace.begin(
                    request, track="cluster",
                    t=obs.tracer.timestamp(request.arrival_time))
            self._dispatch(request)

    def _dispatch(self, request: Request) -> Optional[Event]:
        """Shard one request; abandon it when no live host remains."""
        host = self._route(request)
        if host is None:
            self._frontend_abandon(request)
            return None
        return self._send(host, request)

    def _route(self, request: Request) -> Optional[HostRank]:
        """Sticky host by consistent hash, spill on backlog."""
        if not self._routable:
            return None
        preferred = self._by_name[self.ring.lookup(request.request_id)]
        if self._outstanding[preferred.name] < self.spill_threshold:
            return preferred
        choice = min(self._routable.values(),
                     key=lambda h: (self._outstanding[h.name],
                                    h.rank))
        if choice is not preferred:
            self.spilled += 1
            obs = self._env.obs
            if obs is not None:
                obs.metrics.counter("cluster.spilled").inc()
        return choice

    def _send(self, host: HostRank, request: Request) -> Event:
        """Push to a shard channel and take ownership note."""
        self._owned[request.request_id] = (request, host)
        self._outstanding[host.name] += 1
        self.sharded += 1
        obs = self._env.obs
        if obs is not None:
            obs.metrics.counter("cluster.sharded").inc()
            obs.metrics.gauge(
                f"cluster.outstanding.{host.name}").set(
                    self._outstanding[host.name])
            obs.reqtrace.hop(request.trace, "sharded",
                             track="cluster", host=host.name,
                             rank=host.rank)
        return host.stream.push(request)

    # -- resolution ------------------------------------------------------
    def _on_resolve(self, host: HostRank, request: Request) -> None:
        """A host resolved a request it owned (any terminal state)."""
        entry = self._owned.pop(request.request_id, None)
        if entry is None:
            raise FrameworkError(
                f"request {request.request_id} resolved by "
                f"{host.name} but not in the ownership ledger: the "
                "cluster exactly-once invariant is broken")
        owner = entry[1]
        self._outstanding[owner.name] -= 1
        if (self.autoscaler is not None
                and request.status == COMPLETED
                and request.e2e_latency is not None):
            self.autoscaler.note_completion(request.e2e_latency)
        if (owner.draining
                and self._outstanding[owner.name] == 0):
            done = self._drain_done.get(owner.name)
            if done is not None and not done.triggered:
                done.succeed()
        obs = self._env.obs
        if obs is not None:
            obs.metrics.gauge(
                f"cluster.outstanding.{owner.name}").set(
                    self._outstanding[owner.name])
        self._count_resolved()

    def _frontend_abandon(self, request: Request) -> None:
        """No live host: the frontend is the terminal resolver."""
        request.status = ABANDONED
        self._abandoned.append(request)
        obs = self._env.obs
        if obs is not None:
            obs.metrics.counter("cluster.abandoned").inc()
            obs.tracer.instant("request_abandoned", track="cluster",
                               request=request.request_id)
            obs.reqtrace.hop(request.trace, "frontend_abandoned",
                             track="cluster")
        self._count_resolved()

    def _count_resolved(self) -> None:
        self._resolved += 1
        if self._resolved > self._offered:
            raise FrameworkError(
                "request resolved twice: cluster accounting is "
                "broken")
        if self._resolved == self._offered:
            self._all_resolved.succeed()

    # -- host failure ----------------------------------------------------
    def _inject_host_fault(self, fault
                           ) -> Generator[Event, None, None]:
        """Fault-plan injector: kill one whole rank at its time.

        ``device_index`` names a pool slot; the kill lands on that
        slot's live generation (a no-op if the slot is idle)."""
        env = self._env
        if fault.at > env.now:
            yield env.timeout(fault.at - env.now)
        host = self._slots[fault.device_index].host
        if host is not None:
            self._kill_host(host)

    def _strand(self, host: HostRank) -> list[Request]:
        """Pull every request *host* owned but never resolved out of
        the ledger, reset for re-serving, and hand them back."""
        stranded = sorted(
            (req for req, owner in self._owned.values()
             if owner is host),
            key=lambda r: r.request_id)
        for request in stranded:
            del self._owned[request.request_id]
            self._outstanding[host.name] -= 1
            request.reset_for_reshard()
        obs = self._env.obs
        if stranded and obs is not None:
            # The dead host's ledger gauge must follow the drain to
            # zero, or it reads as permanent backlog ever after.
            obs.metrics.gauge(
                f"cluster.outstanding.{host.name}").set(
                    self._outstanding[host.name])
        done = self._drain_done.get(host.name)
        if done is not None and not done.triggered:
            done.succeed()
        return stranded

    def _kill_host(self, host: HostRank) -> None:
        """Death of a rank: drain, re-shard, account — lose nothing."""
        if host.dead:
            return
        env = self._env
        host.kill()
        host.draining = False
        self.health.mark_dead(host.name, reason="host fault injected")
        if host.name in self._routable:
            del self._routable[host.name]
            self.ring.remove(host.name)
        if host.slot is not None:
            slot = self._slots[host.slot]
            if slot.host is host:
                # A killed slot's hardware is gone: it never returns
                # to the warm pool (unlike a drained one).
                slot.host = host
        # Everything the dead host owned but never resolved: channel
        # backlog, queued, batching, in-flight — the ledger sees all.
        stranded = self._strand(host)
        event = FailureEvent(
            device=host.name, worker=f"rank{host.rank}",
            time=env.now, kind=DEATH,
            detail=(f"rank {host.rank} killed mid-serve; "
                    f"{len(stranded)} owned requests stranded"),
            requeued=len(stranded), scope="host")
        host.failure = event
        host.resharded = len(stranded)
        self.failures.append(event)
        self._gauge_live()
        obs = env.obs
        if obs is not None:
            obs.metrics.counter("cluster.host_deaths").inc()
            obs.tracer.instant("host_killed", track="cluster",
                               host=host.name, rank=host.rank,
                               stranded=len(stranded))
            for request in stranded:
                obs.reqtrace.hop(request.trace, "resharded",
                                 track="cluster", host=host.name)
        if not stranded:
            return
        if self._routable:
            self.resharded += len(stranded)
            if obs is not None:
                obs.metrics.counter("cluster.resharded").inc(
                    len(stranded))
            env.process(self._reshard(stranded))
        else:
            for request in stranded:
                self._frontend_abandon(request)

    def _reshard(self, stranded: list[Request]
                 ) -> Generator[Event, None, None]:
        """Re-inject stranded requests, one push at a time.

        Serial re-injection keeps the survivors' backpressure honest:
        each push waits for its window slot before the next request
        commits to a host, so a mass re-shard cannot teleport a dead
        host's whole backlog past the channel bound.
        """
        for request in stranded:
            event = self._dispatch(request)
            if event is not None:
                yield event
