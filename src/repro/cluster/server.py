"""The cluster frontend: shard, spill, re-shard, account.

:class:`ClusterServer` is the rank-0 process of a simulated serving
cluster.  N host ranks (each a full single-host serving pipeline, see
:class:`~repro.cluster.host.HostRank`) sit behind it, one bounded
:class:`~repro.mpi.stream.StreamWindow` shard channel each, all on one
:class:`~repro.mpi.comm.Communicator` so every push pays the modelled
interconnect cost.

Routing is consistent-hash first, load-spill second: a request maps
to its sticky host on the :class:`~repro.cluster.hashring.HashRing`;
when that shard's outstanding work (frontend ledger: pushed but not
yet resolved) exceeds ``spill_threshold``, the request spills to the
least-outstanding live host instead.  Backpressure is per shard — a
full stream window blocks that shard's pushes without stalling the
arrival clock or the other shards.

Host failure reuses :class:`~repro.ncsw.faults.FaultPlan`, with the
``device_index`` read as a host index: at the fault time the whole
rank dies mid-flight.  The frontend then aborts the shard channel,
prunes the ring, marks the host dead in the
:class:`~repro.ncs.health.HealthMonitor`, collects every request the
dead host owned but never resolved, wipes their partial timestamps
(:meth:`~repro.serve.workload.Request.reset_for_reshard`) and
re-shards them to the survivors — or abandons them at the frontend
when no survivor remains.  Either way the ownership ledger keeps the
exactly-once invariant: the returned
:class:`~repro.cluster.result.ClusterResult` proves it in its
constructor.

Determinism: seeded workload + seeded fault plan + the DES kernel's
determinism contract = byte-identical cluster reports run to run.
"""

from __future__ import annotations

from typing import Generator, Optional, Sequence

from repro.cluster.hashring import HashRing
from repro.cluster.host import HostRank
from repro.cluster.result import ClusterResult, HostShard
from repro.errors import FrameworkError
from repro.mpi.comm import (
    LINK_BANDWIDTH_BYTES_S,
    LINK_LATENCY_S,
    Communicator,
)
from repro.mpi.stream import StreamWindow
from repro.ncs.health import HealthMonitor
from repro.ncsw.faults import DEATH, FailureEvent, FaultPlan
from repro.ncsw.targets import TargetDevice
from repro.serve.queue import POLICIES as ADMISSION_POLICIES
from repro.serve.queue import REJECT_NEWEST
from repro.serve.server import DEFAULT_MAX_WAIT_S
from repro.serve.workload import ABANDONED, Request, Workload
from repro.sim.core import Environment, Event

#: Default per-shard stream window (requests in flight on the wire
#: plus buffered at the host, before pushes block).
DEFAULT_WINDOW = 8


class ClusterServer:
    """Sharded multi-host serving over simulated MPI channels."""

    def __init__(self, targets: Sequence[TargetDevice], *,
                 window: int = DEFAULT_WINDOW,
                 replicas: int = 64,
                 spill_threshold: Optional[int] = None,
                 queue_depth: Optional[int] = 64,
                 admission: str = REJECT_NEWEST,
                 max_batch_size: Optional[int] = None,
                 max_wait_s: float = DEFAULT_MAX_WAIT_S,
                 slo_seconds: Optional[float] = 0.250,
                 deadline_seconds: Optional[float] = None,
                 max_redirects: int = 1,
                 ewma_alpha: float = 0.2,
                 warmup: int = 0,
                 host_faults: Optional[FaultPlan] = None,
                 latency_s: float = LINK_LATENCY_S,
                 bandwidth: float = LINK_BANDWIDTH_BYTES_S,
                 obs=None) -> None:
        if not targets:
            raise FrameworkError("cluster needs at least one host")
        if admission not in ADMISSION_POLICIES:
            raise FrameworkError(
                f"unknown admission policy {admission!r}; one of "
                f"{ADMISSION_POLICIES}")
        if slo_seconds is not None and slo_seconds <= 0:
            raise FrameworkError(
                f"slo_seconds must be positive, got {slo_seconds}")
        if warmup < 0:
            raise FrameworkError("warmup must be >= 0")
        if spill_threshold is not None and spill_threshold < 1:
            raise FrameworkError(
                f"spill_threshold must be >= 1, got {spill_threshold}")
        if host_faults is not None:
            for fault in host_faults.faults:
                if fault.kind != DEATH:
                    raise FrameworkError(
                        f"host faults support kind {DEATH!r} only "
                        f"(whole-rank death), got {fault.kind!r}; "
                        "inject hang/thermal/busy at device level "
                        "via the host target's fault plan")
                if fault.device_index >= len(targets):
                    raise FrameworkError(
                        f"host fault targets host "
                        f"{fault.device_index} but the cluster has "
                        f"{len(targets)} hosts")
        self.targets = list(targets)
        self.window = window
        self.replicas = replicas
        # Default spill point: the shard's own pipeline capacity —
        # channel window plus admission queue.  Beyond that, queued
        # work on the sticky host is pure wait; a less-loaded host
        # wins even at the cost of breaking stickiness.
        self.spill_threshold = (
            spill_threshold if spill_threshold is not None
            else window + (queue_depth if queue_depth is not None
                           else 3 * window))
        self.queue_depth = queue_depth
        self.admission = admission
        self.max_batch_size = max_batch_size
        self.max_wait_s = max_wait_s
        self.slo_seconds = slo_seconds
        self.deadline_seconds = deadline_seconds
        self.max_redirects = max_redirects
        self.ewma_alpha = ewma_alpha
        self.warmup = warmup
        self.host_faults = host_faults
        self.latency_s = latency_s
        self.bandwidth = bandwidth
        self.obs = obs
        #: Health trail of the last run (host-level transitions).
        self.health: Optional[HealthMonitor] = None

    # -- the run ---------------------------------------------------------
    def run(self, workload: Workload,
            num_requests: int) -> ClusterResult:
        """Serve *num_requests* across the hosts; blocks until every
        request resolved cluster-wide and returns the roll-up."""
        requests = workload.requests(
            num_requests, deadline_s=self.deadline_seconds)

        env = Environment()
        if self.obs is not None:
            self.obs.attach(env)
        self._env = env

        n = len(self.targets)
        comm = Communicator(env, size=n + 1,
                            latency_s=self.latency_s,
                            bandwidth=self.bandwidth)
        self.hosts = [
            HostRank(env, rank=i + 1, name=f"host{i}",
                     target=target,
                     stream=StreamWindow(comm, source=0, dest=i + 1,
                                         window=self.window),
                     on_resolve=self._on_resolve,
                     queue_depth=self.queue_depth,
                     admission=self.admission,
                     max_batch_size=self.max_batch_size,
                     max_wait_s=self.max_wait_s,
                     max_redirects=self.max_redirects,
                     ewma_alpha=self.ewma_alpha)
            for i, target in enumerate(self.targets)]
        self._by_name = {h.name: h for h in self.hosts}
        self.ring = HashRing([h.name for h in self.hosts],
                             replicas=self.replicas)
        self.health = HealthMonitor(env)
        for host in self.hosts:
            self.health.register(host.name)
        # Ownership ledger: request id -> (request, owning host), from
        # push initiation until resolution.  The single source of
        # truth for what a dead host strands — channel buffers and
        # queue contents alone undercount in-flight work.
        self._owned: dict[int, tuple[Request, HostRank]] = {}
        self._outstanding = {h.name: 0 for h in self.hosts}
        self._offered = len(requests)
        self._resolved = 0
        self._all_resolved = env.event()
        self._abandoned: list[Request] = []
        self.failures: list[FailureEvent] = []
        self.sharded = 0
        self.spilled = 0
        self.resharded = 0

        def main() -> Generator[Event, None, tuple[float, float]]:
            obs = env.obs
            prep = None
            if obs is not None:
                prep = obs.tracer.begin("prepare", track="cluster",
                                        hosts=n)
            yield env.all_of([h.prepare() for h in self.hosts])
            if obs is not None:
                obs.tracer.end(prep)
            t0 = env.now
            lifecycles = [h.start() for h in self.hosts]
            if self.host_faults is not None:
                for fault in self.host_faults.faults:
                    env.process(self._inject_host_fault(fault))
            yield env.process(self._arrivals(requests))
            yield self._all_resolved
            wall = env.now - t0
            # Orderly shutdown of the survivors: close each shard
            # channel (EOS), which cascades queue close -> batcher
            # pill -> backend pill down each host's lifecycle.  Dead
            # hosts' lifecycles already completed at their death.
            for host in self.hosts:
                if not host.dead:
                    host.stream.close()
            yield env.all_of(lifecycles)
            return wall, t0

        wall, epoch = env.run(until=env.process(main()))

        total_completed = sum(h.completed for h in self.hosts)
        shards = [HostShard(rank=h.rank, name=h.name,
                            result=h.result(self.slo_seconds, wall,
                                            epoch),
                            killed_at=h.died_at,
                            resharded=h.resharded)
                  for h in self.hosts]
        return ClusterResult(
            offered=self._offered,
            shards=shards,
            wall_seconds=wall,
            prepare_seconds=epoch,
            slo_seconds=self.slo_seconds,
            warmup=min(self.warmup, total_completed),
            frontend_abandoned=len(self._abandoned),
            abandoned_requests=self._abandoned,
            failures=self.failures,
            sharded=self.sharded,
            spilled=self.spilled,
            resharded=self.resharded,
        )

    # -- arrivals and routing -------------------------------------------
    def _arrivals(self, requests: list[Request]
                  ) -> Generator[Event, None, None]:
        """Open-loop arrivals, rebased onto the sim clock at rank 0."""
        env = self._env
        obs = env.obs
        epoch = env.now
        for request in requests:
            request.arrival_time += epoch
            if request.deadline_at is not None:
                request.deadline_at += epoch
            if request.arrival_time > env.now:
                yield env.timeout(request.arrival_time - env.now)
            if obs is not None:
                obs.metrics.counter("cluster.offered").inc()
                obs.reqtrace.begin(
                    request, track="cluster",
                    t=obs.tracer.timestamp(request.arrival_time))
            self._dispatch(request)

    def _dispatch(self, request: Request) -> Optional[Event]:
        """Shard one request; abandon it when no live host remains."""
        host = self._route(request)
        if host is None:
            self._frontend_abandon(request)
            return None
        return self._send(host, request)

    def _route(self, request: Request) -> Optional[HostRank]:
        """Sticky host by consistent hash, spill on backlog."""
        if self.health.live_count() == 0:
            return None
        preferred = self._by_name[self.ring.lookup(request.request_id)]
        if self._outstanding[preferred.name] < self.spill_threshold:
            return preferred
        live = [h for h in self.hosts if not h.dead]
        choice = min(live, key=lambda h: (self._outstanding[h.name],
                                          h.rank))
        if choice is not preferred:
            self.spilled += 1
            obs = self._env.obs
            if obs is not None:
                obs.metrics.counter("cluster.spilled").inc()
        return choice

    def _send(self, host: HostRank, request: Request) -> Event:
        """Push to a shard channel and take ownership note."""
        self._owned[request.request_id] = (request, host)
        self._outstanding[host.name] += 1
        self.sharded += 1
        obs = self._env.obs
        if obs is not None:
            obs.metrics.counter("cluster.sharded").inc()
            obs.metrics.gauge(
                f"cluster.outstanding.{host.name}").set(
                    self._outstanding[host.name])
            obs.reqtrace.hop(request.trace, "sharded",
                             track="cluster", host=host.name,
                             rank=host.rank)
        return host.stream.push(request)

    # -- resolution ------------------------------------------------------
    def _on_resolve(self, host: HostRank, request: Request) -> None:
        """A host resolved a request it owned (any terminal state)."""
        entry = self._owned.pop(request.request_id, None)
        if entry is None:
            raise FrameworkError(
                f"request {request.request_id} resolved by "
                f"{host.name} but not in the ownership ledger: the "
                "cluster exactly-once invariant is broken")
        owner = entry[1]
        self._outstanding[owner.name] -= 1
        obs = self._env.obs
        if obs is not None:
            obs.metrics.gauge(
                f"cluster.outstanding.{owner.name}").set(
                    self._outstanding[owner.name])
        self._count_resolved()

    def _frontend_abandon(self, request: Request) -> None:
        """No live host: the frontend is the terminal resolver."""
        request.status = ABANDONED
        self._abandoned.append(request)
        obs = self._env.obs
        if obs is not None:
            obs.metrics.counter("cluster.abandoned").inc()
            obs.tracer.instant("request_abandoned", track="cluster",
                               request=request.request_id)
            obs.reqtrace.hop(request.trace, "frontend_abandoned",
                             track="cluster")
        self._count_resolved()

    def _count_resolved(self) -> None:
        self._resolved += 1
        if self._resolved > self._offered:
            raise FrameworkError(
                "request resolved twice: cluster accounting is "
                "broken")
        if self._resolved == self._offered:
            self._all_resolved.succeed()

    # -- host failure ----------------------------------------------------
    def _inject_host_fault(self, fault
                           ) -> Generator[Event, None, None]:
        """Fault-plan injector: kill one whole rank at its time."""
        env = self._env
        if fault.at > env.now:
            yield env.timeout(fault.at - env.now)
        self._kill_host(self.hosts[fault.device_index])

    def _kill_host(self, host: HostRank) -> None:
        """Death of a rank: drain, re-shard, account — lose nothing."""
        if host.dead:
            return
        env = self._env
        host.kill()
        self.health.mark_dead(host.name, reason="host fault injected")
        self.ring.remove(host.name)
        # Everything the dead host owned but never resolved: channel
        # backlog, queued, batching, in-flight — the ledger sees all.
        stranded = sorted(
            (req for req, owner in self._owned.values()
             if owner is host),
            key=lambda r: r.request_id)
        for request in stranded:
            del self._owned[request.request_id]
            self._outstanding[host.name] -= 1
            request.reset_for_reshard()
        event = FailureEvent(
            device=host.name, worker=f"rank{host.rank}",
            time=env.now, kind=DEATH,
            detail=(f"rank {host.rank} killed mid-serve; "
                    f"{len(stranded)} owned requests stranded"),
            requeued=len(stranded), scope="host")
        host.failure = event
        host.resharded = len(stranded)
        self.failures.append(event)
        obs = env.obs
        if obs is not None:
            obs.metrics.counter("cluster.host_deaths").inc()
            obs.tracer.instant("host_killed", track="cluster",
                               host=host.name, rank=host.rank,
                               stranded=len(stranded))
            for request in stranded:
                obs.reqtrace.hop(request.trace, "resharded",
                                 track="cluster", host=host.name)
        if not stranded:
            return
        if self.health.live_count() > 0:
            self.resharded += len(stranded)
            if obs is not None:
                obs.metrics.counter("cluster.resharded").inc(
                    len(stranded))
            env.process(self._reshard(stranded))
        else:
            for request in stranded:
                self._frontend_abandon(request)

    def _reshard(self, stranded: list[Request]
                 ) -> Generator[Event, None, None]:
        """Re-inject stranded requests, one push at a time.

        Serial re-injection keeps the survivors' backpressure honest:
        each push waits for its window slot before the next request
        commits to a host, so a mass re-shard cannot teleport a dead
        host's whole backlog past the channel bound.
        """
        for request in stranded:
            event = self._dispatch(request)
            if event is not None:
                yield event
