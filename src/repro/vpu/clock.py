"""Clock domain helper."""

from __future__ import annotations

from dataclasses import dataclass

from repro.units import cycles_to_seconds, seconds_to_cycles


@dataclass(frozen=True)
class Clock:
    """A fixed-frequency clock domain.

    The Myriad 2's SHAVEs, CMX and SIPP all run in the 600 MHz media
    clock domain (nominal); the DDR controller has its own domain.
    """

    freq_hz: float

    def __post_init__(self) -> None:
        if self.freq_hz <= 0:
            raise ValueError(
                f"frequency must be positive, got {self.freq_hz}")

    def to_seconds(self, cycles: float) -> float:
        """Wall-clock duration of *cycles* ticks."""
        return cycles_to_seconds(cycles, self.freq_hz)

    def to_cycles(self, seconds: float) -> float:
        """Ticks elapsed in *seconds*."""
        return seconds_to_cycles(seconds, self.freq_hz)

    @property
    def period(self) -> float:
        """Seconds per tick."""
        return 1.0 / self.freq_hz
