"""CMX (Connection Matrix) scratchpad memory model.

The Myriad 2's CMX is a software-managed 2 MB SRAM organised as 16
slices of 128 KB (each built from four 32 KB RAM cuts), individually
arbitrated and multi-ported (paper §II-A).  Each SHAVE has an affinity
slice it reaches at full bandwidth; cross-slice traffic goes through
the connection matrix.

The model provides:

* slice-granular allocation (the compiler's tiling planner uses it to
  place weight/activation tiles);
* an aggregate bandwidth figure for the timing estimator;
* per-slice occupancy accounting with leak detection.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import AllocationError
from repro.units import GB, KiB

#: Architectural constants of the MA2450's CMX.
CMX_SLICES = 16
CMX_SLICE_BYTES = 128 * KiB
CMX_TOTAL_BYTES = CMX_SLICES * CMX_SLICE_BYTES  # 2 MiB
#: Aggregate sustained CMX bandwidth seen by the SHAVEs. Each of the 12
#: SHAVEs has two 64-bit LSU ports at 600 MHz; de-rated for arbitration.
CMX_BANDWIDTH_BYTES_S = 70 * GB


@dataclass
class CMXBlock:
    """A live allocation inside one CMX slice."""

    slice_index: int
    offset: int
    nbytes: int
    tag: str = ""


@dataclass
class _Slice:
    index: int
    capacity: int
    used: int = 0
    blocks: list[CMXBlock] = field(default_factory=list)


class CMXMemory:
    """Slice-granular CMX allocator.

    Allocation is first-fit by slice; a block never spans slices (the
    hardware's RAM cuts are independently arbitrated, and the NCSDK's
    tiling respects slice boundaries for exactly that reason).
    """

    def __init__(self, slices: int = CMX_SLICES,
                 slice_bytes: int = int(CMX_SLICE_BYTES)) -> None:
        if slices < 1 or slice_bytes < 1:
            raise AllocationError("CMX geometry must be positive")
        self._slices = [_Slice(i, slice_bytes) for i in range(slices)]
        self.slice_bytes = slice_bytes

    @property
    def num_slices(self) -> int:
        """Number of independently arbitrated CMX slices."""
        return len(self._slices)

    @property
    def capacity(self) -> int:
        """Total CMX bytes."""
        return self.num_slices * self.slice_bytes

    @property
    def used(self) -> int:
        """Bytes currently allocated."""
        return sum(s.used for s in self._slices)

    @property
    def free(self) -> int:
        """Bytes currently unallocated."""
        return self.capacity - self.used

    def slice_used(self, index: int) -> int:
        """Bytes allocated in slice *index*."""
        return self._slices[index].used

    def alloc(self, nbytes: int, tag: str = "",
              prefer_slice: int | None = None) -> list[CMXBlock]:
        """Allocate *nbytes*, splitting across slices if needed.

        Returns the list of blocks backing the allocation.  Raises
        :class:`AllocationError` (and allocates nothing) if the request
        cannot be satisfied.
        """
        if nbytes <= 0:
            raise AllocationError(f"allocation must be positive, "
                                  f"got {nbytes}")
        if nbytes > self.free:
            raise AllocationError(
                f"CMX exhausted: need {nbytes} bytes, {self.free} free")
        order = list(range(self.num_slices))
        if prefer_slice is not None:
            if not 0 <= prefer_slice < self.num_slices:
                raise AllocationError(
                    f"invalid slice {prefer_slice}")
            order.remove(prefer_slice)
            order.insert(0, prefer_slice)

        blocks: list[CMXBlock] = []
        remaining = int(nbytes)
        for idx in order:
            if remaining == 0:
                break
            sl = self._slices[idx]
            room = sl.capacity - sl.used
            if room <= 0:
                continue
            take = min(room, remaining)
            block = CMXBlock(idx, sl.used, take, tag)
            sl.blocks.append(block)
            sl.used += take
            blocks.append(block)
            remaining -= take
        assert remaining == 0, "free-space accounting is broken"
        return blocks

    def free_blocks(self, blocks: list[CMXBlock]) -> None:
        """Release blocks previously returned by :meth:`alloc`."""
        for block in blocks:
            sl = self._slices[block.slice_index]
            try:
                sl.blocks.remove(block)
            except ValueError:
                raise AllocationError(
                    f"double free of CMX block {block}") from None
            sl.used -= block.nbytes

    def reset(self) -> None:
        """Drop every allocation (between inferences)."""
        for sl in self._slices:
            sl.blocks.clear()
            sl.used = 0

    def transfer_seconds(self, nbytes: float,
                         bandwidth: float = CMX_BANDWIDTH_BYTES_S) -> float:
        """Time to stream *nbytes* through the CMX ports."""
        if nbytes < 0:
            raise AllocationError("negative transfer size")
        return nbytes / bandwidth
