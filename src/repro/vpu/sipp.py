"""SIPP — Streaming Image Processing Pipeline.

The Myriad 2 carries a bank of hardware-accelerated image-processing
kernels (paper §II-A): tone mapping, Harris corners, HoG edges,
luma/chroma denoise and others, each typically configured as a 5x5
stencil per output pixel, connected to CMX through a crossbar with a
local read/writeback controller, able to emit one computed pixel per
cycle.

Inference on the NCS uses the SHAVEs for convolutions; the SIPP bank
matters for the pre/post-processing offload experiments and the
general-purpose-compute example, so the model exposes per-filter
throughput and a DES scheduling API.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator

from repro.errors import SimulationError
from repro.sim.core import Environment, Event
from repro.sim.resources import Resource


@dataclass(frozen=True)
class SIPPFilter:
    """One hardware filter of the SIPP bank."""

    name: str
    stencil: int              #: kernel window (5 -> 5x5)
    pixels_per_cycle: float   #: sustained output rate
    setup_cycles: int = 500   #: programming + line-buffer priming

    def cycles_for(self, width: int, height: int) -> int:
        """Cycles to filter a width x height image plane."""
        if width < 1 or height < 1:
            raise SimulationError("image dimensions must be >= 1")
        return int(self.setup_cycles
                   + width * height / self.pixels_per_cycle)


#: The filter inventory called out in the paper (§II-A) plus the usual
#: ISP stages the Hot Chips talk lists. One fully-computed pixel per
#: cycle is the architectural claim; heavier kernels are de-rated.
SIPP_FILTERS: dict[str, SIPPFilter] = {
    "tone_map": SIPPFilter("tone_map", stencil=1, pixels_per_cycle=1.0),
    "harris": SIPPFilter("harris", stencil=5, pixels_per_cycle=0.5),
    "hog_edge": SIPPFilter("hog_edge", stencil=5, pixels_per_cycle=0.5),
    "luma_denoise": SIPPFilter("luma_denoise", stencil=5,
                               pixels_per_cycle=1.0),
    "chroma_denoise": SIPPFilter("chroma_denoise", stencil=5,
                                 pixels_per_cycle=1.0),
    "sharpen": SIPPFilter("sharpen", stencil=5, pixels_per_cycle=1.0),
    "debayer": SIPPFilter("debayer", stencil=3, pixels_per_cycle=1.0),
    "scale": SIPPFilter("scale", stencil=3, pixels_per_cycle=1.0),
}


class SIPPPipeline:
    """The SIPP filter bank as a schedulable resource.

    Filters share the crossbar into CMX; the model serialises access
    per filter instance but lets distinct filters run concurrently,
    which matches the hardware's independent local controllers.
    """

    def __init__(self, freq_hz: float,
                 filters: dict[str, SIPPFilter] | None = None) -> None:
        if freq_hz <= 0:
            raise SimulationError("frequency must be positive")
        self.freq_hz = freq_hz
        self.filters = dict(filters or SIPP_FILTERS)
        self._env: Environment | None = None
        self._locks: dict[str, Resource] = {}
        self.invocations: dict[str, int] = {n: 0 for n in self.filters}

    def bind(self, env: Environment) -> None:
        """Attach to a simulation environment."""
        self._env = env
        self._locks = {name: Resource(env, capacity=1)
                       for name in self.filters}

    def filter_seconds(self, name: str, width: int, height: int) -> float:
        """Static cost of one filter pass."""
        f = self._get(name)
        return f.cycles_for(width, height) / self.freq_hz

    def run_filter(self, name: str, width: int, height: int) -> Event:
        """Run a filter pass as a DES process (serialised per filter)."""
        if self._env is None:
            raise SimulationError(
                "SIPPPipeline.bind(env) must be called first")
        self._get(name)
        return self._env.process(self._run(name, width, height))

    def _run(self, name: str, width: int,
             height: int) -> Generator[Event, None, None]:
        assert self._env is not None
        with self._locks[name].request() as req:
            yield req
            self.invocations[name] += 1
            yield self._env.timeout(
                self.filter_seconds(name, width, height))

    def _get(self, name: str) -> SIPPFilter:
        try:
            return self.filters[name]
        except KeyError:
            raise SimulationError(
                f"unknown SIPP filter {name!r}; available: "
                f"{sorted(self.filters)}") from None
