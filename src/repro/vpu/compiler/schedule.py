"""SHAVE work partitioning.

The NCSDK splits each layer's output map across the SHAVEs (row bands
for convolutions and pooling, channel bands for the classifier).  The
assignment records how many SHAVEs a layer can actually use and the
load imbalance of the split — a layer with 7 output rows on 12 SHAVEs
uses only 7, and a layer with 13 rows pays a 2-row critical path on 12.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import CompileError
from repro.nn.layer import Layer
from repro.tensors.layout import BlobShape


@dataclass(frozen=True)
class ShaveAssignment:
    """Work split of one layer across the SHAVE array."""

    shaves_used: int
    parallel_units: int
    imbalance: float  #: critical-path ratio, >= 1.0

    def __post_init__(self) -> None:
        if self.shaves_used < 1:
            raise CompileError("shaves_used must be >= 1")
        if self.imbalance < 1.0:
            raise CompileError(
                f"imbalance must be >= 1, got {self.imbalance}")


def parallel_units_for(layer: Layer,
                       input_shapes: list[BlobShape]) -> int:
    """Units of independent work the kernel splits across SHAVEs."""
    out = layer.output_shapes(input_shapes)[0]
    t = layer.type_name()
    if t == "InnerProduct":
        # Classifier splits across output neurons.
        return out.c
    if t in ("Softmax",):
        # Softmax normalisation is one reduction per sample.
        return out.n
    # Spatial kernels split across output rows (per batch element).
    return out.h * out.n


def assign_shaves(layer: Layer, input_shapes: list[BlobShape],
                  num_shaves: int = 12) -> ShaveAssignment:
    """Partition *layer* across at most *num_shaves* SHAVEs."""
    if num_shaves < 1:
        raise CompileError(f"num_shaves must be >= 1, got {num_shaves}")
    units = parallel_units_for(layer, input_shapes)
    used = max(1, min(num_shaves, units))
    # ceil(units/used) slices on the critical path vs units/used ideal.
    imbalance = (-(-units // used)) * used / units if units else 1.0
    return ShaveAssignment(shaves_used=used, parallel_units=units,
                           imbalance=float(imbalance))
