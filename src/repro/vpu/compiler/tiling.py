"""CMX tiling planner.

Decides, per layer, whether its working set (input + output activations
plus weights at FP16) fits the CMX scratchpad.  Layers that fit run
CMX-resident at full LSU bandwidth; layers that do not are split into
row-band tiles that stream through the DMA engine, double-buffered —
the strategy the NCSDK applies, and the reason GoogLeNet's early
high-resolution layers dominate its DDR traffic.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import CompileError
from repro.nn.layer import Layer
from repro.tensors.layout import BlobShape
from repro.vpu.cmx import CMX_TOTAL_BYTES

#: Fraction of CMX the compiler may use for tensor data; the rest is
#: reserved for kernel code, stacks and the double-buffer margin.
CMX_DATA_FRACTION = 0.75


@dataclass(frozen=True)
class TilePlan:
    """Placement decision for one layer."""

    working_set_bytes: int
    cmx_budget_bytes: int
    fits_cmx: bool
    num_tiles: int
    ddr_traffic_bytes: int

    def __post_init__(self) -> None:
        if self.num_tiles < 1:
            raise CompileError("num_tiles must be >= 1")


def working_set_bytes(layer: Layer, input_shapes: list[BlobShape],
                      bytes_per_element: int = 2) -> int:
    """Input + output activations + weights at the given precision."""
    out_shapes = layer.output_shapes(input_shapes)
    acts = sum(s.count for s in input_shapes) + sum(
        s.count for s in out_shapes)
    return acts * bytes_per_element + layer.param_bytes(bytes_per_element)


def plan_tiling(layer: Layer, input_shapes: list[BlobShape],
                bytes_per_element: int = 2,
                cmx_bytes: int = int(CMX_TOTAL_BYTES)) -> TilePlan:
    """Compute the :class:`TilePlan` for one layer.

    A non-fitting layer is split along output rows into the smallest
    number of tiles whose per-tile working set fits the budget; all of
    its activation and weight traffic then crosses the DDR interface
    once (weights once per tile if they must be re-fetched — captured
    by charging weights per tile when the split is weight-bound).
    """
    budget = int(cmx_bytes * CMX_DATA_FRACTION)
    ws = working_set_bytes(layer, input_shapes, bytes_per_element)
    if ws <= budget:
        return TilePlan(working_set_bytes=ws, cmx_budget_bytes=budget,
                        fits_cmx=True, num_tiles=1, ddr_traffic_bytes=0)

    weight_bytes = layer.param_bytes(bytes_per_element)
    act_bytes = ws - weight_bytes
    if weight_bytes > budget:
        # Weights alone exceed CMX (the big FC layer at paper scale):
        # stream weights in bands; activations are tiny by comparison.
        num_tiles = -(-weight_bytes // max(budget - act_bytes, 1))
        ddr_traffic = weight_bytes + act_bytes
    else:
        # Tile activations along rows; weights stay resident per tile
        # but are fetched once.
        per_tile_budget = budget - weight_bytes
        if per_tile_budget <= 0:
            raise CompileError(
                f"layer {layer.name!r} cannot be tiled: weights "
                f"{weight_bytes}B leave no activation budget")
        num_tiles = -(-act_bytes // per_tile_budget)
        ddr_traffic = act_bytes + weight_bytes
    return TilePlan(working_set_bytes=ws, cmx_budget_bytes=budget,
                    fits_cmx=False, num_tiles=int(num_tiles),
                    ddr_traffic_bytes=int(ddr_traffic))
