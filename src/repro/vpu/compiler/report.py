"""Per-layer timing report (the ``mvNCProfile`` role).

The NCAPI exposes per-layer execution times through
``GetGraphOption(TIME_TAKEN)``; this module renders the compiled
graph's estimates in the same per-layer tabular form.
"""

from __future__ import annotations

from repro.vpu.compiler.compile import CompiledGraph


def per_layer_report(graph: CompiledGraph, top: int | None = None) -> str:
    """Human-readable per-layer timing table.

    ``top`` truncates to the N most expensive layers (plus the total).
    """
    rows = []
    total_ms = 0.0
    for sched in graph.layers:
        ms = 1000.0 * sched.total_cycles / graph.freq_hz
        total_ms += ms
        rows.append((sched.name, sched.type_name,
                     sched.macs / 1e6, sched.assignment.shaves_used,
                     sched.tile_plan.num_tiles,
                     "cmx" if sched.tile_plan.fits_cmx else "ddr", ms))
    rows.sort(key=lambda r: -r[-1])
    if top is not None:
        rows = rows[:top]

    width = max([len(r[0]) for r in rows] + [10])
    lines = [
        f"{'layer':<{width}}  {'type':<12} {'MMACs':>8} {'shv':>3} "
        f"{'tiles':>5} {'mem':>3} {'ms':>9}",
        "-" * (width + 48),
    ]
    for name, tname, mmacs, shv, tiles, mem, ms in rows:
        lines.append(
            f"{name:<{width}}  {tname:<12} {mmacs:>8.2f} {shv:>3d} "
            f"{tiles:>5d} {mem:>3} {ms:>9.3f}")
    lines.append("-" * (width + 48))
    lines.append(
        f"{'TOTAL':<{width}}  {'':<12} "
        f"{sum(s.macs for s in graph.layers) / 1e6:>8.2f} "
        f"{graph.num_shaves:>3d} {'':>5} {'':>3} {total_ms:>9.3f}")
    return "\n".join(lines)
