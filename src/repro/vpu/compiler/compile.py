"""Graph compilation: Network -> CompiledGraph -> graph file bytes.

Mirrors the NCSDK's ``mvNCCompile``: weights are quantised to FP16,
each layer gets a CMX tile plan, a SHAVE assignment and a cycle
estimate, and the result serialises to a binary blob whose magic
header the NCAPI validates on ``allocate_graph``.
"""

from __future__ import annotations

import io
import pickle
from dataclasses import dataclass, field

from repro.errors import CompileError, InvalidGraphFile
from repro.nn.graph import Network
from repro.numerics.quant import Precision, PrecisionPolicy
from repro.tensors.layout import BlobShape
from repro.vpu.compiler.schedule import ShaveAssignment, assign_shaves
from repro.vpu.compiler.tiling import TilePlan, plan_tiling
from repro.vpu.timing import LayerTiming, estimate_layer_cycles

#: Magic header of a compiled graph blob (version 2, like NCSDK 1.x's
#: graph file v2).
GRAPH_MAGIC = b"MVNCG002"


@dataclass(frozen=True)
class LayerSchedule:
    """Everything the device model needs to run/time one layer."""

    name: str
    type_name: str
    macs: int
    input_bytes: int
    output_bytes: int
    weight_bytes: int
    tile_plan: TilePlan
    assignment: ShaveAssignment
    timing: LayerTiming
    #: Name of an activation layer fused into this one (NCSDK fuses
    #: in-place ReLUs into the producing convolution).
    fused: str | None = None

    @property
    def total_cycles(self) -> int:
        """Total cycles including dispatch and memory overlap."""
        return self.timing.total_cycles


@dataclass
class CompiledGraph:
    """A compiled network graph (the NCSDK "graph file" content)."""

    name: str
    precision: Precision
    input_shape: BlobShape
    output_shape: BlobShape
    layers: list[LayerSchedule]
    network: Network = field(repr=False)
    freq_hz: float = 600e6
    num_shaves: int = 12

    @property
    def total_cycles(self) -> int:
        """On-chip cycles for one inference (batch 1)."""
        return sum(l.total_cycles for l in self.layers)

    @property
    def inference_seconds(self) -> float:
        """On-chip time for one inference, excluding host transfer."""
        return self.total_cycles / self.freq_hz

    @property
    def input_tensor_bytes(self) -> int:
        """Bytes of one FP16 input tensor as shipped over USB."""
        return self.input_shape.count * self.precision.bytes_per_element

    @property
    def output_tensor_bytes(self) -> int:
        """Bytes of one FP16 result tensor."""
        return self.output_shape.count * self.precision.bytes_per_element

    @property
    def weight_bytes_total(self) -> int:
        """FP16 parameter bytes across all layers."""
        return sum(l.weight_bytes for l in self.layers)

    # -- graph file serialisation ------------------------------------------
    def to_bytes(self) -> bytes:
        """Serialise to the binary graph-file format."""
        buf = io.BytesIO()
        buf.write(GRAPH_MAGIC)
        pickle.dump(self, buf, protocol=pickle.HIGHEST_PROTOCOL)
        return buf.getvalue()

    @staticmethod
    def from_bytes(blob: bytes) -> "CompiledGraph":
        """Parse a graph file; raises :class:`InvalidGraphFile`."""
        if not isinstance(blob, (bytes, bytearray)):
            raise InvalidGraphFile(
                f"graph blob must be bytes, got {type(blob).__name__}")
        if blob[:len(GRAPH_MAGIC)] != GRAPH_MAGIC:
            raise InvalidGraphFile("bad magic: not a compiled graph file")
        try:
            graph = pickle.loads(blob[len(GRAPH_MAGIC):])
        except Exception as exc:
            raise InvalidGraphFile(f"corrupt graph file: {exc}") from exc
        if not isinstance(graph, CompiledGraph):
            raise InvalidGraphFile("graph file payload has wrong type")
        return graph


def _fusable_relu_names(network: Network) -> dict[str, str]:
    """Map conv-layer name -> in-place ReLU name it can absorb.

    The NCSDK folds a plain in-place ReLU into the producing
    convolution's kernel epilogue: the clamp happens in registers
    before writeback, eliminating the separate dispatch and the extra
    CMX round-trip.
    """
    fusable: dict[str, str] = {}
    for prev, nxt in zip(network.layers, network.layers[1:]):
        if (prev.type_name() == "Convolution"
                and nxt.type_name() == "ReLU"
                and getattr(nxt, "negative_slope", 0.0) == 0.0
                and nxt.bottoms == [prev.tops[0]]
                and nxt.tops == nxt.bottoms):  # in-place
            fusable[prev.name] = nxt.name
    return fusable


def compile_graph(network: Network, *,
                  num_shaves: int = 12,
                  freq_hz: float = 600e6,
                  cmx_bytes: int | None = None,
                  ddr_bandwidth: float = 4e9,
                  fuse_relu: bool = True,
                  batch: int = 1) -> CompiledGraph:
    """Compile *network* for the Myriad 2 (always FP16, like the NCS).

    Parameters
    ----------
    network:
        The network to compile; weights must already be installed.
    num_shaves:
        SHAVEs available to the scheduler (the NCSDK exposes this; the
        SHAVE-scaling ablation sweeps it 1-12).
    freq_hz:
        Media clock frequency.
    cmx_bytes:
        Override the CMX capacity (defaults to the MA2450's 2 MiB).
    fuse_relu:
        Fold in-place ReLUs into the producing convolution (the
        NCSDK's fusion pass; disable for the fusion ablation).
    batch:
        Blob batch dimension (Caffe-style on-device batching — the
        alternative to the paper's multi-stick design; the batching
        ablation compares the two).
    """
    if num_shaves < 1:
        raise CompileError(f"num_shaves must be >= 1, got {num_shaves}")
    if batch < 1:
        raise CompileError(f"batch must be >= 1, got {batch}")
    if not network.layers:
        raise CompileError(f"network {network.name!r} has no layers")
    policy = PrecisionPolicy.fp16()
    bpe = policy.precision.bytes_per_element
    from repro.vpu.cmx import CMX_TOTAL_BYTES
    cmx = int(cmx_bytes if cmx_bytes is not None else CMX_TOTAL_BYTES)
    fusable = _fusable_relu_names(network) if fuse_relu else {}
    fused_relus = set(fusable.values())

    shapes = network.infer_shapes(batch=batch)
    schedules: list[LayerSchedule] = []
    for layer in network.layers:
        if layer.name in fused_relus:
            continue  # absorbed into the preceding convolution
        input_shapes = [shapes[b] for b in layer.bottoms]
        out_shapes = layer.output_shapes(input_shapes)
        tile = plan_tiling(layer, input_shapes, bpe, cmx)
        assignment = assign_shaves(layer, input_shapes, num_shaves)
        timing = estimate_layer_cycles(
            layer, input_shapes,
            shaves=assignment.shaves_used,
            freq_hz=freq_hz,
            bytes_per_element=bpe,
            ddr_streamed=not tile.fits_cmx,
            ddr_bandwidth=ddr_bandwidth)
        schedules.append(LayerSchedule(
            name=layer.name,
            type_name=layer.type_name(),
            macs=layer.macs(input_shapes),
            input_bytes=sum(s.count for s in input_shapes) * bpe,
            output_bytes=sum(s.count for s in out_shapes) * bpe,
            weight_bytes=layer.param_bytes(bpe),
            tile_plan=tile,
            assignment=assignment,
            timing=timing,
            fused=fusable.get(layer.name),
        ))

    in_shape = shapes[network.input_blob]
    out_shape = shapes[network.output_blob]
    return CompiledGraph(
        name=network.name,
        precision=policy.precision,
        input_shape=in_shape,
        output_shape=out_shape,
        layers=schedules,
        network=network,
        freq_hz=freq_hz,
        num_shaves=num_shaves,
    )
