"""VPU graph compiler (the ``mvNCCompile`` role).

Converts a :class:`repro.nn.graph.Network` into a
:class:`~repro.vpu.compiler.compile.CompiledGraph`: FP16 weights, a
CMX tiling plan, a SHAVE work partition and a per-layer cycle estimate.
The compiled graph serialises to a binary blob — the "graph file" that
the NCAPI's ``allocate_graph`` accepts — and carries everything the
NCS device model needs to both *time* and *functionally execute* an
inference.
"""

from repro.vpu.compiler.compile import (
    CompiledGraph,
    LayerSchedule,
    compile_graph,
)
from repro.vpu.compiler.tiling import TilePlan, plan_tiling
from repro.vpu.compiler.schedule import ShaveAssignment, assign_shaves
from repro.vpu.compiler.report import per_layer_report
from repro.vpu.compiler.validate import PlanValidation, validate_plan

__all__ = [
    "CompiledGraph",
    "LayerSchedule",
    "compile_graph",
    "TilePlan",
    "plan_tiling",
    "ShaveAssignment",
    "assign_shaves",
    "per_layer_report",
    "PlanValidation",
    "validate_plan",
]
