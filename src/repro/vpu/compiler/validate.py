"""Feasibility validation of a compiled graph's memory plan.

The tiling planner works from arithmetic; this module *proves* the
plan against the real allocators: it walks the schedule layer by
layer, allocating every CMX-resident working set (double-buffered
tiles for spilled layers) from a :class:`~repro.vpu.cmx.CMXMemory`
instance and the weights from a :class:`~repro.vpu.ddr.DDRChannel`,
raising if anything the plan promised does not actually fit.

The check catches the classic compiler bug class — a plan whose steps
each look fine but whose peak concurrent residency overflows — and the
test-suite runs it on every zoo model.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import AllocationError, CompileError
from repro.vpu.cmx import CMXMemory
from repro.vpu.compiler.compile import CompiledGraph
from repro.vpu.compiler.tiling import CMX_DATA_FRACTION
from repro.vpu.ddr import DDRChannel


@dataclass(frozen=True)
class PlanValidation:
    """Outcome of a memory-plan walk."""

    layers_checked: int
    peak_cmx_bytes: int
    cmx_capacity: int
    ddr_weight_bytes: int

    @property
    def peak_cmx_fraction(self) -> float:
        """Peak CMX residency as a fraction of capacity."""
        return self.peak_cmx_bytes / self.cmx_capacity


def validate_plan(graph: CompiledGraph) -> PlanValidation:
    """Walk the schedule against real allocators; raise on overflow."""
    cmx = CMXMemory()
    ddr = DDRChannel()
    budget = int(cmx.capacity * CMX_DATA_FRACTION)

    # Weights are DDR-resident for the graph's lifetime.
    if graph.weight_bytes_total > 0:
        ddr.alloc(graph.weight_bytes_total)

    peak = 0
    for sched in graph.layers:
        plan = sched.tile_plan
        if plan.fits_cmx:
            want = plan.working_set_bytes
        else:
            # Spilled layers stream double-buffered tiles: two tile
            # working sets live concurrently.
            tile_bytes = -(-plan.working_set_bytes // plan.num_tiles)
            want = min(2 * tile_bytes, budget)
        if want > budget:
            raise CompileError(
                f"{sched.name}: planned residency {want} exceeds the "
                f"CMX data budget {budget}")
        try:
            blocks = cmx.alloc(want, tag=sched.name)
        except AllocationError as exc:
            raise CompileError(
                f"{sched.name}: CMX allocation failed during plan "
                f"validation: {exc}") from exc
        peak = max(peak, cmx.used)
        # The NCS runs layers back to back: the working set is
        # released before the next layer's is placed (ping-pong
        # between layers is inside the per-layer estimate).
        cmx.free_blocks(blocks)

    if cmx.used != 0:
        raise CompileError("plan validation leaked CMX blocks")
    return PlanValidation(
        layers_checked=len(graph.layers),
        peak_cmx_bytes=peak,
        cmx_capacity=cmx.capacity,
        ddr_weight_bytes=graph.weight_bytes_total,
    )
