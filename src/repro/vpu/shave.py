"""SHAVE (Streaming Hybrid Architecture Vector Engine) processor model.

Each SHAVE (paper Fig. 1) is a VLIW core whose functional units issue
in parallel from Variable-Length Long Instruction Word packets:

* VAU — 128-bit Vector Arithmetic Unit (8 FP16 lanes, fused MAC);
* SAU — 32-bit Scalar Arithmetic Unit;
* IAU — 32-bit Integer Arithmetic Unit;
* CMU — 128-bit Compare-and-Move Unit;
* LSU0/LSU1 — two 64-bit Load-Store Units into CMX;
* PEU/BRU — predication and branching.

Register files: VRF 32 x 128-bit (12 ports), IRF 32 x 32-bit (18
ports).  The model estimates cycle counts for kernel *workloads*
(counts of vector MACs, element ops, and bytes moved) under the VLIW
issue constraint: compute and load/store issue in the same packet, so
the bound is the *maximum* of the unit costs, not their sum.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SimulationError

#: FP16 lanes of the 128-bit VAU.
VAU_FP16_LANES = 8
#: FP32 lanes of the 128-bit VAU.
VAU_FP32_LANES = 4
#: Bytes per cycle of each 64-bit LSU.
LSU_BYTES_PER_CYCLE = 8


@dataclass(frozen=True)
class ShaveConfig:
    """Microarchitectural parameters of one SHAVE."""

    vau_fp16_lanes: int = VAU_FP16_LANES
    vau_fp32_lanes: int = VAU_FP32_LANES
    lsu_count: int = 2
    lsu_bytes_per_cycle: int = LSU_BYTES_PER_CYCLE
    vrf_entries: int = 32
    vrf_bits: int = 128
    vrf_ports: int = 12
    irf_entries: int = 32
    irf_bits: int = 32
    irf_ports: int = 18
    icache_bytes: int = 2048
    dcache_bytes: int = 1024

    def macs_per_cycle(self, fp16: bool = True) -> int:
        """Peak fused multiply-accumulates per cycle."""
        return self.vau_fp16_lanes if fp16 else self.vau_fp32_lanes


@dataclass(frozen=True)
class KernelWorkload:
    """Work descriptor for one kernel invocation on one SHAVE."""

    macs: int = 0              #: vectorisable multiply-accumulates (VAU)
    element_ops: int = 0       #: scalar/compare ops (SAU/CMU), e.g. max()
    load_bytes: int = 0        #: bytes read from CMX
    store_bytes: int = 0       #: bytes written to CMX
    setup_cycles: int = 150    #: prologue: loop setup, address generation

    def __post_init__(self) -> None:
        for name in ("macs", "element_ops", "load_bytes", "store_bytes",
                     "setup_cycles"):
            if getattr(self, name) < 0:
                raise SimulationError(f"negative workload field {name}")


@dataclass
class ShaveProcessor:
    """One SHAVE core: cycle estimation plus utilisation accounting."""

    index: int
    config: ShaveConfig = field(default_factory=ShaveConfig)
    busy_cycles: int = 0
    kernels_run: int = 0

    def kernel_cycles(self, work: KernelWorkload, *,
                      fp16: bool = True,
                      efficiency: float = 1.0) -> int:
        """Cycles to retire *work* on this SHAVE.

        ``efficiency`` de-rates the VAU for issue bubbles, alignment
        and short-row effects (the compiler supplies per-layer values).
        VLIW issue lets loads/stores pair with arithmetic, so the cycle
        count is the max of the compute bound and the memory bound,
        plus the serial setup prologue.
        """
        if not 0.0 < efficiency <= 1.0:
            raise SimulationError(
                f"efficiency must be in (0, 1], got {efficiency}")
        mac_rate = self.config.macs_per_cycle(fp16) * efficiency
        compute = self.work_compute_cycles(work, mac_rate)
        lsu_rate = self.config.lsu_count * self.config.lsu_bytes_per_cycle
        memory = (work.load_bytes + work.store_bytes) / lsu_rate
        cycles = int(round(work.setup_cycles + max(compute, memory)))
        return cycles

    @staticmethod
    def work_compute_cycles(work: KernelWorkload,
                            mac_rate: float) -> float:
        """Arithmetic-bound cycles at *mac_rate* MACs per cycle."""
        if mac_rate <= 0:
            raise SimulationError("mac_rate must be positive")
        # element_ops issue on SAU/CMU in parallel with the VAU, but a
        # kernel with only element ops is bounded by them (4 lanes).
        vau = work.macs / mac_rate
        sau = work.element_ops / 4.0
        return max(vau, sau)

    def record_execution(self, cycles: int) -> None:
        """Account a completed kernel."""
        if cycles < 0:
            raise SimulationError("negative cycle count")
        self.busy_cycles += cycles
        self.kernels_run += 1

    def utilization(self, total_cycles: int) -> float:
        """Busy fraction over a window of *total_cycles*."""
        if total_cycles <= 0:
            return 0.0
        return min(1.0, self.busy_cycles / total_cycles)
