"""DMA engine between DDR and CMX.

The Myriad 2 moves tensors between the LPDDR3 and the CMX scratchpad
with a descriptor-driven DMA engine so the SHAVEs never stall on DDR
directly.  The model charges a fixed descriptor setup cost plus the
slower of the two endpoints' bandwidths, and can run as a DES process
so transfers overlap compute in the chip model.
"""

from __future__ import annotations

from typing import Generator

from repro.errors import AllocationError
from repro.sim.core import Environment, Event
from repro.sim.resources import Resource
from repro.units import GB
from repro.vpu.cmx import CMX_BANDWIDTH_BYTES_S
from repro.vpu.ddr import DDRChannel

#: Descriptor setup latency per DMA transfer.
DMA_SETUP_S = 1e-6
#: The DMA engine itself sustains this rate at best.
DMA_PEAK_BYTES_S = 10 * GB


class DMAEngine:
    """Descriptor-based DMA with a configurable number of channels."""

    def __init__(self, ddr: DDRChannel, channels: int = 2,
                 setup_s: float = DMA_SETUP_S,
                 peak_bytes_s: float = DMA_PEAK_BYTES_S) -> None:
        if channels < 1:
            raise AllocationError("DMA needs >= 1 channel")
        self.ddr = ddr
        self.channels = channels
        self.setup_s = setup_s
        self.peak_bytes_s = peak_bytes_s
        self.transfers = 0
        self.bytes_moved = 0
        self._channel_pool: Resource | None = None
        self._env: Environment | None = None

    # -- static cost model -------------------------------------------------
    def transfer_seconds(self, nbytes: float) -> float:
        """Cost of one DDR<->CMX transfer, ignoring channel contention."""
        if nbytes < 0:
            raise AllocationError("negative DMA size")
        rate = min(self.peak_bytes_s, self.ddr.bandwidth,
                   CMX_BANDWIDTH_BYTES_S)
        return self.setup_s + self.ddr.latency + nbytes / rate

    # -- DES integration -----------------------------------------------------
    def bind(self, env: Environment) -> None:
        """Attach the engine to a simulation environment."""
        self._env = env
        self._channel_pool = Resource(env, capacity=self.channels)

    def transfer(self, nbytes: int,
                 to_ddr: bool = False) -> Event:
        """Start a DMA transfer as a simulation process.

        Returns the process event; yield it to wait for completion.
        """
        if self._env is None or self._channel_pool is None:
            raise AllocationError(
                "DMAEngine.bind(env) must be called before transfer()")
        return self._env.process(self._run(nbytes, to_ddr))

    def _run(self, nbytes: int,
             to_ddr: bool) -> Generator[Event, None, None]:
        assert self._env is not None and self._channel_pool is not None
        with self._channel_pool.request() as req:
            yield req
            duration = self.transfer_seconds(nbytes)
            if to_ddr:
                self.ddr.bytes_written += nbytes
            else:
                self.ddr.bytes_read += nbytes
            self.transfers += 1
            self.bytes_moved += nbytes
            yield self._env.timeout(duration)
