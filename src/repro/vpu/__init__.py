"""Myriad 2 VPU architectural simulator.

Models the Movidius Myriad 2 (MA2450) as described in the paper's §II
and its references (Moloney et al. Hot Chips 2014; Barry et al. IEEE
Micro 2015):

* 12 SHAVE VLIW vector processors @ 600 MHz with per-unit issue
  (VAU/SAU/IAU/CMU/LSU) and native FP16 arithmetic
  (:mod:`repro.vpu.shave`);
* 2 MB multi-ported CMX scratchpad in 16 x 128 KB slices
  (:mod:`repro.vpu.cmx`);
* a 4 GB LPDDR3 channel and a DMA engine between DDR and CMX
  (:mod:`repro.vpu.ddr`, :mod:`repro.vpu.dma`);
* the SIPP hardware-accelerated image filter pipeline
  (:mod:`repro.vpu.sipp`);
* 20 power islands with gating and energy accounting
  (:mod:`repro.vpu.power_islands`);
* a graph compiler in the mvNCCompile role that tiles layers into CMX
  and schedules them over SHAVEs (:mod:`repro.vpu.compiler`), and a
  calibrated per-layer cycle estimator (:mod:`repro.vpu.timing`).

The top-level chip model is :class:`repro.vpu.myriad2.Myriad2`.
"""

from repro.vpu.clock import Clock
from repro.vpu.cmx import CMXMemory
from repro.vpu.ddr import DDRChannel
from repro.vpu.dma import DMAEngine
from repro.vpu.shave import ShaveProcessor, ShaveConfig
from repro.vpu.sipp import SIPPPipeline, SIPP_FILTERS
from repro.vpu.power_islands import PowerIslands
from repro.vpu.myriad2 import Myriad2, Myriad2Config
from repro.vpu.compiler import compile_graph, CompiledGraph, LayerSchedule

__all__ = [
    "Clock",
    "CMXMemory",
    "DDRChannel",
    "DMAEngine",
    "ShaveProcessor",
    "ShaveConfig",
    "SIPPPipeline",
    "SIPP_FILTERS",
    "PowerIslands",
    "Myriad2",
    "Myriad2Config",
    "compile_graph",
    "CompiledGraph",
    "LayerSchedule",
]
