"""VLIW packet packing for the SHAVE's functional units.

The SHAVE issues Variable-Length Long Instruction Word packets with at
most one operation per functional unit per cycle (paper Fig. 1).  This
module models that structural constraint: given an in-order stream of
operations tagged by FU, it packs them greedily into packets — the
schedule a VLIW compiler's list scheduler would produce for a
dependence-free inner loop.

It grounds the per-layer efficiency table of :mod:`repro.vpu.timing`:
:func:`derived_conv_efficiency` computes, from the packed inner loop
of a k x k convolution kernel, the fraction of cycles in which the VAU
actually issues — the *structural* ceiling the empirical table sits
below (the table additionally derates for memory-system effects:
alignment, bank conflicts, short rows).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.errors import SimulationError


class FU(enum.Enum):
    """SHAVE functional units (paper Fig. 1)."""

    VAU = "vau"    #: 128-bit vector arithmetic (8 fp16 MACs)
    SAU = "sau"    #: 32-bit scalar arithmetic
    IAU = "iau"    #: 32-bit integer arithmetic (addressing)
    CMU = "cmu"    #: 128-bit compare-and-move
    LSU0 = "lsu0"  #: 64-bit load/store port 0
    LSU1 = "lsu1"  #: 64-bit load/store port 1
    PEU = "peu"    #: predication
    BRU = "bru"    #: branch


@dataclass(frozen=True)
class Op:
    """One operation bound to a functional unit."""

    fu: FU
    name: str = ""


def pack(ops: Sequence[Op]) -> list[list[Op]]:
    """Greedy in-order packing into VLIW packets.

    Consecutive operations join the current packet until a functional
    unit would be used twice; then a new packet starts.  This models a
    dependence-free (software-pipelined) inner loop, where only
    structural hazards bind.
    """
    packets: list[list[Op]] = []
    current: list[Op] = []
    used: set[FU] = set()
    for op in ops:
        if not isinstance(op, Op):
            raise SimulationError(f"not an Op: {op!r}")
        if op.fu in used:
            packets.append(current)
            current, used = [], set()
        current.append(op)
        used.add(op.fu)
    if current:
        packets.append(current)
    return packets


def packet_count(ops: Sequence[Op]) -> int:
    """Cycles (packets) the operation stream occupies."""
    return len(pack(ops))


def loop_cycles(body: Sequence[Op], iterations: int,
                setup_cycles: int = 0) -> int:
    """Cycles of a counted loop whose body packs independently.

    The loop-closing branch is added to the body if absent (the BRU
    issues in parallel with the last packet when it has a free slot).
    """
    if iterations < 0:
        raise SimulationError("iterations must be >= 0")
    ops = list(body)
    if not any(op.fu is FU.BRU for op in ops):
        ops.append(Op(FU.BRU, "loop"))
    return setup_cycles + packet_count(ops) * iterations


def _interleave_loads(n: int) -> Iterable[Op]:
    """n loads alternating across the two LSU ports."""
    for i in range(n):
        yield Op(FU.LSU0 if i % 2 == 0 else FU.LSU1, f"load{i}")


def conv_inner_loop(kernel_size: int) -> list[Op]:
    """Operation mix of one inner-loop iteration of a k x k conv.

    Produces 8 output pixels (one VAU vector) per k*k taps: each tap
    needs one input-vector load and one VAU MAC; weights stay in the
    VRF across the row.  One store writes the result; the IAU bumps
    addresses.
    """
    if kernel_size < 1:
        raise SimulationError("kernel_size must be >= 1")
    taps = kernel_size * kernel_size
    ops: list[Op] = []
    loads = list(_interleave_loads(taps))
    for i in range(taps):
        ops.append(loads[i])
        ops.append(Op(FU.VAU, f"mac{i}"))
    ops.append(Op(FU.CMU, "shuffle"))
    ops.append(Op(FU.LSU0, "store"))
    ops.append(Op(FU.IAU, "addr"))
    return ops


def vau_occupancy(ops: Sequence[Op]) -> float:
    """Fraction of packets in which the VAU issues (the structural
    efficiency ceiling)."""
    packets = pack(ops)
    if not packets:
        return 0.0
    vau_packets = sum(1 for p in packets
                      if any(op.fu is FU.VAU for op in p))
    return vau_packets / len(packets)


def derived_conv_efficiency(kernel_size: int) -> float:
    """Structural VAU efficiency of the packed k x k conv inner loop."""
    return vau_occupancy(conv_inner_loop(kernel_size))
