"""Per-layer cycle estimation for the Myriad 2.

The estimator follows a roofline decomposition: for every layer the
compiler asks "how many cycles on the SHAVEs it was scheduled to, at
the efficiency its kernel achieves, or how many cycles to stream its
working set — whichever binds".  Efficiencies are per layer type and
kernel size: 1x1 convolutions have low arithmetic intensity (GEMM with
a skinny K dimension), large-kernel convolutions amortise their loads
across many MACs.

Calibration: the only free constant, :data:`CALIBRATION`, is chosen so
the full paper-scale GoogLeNet lands at the paper's measured single-
stick latency (100.7 ms including USB transfer; §IV-A).  The *relative*
cost structure comes from the architecture model, so scaling behaviour
(SHAVE count sweeps, width/geometry changes) is meaningful, while the
absolute anchor is honest about coming from the paper's measurement.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import CompileError
from repro.nn.layer import Layer
from repro.tensors.layout import BlobShape
from repro.vpu.shave import KernelWorkload, ShaveConfig, ShaveProcessor

#: Global calibration factor applied to every layer's compute cycles.
#: Anchored so paper-scale GoogLeNet (with ReLU fusion, the compiler
#: default) ~= 99.5 ms on-chip at 12 SHAVEs / 600 MHz; ~1.2 ms of USB
#: transfer then lands the paper's 100.7 ms single-stick figure.
CALIBRATION = 1.11

#: Runtime-scheduler dispatch cost per kernel launch (RISC -> SHAVEs).
DISPATCH_SECONDS = 18e-6

#: VAU efficiency by (layer type, kernel size). Derived from the
#: arithmetic intensity of each kernel shape on an 8-lane FP16 MAC
#: datapath fed by two 64-bit LSUs.
_CONV_EFFICIENCY = {1: 0.32, 3: 0.52, 5: 0.55, 7: 0.60}
_TYPE_EFFICIENCY = {
    "InnerProduct": 0.25,   # bandwidth bound on weights
    "Pooling": 0.30,
    "LRN": 0.20,
    "ReLU": 0.45,
    "Softmax": 0.10,
    "Concat": 1.0,          # pure data movement, uses LSU bound
    "Dropout": 1.0,
}


@dataclass(frozen=True)
class LayerTiming:
    """Cycle breakdown for one scheduled layer."""

    compute_cycles: int
    memory_cycles: int
    dispatch_cycles: int

    @property
    def total_cycles(self) -> int:
        """Total cycles: serial dispatch plus overlapped compute/DMA."""
        # Compute and DMA overlap (double-buffered tiles); dispatch is
        # serial.
        return self.dispatch_cycles + max(self.compute_cycles,
                                          self.memory_cycles)


def layer_efficiency(layer: Layer) -> float:
    """VAU efficiency the NCSDK-style kernel achieves for *layer*."""
    t = layer.type_name()
    if t == "Convolution":
        k = getattr(layer, "kernel_size")
        if k not in _CONV_EFFICIENCY:
            # Interpolate: clamp to the largest known kernel class.
            k = max(kk for kk in _CONV_EFFICIENCY if kk <= max(k, 1))
        return _CONV_EFFICIENCY[k]
    if t in _TYPE_EFFICIENCY:
        return _TYPE_EFFICIENCY[t]
    raise CompileError(f"no efficiency model for layer type {t!r}")


def estimate_layer_cycles(layer: Layer,
                          input_shapes: list[BlobShape],
                          *,
                          shaves: int,
                          freq_hz: float,
                          bytes_per_element: int = 2,
                          ddr_streamed: bool = False,
                          ddr_bandwidth: float = 4e9,
                          config: ShaveConfig | None = None) -> LayerTiming:
    """Estimate the cycle cost of one layer on *shaves* SHAVEs.

    ``ddr_streamed`` marks layers whose working set exceeds CMX, so
    their tensors stream through the DMA engine instead of staying
    CMX-resident — the memory bound then uses DDR bandwidth.
    """
    if shaves < 1:
        raise CompileError(f"shaves must be >= 1, got {shaves}")
    cfg = config or ShaveConfig()
    out_shapes = layer.output_shapes(input_shapes)
    macs = layer.macs(input_shapes)
    in_bytes = sum(s.count for s in input_shapes) * bytes_per_element
    out_bytes = sum(s.count for s in out_shapes) * bytes_per_element
    weight_bytes = layer.param_bytes(bytes_per_element)

    # Work splits over rows of the output map; the last SHAVE's slice
    # may be shorter, captured by the imbalance ratio.
    rows = max(1, out_shapes[0].h * out_shapes[0].n)
    used = min(shaves, rows)
    imbalance = (-(-rows // used)) * used / rows  # ceil-division ratio

    per_shave = KernelWorkload(
        macs=int(macs / used),
        element_ops=0,
        load_bytes=int((in_bytes + weight_bytes) / used),
        store_bytes=int(out_bytes / used),
    )
    proto = ShaveProcessor(index=0, config=cfg)
    eff = layer_efficiency(layer)
    compute = proto.kernel_cycles(per_shave, fp16=(bytes_per_element == 2),
                                  efficiency=eff)
    compute = int(compute * imbalance * CALIBRATION)

    if ddr_streamed:
        traffic = in_bytes + out_bytes + weight_bytes
        memory_s = traffic / ddr_bandwidth
        memory = int(memory_s * freq_hz)
    else:
        memory = 0  # CMX-resident: LSU bound already inside kernel_cycles

    dispatch = int(DISPATCH_SECONDS * freq_hz)
    return LayerTiming(compute_cycles=compute, memory_cycles=memory,
                       dispatch_cycles=dispatch)
