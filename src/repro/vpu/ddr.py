"""LPDDR3 channel model.

The MA2450 variant in the NCS stacks 4 GB of LPDDR3 (paper §II-A).
The channel model is bandwidth/latency only — sufficient because the
compiler decides statically which tensors live in DDR, and the timing
estimator charges their traffic against this channel.
"""

from __future__ import annotations

from repro.errors import AllocationError
from repro.units import GB, GiB


#: Architectural constants for the NCS's stacked LPDDR3.
DDR_CAPACITY_BYTES = 4 * GiB
#: 32-bit LPDDR3-933 peak is ~7.5 GB/s; sustained de-rated figure.
DDR_BANDWIDTH_BYTES_S = 4.0 * GB
DDR_LATENCY_S = 150e-9


class DDRChannel:
    """Capacity accounting plus a latency+bandwidth transfer model."""

    def __init__(self, capacity: int = int(DDR_CAPACITY_BYTES),
                 bandwidth: float = DDR_BANDWIDTH_BYTES_S,
                 latency: float = DDR_LATENCY_S) -> None:
        if capacity < 1 or bandwidth <= 0 or latency < 0:
            raise AllocationError("invalid DDR parameters")
        self.capacity = capacity
        self.bandwidth = bandwidth
        self.latency = latency
        self._used = 0
        self.bytes_read = 0
        self.bytes_written = 0

    @property
    def used(self) -> int:
        """Bytes currently reserved."""
        return self._used

    @property
    def free(self) -> int:
        """Bytes still available."""
        return self.capacity - self._used

    def alloc(self, nbytes: int) -> int:
        """Reserve *nbytes*; returns an opaque size handle."""
        if nbytes <= 0:
            raise AllocationError("allocation must be positive")
        if nbytes > self.free:
            raise AllocationError(
                f"DDR exhausted: need {nbytes}, {self.free} free")
        self._used += nbytes
        return nbytes

    def release(self, handle: int) -> None:
        """Release a reservation made with :meth:`alloc`."""
        if handle > self._used:
            raise AllocationError("release exceeds allocated bytes")
        self._used -= handle

    def read_seconds(self, nbytes: float) -> float:
        """Cost of reading *nbytes* from DDR (accounted)."""
        if nbytes < 0:
            raise AllocationError("negative read size")
        self.bytes_read += int(nbytes)
        return self.latency + nbytes / self.bandwidth

    def write_seconds(self, nbytes: float) -> float:
        """Cost of writing *nbytes* to DDR (accounted)."""
        if nbytes < 0:
            raise AllocationError("negative write size")
        self.bytes_written += int(nbytes)
        return self.latency + nbytes / self.bandwidth
