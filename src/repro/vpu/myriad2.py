"""The Myriad 2 chip model.

Assembles the component models — SHAVE array, CMX, DDR, DMA, SIPP,
power islands — and exposes the operation the NCS device model needs:
run one compiled-graph inference as a DES process, with per-layer
timing, SHAVE utilisation accounting and power-island gating.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional

from repro.errors import AllocationError, SimulationError
from repro.sim.core import Environment, Event
from repro.sim.monitor import TraceRecorder
from repro.sim.resources import Resource
from repro.units import MHZ
from repro.vpu.clock import Clock
from repro.vpu.cmx import CMXMemory, CMX_SLICE_BYTES, CMX_SLICES
from repro.vpu.compiler.compile import CompiledGraph
from repro.vpu.ddr import DDRChannel
from repro.vpu.dma import DMAEngine
from repro.vpu.power_islands import PowerIslands
from repro.vpu.shave import ShaveConfig, ShaveProcessor
from repro.vpu.sipp import SIPPPipeline


@dataclass(frozen=True)
class Myriad2Config:
    """Chip-level configuration (MA2450 defaults)."""

    num_shaves: int = 12
    freq_hz: float = 600 * MHZ
    cmx_slices: int = CMX_SLICES
    cmx_slice_bytes: int = int(CMX_SLICE_BYTES)
    shave: ShaveConfig = ShaveConfig()

    def __post_init__(self) -> None:
        if not 1 <= self.num_shaves <= 12:
            raise SimulationError(
                f"Myriad 2 has 1-12 SHAVEs, got {self.num_shaves}")


class Myriad2:
    """One Myriad 2 VPU bound to a simulation environment."""

    def __init__(self, env: Environment,
                 config: Myriad2Config | None = None,
                 trace: Optional[TraceRecorder] = None,
                 name: str = "myriad2") -> None:
        self.env = env
        self.config = config or Myriad2Config()
        self.name = name
        self.trace = trace
        self.clock = Clock(self.config.freq_hz)
        self.shaves = [ShaveProcessor(i, self.config.shave)
                       for i in range(self.config.num_shaves)]
        self.cmx = CMXMemory(self.config.cmx_slices,
                             self.config.cmx_slice_bytes)
        self.ddr = DDRChannel()
        self.dma = DMAEngine(self.ddr)
        self.dma.bind(env)
        self.sipp = SIPPPipeline(self.config.freq_hz)
        self.sipp.bind(env)
        self.islands = PowerIslands(env)
        self.islands.power_on("risc0")  # runtime scheduler always up
        # The SHAVE array runs one graph at a time (the NCS runtime
        # scheduler serialises executions).
        self._shave_array = Resource(env, capacity=1)
        self.inferences_completed = 0
        self._graph_handles: dict[int, int] = {}
        self._next_handle = 1

    # -- graph lifecycle ----------------------------------------------------
    def allocate_graph(self, graph: CompiledGraph) -> int:
        """Reserve DDR for the graph's weights; returns a handle."""
        if graph.num_shaves > self.config.num_shaves:
            raise AllocationError(
                f"graph compiled for {graph.num_shaves} SHAVEs but chip "
                f"has {self.config.num_shaves}")
        if abs(graph.freq_hz - self.config.freq_hz) > 1.0:
            # Dispatch/memory cycle counts were baked at compile time
            # for a specific clock; running them on a different clock
            # silently mis-times seconds-based costs.
            raise AllocationError(
                f"graph compiled for {graph.freq_hz / 1e6:.0f} MHz but "
                f"chip runs at {self.config.freq_hz / 1e6:.0f} MHz")
        nbytes = graph.weight_bytes_total + graph.input_tensor_bytes * 2
        self.ddr.alloc(nbytes)
        handle = self._next_handle
        self._next_handle += 1
        self._graph_handles[handle] = nbytes
        self._emit("allocate_graph", handle=handle, nbytes=nbytes)
        return handle

    def deallocate_graph(self, handle: int) -> None:
        """Release a graph's DDR reservation."""
        try:
            nbytes = self._graph_handles.pop(handle)
        except KeyError:
            raise AllocationError(
                f"unknown graph handle {handle}") from None
        self.ddr.release(nbytes)
        self._emit("deallocate_graph", handle=handle)

    # -- inference --------------------------------------------------------------
    def run_inference(self, graph: CompiledGraph) -> Event:
        """Execute one inference as a DES process.

        The process event's value is a dict of per-layer seconds
        (NCAPI ``TIME_TAKEN`` analogue).
        """
        return self.env.process(self._inference(graph))

    def _inference(self, graph: CompiledGraph
                   ) -> Generator[Event, None, dict[str, float]]:
        with self._shave_array.request() as req:
            yield req
            used = min(graph.num_shaves, len(self.shaves))
            for i in range(used):
                self.islands.power_on(f"shave{i}")
            self.islands.power_on("cmx")
            self.islands.power_on("ddr_if")

            per_layer: dict[str, float] = {}
            try:
                for sched in graph.layers:
                    seconds = self.clock.to_seconds(sched.total_cycles)
                    yield self.env.timeout(seconds)
                    per_layer[sched.name] = seconds
                    share = min(sched.assignment.shaves_used, used)
                    for i in range(share):
                        self.shaves[i].record_execution(
                            sched.timing.compute_cycles)
                    if not sched.tile_plan.fits_cmx:
                        self.dma.transfers += 1
                        self.dma.bytes_moved += (
                            sched.tile_plan.ddr_traffic_bytes)
            finally:
                for i in range(used):
                    self.islands.power_off(f"shave{i}")
                self.islands.power_off("cmx")
                self.islands.power_off("ddr_if")
            self.inferences_completed += 1
            self._emit("inference_done", graph=graph.name)
            return per_layer

    # -- misc ----------------------------------------------------------------------
    def _emit(self, action: str, **detail) -> None:
        if self.trace is not None:
            self.trace.emit(self.name, action, **detail)

    def shave_utilization(self) -> list[float]:
        """Busy fraction of each SHAVE over the elapsed simulation."""
        total = self.clock.to_cycles(self.env.now)
        return [s.utilization(int(total)) for s in self.shaves]
