"""Power-island model of the NCS's Myriad 2.

The NCS employs 20 power islands, one per SHAVE plus islands for the
RISC processors, CMX, SIPP, DDR interface and peripherals (paper
§II-B) — the mechanism that keeps the SoC under its ~0.9 W chip TDP.
The model tracks island on/off state against the simulated clock and
integrates per-island power into energy.
"""

from __future__ import annotations

from repro.errors import PowerError
from repro.sim.core import Environment
from repro.sim.monitor import Monitor

#: Island inventory: name -> active power draw in watts. The split is
#: chosen so that all-on totals ~0.9 W (the Myriad 2 chip TDP) with the
#: SHAVE islands dominating, per the Hot Chips / IEEE Micro breakdowns.
DEFAULT_ISLANDS: dict[str, float] = {
    **{f"shave{i}": 0.045 for i in range(12)},   # 0.54 W all twelve
    "risc0": 0.040,
    "risc1": 0.040,
    "cmx": 0.080,
    "sipp": 0.060,
    "ddr_if": 0.070,
    "usb": 0.040,
    "peripherals": 0.020,
    "always_on": 0.010,
}

#: Leakage drawn by a gated island (fraction of active power).
GATED_FRACTION = 0.05


class PowerIslands:
    """Tracks island gating state and integrates energy over sim time."""

    def __init__(self, env: Environment,
                 islands: dict[str, float] | None = None) -> None:
        self.env = env
        self.islands = dict(islands or DEFAULT_ISLANDS)
        if len(self.islands) == 0:
            raise PowerError("need at least one island")
        if any(p < 0 for p in self.islands.values()):
            raise PowerError("island power must be >= 0")
        self._on: dict[str, bool] = {n: False for n in self.islands}
        self._on["always_on"] = "always_on" in self.islands
        self.monitor = Monitor(env, name="chip_power")
        self.monitor.record(self.current_power())

    @property
    def count(self) -> int:
        """Number of power islands (the NCS uses 20)."""
        return len(self.islands)

    def is_on(self, name: str) -> bool:
        """Whether the named island is currently ungated."""
        self._check(name)
        return self._on[name]

    def power_on(self, name: str) -> None:
        """Ungate an island."""
        self._check(name)
        if not self._on[name]:
            self._on[name] = True
            self.monitor.record(self.current_power())

    def power_off(self, name: str) -> None:
        """Gate an island (always_on cannot be gated)."""
        self._check(name)
        if name == "always_on":
            raise PowerError("the always-on island cannot be gated")
        if self._on[name]:
            self._on[name] = False
            self.monitor.record(self.current_power())

    def power_on_all(self) -> None:
        """Ungate every island (peak-power state)."""
        for name in self.islands:
            self._on[name] = True
        self.monitor.record(self.current_power())

    def power_off_all(self) -> None:
        """Gate everything except the always-on island."""
        for name in self.islands:
            if name != "always_on":
                self._on[name] = False
        self.monitor.record(self.current_power())

    def current_power(self) -> float:
        """Instantaneous chip power in watts."""
        total = 0.0
        for name, p in self.islands.items():
            total += p if self._on[name] else p * GATED_FRACTION
        return total

    def peak_power(self) -> float:
        """All-islands-on power (the chip's TDP-style figure)."""
        return sum(self.islands.values())

    def energy_joules(self) -> float:
        """Energy consumed from t=0 to the current simulated time."""
        return self.monitor.integral()

    def _check(self, name: str) -> None:
        if name not in self.islands:
            raise PowerError(
                f"unknown island {name!r}; islands: "
                f"{sorted(self.islands)}")
