"""repro — full-system reproduction of "Exploring the Vision
Processing Unit as Co-processor for Inference" (IPDPSW 2018).

Subpackages
-----------
``repro.sim``
    Deterministic discrete-event simulation kernel.
``repro.numerics``
    FP16 emulation, precision policies, statistics, ULP analysis.
``repro.tensors``
    NCHW blobs, Caffe geometry, im2col lowering.
``repro.nn``
    From-scratch CNN inference engine and the GoogLeNet topology.
``repro.vpu``
    Myriad 2 architectural model and graph compiler.
``repro.ncs``
    Neural Compute Stick platform: USB topology, device, NCAPI.
``repro.baselines``
    Calibrated Caffe-MKL CPU and Caffe-cuDNN GPU device models.
``repro.ncsw``
    The paper's NCSw inference framework (sources, targets,
    multi-VPU scheduler).
``repro.data``
    Synthetic ILSVRC 2012 substrate with error-rate calibration.
``repro.power``
    TDP registry and throughput-per-Watt (the paper's Eq. 1).
``repro.mdk``
    Movidius Development Kit analogue: general-purpose SHAVE compute
    (the paper's future-work direction).
``repro.harness``
    Per-figure experiment drivers, tables and terminal plots.

Quick entry points::

    from repro.nn import get_model
    from repro.vpu import compile_graph
    from repro.ncsw import NCSw, IntelVPU, SyntheticSource
    from repro.harness import fig6a_throughput_per_subset

See README.md for the full tour and EXPERIMENTS.md for the
paper-vs-measured record.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
