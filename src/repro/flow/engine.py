"""The flow coordinator: walks a compiled DAG on the serving stack.

:class:`FlowCoordinator` executes a
:class:`~repro.flow.compiler.CompiledWorkflow` against an open-loop
workload.  Every :class:`~repro.flow.steps.InferStep` gets its *own*
serving stack — an :class:`~repro.serve.queue.AdmissionQueue`, a
:class:`~repro.serve.batcher.DynamicBatcher` and a
:class:`~repro.serve.router.Router` over fresh targets — so each
stage batches independently: the batcher asks its own router for the
next backend's ``preferred_batch_size``, which means a VPU detect
stage forms stick-count windows while a CPU classify stage fills
16-wide ones, concurrently on one simulated clock.

Items travel as tokens.  A *trunk* token is the workflow request
itself walking the spine of the graph; a fan-out parks the trunk at a
:class:`_Barrier` and spawns *sub*-tokens (one per crop, one per
ensemble member) that rejoin at the paired join step.  Every spawned
sub-token is accounted exactly once — it either reaches the join or
is abandoned to its stage's overload/fault policy — so the region's
``spawned = joined + abandoned`` ledger in the
:class:`~repro.flow.result.WorkflowResult` always balances.  A trunk
token lost at a stage resolves the whole workflow request with that
stage's terminal status.

Determinism: user hooks draw randomness from generators seeded by
(run seed, workflow, step, item lineage), stage request ids are a
single monotonic counter, and all observability is guarded by
``env.obs is not None`` and creates no simulation events — a run is
byte-identical with obs off or on, and same-seed runs replay exactly.
The workflow request's :class:`~repro.obs.reqtrace.TraceContext`
rides onto every stage request it spawns, so one ``trace-analyze``
waterfall shows the whole cascade.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Dict, Generator, Optional

import numpy as np

from repro.errors import FlowError
from repro.flow.compiler import CompiledWorkflow
from repro.flow.result import (FanOutAccount, StageResult,
                               WorkflowRequest, WorkflowResult)
from repro.flow.steps import (BranchStep, FanOutStep, InferStep, Item,
                              JoinStep, Step, TransformStep)
from repro.ncsw.faults import FailureEvent
from repro.serve.batcher import DynamicBatcher
from repro.serve.queue import POLICIES as ADMISSION_POLICIES
from repro.serve.queue import REJECT_NEWEST, AdmissionQueue
from repro.serve.router import ROUND_ROBIN, Backend, Router
from repro.serve.server import DEFAULT_MAX_WAIT_S
from repro.serve.slo import ServeResult
from repro.serve.workload import ABANDONED, COMPLETED, Request, Workload
from repro.sim.core import Environment, Event


@dataclass
class _Barrier:
    """Join barrier for one fan-out region of one workflow request."""

    parent: "_Token"            # trunk token parked at the barrier
    fanout: str
    join: str
    expected: int
    opened_at: float
    #: ``(spawn_index, data)`` of every sub-item that reached the join.
    joined: list[tuple[int, Any]] = field(default_factory=list)
    abandoned: int = 0


@dataclass
class _Token:
    """One item in flight, bound to its workflow request."""

    flow_req: WorkflowRequest
    item: Item
    #: (request_id, spawn indices...): the deterministic identity used
    #: to seed per-item RNGs and to order join inputs.
    lineage: tuple[int, ...]
    #: None for trunk tokens; the region barrier for sub-tokens.
    barrier: Optional[_Barrier] = None
    #: Trace context this token's stage requests carry.  Only the
    #: trunk and each region's *first* sub-token (the representative)
    #: keep the workflow context — siblings sharing one context would
    #: interleave hops and break the waterfall's telescoping.
    trace: Optional[object] = None


class _Stage:
    """One InferStep's private serving stack inside a run."""

    def __init__(self, run: "_FlowRun", step: InferStep) -> None:
        env = run.env
        cfg = run.coordinator
        self.step = step
        self.targets = step.make_targets()
        name = f"flow.{step.name}"
        depth = (step.queue_depth if step.queue_depth is not None
                 else cfg.queue_depth)
        wait = (step.max_wait_s if step.max_wait_s is not None
                else cfg.max_wait_s)
        self.queue = AdmissionQueue(env, depth=depth,
                                    policy=cfg.admission,
                                    on_drop=self._dropped, name=name)
        self.backends = [Backend(env, bname, target,
                                 metrics_prefix=name)
                         for bname, target in self.targets.items()]
        self.router = Router(env, self.backends, policy=cfg.policy,
                             max_redirects=cfg.max_redirects,
                             ewma_alpha=cfg.ewma_alpha,
                             on_complete=self._completed,
                             on_abandon=self._dropped,
                             metrics_prefix=name)
        self.batcher = DynamicBatcher(env, self.queue, self.router,
                                      max_batch_size=step.max_batch_size,
                                      max_wait_s=wait,
                                      on_timeout=self._dropped,
                                      metrics_prefix=name)
        #: Every serve request submitted to this stage, in order.
        self.requests: list[Request] = []
        self._run = run
        self._tokens: Dict[int, _Token] = {}

    def submit(self, token: _Token) -> None:
        """Wrap *token* in a stage request and offer it for admission."""
        run = self._run
        req = Request(request_id=run.next_stage_id(),
                      arrival_time=run.env.now,
                      deadline_at=token.flow_req.deadline_at,
                      tensor=token.item.tensor,
                      trace=token.trace)
        self.requests.append(req)
        self._tokens[req.request_id] = token
        self.queue.offer(req)

    def _completed(self, batch: list[Request]) -> None:
        for req in batch:
            token = self._tokens.pop(req.request_id)
            self._run.on_stage_complete(self, token, req)

    def _dropped(self, req: Request) -> None:
        token = self._tokens.pop(req.request_id)
        self._run.on_stage_drop(token, req)

    def serve_result(self, wall: float, epoch: float) -> ServeResult:
        """Assemble this stage's ServeResult after the run."""
        failures: list[FailureEvent] = []
        for target in self.targets.values():
            failures.extend(target.fault_stats().events)
        completed = sum(1 for r in self.requests
                        if r.status == COMPLETED)
        return ServeResult(
            offered=len(self.requests),
            completed=completed,
            shed=self.queue.shed_count,
            rejected=self.queue.rejected_count,
            timed_out=self.batcher.timed_out_count,
            abandoned=self.router.abandoned_count,
            wall_seconds=wall,
            prepare_seconds=epoch,
            slo_seconds=self.step.slo_seconds,
            requests=self.requests,
            failures=failures,
        )


@dataclass
class _FanAccount:
    join: str
    spawned: int = 0
    joined: int = 0
    abandoned: int = 0


class _FlowRun:
    """All per-run state: stages, tokens, barriers, accounting."""

    def __init__(self, coordinator: "FlowCoordinator",
                 env: Environment,
                 flow_requests: list[WorkflowRequest],
                 payloads: list[Optional[np.ndarray]]) -> None:
        self.coordinator = coordinator
        self.env = env
        self.wf = coordinator.workflow
        self.flow_requests = flow_requests
        self.payloads = payloads
        self.stages: Dict[str, _Stage] = {
            name: _Stage(self, step)
            for name in self.wf.order
            if isinstance((step := self.wf.steps[name]), InferStep)}
        self.fan_accounts: Dict[str, _FanAccount] = {
            fo: _FanAccount(join=jn)
            for fo, jn in self.wf.join_of.items()}
        self.counts = {status: 0 for status in
                       ("completed", "shed", "rejected", "timed_out",
                        "abandoned")}
        self.resolved = 0
        self.all_resolved = env.event()
        self._next_stage_id = 0

    def next_stage_id(self) -> int:
        """Monotonic id shared by every stage (deterministic)."""
        rid = self._next_stage_id
        self._next_stage_id += 1
        return rid

    def rng_for(self, step: str, lineage: tuple[int, ...]
                ) -> np.random.Generator:
        """Seeded RNG for one (step, item) — stable across replays."""
        digest = hashlib.sha256(
            f"repro-flow:{self.coordinator.seed}:{self.wf.name}:"
            f"{step}:{lineage}".encode()).digest()
        return np.random.default_rng(
            int.from_bytes(digest[:8], "little"))

    # -- arrivals --------------------------------------------------------
    def arrivals(self) -> Generator[Event, None, None]:
        """Open-loop arrival process (rebased onto the sim clock)."""
        env = self.env
        obs = env.obs
        epoch = env.now
        for i, flow_req in enumerate(self.flow_requests):
            flow_req.arrival_time += epoch
            if flow_req.deadline_at is not None:
                flow_req.deadline_at += epoch
            if flow_req.arrival_time > env.now:
                yield env.timeout(flow_req.arrival_time - env.now)
            if obs is not None:
                obs.metrics.counter("flow.offered").inc()
                obs.reqtrace.begin(
                    flow_req, track="flow",
                    t=obs.tracer.timestamp(flow_req.arrival_time))
            token = _Token(flow_req=flow_req,
                           item=Item(data=None,
                                     tensor=self.payloads[i]),
                           lineage=(flow_req.request_id,),
                           trace=flow_req.trace)
            self.deliver(token, self.wf.entry)

    # -- graph walking ---------------------------------------------------
    def deliver(self, token: _Token, name: str) -> None:
        """Hand *token* to step *name* at the current sim time."""
        step = self.wf.steps[name]
        if isinstance(step, InferStep):
            self.stages[name].submit(token)
        elif isinstance(step, TransformStep):
            self._transform(token, step)
        elif isinstance(step, BranchStep):
            self._branch(token, step)
        elif isinstance(step, FanOutStep):
            self._fan_out(token, step)
        elif isinstance(step, JoinStep):
            self._join(token, step)
        else:  # pragma: no cover - the step kinds are closed
            raise FlowError(f"unknown step kind {step.kind!r}")

    def advance_past(self, token: _Token, name: str) -> None:
        """Move past a single-successor step (or land at a sink)."""
        succs = self.wf.succs[name]
        if not succs:
            self._at_sink(token, name)
            return
        self.deliver(token, succs[0])

    def _record_interval(self, token: _Token, label: str,
                         t0: float, t1: float) -> None:
        # Sub-token timings are folded into the region interval the
        # barrier records; only the trunk tiles the workflow journey.
        if token.barrier is None:
            token.flow_req.stage_intervals.append((label, t0, t1))

    # -- step semantics --------------------------------------------------
    def _transform(self, token: _Token, step: TransformStep) -> None:
        env = self.env
        t0 = env.now
        rng = self.rng_for(step.name, token.lineage)
        token.item = Item(data=step.fn(token.item.data, rng),
                          tensor=token.item.tensor)
        if step.cost_s <= 0:
            self._record_interval(token, step.name, t0, t0)
            self.advance_past(token, step.name)
            return

        def delayed() -> Generator[Event, None, None]:
            yield env.timeout(step.cost_s)
            self._record_interval(token, step.name, t0, env.now)
            self.advance_past(token, step.name)

        env.process(delayed())

    def _branch(self, token: _Token, step: BranchStep) -> None:
        choice = step.route(token.item.data)
        succs = self.wf.succs[step.name]
        if choice not in succs:
            raise FlowError(
                f"branch {step.name!r} routed to {choice!r}, not one "
                f"of its successors {list(succs)}")
        now = self.env.now
        self._record_interval(token, step.name, now, now)
        if self.env.obs is not None:
            self.env.obs.metrics.counter(
                f"flow.{step.name}.to.{choice}").inc()
        self.deliver(token, choice)

    def _fan_out(self, token: _Token, step: FanOutStep) -> None:
        if token.barrier is not None:  # compiler forbids; belt+braces
            raise FlowError(
                f"fan-out {step.name!r} reached inside the region of "
                f"{token.barrier.fanout!r} (nested fan-out)")
        env = self.env
        succs = self.wf.succs[step.name]
        if step.fn is not None:
            rng = self.rng_for(step.name, token.lineage)
            subs = step.fn(token.item, rng)
            if not isinstance(subs, list) or not all(
                    isinstance(s, Item) for s in subs):
                raise FlowError(
                    f"fan-out {step.name!r}: fn must return a list "
                    f"of Item, got {subs!r}")
            plan = [(succs[0], item) for item in subs]
        else:
            plan = [(succ, token.item) for succ in succs]
        barrier = _Barrier(parent=token, fanout=step.name,
                           join=self.wf.join_of[step.name],
                           expected=len(plan), opened_at=env.now)
        self.fan_accounts[step.name].spawned += len(plan)
        if env.obs is not None:
            env.obs.metrics.counter(
                f"flow.{step.name}.spawned").inc(len(plan))
        if not plan:
            self._close_barrier(barrier)
            return
        for i, (succ, item) in enumerate(plan):
            sub = _Token(flow_req=token.flow_req, item=item,
                         lineage=token.lineage + (i,),
                         barrier=barrier,
                         trace=token.trace if i == 0 else None)
            self.deliver(sub, succ)

    def _join(self, token: _Token, step: JoinStep) -> None:
        if token.barrier is None:
            raise FlowError(
                f"join {step.name!r} reached by a request outside "
                "any fan-out region")
        barrier = token.barrier
        if barrier.join != step.name:  # compiler forbids; belt+braces
            raise FlowError(
                f"join {step.name!r} reached from the region of "
                f"{barrier.fanout!r}, whose barrier is "
                f"{barrier.join!r}")
        barrier.joined.append((token.lineage[-1], token.item.data))
        self._check_barrier(barrier)

    def _check_barrier(self, barrier: _Barrier) -> None:
        if len(barrier.joined) + barrier.abandoned < barrier.expected:
            return
        self._close_barrier(barrier)

    def _close_barrier(self, barrier: _Barrier) -> None:
        env = self.env
        acct = self.fan_accounts[barrier.fanout]
        acct.joined += len(barrier.joined)
        acct.abandoned += barrier.abandoned
        trunk = barrier.parent
        label = f"{barrier.fanout}+{barrier.join}"
        if not barrier.joined and barrier.expected > 0:
            # Every sub-request was lost: nothing to aggregate, so the
            # whole workflow request is abandoned at the barrier.
            trunk.flow_req.stage_intervals.append(
                (label, barrier.opened_at, env.now))
            self.resolve_flow(trunk.flow_req, ABANDONED)
            return
        step = self.wf.steps[barrier.join]
        assert isinstance(step, JoinStep)
        ordered = [data for _, data in
                   sorted(barrier.joined, key=lambda p: p[0])]
        trunk.item = Item(data=step.reduce(ordered),
                          tensor=trunk.item.tensor)
        if step.cost_s <= 0:
            trunk.flow_req.stage_intervals.append(
                (label, barrier.opened_at, env.now))
            self.advance_past(trunk, barrier.join)
            return

        def delayed() -> Generator[Event, None, None]:
            yield env.timeout(step.cost_s)
            trunk.flow_req.stage_intervals.append(
                (label, barrier.opened_at, env.now))
            self.advance_past(trunk, barrier.join)

        env.process(delayed())

    def _at_sink(self, token: _Token, name: str) -> None:
        if token.barrier is not None:  # compiler forbids; belt+braces
            raise FlowError(
                f"sub-request escaped the region of "
                f"{token.barrier.fanout!r} to sink {name!r} without "
                "a join barrier")
        self.resolve_flow(token.flow_req, COMPLETED,
                          output=token.item.data)

    # -- stage callbacks -------------------------------------------------
    def on_stage_complete(self, stage: _Stage, token: _Token,
                          req: Request) -> None:
        step = stage.step
        data = token.item.data
        if step.decode is not None:
            rng = self.rng_for(step.name, token.lineage)
            data = step.decode(req.record, token.item, rng)
        token.item = Item(data=data, tensor=token.item.tensor)
        assert req.completed_at is not None
        self._record_interval(token, step.name, req.arrival_time,
                              req.completed_at)
        self.advance_past(token, step.name)

    def on_stage_drop(self, token: _Token, req: Request) -> None:
        if token.barrier is None:
            # The workflow request itself was lost at this stage; it
            # inherits the stage's terminal status.
            self.resolve_flow(token.flow_req, req.status)
            return
        token.barrier.abandoned += 1
        self._check_barrier(token.barrier)

    # -- resolution ------------------------------------------------------
    def resolve_flow(self, flow_req: WorkflowRequest, status: str,
                     output: Any = None) -> None:
        env = self.env
        flow_req.status = status
        flow_req.output = output
        obs = env.obs
        if status == COMPLETED:
            flow_req.completed_at = env.now
            if obs is not None:
                obs.reqtrace.hop(flow_req.trace, "completed",
                                 track="flow")
                metrics = obs.metrics
                metrics.counter("flow.completed").inc()
                latency = flow_req.e2e_latency
                if latency is not None:
                    metrics.histogram("flow.e2e_seconds").observe(
                        latency)
                if (self.coordinator.warmup > 0
                        and self.counts["completed"] + 1
                        == self.coordinator.warmup):
                    # Steady-state window: drop the cold-start
                    # transient from the workflow histograms.
                    for hist in list(metrics.histograms()):
                        if hist.name.startswith("flow."):
                            hist.reset()
        elif obs is not None:
            obs.metrics.counter(f"flow.{status}").inc()
        self.counts[status] += 1
        self.resolved += 1
        if self.resolved > len(self.flow_requests):
            raise FlowError(
                "workflow request resolved twice: flow accounting is "
                "broken")
        if self.resolved == len(self.flow_requests):
            self.all_resolved.succeed()


class FlowCoordinator:
    """Executes a compiled workflow over an open-loop workload."""

    def __init__(self, workflow: CompiledWorkflow, *,
                 seed: int = 0,
                 queue_depth: Optional[int] = 64,
                 admission: str = REJECT_NEWEST,
                 max_wait_s: float = DEFAULT_MAX_WAIT_S,
                 policy: str = ROUND_ROBIN,
                 slo_seconds: Optional[float] = None,
                 deadline_seconds: Optional[float] = None,
                 max_redirects: int = 1,
                 ewma_alpha: float = 0.2,
                 warmup: int = 0,
                 obs=None) -> None:
        if not isinstance(workflow, CompiledWorkflow):
            raise FlowError(
                "FlowCoordinator needs a CompiledWorkflow (call "
                "compile_workflow first)")
        if not workflow.infer_steps():
            raise FlowError(
                f"workflow {workflow.name!r} has no model stages; "
                "nothing to serve")
        if admission not in ADMISSION_POLICIES:
            raise FlowError(
                f"unknown admission policy {admission!r}; one of "
                f"{ADMISSION_POLICIES}")
        if slo_seconds is not None and slo_seconds <= 0:
            raise FlowError(
                f"slo_seconds must be positive, got {slo_seconds}")
        if deadline_seconds is not None and deadline_seconds <= 0:
            raise FlowError(
                f"deadline_seconds must be positive, got "
                f"{deadline_seconds}")
        if warmup < 0:
            raise FlowError("warmup must be >= 0")
        self.workflow = workflow
        self.seed = int(seed)
        self.queue_depth = queue_depth
        self.admission = admission
        self.max_wait_s = max_wait_s
        self.policy = policy
        self.slo_seconds = slo_seconds
        self.deadline_seconds = deadline_seconds
        self.max_redirects = max_redirects
        self.ewma_alpha = ewma_alpha
        self.warmup = warmup
        self.obs = obs
        #: The last run's stage stacks, retained for inspection (the
        #: per-stage batching tests read batcher caps from here).
        self.stages: Dict[str, _Stage] = {}

    def run(self, workload: Workload, num_requests: int,
            payloads: Optional[list[Optional[np.ndarray]]] = None
            ) -> WorkflowResult:
        """Run *num_requests* workflow requests drawn from *workload*;
        blocks until every one resolves and returns the roll-up."""
        if num_requests < 1:
            raise FlowError(
                f"need at least one request, got {num_requests}")
        times = workload.arrival_times(num_requests)
        tensors: list[Optional[np.ndarray]]
        if payloads is None:
            tensors = [None] * num_requests
        else:
            tensors = list(payloads)
            if len(tensors) != num_requests:
                raise FlowError(
                    f"{len(tensors)} payloads for {num_requests} "
                    "requests")
        deadline = self.deadline_seconds
        flow_requests = [
            WorkflowRequest(request_id=i, arrival_time=t,
                            deadline_at=(t + deadline
                                         if deadline is not None
                                         else None))
            for i, t in enumerate(times)]

        env = Environment()
        if self.obs is not None:
            self.obs.attach(env)
        run = _FlowRun(self, env, flow_requests, tensors)

        def main() -> Generator[Event, None, tuple[float, float]]:
            obs = env.obs
            prep = None
            stages = list(run.stages.values())
            if obs is not None:
                prep = obs.tracer.begin(
                    "prepare", track="flow",
                    stages=len(stages),
                    backends=sum(len(s.targets) for s in stages))
            yield env.all_of([target.prepare(env)
                              for stage in stages
                              for target in stage.targets.values()])
            if obs is not None:
                obs.tracer.end(prep)
            t0 = env.now
            worker_procs = [proc for stage in stages
                            for proc in stage.router.start()]
            batcher_procs = [stage.batcher.run() for stage in stages]
            yield env.process(run.arrivals())
            yield run.all_resolved
            wall = env.now - t0
            # Orderly shutdown, stage by stage: all work is resolved,
            # so no poison pill can strand a request anywhere.
            for stage in stages:
                stage.queue.close()
            yield env.all_of(batcher_procs)
            for stage in stages:
                stage.router.close()
            yield env.all_of(worker_procs)
            return wall, t0

        wall, epoch = env.run(until=env.process(main()))
        self.stages = run.stages

        stages_out = [StageResult(name=name,
                                  result=run.stages[name].serve_result(
                                      wall, epoch))
                      for name in self.workflow.order
                      if name in run.stages]
        fan_out = [FanOutAccount(step=fo, join=acct.join,
                                 spawned=acct.spawned,
                                 joined=acct.joined,
                                 abandoned=acct.abandoned)
                   for fo, acct in run.fan_accounts.items()]
        return WorkflowResult(
            workflow=self.workflow.name,
            offered=len(flow_requests),
            completed=run.counts["completed"],
            shed=run.counts["shed"],
            rejected=run.counts["rejected"],
            timed_out=run.counts["timed_out"],
            abandoned=run.counts["abandoned"],
            wall_seconds=wall,
            prepare_seconds=epoch,
            slo_seconds=self.slo_seconds,
            requests=flow_requests,
            stages=stages_out,
            fan_out=fan_out,
            warmup=min(self.warmup, run.counts["completed"]),
        )
