"""Workflow accounting: per-stage ServeResults rolled into one SLO.

A workflow run is judged twice over.  Each model stage keeps its own
:class:`~repro.serve.slo.ServeResult` (queue waits, batch sizes, a
per-stage SLO), and the :class:`WorkflowResult` rolls them up into a
workflow-level view: end-to-end latency percentiles over whole
cascades, a workflow SLO, and goodput in *workflows* per second.

Two invariants are enforced in the constructor, mirroring
:class:`~repro.ncsw.pipeline.PipelineResult` and
:class:`~repro.cluster.frontend.ClusterResult`:

* **exactly-once at the workflow level** — every offered workflow
  request resolves into exactly one terminal state, crosschecked
  against the per-request status list;
* **exactly-once through every fan-out** — each region's spawned
  sub-requests are fully accounted: ``spawned = joined + abandoned``.

A completed request's ``stage_intervals`` tile its journey without
gaps — interval end times telescope exactly to the workflow
end-to-end latency — which is what makes the per-stage waterfall of a
cascade trustworthy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

import numpy as np

from repro.errors import FlowError
from repro.serve.slo import ServeResult
from repro.serve.workload import (
    ABANDONED,
    COMPLETED,
    PENDING,
    REJECTED,
    SHED,
    TIMED_OUT,
)


@dataclass
class WorkflowRequest:
    """One workflow request's journey through the whole graph."""

    request_id: int
    arrival_time: float
    #: Absolute deadline on the sim clock shared by every stage this
    #: request touches, or None for no limit.
    deadline_at: Optional[float] = None
    status: str = PENDING
    completed_at: Optional[float] = None
    #: The final item payload delivered at the sink (completed only).
    output: Any = field(repr=False, default=None)
    #: ``(stage, t0, t1)`` triples tiling arrival → completion; a
    #: fan-out region appears as one ``"fanout+join"`` interval.
    stage_intervals: list[tuple[str, float, float]] = field(
        default_factory=list)
    #: Causal trace context riding across every stage boundary.
    trace: Optional[object] = field(repr=False, default=None)

    @property
    def e2e_latency(self) -> Optional[float]:
        """Arrival-to-completion latency, or None if not completed."""
        if self.completed_at is None:
            return None
        return self.completed_at - self.arrival_time


@dataclass
class StageResult:
    """One model stage's serving outcome inside a workflow run."""

    name: str
    result: ServeResult


@dataclass
class FanOutAccount:
    """Exactly-once ledger of one fan-out region."""

    step: str
    join: str
    spawned: int
    joined: int
    abandoned: int


@dataclass
class WorkflowResult:
    """Outcome of one workflow run (the workflow-level roll-up)."""

    workflow: str
    offered: int
    completed: int
    shed: int
    rejected: int
    timed_out: int
    abandoned: int
    wall_seconds: float
    prepare_seconds: float = 0.0
    slo_seconds: Optional[float] = None
    requests: list[WorkflowRequest] = field(default_factory=list)
    stages: list[StageResult] = field(default_factory=list)
    fan_out: list[FanOutAccount] = field(default_factory=list)
    #: Leading completed workflows excluded from latency statistics.
    warmup: int = 0

    def __post_init__(self) -> None:
        accounted = (self.completed + self.shed + self.rejected
                     + self.timed_out + self.abandoned)
        if accounted != self.offered:
            raise FlowError(
                f"workflow accounting broken: {self.completed} "
                f"completed + {self.shed} shed + {self.rejected} "
                f"rejected + {self.timed_out} timed out + "
                f"{self.abandoned} abandoned != {self.offered} "
                "offered")
        if self.requests:
            by_status = {
                COMPLETED: self.completed, SHED: self.shed,
                REJECTED: self.rejected, TIMED_OUT: self.timed_out,
                ABANDONED: self.abandoned,
            }
            for status, expected in by_status.items():
                actual = sum(1 for r in self.requests
                             if r.status == status)
                if actual != expected:
                    raise FlowError(
                        f"{actual} workflow requests in state "
                        f"{status!r} but the tally says {expected}")
        for acct in self.fan_out:
            if acct.spawned != acct.joined + acct.abandoned:
                raise FlowError(
                    f"fan-out accounting broken at {acct.step!r}: "
                    f"{acct.spawned} spawned != {acct.joined} joined "
                    f"+ {acct.abandoned} abandoned")
        if self.warmup < 0:
            raise FlowError("warmup must be >= 0")

    # -- request views --------------------------------------------------
    def completed_requests(self) -> list[WorkflowRequest]:
        """Completed workflow requests in arrival order."""
        return [r for r in self.requests if r.status == COMPLETED]

    def _steady_state(self) -> list[WorkflowRequest]:
        """Completed requests past the warmup transient."""
        return self.completed_requests()[self.warmup:]

    def e2e_latencies(self) -> list[float]:
        """Whole-cascade latency per steady-state request."""
        return [r.e2e_latency for r in self._steady_state()
                if r.e2e_latency is not None]

    def stage(self, name: str) -> StageResult:
        """The stage roll-up for one model step."""
        for stage in self.stages:
            if stage.name == name:
                return stage
        raise FlowError(
            f"no stage {name!r} in this workflow result; stages: "
            f"{[s.name for s in self.stages]}")

    # -- percentiles ----------------------------------------------------
    def latency_percentile(self, q: float) -> float:
        """Workflow end-to-end latency percentile (q in [0, 100])."""
        latencies = self.e2e_latencies()
        if not latencies:
            raise ValueError(
                "no completed workflow requests past warmup: latency "
                "percentiles are undefined for this run")
        return float(np.percentile(latencies, q))

    @property
    def p50(self) -> float:
        """Median workflow end-to-end latency."""
        return self.latency_percentile(50)

    @property
    def p95(self) -> float:
        """95th-percentile workflow end-to-end latency."""
        return self.latency_percentile(95)

    @property
    def p99(self) -> float:
        """99th-percentile workflow end-to-end latency."""
        return self.latency_percentile(99)

    @property
    def mean_latency(self) -> float:
        """Mean workflow end-to-end latency."""
        latencies = self.e2e_latencies()
        if not latencies:
            raise ValueError(
                "no completed workflow requests past warmup: mean "
                "latency is undefined for this run")
        return float(np.mean(latencies))

    # -- rates ----------------------------------------------------------
    @property
    def throughput(self) -> float:
        """Completed workflows per second of wall time."""
        if self.wall_seconds <= 0:
            raise FlowError("run has no elapsed time")
        return self.completed / self.wall_seconds

    @property
    def slo_attainment(self) -> float:
        """Fraction of steady-state completed workflows within the
        workflow SLO (1.0 when no SLO or nothing completed)."""
        if self.slo_seconds is None:
            return 1.0
        latencies = self.e2e_latencies()
        if not latencies:
            return 1.0
        good = sum(1 for lat in latencies if lat <= self.slo_seconds)
        return good / len(latencies)

    @property
    def goodput(self) -> float:
        """Steady-state within-SLO completed workflows per second."""
        if self.wall_seconds <= 0:
            raise FlowError("run has no elapsed time")
        if self.slo_seconds is None:
            return self.throughput
        latencies = self.e2e_latencies()
        good = sum(1 for lat in latencies if lat <= self.slo_seconds)
        return good / self.wall_seconds

    @property
    def loss_rate(self) -> float:
        """Fraction of offered workflows that never completed."""
        if self.offered == 0:
            return 0.0
        return 1.0 - self.completed / self.offered

    @property
    def slo_met(self) -> bool:
        """True when p99 workflow latency is within the SLO and no
        workflow request was lost."""
        if self.slo_seconds is None:
            raise FlowError("run has no workflow SLO configured")
        if self.completed < self.offered:
            return False
        try:
            return self.p99 <= self.slo_seconds
        except ValueError:
            return False

    @property
    def sub_requests_spawned(self) -> int:
        """Total sub-requests spawned across every fan-out region."""
        return sum(a.spawned for a in self.fan_out)

    def summary(self) -> str:
        """One-line human-readable summary of the run."""
        head = (f"{self.workflow}: {self.completed}/{self.offered} "
                f"workflows in {self.wall_seconds:.2f} s")
        losses = []
        if self.shed:
            losses.append(f"{self.shed} shed")
        if self.rejected:
            losses.append(f"{self.rejected} rejected")
        if self.timed_out:
            losses.append(f"{self.timed_out} timed out")
        if self.abandoned:
            losses.append(f"{self.abandoned} abandoned")
        if losses:
            head += " (" + ", ".join(losses) + ")"
        try:
            tail = (f", p50 {self.p50 * 1000:.1f} ms / p99 "
                    f"{self.p99 * 1000:.1f} ms")
        except ValueError:
            return head + ", no completed workflows"
        if self.slo_seconds is not None:
            tail += (f", goodput {self.goodput:.1f} wf/s vs SLO "
                     f"{self.slo_seconds * 1000:.0f} ms "
                     f"({'met' if self.slo_met else 'MISSED'})")
        return head + tail
