"""Deterministic text report for one workflow run.

A pure function of the :class:`~repro.flow.result.WorkflowResult`:
same result, same bytes.  The report is the CLI's contract for the
byte-identical obs-off-vs-on check, so nothing here may depend on
whether observability was attached.
"""

from __future__ import annotations

from repro.flow.result import WorkflowResult


def render_workflow_report(result: WorkflowResult,
                           workload: str = "") -> str:
    """Render the workflow-level and per-stage accounting."""
    lines = [f"== workflow report: {result.workflow} =="]
    if workload:
        lines.append(f"workload        : {workload}")
    lines.append(f"offered         : {result.offered} workflow "
                 "requests")
    lines.append(f"completed       : {result.completed}")
    lines.append(f"shed            : {result.shed}")
    lines.append(f"rejected        : {result.rejected}")
    lines.append(f"timed out       : {result.timed_out}")
    lines.append(f"abandoned       : {result.abandoned}")
    lines.append(f"wall time       : {result.wall_seconds:.3f} s "
                 f"(prepare {result.prepare_seconds:.3f} s)")
    if result.warmup:
        lines.append(f"warmup          : first {result.warmup} "
                     "completed excluded from latency stats")

    latencies = result.e2e_latencies()
    if latencies:
        lines.append("workflow latency (e2e):")
        lines.append(
            f"  p50 {result.p50 * 1000:9.3f} ms   "
            f"p95 {result.p95 * 1000:9.3f} ms   "
            f"p99 {result.p99 * 1000:9.3f} ms   "
            f"mean {result.mean_latency * 1000:9.3f} ms")
    else:
        lines.append("workflow latency (e2e): no completed workflows")

    if result.stages:
        lines.append("per-stage serving:")
        lines.append(f"  {'stage':<14} {'offered':>7} {'done':>6} "
                     f"{'lost':>5} {'p50 ms':>9} {'p99 ms':>9} "
                     f"{'batch':>6}  stage SLO")
        for stage in result.stages:
            sr = stage.result
            lost = sr.offered - sr.completed
            try:
                p50 = f"{sr.p50 * 1000:9.3f}"
                p99 = f"{sr.p99 * 1000:9.3f}"
            except ValueError:
                p50 = f"{'-':>9}"
                p99 = f"{'-':>9}"
            sizes = [r.batch_size for r in sr.completed_requests()
                     if r.batch_size is not None]
            mean_batch = (f"{sum(sizes) / len(sizes):6.2f}"
                          if sizes else f"{'-':>6}")
            if sr.slo_seconds is None:
                slo = "-"
            else:
                slo = (f"{sr.slo_attainment:.1%} within "
                       f"{sr.slo_seconds * 1000:.0f} ms")
            lines.append(f"  {stage.name:<14} {sr.offered:>7} "
                         f"{sr.completed:>6} {lost:>5} {p50} {p99} "
                         f"{mean_batch}  {slo}")

    if result.fan_out:
        lines.append("fan-out accounting:")
        for acct in result.fan_out:
            lines.append(
                f"  {acct.step} .. {acct.join}: spawned "
                f"{acct.spawned} = joined {acct.joined} + abandoned "
                f"{acct.abandoned}")

    if result.slo_seconds is not None:
        verdict = "met" if (result.completed == result.offered
                            and latencies
                            and result.p99 <= result.slo_seconds) \
            else "MISSED"
        lines.append(
            f"workflow SLO    : p99 vs "
            f"{result.slo_seconds * 1000:.0f} ms -> {verdict} "
            f"(attainment {result.slo_attainment:.1%}, goodput "
            f"{result.goodput:.2f} wf/s)")
    lines.append(f"summary         : {result.summary()}")
    return "\n".join(lines)
