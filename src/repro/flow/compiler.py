"""Workflow compiler: spec → validated execution DAG.

A :class:`WorkflowSpec` is declarative — add steps, connect edges —
and :func:`compile_workflow` turns it into a :class:`CompiledWorkflow`
after proving the graph is executable:

* unique step names, edges between known steps, no duplicate edges;
* exactly one entry (no predecessors) and an acyclic graph with every
  step reachable from the entry;
* per-edge payload-type compatibility (``produces`` vs ``consumes``);
* out-degree rules per step kind: infer/transform/join feed at most
  one successor, an expand fan-out exactly one, a broadcast fan-out
  and a branch at least two;
* fan-out/join pairing: every path out of a fan-out reaches the same
  join before hitting another fan-out or a sink, and every join is
  the barrier of exactly one fan-out.

The compiled graph carries the topological ``order`` the engine walks
and ``groups`` — the parallelisable step levels (all steps in a group
have no mutual dependencies, so their stages overlap freely on the
simulated clock).  Compilation is deterministic: same spec, same
compiled graph, byte for byte in ``describe()``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple, Union

from repro.errors import FlowError
from repro.flow.steps import BranchStep, FanOutStep, InferStep, JoinStep, Step
from repro.flow.steps import compatible as _compatible


class WorkflowSpec:
    """Declarative workflow description: steps + edges."""

    def __init__(self, name: str) -> None:
        if not isinstance(name, str) or not name:
            raise FlowError(
                f"workflow needs a non-empty name, got {name!r}")
        self.name = name
        self._steps: Dict[str, Step] = {}
        self._edges: list[tuple[str, str]] = []

    def add(self, *steps: Step) -> "WorkflowSpec":
        """Register steps (chainable)."""
        for step in steps:
            if not isinstance(step, Step):
                raise FlowError(
                    f"workflow {self.name!r}: add() takes Step "
                    f"instances, got {step!r}")
            if step.name in self._steps:
                raise FlowError(
                    f"workflow {self.name!r}: duplicate step "
                    f"{step.name!r}")
            self._steps[step.name] = step
        return self

    def connect(self, src: Union[str, Step],
                dst: Union[str, Step]) -> "WorkflowSpec":
        """Add the edge src → dst (chainable; steps or names)."""
        a = src.name if isinstance(src, Step) else src
        b = dst.name if isinstance(dst, Step) else dst
        for end in (a, b):
            if end not in self._steps:
                raise FlowError(
                    f"workflow {self.name!r}: edge endpoint {end!r} "
                    "is not a registered step")
        if (a, b) in self._edges:
            raise FlowError(
                f"workflow {self.name!r}: duplicate edge {a!r} -> "
                f"{b!r}")
        if a == b:
            raise FlowError(
                f"workflow {self.name!r}: self-edge on {a!r}")
        self._edges.append((a, b))
        return self

    @property
    def steps(self) -> Dict[str, Step]:
        """Registered steps in insertion order."""
        return dict(self._steps)

    @property
    def edges(self) -> list[tuple[str, str]]:
        """Declared edges in insertion order."""
        return list(self._edges)


@dataclass(frozen=True)
class CompiledWorkflow:
    """An executable workflow DAG (output of :func:`compile_workflow`)."""

    name: str
    steps: Dict[str, Step]
    #: Deterministic topological order of step names.
    order: Tuple[str, ...]
    #: Parallelisable step groups: level k holds every step whose
    #: longest path from the entry has k edges — no step depends on a
    #: same-group peer, so their stages overlap freely.
    groups: Tuple[Tuple[str, ...], ...]
    succs: Dict[str, Tuple[str, ...]] = field(default_factory=dict)
    preds: Dict[str, Tuple[str, ...]] = field(default_factory=dict)
    entry: str = ""
    sinks: Tuple[str, ...] = ()
    #: Fan-out step name → the join step closing its region.
    join_of: Dict[str, str] = field(default_factory=dict)

    def infer_steps(self) -> list[InferStep]:
        """The model stages, in topological order."""
        return [s for n in self.order
                if isinstance((s := self.steps[n]), InferStep)]

    def describe(self) -> str:
        """Deterministic multi-line rendering of the compiled graph."""
        lines = [f"workflow {self.name}: {len(self.steps)} steps, "
                 f"{len(self.groups)} groups, entry {self.entry}"]
        for level, group in enumerate(self.groups):
            parts = [self.steps[n].describe() for n in group]
            lines.append(f"  group {level}: " + ", ".join(parts))
        for src in self.order:
            for dst in self.succs[src]:
                mark = ""
                if src in self.join_of and self.join_of[src] == dst:
                    mark = "  (barrier)"
                lines.append(f"    {src} -> {dst}{mark}")
        for fanout, join in self.join_of.items():
            lines.append(f"  fan-out region: {fanout} .. {join}")
        return "\n".join(lines)


def _check_out_degree(step: Step, succs: Tuple[str, ...],
                      name: str) -> None:
    n = len(succs)
    if isinstance(step, FanOutStep):
        if step.mode == "expand" and n != 1:
            raise FlowError(
                f"workflow {name!r}: expand fan-out {step.name!r} "
                f"needs exactly one successor, has {n}")
        if step.mode == "broadcast" and n < 2:
            raise FlowError(
                f"workflow {name!r}: broadcast fan-out {step.name!r} "
                f"needs >= 2 successors, has {n}")
    elif isinstance(step, BranchStep):
        if n < 2:
            raise FlowError(
                f"workflow {name!r}: branch {step.name!r} needs >= 2 "
                f"successors, has {n}")
    elif n > 1:
        raise FlowError(
            f"workflow {name!r}: {step.kind} step {step.name!r} may "
            f"feed at most one successor, has {n}")


def _pair_fanouts(name: str, steps: Dict[str, Step],
                  succs: Dict[str, Tuple[str, ...]]) -> Dict[str, str]:
    """Resolve each fan-out's join barrier, rejecting bad regions.

    A DFS from each fan-out follows every path until the first join.
    All paths must agree on that join; meeting another fan-out first
    means an (unsupported) nested region, and running off the graph's
    edge means sub-items would escape to a sink with no barrier to
    account for them.
    """
    join_of: Dict[str, str] = {}
    for fo_name, step in steps.items():
        if not isinstance(step, FanOutStep):
            continue
        found: set[str] = set()
        stack = list(succs[fo_name])
        seen: set[str] = set()
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            candidate = steps[node]
            if isinstance(candidate, JoinStep):
                found.add(node)
                continue  # region closed on this path
            if isinstance(candidate, FanOutStep):
                raise FlowError(
                    f"workflow {name!r}: fan-out {node!r} nested "
                    f"inside the region of {fo_name!r} before its "
                    "join (nested fan-out is not supported)")
            if not succs[node]:
                raise FlowError(
                    f"workflow {name!r}: path from fan-out "
                    f"{fo_name!r} reaches sink {node!r} without a "
                    "join barrier")
            stack.extend(succs[node])
        if len(found) != 1:
            raise FlowError(
                f"workflow {name!r}: fan-out {fo_name!r} must close "
                f"on exactly one join, found {sorted(found)}")
        join_of[fo_name] = found.pop()
    claimed: Dict[str, str] = {}
    for fo_name, join in join_of.items():
        if join in claimed:
            raise FlowError(
                f"workflow {name!r}: join {join!r} closes both "
                f"{claimed[join]!r} and {fo_name!r}; each join "
                "pairs with exactly one fan-out")
        claimed[join] = fo_name
    for jn, step in steps.items():
        if isinstance(step, JoinStep) and jn not in join_of.values():
            raise FlowError(
                f"workflow {name!r}: join {jn!r} is not the barrier "
                "of any fan-out")
    return join_of


def compile_workflow(spec: WorkflowSpec) -> CompiledWorkflow:
    """Validate *spec* and build its execution DAG."""
    steps = spec.steps
    if not steps:
        raise FlowError(f"workflow {spec.name!r} has no steps")
    succs: Dict[str, list[str]] = {n: [] for n in steps}
    preds: Dict[str, list[str]] = {n: [] for n in steps}
    for a, b in spec.edges:
        succs[a].append(b)
        preds[b].append(a)

    entries = [n for n in steps if not preds[n]]
    if len(entries) != 1:
        raise FlowError(
            f"workflow {spec.name!r} needs exactly one entry step "
            f"(no predecessors), found {entries}")
    entry = entries[0]
    if isinstance(steps[entry], JoinStep):
        raise FlowError(
            f"workflow {spec.name!r}: entry {entry!r} cannot be a "
            "join")

    # Kahn's algorithm over insertion order: deterministic topo sort,
    # and the leftover set names the cycle's members.
    indeg = {n: len(preds[n]) for n in steps}
    ready = [n for n in steps if indeg[n] == 0]
    order: list[str] = []
    while ready:
        node = ready.pop(0)
        order.append(node)
        for succ in succs[node]:
            indeg[succ] -= 1
            if indeg[succ] == 0:
                ready.append(succ)
    if len(order) != len(steps):
        cyclic = sorted(n for n in steps if n not in order)
        raise FlowError(
            f"workflow {spec.name!r} has a cycle through {cyclic}")

    reachable = {entry}
    frontier = [entry]
    while frontier:
        node = frontier.pop()
        for succ in succs[node]:
            if succ not in reachable:
                reachable.add(succ)
                frontier.append(succ)
    unreachable = sorted(n for n in steps if n not in reachable)
    if unreachable:
        raise FlowError(
            f"workflow {spec.name!r}: steps {unreachable} are not "
            f"reachable from the entry {entry!r}")

    for a, b in spec.edges:
        if not _compatible(steps[a], steps[b]):
            raise FlowError(
                f"workflow {spec.name!r}: edge {a!r} -> {b!r} is "
                f"type-incompatible ({steps[a].produces!r} does not "
                f"satisfy {steps[b].consumes!r})")
    for n, step in steps.items():
        _check_out_degree(step, tuple(succs[n]), spec.name)

    succs_t = {n: tuple(s) for n, s in succs.items()}
    join_of = _pair_fanouts(spec.name, steps, succs_t)

    # Parallelisable groups: longest-path level from the entry.
    level = {n: 0 for n in steps}
    for node in order:
        for succ in succs[node]:
            level[succ] = max(level[succ], level[node] + 1)
    groups: list[list[str]] = [[] for _ in range(max(level.values()) + 1)]
    for node in order:
        groups[level[node]].append(node)

    return CompiledWorkflow(
        name=spec.name,
        steps=steps,
        order=tuple(order),
        groups=tuple(tuple(g) for g in groups),
        succs=succs_t,
        preds={n: tuple(p) for n, p in preds.items()},
        entry=entry,
        sinks=tuple(n for n in order if not succs[n]),
        join_of=join_of,
    )
