"""Typed workflow steps: the vocabulary of multi-model pipelines.

A workflow is declared from five step kinds, each with a declared
payload type (``consumes``/``produces``) so the compiler can reject
mis-wired graphs before anything runs:

* :class:`InferStep` — a model stage served through its own admission
  queue + dynamic batcher + router, batching independently at its
  backend's ``preferred_batch_size``;
* :class:`TransformStep` — a pure 1→1 payload function with an
  optional fixed simulated cost;
* :class:`FanOutStep` — one item becomes K sub-items (*expand* mode:
  a function returns the sub-items, e.g. cropping detections) or one
  copy per successor (*broadcast* mode, e.g. an ensemble), always
  paired with a downstream :class:`JoinStep` barrier;
* :class:`BranchStep` — routes each item to exactly one of ≥2
  successors (conditional escalation);
* :class:`JoinStep` — the barrier closing a fan-out region: reduces
  the surviving sub-items (sorted by spawn index) back into one item.

Payloads travel as immutable :class:`Item`s.  Every user hook that
needs randomness (decode, fan-out, transform) receives a seeded
``numpy`` generator derived from (run seed, step name, item lineage),
so workflow runs replay byte-identically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional

import numpy as np

from repro.errors import FlowError
from repro.ncsw.targets import TargetDevice

#: Wildcard payload type: compatible with every declared type.
ANY = "any"


@dataclass(frozen=True)
class Item:
    """One unit of work flowing through the graph.

    ``data`` is the step-to-step payload (detections, a crop box, a
    label vote...); ``tensor`` is the optional image tensor handed to
    model stages.  Items are immutable — steps emit new ones.
    """

    data: Any = None
    tensor: Optional[np.ndarray] = field(repr=False, default=None)


def _check_type_token(kind: str, name: str, token: str,
                      what: str) -> str:
    if not isinstance(token, str) or not token:
        raise FlowError(
            f"{kind} step {name!r}: {what} must be a non-empty "
            f"string, got {token!r}")
    return token


class Step:
    """Base class: a named node with declared payload types."""

    kind = "step"

    def __init__(self, name: str,
                 consumes: tuple[str, ...] = (ANY,),
                 produces: str = ANY) -> None:
        if not isinstance(name, str) or not name:
            raise FlowError(
                f"{self.kind} step needs a non-empty name, got "
                f"{name!r}")
        if any(c.isspace() for c in name) or "+" in name:
            raise FlowError(
                f"step name {name!r} may not contain whitespace or "
                "'+' (reserved for fan-out interval labels)")
        if isinstance(consumes, str):
            consumes = (consumes,)
        consumed = tuple(consumes)
        if not consumed:
            raise FlowError(
                f"{self.kind} step {name!r} must consume at least "
                "one payload type")
        for token in consumed:
            _check_type_token(self.kind, name, token, "consumes")
        self.name = name
        self.consumes = consumed
        self.produces = _check_type_token(self.kind, name, produces,
                                          "produces")

    def describe(self) -> str:
        """One-line description for compiled-graph listings."""
        return f"{self.name} [{self.kind}]"

    def __repr__(self) -> str:
        return (f"{type(self).__name__}({self.name!r}, "
                f"consumes={self.consumes!r}, "
                f"produces={self.produces!r})")


class InferStep(Step):
    """A model stage served through its own serve stack.

    ``targets`` is a zero-argument factory returning named
    :class:`~repro.ncsw.targets.TargetDevice` instances — a factory,
    not instances, because devices are stateful and each run needs a
    fresh set.  ``decode`` turns the backend's
    :class:`~repro.ncsw.results.InferenceRecord` into the item's new
    payload: ``decode(record, item, rng) -> data``.  The record's
    prediction fields may be ``None`` in timing-only mode, so decode
    hooks fall back to draws from the seeded ``rng``.

    The stage's batcher caps windows at ``max_batch_size`` when given;
    when ``None`` (the default) it asks the stage's own router for the
    next backend's ``preferred_batch_size`` — a VPU stage batches at
    its stick count while a CPU/GPU stage batches at 16, each
    independently.  ``queue_depth``/``max_wait_s`` default to the
    coordinator's settings; ``slo_seconds`` is this stage's own
    latency objective inside the workflow SLO roll-up.
    """

    kind = "infer"

    def __init__(self, name: str,
                 targets: Callable[[], Dict[str, TargetDevice]], *,
                 decode: Optional[Callable[..., Any]] = None,
                 consumes: tuple[str, ...] = (ANY,),
                 produces: str = ANY,
                 slo_seconds: Optional[float] = None,
                 queue_depth: Optional[int] = None,
                 max_batch_size: Optional[int] = None,
                 max_wait_s: Optional[float] = None) -> None:
        super().__init__(name, consumes, produces)
        if not callable(targets):
            raise FlowError(
                f"infer step {name!r}: targets must be a zero-arg "
                "factory returning named TargetDevice instances")
        if decode is not None and not callable(decode):
            raise FlowError(f"infer step {name!r}: decode must be "
                            "callable")
        if slo_seconds is not None and slo_seconds <= 0:
            raise FlowError(
                f"infer step {name!r}: slo_seconds must be positive, "
                f"got {slo_seconds}")
        if queue_depth is not None and queue_depth < 1:
            raise FlowError(
                f"infer step {name!r}: queue_depth must be >= 1, got "
                f"{queue_depth}")
        if max_batch_size is not None and max_batch_size < 1:
            raise FlowError(
                f"infer step {name!r}: max_batch_size must be >= 1, "
                f"got {max_batch_size}")
        if max_wait_s is not None and max_wait_s < 0:
            raise FlowError(
                f"infer step {name!r}: max_wait_s must be >= 0, got "
                f"{max_wait_s}")
        self.targets = targets
        self.decode = decode
        self.slo_seconds = slo_seconds
        self.queue_depth = queue_depth
        self.max_batch_size = max_batch_size
        self.max_wait_s = max_wait_s

    def make_targets(self) -> Dict[str, TargetDevice]:
        """Instantiate a fresh, validated target set for one run."""
        targets = self.targets()
        if (not isinstance(targets, dict) or not targets
                or not all(isinstance(t, TargetDevice)
                           for t in targets.values())):
            raise FlowError(
                f"infer step {self.name!r}: targets factory must "
                "return a non-empty dict of name -> TargetDevice, "
                f"got {targets!r}")
        return targets


class TransformStep(Step):
    """A pure 1→1 payload function: ``fn(data, rng) -> data``.

    ``cost_s`` models host-side work (image decode, NMS...) as a fixed
    simulated delay; zero-cost transforms run at an instant.
    """

    kind = "transform"

    def __init__(self, name: str, fn: Callable[..., Any], *,
                 consumes: tuple[str, ...] = (ANY,),
                 produces: str = ANY,
                 cost_s: float = 0.0) -> None:
        super().__init__(name, consumes, produces)
        if not callable(fn):
            raise FlowError(f"transform step {name!r}: fn must be "
                            "callable")
        if cost_s < 0:
            raise FlowError(
                f"transform step {name!r}: cost_s must be >= 0, got "
                f"{cost_s}")
        self.fn = fn
        self.cost_s = float(cost_s)


class FanOutStep(Step):
    """One item becomes K sub-items behind a join barrier.

    *Expand* mode (``fn`` given): ``fn(item, rng) -> list[Item]``
    produces the sub-items — e.g. cropping each detection into a
    classify sub-request — and the step must have exactly one
    successor.  *Broadcast* mode (``fn`` omitted): each of the step's
    ≥2 successors receives a copy of the item (ensemble voting).

    Every path out of a fan-out must reach the same downstream
    :class:`JoinStep` (the compiler enforces the pairing); the join
    barrier accounts every spawned sub-item as joined or abandoned.
    """

    kind = "fan-out"

    def __init__(self, name: str,
                 fn: Optional[Callable[..., list[Item]]] = None, *,
                 consumes: tuple[str, ...] = (ANY,),
                 produces: str = ANY) -> None:
        super().__init__(name, consumes, produces)
        if fn is not None and not callable(fn):
            raise FlowError(f"fan-out step {name!r}: fn must be "
                            "callable or None")
        self.fn = fn

    @property
    def mode(self) -> str:
        """``expand`` (fn spawns sub-items) or ``broadcast``."""
        return "expand" if self.fn is not None else "broadcast"

    def describe(self) -> str:
        return f"{self.name} [fan-out/{self.mode}]"


class BranchStep(Step):
    """Routes each item to exactly one of ≥2 successors.

    ``route(data) -> str`` names the successor; the engine checks the
    choice against the compiled edge set at runtime.  The item passes
    through unchanged (``produces`` defaults to the wildcard so the
    declared types of the successors govern compatibility).
    """

    kind = "branch"

    def __init__(self, name: str, route: Callable[[Any], str], *,
                 consumes: tuple[str, ...] = (ANY,),
                 produces: str = ANY) -> None:
        super().__init__(name, consumes, produces)
        if not callable(route):
            raise FlowError(f"branch step {name!r}: route must be "
                            "callable")
        self.route = route


class JoinStep(Step):
    """The barrier closing a fan-out region.

    Waits until every sub-item spawned by the paired fan-out has
    either arrived or been abandoned, then reduces the survivors —
    ``reduce(datas) -> data`` over payloads sorted by spawn index —
    back into the original item's continuation.  ``reduce`` must
    accept an empty list (an expand fan-out may legitimately spawn
    zero sub-items).  ``cost_s`` models aggregation work.
    """

    kind = "join"

    def __init__(self, name: str, reduce: Callable[[list], Any], *,
                 consumes: tuple[str, ...] = (ANY,),
                 produces: str = ANY,
                 cost_s: float = 0.0) -> None:
        super().__init__(name, consumes, produces)
        if not callable(reduce):
            raise FlowError(f"join step {name!r}: reduce must be "
                            "callable")
        if cost_s < 0:
            raise FlowError(
                f"join step {name!r}: cost_s must be >= 0, got "
                f"{cost_s}")
        self.reduce = reduce
        self.cost_s = float(cost_s)


def compatible(src: Step, dst: Step) -> bool:
    """Whether *src*'s produced payload satisfies *dst*'s input."""
    return (src.produces == ANY or ANY in dst.consumes
            or src.produces in dst.consumes)
