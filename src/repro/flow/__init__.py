"""repro.flow: a workflow DAG engine for multi-model vision pipelines.

Every earlier scenario is "one image → one network forward"; real
vision traffic is detect→crop→classify→aggregate *chains*.  This
package adds the missing pipeline abstraction in three layers:

* :mod:`repro.flow.steps` — typed step definitions: model inference,
  1→1 transforms, crop/fan-out, conditional branches, join barriers;
* :mod:`repro.flow.compiler` — validates a :class:`WorkflowSpec` and
  compiles it into an execution DAG with parallelisable step groups
  and fan-out/join pairing;
* :mod:`repro.flow.engine` — a :class:`FlowCoordinator` that walks the
  compiled graph, running every model stage through its own serving
  stack (admission queue + dynamic batcher + router) so each stage
  batches independently at its backend's preferred batch size.

Per-stage :class:`~repro.serve.slo.ServeResult`s roll up into a
:class:`WorkflowResult` under an exactly-once invariant (fan-out
accounted: spawned = joined + abandoned), and built-in workflows
(cascade, ensemble vote, confidence-gated escalation) live in
:mod:`repro.flow.library`.
"""

from repro.flow.compiler import (CompiledWorkflow, WorkflowSpec,
                                 compile_workflow)
from repro.flow.engine import FlowCoordinator
from repro.flow.library import WORKFLOWS, build_workflow
from repro.flow.report import render_workflow_report
from repro.flow.result import (FanOutAccount, StageResult,
                               WorkflowRequest, WorkflowResult)
from repro.flow.steps import (ANY, BranchStep, FanOutStep, InferStep,
                              Item, JoinStep, Step, TransformStep)

__all__ = [
    "ANY",
    "BranchStep",
    "CompiledWorkflow",
    "FanOutAccount",
    "FanOutStep",
    "FlowCoordinator",
    "InferStep",
    "Item",
    "JoinStep",
    "StageResult",
    "Step",
    "TransformStep",
    "WORKFLOWS",
    "WorkflowRequest",
    "WorkflowResult",
    "WorkflowSpec",
    "build_workflow",
    "compile_workflow",
    "render_workflow_report",
]
