"""Built-in workflows: cascade, ensemble vote, gated escalation.

Three pipelines exercise every step kind against the paper's device
classes, plus the monolithic baseline the sweep compares against:

* ``cascade`` — detect (TinyDet on a VPU rig) → crop each detection
  into a classify sub-request (fan-out) → classify (GoogLeNet on the
  CPU) → aggregate the labels (join).  The canonical multi-phase
  pipeline: a VPU stage batching at stick count feeding a host stage
  batching at 16.
* ``ensemble`` — broadcast each request to GoogLeNet-on-VPU and
  AlexNet-on-CPU, then majority-vote the two labels at the join.
* ``escalate`` — GoogLeNet on the VPU first (FP16, the sticks' native
  precision); a branch escalates low-confidence results to the FP32
  CPU path and accepts the rest (the paper's precision split turned
  into a conditional pipeline).
* ``monolithic`` — one GoogLeNet classify stage, the baseline for the
  cascade-vs-monolith sweep.

Targets run ``functional=False`` (timing-only): stage latencies come
from the full device models while decode hooks draw deterministic
predictions from per-item seeded RNGs — the serving records carry
class summaries, not raw activations, so the detect stage always uses
the :func:`~repro.nn.tinydet.seeded_detections` oracle.  Compiled VPU
graphs are cached per model so sweeps do not recompile per run.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Any, Callable, Dict, Optional

import numpy as np

from repro.errors import FlowError
from repro.flow.compiler import (CompiledWorkflow, WorkflowSpec,
                                 compile_workflow)
from repro.flow.steps import (BranchStep, FanOutStep, InferStep, Item,
                              JoinStep, TransformStep)
from repro.ncsw.targets import IntelCPU, IntelVPU, TargetDevice
from repro.nn.graph import Network
from repro.nn.tinydet import seeded_detections
from repro.nn.zoo import get_model, model_entry
from repro.vpu.compiler.compile import CompiledGraph, compile_graph

#: Scale presets: which zoo models each built-in workflow uses.
SCALES = {
    "micro": {"detect": "tinydet-micro", "classify": "googlenet-micro",
              "alt": "alexnet-mini", "classes": 10},
    "mini": {"detect": "tinydet", "classify": "googlenet-mini",
             "alt": "alexnet-mini", "classes": 50},
}


@lru_cache(maxsize=None)
def _network(model: str) -> Network:
    """One shared (read-only) network instance per zoo model."""
    return get_model(model)


@lru_cache(maxsize=None)
def _compiled(model: str) -> CompiledGraph:
    """Compile a zoo model for the VPU once per process."""
    return compile_graph(_network(model))


def _scale(scale: str) -> Dict[str, Any]:
    if scale not in SCALES:
        raise FlowError(
            f"unknown workflow scale {scale!r}; one of "
            f"{sorted(SCALES)}")
    return SCALES[scale]


def _vpu_targets(model: str, devices: int
                 ) -> Callable[[], Dict[str, TargetDevice]]:
    graph = _compiled(model)  # compile outside the factory: cached
    return lambda: {"vpu": IntelVPU(graph=graph, num_devices=devices,
                                    functional=False)}


def _cpu_targets(model: str) -> Callable[[], Dict[str, TargetDevice]]:
    network = _network(model)
    return lambda: {"cpu": IntelCPU(network, functional=False)}


# -- decode hooks (deterministic, timing-only friendly) -----------------
def _decode_detections(num_boxes: int, input_size: int):
    """Detect decode: the seeded oracle (records carry no raw boxes)."""
    def decode(record: Any, item: Item,
               rng: np.random.Generator) -> Any:
        return seeded_detections(rng, num_boxes, input_size)
    return decode


def _decode_label(num_classes: int, floor: float = 0.5):
    """Classify decode: real prediction when present, else seeded."""
    def decode(record: Any, item: Item,
               rng: np.random.Generator) -> Any:
        if record is not None and record.predicted is not None:
            return {"label": int(record.predicted),
                    "confidence": float(record.confidence)}
        return {"label": int(rng.integers(num_classes)),
                "confidence": float(rng.uniform(floor, 1.0))}
    return decode


def _crop_detections(max_crops: int):
    """Fan-out fn: top-K detections become K classify sub-items."""
    def crop(item: Item, rng: np.random.Generator) -> list[Item]:
        boxes = item.data or []
        return [Item(data=box, tensor=item.tensor)
                for box in boxes[:max_crops]]
    return crop


def _aggregate_labels(votes: list) -> Any:
    """Join reduce: per-crop labels -> highest-confidence verdict."""
    if not votes:
        return {"labels": (), "top": None}
    best = max(votes, key=lambda v: (v["confidence"], -v["label"]))
    return {"labels": tuple(v["label"] for v in votes),
            "top": best["label"]}


def _majority_vote(votes: list) -> Any:
    """Join reduce: ensemble members -> agreed or most-confident."""
    if not votes:
        return {"label": None, "agreed": False}
    labels = [v["label"] for v in votes]
    agreed = len(set(labels)) == 1
    best = max(votes, key=lambda v: (v["confidence"], -v["label"]))
    return {"label": labels[0] if agreed else best["label"],
            "agreed": agreed}


# -- built-in workflows -------------------------------------------------
def cascade_workflow(scale: str = "micro", *, vpu_devices: int = 4,
                     max_crops: int = 3,
                     stage_slo_seconds: Optional[float] = None
                     ) -> CompiledWorkflow:
    """detect → crop (fan-out) → classify → aggregate (join)."""
    cfg = _scale(scale)
    det_entry = model_entry(cfg["detect"])
    det_cfg = det_entry.config
    spec = WorkflowSpec(f"cascade-{scale}")
    spec.add(
        InferStep("detect",
                  targets=_vpu_targets(cfg["detect"], vpu_devices),
                  decode=_decode_detections(det_cfg.num_boxes,
                                            det_cfg.input_size),
                  produces="detections",
                  slo_seconds=stage_slo_seconds),
        FanOutStep("crop", fn=_crop_detections(max_crops),
                   consumes=("detections",), produces="crop"),
        InferStep("classify", targets=_cpu_targets(cfg["classify"]),
                  decode=_decode_label(cfg["classes"]),
                  consumes=("crop",), produces="vote",
                  slo_seconds=stage_slo_seconds),
        JoinStep("aggregate", reduce=_aggregate_labels,
                 consumes=("vote",), produces="verdict"),
    )
    spec.connect("detect", "crop")
    spec.connect("crop", "classify")
    spec.connect("classify", "aggregate")
    return compile_workflow(spec)


def ensemble_workflow(scale: str = "micro", *, vpu_devices: int = 4
                      ) -> CompiledWorkflow:
    """Broadcast to two model classes, majority-vote at the join."""
    cfg = _scale(scale)
    spec = WorkflowSpec(f"ensemble-{scale}")
    spec.add(
        FanOutStep("replicate", produces="image"),
        InferStep("classify-vpu",
                  targets=_vpu_targets(cfg["classify"], vpu_devices),
                  decode=_decode_label(cfg["classes"]),
                  consumes=("image",), produces="vote"),
        InferStep("classify-cpu", targets=_cpu_targets(cfg["alt"]),
                  decode=_decode_label(cfg["classes"]),
                  consumes=("image",), produces="vote"),
        JoinStep("vote", reduce=_majority_vote, consumes=("vote",),
                 produces="verdict"),
    )
    spec.connect("replicate", "classify-vpu")
    spec.connect("replicate", "classify-cpu")
    spec.connect("classify-vpu", "vote")
    spec.connect("classify-cpu", "vote")
    return compile_workflow(spec)


def escalation_workflow(scale: str = "micro", *,
                        vpu_devices: int = 4,
                        threshold: float = 0.8) -> CompiledWorkflow:
    """FP16 VPU classify; low confidence escalates to FP32 CPU.

    The sticks run FP16 natively and the Caffe hosts FP32 (paper
    §II); the branch turns that precision split into a conditional
    pipeline: accept confident FP16 answers, re-run the rest at FP32.
    """
    if not 0.0 < threshold < 1.0:
        raise FlowError(
            f"threshold must be in (0, 1), got {threshold}")
    cfg = _scale(scale)

    def gate(data: Any) -> str:
        return ("accept" if data["confidence"] >= threshold
                else "classify-fp32")

    spec = WorkflowSpec(f"escalate-{scale}")
    spec.add(
        InferStep("classify-fp16",
                  targets=_vpu_targets(cfg["classify"], vpu_devices),
                  decode=_decode_label(cfg["classes"], floor=0.5),
                  produces="vote"),
        BranchStep("gate", route=gate, consumes=("vote",),
                   produces="vote"),
        TransformStep("accept", fn=lambda data, rng: data,
                      consumes=("vote",), produces="verdict"),
        InferStep("classify-fp32",
                  targets=_cpu_targets(cfg["classify"]),
                  decode=_decode_label(cfg["classes"], floor=0.8),
                  consumes=("vote",), produces="verdict"),
    )
    spec.connect("classify-fp16", "gate")
    spec.connect("gate", "accept")
    spec.connect("gate", "classify-fp32")
    return compile_workflow(spec)


def monolithic_workflow(scale: str = "micro", *, vpu_devices: int = 4
                        ) -> CompiledWorkflow:
    """One classify stage: the cascade's single-model baseline."""
    cfg = _scale(scale)
    spec = WorkflowSpec(f"monolithic-{scale}")
    spec.add(InferStep(
        "classify",
        targets=_vpu_targets(cfg["classify"], vpu_devices),
        decode=_decode_label(cfg["classes"]),
        produces="verdict"))
    return compile_workflow(spec)


WORKFLOWS: Dict[str, Callable[..., CompiledWorkflow]] = {
    "cascade": cascade_workflow,
    "ensemble": ensemble_workflow,
    "escalate": escalation_workflow,
    "monolithic": monolithic_workflow,
}


def build_workflow(name: str, scale: str = "micro",
                   **kwargs: Any) -> CompiledWorkflow:
    """Build a built-in workflow by name."""
    if name not in WORKFLOWS:
        raise FlowError(
            f"unknown workflow {name!r}; one of {sorted(WORKFLOWS)}")
    return WORKFLOWS[name](scale, **kwargs)
