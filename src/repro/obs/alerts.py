"""SLO burn-rate alerting and anomaly flags over the timeline.

The SRE playbook's multi-window burn-rate alert, transplanted onto
the simulated clock: the *burn rate* is how fast the run is spending
its error budget (``1 - target`` of requests may miss the SLO or
drop); an alert fires only when **both** a fast and a slow trailing
window burn faster than the threshold.  The fast window catches the
onset quickly, the slow window suppresses one-bad-batch blips — so
the alert fires during an injected overload and stays silent on a
healthy baseline, which is exactly the pair of properties the tests
pin.

Two anomaly flags ride along, both reading the same windowed
timeline the burn-rate does:

* **queue-depth slope** — a sustained linear climb in any
  ``*.queue_depth`` gauge (the classic "arrival rate > service rate"
  signature, visible windows before latency percentiles blow up);
* **dead-rank gap** — a cluster host whose ``rank<N>.completed``
  events stop while other ranks keep completing (detected from the
  metrics alone, no failure event needed — that is the point of a
  detector);
* **flapping** — rapid scale direction reversals from the autoscaler
  (from the run's scale events, or offline from the
  ``cluster.live_hosts`` timeline gauge).

Everything is a pure function of recorded data: deterministic,
byte-identical across same-seed runs, and equally usable online (on
the live session) or offline (on a ``trace-analyze`` reload).
"""

from __future__ import annotations

import bisect
import re
from dataclasses import dataclass
from typing import Any, Optional

from repro.errors import ObservabilityError

#: Request terminal states that consume error budget.
_COMPLETED = "completed"

_RANK_COMPLETED_RE = re.compile(r"^rank(\d+)\.completed$")
_QUEUE_DEPTH_RE = re.compile(r"\.queue_depth$")


@dataclass(frozen=True)
class BurnRatePolicy:
    """One fast+slow window pair over an SLO error budget."""

    target: float = 0.99        #: SLO attainment objective.
    fast_s: float = 0.05        #: fast trailing window (seconds).
    slow_s: float = 0.25        #: slow trailing window (seconds).
    threshold: float = 14.4     #: burn-rate multiple that pages.

    def __post_init__(self) -> None:
        if not 0.0 < self.target < 1.0:
            raise ObservabilityError(
                f"target must be in (0, 1), got {self.target}")
        if self.fast_s <= 0 or self.slow_s < self.fast_s:
            raise ObservabilityError(
                f"need 0 < fast_s <= slow_s, got {self.fast_s}/"
                f"{self.slow_s}")
        if self.threshold <= 0:
            raise ObservabilityError(
                f"threshold must be positive, got {self.threshold}")

    @property
    def budget(self) -> float:
        """The error budget: allowed fraction of bad requests."""
        return 1.0 - self.target


def default_policy(wall_seconds: float) -> BurnRatePolicy:
    """Window pair scaled to one run: fast = wall/20, slow = wall/5.

    Real deployments pin windows to wall-clock minutes/hours; a
    simulated run's natural unit is its own duration.  The 1:5 ratio
    and the 14.4x threshold mirror the SRE workbook's page-severity
    tier.
    """
    wall = max(wall_seconds, 1e-9)
    return BurnRatePolicy(fast_s=wall / 20.0, slow_s=wall / 5.0)


@dataclass
class Alert:
    """One detection, with enough context to render deterministically."""

    kind: str        #: ``burn-rate`` | ``queue-slope`` | ``dead-rank``
    at: float        #: detection time (seconds on the sim clock)
    until: float     #: end of the firing interval
    metric: str      #: what was watched
    detail: str      #: human-readable specifics


def request_outcomes(requests: list[Any],
                     slo_seconds: Optional[float]
                     ) -> list[tuple[float, bool]]:
    """Per-request ``(resolve_time, good)`` pairs, time-ordered.

    Good means completed within the SLO; every drop (shed, rejected,
    timed out, abandoned) and every SLO miss consumes budget.  The
    resolve time is the last lifecycle stamp the request reached —
    a rejected request resolves at arrival, a timed-out one at
    dequeue.  Unresolved (pending) requests are excluded.
    """
    outcomes: list[tuple[float, bool]] = []
    for req in requests:
        if req.status == "pending":
            continue
        t = req.completed_at
        for stamp in (req.dispatched_at, req.dequeued_at,
                      req.admitted_at, req.arrival_time):
            if t is not None:
                break
            t = stamp
        good = (req.status == _COMPLETED
                and (slo_seconds is None
                     or req.e2e_latency <= slo_seconds))
        outcomes.append((float(t), good))
    outcomes.sort(key=lambda pair: pair[0])
    return outcomes


def outcomes_from_traces(reqtrace: Any, slo_seconds: Optional[float]
                         ) -> list[tuple[float, bool]]:
    """Outcome pairs recovered from sampled request traces alone —
    the offline (``trace-analyze``) twin of :func:`request_outcomes`."""
    outcomes: list[tuple[float, bool]] = []
    for trace in reqtrace.traces():
        stage = trace.terminal_stage
        if stage is None or not trace.hops:
            continue
        good = (stage == _COMPLETED
                and (slo_seconds is None
                     or trace.end - trace.start <= slo_seconds))
        outcomes.append((trace.end, good))
    outcomes.sort(key=lambda pair: pair[0])
    return outcomes


def burn_rate_alerts(outcomes: list[tuple[float, bool]],
                     end: float,
                     policy: BurnRatePolicy) -> list[Alert]:
    """Multi-window burn-rate detection over outcome events.

    Evaluates at every fast-window boundary: the burn rate of a
    trailing window is its bad fraction divided by the error budget;
    a step fires when both the fast and the slow window exceed the
    threshold.  Consecutive firing steps merge into one alert.
    """
    if not outcomes:
        return []
    times = [t for t, _ in outcomes]
    bads = [0.0]
    totals = [0.0]
    for _, good in outcomes:
        bads.append(bads[-1] + (0.0 if good else 1.0))
        totals.append(totals[-1] + 1.0)

    def burn(t0: float, t1: float) -> float:
        lo = bisect.bisect_left(times, t0)
        hi = bisect.bisect_right(times, t1)
        total = totals[hi] - totals[lo]
        if total == 0:
            return 0.0
        bad = bads[hi] - bads[lo]
        return (bad / total) / policy.budget

    firing: list[tuple[float, float, float]] = []
    step = policy.fast_s
    t = step
    while t <= end + step * 1e-9:
        fast = burn(t - policy.fast_s, t)
        slow = burn(max(0.0, t - policy.slow_s), t)
        if fast >= policy.threshold and slow >= policy.threshold:
            firing.append((t, fast, slow))
        t += step

    alerts: list[Alert] = []
    for t, fast, slow in firing:
        if alerts and t - alerts[-1].until <= step * (1 + 1e-9):
            prev = alerts[-1]
            prev.until = t
            prev.detail = (
                f"budget burning {fast:.1f}x (fast) / {slow:.1f}x "
                f"(slow) at t={t:.3f}s; threshold "
                f"{policy.threshold:.1f}x of a {policy.budget:.1%} "
                "budget")
        else:
            alerts.append(Alert(
                kind="burn-rate", at=t, until=t, metric="slo_burn",
                detail=(f"budget burning {fast:.1f}x (fast) / "
                        f"{slow:.1f}x (slow) at t={t:.3f}s; threshold "
                        f"{policy.threshold:.1f}x of a "
                        f"{policy.budget:.1%} budget")))
    return alerts


def queue_slope_alerts(session: Any, width: float,
                       end: Optional[float] = None,
                       min_windows: int = 3,
                       min_slope: float = 1.0,
                       min_depth: float = 4.0) -> list[Alert]:
    """Flag sustained queue-depth growth in any ``*.queue_depth``
    gauge: at least *min_windows* consecutive non-decreasing windowed
    means climbing at ``>= min_slope`` items/second, ending at a depth
    of at least *min_depth* (filters idle-queue noise)."""
    from repro.obs.timeline import timeline_rows

    rows = [r for r in timeline_rows(session, width, end=end)
            if r["kind"] == "gauge"
            and _QUEUE_DEPTH_RE.search(r["metric"])
            and r["mean"] is not None]
    by_metric: dict[str, list[dict[str, Any]]] = {}
    for row in rows:
        by_metric.setdefault(row["metric"], []).append(row)
    alerts: list[Alert] = []
    for name in sorted(by_metric):
        group = sorted(by_metric[name], key=lambda r: r["window"])
        run_start = 0
        for i in range(1, len(group) + 1):
            climbing = (i < len(group)
                        and group[i]["mean"] >= group[i - 1]["mean"])
            if climbing:
                continue
            length = i - run_start
            if length >= min_windows:
                first, last = group[run_start], group[i - 1]
                dt = last["t1"] - first["t0"]
                slope = ((last["mean"] - first["mean"]) / dt
                         if dt > 0 else 0.0)
                if slope >= min_slope and last["mean"] >= min_depth:
                    alerts.append(Alert(
                        kind="queue-slope", at=first["t0"],
                        until=last["t1"], metric=name,
                        detail=(f"depth climbing {slope:.1f}/s over "
                                f"{length} windows "
                                f"({first['mean']:.1f} -> "
                                f"{last['mean']:.1f})")))
            run_start = i
    return alerts


def dead_rank_alerts(session: Any,
                     gap_factor: float = 4.0,
                     min_completions: int = 4) -> list[Alert]:
    """Detect ranks whose completions stopped early, from the
    timeline alone.

    A rank is flagged when its last ``rank<N>.completed`` event
    precedes the cluster's last completion by more than *gap_factor*
    times the rank's own median completion gap — i.e. the rank went
    quiet while the cluster kept serving.  Ranks with fewer than
    *min_completions* events are skipped (no gap statistics).
    """
    timeline = session.timeline
    per_rank: dict[int, list[float]] = {}
    for name, events in timeline.counter_events.items():
        match = _RANK_COMPLETED_RE.match(name)
        if match is None or not events:
            continue
        per_rank[int(match.group(1))] = [t for t, _ in events]
    if len(per_rank) < 2:
        return []
    cluster_last = max(times[-1] for times in per_rank.values())
    alerts: list[Alert] = []
    for rank in sorted(per_rank):
        times = per_rank[rank]
        if len(times) < min_completions:
            continue
        gaps = sorted(b - a for a, b in zip(times, times[1:]))
        median_gap = gaps[len(gaps) // 2]
        silence = cluster_last - times[-1]
        if median_gap > 0 and silence > gap_factor * median_gap:
            alerts.append(Alert(
                kind="dead-rank", at=times[-1], until=cluster_last,
                metric=f"rank{rank}.completed",
                detail=(f"rank {rank} completions stopped at "
                        f"t={times[-1]:.3f}s; cluster kept serving "
                        f"for {silence * 1000:.1f} ms "
                        f"({silence / median_gap:.0f}x the rank's "
                        "median completion gap)")))
    return alerts


def flapping_alerts(source: Any, window_s: float = 1.0,
                    min_flips: int = 3) -> list[Alert]:
    """Detect autoscaler flapping: rapid scale direction reversals.

    A *flip* is a scale action whose direction (out vs in) reverses
    the previous action's; an alert fires when at least *min_flips*
    flips land inside any *window_s*-wide sliding window — the
    signature of a policy whose hysteresis band or cooldown is too
    tight, thrashing hosts in and out of the ring.

    *source* may be a :class:`~repro.cluster.result.ClusterResult`
    (its ``scale_events``), a plain list of scale events, or an
    observability session — in that case the direction changes are
    recovered from the ``cluster.live_hosts`` timeline gauge alone,
    the detector's offline twin.
    """
    if window_s <= 0:
        raise ObservabilityError(
            f"window_s must be positive, got {window_s}")
    if min_flips < 1:
        raise ObservabilityError(
            f"min_flips must be >= 1, got {min_flips}")
    steps: list[tuple[float, int]] = []
    if hasattr(source, "timeline"):
        values = list(source.metrics.gauge("cluster.live_hosts").samples)
        prev = None
        for t, value in values:
            if prev is not None and value != prev:
                steps.append((t, 1 if value > prev else -1))
            prev = value
    else:
        events = getattr(source, "scale_events", source)
        for event in events:
            steps.append((event.time,
                          1 if event.action == "scale-out" else -1))
    flips = [t for (t, sign), (_, prev_sign)
             in zip(steps[1:], steps) if sign != prev_sign]
    alerts: list[Alert] = []
    i = 0
    for j in range(len(flips)):
        while flips[j] - flips[i] > window_s:
            i += 1
        if j - i + 1 < min_flips:
            continue
        if alerts and flips[i] <= alerts[-1].until:
            prev_alert = alerts[-1]
            prev_alert.until = flips[j]
            prev_alert.detail = (
                f"{j - i + 1} scale direction reversals within "
                f"{window_s:g}s (hysteresis/cooldown too tight)")
        else:
            alerts.append(Alert(
                kind="flapping", at=flips[i], until=flips[j],
                metric="cluster.live_hosts",
                detail=(f"{j - i + 1} scale direction reversals "
                        f"within {window_s:g}s (hysteresis/cooldown "
                        "too tight)")))
    return alerts


def serve_alerts(result: Any, session: Optional[Any] = None,
                 policy: Optional[BurnRatePolicy] = None,
                 window: Optional[float] = None) -> list[Alert]:
    """The full alert sweep for one serving / cluster result.

    Burn-rate over the result's request outcomes, plus (when a
    session is given) queue-slope and dead-rank anomalies from its
    timeline.  Returns alerts sorted by (time, kind, metric).
    """
    wall = result.wall_seconds
    end = result.prepare_seconds + wall
    if policy is None:
        policy = default_policy(wall)
    if hasattr(result, "shards"):
        requests = [r for s in result.shards
                    for r in s.result.requests]
        requests += list(result.abandoned_requests)
    else:
        requests = result.requests
    outcomes = request_outcomes(requests, result.slo_seconds)
    alerts = burn_rate_alerts(outcomes, end, policy)
    if getattr(result, "scale_events", None):
        alerts += flapping_alerts(result)
    if session is not None:
        width = window if window is not None else policy.fast_s
        alerts += queue_slope_alerts(session, width, end=end)
        alerts += dead_rank_alerts(session)
    alerts.sort(key=lambda a: (a.at, a.kind, a.metric))
    return alerts


def render_alerts(alerts: list[Alert],
                  policy: Optional[BurnRatePolicy] = None) -> str:
    """Deterministic text section for the SLO / cluster reports."""
    lines = ["  alerts"]
    if policy is not None:
        lines[0] += (f" (burn-rate windows "
                     f"{policy.fast_s * 1000:.0f}/"
                     f"{policy.slow_s * 1000:.0f} ms, "
                     f"threshold {policy.threshold:.1f}x)")
    if not alerts:
        lines.append("    none fired")
        return "\n".join(lines)
    for alert in alerts:
        lines.append(
            f"    [{alert.kind}] {alert.at:.3f}s - "
            f"{alert.until:.3f}s  {alert.metric}: {alert.detail}")
    return "\n".join(lines)
