"""Chrome / Perfetto ``trace_event`` JSON export.

Serialises an :class:`~repro.obs.session.ObsSession` to the Trace
Event Format that both ``chrome://tracing`` and https://ui.perfetto.dev
open natively: one named thread ("track") per device / link / host
actor, complete ("X") events for spans, and counter ("C") events for
every gauge — so a multi-stick run renders as the paper's Fig. 4-style
timeline with load/execute/read phases visibly overlapped per stick.

Simulated seconds map to trace microseconds (the format's native
unit).

Cluster runs name their per-host tracks ``rank<N>/...``; each rank
becomes its own synthetic *process* in the trace (pid ``TRACE_PID + N``,
process name ``rank N``), so a multi-host run renders as one process
group per host instead of a flat thread soup.
"""

from __future__ import annotations

import json
import re
from pathlib import Path
from typing import Any, Optional

from repro.obs.session import ObsSession

#: Synthetic process id every non-rank track lives under.
TRACE_PID = 1

#: Track-name prefix that routes a track into a per-rank process.
_RANK_RE = re.compile(r"^rank(\d+)(?:/|$)")


def _rank_of(track: str) -> Optional[int]:
    """The MPI rank a track belongs to, or None for the main process."""
    match = _RANK_RE.match(track)
    return int(match.group(1)) if match else None


#: Conversion from simulated seconds to trace microseconds.
US_PER_SECOND = 1e6


def _json_safe(value: Any) -> Any:
    if isinstance(value, (bool, int, float, str)) or value is None:
        return value
    return str(value)


def to_chrome_trace(session: ObsSession) -> dict[str, Any]:
    """Build the ``trace_event`` document for *session*.

    Returns a plain dict; ``json.dumps`` of it is a valid trace file.
    """
    tracer = session.tracer
    events: list[dict[str, Any]] = [{
        "name": "process_name", "ph": "M", "pid": TRACE_PID, "tid": 0,
        "args": {"name": "repro simulation"},
    }]
    # Tracks come from spans plus any request-trace hops recorded on
    # tracks that never opened a span (e.g. a shard stream's delivery
    # point) — flow events need a thread to land on either way.
    all_tracks = set(tracer.tracks())
    reqtrace = getattr(session, "reqtrace", None)
    if reqtrace is not None:
        for trace in reqtrace.traces():
            all_tracks.update(hop.track for hop in trace.hops)
    tids: dict[str, int] = {}
    pids: dict[str, int] = {}
    named_rank_pids: set[int] = set()
    for i, track in enumerate(sorted(all_tracks), start=1):
        rank = _rank_of(track)
        pid = TRACE_PID if rank is None else TRACE_PID + rank
        tids[track] = i
        pids[track] = pid
        if rank is not None and pid not in named_rank_pids:
            named_rank_pids.add(pid)
            events.append({
                "name": "process_name", "ph": "M", "pid": pid,
                "tid": 0, "args": {"name": f"rank {rank}"},
            })
            events.append({
                "name": "process_sort_index", "ph": "M", "pid": pid,
                "tid": 0, "args": {"sort_index": rank},
            })
        events.append({
            "name": "thread_name", "ph": "M", "pid": pid,
            "tid": i, "args": {"name": track},
        })
        events.append({
            "name": "thread_sort_index", "ph": "M", "pid": pid,
            "tid": i, "args": {"sort_index": i},
        })

    extent = tracer.extent
    for span in tracer.spans:
        end = span.end if span.end is not None else max(
            extent, span.start)
        args = {k: _json_safe(v) for k, v in span.args.items()}
        if span.end is None:
            args["unfinished"] = True
        events.append({
            "name": span.name, "cat": "sim", "ph": "X",
            "pid": pids[span.track], "tid": tids[span.track],
            "ts": span.start * US_PER_SECOND,
            "dur": (end - span.start) * US_PER_SECOND,
            "args": args,
        })

    for gauge in session.metrics.gauges():
        for t, v in gauge.samples:
            events.append({
                "name": gauge.name, "ph": "C", "pid": TRACE_PID,
                "tid": 0, "ts": t * US_PER_SECOND,
                "args": {"value": v},
            })

    # Request-scoped flow events: each sampled request's hop chain
    # becomes one named flow (s -> t ... -> f), anchored to small
    # marker slices on the hop's track — so one request's life is
    # clickable across rank process groups in the Perfetto UI.
    if reqtrace is not None:
        for trace in reqtrace.traces():
            hops = trace.hops
            flow = f"req{trace.trace_id}"
            for j, hop in enumerate(hops):
                ts = hop.t * US_PER_SECOND
                args = {k: _json_safe(v) for k, v in hop.args.items()}
                args["trace_id"] = trace.trace_id
                args["span_id"] = hop.span_id
                args["parent_span"] = hop.parent_span
                events.append({
                    "name": f"{flow}/{hop.stage}", "cat": "reqtrace",
                    "ph": "X", "pid": pids[hop.track],
                    "tid": tids[hop.track], "ts": ts, "dur": 1.0,
                    "args": args,
                })
                if len(hops) < 2:
                    continue
                phase = ("s" if j == 0
                         else "f" if j == len(hops) - 1 else "t")
                flow_event = {
                    "name": flow, "cat": "reqtrace", "ph": phase,
                    "id": trace.trace_id, "pid": pids[hop.track],
                    "tid": tids[hop.track], "ts": ts,
                }
                if phase == "f":
                    flow_event["bp"] = "e"
                events.append(flow_event)

    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(session: ObsSession, path: str | Path) -> Path:
    """Write *session* as a trace JSON file; returns the path."""
    path = Path(path)
    path.write_text(json.dumps(to_chrome_trace(session)) + "\n")
    return path
