"""Chrome / Perfetto ``trace_event`` JSON export.

Serialises an :class:`~repro.obs.session.ObsSession` to the Trace
Event Format that both ``chrome://tracing`` and https://ui.perfetto.dev
open natively: one named thread ("track") per device / link / host
actor, complete ("X") events for spans, and counter ("C") events for
every gauge — so a multi-stick run renders as the paper's Fig. 4-style
timeline with load/execute/read phases visibly overlapped per stick.

Simulated seconds map to trace microseconds (the format's native
unit).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.obs.session import ObsSession

#: Synthetic process id every track lives under.
TRACE_PID = 1

#: Conversion from simulated seconds to trace microseconds.
US_PER_SECOND = 1e6


def _json_safe(value: Any) -> Any:
    if isinstance(value, (bool, int, float, str)) or value is None:
        return value
    return str(value)


def to_chrome_trace(session: ObsSession) -> dict[str, Any]:
    """Build the ``trace_event`` document for *session*.

    Returns a plain dict; ``json.dumps`` of it is a valid trace file.
    """
    tracer = session.tracer
    events: list[dict[str, Any]] = [{
        "name": "process_name", "ph": "M", "pid": TRACE_PID, "tid": 0,
        "args": {"name": "repro simulation"},
    }]
    tids: dict[str, int] = {}
    for i, track in enumerate(sorted(tracer.tracks()), start=1):
        tids[track] = i
        events.append({
            "name": "thread_name", "ph": "M", "pid": TRACE_PID,
            "tid": i, "args": {"name": track},
        })
        events.append({
            "name": "thread_sort_index", "ph": "M", "pid": TRACE_PID,
            "tid": i, "args": {"sort_index": i},
        })

    extent = tracer.extent
    for span in tracer.spans:
        end = span.end if span.end is not None else max(
            extent, span.start)
        args = {k: _json_safe(v) for k, v in span.args.items()}
        if span.end is None:
            args["unfinished"] = True
        events.append({
            "name": span.name, "cat": "sim", "ph": "X",
            "pid": TRACE_PID, "tid": tids[span.track],
            "ts": span.start * US_PER_SECOND,
            "dur": (end - span.start) * US_PER_SECOND,
            "args": args,
        })

    for gauge in session.metrics.gauges():
        for t, v in gauge.samples:
            events.append({
                "name": gauge.name, "ph": "C", "pid": TRACE_PID,
                "tid": 0, "ts": t * US_PER_SECOND,
                "args": {"value": v},
            })

    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(session: ObsSession, path: str | Path) -> Path:
    """Write *session* as a trace JSON file; returns the path."""
    path = Path(path)
    path.write_text(json.dumps(to_chrome_trace(session)) + "\n")
    return path
