"""Request-scoped causal tracing across the serving stack.

PR 1's spans answer "what was each actor doing when"; this module
answers the orthogonal question — "where did *this request's* time
go".  A :class:`TraceContext` rides on the
:class:`~repro.serve.workload.Request` itself, so one request's
journey stays causally linked as it crosses actor boundaries: the
cluster frontend, a shard stream window, a host rank's admission
queue, the dynamic batcher, a backend's dispatch queue, and finally
the device call inside the multi-VPU scheduler.  Each boundary
records a :class:`Hop` — a (stage, track, time) triple with a span id
chained to the previous hop — into the session's
:class:`RequestTracer`.

Three read-side products come out of the hop log:

* a **waterfall** (:meth:`RequestTracer.waterfall`): the request's
  time-in-stage breakdown, whose stage durations telescope exactly to
  the end-to-end latency;
* a **critical path** (:meth:`RequestTracer.critical_path`): which
  batched sibling gated the batch window and which stage dominated;
* **Perfetto flow events** (:mod:`repro.obs.perfetto`): the hop chain
  exported as ``s``/``t``/``f`` flow arrows, so one request's life is
  clickable across rank process groups in the trace viewer.

Everything here obeys the zero-cost contract: no hop is recorded
unless an :class:`~repro.obs.session.ObsSession` is attached
(``env.obs is not None``) *and* the request was sampled
(``request.trace is not None``).  Recording never creates simulation
events, so results are byte-identical with tracing on or off.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.errors import ObservabilityError

#: Hop stages considered terminal (the request's journey ended there).
TERMINAL_STAGES = ("completed", "rejected", "shed", "timed_out",
                   "abandoned", "frontend_abandoned")

#: Interval label for the gap *ending* at a hop of the given stage.
#: Stages not listed label their interval with their own name.
_INTERVAL_LABELS = {
    "sharded": "routing",
    "delivered": "shard_wire",
    "admitted": "admission",
    "dequeued": "queued",
    "dispatched": "batched",
    "device_submit": "dispatch",
    "split_front_done": "front_half",
    "split_xfer_done": "cut_xfer",
    "device_done": "compute",
    "completed": "return",
}


@dataclass
class TraceContext:
    """The causal context carried on a sampled request.

    ``parent_span`` is the span id of the most recent hop, so each new
    hop chains to its predecessor; ``hops`` counts propagation steps
    (a re-sharded request keeps its context and its count grows).
    """

    trace_id: int
    parent_span: int = 0
    hops: int = 0


@dataclass
class Hop:
    """One boundary crossing in a request's journey."""

    span_id: int
    parent_span: int
    stage: str
    track: str
    t: float
    args: dict[str, Any] = field(default_factory=dict)


@dataclass
class RequestTrace:
    """The full hop log of one sampled request."""

    trace_id: int
    hops: list[Hop] = field(default_factory=list)

    @property
    def start(self) -> float:
        """Timestamp of the first hop (the arrival)."""
        if not self.hops:
            raise ObservabilityError(
                f"trace {self.trace_id} has no hops")
        return self.hops[0].t

    @property
    def end(self) -> float:
        """Timestamp of the last hop recorded so far."""
        if not self.hops:
            raise ObservabilityError(
                f"trace {self.trace_id} has no hops")
        return self.hops[-1].t

    @property
    def terminal_stage(self) -> Optional[str]:
        """The terminal stage reached, or None while in flight."""
        for hop in reversed(self.hops):
            if hop.stage in TERMINAL_STAGES:
                return hop.stage
        return None

    @property
    def completed(self) -> bool:
        """True when the request's journey ended in ``completed``."""
        return self.terminal_stage == "completed"


class RequestTracer:
    """Per-session store of sampled request traces.

    ``sample_every=k`` samples every k-th request id (``id % k == 0``)
    — deterministic, so two same-seed runs sample the same requests.
    The tracer shares the session tracer's clock, so hop timestamps
    line up with span timestamps in the Perfetto export.
    """

    def __init__(self, tracer: Any, sample_every: int = 1) -> None:
        if sample_every < 1:
            raise ObservabilityError(
                f"sample_every must be >= 1, got {sample_every}")
        self._tracer = tracer
        self.sample_every = sample_every
        self._traces: dict[int, RequestTrace] = {}
        self._next_span = 1

    def __len__(self) -> int:
        return len(self._traces)

    # -- recording -------------------------------------------------------
    def sampled(self, request_id: int) -> bool:
        """Whether a request id falls in the sample."""
        return request_id % self.sample_every == 0

    def begin(self, request: Any, track: str = "serve",
              t: Optional[float] = None) -> None:
        """Attach a context to *request* and record its arrival hop.

        Idempotent per request: a request that already carries a
        context (a re-shard, say) keeps it.  Unsampled requests are
        left untouched — their ``trace`` stays None and every
        downstream hop call falls through on that check.  Pass ``t``
        to backdate the arrival hop to the request's nominal arrival
        time, so the waterfall telescopes exactly to its end-to-end
        latency.
        """
        if request.trace is not None:
            return
        if not self.sampled(request.request_id):
            return
        ctx = TraceContext(trace_id=request.request_id)
        request.trace = ctx
        self._traces[ctx.trace_id] = RequestTrace(trace_id=ctx.trace_id)
        self.hop(ctx, "arrival", track=track, t=t)

    def hop(self, ctx: Optional[TraceContext], stage: str, track: str,
            t: Optional[float] = None, **args: Any) -> None:
        """Record one boundary crossing for *ctx* (no-op when None)."""
        if ctx is None:
            return
        trace = self._traces.get(ctx.trace_id)
        if trace is None:  # context from another session: ignore
            return
        span_id = self._next_span
        self._next_span += 1
        trace.hops.append(Hop(
            span_id=span_id, parent_span=ctx.parent_span,
            stage=stage, track=track,
            t=self._tracer.now() if t is None else t,
            args=dict(args)))
        ctx.parent_span = span_id
        ctx.hops += 1

    # -- queries ---------------------------------------------------------
    def traces(self) -> list[RequestTrace]:
        """All sampled traces, sorted by trace id."""
        return [self._traces[tid] for tid in sorted(self._traces)]

    def get(self, trace_id: int) -> RequestTrace:
        """The trace of one request id (raises when unsampled)."""
        if trace_id not in self._traces:
            raise ObservabilityError(
                f"request {trace_id} was not sampled in this session")
        return self._traces[trace_id]

    def waterfall(self, trace_id: int) -> list[dict[str, Any]]:
        """Time-in-stage breakdown of one request.

        Each row maps ``stage``, ``t0``, ``t1``, ``seconds`` and
        ``track``; consecutive rows tile the journey without gaps, so
        the ``seconds`` column telescopes exactly to ``end - start``
        (the end-to-end latency for a completed request).
        """
        trace = self.get(trace_id)
        rows: list[dict[str, Any]] = []
        for prev, hop in zip(trace.hops, trace.hops[1:]):
            label = _INTERVAL_LABELS.get(hop.stage, hop.stage)
            rows.append({
                "stage": label,
                "t0": prev.t,
                "t1": hop.t,
                "seconds": hop.t - prev.t,
                "track": hop.track,
            })
        return rows

    def siblings(self, trace_id: int) -> list[RequestTrace]:
        """Sampled requests served in the same batch as *trace_id*.

        Siblings share the dispatch timestamp and track (one backend
        dispatches one batch at one instant).  Includes the request
        itself; unsampled batch members are invisible here.
        """
        trace = self.get(trace_id)
        dispatch = next((h for h in trace.hops
                         if h.stage == "dispatched"), None)
        if dispatch is None:
            return [trace]
        out = []
        for other in self.traces():
            for hop in other.hops:
                if (hop.stage == "dispatched"
                        and hop.t == dispatch.t
                        and hop.track == dispatch.track):
                    out.append(other)
                    break
        return out

    def critical_path(self, trace_id: int) -> dict[str, Any]:
        """What gated each stage of one request's journey.

        Returns ``stages`` (the waterfall), ``dominant`` (the stage
        with the largest share of the journey), ``siblings`` (sampled
        batch co-travellers) and ``batch_gate`` — the sibling whose
        dequeue closed the batch window (the request itself when it
        boarded last or rode alone).
        """
        trace = self.get(trace_id)
        stages = self.waterfall(trace_id)
        dominant = (max(stages, key=lambda r: (r["seconds"],
                                               r["stage"]))["stage"]
                    if stages else None)
        sibs = self.siblings(trace_id)

        def dequeue_time(t: RequestTrace) -> float:
            for hop in t.hops:
                if hop.stage == "dequeued":
                    return hop.t
            return float("-inf")

        gate = max(sibs, key=lambda t: (dequeue_time(t), t.trace_id))
        return {
            "trace_id": trace_id,
            "stages": stages,
            "dominant": dominant,
            "siblings": sorted(t.trace_id for t in sibs),
            "batch_gate": gate.trace_id,
            "terminal": trace.terminal_stage,
        }


def render_waterfall(reqtrace: RequestTracer, trace_id: int) -> str:
    """Fixed-width text rendering of one request's waterfall."""
    trace = reqtrace.get(trace_id)
    rows = reqtrace.waterfall(trace_id)
    total = trace.end - trace.start
    lines = [f"request {trace_id} waterfall "
             f"({trace.terminal_stage or 'in flight'}, "
             f"{total * 1000:.3f} ms end-to-end)"]
    lines.append(f"  {'stage':<12} {'at ms':>10} {'ms':>10} "
                 f"{'share':>7}  track")
    for row in rows:
        share = row["seconds"] / total if total > 0 else 0.0
        lines.append(
            f"  {row['stage']:<12} "
            f"{(row['t0'] - trace.start) * 1000:>10.3f} "
            f"{row['seconds'] * 1000:>10.3f} {share:>7.1%}  "
            f"{row['track']}")
    lines.append(f"  {'total':<12} {'':>10} {total * 1000:>10.3f} "
                 f"{'100.0%':>7}")
    cp = reqtrace.critical_path(trace_id)
    if len(cp["siblings"]) > 1:
        lines.append(
            f"  batched with {len(cp['siblings']) - 1} sampled "
            f"sibling(s) {cp['siblings']}; window closed by request "
            f"{cp['batch_gate']}")
    if cp["dominant"] is not None:
        lines.append(f"  dominant stage: {cp['dominant']}")
    return "\n".join(lines)
